#!/usr/bin/env python3
"""Cross-language smoke test of the GATW wire protocol.

Speaks the protocol from an independent implementation (struct.pack +
zlib.crc32 — no shared code with the C++ codec), so a framing bug that
two copies of the same serializer would cancel out gets caught here:

  1. start ./build/apps/gat_server, wait for "LISTENING <port>",
  2. send a well-formed request, check the response frame end to end
     (magic, version, type, CRC, full payload parse with no trailing
     bytes, status/shed cross-field discipline),
  3. send a corrupted frame on a fresh connection, expect a clean EOF
     with zero bytes — never a crash, never a partial frame,
  4. send an ingest frame interleaved with a request on one session;
     the ack must decode under the ingest cross-field rules and come
     back before the query answer (arrival order),
  5. send a structurally absurd ingest frame (valid CRC), expect the
     same clean zero-byte close from the ingest decoder,
  6. close the server's stdin and expect exit code 0.

Usage: scripts/wire_smoke.py [path/to/gat_server]
Exit code 0 = all checks passed.
"""

import socket
import struct
import subprocess
import sys
import zlib

MAGIC = b"GATW"
VERSION = 1
FRAME_REQUEST = 1
FRAME_RESPONSE = 2
FRAME_INGEST = 3
FRAME_INGEST_ACK = 4
HEADER = struct.Struct("<4sIIII")  # magic, version, type, length, crc32

STATUS_OK = 0
STATUS_SHED = 1
STATUS_DEADLINE = 2
SHED_NONE = 0
SHED_WRITE_RATE_LIMIT = 2
INGEST_OK = 0
INGEST_SHED = 1
INGEST_INVALID = 2
INGEST_UNAVAILABLE = 3
NUM_STAT_COUNTERS = 14  # u64 counters before the trailing elapsed_ms f64


def build_frame(frame_type: int, payload: bytes) -> bytes:
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return HEADER.pack(MAGIC, VERSION, frame_type, len(payload), crc) + payload


def build_request(tenant=7, priority=0, kind=0, k=3, deadline=0) -> bytes:
    # One query, two points, activities strictly ascending — the normal
    # form the decoder demands.
    payload = struct.pack("<IIIIQI", tenant, priority, kind, k, deadline, 1)
    points = [((1.0, 2.0), [0, 3, 5]), ((-0.5, 4.25), [1])]
    payload += struct.pack("<I", len(points))
    for (x, y), activities in points:
        payload += struct.pack("<ddI", x, y, len(activities))
        payload += struct.pack(f"<{len(activities)}I", *activities)
    return build_frame(FRAME_REQUEST, payload)


def build_ingest(tenant=7) -> bytes:
    # Three check-ins in the middle of the synthetic city (its ingest
    # frame is the empirical 20x20km MBR, so mid-city points are always
    # inside it), activities strictly ascending — the normal form the
    # decoder demands.
    checkins = [
        (501, (10.0, 10.0), [0, 3, 5]),
        (502, (9.5, 10.25), [1]),
        (501, (10.5, 9.0), [2, 4]),
    ]
    payload = struct.pack("<II", tenant, len(checkins))
    for user, (x, y), activities in checkins:
        payload += struct.pack("<QddI", user, x, y, len(activities))
        payload += struct.pack(f"<{len(activities)}I", *activities)
    return build_frame(FRAME_INGEST, payload)


def check_ingest_ack(raw_header: bytes, sock: socket.socket) -> None:
    magic, version, frame_type, length, crc = HEADER.unpack(raw_header)
    assert magic == MAGIC, f"bad magic {magic!r}"
    assert version == VERSION, f"bad version {version}"
    assert frame_type == FRAME_INGEST_ACK, f"bad frame type {frame_type}"
    payload = recv_exact(sock, length)
    assert zlib.crc32(payload) & 0xFFFFFFFF == crc, "payload CRC mismatch"
    assert length == 28, f"ingest ack must be 28 bytes, got {length}"
    status, shed_reason, shed_tenant, accepted, watermark = struct.unpack(
        "<IIIQQ", payload
    )
    # Cross-field discipline, mirrored from the C++ decoder: a shed ack
    # names the write limiter and its tenant; any other status carries
    # neither. Acceptance counts exist only on success.
    assert status in (INGEST_OK, INGEST_SHED, INGEST_INVALID, INGEST_UNAVAILABLE)
    if status == INGEST_SHED:
        assert shed_reason == SHED_WRITE_RATE_LIMIT, shed_reason
    else:
        assert shed_reason == SHED_NONE and shed_tenant == 0
    if status == INGEST_OK:
        assert accepted == 3 and watermark >= accepted, (accepted, watermark)
    else:
        assert accepted == 0 and watermark == 0, (accepted, watermark)
    # This smoke server has an attached live index and fresh write
    # quota, so the batch must actually land.
    assert status == INGEST_OK, f"smoke ingest unexpectedly refused: {status}"


def recv_exact(sock: socket.socket, size: int) -> bytes:
    data = b""
    while len(data) < size:
        chunk = sock.recv(size - len(data))
        if not chunk:
            raise ConnectionError(f"EOF after {len(data)}/{size} bytes")
        data += chunk
    return data


def check_response(raw_header: bytes, sock: socket.socket) -> None:
    magic, version, frame_type, length, crc = HEADER.unpack(raw_header)
    assert magic == MAGIC, f"bad magic {magic!r}"
    assert version == VERSION, f"bad version {version}"
    assert frame_type == FRAME_RESPONSE, f"bad frame type {frame_type}"
    payload = recv_exact(sock, length)
    assert zlib.crc32(payload) & 0xFFFFFFFF == crc, "payload CRC mismatch"

    # Full parse: every declared length must line up with the payload
    # end, exactly — the same reject-or-bit-exact discipline as C++.
    off = 0

    def read(fmt):
        nonlocal off
        s = struct.Struct(fmt)
        values = s.unpack_from(payload, off)
        off += s.size
        return values if len(values) > 1 else values[0]

    status = read("<I")
    shed_reason = read("<I")
    shed_tenant = read("<I")
    deadline_exceeded = read("<Q")
    num_queries = read("<I")
    assert status in (STATUS_OK, STATUS_SHED, STATUS_DEADLINE), status
    if status == STATUS_SHED:
        assert shed_reason != SHED_NONE and num_queries == 0
    else:
        assert shed_reason == SHED_NONE and shed_tenant == 0
    expired_statuses = 0
    for _ in range(num_queries):
        query_status = read("<I")
        assert query_status in (0, 1), query_status
        expired_statuses += query_status == 1
        num_results = read("<I")
        for _ in range(num_results):
            trajectory = read("<I")
            distance = read("<d")
            assert distance >= 0.0, (trajectory, distance)
    if num_queries:
        assert deadline_exceeded == expired_statuses
    read(f"<{NUM_STAT_COUNTERS}Q")  # SearchStats counters
    read("<d")  # elapsed_ms
    assert off == len(payload), f"{len(payload) - off} trailing bytes"
    assert status == STATUS_OK, f"smoke request unexpectedly not served: {status}"
    assert num_queries == 1, num_queries


def main() -> int:
    server_bin = sys.argv[1] if len(sys.argv) > 1 else "build/apps/gat_server"
    proc = subprocess.Popen(
        [server_bin, "--trajectories", "100", "--seed", "29"],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
    )
    try:
        banner = proc.stdout.readline().decode()
        assert banner.startswith("LISTENING "), f"bad banner {banner!r}"
        port = int(banner.split()[1])

        # --- a well-formed request round trip -------------------------
        with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
            sock.sendall(build_request())
            check_response(recv_exact(sock, HEADER.size), sock)
        print("wire_smoke: request/response OK")

        # --- a corrupted frame: clean close, zero bytes ---------------
        bad = bytearray(build_request())
        bad[HEADER.size + 3] ^= 0x20  # flip one payload bit
        with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
            sock.sendall(bytes(bad))
            sock.settimeout(10)
            leaked = sock.recv(1)
            assert leaked == b"", f"server sent {leaked!r} after corruption"
        print("wire_smoke: corrupt frame closed cleanly")

        # --- and the server is still alive afterwards -----------------
        with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
            sock.sendall(build_request())
            check_response(recv_exact(sock, HEADER.size), sock)
        print("wire_smoke: server alive after corruption")

        # --- a well-formed ingest round trip --------------------------
        # Serve and ingest frames interleave on one session: the ingest
        # ack must come back first, then the query answer, in arrival
        # order.
        with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
            sock.sendall(build_ingest() + build_request())
            check_ingest_ack(recv_exact(sock, HEADER.size), sock)
            check_response(recv_exact(sock, HEADER.size), sock)
        print("wire_smoke: ingest/ack OK")

        # --- a corrupted ingest frame: clean close, zero bytes --------
        # Valid CRC over a structurally absurd payload (a check-in count
        # with no check-ins behind it), so the close comes from the
        # ingest decoder itself, not the checksum gate the serve-side
        # case above already exercises.
        bad = build_frame(FRAME_INGEST, struct.pack("<II", 7, 0xFFFFFFFF))
        with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
            sock.sendall(bad)
            sock.settimeout(10)
            leaked = sock.recv(1)
            assert leaked == b"", f"server sent {leaked!r} after corruption"
        print("wire_smoke: corrupt ingest closed cleanly")

        # --- serve path unaffected by the dead ingest session ---------
        with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
            sock.sendall(build_request())
            check_response(recv_exact(sock, HEADER.size), sock)
        print("wire_smoke: server alive after ingest corruption")
    finally:
        proc.stdin.close()
        code = proc.wait(timeout=30)
    assert code == 0, f"gat_server exit code {code}"
    print("wire_smoke: clean shutdown (exit 0)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
