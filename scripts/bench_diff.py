#!/usr/bin/env python3
"""Compare two BENCH_*.json artifacts for regressions.

Implements the comparison rules of docs/BENCH_PROTOCOL.md:

  * Refuses (exit 2) incompatible pairs: different bench name, or
    different ``protocol.scale`` / ``protocol.queries_per_point`` /
    ``protocol.disk_penalty_ms`` — those change the workload, so a diff
    would be meaningless. Cross-thread-count compares are refused too:
    ``ns_per_op`` is throughput time and only comparable at equal
    ``protocol.threads``. Records (or protocol blocks) stamped with a
    ``shards`` count are refused when the counts differ: per-shard
    counters scale with the partition, so the workloads are different
    experiments.
  * Fails (exit 1) when any deterministic work counter
    (candidates_verified, tas_pruned, distance_computations, disk_reads,
    index_pins) drifts: counters are scheduling-independent, so any
    change is a behavioral change, not noise (``--allow-counter-drift``
    downgrades this to a warning for PRs that intentionally change the
    algorithm).
  * Live-reload fields (``shard_reloads``, ``invalidated_blocks``,
    bench_live_reload): background-loop scheduled, so never gated —
    but a baseline showing reload activity against a candidate showing
    none warns (the live machinery stopped being exercised).
  * Block-cache fields (storage benches): records carrying a
    ``block_size`` must agree on it — block granularity defines what a
    ``blocks_read`` means, so a mismatch is refused like a protocol
    mismatch. ``blocks_read`` is deterministic only when the access
    sequence is (single-threaded, equal warmup and repeat counts): it
    is gated as a counter at ``protocol.threads == 1`` with equal
    ``protocol.warmup`` and ``repeats``, and advisory (>10% drift
    warns) otherwise. ``cache_hit_rate`` drift
    beyond 2 points warns (advisory at any thread count).
    Admission counters (``admission_rejects``, ``ghost_hits``) follow
    the same policy as ``blocks_read``: they are functions of the block
    access sequence, so they are gated exactly when it is deterministic
    (threads == 1, equal warmup and repeats) and advisory (>10% drift
    warns) otherwise.
  * Async I/O fields: ``io_backend`` is environmental (io_uring vs the
    pread pool depends on kernel and seccomp), so a mismatch only warns
    — but logical counters must already match regardless, which is the
    point. ``worker_stalls`` is wall-clock-scheduling dependent and
    never gated; a baseline showing stalls against a candidate showing
    none (or vice versa at 10x) warns, since the staging machinery
    changing that much deserves a look.
  * Fails (exit 1) when ``avg_ms_per_query`` — or, when both sides
    carry it, the per-query ``p95_ms`` latency — regresses by more than
    ``--max-regress-pct`` (default 15) on any record present in both
    files. ``avg_ms_per_query`` is CPU time per query and thread-count
    independent. ``--skip-timing`` disables these gates (e.g. comparing
    runs from different machines where only counters are meaningful).
  * Warns when ``ns_per_op`` regresses beyond the protocol's noise gate
    (3 x max(rsd_old, rsd_new) percent) — advisory only, since
    wall-clock throughput is the noisiest signal.
  * Live-ingestion fields (bench_ingest): ``ingested_checkins``,
    ``delta_trajectories``, ``merges_completed`` and ``generation`` are
    snapshots taken at quiesced points (ingest paused at a fixed
    watermark), so they are gated exactly like the work counters at any
    thread count. ``freshness_lag_ms`` is ingest-ack-to-queryable wall
    clock — advisory (>50% swell warns).
  * Open-loop serving runs (bench_serving): ``protocol.arrival_rate``
    and ``protocol.virtual_time`` are workload-defining — a mismatch is
    refused like a scale mismatch (comparing shed counts across offered
    loads, or virtual against wall-clock time, is meaningless). When
    BOTH runs are virtual-time, the serving counters (``admitted``,
    ``shed_count``, ``deadline_misses``) are pure functions of the
    schedule and are gated exactly like the work counters; otherwise
    they drift with the machine and only warn beyond 10%.
    ``goodput_qps`` is always advisory (>10% drop warns).

Forward compatibility: the JSON schema is append-only and this tool
compares only the fields it knows about. Unknown keys — in the top
level, the protocol block, or any record — are ignored, so baselines
recorded before a field existed keep gating candidates that carry it
(a counter/timing field present on only one side is skipped, never an
error).

Usage:
  bench_diff.py BASELINE.json CANDIDATE.json [--max-regress-pct PCT]
                [--allow-counter-drift] [--skip-timing]

Exit codes: 0 = no regression, 1 = regression/drift, 2 = refused.
"""

import argparse
import json
import sys

COUNTER_FIELDS = (
    "candidates_verified",
    "tas_pruned",
    "distance_computations",
    "disk_reads",
    # Serving-revision pins of the live-reload epoch guard: exactly
    # queries x shards per record, independent of threads, repeats and
    # of whether any reload actually happened — deterministic.
    "index_pins",
)
# Live-reload activity counters (bench_live_reload): how many hot-swaps
# completed and how many cache blocks retired mappings purged during the
# measurement. Real work, but scheduled by a wall-clock background
# loop — never comparable exactly, so drift only warns.
ADVISORY_RELOAD_FIELDS = ("shard_reloads", "invalidated_blocks")
# Serving front-door counters (bench_serving): exact when both runs are
# virtual-time (the simulated schedule fully determines them), advisory
# otherwise.
SERVING_COUNTER_FIELDS = ("admitted", "shed_count", "deadline_misses")
# Live-ingestion state counters (bench_ingest): recorded at quiesced
# points (ingest paused at a fixed watermark), so exact — any drift
# means the delta/merge machinery changed behavior. The wall-clock
# `freshness_lag_ms` companion field is advisory and handled separately.
INGEST_COUNTER_FIELDS = ("ingested_checkins", "delta_trajectories",
                         "merges_completed", "generation")
# Workload-defining protocol fields: a mismatch makes the diff meaningless.
# arrival_rate / virtual_time are the open-loop extension: offered load and
# the clock the load runs on both define the experiment (absent = 0 / false
# on closed-loop benches and pre-extension baselines).
PROTOCOL_FIELDS = ("scale", "queries_per_point", "disk_penalty_ms")


def refuse(message):
    print(f"REFUSED: {message}", file=sys.stderr)
    sys.exit(2)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            payload = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        refuse(f"cannot read {path}: {err}")
    for key in ("bench", "protocol", "results"):
        if key not in payload:
            refuse(f"{path} lacks required key '{key}'")
    return payload


def check_compatible(old, new):
    if old["bench"] != new["bench"]:
        refuse(f"different benches: {old['bench']!r} vs {new['bench']!r}")
    for field in PROTOCOL_FIELDS:
        a, b = old["protocol"].get(field), new["protocol"].get(field)
        if a != b:
            refuse(f"protocol.{field} differs ({a} vs {b}); the workloads "
                   "are not the same experiment")
    ta, tb = old["protocol"].get("threads"), new["protocol"].get("threads")
    if ta != tb:
        refuse(f"protocol.threads differs ({ta} vs {tb}); ns_per_op is "
               "throughput time and only comparable at equal thread counts")
    # `shards` is optional (absent on un-sharded benches and on baselines
    # that predate the field); when both sides declare it, it must match.
    sa, sb = old["protocol"].get("shards"), new["protocol"].get("shards")
    if sa is not None and sb is not None and sa != sb:
        refuse(f"protocol.shards differs ({sa} vs {sb}); per-shard work "
               "scales with the partition, so the runs are not the same "
               "experiment")
    # Open-loop extension: offered load and clock mode define what the
    # serving counters mean. Absent = closed-loop (0 / false), so old
    # baselines keep comparing against old benches.
    ra = old["protocol"].get("arrival_rate", 0) or 0
    rb = new["protocol"].get("arrival_rate", 0) or 0
    if ra != rb:
        refuse(f"protocol.arrival_rate differs ({ra} vs {rb}); shed and "
               "deadline counts are functions of the offered load, so the "
               "runs are not the same experiment")
    va = bool(old["protocol"].get("virtual_time", False))
    vb = bool(new["protocol"].get("virtual_time", False))
    if va != vb:
        refuse(f"protocol.virtual_time differs ({va} vs {vb}); virtual and "
               "wall-clock timelines produce incomparable admission and "
               "deadline outcomes")


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--max-regress-pct", type=float, default=15.0,
                        help="fail when avg_ms_per_query regresses more than "
                             "this percent (default: 15)")
    parser.add_argument("--allow-counter-drift", action="store_true",
                        help="downgrade counter drift from failure to warning "
                             "(for intentional algorithm changes)")
    parser.add_argument("--skip-timing", action="store_true",
                        help="skip the avg_ms_per_query gate and the "
                             "ns_per_op advisories (cross-machine compares: "
                             "counters only)")
    args = parser.parse_args()

    old = load(args.baseline)
    new = load(args.candidate)
    check_compatible(old, new)

    for path, payload in ((args.baseline, old), (args.candidate, new)):
        names = [r["name"] for r in payload["results"]]
        if len(names) != len(set(names)):
            dupes = sorted({n for n in names if names.count(n) > 1})
            refuse(f"{path} has duplicate record names ({', '.join(dupes)}); "
                   "a keyed diff would silently shadow records")

    old_records = {r["name"]: r for r in old["results"]}
    new_records = {r["name"]: r for r in new["results"]}
    failures, warnings = [], []

    missing = sorted(set(old_records) - set(new_records))
    added = sorted(set(new_records) - set(old_records))
    if missing:
        failures.append(f"records vanished from candidate: {', '.join(missing)}")
    if added:
        warnings.append(f"new records (no baseline): {', '.join(added)}")

    for name in sorted(set(old_records) & set(new_records)):
        o, n = old_records[name], new_records[name]

        # Same record name, different shard count: refuse rather than
        # diff — the counters describe different partitions.
        if ("shards" in o and "shards" in n and o["shards"] != n["shards"]):
            refuse(f"{name}: shards differs ({o['shards']} vs "
                   f"{n['shards']}); per-shard work scales with the "
                   "partition, so the records are not comparable")

        # Same record, different cache-block granularity: blocks_read
        # and cache_hit_rate count different units — refuse. block_size
        # 0 means "not reported" (a mapped searcher measured without a
        # cache-reporting prefetcher) and is treated as absent.
        bs_old, bs_new = o.get("block_size", 0), n.get("block_size", 0)
        if bs_old and bs_new and bs_old != bs_new:
            refuse(f"{name}: block_size differs ({bs_old} vs {bs_new}); "
                   "block-granular counters are not comparable across "
                   "block sizes")

        # blocks_read: a deterministic counter only when the block
        # access sequence is — single-threaded and the same number of
        # warmup and timed batches (the field reports the last batch,
        # whose cache starting state depends on every batch before it).
        # (A count at unknown granularity — block_size 0 on either side
        # — can only be compared advisorily.)
        if "blocks_read" in o and "blocks_read" in n:
            deterministic = (old["protocol"].get("threads") == 1
                             and old["protocol"].get("warmup")
                             == new["protocol"].get("warmup")
                             and o.get("repeats") == n.get("repeats")
                             and bool(bs_old) and bool(bs_new))
            if o["blocks_read"] != n["blocks_read"]:
                message = (f"{name}: blocks_read {o['blocks_read']} -> "
                           f"{n['blocks_read']}")
                if deterministic:
                    if args.allow_counter_drift:
                        warnings.append(message + " (deterministic counter "
                                        "drift waived by "
                                        "--allow-counter-drift)")
                    else:
                        failures.append(message + " (deterministic at "
                                        "threads=1 + equal repeats = "
                                        "behavioral change)")
                else:
                    drift = (abs(n["blocks_read"] - o["blocks_read"])
                             / max(o["blocks_read"], 1))
                    if drift > 0.10:
                        warnings.append(message + " (advisory: block "
                                        "sequence not deterministic "
                                        "across these runs)")

        # Admission counters: same determinism envelope as blocks_read —
        # they are decided per publish along the block access sequence,
        # so they are exact exactly when that sequence is.
        for field in ("admission_rejects", "ghost_hits"):
            if field not in o or field not in n:
                continue
            deterministic = (old["protocol"].get("threads") == 1
                             and old["protocol"].get("warmup")
                             == new["protocol"].get("warmup")
                             and o.get("repeats") == n.get("repeats"))
            if o[field] != n[field]:
                message = f"{name}: {field} {o[field]} -> {n[field]}"
                if deterministic:
                    if args.allow_counter_drift:
                        warnings.append(message + " (deterministic counter "
                                        "drift waived by "
                                        "--allow-counter-drift)")
                    else:
                        failures.append(message + " (deterministic at "
                                        "threads=1 + equal repeats = "
                                        "admission behavior change)")
                else:
                    drift = (abs(n[field] - o[field]) / max(o[field], 1))
                    if drift > 0.10:
                        warnings.append(message + " (advisory: block "
                                        "sequence not deterministic "
                                        "across these runs)")

        # io_backend is environmental (kernel/seccomp decide); logical
        # counters are gated independently of it, so a flip only warns.
        if "io_backend" in o and "io_backend" in n \
                and o["io_backend"] != n["io_backend"]:
            warnings.append(f"{name}: io_backend {o['io_backend']!r} -> "
                            f"{n['io_backend']!r} (advisory: physical read "
                            "path changed; logical counters still gated)")

        # worker_stalls measures scheduling luck, never gated — but the
        # stall profile appearing or vanishing wholesale means the
        # staging path changed character.
        if "worker_stalls" in o and "worker_stalls" in n:
            ws_o, ws_n = o["worker_stalls"], n["worker_stalls"]
            if (ws_o > 0 and ws_n == 0) or (ws_o == 0 and ws_n > 10):
                warnings.append(f"{name}: worker_stalls {ws_o} -> {ws_n} "
                                "(advisory: staging coverage changed "
                                "character)")

        if "cache_hit_rate" in o and "cache_hit_rate" in n:
            delta = n["cache_hit_rate"] - o["cache_hit_rate"]
            if abs(delta) > 0.02:
                warnings.append(f"{name}: cache_hit_rate "
                                f"{o['cache_hit_rate']:.4f} -> "
                                f"{n['cache_hit_rate']:.4f} (advisory)")

        for field in ADVISORY_RELOAD_FIELDS:
            if field not in o or field not in n:
                continue
            # The one regression these can flag reliably: the reloader
            # stopped reloading (or invalidation stopped purging) while
            # the baseline shows the machinery was exercised.
            if o[field] > 0 and n[field] == 0:
                warnings.append(f"{name}: {field} {o[field]} -> 0 "
                                "(advisory: live-reload activity vanished)")

        for field in COUNTER_FIELDS:
            # Compare only fields both sides carry (append-only schema:
            # an old baseline may predate a counter).
            if field not in o or field not in n:
                continue
            if o[field] != n[field]:
                message = (f"{name}: {field} {o[field]} -> "
                           f"{n[field]} (deterministic counter drift "
                           "= behavioral change)")
                (warnings if args.allow_counter_drift else failures).append(
                    message)

        # Serving counters: exact under virtual time (the simulated
        # schedule fully determines admission, shedding and deadline
        # outcomes — any drift is a front-door behavior change), advisory
        # when either run raced a wall clock.
        virtual_pair = (bool(old["protocol"].get("virtual_time"))
                        and bool(new["protocol"].get("virtual_time")))
        for field in SERVING_COUNTER_FIELDS:
            if field not in o or field not in n:
                continue
            if o[field] != n[field]:
                message = f"{name}: {field} {o[field]} -> {n[field]}"
                if virtual_pair:
                    message += (" (virtual-time serving counter drift "
                                "= behavioral change)")
                    (warnings if args.allow_counter_drift
                     else failures).append(message)
                elif (abs(n[field] - o[field]) / max(o[field], 1)) > 0.10:
                    warnings.append(message + " (advisory: wall-clock "
                                    "serving counters are load-timing "
                                    "dependent)")

        # Ingest-state counters: quiesced-point snapshots, exact by
        # construction — the bench pauses ingest at a fixed watermark
        # before recording, so any drift is a delta/merge behavior
        # change, not scheduling.
        for field in INGEST_COUNTER_FIELDS:
            if field not in o or field not in n:
                continue
            if o[field] != n[field]:
                message = (f"{name}: {field} {o[field]} -> {n[field]} "
                           "(quiesced ingest counter drift = behavioral "
                           "change)")
                (warnings if args.allow_counter_drift else failures).append(
                    message)

        # Freshness lag is ingest-ack-to-queryable wall clock — never
        # gated, but a large swell deserves a look.
        if o.get("freshness_lag_ms", 0) > 0 and "freshness_lag_ms" in n:
            pct = 100.0 * (n["freshness_lag_ms"] / o["freshness_lag_ms"] - 1.0)
            if pct > 50.0:
                warnings.append(f"{name}: freshness_lag_ms {pct:+.1f}% "
                                f"({o['freshness_lag_ms']:.3f} -> "
                                f"{n['freshness_lag_ms']:.3f} ms) — advisory, "
                                "wall-clock")

        if "goodput_qps" in o and "goodput_qps" in n and o["goodput_qps"] > 0:
            pct = 100.0 * (n["goodput_qps"] / o["goodput_qps"] - 1.0)
            if pct < -10.0:
                warnings.append(f"{name}: goodput_qps {pct:+.1f}% "
                                f"({o['goodput_qps']:.1f} -> "
                                f"{n['goodput_qps']:.1f}) — advisory")

        if not args.skip_timing and o.get("avg_ms_per_query", 0) > 0:
            pct = 100.0 * (n.get("avg_ms_per_query", 0) /
                           o["avg_ms_per_query"] - 1.0)
            if pct > args.max_regress_pct:
                failures.append(f"{name}: avg_ms_per_query regressed "
                                f"{pct:+.1f}% ({o['avg_ms_per_query']:.6f} -> "
                                f"{n['avg_ms_per_query']:.6f} ms)")

        # Per-query latency tail: gate only when both sides carry the
        # field (baselines recorded before p95_ms existed still work).
        if (not args.skip_timing and o.get("p95_ms", 0) > 0
                and "p95_ms" in n):
            pct = 100.0 * (n.get("p95_ms", 0) / o["p95_ms"] - 1.0)
            if pct > args.max_regress_pct:
                failures.append(f"{name}: p95_ms latency regressed "
                                f"{pct:+.1f}% ({o['p95_ms']:.6f} -> "
                                f"{n.get('p95_ms', 0):.6f} ms)")

        # Wall-clock advisory only when timing is meaningful for this pair
        # (same machine); --skip-timing declares it is not.
        if not args.skip_timing and o.get("ns_per_op", 0) > 0:
            pct = 100.0 * (n.get("ns_per_op", 0) / o["ns_per_op"] - 1.0)
            noise_gate = 3.0 * max(o.get("rsd_pct", 0.0), n.get("rsd_pct", 0.0))
            if pct > max(noise_gate, 1e-9):
                warnings.append(f"{name}: ns_per_op {pct:+.1f}% (noise gate "
                                f"{noise_gate:.1f}%) — advisory, wall-clock")

    for w in warnings:
        print(f"WARN: {w}")
    for f in failures:
        print(f"FAIL: {f}")
    shared = len(set(old_records) & set(new_records))
    print(f"compared {shared} records: "
          f"{len(failures)} failure(s), {len(warnings)} warning(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
