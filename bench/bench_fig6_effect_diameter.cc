// Figure 6: effect of the query diameter delta(Q), 5-50 km.
//
// Paper shape: IL flat (no spatial awareness); RT/IRT/GAT degrade as the
// query spreads (candidates around each location stop overlapping).

#include <cstdio>

#include "harness.h"

namespace gat::bench {
namespace {

void RunPanel(const CityFixture& city, QueryKind kind,
              const BenchProtocol& proto, BenchReport& report) {
  char title[128];
  std::snprintf(title, sizeof(title), "Figure 6: %s on %s",
                ToString(kind).c_str(), city.name().c_str());
  PrintPanelHeader(title, "delta(Q)", city.searchers());
  for (const double diameter : {5.0, 10.0, 20.0, 30.0, 50.0}) {
    auto wp = DefaultWorkload(/*seed=*/600 + static_cast<uint64_t>(diameter));
    wp.diameter_km = diameter;
    QueryGenerator qgen(city.dataset(), wp);
    const auto queries = qgen.Workload();
    std::vector<double> row;
    for (const Searcher* s : city.searchers()) {
      const auto m = MeasureWorkload(*s, queries, /*k=*/9, kind, proto);
      row.push_back(m.avg_cost_ms);
      char point[128];
      std::snprintf(point, sizeof(point), "%s/%s/%s/delta=%.0fkm",
                    city.name().c_str(), ToString(kind).c_str(),
                    s->name().c_str(), diameter);
      report.Add(point, m, queries.size());
    }
    char label[32];
    std::snprintf(label, sizeof(label), "%.0fkm", diameter);
    PrintPanelRow(label, row);
  }
}

void Main(const BenchProtocol& proto, BenchReport& report) {
  PrintRunBanner("Figure 6", "effect of delta(Q) (k=9, |Q|=4, |q.Phi|=3)",
                 proto);
  const double scale = ScaleFromEnv();
  const CityFixture la(CityProfile::LosAngeles(scale));
  const CityFixture ny(CityProfile::NewYork(scale));
  for (const auto* city : {&la, &ny}) {
    RunPanel(*city, QueryKind::kAtsq, proto, report);
    RunPanel(*city, QueryKind::kOatsq, proto, report);
  }
}

}  // namespace
}  // namespace gat::bench

int main(int argc, char** argv) {
  return gat::bench::BenchMain(argc, argv, "fig6_effect_diameter",
                              gat::bench::Main);
}
