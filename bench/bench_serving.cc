// The serving front door under overload: open-loop Zipf-tenant load at
// 1x/2x/4x of a base arrival rate, driven through admission control,
// deadline propagation and priority classes (src/gat/serve).
//
// The driver is a virtual-time discrete-event simulation
// (serve/load_driver.h): arrivals, token-bucket refills, deadline
// expiries and queueing all happen on a ManualClock that advances only
// between work units — real batches still execute on the engine (the
// work counters are real), but the simulated timeline is a pure
// function of the schedule. That is what lets CI gate the serving
// counters exactly: `admitted` / `shed_count` / `deadline_misses` are
// bit-identical at --threads 1 and --threads 4, on any machine.
//
// What is measured and asserted per load point, split by class
// (NY/serve/<mult>x/{interactive,bulk}):
//
//   * virtual p50/p95/p99 latency (queueing + service on the simulated
//     clock) — at 4x overload interactive p95 must stay below bulk p95
//     (the priority classes actually separate), asserted fatally;
//   * goodput: at 4x the virtual servers must run >= 90% utilized —
//     shedding and deadline misses may refuse work, but must never
//     idle the capacity that admitted work could use;
//   * every completed request's answers are asserted bit-identical to
//     an unsharded quiescent GatSearcher reference (fatal on
//     divergence) — overload may drop requests, never corrupt them;
//   * the real per-class search counters ride along and are gated by
//     the committed baselines like every other bench.
//
// Open-loop protocol extensions: --arrival-rate R sets the 1x offered
// load (default 200 req/s); the JSON protocol block records it plus
// "virtual_time": true, and scripts/bench_diff.py refuses to compare
// runs across either.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "harness.h"

#include "gat/common/clock.h"
#include "gat/engine/executor.h"
#include "gat/serve/front_door.h"
#include "gat/serve/load_driver.h"
#include "gat/shard/sharded_index.h"
#include "gat/shard/sharded_searcher.h"

namespace gat::bench {
namespace {

constexpr uint32_t kShards = 2;
constexpr size_t kTopK = 9;
constexpr QueryKind kKind = QueryKind::kAtsq;
constexpr double kDurationMs = 2000.0;
constexpr uint32_t kVirtualSlots = 4;
constexpr double kServiceMsPerQuery = 5.0;

struct ClassPoint {
  Measurement m;
  uint64_t offered = 0;
};

ClassPoint ToPoint(const ClassOutcome& cls, double duration_ms) {
  ClassPoint point;
  point.offered = cls.offered;
  Measurement& m = point.m;
  m.totals = cls.totals;
  m.repeats = 1;
  std::vector<double> sorted = cls.latency_ms;
  std::sort(sorted.begin(), sorted.end());
  m.p50_ms = PercentileMs(sorted, 50.0);
  m.p95_ms = PercentileMs(sorted, 95.0);
  m.p99_ms = PercentileMs(sorted, 99.0);
  if (!sorted.empty()) {
    double sum = 0.0;
    for (double v : sorted) sum += v;
    // Mean virtual latency as the record's ns/op: simulated, so it is
    // machine-independent — but still advisory in diffs.
    m.ns_per_op = sum / static_cast<double>(sorted.size()) * 1e6;
  }
  m.has_serving = true;
  m.admitted = cls.admitted;
  m.shed = cls.shed;
  m.deadline_misses = cls.deadline_misses;
  m.goodput_qps =
      static_cast<double>(cls.completed) / (duration_ms / 1000.0);
  return point;
}

void Main(const BenchProtocol& proto, BenchReport& report) {
  // Resolve the open-loop defaults and re-stamp the protocol block so
  // the JSON records what actually ran.
  BenchProtocol resolved = proto;
  if (resolved.arrival_rate <= 0.0) resolved.arrival_rate = 200.0;
  resolved.virtual_time = true;
  report.OverrideProtocol(resolved);

  PrintRunBanner("Serving",
                 "front-door overload sweep: admission + deadlines + "
                 "priorities on a virtual-time open loop (NY, 2 shards)",
                 resolved);

  const Dataset city = GenerateCity(CityProfile::NewYork(ScaleFromEnv()));
  QueryGenerator qgen(city, DefaultWorkload(/*seed=*/20130715));
  const std::vector<Query> pool = qgen.Workload();

  // Unsharded quiescent reference: the bit-identity oracle for every
  // answer any completed request returns.
  const GatIndex reference_index(city);
  const GatSearcher reference(city, reference_index);
  std::vector<ResultList> want(pool.size());
  for (size_t i = 0; i < pool.size(); ++i) {
    want[i] = reference.Search(pool[i], kTopK, kKind);
  }

  Executor executor(resolved.threads);
  const ShardedIndex sharded(
      city, {}, ShardOptions{.num_shards = kShards, .executor = &executor});
  const ShardedSearcher searcher(
      sharded, {}, resolved.threads > 1 ? &executor : nullptr);
  EngineOptions engine_options;
  if (resolved.threads > 1) {
    engine_options.executor = &executor;
  } else {
    engine_options.threads = 1;
  }
  const QueryEngine engine(searcher, engine_options);

  std::printf("%-22s %9s %9s %9s %9s %10s %10s\n", "point", "offered",
              "admitted", "shed", "dl-miss", "p95-ms", "goodput/s");

  double interactive_p95_4x = 0.0;
  double bulk_p95_4x = 0.0;
  double busy_ms_4x = 0.0;
  for (const uint32_t mult : {1u, 2u, 4u}) {
    ManualClock clock;
    FrontDoorOptions door_options;
    door_options.clock = &clock;
    // Aggregate sustained budget 8 x 60/s against a 4-slot virtual
    // server: at 1x most traffic admits (the hottest Zipf tenant
    // already sheds a little); at 4x the buckets and the deadline
    // checks carry the overload.
    door_options.default_quota = TenantQuota{/*tokens_per_sec=*/60.0,
                                             /*burst=*/30.0};
    FrontDoor door(engine, door_options);

    LoadScheduleParams params;
    params.arrivals_per_sec = resolved.arrival_rate * mult;
    params.duration_ms = kDurationMs;
    params.seed = 20130715 + mult;
    const std::vector<ArrivalSpec> schedule = MakeOpenLoopSchedule(params);

    DriverOptions options;
    options.virtual_slots = kVirtualSlots;
    options.service_ms_per_query = kServiceMsPerQuery;
    options.k = kTopK;
    options.kind = kKind;

    // Overload may shed or expire a request — it must never corrupt
    // one: every completed answer equals the quiescent reference.
    const ServeObserver check_results =
        [&](const ArrivalSpec& spec, const ServeResult& result) {
          if (result.status != ServeStatus::kOk) return;
          for (size_t j = 0; j < result.batch.results.size(); ++j) {
            const size_t pool_idx = (spec.pool_offset + j) % pool.size();
            if (result.batch.results[j] != want[pool_idx]) {
              std::fprintf(stderr,
                           "FATAL: completed request diverged from the "
                           "quiescent reference (%ux, pool query %zu)\n",
                           mult, pool_idx);
              std::exit(1);
            }
          }
        };

    const DriveOutcome outcome =
        RunOpenLoop(door, clock, schedule, pool, options, check_results);

    const ClassPoint interactive =
        ToPoint(outcome.interactive, kDurationMs);
    const ClassPoint bulk = ToPoint(outcome.bulk, kDurationMs);
    const std::string prefix = "NY/serve/" + std::to_string(mult) + "x/";
    report.Add(prefix + "interactive", interactive.m,
               outcome.interactive.completed, kShards);
    report.Add(prefix + "bulk", bulk.m, outcome.bulk.completed, kShards);

    const struct {
      const char* label;
      const ClassPoint* point;
    } rows[] = {{"interactive", &interactive}, {"bulk", &bulk}};
    for (const auto& row : rows) {
      const ClassPoint& p = *row.point;
      std::printf("%ux/%-20s %9llu %9llu %9llu %9llu %10.2f %10.1f\n",
                  mult, row.label,
                  static_cast<unsigned long long>(p.offered),
                  static_cast<unsigned long long>(p.m.admitted),
                  static_cast<unsigned long long>(p.m.shed),
                  static_cast<unsigned long long>(p.m.deadline_misses),
                  p.m.p95_ms, p.m.goodput_qps);
    }

    if (mult == 4) {
      interactive_p95_4x = interactive.m.p95_ms;
      bulk_p95_4x = bulk.m.p95_ms;
      busy_ms_4x =
          static_cast<double>(outcome.interactive.completed) *
              kServiceMsPerQuery +
          static_cast<double>(outcome.bulk.completed) * kServiceMsPerQuery *
              4.0;
    }
  }

  // The two serving bars, on simulated time — deterministic, so a
  // violation is a scheduling bug, not machine noise.
  if (interactive_p95_4x >= bulk_p95_4x) {
    std::fprintf(stderr,
                 "FATAL: priority classes did not separate at 4x "
                 "(interactive p95 %.2f ms >= bulk p95 %.2f ms)\n",
                 interactive_p95_4x, bulk_p95_4x);
    std::exit(1);
  }
  const double utilization =
      busy_ms_4x / (static_cast<double>(kVirtualSlots) * kDurationMs);
  std::printf("\n4x overload: interactive p95 %.2f ms < bulk p95 %.2f ms; "
              "virtual-server utilization %.1f%%\n",
              interactive_p95_4x, bulk_p95_4x, 100.0 * utilization);
  if (utilization < 0.9) {
    std::fprintf(stderr,
                 "FATAL: goodput fell more than 10%% below capacity at 4x "
                 "(utilization %.1f%%) — overload is idling servers\n",
                 100.0 * utilization);
    std::exit(1);
  }
}

}  // namespace
}  // namespace gat::bench

int main(int argc, char** argv) {
  return gat::bench::BenchMain(argc, argv, "serving", gat::bench::Main);
}
