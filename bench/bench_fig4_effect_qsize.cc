// Figure 4: effect of the number of query locations |Q| (2..6).
//
// Paper shape: RT/IRT/GAT cost grows with |Q| (more candidate streams);
// IL gets *faster* for ATSQ (more demanded activities -> fewer candidates)
// but slower for OATSQ (Dmom DP cost grows with |Q|).

#include <cstdio>

#include "harness.h"

namespace gat::bench {
namespace {

void RunPanel(const CityFixture& city, QueryKind kind,
              const BenchProtocol& proto, BenchReport& report) {
  char title[128];
  std::snprintf(title, sizeof(title), "Figure 4: %s on %s",
                ToString(kind).c_str(), city.name().c_str());
  PrintPanelHeader(title, "|Q|", city.searchers());
  for (const uint32_t num_points : {2u, 3u, 4u, 5u, 6u}) {
    auto wp = DefaultWorkload(/*seed=*/400 + num_points);
    wp.num_query_points = num_points;
    QueryGenerator qgen(city.dataset(), wp);
    const auto queries = qgen.Workload();
    std::vector<double> row;
    for (const Searcher* s : city.searchers()) {
      const auto m = MeasureWorkload(*s, queries, /*k=*/9, kind, proto);
      row.push_back(m.avg_cost_ms);
      char point[128];
      std::snprintf(point, sizeof(point), "%s/%s/%s/Q=%u",
                    city.name().c_str(), ToString(kind).c_str(),
                    s->name().c_str(), num_points);
      report.Add(point, m, queries.size());
    }
    PrintPanelRow(std::to_string(num_points), row);
  }
}

void Main(const BenchProtocol& proto, BenchReport& report) {
  PrintRunBanner("Figure 4", "effect of |Q| (k=9, |q.Phi|=3, d=10km)", proto);
  const double scale = ScaleFromEnv();
  const CityFixture la(CityProfile::LosAngeles(scale));
  const CityFixture ny(CityProfile::NewYork(scale));
  for (const auto* city : {&la, &ny}) {
    RunPanel(*city, QueryKind::kAtsq, proto, report);
    RunPanel(*city, QueryKind::kOatsq, proto, report);
  }
}

}  // namespace
}  // namespace gat::bench

int main(int argc, char** argv) {
  return gat::bench::BenchMain(argc, argv, "fig4_effect_qsize",
                              gat::bench::Main);
}
