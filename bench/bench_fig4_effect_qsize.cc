// Figure 4: effect of the number of query locations |Q| (2..6).
//
// Paper shape: RT/IRT/GAT cost grows with |Q| (more candidate streams);
// IL gets *faster* for ATSQ (more demanded activities -> fewer candidates)
// but slower for OATSQ (Dmom DP cost grows with |Q|).

#include <cstdio>

#include "harness.h"

namespace gat::bench {
namespace {

void RunPanel(const CityFixture& city, QueryKind kind) {
  char title[128];
  std::snprintf(title, sizeof(title), "Figure 4: %s on %s",
                ToString(kind).c_str(), city.name().c_str());
  PrintPanelHeader(title, "|Q|", city.searchers());
  for (const uint32_t num_points : {2u, 3u, 4u, 5u, 6u}) {
    auto wp = DefaultWorkload(/*seed=*/400 + num_points);
    wp.num_query_points = num_points;
    QueryGenerator qgen(city.dataset(), wp);
    const auto queries = qgen.Workload();
    std::vector<double> row;
    for (const Searcher* s : city.searchers()) {
      row.push_back(RunWorkload(*s, queries, /*k=*/9, kind).avg_cost_ms);
    }
    PrintPanelRow(std::to_string(num_points), row);
  }
}

void Main() {
  PrintRunBanner("Figure 4", "effect of |Q| (k=9, |q.Phi|=3, d=10km)");
  const double scale = ScaleFromEnv();
  const CityFixture la(CityProfile::LosAngeles(scale));
  const CityFixture ny(CityProfile::NewYork(scale));
  for (const auto* city : {&la, &ny}) {
    RunPanel(*city, QueryKind::kAtsq);
    RunPanel(*city, QueryKind::kOatsq);
  }
}

}  // namespace
}  // namespace gat::bench

int main() {
  gat::bench::Main();
  return 0;
}
