// The storage subsystem (gat/storage) measured end-to-end: mmap-backed
// snapshot serving vs the default in-memory ("simulated") disk tier.
//
// What is measured and asserted, all over the same NY workload:
//
//   * simulated/...: the reference — everything heap-resident, disk
//     reads only counted. Its deterministic counters gate regressions.
//   * equivalence: a MappedSnapshot of the same index must answer every
//     query bit-identically AND with the *same logical disk_reads* —
//     the mmap tier changes what a read physically does (page-granular
//     block I/O + CRC verify through the block cache), never how many
//     the algorithm performs. Asserted per query, fatal on divergence.
//   * mmap/cache=1-N/...: the cache sweep, thrash -> fully resident.
//     Budgets are fractions of the snapshot file so the sweep scales
//     with GAT_BENCH_SCALE. Block hit rate must rise monotonically with
//     the budget (LRU inclusion; hard-asserted at --threads 1 where the
//     access sequence is deterministic) and avg_ms falls as misses —
//     the real reads — disappear.
//   * cold/io=...: the cold-working-set sweep — a thrash-sized cache
//     (file/16) under every physical read path: pagefault (mmap),
//     feedback-widened prefetch, explicit async reads (io_uring or the
//     pread pool), stage-then-search, and staging with scan-resistant
//     admission. Logical disk_reads must equal the simulated reference
//     at every point (fatal otherwise); wall-clock percentiles and
//     worker_stalls are advisory.
//   * mmap/shards=N: ShardedIndex in mmap mode (one shared cache
//     budget) at 1/2/4 shards, asserted bit-identical to the reference.
//   * startup/...: stream-load vs mmap-load wall-clock — what not
//     materializing the disk tier buys a cold start.
//
// JSON adds the append-only cache fields (block_size, blocks_read,
// cache_hit_rate, prefetched_blocks; see docs/BENCH_PROTOCOL.md).
// blocks_read is deterministic at --threads 1; scripts/bench_diff.py
// treats it as a counter there and as advisory at higher thread counts.

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "harness.h"

#include "gat/engine/executor.h"
#include "gat/index/snapshot.h"
#include "gat/shard/sharded_index.h"
#include "gat/shard/sharded_searcher.h"
#include "gat/storage/loaded_snapshot.h"
#include "gat/storage/mapped_snapshot.h"
#include "gat/storage/prefetch.h"

namespace gat::bench {
namespace {

struct SweepPoint {
  const char* label;   // record-name fragment, machine-independent
  uint64_t divisor;    // budget = file_bytes / divisor
};

void Main(const BenchProtocol& proto, BenchReport& report) {
  PrintRunBanner("Storage tier",
                 "mmap snapshot serving + block cache sweep vs the "
                 "simulated disk tier (NY, defaults)",
                 proto);
  const Dataset city = GenerateCity(CityProfile::NewYork(ScaleFromEnv()));
  QueryGenerator qgen(city, DefaultWorkload(/*seed=*/20130715));
  const auto queries = qgen.Workload();
  constexpr size_t kTopK = 9;
  constexpr QueryKind kKind = QueryKind::kAtsq;

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("gat_storage_tier_bench." + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string snapshot_path = (dir / "index.gats").string();

  // ------------------------------------------------------------ reference
  const GatIndex index(city);
  const GatSearcher simulated(city, index);
  const uint32_t fingerprint = DatasetFingerprint(city);
  if (!SaveSnapshot(index, snapshot_path, fingerprint)) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", snapshot_path.c_str());
    std::exit(1);
  }
  const auto file_bytes = std::filesystem::file_size(snapshot_path);

  const Measurement sim = MeasureWorkload(simulated, queries, kTopK, kKind,
                                          proto);
  report.Add("NY/ATSQ/simulated", sim, queries.size());
  std::printf("\nsnapshot: %llu bytes (APL+HICL disk tier %zu bytes)\n",
              static_cast<unsigned long long>(file_bytes),
              index.memory_breakdown().DiskTotal());

  // ------------------------------------- equivalence: results + disk reads
  // The acceptance bar of the subsystem: same answers, same logical
  // read counts, per query, across every physical read path — the mmap
  // tier and the async tier change what a read physically does
  // (pagefaults vs explicit positioned I/O), never how many the
  // algorithm performs.
  {
    const LoadedSnapshot snap = LoadedSnapshot::LoadMapped(snapshot_path);
    MappedSnapshotOptions async_options;
    async_options.io_mode = SnapshotIoMode::kAsync;
    const LoadedSnapshot async_snap =
        LoadedSnapshot::LoadMapped(snapshot_path, async_options);
    if (!snap || !async_snap) {
      std::fprintf(stderr, "FATAL: cannot mmap/async-load %s\n",
                   snapshot_path.c_str());
      std::exit(1);
    }
    const GatSearcher mapped(city, *snap);
    const GatSearcher async_mapped(city, *async_snap);
    for (size_t i = 0; i < queries.size(); ++i) {
      SearchStats sim_stats, map_stats, async_stats;
      const ResultList want = simulated.Search(queries[i], kTopK, kKind,
                                               &sim_stats);
      const ResultList got = mapped.Search(queries[i], kTopK, kKind,
                                           &map_stats);
      const ResultList async_got = async_mapped.Search(queries[i], kTopK,
                                                       kKind, &async_stats);
      if (want != got || sim_stats.disk_reads != map_stats.disk_reads) {
        std::fprintf(stderr,
                     "FATAL: mmap tier diverged at query %zu (results %s, "
                     "disk_reads %llu vs %llu)\n",
                     i, want == got ? "equal" : "DIFFER",
                     static_cast<unsigned long long>(sim_stats.disk_reads),
                     static_cast<unsigned long long>(map_stats.disk_reads));
        std::exit(1);
      }
      if (want != async_got ||
          sim_stats.disk_reads != async_stats.disk_reads) {
        std::fprintf(stderr,
                     "FATAL: async tier (%s) diverged at query %zu "
                     "(results %s, disk_reads %llu vs %llu)\n",
                     async_snap.mapped()->async_tier()->backend_name(), i,
                     want == async_got ? "equal" : "DIFFER",
                     static_cast<unsigned long long>(sim_stats.disk_reads),
                     static_cast<unsigned long long>(async_stats.disk_reads));
        std::exit(1);
      }
    }
    std::printf("equivalence: %zu queries bit-identical, disk_reads equal "
                "across simulated / mmap / async (%s)\n",
                queries.size(), async_snap.mapped()->async_tier()->backend_name());
  }

  // --------------------------------------------------------- cache sweep
  // Thrash -> fully resident. LRU inclusion makes the hit rate
  // monotone in the budget for a fixed access sequence, so at
  // --threads 1 (deterministic sequence) any inversion is a bug.
  const SweepPoint sweep[] = {
      {"1-64", 64}, {"1-16", 16}, {"1-4", 4}, {"1-1", 1}};
  std::printf("\n%-14s%14s%14s%14s%14s\n", "cache", "hit rate", "blocks read",
              "prefetched", "avg ms/query");
  double prev_hit_rate = -1.0;
  double prev_avg_ms = -1.0;
  bool avg_ms_monotone = true;
  for (const SweepPoint& point : sweep) {
    MappedSnapshotOptions options;
    options.cache_config.block_bytes = 1024;
    options.cache_config.shards = 4;
    options.cache_config.capacity_bytes =
        std::max<uint64_t>(file_bytes / point.divisor, 4 * 1024);
    const LoadedSnapshot snap =
        LoadedSnapshot::LoadMapped(snapshot_path, options);
    if (!snap) {
      std::fprintf(stderr, "FATAL: mmap-load failed in sweep\n");
      std::exit(1);
    }
    const GatSearcher mapped(city, *snap);
    const PrefetchScheduler prefetcher({snap.index()},
                                       &snap.mapped()->cache());
    const Measurement m = MeasureWorkload(mapped, queries, kTopK, kKind,
                                          proto, &prefetcher);
    char name[128];
    std::snprintf(name, sizeof(name), "NY/ATSQ/mmap/cache=%s", point.label);
    report.Add(name, m, queries.size());

    const double hit_rate = CacheHitRate(
        m.totals.block_hits, m.totals.block_hits + m.totals.blocks_read);
    std::printf("%-14s%13.1f%%%14llu%14llu%14.3f\n", point.label,
                100.0 * hit_rate,
                static_cast<unsigned long long>(m.totals.blocks_read),
                static_cast<unsigned long long>(m.prefetched_blocks),
                m.avg_ms);
    if (proto.threads == 1 && hit_rate + 1e-12 < prev_hit_rate) {
      std::fprintf(stderr,
                   "FATAL: hit rate fell as the cache grew (%f -> %f) — "
                   "LRU inclusion violated\n",
                   prev_hit_rate, hit_rate);
      std::exit(1);
    }
    if (prev_avg_ms >= 0.0 && m.avg_ms > prev_avg_ms) {
      avg_ms_monotone = false;
    }
    prev_hit_rate = hit_rate;
    prev_avg_ms = m.avg_ms;
  }
  if (!avg_ms_monotone) {
    std::printf("note: avg_ms not strictly monotone across the sweep "
                "(wall-clock noise; hit rate is the deterministic "
                "signal)\n");
  }

  // --------------------------------------------- cold working set sweep
  // Every point starts from its own cold cache sized to thrash
  // (file/16) — the regime where the physical read path matters. The
  // points walk the tentpole: pagefault baseline, feedback-widened
  // prefetch, explicit async reads, stage-then-search (queries yield
  // their executor slot while cold blocks are in flight), and staging
  // with scan-resistant admission. Logical disk_reads must equal the
  // simulated reference at every point — staging, feedback and
  // admission change when (and whether) blocks are resident, never how
  // many logical reads the algorithm performs. `worker_stalls` /
  // latency percentiles are the wall-clock side and stay advisory.
  {
    struct ColdPoint {
      const char* label;
      bool async;
      bool staged;
      bool feedback;
      bool scan_resistant;
    };
    const ColdPoint cold_points[] = {
        {"cold/io=mmap", false, false, false, false},
        {"cold/io=mmap+feedback", false, false, true, false},
        {"cold/io=async", true, false, false, false},
        {"cold/io=async-staged", true, true, false, false},
        {"cold/io=async-staged-2q", true, true, false, true},
    };
    std::printf("\n%-26s%14s%14s%14s%14s%14s\n", "cold point", "backend",
                "blocks read", "stalls", "adm rejects", "p95 ms");
    double mmap_p95 = -1.0;
    double staged_p95 = -1.0;
    for (const ColdPoint& point : cold_points) {
      MappedSnapshotOptions options;
      options.cache_config.block_bytes = 1024;
      options.cache_config.shards = 4;
      options.cache_config.capacity_bytes =
          std::max<uint64_t>(file_bytes / 16, 4 * 1024);
      if (point.scan_resistant) {
        options.cache_config.admission = CacheAdmission::kScanResistant;
      }
      if (point.async) options.io_mode = SnapshotIoMode::kAsync;
      const LoadedSnapshot snap =
          LoadedSnapshot::LoadMapped(snapshot_path, options);
      if (!snap) {
        std::fprintf(stderr, "FATAL: load failed at %s\n", point.label);
        std::exit(1);
      }
      const GatSearcher mapped(city, *snap);
      PrefetchScheduler prefetcher({snap.index()}, &snap.mapped()->cache());
      if (point.feedback) {
        prefetcher.ConfigureFeedback({.enabled = true});
      }
      std::unique_ptr<IoStager> stager;
      if (point.staged) {
        stager = std::make_unique<IoStager>(snap.index(),
                                            snap.mapped()->async_tier());
      }
      Measurement m = MeasureWorkload(mapped, queries, kTopK, kKind, proto,
                                      point.staged ? nullptr : &prefetcher,
                                      stager.get());
      m.has_io = true;
      m.io_backend =
          point.async ? snap.mapped()->async_tier()->backend_name() : "mmap";
      if (point.async) {
        const AsyncTierStats tier_stats = snap.mapped()->async_tier()->stats();
        m.worker_stalls = tier_stats.worker_stalls;
        // Every stalled block was a demand miss; the cumulative cache
        // misses bound the cumulative stall count.
        if (tier_stats.stalled_blocks > snap.mapped()->cache().Snapshot().misses) {
          std::fprintf(stderr,
                       "FATAL: %s stalled on %llu blocks but only %llu "
                       "demand misses happened\n",
                       point.label,
                       static_cast<unsigned long long>(
                           tier_stats.stalled_blocks),
                       static_cast<unsigned long long>(
                           snap.mapped()->cache().Snapshot().misses));
          std::exit(1);
        }
      }
      if (point.scan_resistant) m.has_admission = true;
      char name[128];
      std::snprintf(name, sizeof(name), "NY/ATSQ/%s", point.label);
      report.Add(name, m, queries.size());

      if (m.totals.disk_reads != sim.totals.disk_reads) {
        std::fprintf(stderr,
                     "FATAL: %s changed logical disk_reads (%llu, simulated "
                     "reference %llu)\n",
                     point.label,
                     static_cast<unsigned long long>(m.totals.disk_reads),
                     static_cast<unsigned long long>(sim.totals.disk_reads));
        std::exit(1);
      }
      if (std::strcmp(point.label, "cold/io=mmap") == 0) mmap_p95 = m.p95_ms;
      if (std::strcmp(point.label, "cold/io=async-staged") == 0) {
        staged_p95 = m.p95_ms;
      }
      std::printf("%-26s%14s%14llu%14llu%14llu%14.3f\n", point.label,
                  m.io_backend.c_str(),
                  static_cast<unsigned long long>(m.totals.blocks_read),
                  static_cast<unsigned long long>(m.worker_stalls),
                  static_cast<unsigned long long>(m.admission_rejects),
                  m.p95_ms);
    }
    if (proto.threads > 1 && mmap_p95 >= 0.0 && staged_p95 >= 0.0) {
      // Advisory, not asserted: page-cache state and CI neighbors move
      // wall time; the deterministic signal is the counters above.
      std::printf("cold p95: staged async %.3f ms vs pagefault %.3f ms "
                  "(%s)\n",
                  staged_p95, mmap_p95,
                  staged_p95 <= mmap_p95 ? "staged wins" : "pagefault won "
                                                          "this run");
    }
  }

  // ------------------------------------------------- sharded mmap serving
  Executor executor(proto.threads);
  for (const uint32_t num_shards : {1u, 2u, 4u}) {
    ShardOptions options;
    options.num_shards = num_shards;
    options.executor = &executor;
    options.snapshot_dir = (dir / ("shards-" + std::to_string(num_shards)))
                               .string();
    options.mmap_disk_tier = true;
    options.cache_config.block_bytes = 1024;
    options.cache_config.capacity_bytes = file_bytes;  // shared, resident
    const ShardedIndex sharded(city, {}, options);
    if (sharded.shards_mmap_served() != num_shards) {
      std::fprintf(stderr, "FATAL: %u/%u shards mmap-served\n",
                   sharded.shards_mmap_served(), num_shards);
      std::exit(1);
    }
    const ShardedSearcher searcher(sharded, {},
                                   proto.threads > 1 ? &executor : nullptr);
    // Pin-per-query mode: same prediction over the same shard indexes
    // and the same shared cache, so the blocks_read counters the
    // baseline gates are unchanged.
    const PrefetchScheduler prefetcher(sharded);
    const Measurement m = MeasureWorkload(searcher, queries, kTopK, kKind,
                                          proto, &prefetcher);
    char name[128];
    std::snprintf(name, sizeof(name), "NY/ATSQ/mmap/shards=%u", num_shards);
    report.Add(name, m, queries.size(), num_shards);

    // Merged top-k must stay bit-identical to the unpartitioned,
    // unmapped reference at every shard count.
    for (size_t i = 0; i < queries.size(); ++i) {
      const ResultList want = simulated.Search(queries[i], kTopK, kKind);
      const ResultList got = searcher.Search(queries[i], kTopK, kKind);
      if (want != got) {
        std::fprintf(stderr,
                     "FATAL: sharded mmap serving diverged (shards=%u, "
                     "query %zu)\n",
                     num_shards, i);
        std::exit(1);
      }
    }
  }
  std::printf("sharded mmap serving: 1/2/4 shards bit-identical to the "
              "reference\n");

  // ------------------------------------------------------------- startup
  // Warm start: stream deserialization vs mapping. The mapped load does
  // one CRC sweep and materializes only the RAM tier.
  {
    Stopwatch stream_timer;
    const auto streamed = LoadSnapshot(snapshot_path, nullptr, fingerprint);
    const double stream_ms = stream_timer.ElapsedMillis();
    Stopwatch map_timer;
    const LoadedSnapshot snap = LoadedSnapshot::LoadMapped(snapshot_path);
    const double map_ms = map_timer.ElapsedMillis();
    if (streamed == nullptr || !snap) {
      std::fprintf(stderr, "FATAL: startup loads failed\n");
      std::exit(1);
    }
    report.AddRaw("startup/stream-load", stream_ms * 1e6, 0.0, 1, 1);
    report.AddRaw("startup/mmap-load", map_ms * 1e6, 0.0, 1, 1);
    std::printf("\nstartup: stream-load %.2f ms, mmap-load %.2f ms\n",
                stream_ms, map_ms);
  }

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

}  // namespace
}  // namespace gat::bench

int main(int argc, char** argv) {
  return gat::bench::BenchMain(argc, argv, "storage_tier", gat::bench::Main);
}
