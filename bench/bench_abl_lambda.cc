// Ablation: the candidate batch size lambda of Algorithm 1. Small batches
// re-evaluate the lower bound often (early termination, but bookkeeping
// overhead); large batches retrieve more candidates than necessary.

#include <cstdio>

#include "harness.h"

namespace gat::bench {
namespace {

void Run(const CityFixture& city, QueryKind kind, const BenchProtocol& proto,
         BenchReport& report) {
  QueryGenerator qgen(city.dataset(), DefaultWorkload(/*seed=*/930));
  const auto queries = qgen.Workload();
  std::printf("\n=== lambda ablation: %s on %s ===\n", ToString(kind).c_str(),
              city.name().c_str());
  std::printf("%-10s%12s%14s%12s\n", "lambda", "avg ms", "candidates",
              "rounds");
  for (const uint32_t lambda : {1u, 4u, 16u, 64u, 256u, 1024u}) {
    GatSearchParams params;
    params.lambda = lambda;
    const GatSearcher searcher(city.dataset(), city.index(), params);
    const auto m = MeasureWorkload(searcher, queries, 9, kind, proto);
    std::printf("%-10u%12.3f%14llu%12llu\n", lambda, m.avg_cost_ms,
                static_cast<unsigned long long>(m.totals.candidates_retrieved),
                static_cast<unsigned long long>(m.totals.rounds));
    char point[128];
    std::snprintf(point, sizeof(point), "%s/%s/GAT/lambda=%u",
                  city.name().c_str(), ToString(kind).c_str(), lambda);
    report.Add(point, m, queries.size());
  }
}

void Main(const BenchProtocol& proto, BenchReport& report) {
  PrintRunBanner("Ablation", "candidate batch size lambda (Algorithm 1)",
                 proto);
  const CityFixture la(CityProfile::LosAngeles(ScaleFromEnv()));
  Run(la, QueryKind::kAtsq, proto, report);
  Run(la, QueryKind::kOatsq, proto, report);
}

}  // namespace
}  // namespace gat::bench

int main(int argc, char** argv) {
  return gat::bench::BenchMain(argc, argv, "abl_lambda",
                              gat::bench::Main);
}
