// Shard scalability (beyond the paper): query cost and startup cost of
// the sharded serving layer vs the single monolithic GAT index.
//
// Two things are measured per shard count (1, 2, 4, 8):
//   * query performance of ShardedSearcher under the standard protocol —
//     the deterministic work counters quantify the fan-out overhead
//     (every shard is probed, so candidate/disk counters grow with N
//     while per-shard indexes shrink);
//   * startup: cold build seconds vs warm snapshot-load seconds through
//     the self-priming snapshot cache (`startup/...` records, ns_per_op =
//     nanoseconds for the whole construction).
//
// The merged top-k is bit-identical to the single index by construction
// (tests/shard_test.cc); this bench tracks what that costs.

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "harness.h"

#include "gat/shard/sharded_index.h"
#include "gat/shard/sharded_searcher.h"

namespace gat::bench {
namespace {

void Main(const BenchProtocol& proto, BenchReport& report) {
  PrintRunBanner("Shard scalability",
                 "sharded GAT serving vs the single index (NY, defaults)",
                 proto);
  const Dataset city = GenerateCity(CityProfile::NewYork(ScaleFromEnv()));
  QueryGenerator qgen(city, DefaultWorkload(/*seed=*/4242));
  const auto queries = qgen.Workload();

  const GatIndex single_index(city);
  const GatSearcher single(city, single_index);

  // Per-process cache dir: concurrent runs on one machine must not
  // delete each other's snapshots mid-measurement.
  const std::string cache_dir =
      (std::filesystem::temp_directory_path() /
       ("gat_bench_shard_cache." + std::to_string(getpid())))
          .string();
  std::filesystem::remove_all(cache_dir);

  std::printf("\n%-10s%14s%14s%16s%16s\n", "shards", "ATSQ ms/q",
              "OATSQ ms/q", "cold build s", "warm load s");
  for (const uint32_t num_shards : {1u, 2u, 4u, 8u}) {
    ShardOptions options;
    options.num_shards = num_shards;
    options.build_threads = proto.threads;

    ShardOptions cached = options;
    cached.snapshot_dir = cache_dir + "/n" + std::to_string(num_shards);
    // Cold is built WITHOUT a snapshot dir so its timing is pure index
    // construction; priming the cache happens outside the timed ctor.
    const ShardedIndex cold(city, {}, options);
    cold.SaveSnapshots(cached.snapshot_dir);
    const ShardedIndex warm(city, {}, cached);   // restores every shard
    if (warm.shards_loaded_from_snapshot() != num_shards) {
      std::fprintf(stderr, "warm start failed to load %u shards\n",
                   num_shards);
      std::exit(1);
    }
    const ShardedSearcher searcher(warm);

    char point[128];
    std::snprintf(point, sizeof(point), "startup/cold-build/shards=%u",
                  num_shards);
    report.AddRaw(point, cold.build_seconds() * 1e9, 0.0, 1, 1);
    std::snprintf(point, sizeof(point), "startup/warm-load/shards=%u",
                  num_shards);
    report.AddRaw(point, warm.build_seconds() * 1e9, 0.0, 1, 1);

    double row_ms[2] = {0.0, 0.0};
    for (const QueryKind kind : {QueryKind::kAtsq, QueryKind::kOatsq}) {
      const auto m = MeasureWorkload(searcher, queries, /*k=*/9, kind, proto);
      row_ms[kind == QueryKind::kOatsq] = m.avg_cost_ms;
      std::snprintf(point, sizeof(point), "NY/%s/GAT-sharded/shards=%u",
                    ToString(kind).c_str(), num_shards);
      report.Add(point, m, queries.size());
    }
    std::printf("%-10u%14.3f%14.3f%16.3f%16.3f\n", num_shards, row_ms[0],
                row_ms[1], cold.build_seconds(), warm.build_seconds());
  }

  // The monolithic reference under the identical protocol.
  for (const QueryKind kind : {QueryKind::kAtsq, QueryKind::kOatsq}) {
    const auto m = MeasureWorkload(single, queries, /*k=*/9, kind, proto);
    char point[128];
    std::snprintf(point, sizeof(point), "NY/%s/GAT/single",
                  ToString(kind).c_str());
    report.Add(point, m, queries.size());
    std::printf("%-10s%14.3f  (%s, single index reference)\n", "1 (mono)",
                m.avg_cost_ms, ToString(kind).c_str());
  }
  std::filesystem::remove_all(cache_dir);
}

}  // namespace
}  // namespace gat::bench

int main(int argc, char** argv) {
  return gat::bench::BenchMain(argc, argv, "shard_scalability",
                               gat::bench::Main);
}
