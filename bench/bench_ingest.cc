// Live ingestion measured end-to-end: query latency over the merged
// (base + delta) view as the delta grows, across a merge, and under
// sustained concurrent write/merge fire.
//
// The serving setup is the live stack gat_server deploys: a LiveIndex
// (4-shard in-memory base + copy-on-write delta) queried through
// LiveSearcher on a shared executor. Every measured point is held to
// the invariant the delta design rests on — the merged top-k is
// bit-identical to a monolithic GatIndex rebuilt over the same data —
// with a per-query assert (fatal on divergence) at whatever --threads
// the run uses (CI runs 1 and 4).
//
// What is measured and asserted:
//
//   * NY/ATSQ/delta=0: the quiescent baseline — fresh base, empty
//     delta. The delta scan should be free here.
//   * NY/ATSQ/delta=live: the same workload after a fixed batch-ingest
//     schedule filled the delta. Bit-identity vs the monolithic rebuild
//     of base ⊕ delta, both query kinds, per query.
//   * startup/merge-latency: wall-clock of one MergeDelta (extend +
//     per-shard build + swap) — the cold path merging moved off the
//     serving threads.
//   * NY/ATSQ/merged: the workload after that merge sealed the delta
//     into base generation 1. Same counters as a cold build over the
//     extended dataset; bit-identity again.
//   * NY/ATSQ/ingest=drained: timed while writer threads stream batches
//     and a merger swaps generations at ALTERNATING shard cuts (4 -> 3
//     -> 4 -> 3 -> 4) under the measurement — every query must succeed
//     (fatal otherwise: a failed or malformed answer under generation
//     swap is the bug this bench exists to catch). The racing fire owns
//     the record's latency sample; its work counters come from a
//     single-threaded canonical replay of the same batches (fixed
//     interleave, fixed merge points), because the state the race
//     leaves behind — trajectory segmentation and fold order — depends
//     on where the merges landed relative to the writers. Same
//     check-ins, same merge count, same watermark and generation,
//     deterministic counters. `freshness_lag_ms` (one batch's
//     ingest-to-queryable wall clock) stays advisory.
//
// JSON: every record carries the append-only ingest fields
// (`ingested_checkins`, `delta_trajectories`, `merges_completed`,
// `generation` — exact, quiesced; `freshness_lag_ms` — advisory). See
// docs/BENCH_PROTOCOL.md.

#include <array>
#include <cstdio>
#include <thread>
#include <vector>

#include "harness.h"

#include "gat/engine/executor.h"
#include "gat/live/live_index.h"
#include "gat/live/live_searcher.h"
#include "gat/util/rng.h"
#include "gat/util/stopwatch.h"

namespace gat::bench {
namespace {

constexpr uint32_t kShards = 4;
constexpr size_t kTopK = 9;
constexpr QueryKind kKind = QueryKind::kAtsq;

// Fixed ingest schedule: deterministic watermarks at every quiesced
// record, whatever the thread interleaving between them was.
constexpr size_t kBatchSize = 6;
constexpr int kDeltaBatches = 40;          // phase 2: 240 check-ins
constexpr int kFireWriters = 2;            // phase 4
constexpr int kFireBatchesPerWriter = 25;  // phase 4: 300 check-ins
constexpr uint64_t kFreshnessProbe = kBatchSize;  // one more batch

std::vector<CheckIn> SampleCheckIns(const Dataset& dataset, Rng& rng,
                                    size_t count, uint64_t user_base,
                                    uint64_t num_users, uint64_t serial) {
  std::vector<CheckIn> out;
  out.reserve(count);
  while (out.size() < count) {
    const Trajectory& t = dataset.trajectories()[rng.NextU32(
        static_cast<uint32_t>(dataset.size()))];
    if (t.empty()) continue;
    const TrajectoryPoint& p =
        t.points()[rng.NextU32(static_cast<uint32_t>(t.size()))];
    out.push_back({user_base + (serial + out.size()) % num_users, p.location,
                   p.activities});
  }
  return out;
}

void Main(const BenchProtocol& proto, BenchReport& report) {
  PrintRunBanner("Live ingestion",
                 "query latency over base + delta, across merges, and "
                 "under concurrent write/merge fire (NY, 4 shards)",
                 proto);
  Executor executor(proto.threads);
  ShardOptions options;
  options.num_shards = kShards;
  options.executor = &executor;
  LiveIndex live(GenerateCity(CityProfile::NewYork(ScaleFromEnv())), {},
                 options);
  QueryGenerator qgen(live.base(), DefaultWorkload(/*seed=*/20130131));
  const auto queries = qgen.Workload();
  const LiveSearcher searcher(live, {},
                              proto.threads > 1 ? &executor : nullptr);

  // The bench's backbone: every quiesced point re-runs the workload
  // through the engine at the protocol's thread count and holds each
  // answer, both query kinds, against a monolithic GatIndex rebuilt
  // from exactly the data the pinned view serves.
  auto assert_bit_identical = [&](const LiveIndex& index,
                                  const LiveSearcher& via,
                                  const char* where) {
    const auto view = index.Pin();
    if (view->delta->base_generation != view->generation->number()) {
      std::fprintf(stderr, "FATAL: %s: view pairs delta@gen%llu with "
                           "base gen%llu\n",
                   where,
                   static_cast<unsigned long long>(
                       view->delta->base_generation),
                   static_cast<unsigned long long>(
                       view->generation->number()));
      std::exit(1);
    }
    const Dataset state = index.base().ExtendWith(view->delta->trajectories);
    const GatIndex mono(state);
    const GatSearcher reference(state, mono);
    QueryEngine engine(via, EngineOptions{.threads = proto.threads});
    for (const QueryKind kind : {QueryKind::kAtsq, QueryKind::kOatsq}) {
      const BatchResult batch = engine.Run(queries, kTopK, kind);
      for (size_t i = 0; i < queries.size(); ++i) {
        if (batch.results[i] != reference.Search(queries[i], kTopK, kind)) {
          std::fprintf(stderr,
                       "FATAL: %s: query %zu kind %d diverged from the "
                       "monolithic rebuild\n",
                       where, i, static_cast<int>(kind));
          std::exit(1);
        }
      }
    }
    std::printf("%s: %zu queries x 2 kinds bit-identical to monolithic "
                "rebuild (threads=%u)\n",
                where, queries.size(), proto.threads);
  };

  // Every check-in the bench will ever ingest is sampled here, from the
  // birth base. Sampling later would make the content depend on the
  // ingest/merge interleaving (the base grows at every merge), and
  // racing writers may not touch base() while a merge extends it —
  // base() is only stable for callers that hold no race with MergeDelta.
  std::vector<std::vector<CheckIn>> delta_batches;
  std::array<std::vector<std::vector<CheckIn>>, kFireWriters> fire_batches;
  std::vector<CheckIn> freshness_batch;
  {
    Rng rng(20130131);
    for (int b = 0; b < kDeltaBatches; ++b) {
      delta_batches.push_back(
          SampleCheckIns(live.base(), rng, kBatchSize, 50'000, 12,
                         static_cast<uint64_t>(b) * kBatchSize));
    }
    for (int w = 0; w < kFireWriters; ++w) {
      Rng fire_rng(777 + static_cast<uint64_t>(w));
      const uint64_t user_base = 60'000 + static_cast<uint64_t>(w) * 1'000;
      for (int b = 0; b < kFireBatchesPerWriter; ++b) {
        fire_batches[w].push_back(
            SampleCheckIns(live.base(), fire_rng, kBatchSize, user_base, 9,
                           static_cast<uint64_t>(b) * kBatchSize));
      }
    }
    Rng fresh_rng(31);
    freshness_batch =
        SampleCheckIns(live.base(), fresh_rng, kFreshnessProbe, 70'000, 3, 0);
  }

  auto ingest_state = [&](Measurement m, double freshness_ms = 0.0) {
    m.has_ingest = true;
    m.ingested_checkins = live.watermark();
    m.delta_trajectories = live.delta_trajectories();
    m.merges_completed = live.merges_completed();
    m.generation = live.sharded().generation_number();
    m.freshness_lag_ms = freshness_ms;
    return m;
  };

  // ------------------------------------------------------ empty delta
  assert_bit_identical(live, searcher, "delta=0");
  report.Add("NY/ATSQ/delta=0",
             ingest_state(MeasureWorkload(searcher, queries, kTopK, kKind,
                                          proto)),
             queries.size(), kShards);

  // ------------------------------------------------- a populated delta
  for (int b = 0; b < kDeltaBatches; ++b) {
    if (!live.Ingest(delta_batches[static_cast<size_t>(b)])) {
      std::fprintf(stderr, "FATAL: ingest batch %d rejected\n", b);
      std::exit(1);
    }
  }
  std::printf("\ningested %llu check-ins -> %zu delta trajectories\n",
              static_cast<unsigned long long>(live.watermark()),
              live.delta_trajectories());
  assert_bit_identical(live, searcher, "delta=live");
  report.Add("NY/ATSQ/delta=live",
             ingest_state(MeasureWorkload(searcher, queries, kTopK, kKind,
                                          proto)),
             queries.size(), kShards);

  // ------------------------------------------------- one merge, timed
  {
    Stopwatch timer;
    if (!live.MergeDelta(kShards, "", &executor)) {
      std::fprintf(stderr, "FATAL: MergeDelta refused\n");
      std::exit(1);
    }
    const double merge_ms = timer.ElapsedMillis();
    report.AddRaw("startup/merge-latency", merge_ms * 1e6, 0.0, 1, 1);
    std::printf("\none MergeDelta (extend + %u-shard build + swap): "
                "%.2f ms\n",
                kShards, merge_ms);
  }
  assert_bit_identical(live, searcher, "merged");
  report.Add("NY/ATSQ/merged",
             ingest_state(MeasureWorkload(searcher, queries, kTopK, kKind,
                                          proto)),
             queries.size(), kShards);

  // ------------------------- concurrent fire: writers + cut-changing
  // merger under the measured batches. Queries must all succeed; the
  // shard cut provably changes mid-measurement (3 <-> 4).
  const uint64_t generations_before = live.sharded().generations_published();
  std::vector<std::thread> writers;
  for (int w = 0; w < kFireWriters; ++w) {
    writers.emplace_back([&live, &fire_batches, w] {
      for (const auto& batch : fire_batches[static_cast<size_t>(w)]) {
        if (!live.Ingest(batch)) {
          std::fprintf(stderr, "FATAL: fire ingest rejected\n");
          std::exit(1);
        }
      }
    });
  }
  std::thread merger([&live, &executor] {
    for (const uint32_t cut : {3u, 4u, 3u, 4u}) {
      if (!live.MergeDelta(cut, "", &executor)) {
        std::fprintf(stderr, "FATAL: fire MergeDelta(%u) refused\n", cut);
        std::exit(1);
      }
    }
  });
  const Measurement fire =
      MeasureWorkload(searcher, queries, kTopK, kKind, proto);
  for (auto& w : writers) w.join();
  merger.join();

  // Freshness probe: one more batch, ingest-to-queryable wall clock.
  // Publication is the queryability boundary (the next Pin serves it),
  // so this times the validate + log + copy-on-write publish path.
  double freshness_ms = 0.0;
  {
    const uint64_t target = live.watermark() + kFreshnessProbe;
    Stopwatch timer;
    if (!live.Ingest(freshness_batch)) {
      std::fprintf(stderr, "FATAL: freshness batch rejected\n");
      std::exit(1);
    }
    if (live.Pin()->delta->watermark < target) {
      std::fprintf(stderr, "FATAL: accepted batch not queryable\n");
      std::exit(1);
    }
    freshness_ms = timer.ElapsedMillis();
  }

  // Drain: one final merge back at the canonical cut seals everything,
  // making every counter on the fire record exact and diffable.
  if (!live.MergeDelta(kShards, "", &executor)) {
    std::fprintf(stderr, "FATAL: drain MergeDelta refused\n");
    std::exit(1);
  }
  assert_bit_identical(live, searcher, "ingest=drained");
  const uint64_t fire_generations =
      live.sharded().generations_published() - generations_before;
  if (fire_generations != 5 || live.delta_trajectories() != 0) {
    std::fprintf(stderr, "FATAL: fire published %llu generations "
                         "(want 5), %zu delta trajectories left\n",
                 static_cast<unsigned long long>(fire_generations),
                 live.delta_trajectories());
    std::exit(1);
  }

  // The fire measurement ran against a moving target, and even the
  // drained state it leaves behind is interleaving-dependent: where a
  // merge lands relative to the writers decides how each user's
  // check-ins split into trajectory segments and in what order the
  // folds append them, and the search counters are sensitive to both.
  // So the record's work counters come from a canonical replay: the
  // same batches, single-threaded, fixed round-robin interleave, the
  // same four cut-changing merges at fixed points. Same check-ins,
  // same merge count, same watermark and generation — deterministic
  // counters. The fire keeps what only it can claim: the latency
  // sample under 3 <-> 4 generation swaps with zero failed queries.
  LiveIndex canon(GenerateCity(CityProfile::NewYork(ScaleFromEnv())), {},
                  options);
  for (const auto& batch : delta_batches) {
    if (!canon.Ingest(batch)) {
      std::fprintf(stderr, "FATAL: canon delta ingest rejected\n");
      std::exit(1);
    }
  }
  if (!canon.MergeDelta(kShards, "", &executor)) {
    std::fprintf(stderr, "FATAL: canon startup MergeDelta refused\n");
    std::exit(1);
  }
  {
    constexpr uint32_t kFireCuts[] = {3, 4, 3, 4};
    size_t fired = 0;
    size_t cut = 0;
    for (int b = 0; b < kFireBatchesPerWriter; ++b) {
      for (int w = 0; w < kFireWriters; ++w) {
        if (!canon.Ingest(fire_batches[static_cast<size_t>(w)]
                                      [static_cast<size_t>(b)])) {
          std::fprintf(stderr, "FATAL: canon fire ingest rejected\n");
          std::exit(1);
        }
        ++fired;
        if (cut < 4 && fired % 12 == 0) {
          if (!canon.MergeDelta(kFireCuts[cut++], "", &executor)) {
            std::fprintf(stderr, "FATAL: canon fire MergeDelta refused\n");
            std::exit(1);
          }
        }
      }
    }
  }
  if (!canon.Ingest(freshness_batch) ||
      !canon.MergeDelta(kShards, "", &executor)) {
    std::fprintf(stderr, "FATAL: canon drain refused\n");
    std::exit(1);
  }
  if (canon.watermark() != live.watermark() ||
      canon.merges_completed() != live.merges_completed() ||
      canon.sharded().generation_number() !=
          live.sharded().generation_number() ||
      canon.delta_trajectories() != 0) {
    std::fprintf(stderr, "FATAL: canonical replay diverged from the fire "
                         "(watermark %llu vs %llu, merges %llu vs %llu)\n",
                 static_cast<unsigned long long>(canon.watermark()),
                 static_cast<unsigned long long>(live.watermark()),
                 static_cast<unsigned long long>(canon.merges_completed()),
                 static_cast<unsigned long long>(live.merges_completed()));
    std::exit(1);
  }
  const LiveSearcher canon_searcher(canon, {},
                                    proto.threads > 1 ? &executor : nullptr);
  assert_bit_identical(canon, canon_searcher, "ingest=drained/canonical");
  Measurement drained =
      MeasureWorkload(canon_searcher, queries, kTopK, kKind, proto);
  drained.p50_ms = fire.p50_ms;
  drained.p95_ms = fire.p95_ms;
  drained.p99_ms = fire.p99_ms;
  drained.ns_per_op = fire.ns_per_op;
  drained.rsd_pct = fire.rsd_pct;
  report.Add("NY/ATSQ/ingest=drained", ingest_state(drained, freshness_ms),
             queries.size(), kShards);

  std::printf("\nfire: %llu check-ins streamed behind the measured "
              "batches, 5 generation swaps (shard cut 4->3->4->3->4), "
              "zero failed queries\n",
              static_cast<unsigned long long>(
                  static_cast<uint64_t>(kFireWriters) *
                  kFireBatchesPerWriter * kBatchSize));
  std::printf("freshness: one %llu check-in batch ingest-to-queryable in "
              "%.3f ms\n",
              static_cast<unsigned long long>(kFreshnessProbe), freshness_ms);
  std::printf("final state: watermark %llu, %llu merges, generation %llu\n",
              static_cast<unsigned long long>(live.watermark()),
              static_cast<unsigned long long>(live.merges_completed()),
              static_cast<unsigned long long>(
                  live.sharded().generation_number()));
}

}  // namespace
}  // namespace gat::bench

int main(int argc, char** argv) {
  return gat::bench::BenchMain(argc, argv, "ingest", gat::bench::Main);
}
