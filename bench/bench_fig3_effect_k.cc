// Figure 3: effect of the result count k on ATSQ and OATSQ running time,
// on the LA and NY datasets, for IL / RT / IRT / GAT.
//
// Paper shape to reproduce: GAT fastest by a wide margin (order of
// magnitude vs IL, several-fold vs RT/IRT); IL flat in k; the tree methods
// and GAT grow mildly with k.

#include <cstdio>

#include "harness.h"

namespace gat::bench {
namespace {

void RunPanel(const CityFixture& city, QueryKind kind) {
  char title[128];
  std::snprintf(title, sizeof(title), "Figure 3: %s on %s",
                ToString(kind).c_str(), city.name().c_str());
  PrintPanelHeader(title, "k", city.searchers());
  QueryGenerator qgen(city.dataset(), DefaultWorkload(/*seed=*/300));
  const auto queries = qgen.Workload();
  for (const size_t k : {5, 10, 15, 20, 25}) {
    std::vector<double> row;
    for (const Searcher* s : city.searchers()) {
      row.push_back(RunWorkload(*s, queries, k, kind).avg_cost_ms);
    }
    PrintPanelRow(std::to_string(k), row);
  }
}

void Main() {
  PrintRunBanner("Figure 3", "effect of k (Table-V defaults otherwise)");
  const double scale = ScaleFromEnv();
  const CityFixture la(CityProfile::LosAngeles(scale));
  const CityFixture ny(CityProfile::NewYork(scale));
  for (const auto* city : {&la, &ny}) {
    RunPanel(*city, QueryKind::kAtsq);
    RunPanel(*city, QueryKind::kOatsq);
  }
}

}  // namespace
}  // namespace gat::bench

int main() {
  gat::bench::Main();
  return 0;
}
