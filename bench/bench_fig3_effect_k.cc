// Figure 3: effect of the result count k on ATSQ and OATSQ running time,
// on the LA and NY datasets, for IL / RT / IRT / GAT.
//
// Paper shape to reproduce: GAT fastest by a wide margin (order of
// magnitude vs IL, several-fold vs RT/IRT); IL flat in k; the tree methods
// and GAT grow mildly with k.

#include <cstdio>

#include "harness.h"

namespace gat::bench {
namespace {

void RunPanel(const CityFixture& city, QueryKind kind,
              const BenchProtocol& proto, BenchReport& report) {
  char title[128];
  std::snprintf(title, sizeof(title), "Figure 3: %s on %s",
                ToString(kind).c_str(), city.name().c_str());
  PrintPanelHeader(title, "k", city.searchers());
  QueryGenerator qgen(city.dataset(), DefaultWorkload(/*seed=*/300));
  const auto queries = qgen.Workload();
  for (const size_t k : {5, 10, 15, 20, 25}) {
    std::vector<double> row;
    for (const Searcher* s : city.searchers()) {
      const auto m = MeasureWorkload(*s, queries, k, kind, proto);
      row.push_back(m.avg_cost_ms);
      char point[128];
      std::snprintf(point, sizeof(point), "%s/%s/%s/k=%zu",
                    city.name().c_str(), ToString(kind).c_str(),
                    s->name().c_str(), k);
      report.Add(point, m, queries.size());
    }
    PrintPanelRow(std::to_string(k), row);
  }
}

void Main(const BenchProtocol& proto, BenchReport& report) {
  PrintRunBanner("Figure 3", "effect of k (Table-V defaults otherwise)",
                 proto);
  const double scale = ScaleFromEnv();
  const CityFixture la(CityProfile::LosAngeles(scale));
  const CityFixture ny(CityProfile::NewYork(scale));
  for (const auto* city : {&la, &ny}) {
    RunPanel(*city, QueryKind::kAtsq, proto, report);
    RunPanel(*city, QueryKind::kOatsq, proto, report);
  }
}

}  // namespace
}  // namespace gat::bench

int main(int argc, char** argv) {
  return gat::bench::BenchMain(argc, argv, "fig3_effect_k",
                              gat::bench::Main);
}
