// Figure 5: effect of the number of activities per query location |q.Phi|
// (1..5).
//
// Paper shape: IL/IRT/GAT get cheaper with more demanded activities (fewer
// candidates survive activity filtering); RT is insensitive at retrieval
// but pays more refinement.

#include <cstdio>

#include "harness.h"

namespace gat::bench {
namespace {

void RunPanel(const CityFixture& city, QueryKind kind) {
  char title[128];
  std::snprintf(title, sizeof(title), "Figure 5: %s on %s",
                ToString(kind).c_str(), city.name().c_str());
  PrintPanelHeader(title, "|q.Phi|", city.searchers());
  for (const uint32_t acts : {1u, 2u, 3u, 4u, 5u}) {
    auto wp = DefaultWorkload(/*seed=*/500 + acts);
    wp.activities_per_point = acts;
    QueryGenerator qgen(city.dataset(), wp);
    const auto queries = qgen.Workload();
    std::vector<double> row;
    for (const Searcher* s : city.searchers()) {
      row.push_back(RunWorkload(*s, queries, /*k=*/9, kind).avg_cost_ms);
    }
    PrintPanelRow(std::to_string(acts), row);
  }
}

void Main() {
  PrintRunBanner("Figure 5", "effect of |q.Phi| (k=9, |Q|=4, d=10km)");
  const double scale = ScaleFromEnv();
  const CityFixture la(CityProfile::LosAngeles(scale));
  const CityFixture ny(CityProfile::NewYork(scale));
  for (const auto* city : {&la, &ny}) {
    RunPanel(*city, QueryKind::kAtsq);
    RunPanel(*city, QueryKind::kOatsq);
  }
}

}  // namespace
}  // namespace gat::bench

int main() {
  gat::bench::Main();
  return 0;
}
