// Figure 5: effect of the number of activities per query location |q.Phi|
// (1..5).
//
// Paper shape: IL/IRT/GAT get cheaper with more demanded activities (fewer
// candidates survive activity filtering); RT is insensitive at retrieval
// but pays more refinement.

#include <cstdio>

#include "harness.h"

namespace gat::bench {
namespace {

void RunPanel(const CityFixture& city, QueryKind kind,
              const BenchProtocol& proto, BenchReport& report) {
  char title[128];
  std::snprintf(title, sizeof(title), "Figure 5: %s on %s",
                ToString(kind).c_str(), city.name().c_str());
  PrintPanelHeader(title, "|q.Phi|", city.searchers());
  for (const uint32_t acts : {1u, 2u, 3u, 4u, 5u}) {
    auto wp = DefaultWorkload(/*seed=*/500 + acts);
    wp.activities_per_point = acts;
    QueryGenerator qgen(city.dataset(), wp);
    const auto queries = qgen.Workload();
    std::vector<double> row;
    for (const Searcher* s : city.searchers()) {
      const auto m = MeasureWorkload(*s, queries, /*k=*/9, kind, proto);
      row.push_back(m.avg_cost_ms);
      char point[128];
      std::snprintf(point, sizeof(point), "%s/%s/%s/phi=%u",
                    city.name().c_str(), ToString(kind).c_str(),
                    s->name().c_str(), acts);
      report.Add(point, m, queries.size());
    }
    PrintPanelRow(std::to_string(acts), row);
  }
}

void Main(const BenchProtocol& proto, BenchReport& report) {
  PrintRunBanner("Figure 5", "effect of |q.Phi| (k=9, |Q|=4, d=10km)", proto);
  const double scale = ScaleFromEnv();
  const CityFixture la(CityProfile::LosAngeles(scale));
  const CityFixture ny(CityProfile::NewYork(scale));
  for (const auto* city : {&la, &ny}) {
    RunPanel(*city, QueryKind::kAtsq, proto, report);
    RunPanel(*city, QueryKind::kOatsq, proto, report);
  }
}

}  // namespace
}  // namespace gat::bench

int main(int argc, char** argv) {
  return gat::bench::BenchMain(argc, argv, "fig5_effect_activities",
                              gat::bench::Main);
}
