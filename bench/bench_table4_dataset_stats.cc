// Table IV: statistics of the (synthetic) LA and NY datasets, printed at
// the configured bench scale and extrapolated to full scale for direct
// comparison with the paper's numbers:
//
//            LA          NY
//   #trajectory       31,557      49,027
//   #venue           215,614     206,416
//   #activity      3,164,124   2,056,785
//   #distinct act     87,567      64,649

#include <cstdio>

#include "harness.h"

#include "gat/util/stopwatch.h"

namespace gat::bench {
namespace {

void Main(const BenchProtocol& proto, BenchReport& report) {
  PrintRunBanner("Table IV", "dataset statistics (generated cities)", proto);
  const double scale = ScaleFromEnv();

  std::printf("%-8s | %12s | %12s | %12s | %12s | %8s | %8s\n", "dataset",
              "#trajectory", "#point", "#activity", "#distinct",
              "act/traj", "act/pt");
  for (const auto& profile :
       {CityProfile::LosAngeles(scale), CityProfile::NewYork(scale)}) {
    // The only timed operation here is dataset generation; record it so
    // datagen perf regressions show up in the bench trajectory too.
    Stopwatch timer;
    const Dataset d = GenerateCity(profile);
    const double gen_ms = timer.ElapsedMillis();
    const auto stats = DatasetStats::Collect(d);
    std::printf("%s\n", stats.ToTableRow(profile.name).c_str());
    report.AddRaw("generate/" + profile.name,
                  gen_ms * 1e6 / static_cast<double>(d.size()),
                  /*rsd_pct=*/0.0, /*repeats=*/1, /*ops=*/d.size());
  }

  std::printf(
      "\nPaper (full scale, Table IV):\n"
      "LA       |       31,557 |      215,614 |    3,164,124 |       87,567\n"
      "NY       |       49,027 |      206,416 |    2,056,785 |       64,649\n"
      "\nNote: #point counts check-ins (trajectory points); the paper's\n"
      "#venue counts distinct places. Assignment totals and the LA>NY\n"
      "activity-density ratio are the quantities the evaluation relies on.\n");
}

}  // namespace
}  // namespace gat::bench

int main(int argc, char** argv) {
  return gat::bench::BenchMain(argc, argv, "table4_dataset_stats",
                              gat::bench::Main);
}
