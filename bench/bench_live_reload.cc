// Live snapshot reload measured end-to-end: query latency while a
// background task hot-swaps shard snapshots in a loop.
//
// The serving setup is the storage bench's: a 4-shard mmap-served
// ShardedIndex over one shared BlockCache, queried through
// ShardedSearcher on a shared executor. What this bench adds is a
// *reloader* — a background thread that round-robins over the shards,
// re-mapping each from an equivalent snapshot file (alternating between
// two byte-identical generations, the rolling-restart pattern) via
// ShardedIndex::ReloadShard while the measured batches run.
//
// What is measured and asserted:
//
//   * NY/ATSQ/reload=off: the quiescent reference — same serving stack,
//     no reloader. Its counters (and, same-machine, its p95) are the
//     baseline the live run is held against.
//   * NY/ATSQ/reload=live: the same workload under continuous
//     background reload. Deterministic work counters must be IDENTICAL
//     to reload=off — a hot swap to an equivalent snapshot is invisible
//     to the algorithm — and every per-query result is asserted
//     bit-identical to the unsharded in-memory reference while swaps
//     land mid-batch (fatal on divergence). The p95 ratio live/off is
//     printed; the serving bar is <= 1.25x at --threads 4 (wall-clock,
//     so a soft warning here; the committed-baseline diff gates the
//     counters).
//   * startup/reload-latency: wall-clock of one ReloadShard (load +
//     validate + swap) with the executor-parallel CRC sweep — the cold
//     path the reload work moved off the serving threads.
//
// JSON: reload=live records carry the append-only `shard_reloads` and
// `invalidated_blocks` fields (advisory in diffs — the reloader is
// wall-clock scheduled) plus the deterministic `index_pins` counter
// (queries x shards) every ShardedSearcher record now reports.

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "harness.h"

#include "gat/engine/executor.h"
#include "gat/index/snapshot.h"
#include "gat/shard/sharded_index.h"
#include "gat/shard/sharded_searcher.h"
#include "gat/util/stopwatch.h"

namespace gat::bench {
namespace {

constexpr uint32_t kShards = 4;

void Main(const BenchProtocol& proto, BenchReport& report) {
  PrintRunBanner("Live reload",
                 "query latency under continuous background snapshot "
                 "hot-swap (NY, 4 mmap-served shards)",
                 proto);
  const Dataset city = GenerateCity(CityProfile::NewYork(ScaleFromEnv()));
  QueryGenerator qgen(city, DefaultWorkload(/*seed=*/20130715));
  const auto queries = qgen.Workload();
  constexpr size_t kTopK = 9;
  constexpr QueryKind kKind = QueryKind::kAtsq;

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("gat_live_reload_bench." + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);

  Executor executor(proto.threads);
  ShardOptions options;
  options.num_shards = kShards;
  options.executor = &executor;
  options.snapshot_dir = (dir / "shards").string();
  options.mmap_disk_tier = true;
  options.cache_config.block_bytes = 1024;
  options.cache_config.capacity_bytes = 8ull << 20;
  ShardedIndex sharded(city, {}, options);
  if (sharded.shards_mmap_served() != kShards) {
    std::fprintf(stderr, "FATAL: %u/%u shards mmap-served\n",
                 sharded.shards_mmap_served(), kShards);
    std::exit(1);
  }

  // The reload source files: a second byte-identical generation of each
  // shard snapshot. The reloader alternates serving between the two
  // paths — equivalent content, distinct files, exactly the shape of a
  // rolling re-map — so answers are provably unchanged and any
  // divergence under swap is a reload bug, not a data change.
  std::vector<std::string> gen_a(kShards), gen_b(kShards);
  for (uint32_t shard = 0; shard < kShards; ++shard) {
    gen_a[shard] =
        ShardedIndex::SnapshotPath(options.snapshot_dir, shard, kShards);
    gen_b[shard] = (dir / ("incoming-shard-" + std::to_string(shard) +
                           ".gats")).string();
    std::error_code ec;
    std::filesystem::copy_file(gen_a[shard], gen_b[shard], ec);
    if (ec) {
      std::fprintf(stderr, "FATAL: cannot stage %s\n", gen_b[shard].c_str());
      std::exit(1);
    }
  }

  // Unsharded in-memory reference for the bit-identity asserts.
  const GatIndex reference_index(city);
  const GatSearcher reference(city, reference_index);

  const ShardedSearcher searcher(sharded, {},
                                 proto.threads > 1 ? &executor : nullptr);

  // ------------------------------------------------------------ baseline
  const Measurement off = MeasureWorkload(searcher, queries, kTopK, kKind,
                                          proto);
  report.Add("NY/ATSQ/reload=off", off, queries.size(), kShards);

  // ------------------------------------------------- one reload, timed
  {
    Stopwatch timer;
    if (!sharded.ReloadShard(0, gen_b[0], &executor)) {
      std::fprintf(stderr, "FATAL: warm ReloadShard failed\n");
      std::exit(1);
    }
    const double reload_ms = timer.ElapsedMillis();
    report.AddRaw("startup/reload-latency", reload_ms * 1e6, 0.0, 1, 1);
    std::printf("\none ReloadShard (load + validate + swap): %.2f ms\n",
                reload_ms);
  }

  // ----------------------------------------------- live: reload + serve
  const BlockCacheStats cache_before = sharded.block_cache()->Snapshot();
  const uint64_t reloads_before = sharded.reloads_completed();
  std::atomic<bool> stop{false};
  std::thread reloader([&] {
    // Round-robin over the shards, alternating the two generations —
    // continuous, no pacing: the worst case the 25% latency bar is
    // meant to cover.
    uint64_t n = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const uint32_t shard = static_cast<uint32_t>(n % kShards);
      const auto& path = (n / kShards) % 2 == 0 ? gen_b[shard] : gen_a[shard];
      if (!sharded.ReloadShard(shard, path, &executor)) {
        std::fprintf(stderr, "FATAL: background ReloadShard failed\n");
        std::exit(1);
      }
      ++n;
    }
  });

  const Measurement live = MeasureWorkload(searcher, queries, kTopK, kKind,
                                           proto);

  // Mid-stream swap bit-identity: run extra engine batches while the
  // reloader keeps swapping and hold every answer against the
  // unsharded, unmapped reference.
  {
    const QueryEngine engine(searcher, EngineOptions{.executor = &executor});
    for (int round = 0; round < 3; ++round) {
      const BatchResult batch = engine.Run(queries, kTopK, kKind);
      for (size_t i = 0; i < queries.size(); ++i) {
        const ResultList want = reference.Search(queries[i], kTopK, kKind);
        if (batch.results[i] != want) {
          std::fprintf(stderr,
                       "FATAL: results diverged under live reload "
                       "(round %d, query %zu)\n",
                       round, i);
          std::exit(1);
        }
      }
    }
  }

  stop.store(true, std::memory_order_relaxed);
  reloader.join();

  Measurement live_tagged = live;
  live_tagged.has_reload = true;
  live_tagged.shard_reloads = sharded.reloads_completed() - reloads_before;
  const BlockCacheStats cache_after = sharded.block_cache()->Snapshot();
  live_tagged.invalidated_blocks =
      cache_after.invalidated - cache_before.invalidated;
  report.Add("NY/ATSQ/reload=live", live_tagged, queries.size(), kShards);

  if (sharded.reloads_failed() != 0) {
    std::fprintf(stderr, "FATAL: %llu reloads failed\n",
                 static_cast<unsigned long long>(sharded.reloads_failed()));
    std::exit(1);
  }
  // Equivalent-snapshot swaps must be invisible to the algorithm: the
  // deterministic counters of the live run equal the quiescent run's.
  if (live.totals.candidates_retrieved != off.totals.candidates_retrieved ||
      live.totals.disk_reads != off.totals.disk_reads ||
      live.totals.index_pins != off.totals.index_pins) {
    std::fprintf(stderr, "FATAL: deterministic counters drifted under "
                         "live reload\n");
    std::exit(1);
  }

  std::printf("\nlive reload: %llu hot-swaps behind the measured batches, "
              "%llu cache blocks invalidated, %llu files retired\n",
              static_cast<unsigned long long>(live_tagged.shard_reloads),
              static_cast<unsigned long long>(live_tagged.invalidated_blocks),
              static_cast<unsigned long long>(cache_after.files_retired -
                                              cache_before.files_retired));
  const double ratio = off.p95_ms > 0.0 ? live.p95_ms / off.p95_ms : 1.0;
  std::printf("p95 per query: %.3f ms quiescent -> %.3f ms under reload "
              "(%.2fx)\n",
              off.p95_ms, live.p95_ms, ratio);
  if (ratio > 1.25) {
    std::printf("note: p95 ratio above the 1.25x serving bar — wall-clock "
                "on a loaded machine; re-run quiet before reading much "
                "into it\n");
  } else {
    std::printf("p95 under continuous reload within the 1.25x serving "
                "bar\n");
  }

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

}  // namespace
}  // namespace gat::bench

int main(int argc, char** argv) {
  return gat::bench::BenchMain(argc, argv, "live_reload", gat::bench::Main);
}
