#ifndef GAT_BENCH_HARNESS_H_
#define GAT_BENCH_HARNESS_H_

// Shared experiment harness for the figure/table benches.
//
// Every bench binary reproduces one figure or table of Zheng et al., ICDE
// 2013, Section VII, printing the same rows/series the paper plots — and
// records every measured point into a machine-readable `BENCH_<name>.json`
// (schema in docs/BENCH_PROTOCOL.md) so runs can be diffed for perf
// regressions.
//
// Measurement protocol (flags, with env fallbacks in parentheses):
//
//   --threads N      QueryEngine worker threads       (GAT_BENCH_THREADS, 1)
//   --warmup W       un-timed warmup batches          (GAT_BENCH_WARMUP, 1)
//   --target-rsd P   stop repeating when the relative standard deviation
//                    of the batch timings drops to P% (GAT_BENCH_TARGET_RSD, 5)
//   --max-repeat M   hard cap on timed batches        (GAT_BENCH_MAX_REPEAT, 5)
//   --json PATH      output path (default BENCH_<name>.json in the cwd)
//
// Open-loop serving benches (bench_serving) extend the protocol with
// append-only fields — closed-loop benches ignore them:
//
//   --arrival-rate R offered load in requests/s at 1x (GAT_BENCH_ARRIVAL_RATE)
//   --virtual-time   drive arrivals on a simulated clock, making the
//                    admission/deadline counters machine-independent
//                    (GAT_BENCH_VIRTUAL_TIME=1)
//
// Scale and query count of the workloads stay tunable via environment
// variables so the same binary covers quick smoke runs and full-size
// reproductions:
//
//   GAT_BENCH_SCALE    fraction of the Table-IV dataset sizes (default 0.04)
//   GAT_BENCH_QUERIES  queries per measurement point     (default 15; the
//                      paper uses 50 — set it for full fidelity)

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "gat/baselines/il_search.h"
#include "gat/baselines/irt_search.h"
#include "gat/baselines/rt_search.h"
#include "gat/core/searcher.h"
#include "gat/datagen/checkin_generator.h"
#include "gat/datagen/query_generator.h"
#include "gat/engine/query_engine.h"
#include "gat/index/gat_index.h"
#include "gat/model/dataset_stats.h"
#include "gat/search/gat_search.h"
#include "gat/storage/prefetch.h"
#include "gat/util/stopwatch.h"

namespace gat::bench {

inline double ScaleFromEnv() {
  const char* s = std::getenv("GAT_BENCH_SCALE");
  if (s == nullptr) return 0.04;
  const double v = std::atof(s);
  return v > 0.0 ? v : 0.04;
}

inline uint32_t QueriesFromEnv() {
  const char* s = std::getenv("GAT_BENCH_QUERIES");
  if (s == nullptr) return 15;
  const int v = std::atoi(s);
  return v > 0 ? static_cast<uint32_t>(v) : 15;
}

/// Per-read latency (ms) charged for simulated disk accesses. The paper's
/// testbed (2013, 4 GB RAM, datasets + APL + low HICL levels on a hard
/// disk) is I/O bound; every searcher counts its page/record fetches in
/// SearchStats::disk_reads and the harness reports
/// CPU time + disk_reads * penalty as the paper-comparable "running time".
/// Default 2 ms (a seek-heavy HDD with some OS caching); set
/// GAT_DISK_PENALTY_MS=0 for pure in-memory timings.
inline double DiskPenaltyMsFromEnv() {
  const char* s = std::getenv("GAT_DISK_PENALTY_MS");
  if (s == nullptr) return 2.0;
  const double v = std::atof(s);
  return v >= 0.0 ? v : 2.0;
}

/// The measurement protocol shared by every figure/table bench. See
/// docs/BENCH_PROTOCOL.md for the full semantics.
struct BenchProtocol {
  uint32_t threads = 1;
  uint32_t warmup = 1;
  double target_rsd_pct = 5.0;
  uint32_t max_repeat = 5;
  std::string json_path;  // empty = BENCH_<name>.json in the cwd
  /// Open-loop extension (append-only): offered load at 1x in
  /// requests/s. 0 = not an open-loop bench (the field is then absent
  /// from the JSON protocol block, keeping old artifacts byte-stable).
  double arrival_rate = 0.0;
  /// Open-loop extension: arrivals ride a simulated clock instead of
  /// wall time, so admission/deadline counters are exact across
  /// machines and thread counts.
  bool virtual_time = false;

  static BenchProtocol FromArgs(int argc, char** argv) {
    BenchProtocol p;
    auto env_u32 = [](const char* name, uint32_t fallback) {
      const char* s = std::getenv(name);
      if (s == nullptr) return fallback;
      const int v = std::atoi(s);
      return v > 0 ? static_cast<uint32_t>(v) : fallback;
    };
    p.threads = env_u32("GAT_BENCH_THREADS", p.threads);
    p.warmup = env_u32("GAT_BENCH_WARMUP", p.warmup);
    p.max_repeat = env_u32("GAT_BENCH_MAX_REPEAT", p.max_repeat);
    if (const char* s = std::getenv("GAT_BENCH_TARGET_RSD")) {
      const double v = std::atof(s);
      if (v > 0.0) p.target_rsd_pct = v;
    }
    if (const char* s = std::getenv("GAT_BENCH_ARRIVAL_RATE")) {
      const double v = std::atof(s);
      if (v > 0.0) p.arrival_rate = v;
    }
    if (const char* s = std::getenv("GAT_BENCH_VIRTUAL_TIME")) {
      p.virtual_time = std::atoi(s) != 0;
    }
    for (int i = 1; i < argc; ++i) {
      auto value = [&](const char* flag) -> const char* {
        if (std::strcmp(argv[i], flag) != 0) return nullptr;
        if (i + 1 >= argc) {
          std::fprintf(stderr, "missing value for %s\n", flag);
          std::exit(2);
        }
        return argv[++i];
      };
      // Rejects negatives before the unsigned cast can wrap them into
      // ~4-billion thread pools / repeat counts.
      auto non_negative = [](const char* flag, const char* v) {
        const int parsed = std::atoi(v);
        if (parsed < 0) {
          std::fprintf(stderr, "invalid value for %s: %s\n", flag, v);
          std::exit(2);
        }
        return static_cast<uint32_t>(parsed);
      };
      if (const char* v = value("--threads")) {
        p.threads = non_negative("--threads", v);
      } else if (const char* v = value("--warmup")) {
        p.warmup = non_negative("--warmup", v);
      } else if (const char* v = value("--target-rsd")) {
        p.target_rsd_pct = std::atof(v);
        if (p.target_rsd_pct < 0.0) {
          std::fprintf(stderr, "invalid value for --target-rsd: %s\n", v);
          std::exit(2);
        }
      } else if (const char* v = value("--max-repeat")) {
        p.max_repeat = non_negative("--max-repeat", v);
      } else if (const char* v = value("--json")) {
        p.json_path = v;
      } else if (const char* v = value("--arrival-rate")) {
        p.arrival_rate = std::atof(v);
        if (p.arrival_rate < 0.0) {
          std::fprintf(stderr, "invalid value for --arrival-rate: %s\n", v);
          std::exit(2);
        }
      } else if (std::strcmp(argv[i], "--virtual-time") == 0) {
        p.virtual_time = true;
      } else {
        std::fprintf(stderr,
                     "unknown flag %s\nusage: %s [--threads N] [--warmup W] "
                     "[--target-rsd P] [--max-repeat M] [--json PATH] "
                     "[--arrival-rate R] [--virtual-time]\n",
                     argv[i], argv[0]);
        std::exit(2);
      }
    }
    if (p.threads == 0) p.threads = 1;
    if (p.max_repeat == 0) p.max_repeat = 1;
    return p;
  }
};

/// The Table-V defaults.
inline QueryWorkloadParams DefaultWorkload(uint64_t seed) {
  QueryWorkloadParams wp;
  wp.num_query_points = 4;
  wp.activities_per_point = 3;
  wp.diameter_km = 10.0;
  wp.num_queries = QueriesFromEnv();
  wp.seed = seed;
  return wp;
}

/// One city with the paper's four competitors built over it.
class CityFixture {
 public:
  explicit CityFixture(const CityProfile& profile)
      : name_(profile.name), dataset_(GenerateCity(profile)) {
    Build();
  }

  /// Takes ownership of an already-generated dataset (Figure-7 subsets).
  CityFixture(std::string name, Dataset dataset)
      : name_(std::move(name)), dataset_(std::move(dataset)) {
    Build();
  }

  const std::string& name() const { return name_; }
  const Dataset& dataset() const { return dataset_; }
  const GatIndex& index() const { return *index_; }

  /// Searchers in the paper's plotting order: IL, RT, IRT, GAT.
  std::vector<const Searcher*> searchers() const {
    return {il_.get(), rt_.get(), irt_.get(), gat_.get()};
  }
  const GatSearcher& gat() const { return *gat_; }

 private:
  void Build() {
    index_ = std::make_unique<GatIndex>(dataset_);
    gat_ = std::make_unique<GatSearcher>(dataset_, *index_);
    il_ = std::make_unique<IlSearcher>(dataset_);
    rt_ = std::make_unique<RtSearcher>(dataset_);
    irt_ = std::make_unique<IrtSearcher>(dataset_);
  }

  std::string name_;
  Dataset dataset_;
  std::unique_ptr<GatIndex> index_;
  std::unique_ptr<GatSearcher> gat_;
  std::unique_ptr<IlSearcher> il_;
  std::unique_ptr<RtSearcher> rt_;
  std::unique_ptr<IrtSearcher> irt_;
};

struct Measurement {
  /// CPU time per query: the mean of the per-query `elapsed_ms` each
  /// searcher records. Thread-count independent (total CPU work divided
  /// by #queries), so it stays comparable across --threads settings.
  double avg_ms = 0.0;
  /// The paper-comparable "running time": `avg_ms` plus the simulated
  /// disk latency of the batch's *critical-path* reads
  /// (SearchStats::CriticalDiskReads — the slowest parallel branch for
  /// fan-out searchers, exactly `disk_reads` for sequential ones, which
  /// keeps every sequential baseline number unchanged). Also
  /// thread-independent.
  double avg_cost_ms = 0.0;
  SearchStats totals;        ///< counters of one batch (deterministic)
  /// Throughput: mean batch wall-clock per query across timed repeats.
  /// With --threads > 1 this is smaller than avg_ms * 1e6 — it measures
  /// how fast the engine drains the batch, not per-query CPU.
  double ns_per_op = 0.0;
  /// Per-query latency percentiles over every (query, repeat) pair: the
  /// engine-observed wall-clock of the `Search` call plus the simulated
  /// disk time of the query's *critical path* (`QueryLatency`) — so a
  /// fan-out searcher that overlaps per-shard I/O shows lower tails than
  /// the same work paid sequentially. Unlike ns_per_op these measure one
  /// query's latency, not batch throughput.
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double rsd_pct = 0.0;      ///< relative stddev of the repeat timings
  uint32_t repeats = 0;      ///< timed batches actually run
  uint32_t threads = 1;      ///< QueryEngine workers used
  /// Block-cache observability (mmap disk tier only): block size of the
  /// cache behind the measured searcher, and the blocks the prefetch
  /// sweep warmed during the last timed batch. `has_cache` gates the
  /// cache fields in the JSON record; the per-query block counters
  /// (`totals.block_hits` / `totals.blocks_read`) ride along either way.
  bool has_cache = false;
  uint32_t cache_block_bytes = 0;
  uint64_t prefetched_blocks = 0;
  /// Live-reload observability (bench_live_reload): set by the bench
  /// after MeasureWorkload when a background reloader ran alongside the
  /// measurement. `shard_reloads` = completed hot-swaps during the
  /// measurement, `invalidated_blocks` = cache blocks purged by retired
  /// mappings. Both are interleaving-dependent — advisory in diffs.
  bool has_reload = false;
  uint64_t shard_reloads = 0;
  uint64_t invalidated_blocks = 0;
  /// Serving observability (bench_serving): front-door outcomes of one
  /// open-loop run. Under --virtual-time the counters are exact
  /// (machine- and thread-count-independent) and bench_diff.py gates
  /// them; goodput is completions per virtual second.
  bool has_serving = false;
  uint64_t admitted = 0;
  uint64_t shed = 0;
  uint64_t deadline_misses = 0;
  double goodput_qps = 0.0;
  /// Async-I/O observability (bench_storage_tier): which physical read
  /// path served the point ("mmap", "io_uring", "thread-pool",
  /// "simulated") and how many demand fetches stalled on cold blocks
  /// during the measurement (tier-stats delta, set by the bench).
  /// `worker_stalls` is interleaving-dependent above --threads 1 —
  /// advisory in diffs.
  bool has_io = false;
  std::string io_backend;
  uint64_t worker_stalls = 0;
  /// Scan-resistant admission observability: deltas of the cache's
  /// admission counters across the last timed batch. Deterministic at
  /// --threads 1 (bench_diff.py gates them exactly there, advisory
  /// above). Set by benches that opt a point into
  /// CacheAdmission::kScanResistant.
  bool has_admission = false;
  uint64_t admission_rejects = 0;
  uint64_t ghost_hits = 0;
  /// Live-ingestion observability (bench_ingest): the delta/base state
  /// behind the measured point. At quiesced points (ingest paused at a
  /// fixed watermark) `ingested_checkins`, `delta_trajectories`,
  /// `merges_completed` and `generation` are exact and bench_diff.py
  /// gates them; `freshness_lag_ms` (ingest-ack to first queryable
  /// result) is wall-clock — advisory. Set by the bench.
  bool has_ingest = false;
  uint64_t ingested_checkins = 0;
  uint64_t delta_trajectories = 0;
  uint64_t merges_completed = 0;
  uint64_t generation = 0;
  double freshness_lag_ms = 0.0;
};

/// Nearest-rank percentile (p in [0, 100]) of an ascending-sorted sample.
inline double PercentileMs(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank =
      std::ceil(p / 100.0 * static_cast<double>(sorted.size()));
  const size_t idx = rank < 1.0 ? 0 : static_cast<size_t>(rank) - 1;
  return sorted[std::min(idx, sorted.size() - 1)];
}

/// Runs a workload through one searcher under the measurement protocol:
/// `warmup` un-timed batches, then timed batches until the relative
/// standard deviation of the batch wall-clocks reaches `target_rsd_pct`
/// (or `max_repeat` batches). `avg_cost_ms` is the paper-comparable
/// "running time": CPU wall-clock plus the simulated disk latency of the
/// method's critical-path fetches (see Measurement::avg_cost_ms).
inline Measurement MeasureWorkload(const Searcher& searcher,
                                   const std::vector<Query>& queries, size_t k,
                                   QueryKind kind, const BenchProtocol& proto,
                                   const PrefetchScheduler* prefetcher =
                                       nullptr,
                                   const IoStager* stager = nullptr) {
  Measurement m;
  if (queries.empty()) return m;
  QueryEngine engine(searcher, EngineOptions{.threads = proto.threads,
                                             .prefetcher = prefetcher,
                                             .stager = stager});
  m.threads = engine.threads();

  for (uint32_t w = 0; w < proto.warmup; ++w) {
    (void)engine.Run(queries, k, kind);
  }

  auto mean_of = [](const std::vector<double>& xs) {
    double sum = 0.0;
    for (double v : xs) sum += v;
    return sum / static_cast<double>(xs.size());
  };
  auto rsd_of = [&](const std::vector<double>& xs) {
    const double mean = mean_of(xs);
    if (mean <= 0.0) return 0.0;
    double var = 0.0;
    for (double v : xs) var += (v - mean) * (v - mean);
    var /= static_cast<double>(xs.size());
    return 100.0 * std::sqrt(var) / mean;
  };

  const double disk_penalty_ms = DiskPenaltyMsFromEnv();
  std::vector<double> batch_ms;   // wall-clock per batch (throughput)
  std::vector<double> cpu_ms;     // summed per-query elapsed per batch
  std::vector<double> query_lat;  // per-(query, repeat) latency sample
  for (uint32_t r = 0; r < proto.max_repeat; ++r) {
    BatchResult batch = engine.Run(queries, k, kind);
    batch_ms.push_back(batch.wall_ms);
    cpu_ms.push_back(batch.totals.elapsed_ms);
    for (const QueryLatency& lat : batch.latencies) {
      query_lat.push_back(lat.wall_ms +
                          disk_penalty_ms *
                              static_cast<double>(lat.critical_disk_reads));
    }
    // Counters are deterministic across repeats; keep the last batch's.
    m.totals = batch.totals;
    if (batch.storage.present) {
      m.has_cache = true;
      m.cache_block_bytes = batch.storage.block_bytes;
      m.prefetched_blocks = batch.storage.prefetched;
      m.admission_rejects = batch.storage.admission_rejects;
      m.ghost_hits = batch.storage.ghost_hits;
    }
    if (batch_ms.size() >= 2) {
      m.rsd_pct = rsd_of(batch_ms);
      if (m.rsd_pct <= proto.target_rsd_pct) break;
    }
  }

  m.repeats = static_cast<uint32_t>(batch_ms.size());
  std::sort(query_lat.begin(), query_lat.end());
  m.p50_ms = PercentileMs(query_lat, 50.0);
  m.p95_ms = PercentileMs(query_lat, 95.0);
  m.p99_ms = PercentileMs(query_lat, 99.0);
  m.ns_per_op = mean_of(batch_ms) * 1e6 / static_cast<double>(queries.size());
  // CPU time from the searchers' own per-query stopwatches: the sum over a
  // batch is invariant to how the engine spread the queries over threads.
  m.avg_ms = mean_of(cpu_ms) / static_cast<double>(queries.size());
  // The simulated disk charge uses the *critical-path* reads: a fan-out
  // searcher pays its slowest parallel branch, not the sum of branches —
  // the same rule the per-query latency sample above already applies.
  // For sequential searchers CriticalDiskReads() == disk_reads exactly.
  m.avg_cost_ms = m.avg_ms + DiskPenaltyMsFromEnv() *
                                 static_cast<double>(
                                     m.totals.CriticalDiskReads()) /
                                 static_cast<double>(queries.size());
  return m;
}

/// Backwards-compatible single-shot measurement (no warmup, one batch,
/// caller's thread only).
inline Measurement RunWorkload(const Searcher& searcher,
                               const std::vector<Query>& queries, size_t k,
                               QueryKind kind) {
  BenchProtocol single;
  single.threads = 1;
  single.warmup = 0;
  single.max_repeat = 1;
  return MeasureWorkload(searcher, queries, k, kind, single);
}

/// Accumulates measured points and writes the `BENCH_<name>.json` payload
/// documented in docs/BENCH_PROTOCOL.md.
class BenchReport {
 public:
  BenchReport(std::string name, const BenchProtocol& proto)
      : name_(std::move(name)), proto_(proto) {}

  /// Replaces the protocol block the report will emit. For benches that
  /// resolve protocol defaults after construction (e.g. bench_serving
  /// substituting its default --arrival-rate), so the JSON records what
  /// actually ran.
  void OverrideProtocol(const BenchProtocol& proto) { proto_ = proto; }

  /// Records one measured point. `ops` is the number of operations behind
  /// one repeat (usually the workload's query count). `shards` > 0 stamps
  /// the record with the shard count behind it; scripts/bench_diff.py
  /// refuses to compare records measured at different shard counts.
  void Add(const std::string& point_name, const Measurement& m, size_t ops,
           uint32_t shards = 0) {
    Record rec;
    rec.name = point_name;
    rec.ns_per_op = m.ns_per_op;
    rec.rsd_pct = m.rsd_pct;
    rec.repeats = m.repeats;
    rec.ops = ops;
    rec.candidates_verified = m.totals.candidates_retrieved;
    rec.tas_pruned = m.totals.tas_pruned;
    rec.distance_computations = m.totals.distance_computations;
    rec.disk_reads = m.totals.disk_reads;
    rec.avg_ms_per_query = m.avg_ms;
    rec.avg_cost_ms_per_query = m.avg_cost_ms;
    rec.p50_ms = m.p50_ms;
    rec.p95_ms = m.p95_ms;
    rec.p99_ms = m.p99_ms;
    rec.has_latency = true;
    rec.shards = shards;
    // Emit the block fields whenever there was block traffic, not only
    // when a cache-backed prefetcher reported its block size — a bench
    // driving a mapped searcher without a prefetcher still wants its
    // blocks_read gated (block_size then reads 0 = "not reported").
    rec.has_cache =
        m.has_cache || m.totals.block_hits + m.totals.blocks_read > 0;
    rec.block_size = m.cache_block_bytes;
    rec.block_hits = m.totals.block_hits;
    rec.blocks_read = m.totals.blocks_read;
    rec.prefetched_blocks = m.prefetched_blocks;
    rec.index_pins = m.totals.index_pins;
    rec.has_reload = m.has_reload;
    rec.shard_reloads = m.shard_reloads;
    rec.invalidated_blocks = m.invalidated_blocks;
    rec.has_serving = m.has_serving;
    rec.admitted = m.admitted;
    rec.shed = m.shed;
    rec.deadline_misses = m.deadline_misses;
    rec.goodput_qps = m.goodput_qps;
    rec.has_io = m.has_io;
    rec.io_backend = m.io_backend;
    rec.worker_stalls = m.worker_stalls;
    rec.has_admission = m.has_admission;
    rec.admission_rejects = m.admission_rejects;
    rec.ghost_hits = m.ghost_hits;
    rec.has_ingest = m.has_ingest;
    rec.ingested_checkins = m.ingested_checkins;
    rec.delta_trajectories = m.delta_trajectories;
    rec.merges_completed = m.merges_completed;
    rec.generation = m.generation;
    rec.freshness_lag_ms = m.freshness_lag_ms;
    records_.push_back(std::move(rec));
  }

  /// Records a point measured outside QueryEngine (kernel ablations).
  void AddRaw(const std::string& point_name, double ns_per_op, double rsd_pct,
              uint32_t repeats, size_t ops) {
    Record rec;
    rec.name = point_name;
    rec.ns_per_op = ns_per_op;
    rec.rsd_pct = rsd_pct;
    rec.repeats = repeats;
    rec.ops = ops;
    records_.push_back(std::move(rec));
  }

  /// Writes the JSON payload; returns the path written, or an empty
  /// string when the file could not be created (callers should exit
  /// non-zero so CI never mistakes a missing artifact for a clean run).
  /// Call once, at the end of main.
  std::string Write() const {
    const std::string path =
        proto_.json_path.empty() ? "BENCH_" + name_ + ".json"
                                 : proto_.json_path;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return std::string();
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"%s\",\n", Escaped(name_).c_str());
    std::fprintf(f, "  \"schema_version\": 1,\n");
    std::fprintf(f, "  \"unit\": \"ns/op\",\n");
    std::fprintf(f,
                 "  \"protocol\": {\"threads\": %u, \"warmup\": %u, "
                 "\"target_rsd_pct\": %g, \"max_repeat\": %u, "
                 "\"scale\": %g, \"queries_per_point\": %u, "
                 "\"disk_penalty_ms\": %g",
                 proto_.threads, proto_.warmup, proto_.target_rsd_pct,
                 proto_.max_repeat, ScaleFromEnv(), QueriesFromEnv(),
                 DiskPenaltyMsFromEnv());
    // Open-loop extension fields, append-only: absent for closed-loop
    // benches so every pre-existing artifact stays byte-stable.
    if (proto_.arrival_rate > 0.0) {
      std::fprintf(f, ", \"arrival_rate\": %g", proto_.arrival_rate);
    }
    if (proto_.virtual_time) std::fprintf(f, ", \"virtual_time\": true");
    std::fprintf(f, "},\n");
    std::fprintf(f, "  \"results\": [");
    for (size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      std::fprintf(f, "%s\n    {\"name\": \"%s\", \"ns_per_op\": %.3f, "
                      "\"rsd_pct\": %.3f, \"repeats\": %u, \"ops\": %zu, "
                      "\"candidates_verified\": %llu, \"tas_pruned\": %llu, "
                      "\"distance_computations\": %llu, \"disk_reads\": %llu, "
                      "\"avg_ms_per_query\": %.6f, "
                      "\"avg_cost_ms_per_query\": %.6f",
                   i == 0 ? "" : ",", Escaped(r.name).c_str(), r.ns_per_op,
                   r.rsd_pct, r.repeats, r.ops,
                   static_cast<unsigned long long>(r.candidates_verified),
                   static_cast<unsigned long long>(r.tas_pruned),
                   static_cast<unsigned long long>(r.distance_computations),
                   static_cast<unsigned long long>(r.disk_reads),
                   r.avg_ms_per_query, r.avg_cost_ms_per_query);
      // Optional fields (schema is append-only; consumers must ignore
      // keys they do not know — see docs/BENCH_PROTOCOL.md).
      if (r.has_latency) {
        std::fprintf(f, ", \"p50_ms\": %.6f, \"p95_ms\": %.6f, "
                        "\"p99_ms\": %.6f",
                     r.p50_ms, r.p95_ms, r.p99_ms);
      }
      if (r.shards > 0) std::fprintf(f, ", \"shards\": %u", r.shards);
      // One pin per shard visit under the live-reload epoch guard:
      // deterministic (queries x shards), 0 for fixed-index searchers.
      // Sharded records emit the field even at 0 — a serving path that
      // stops pinning must show up as counter drift against its
      // baseline, not as a silently absent field.
      if (r.index_pins > 0 || r.shards > 0) {
        std::fprintf(f, ", \"index_pins\": %llu",
                     static_cast<unsigned long long>(r.index_pins));
      }
      if (r.has_reload) {
        // Hot-swap activity behind the measurement — interleaving-
        // dependent, diffed advisorily (see docs/BENCH_PROTOCOL.md).
        std::fprintf(f, ", \"shard_reloads\": %llu, "
                        "\"invalidated_blocks\": %llu",
                     static_cast<unsigned long long>(r.shard_reloads),
                     static_cast<unsigned long long>(r.invalidated_blocks));
      }
      if (r.has_serving) {
        // Front-door outcomes of one open-loop point. Exact under
        // --virtual-time (bench_diff.py gates them); goodput is
        // advisory either way.
        std::fprintf(f,
                     ", \"admitted\": %llu, \"shed_count\": %llu, "
                     "\"deadline_misses\": %llu, \"goodput_qps\": %.6f",
                     static_cast<unsigned long long>(r.admitted),
                     static_cast<unsigned long long>(r.shed),
                     static_cast<unsigned long long>(r.deadline_misses),
                     r.goodput_qps);
      }
      if (r.has_io) {
        // Physical read path of this point plus the demand fetches that
        // stalled on cold blocks. The backend string is advisory (it
        // differs across kernels — pread fallback vs io_uring);
        // `worker_stalls` is exact only at --threads 1.
        std::fprintf(f, ", \"io_backend\": \"%s\", \"worker_stalls\": %llu",
                     Escaped(r.io_backend).c_str(),
                     static_cast<unsigned long long>(r.worker_stalls));
      }
      if (r.has_admission) {
        // Scan-resistant admission deltas of the last timed batch —
        // deterministic at --threads 1 with equal repeats (bench_diff.py
        // gates them exactly there, advisory above).
        std::fprintf(f,
                     ", \"admission_rejects\": %llu, \"ghost_hits\": %llu",
                     static_cast<unsigned long long>(r.admission_rejects),
                     static_cast<unsigned long long>(r.ghost_hits));
      }
      if (r.has_ingest) {
        // Delta/base state behind the point. The counters are exact at
        // quiesced points (ingest paused at a fixed watermark —
        // bench_diff.py gates them); `freshness_lag_ms` is wall-clock,
        // advisory always.
        std::fprintf(f,
                     ", \"ingested_checkins\": %llu, "
                     "\"delta_trajectories\": %llu, "
                     "\"merges_completed\": %llu, \"generation\": %llu, "
                     "\"freshness_lag_ms\": %.6f",
                     static_cast<unsigned long long>(r.ingested_checkins),
                     static_cast<unsigned long long>(r.delta_trajectories),
                     static_cast<unsigned long long>(r.merges_completed),
                     static_cast<unsigned long long>(r.generation),
                     r.freshness_lag_ms);
      }
      if (r.has_cache) {
        // Block-cache fields (mmap disk tier): `blocks_read` is the
        // demand misses of the last timed batch — deterministic at
        // --threads 1, interleaving-dependent above (bench_diff.py
        // gates accordingly); `cache_hit_rate` = hits / lookups.
        const double hit_rate =
            CacheHitRate(r.block_hits, r.block_hits + r.blocks_read);
        std::fprintf(f,
                     ", \"block_size\": %u, \"blocks_read\": %llu, "
                     "\"cache_hit_rate\": %.6f, \"prefetched_blocks\": %llu",
                     r.block_size,
                     static_cast<unsigned long long>(r.blocks_read), hit_rate,
                     static_cast<unsigned long long>(r.prefetched_blocks));
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s (%zu records)\n", path.c_str(), records_.size());
    return path;
  }

 private:
  struct Record {
    std::string name;
    double ns_per_op = 0.0;
    double rsd_pct = 0.0;
    uint32_t repeats = 0;
    size_t ops = 0;
    uint64_t candidates_verified = 0;
    uint64_t tas_pruned = 0;
    uint64_t distance_computations = 0;
    uint64_t disk_reads = 0;
    double avg_ms_per_query = 0.0;
    double avg_cost_ms_per_query = 0.0;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    bool has_latency = false;  // AddRaw points have no per-query sample
    uint32_t shards = 0;       // 0 = not a sharded measurement
    bool has_cache = false;    // block-cache fields below are meaningful
    uint32_t block_size = 0;
    uint64_t block_hits = 0;
    uint64_t blocks_read = 0;
    uint64_t prefetched_blocks = 0;
    uint64_t index_pins = 0;   // epoch-guard pins; emitted when > 0
    bool has_reload = false;   // reload fields below are meaningful
    uint64_t shard_reloads = 0;
    uint64_t invalidated_blocks = 0;
    bool has_serving = false;  // serving fields below are meaningful
    uint64_t admitted = 0;
    uint64_t shed = 0;
    uint64_t deadline_misses = 0;
    double goodput_qps = 0.0;
    bool has_io = false;       // io fields below are meaningful
    std::string io_backend;
    uint64_t worker_stalls = 0;
    bool has_admission = false;  // admission fields below are meaningful
    uint64_t admission_rejects = 0;
    uint64_t ghost_hits = 0;
    bool has_ingest = false;   // ingest fields below are meaningful
    uint64_t ingested_checkins = 0;
    uint64_t delta_trajectories = 0;
    uint64_t merges_completed = 0;
    uint64_t generation = 0;
    double freshness_lag_ms = 0.0;
  };

  static std::string Escaped(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
    }
    return out;
  }

  std::string name_;
  BenchProtocol proto_;
  std::vector<Record> records_;
};

/// Shared entry point of every protocol bench: parse flags, run the
/// bench body, write the JSON artifact. Returns the process exit code
/// (non-zero when the artifact could not be written).
inline int BenchMain(int argc, char** argv, const char* name,
                     void (*run)(const BenchProtocol&, BenchReport&)) {
  const BenchProtocol proto = BenchProtocol::FromArgs(argc, argv);
  BenchReport report(name, proto);
  run(proto, report);
  return report.Write().empty() ? 1 : 0;
}

/// Paper-style table printing: one row per x-axis value, one column per
/// method, milliseconds per query.
inline void PrintPanelHeader(const std::string& title,
                             const std::string& x_label,
                             const std::vector<const Searcher*>& methods) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-10s", x_label.c_str());
  for (const auto* s : methods) std::printf("%12s", s->name().c_str());
  std::printf("   (avg ms/query, incl. %.1fms/disk-read)\n",
              DiskPenaltyMsFromEnv());
}

inline void PrintPanelRow(const std::string& x_value,
                          const std::vector<double>& values) {
  std::printf("%-10s", x_value.c_str());
  for (double v : values) std::printf("%12.3f", v);
  std::printf("\n");
}

inline void PrintRunBanner(const char* figure, const char* what,
                           const BenchProtocol& proto) {
  std::printf("--------------------------------------------------------\n");
  std::printf("%s: %s\n", figure, what);
  std::printf("scale=%.3f of Table-IV sizes, %u queries/point "
              "(GAT_BENCH_SCALE / GAT_BENCH_QUERIES to change)\n",
              ScaleFromEnv(), QueriesFromEnv());
  std::printf("protocol: threads=%u warmup=%u target-rsd=%.1f%% "
              "max-repeat=%u\n",
              proto.threads, proto.warmup, proto.target_rsd_pct,
              proto.max_repeat);
  std::printf("--------------------------------------------------------\n");
}

}  // namespace gat::bench

#endif  // GAT_BENCH_HARNESS_H_
