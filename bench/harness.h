#ifndef GAT_BENCH_HARNESS_H_
#define GAT_BENCH_HARNESS_H_

// Shared experiment harness for the figure/table benches.
//
// Every bench binary reproduces one figure or table of Zheng et al., ICDE
// 2013, Section VII, printing the same rows/series the paper plots. Scale
// and query count are tunable via environment variables so the same binary
// covers quick smoke runs and full-size reproductions:
//
//   GAT_BENCH_SCALE    fraction of the Table-IV dataset sizes (default 0.04)
//   GAT_BENCH_QUERIES  queries per measurement point     (default 15; the
//                      paper uses 50 — set it for full fidelity)

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "gat/baselines/il_search.h"
#include "gat/baselines/irt_search.h"
#include "gat/baselines/rt_search.h"
#include "gat/core/searcher.h"
#include "gat/datagen/checkin_generator.h"
#include "gat/datagen/query_generator.h"
#include "gat/index/gat_index.h"
#include "gat/model/dataset_stats.h"
#include "gat/search/gat_search.h"
#include "gat/util/stopwatch.h"

namespace gat::bench {

inline double ScaleFromEnv() {
  const char* s = std::getenv("GAT_BENCH_SCALE");
  if (s == nullptr) return 0.04;
  const double v = std::atof(s);
  return v > 0.0 ? v : 0.04;
}

inline uint32_t QueriesFromEnv() {
  const char* s = std::getenv("GAT_BENCH_QUERIES");
  if (s == nullptr) return 15;
  const int v = std::atoi(s);
  return v > 0 ? static_cast<uint32_t>(v) : 15;
}

/// Per-read latency (ms) charged for simulated disk accesses. The paper's
/// testbed (2013, 4 GB RAM, datasets + APL + low HICL levels on a hard
/// disk) is I/O bound; every searcher counts its page/record fetches in
/// SearchStats::disk_reads and the harness reports
/// CPU time + disk_reads * penalty as the paper-comparable "running time".
/// Default 2 ms (a seek-heavy HDD with some OS caching); set
/// GAT_DISK_PENALTY_MS=0 for pure in-memory timings.
inline double DiskPenaltyMsFromEnv() {
  const char* s = std::getenv("GAT_DISK_PENALTY_MS");
  if (s == nullptr) return 2.0;
  const double v = std::atof(s);
  return v >= 0.0 ? v : 2.0;
}

/// The Table-V defaults.
inline QueryWorkloadParams DefaultWorkload(uint64_t seed) {
  QueryWorkloadParams wp;
  wp.num_query_points = 4;
  wp.activities_per_point = 3;
  wp.diameter_km = 10.0;
  wp.num_queries = QueriesFromEnv();
  wp.seed = seed;
  return wp;
}

/// One city with the paper's four competitors built over it.
class CityFixture {
 public:
  explicit CityFixture(const CityProfile& profile)
      : name_(profile.name), dataset_(GenerateCity(profile)) {
    Build();
  }

  /// Takes ownership of an already-generated dataset (Figure-7 subsets).
  CityFixture(std::string name, Dataset dataset)
      : name_(std::move(name)), dataset_(std::move(dataset)) {
    Build();
  }

  const std::string& name() const { return name_; }
  const Dataset& dataset() const { return dataset_; }
  const GatIndex& index() const { return *index_; }

  /// Searchers in the paper's plotting order: IL, RT, IRT, GAT.
  std::vector<const Searcher*> searchers() const {
    return {il_.get(), rt_.get(), irt_.get(), gat_.get()};
  }
  const GatSearcher& gat() const { return *gat_; }

 private:
  void Build() {
    index_ = std::make_unique<GatIndex>(dataset_);
    gat_ = std::make_unique<GatSearcher>(dataset_, *index_);
    il_ = std::make_unique<IlSearcher>(dataset_);
    rt_ = std::make_unique<RtSearcher>(dataset_);
    irt_ = std::make_unique<IrtSearcher>(dataset_);
  }

  std::string name_;
  Dataset dataset_;
  std::unique_ptr<GatIndex> index_;
  std::unique_ptr<GatSearcher> gat_;
  std::unique_ptr<IlSearcher> il_;
  std::unique_ptr<RtSearcher> rt_;
  std::unique_ptr<IrtSearcher> irt_;
};

struct Measurement {
  double avg_ms = 0.0;       ///< CPU time per query
  double avg_cost_ms = 0.0;  ///< CPU + simulated disk time per query
  SearchStats totals;
};

/// Runs a workload through one searcher. `avg_cost_ms` is the
/// paper-comparable "running time": CPU wall-clock plus the simulated disk
/// latency of every page/record fetch the method performed.
inline Measurement RunWorkload(const Searcher& searcher,
                               const std::vector<Query>& queries, size_t k,
                               QueryKind kind) {
  Measurement m;
  for (const Query& q : queries) {
    SearchStats stats;
    Stopwatch timer;
    searcher.Search(q, k, kind, &stats);
    m.avg_ms += timer.ElapsedMillis();
    stats.elapsed_ms = 0;  // avoid double counting in the += below
    m.totals += stats;
  }
  if (!queries.empty()) {
    m.avg_ms /= static_cast<double>(queries.size());
    m.avg_cost_ms =
        m.avg_ms + DiskPenaltyMsFromEnv() *
                       static_cast<double>(m.totals.disk_reads) /
                       static_cast<double>(queries.size());
  }
  return m;
}

/// Paper-style table printing: one row per x-axis value, one column per
/// method, milliseconds per query.
inline void PrintPanelHeader(const std::string& title,
                             const std::string& x_label,
                             const std::vector<const Searcher*>& methods) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-10s", x_label.c_str());
  for (const auto* s : methods) std::printf("%12s", s->name().c_str());
  std::printf("   (avg ms/query, incl. %.1fms/disk-read)\n",
              DiskPenaltyMsFromEnv());
}

inline void PrintPanelRow(const std::string& x_value,
                          const std::vector<double>& values) {
  std::printf("%-10s", x_value.c_str());
  for (double v : values) std::printf("%12.3f", v);
  std::printf("\n");
}

inline void PrintRunBanner(const char* figure, const char* what) {
  std::printf("--------------------------------------------------------\n");
  std::printf("%s: %s\n", figure, what);
  std::printf("scale=%.3f of Table-IV sizes, %u queries/point "
              "(GAT_BENCH_SCALE / GAT_BENCH_QUERIES to change)\n",
              ScaleFromEnv(), QueriesFromEnv());
  std::printf("--------------------------------------------------------\n");
}

}  // namespace gat::bench

#endif  // GAT_BENCH_HARNESS_H_
