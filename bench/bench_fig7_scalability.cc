// Figure 7: scalability in the dataset size |D| — the paper samples the NY
// dataset down to 10K..50K trajectories. At bench scale the fractions are
// identical (20%..100% of the scaled NY dataset).
//
// Paper shape: all methods grow (sub)linearly; GAT scales best.

#include <cstdio>
#include <numeric>

#include "harness.h"

#include "gat/util/rng.h"

namespace gat::bench {
namespace {

void Main(const BenchProtocol& proto, BenchReport& report) {
  PrintRunBanner("Figure 7", "scalability in |D| (NY subsets, defaults)",
                 proto);
  const double scale = ScaleFromEnv();
  const Dataset full = GenerateCity(CityProfile::NewYork(scale));

  // Pre-shuffle trajectory IDs once so subsets are nested (10K ⊂ 20K ⊂ ...),
  // like sampling a growing crawl.
  std::vector<TrajectoryId> order(full.size());
  std::iota(order.begin(), order.end(), 0);
  Rng rng(7777);
  rng.Shuffle(order);

  std::vector<std::unique_ptr<CityFixture>> fixtures;
  std::vector<std::string> labels;
  for (const double fraction : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    const size_t count = static_cast<size_t>(full.size() * fraction);
    std::vector<TrajectoryId> ids(order.begin(), order.begin() + count);
    char label[64];
    std::snprintf(label, sizeof(label), "%zu", count);
    labels.push_back(label);
    fixtures.push_back(std::make_unique<CityFixture>(
        std::string("NY-") + label, full.Sample(ids)));
  }

  for (const QueryKind kind : {QueryKind::kAtsq, QueryKind::kOatsq}) {
    char title[128];
    std::snprintf(title, sizeof(title), "Figure 7: %s, NY subsets",
                  ToString(kind).c_str());
    PrintPanelHeader(title, "|D|", fixtures.front()->searchers());
    for (size_t i = 0; i < fixtures.size(); ++i) {
      QueryGenerator qgen(fixtures[i]->dataset(),
                          DefaultWorkload(/*seed=*/700 + i));
      const auto queries = qgen.Workload();
      std::vector<double> row;
      for (const Searcher* s : fixtures[i]->searchers()) {
        const auto m = MeasureWorkload(*s, queries, /*k=*/9, kind, proto);
        row.push_back(m.avg_cost_ms);
        char point[128];
        std::snprintf(point, sizeof(point), "%s/%s/%s",
                      fixtures[i]->name().c_str(), ToString(kind).c_str(),
                      s->name().c_str());
        report.Add(point, m, queries.size());
      }
      PrintPanelRow(labels[i], row);
    }
  }
}

}  // namespace
}  // namespace gat::bench

int main(int argc, char** argv) {
  return gat::bench::BenchMain(argc, argv, "fig7_scalability",
                              gat::bench::Main);
}
