// Figure 8: effect of the grid partition granularity (d = 5..8, i.e.
// 32x32 .. 256x256 cells) on GAT's ATSQ/OATSQ running time and on the
// main-memory cost of the index.
//
// Paper shape: finer grids help (tighter lower bounds) with diminishing
// returns beyond 64x64; memory cost rises gently with the partition count
// since only ITL grows in the memory tier (low HICL levels live on disk).

#include <algorithm>
#include <cstdio>

#include "harness.h"

namespace gat::bench {
namespace {

void RunCity(const CityProfile& profile, const BenchProtocol& proto,
             BenchReport& report) {
  const Dataset dataset = GenerateCity(profile);
  QueryGenerator qgen(dataset, DefaultWorkload(/*seed=*/800));
  const auto queries = qgen.Workload();

  std::printf("\n=== Figure 8: partition granularity on %s ===\n",
              profile.name.c_str());
  std::printf("%-12s%14s%14s%18s\n", "#partition", "ATSQ(ms)", "OATSQ(ms)",
              "memory cost(MB)");
  for (const int depth : {5, 6, 7, 8}) {
    GatConfig config;
    config.depth = depth;
    config.memory_levels = std::min(depth, 6);
    const GatIndex index(dataset, config);
    const GatSearcher gat(dataset, index);
    const auto atsq =
        MeasureWorkload(gat, queries, 9, QueryKind::kAtsq, proto);
    const auto oatsq =
        MeasureWorkload(gat, queries, 9, QueryKind::kOatsq, proto);
    const double mem_mb =
        static_cast<double>(index.memory_breakdown().MainMemoryTotal()) /
        (1024.0 * 1024.0);
    char label[32];
    std::snprintf(label, sizeof(label), "%dx%d", 1 << depth, 1 << depth);
    std::printf("%-12s%14.3f%14.3f%18.3f\n", label, atsq.avg_cost_ms,
                oatsq.avg_cost_ms, mem_mb);
    char point[128];
    std::snprintf(point, sizeof(point), "%s/ATSQ/GAT/grid=%s",
                  profile.name.c_str(), label);
    report.Add(point, atsq, queries.size());
    std::snprintf(point, sizeof(point), "%s/OATSQ/GAT/grid=%s",
                  profile.name.c_str(), label);
    report.Add(point, oatsq, queries.size());
  }
}

void Main(const BenchProtocol& proto, BenchReport& report) {
  PrintRunBanner("Figure 8",
                 "GAT runtime + main-memory cost vs grid granularity", proto);
  const double scale = ScaleFromEnv();
  RunCity(CityProfile::LosAngeles(scale), proto, report);
  RunCity(CityProfile::NewYork(scale), proto, report);
}

}  // namespace
}  // namespace gat::bench

int main(int argc, char** argv) {
  return gat::bench::BenchMain(argc, argv, "fig8_granularity",
                              gat::bench::Main);
}
