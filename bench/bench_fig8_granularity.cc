// Figure 8: effect of the grid partition granularity (d = 5..8, i.e.
// 32x32 .. 256x256 cells) on GAT's ATSQ/OATSQ running time and on the
// main-memory cost of the index.
//
// Paper shape: finer grids help (tighter lower bounds) with diminishing
// returns beyond 64x64; memory cost rises gently with the partition count
// since only ITL grows in the memory tier (low HICL levels live on disk).

#include <cstdio>

#include "harness.h"

namespace gat::bench {
namespace {

void RunCity(const CityProfile& profile) {
  const Dataset dataset = GenerateCity(profile);
  QueryGenerator qgen(dataset, DefaultWorkload(/*seed=*/800));
  const auto queries = qgen.Workload();

  std::printf("\n=== Figure 8: partition granularity on %s ===\n",
              profile.name.c_str());
  std::printf("%-12s%14s%14s%18s\n", "#partition", "ATSQ(ms)", "OATSQ(ms)",
              "memory cost(MB)");
  for (const int depth : {5, 6, 7, 8}) {
    GatConfig config;
    config.depth = depth;
    config.memory_levels = std::min(depth, 6);
    const GatIndex index(dataset, config);
    const GatSearcher gat(dataset, index);
    const double atsq =
        RunWorkload(gat, queries, 9, QueryKind::kAtsq).avg_cost_ms;
    const double oatsq =
        RunWorkload(gat, queries, 9, QueryKind::kOatsq).avg_cost_ms;
    const double mem_mb =
        static_cast<double>(index.memory_breakdown().MainMemoryTotal()) /
        (1024.0 * 1024.0);
    char label[32];
    std::snprintf(label, sizeof(label), "%dx%d", 1 << depth, 1 << depth);
    std::printf("%-12s%14.3f%14.3f%18.3f\n", label, atsq, oatsq, mem_mb);
  }
}

void Main() {
  PrintRunBanner("Figure 8",
                 "GAT runtime + main-memory cost vs grid granularity");
  const double scale = ScaleFromEnv();
  RunCity(CityProfile::LosAngeles(scale));
  RunCity(CityProfile::NewYork(scale));
}

}  // namespace
}  // namespace gat::bench

int main() {
  gat::bench::Main();
  return 0;
}
