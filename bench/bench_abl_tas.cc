// Ablation: the trajectory activity sketch (TAS). Varies the interval
// count M, reporting sketch memory, pruning rate (candidates rejected
// without touching the disk-tier APL), the residual false-positive rate
// that the exact APL check absorbs, and end-to-end time. Also includes the
// TAS-off configuration (every candidate pays an APL disk read).

#include <algorithm>
#include <cstdio>

#include "harness.h"

namespace gat::bench {
namespace {

void Main(const BenchProtocol& proto, BenchReport& report) {
  PrintRunBanner("Ablation", "TAS sketch: pruning power vs interval count M",
                 proto);
  const Dataset dataset = GenerateCity(CityProfile::LosAngeles(ScaleFromEnv()));
  auto wp = DefaultWorkload(/*seed=*/920);
  wp.activities_per_point = 4;  // harder activity constraints
  QueryGenerator qgen(dataset, wp);
  const auto queries = qgen.Workload();

  std::printf("%-14s%14s%12s%14s%16s%12s\n", "config", "TAS bytes", "avg ms",
              "tas_pruned", "apl_rejected", "disk reads");
  for (const int m : {0, 1, 2, 4, 8, 16}) {  // 0 = TAS disabled
    GatConfig config;
    config.tas_intervals = std::max(1, m);
    const GatIndex index(dataset, config);
    GatSearchParams params;
    params.use_tas = m > 0;
    const GatSearcher searcher(dataset, index, params);
    const auto meas = MeasureWorkload(searcher, queries, 9, QueryKind::kAtsq,
                                      proto);
    char label[32];
    if (m == 0) {
      std::snprintf(label, sizeof(label), "TAS off");
    } else {
      std::snprintf(label, sizeof(label), "M=%d", m);
    }
    std::printf("%-14s%14zu%12.3f%14llu%16llu%12llu\n", label,
                m == 0 ? size_t{0} : index.tas().MemoryBytes(),
                meas.avg_cost_ms,
                static_cast<unsigned long long>(meas.totals.tas_pruned),
                static_cast<unsigned long long>(meas.totals.activity_rejected),
                static_cast<unsigned long long>(meas.totals.disk_reads));
    char point[128];
    std::snprintf(point, sizeof(point), "LA/ATSQ/GAT/tas=%s", label);
    report.Add(point, meas, queries.size());
  }
  std::printf(
      "\nReading: larger M -> compacter intervals -> more candidates pruned\n"
      "before the (simulated) disk-resident APL is touched; memory cost is\n"
      "8*M*N bytes as in Section IV.\n");
}

}  // namespace
}  // namespace gat::bench

int main(int argc, char** argv) {
  return gat::bench::BenchMain(argc, argv, "abl_tas",
                              gat::bench::Main);
}
