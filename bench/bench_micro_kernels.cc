// google-benchmark micro timings of the hot kernels: Dmpm (Algorithm 3),
// the Dmom DP (Algorithm 4), grid/Z-order operations, TAS membership and
// R-tree incremental NN.

#include <benchmark/benchmark.h>

#include <vector>

#include "gat/core/match.h"
#include "gat/core/order_match.h"
#include "gat/core/point_match.h"
#include "gat/datagen/checkin_generator.h"
#include "gat/datagen/query_generator.h"
#include "gat/geo/zorder.h"
#include "gat/index/gat_index.h"
#include "gat/rtree/rtree.h"
#include "gat/search/gat_search.h"
#include "gat/util/rng.h"

namespace gat {
namespace {

std::vector<MatchPoint> RandomCandidates(Rng& rng, int bits, int n) {
  std::vector<MatchPoint> cp;
  for (int i = 0; i < n; ++i) {
    ActivityMask mask = 0;
    for (int b = 0; b < bits; ++b) {
      if (rng.NextBool(0.3)) mask |= ActivityMask{1} << b;
    }
    if (mask == 0) mask = ActivityMask{1} << rng.NextU32(bits);
    cp.push_back(MatchPoint{rng.NextDouble(0, 100), mask,
                            static_cast<PointIndex>(i)});
  }
  return cp;
}

void BM_Dmpm_Algorithm3(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  Rng rng(1);
  const auto cp = RandomCandidates(rng, bits, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MinPointMatchDistance(cp, bits).distance);
  }
}
BENCHMARK(BM_Dmpm_Algorithm3)
    ->Args({3, 16})
    ->Args({3, 64})
    ->Args({5, 64})
    ->Args({8, 256});

void BM_Dmpm_Exhaustive(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  Rng rng(1);
  const auto cp = RandomCandidates(rng, bits, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExhaustiveMinPointMatch(cp, bits, nullptr));
  }
}
BENCHMARK(BM_Dmpm_Exhaustive)->Args({3, 64})->Args({5, 64})->Args({8, 256});

void BM_Dmom_DynamicProgram(benchmark::State& state) {
  const auto traj_len = static_cast<size_t>(state.range(0));
  // Synthetic trajectory/query: 4 query points, 3 activities each.
  Rng rng(2);
  std::vector<TrajectoryPoint> points;
  for (size_t i = 0; i < traj_len; ++i) {
    TrajectoryPoint p;
    p.location = Point{rng.NextDouble(0, 10), rng.NextDouble(0, 10)};
    const uint32_t count = 1 + rng.NextU32(3);
    for (uint32_t c = 0; c < count; ++c) p.activities.push_back(rng.NextU32(12));
    points.push_back(std::move(p));
  }
  Trajectory tr(std::move(points));
  tr.NormalizeActivities();
  std::vector<QueryPoint> qp;
  for (int i = 0; i < 4; ++i) {
    qp.push_back(QueryPoint{Point{rng.NextDouble(0, 10), rng.NextDouble(0, 10)},
                            {rng.NextU32(12), rng.NextU32(12), rng.NextU32(12)}});
  }
  const Query query(std::move(qp));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MinOrderSensitiveMatchDistance(tr, query));
  }
}
BENCHMARK(BM_Dmom_DynamicProgram)->Arg(16)->Arg(64)->Arg(256);

void BM_ZOrderEncode(benchmark::State& state) {
  Rng rng(3);
  uint32_t col = rng.NextU32(1 << 16);
  uint32_t row = rng.NextU32(1 << 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zorder::Encode(col, row));
    col = (col + 7) & 0xFFFF;
    row = (row + 13) & 0xFFFF;
  }
}
BENCHMARK(BM_ZOrderEncode);

void BM_GridLeafCode(benchmark::State& state) {
  GridGeometry grid(Rect{Point{0, 0}, Point{60, 50}}, 8);
  Rng rng(4);
  Point p{rng.NextDouble(0, 60), rng.NextDouble(0, 50)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(grid.LeafCode(p));
    p.x = p.x >= 60 ? 0.0 : p.x + 0.37;
  }
}
BENCHMARK(BM_GridLeafCode);

void BM_TasMightContainAll(benchmark::State& state) {
  const Dataset dataset = GenerateCity(CityProfile::Testing(500, 11));
  std::vector<std::vector<ActivityId>> sets;
  for (const auto& tr : dataset.trajectories()) sets.push_back(tr.ActivityUnion());
  const Tas tas(sets, 2);
  const std::vector<ActivityId> probe = {1, 5, 17};
  TrajectoryId t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tas.MightContainAll(t, probe));
    t = (t + 1) % dataset.size();
  }
}
BENCHMARK(BM_TasMightContainAll);

void BM_RTreeNearestStream(benchmark::State& state) {
  Rng rng(5);
  std::vector<RTreeEntry> entries;
  for (uint32_t i = 0; i < 20000; ++i) {
    entries.push_back(RTreeEntry{
        Point{rng.NextDouble(0, 100), rng.NextDouble(0, 100)}, i, 0});
  }
  const RTree tree = RTree::BulkLoad(std::move(entries), 32);
  for (auto _ : state) {
    RTree::NearestIterator it(tree, Point{50, 50});
    RTreeEntry e;
    double d;
    for (int i = 0; i < 100; ++i) it.Next(&e, &d);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_RTreeNearestStream);

void BM_GatAtsqQuery(benchmark::State& state) {
  const Dataset dataset = GenerateCity(CityProfile::Testing(1000, 12));
  const GatIndex index(dataset);
  const GatSearcher searcher(dataset, index);
  QueryWorkloadParams wp;
  wp.num_queries = 1;
  wp.seed = 13;
  QueryGenerator qgen(dataset, wp);
  const Query q = qgen.Next();
  for (auto _ : state) {
    benchmark::DoNotOptimize(searcher.Atsq(q, 9));
  }
}
BENCHMARK(BM_GatAtsqQuery);

}  // namespace
}  // namespace gat

BENCHMARK_MAIN();
