// Micro timings of the hot kernels: Dmpm (Algorithm 3), the Dmom DP
// (Algorithm 4), grid/Z-order operations, TAS membership, R-tree
// incremental NN, and one whole ATSQ query — now on the repo's own JSON
// harness protocol (BENCH_micro_kernels.json) instead of the optional
// google-benchmark dependency, so the records diff in CI like every
// other bench. Timings are wall-clock and therefore advisory
// (--skip-timing in diffs); what the baseline pins is the record set
// itself — a kernel disappearing from the list is a build regression.

#include <cstdint>
#include <utility>
#include <vector>

#include "harness.h"

#include "gat/core/match.h"
#include "gat/core/order_match.h"
#include "gat/core/point_match.h"
#include "gat/geo/zorder.h"
#include "gat/rtree/rtree.h"
#include "gat/util/rng.h"

namespace gat::bench {
namespace {

// Keeps `value` observable so the optimizer cannot delete the kernel
// under test (the usual empty-asm idiom; no library needed).
template <typename T>
inline void DoNotOptimize(const T& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

struct KernelTiming {
  double ns_per_op = 0.0;
  double rsd_pct = 0.0;
  uint32_t repeats = 0;
};

/// The harness measurement protocol applied to a raw kernel: `warmup`
/// un-timed sweeps of `iters` calls, then timed sweeps until the
/// relative standard deviation reaches the target (or max_repeat).
template <typename Fn>
KernelTiming TimeKernel(const BenchProtocol& proto, size_t iters, Fn&& fn) {
  KernelTiming timing;
  for (uint32_t w = 0; w < proto.warmup; ++w) {
    for (size_t i = 0; i < iters; ++i) fn();
  }
  std::vector<double> ns_per_op;
  for (uint32_t r = 0; r < proto.max_repeat; ++r) {
    Stopwatch timer;
    for (size_t i = 0; i < iters; ++i) fn();
    ns_per_op.push_back(timer.ElapsedMicros() * 1e3 /
                        static_cast<double>(iters));
    if (ns_per_op.size() >= 2) {
      double sum = 0.0;
      for (double v : ns_per_op) sum += v;
      const double mean = sum / static_cast<double>(ns_per_op.size());
      double var = 0.0;
      for (double v : ns_per_op) var += (v - mean) * (v - mean);
      var /= static_cast<double>(ns_per_op.size());
      timing.rsd_pct = mean > 0.0 ? 100.0 * std::sqrt(var) / mean : 0.0;
      if (timing.rsd_pct <= proto.target_rsd_pct) break;
    }
  }
  double sum = 0.0;
  for (double v : ns_per_op) sum += v;
  timing.ns_per_op = sum / static_cast<double>(ns_per_op.size());
  timing.repeats = static_cast<uint32_t>(ns_per_op.size());
  return timing;
}

template <typename Fn>
void Report(const BenchProtocol& proto, BenchReport& report,
            const std::string& name, size_t iters, Fn&& fn) {
  const KernelTiming t = TimeKernel(proto, iters, std::forward<Fn>(fn));
  report.AddRaw(name, t.ns_per_op, t.rsd_pct, t.repeats, iters);
  std::printf("%-32s %12.1f ns/op  (rsd %.1f%%, %u repeats)\n", name.c_str(),
              t.ns_per_op, t.rsd_pct, t.repeats);
}

std::vector<MatchPoint> RandomCandidates(Rng& rng, int bits, int n) {
  std::vector<MatchPoint> cp;
  for (int i = 0; i < n; ++i) {
    ActivityMask mask = 0;
    for (int b = 0; b < bits; ++b) {
      if (rng.NextBool(0.3)) mask |= ActivityMask{1} << b;
    }
    if (mask == 0) mask = ActivityMask{1} << rng.NextU32(bits);
    cp.push_back(MatchPoint{rng.NextDouble(0, 100), mask,
                            static_cast<PointIndex>(i)});
  }
  return cp;
}

void Main(const BenchProtocol& proto, BenchReport& report) {
  PrintRunBanner("Micro kernels",
                 "hot-kernel timings on the JSON harness protocol", proto);

  // ------------------------------------------ Dmpm (Algorithm 3 vs. brute)
  for (const auto& [bits, n] : {std::pair<int, int>{3, 16},
                                {3, 64},
                                {5, 64},
                                {8, 256}}) {
    Rng rng(1);
    const auto cp = RandomCandidates(rng, bits, n);
    Report(proto, report,
           "dmpm_alg3/bits=" + std::to_string(bits) +
               ",n=" + std::to_string(n),
           2000, [&cp, bits = bits] {
             DoNotOptimize(MinPointMatchDistance(cp, bits).distance);
           });
  }
  for (const auto& [bits, n] :
       {std::pair<int, int>{3, 64}, {5, 64}, {8, 256}}) {
    Rng rng(1);
    const auto cp = RandomCandidates(rng, bits, n);
    Report(proto, report,
           "dmpm_exhaustive/bits=" + std::to_string(bits) +
               ",n=" + std::to_string(n),
           200, [&cp, bits = bits] {
             DoNotOptimize(ExhaustiveMinPointMatch(cp, bits, nullptr));
           });
  }

  // --------------------------------------------------- Dmom (Algorithm 4)
  for (const size_t traj_len : {size_t{16}, size_t{64}, size_t{256}}) {
    Rng rng(2);
    std::vector<TrajectoryPoint> points;
    for (size_t i = 0; i < traj_len; ++i) {
      TrajectoryPoint p;
      p.location = Point{rng.NextDouble(0, 10), rng.NextDouble(0, 10)};
      const uint32_t count = 1 + rng.NextU32(3);
      for (uint32_t c = 0; c < count; ++c) {
        p.activities.push_back(rng.NextU32(12));
      }
      points.push_back(std::move(p));
    }
    Trajectory tr(std::move(points));
    tr.NormalizeActivities();
    std::vector<QueryPoint> qp;
    for (int i = 0; i < 4; ++i) {
      qp.push_back(
          QueryPoint{Point{rng.NextDouble(0, 10), rng.NextDouble(0, 10)},
                     {rng.NextU32(12), rng.NextU32(12), rng.NextU32(12)}});
    }
    const Query query(std::move(qp));
    Report(proto, report, "dmom_dp/len=" + std::to_string(traj_len), 500,
           [&tr, &query] {
             DoNotOptimize(MinOrderSensitiveMatchDistance(tr, query));
           });
  }

  // --------------------------------------------------- grid and Z-order
  {
    Rng rng(3);
    uint32_t col = rng.NextU32(1 << 16);
    uint32_t row = rng.NextU32(1 << 16);
    Report(proto, report, "zorder_encode", 200000, [&col, &row] {
      DoNotOptimize(zorder::Encode(col, row));
      col = (col + 7) & 0xFFFF;
      row = (row + 13) & 0xFFFF;
    });
  }
  {
    GridGeometry grid(Rect{Point{0, 0}, Point{60, 50}}, 8);
    Rng rng(4);
    Point p{rng.NextDouble(0, 60), rng.NextDouble(0, 50)};
    Report(proto, report, "grid_leaf_code", 200000, [&grid, &p] {
      DoNotOptimize(grid.LeafCode(p));
      p.x = p.x >= 60 ? 0.0 : p.x + 0.37;
    });
  }

  // ------------------------------------------------------ TAS membership
  {
    const Dataset dataset = GenerateCity(CityProfile::Testing(500, 11));
    std::vector<std::vector<ActivityId>> sets;
    for (const auto& tr : dataset.trajectories()) {
      sets.push_back(tr.ActivityUnion());
    }
    const Tas tas(sets, 2);
    const std::vector<ActivityId> probe = {1, 5, 17};
    TrajectoryId t = 0;
    Report(proto, report, "tas_might_contain_all", 100000,
           [&tas, &probe, &t, &dataset] {
             DoNotOptimize(tas.MightContainAll(t, probe));
             t = (t + 1) % dataset.size();
           });
  }

  // ------------------------------------------------- R-tree NN streaming
  {
    Rng rng(5);
    std::vector<RTreeEntry> entries;
    for (uint32_t i = 0; i < 20000; ++i) {
      entries.push_back(RTreeEntry{
          Point{rng.NextDouble(0, 100), rng.NextDouble(0, 100)}, i, 0});
    }
    const RTree tree = RTree::BulkLoad(std::move(entries), 32);
    Report(proto, report, "rtree_nearest_stream_100", 200, [&tree] {
      RTree::NearestIterator it(tree, Point{50, 50});
      RTreeEntry e;
      double d = 0.0;
      for (int i = 0; i < 100; ++i) it.Next(&e, &d);
      DoNotOptimize(d);
    });
  }

  // ------------------------------------------------------ whole ATSQ query
  {
    const Dataset dataset = GenerateCity(CityProfile::Testing(1000, 12));
    const GatIndex index(dataset);
    const GatSearcher searcher(dataset, index);
    QueryWorkloadParams wp;
    wp.num_queries = 1;
    wp.seed = 13;
    QueryGenerator qgen(dataset, wp);
    const Query q = qgen.Next();
    Report(proto, report, "gat_atsq_query", 50,
           [&searcher, &q] { DoNotOptimize(searcher.Atsq(q, 9)); });
  }
}

}  // namespace
}  // namespace gat::bench

int main(int argc, char** argv) {
  return gat::bench::BenchMain(argc, argv, "micro_kernels", gat::bench::Main);
}
