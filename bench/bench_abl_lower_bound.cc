// Ablation: the Algorithm-2 tighter lower bound vs the naive PQ-head bound
// the paper rejects in Section V-B. Measures retrieval rounds, candidates
// refined, and time — the tight bound should terminate the best-first loop
// earlier on both query kinds.

#include <cstdio>

#include "harness.h"

namespace gat::bench {
namespace {

void Run(const CityFixture& city, QueryKind kind, const BenchProtocol& proto,
         BenchReport& report) {
  QueryGenerator qgen(city.dataset(), DefaultWorkload(/*seed=*/910));
  const auto queries = qgen.Workload();

  std::printf("\n=== Lower-bound ablation: %s on %s ===\n",
              ToString(kind).c_str(), city.name().c_str());
  std::printf("%-22s%12s%14s%12s%12s\n", "bound", "avg ms", "candidates",
              "rounds", "cells");
  for (const bool tight : {true, false}) {
    GatSearchParams params;
    params.use_tight_lower_bound = tight;
    const GatSearcher searcher(city.dataset(), city.index(), params);
    const auto m = MeasureWorkload(searcher, queries, /*k=*/9, kind, proto);
    std::printf("%-22s%12.3f%14llu%12llu%12llu\n",
                tight ? "Algorithm 2 (tight)" : "PQ head (naive)",
                m.avg_cost_ms,
                static_cast<unsigned long long>(m.totals.candidates_retrieved),
                static_cast<unsigned long long>(m.totals.rounds),
                static_cast<unsigned long long>(m.totals.nodes_popped));
    char point[128];
    std::snprintf(point, sizeof(point), "%s/%s/GAT/bound=%s",
                  city.name().c_str(), ToString(kind).c_str(),
                  tight ? "tight" : "naive");
    report.Add(point, m, queries.size());
  }
}

void Main(const BenchProtocol& proto, BenchReport& report) {
  PrintRunBanner("Ablation", "Algorithm-2 lower bound vs naive PQ-head bound",
                 proto);
  const CityFixture la(CityProfile::LosAngeles(ScaleFromEnv()));
  Run(la, QueryKind::kAtsq, proto, report);
  Run(la, QueryKind::kOatsq, proto, report);
}

}  // namespace
}  // namespace gat::bench

int main(int argc, char** argv) {
  return gat::bench::BenchMain(argc, argv, "abl_lower_bound",
                              gat::bench::Main);
}
