// Ablation: Algorithm 3 (sorted + early termination + subset hash) vs the
// exhaustive subset-DP for the minimum point match distance, across
// |q.Phi| and candidate-set sizes. Reports speedup and how often the early
// termination fires.

#include <cstdio>
#include <vector>

#include "harness.h"

#include "gat/core/point_match.h"
#include "gat/util/rng.h"

namespace gat::bench {
namespace {

std::vector<MatchPoint> RandomCandidates(Rng& rng, int bits, int n) {
  std::vector<MatchPoint> cp;
  for (int i = 0; i < n; ++i) {
    ActivityMask mask = 0;
    for (int b = 0; b < bits; ++b) {
      if (rng.NextBool(0.3)) mask |= ActivityMask{1} << b;
    }
    if (mask == 0) mask = ActivityMask{1} << rng.NextU32(bits);
    cp.push_back(MatchPoint{rng.NextDouble(0, 100), mask,
                            static_cast<PointIndex>(i)});
  }
  return cp;
}

void Main(const BenchProtocol& proto, BenchReport& report) {
  PrintRunBanner("Ablation", "Algorithm 3 vs exhaustive subset DP (Dmpm)",
                 proto);
  std::printf("%-8s%-8s%14s%14s%12s%14s\n", "|q.Phi|", "|CP|", "alg3 us/op",
              "exhaust us/op", "speedup", "early-term %");
  Rng rng(4040);
  const int kRounds = 2000;
  for (const int bits : {2, 3, 4, 5, 8}) {
    for (const int n : {8, 32, 128}) {
      // Pre-generate inputs so both sides time identical work.
      std::vector<std::vector<MatchPoint>> inputs;
      for (int r = 0; r < kRounds; ++r) {
        inputs.push_back(RandomCandidates(rng, bits, n));
      }
      Stopwatch t1;
      uint64_t early = 0;
      double sink1 = 0;
      for (const auto& cp : inputs) {
        const auto res = MinPointMatchDistance(cp, bits);
        sink1 += res.distance == kInfDist ? 0 : res.distance;
        early += res.early_terminated ? 1 : 0;
      }
      const double alg3_us = t1.ElapsedMicros() / kRounds;
      Stopwatch t2;
      double sink2 = 0;
      for (const auto& cp : inputs) {
        const double d = ExhaustiveMinPointMatch(cp, bits, nullptr);
        sink2 += d == kInfDist ? 0 : d;
      }
      const double ex_us = t2.ElapsedMicros() / kRounds;
      if (sink1 > sink2 + 1e-3 || sink2 > sink1 + 1e-3) {
        std::printf("DISAGREEMENT! %f vs %f\n", sink1, sink2);
      }
      std::printf("%-8d%-8d%14.3f%14.3f%12.2fx%13.1f%%\n", bits, n, alg3_us,
                  ex_us, ex_us / alg3_us,
                  100.0 * static_cast<double>(early) / kRounds);
      char point[128];
      std::snprintf(point, sizeof(point), "dmpm/alg3/phi=%d/cp=%d", bits, n);
      report.AddRaw(point, alg3_us * 1e3, /*rsd_pct=*/0.0, /*repeats=*/1,
                    /*ops=*/kRounds);
      std::snprintf(point, sizeof(point), "dmpm/exhaustive/phi=%d/cp=%d",
                    bits, n);
      report.AddRaw(point, ex_us * 1e3, /*rsd_pct=*/0.0, /*repeats=*/1,
                    /*ops=*/kRounds);
    }
  }
}

}  // namespace
}  // namespace gat::bench

int main(int argc, char** argv) {
  return gat::bench::BenchMain(argc, argv, "abl_point_match",
                              gat::bench::Main);
}
