// Pipelined batches and per-query shard fan-out (beyond the paper): what
// the shared-executor refactor of src/gat/engine buys at serving time.
//
// Three things are measured, all on ONE executor of --threads workers:
//
//   * latency/...: single-query latency (p50/p95/p99) against a
//     ShardedSearcher that fans each query out across the shards as
//     sibling tasks. Queries are submitted one at a time (engine
//     threads = 1), so the percentiles isolate per-query fan-out from
//     batch throughput. The per-query latency includes the simulated
//     disk time of the query's *critical path* — parallel shards
//     overlap their disk reads, sequential execution pays the sum — so
//     p95 drops as shards are added when the pool has capacity.
//   * pipeline/...: total wall-clock of K batches submitted from K
//     concurrent caller threads vs the same batches run back-to-back.
//     Cross-batch pipelining means the concurrent submission drains no
//     slower (and under load, faster) than the serial one, with
//     bit-identical per-batch results — which this bench asserts.
//   * startup/...: cold shard builds as tasks on the same executor the
//     queries run on (pool-shared builds — no second thread set).
//
// The merged top-k stays bit-identical to the single monolithic index
// at every shard count (tests/shard_test.cc); this bench asserts it
// again end-to-end and measures what the fan-out buys.

#include <cstdio>
#include <thread>
#include <vector>

#include "harness.h"

#include "gat/engine/executor.h"
#include "gat/shard/sharded_index.h"
#include "gat/shard/sharded_searcher.h"

namespace gat::bench {
namespace {

void Main(const BenchProtocol& proto, BenchReport& report) {
  PrintRunBanner("Pipeline + fan-out",
                 "shared-executor serving: per-query shard fan-out and "
                 "cross-batch pipelining (NY, defaults)",
                 proto);
  const Dataset city = GenerateCity(CityProfile::NewYork(ScaleFromEnv()));
  QueryGenerator qgen(city, DefaultWorkload(/*seed=*/20130408));
  const auto queries = qgen.Workload();
  constexpr size_t kTopK = 9;

  // The one pool everything below shares: builds, fan-out, batches.
  Executor executor(proto.threads);

  // Reference answers from the monolithic index, single-threaded.
  const GatIndex single_index(city);
  const GatSearcher single(city, single_index);
  const QueryEngine reference(single, EngineOptions{.threads = 1});
  const BatchResult want = reference.Run(queries, kTopK, QueryKind::kAtsq);

  // ---------------------------------------------------- per-query latency
  std::printf("\n%-10s%12s%12s%12s%14s\n", "shards", "p50 ms", "p95 ms",
              "p99 ms", "build s");
  for (const uint32_t num_shards : {1u, 2u, 4u}) {
    ShardOptions options;
    options.num_shards = num_shards;
    options.executor = &executor;  // pool-shared build
    const ShardedIndex sharded(city, {}, options);
    const ShardedSearcher fanned(sharded, {}, &executor);

    char point[128];
    std::snprintf(point, sizeof(point), "startup/pool-shared-build/shards=%u",
                  num_shards);
    report.AddRaw(point, sharded.build_seconds() * 1e9, 0.0, 1, 1);

    // Engine threads = 1: queries go one at a time, so the percentiles
    // measure one query's latency; parallelism comes only from the
    // shard fan-out on the shared executor.
    BenchProtocol latency_proto = proto;
    latency_proto.threads = 1;
    for (const QueryKind kind : {QueryKind::kAtsq, QueryKind::kOatsq}) {
      const auto m =
          MeasureWorkload(fanned, queries, kTopK, kind, latency_proto);
      std::snprintf(point, sizeof(point), "NY/%s/latency/shards=%u",
                    ToString(kind).c_str(), num_shards);
      report.Add(point, m, queries.size(), num_shards);
      if (kind == QueryKind::kAtsq) {
        std::printf("%-10u%12.3f%12.3f%12.3f%14.3f\n", num_shards, m.p50_ms,
                    m.p95_ms, m.p99_ms, sharded.build_seconds());
      }
    }

    // Fan-out answers must stay bit-identical to the monolithic index.
    const QueryEngine engine(fanned, EngineOptions{.executor = &executor});
    const BatchResult got = engine.Run(queries, kTopK, QueryKind::kAtsq);
    for (size_t i = 0; i < queries.size(); ++i) {
      if (got.results[i] != want.results[i]) {
        std::fprintf(stderr,
                     "FATAL: fan-out result diverged from the single index "
                     "(shards=%u, query %zu)\n",
                     num_shards, i);
        std::exit(1);
      }
    }
  }

  // ------------------------------------------------ cross-batch pipelining
  // K concurrent callers, one engine, one pool. Serial reference first;
  // per-batch results must be bit-identical either way.
  constexpr uint32_t kCallers = 4;
  const ShardedIndex sharded(
      city, {}, ShardOptions{.num_shards = 4, .executor = &executor});
  const ShardedSearcher fanned(sharded, {}, &executor);
  const QueryEngine engine(fanned, EngineOptions{.executor = &executor});

  std::vector<BatchResult> serial(kCallers);
  Stopwatch serial_timer;
  for (uint32_t b = 0; b < kCallers; ++b) {
    serial[b] = engine.Run(queries, kTopK, QueryKind::kAtsq);
  }
  const double serial_ms = serial_timer.ElapsedMillis();

  std::vector<BatchResult> concurrent(kCallers);
  Stopwatch concurrent_timer;
  {
    std::vector<std::thread> callers;
    callers.reserve(kCallers);
    for (uint32_t b = 0; b < kCallers; ++b) {
      callers.emplace_back([&, b] {
        concurrent[b] = engine.Run(queries, kTopK, QueryKind::kAtsq);
      });
    }
    for (auto& t : callers) t.join();
  }
  const double concurrent_ms = concurrent_timer.ElapsedMillis();

  for (uint32_t b = 0; b < kCallers; ++b) {
    for (size_t i = 0; i < queries.size(); ++i) {
      if (concurrent[b].results[i] != serial[b].results[i]) {
        std::fprintf(stderr,
                     "FATAL: concurrent batch %u diverged at query %zu\n", b,
                     i);
        std::exit(1);
      }
    }
  }

  const double total_queries =
      static_cast<double>(kCallers) * static_cast<double>(queries.size());
  report.AddRaw("pipeline/serial-batches=4", serial_ms * 1e6 / total_queries,
                0.0, 1, static_cast<size_t>(total_queries));
  report.AddRaw("pipeline/concurrent-batches=4",
                concurrent_ms * 1e6 / total_queries, 0.0, 1,
                static_cast<size_t>(total_queries));
  std::printf("\n%u batches x %zu queries: serial %.1f ms, concurrent "
              "callers %.1f ms (results bit-identical)\n",
              kCallers, queries.size(), serial_ms, concurrent_ms);
}

}  // namespace
}  // namespace gat::bench

int main(int argc, char** argv) {
  return gat::bench::BenchMain(argc, argv, "pipeline_fanout",
                               gat::bench::Main);
}
