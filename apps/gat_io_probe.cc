// gat_io_probe: report which async I/O backend this host actually gets.
//
// Prints the io_uring runtime probe verdict (kernel + seccomp), the
// backend AsyncBlockIo selects under default options (including any
// GAT_IO_BACKEND override in effect), and runs a small read self-test
// through that backend so a green exit code means "async block I/O
// works here", not just "it compiled". CI runs this once per leg so
// every build log records which physical read path the storage-tier
// tests and benches exercised on that runner.
//
// Exit codes: 0 = self-test passed (either backend), 1 = self-test
// failed. io_uring being unavailable is NOT a failure — the pread pool
// is a fully supported fallback; the point is to log which one ran.

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "gat/storage/async_io.h"

int main() {
  const bool uring = gat::ProbeIoUring();
  std::printf("io_uring probe: %s\n",
              uring ? "available" : "unavailable (kernel or seccomp)");
  const char* env = std::getenv("GAT_IO_BACKEND");
  std::printf("GAT_IO_BACKEND: %s\n", env != nullptr ? env : "(unset)");

  gat::AsyncBlockIo io;
  std::printf("selected backend: %s\n", io.backend_name());

  // Self-test: write a small pattern file, read it back in awkward
  // unaligned extents through the backend, verify every byte.
  std::string contents(12345, '\0');
  for (size_t i = 0; i < contents.size(); ++i) {
    contents[i] = static_cast<char>((i * 131) ^ (i >> 7));
  }
  char path[] = "/tmp/gat_io_probe_XXXXXX";
  const int wfd = ::mkstemp(path);
  if (wfd < 0 || ::write(wfd, contents.data(), contents.size()) !=
                     static_cast<ssize_t>(contents.size())) {
    std::fprintf(stderr, "self-test: cannot create scratch file\n");
    if (wfd >= 0) ::close(wfd);
    return 1;
  }
  ::close(wfd);
  const int fd = ::open(path, O_RDONLY);
  if (fd < 0) {
    std::fprintf(stderr, "self-test: cannot reopen scratch file\n");
    ::unlink(path);
    return 1;
  }

  const std::vector<std::pair<uint64_t, uint32_t>> extents = {
      {0, 1}, {1, 511}, {4095, 513}, {12000, 345 /* ends at EOF */}};
  std::vector<std::vector<char>> bufs;
  for (const auto& [offset, len] : extents) bufs.emplace_back(len, '\0');
  std::atomic<int> failures{0};
  for (size_t i = 0; i < extents.size(); ++i) {
    io.SubmitRead(fd, extents[i].first, bufs[i].data(), extents[i].second,
                  [&failures, want = extents[i].second](int64_t result) {
                    if (result != static_cast<int64_t>(want)) {
                      failures.fetch_add(1);
                    }
                  });
  }
  io.Drain();
  for (size_t i = 0; i < extents.size(); ++i) {
    if (std::memcmp(bufs[i].data(), contents.data() + extents[i].first,
                    extents[i].second) != 0) {
      failures.fetch_add(1);
    }
  }
  ::close(fd);
  ::unlink(path);

  if (failures.load() != 0) {
    std::printf("self-test: FAILED (%d mismatches)\n", failures.load());
    return 1;
  }
  std::printf("self-test: ok (%llu reads completed via %s)\n",
              static_cast<unsigned long long>(io.reads_completed()),
              io.backend_name());
  return 0;
}
