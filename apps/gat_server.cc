// gat_server: the `GATW` wire protocol served from a real socket.
//
// Builds a synthetic city (deterministic from --seed), stands up the
// live serving stack over it — a LiveIndex (sharded base + in-memory
// delta) searched by a LiveSearcher, behind FrontDoor admission /
// deadlines / priorities and a poll(2) Server on one shared Executor —
// and serves ATSQ/OATSQ batches and check-in ingest frames. With
// --merge-interval-ms > 0 a background thread compacts the delta into a
// new base generation on that cadence (in-memory generations; the same
// executor runs the per-shard builds). Prints "LISTENING <port>" on
// stdout once bound (scripts/wire_smoke.py waits for that line), then
// runs until stdin reaches EOF — so a parent process ends it by closing
// the pipe, with no signal races.
//
// Usage: gat_server [--port N] [--host A.B.C.D] [--trajectories N]
//                   [--seed N] [--threads N] [--shards N]
//                   [--quota-rate R] [--quota-burst B]
//                   [--ingest-rate R] [--ingest-burst B]
//                   [--merge-interval-ms N]

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>

#include "gat/datagen/checkin_generator.h"
#include "gat/engine/executor.h"
#include "gat/engine/query_engine.h"
#include "gat/live/live_index.h"
#include "gat/live/live_searcher.h"
#include "gat/net/server.h"
#include "gat/search/gat_search.h"
#include "gat/serve/front_door.h"

namespace {

uint64_t FlagU64(int argc, char** argv, const char* name, uint64_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) {
      return std::strtoull(argv[i + 1], nullptr, 10);
    }
  }
  return fallback;
}

double FlagF64(int argc, char** argv, const char* name, double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) {
      return std::strtod(argv[i + 1], nullptr);
    }
  }
  return fallback;
}

std::string FlagStr(int argc, char** argv, const char* name,
                    const std::string& fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gat;

  const auto trajectories =
      static_cast<uint32_t>(FlagU64(argc, argv, "--trajectories", 200));
  const uint64_t seed = FlagU64(argc, argv, "--seed", 29);
  const auto threads =
      static_cast<uint32_t>(FlagU64(argc, argv, "--threads", 4));
  const auto shards =
      static_cast<uint32_t>(FlagU64(argc, argv, "--shards", 2));
  const uint64_t merge_interval_ms =
      FlagU64(argc, argv, "--merge-interval-ms", 0);

  std::fprintf(stderr, "building city: %u trajectories, seed %llu, %u shards\n",
               trajectories, static_cast<unsigned long long>(seed), shards);
  Executor executor(threads);
  ShardOptions shard_options;
  shard_options.num_shards = shards;
  shard_options.executor = &executor;
  LiveIndex live(GenerateCity(CityProfile::Testing(trajectories, seed)),
                 GatConfig{}, shard_options);
  const LiveSearcher searcher(live, {}, &executor);
  QueryEngine engine(searcher, EngineOptions{.executor = &executor});

  FrontDoorOptions door_options;
  door_options.default_quota =
      TenantQuota{FlagF64(argc, argv, "--quota-rate", 1000.0),
                  FlagF64(argc, argv, "--quota-burst", 100.0)};
  door_options.default_write_quota =
      TenantQuota{FlagF64(argc, argv, "--ingest-rate", 10000.0),
                  FlagF64(argc, argv, "--ingest-burst", 1000.0)};
  FrontDoor door(engine, door_options);
  door.AttachLiveIndex(&live);

  wire::ServerOptions server_options;
  server_options.host = FlagStr(argc, argv, "--host", "127.0.0.1");
  server_options.port = static_cast<uint16_t>(FlagU64(argc, argv, "--port", 0));
  server_options.executor = &executor;
  wire::Server server(door, server_options);
  if (!server.Start()) {
    std::fprintf(stderr, "FATAL: bind/listen on %s:%u failed\n",
                 server_options.host.c_str(), server_options.port);
    return 1;
  }

  // Background merge: compact the delta into the next generation (same
  // shard count, in-memory) on a fixed cadence. Builds run off the
  // serving path as tasks on the shared executor; a failed merge only
  // means the delta keeps serving, so it is logged, not fatal.
  std::mutex merge_mu;
  std::condition_variable merge_cv;
  bool merge_stop = false;
  std::thread merger;
  if (merge_interval_ms > 0) {
    merger = std::thread([&] {
      std::unique_lock<std::mutex> lock(merge_mu);
      while (!merge_cv.wait_for(lock,
                                std::chrono::milliseconds(merge_interval_ms),
                                [&] { return merge_stop; })) {
        lock.unlock();
        if (live.delta_trajectories() == 0) {
          lock.lock();
          continue;  // nothing to compact; keep the generation
        }
        if (!live.MergeDelta(shards, "", &executor)) {
          std::fprintf(stderr, "merge refused (generation %llu kept)\n",
                       static_cast<unsigned long long>(
                           live.sharded().generation_number()));
        }
        lock.lock();
      }
    });
  }

  std::printf("LISTENING %u\n", server.port());
  std::fflush(stdout);

  // Park until the parent closes our stdin.
  char sink[256];
  while (std::fgets(sink, sizeof(sink), stdin) != nullptr) {
  }

  server.Stop();
  if (merger.joinable()) {
    {
      std::lock_guard<std::mutex> lock(merge_mu);
      merge_stop = true;
    }
    merge_cv.notify_one();
    merger.join();
  }
  const wire::ServerCounters net = server.counters();
  const FrontDoorCounters front = door.counters();
  std::fprintf(stderr,
               "served %llu requests + %llu ingests over %llu sessions "
               "(%llu protocol errors); admitted %llu, shed %llu, "
               "deadline misses %llu; accepted %llu check-ins "
               "(watermark %llu, %llu merges, generation %llu)\n",
               static_cast<unsigned long long>(net.requests_served),
               static_cast<unsigned long long>(net.ingests_served),
               static_cast<unsigned long long>(net.sessions_opened),
               static_cast<unsigned long long>(net.protocol_errors),
               static_cast<unsigned long long>(front.admitted),
               static_cast<unsigned long long>(front.shed),
               static_cast<unsigned long long>(front.deadline_misses),
               static_cast<unsigned long long>(front.checkins_accepted),
               static_cast<unsigned long long>(live.watermark()),
               static_cast<unsigned long long>(live.merges_completed()),
               static_cast<unsigned long long>(
                   live.sharded().generation_number()));
  return 0;
}
