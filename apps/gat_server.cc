// gat_server: the `GATW` wire protocol served from a real socket.
//
// Builds a synthetic city (deterministic from --seed), indexes it,
// and serves ATSQ/OATSQ batches through the full serving stack —
// FrontDoor admission/deadlines/priorities behind a poll(2) Server on
// a shared Executor. Prints "LISTENING <port>" on stdout once bound
// (scripts/wire_smoke.py waits for that line), then runs until stdin
// reaches EOF — so a parent process ends it by closing the pipe, with
// no signal races.
//
// Usage: gat_server [--port N] [--host A.B.C.D] [--trajectories N]
//                   [--seed N] [--threads N] [--k N]
//                   [--quota-rate R] [--quota-burst B]

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "gat/datagen/checkin_generator.h"
#include "gat/engine/executor.h"
#include "gat/engine/query_engine.h"
#include "gat/net/server.h"
#include "gat/search/gat_search.h"
#include "gat/serve/front_door.h"

namespace {

uint64_t FlagU64(int argc, char** argv, const char* name, uint64_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) {
      return std::strtoull(argv[i + 1], nullptr, 10);
    }
  }
  return fallback;
}

double FlagF64(int argc, char** argv, const char* name, double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) {
      return std::strtod(argv[i + 1], nullptr);
    }
  }
  return fallback;
}

std::string FlagStr(int argc, char** argv, const char* name,
                    const std::string& fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gat;

  const auto trajectories =
      static_cast<uint32_t>(FlagU64(argc, argv, "--trajectories", 200));
  const uint64_t seed = FlagU64(argc, argv, "--seed", 29);
  const auto threads =
      static_cast<uint32_t>(FlagU64(argc, argv, "--threads", 4));

  std::fprintf(stderr, "building city: %u trajectories, seed %llu\n",
               trajectories,
               static_cast<unsigned long long>(seed));
  const Dataset dataset = GenerateCity(CityProfile::Testing(trajectories,
                                                            seed));
  const GatIndex index(dataset);
  const GatSearcher searcher(dataset, index);

  Executor executor(threads);
  QueryEngine engine(searcher, EngineOptions{.executor = &executor});

  FrontDoorOptions door_options;
  door_options.default_quota =
      TenantQuota{FlagF64(argc, argv, "--quota-rate", 1000.0),
                  FlagF64(argc, argv, "--quota-burst", 100.0)};
  FrontDoor door(engine, door_options);

  wire::ServerOptions server_options;
  server_options.host = FlagStr(argc, argv, "--host", "127.0.0.1");
  server_options.port = static_cast<uint16_t>(FlagU64(argc, argv, "--port", 0));
  server_options.executor = &executor;
  wire::Server server(door, server_options);
  if (!server.Start()) {
    std::fprintf(stderr, "FATAL: bind/listen on %s:%u failed\n",
                 server_options.host.c_str(), server_options.port);
    return 1;
  }
  std::printf("LISTENING %u\n", server.port());
  std::fflush(stdout);

  // Park until the parent closes our stdin.
  char sink[256];
  while (std::fgets(sink, sizeof(sink), stdin) != nullptr) {
  }

  server.Stop();
  const wire::ServerCounters net = server.counters();
  const FrontDoorCounters front = door.counters();
  std::fprintf(stderr,
               "served %llu requests over %llu sessions "
               "(%llu protocol errors); admitted %llu, shed %llu, "
               "deadline misses %llu\n",
               static_cast<unsigned long long>(net.requests_served),
               static_cast<unsigned long long>(net.sessions_opened),
               static_cast<unsigned long long>(net.protocol_errors),
               static_cast<unsigned long long>(front.admitted),
               static_cast<unsigned long long>(front.shed),
               static_cast<unsigned long long>(front.deadline_misses));
  return 0;
}
