// Sharded serving on ONE shared executor: the production-shaped path.
//
// A serving process has three kinds of work — index builds / snapshot
// loads at startup (or during a live rebuild), per-query shard fan-out,
// and concurrent query batches. All three run as tasks on a single
// Executor here, so the process owns exactly one thread set no matter
// what it is doing.
//
// First run (cold): the city dataset is partitioned round-robin into 4
// shards, a GAT index is built per shard as executor tasks, and every
// shard is snapshotted into ./gat_snapshots/. Second run (warm): the
// indexes are restored from the snapshots instead of rebuilt — with the
// structural validation of the big sections fanned out on the same
// pool. Either way, each query fans out across the shards as sibling
// tasks and the merged top-k is bit-identical to a single monolithic
// index.
//
// Build & run:   ./build/examples/sharded_serving   (run it twice!)

#include <cstdio>
#include <thread>
#include <vector>

#include "gat/datagen/checkin_generator.h"
#include "gat/datagen/query_generator.h"
#include "gat/engine/executor.h"
#include "gat/engine/query_engine.h"
#include "gat/shard/sharded_index.h"
#include "gat/shard/sharded_searcher.h"

int main() {
  using namespace gat;

  // The one pool everything below shares.
  Executor executor(4);

  // A small synthetic Los Angeles (see src/gat/datagen). In a real
  // deployment the dataset would come from LoadBinary/LoadText.
  const Dataset city = GenerateCity(CityProfile::LosAngeles(/*scale=*/0.02));
  std::printf("dataset: %zu trajectories, %u distinct activities\n",
              city.size(), city.num_distinct_activities());

  ShardOptions options;
  options.num_shards = 4;
  options.snapshot_dir = "gat_snapshots";  // self-priming cache
  options.executor = &executor;            // pool-shared build/load
  const ShardedIndex sharded(city, GatConfig{}, options);
  std::printf(
      "startup: %u/%u shards restored from '%s' (%s) in %.3f s\n",
      sharded.shards_loaded_from_snapshot(), sharded.num_shards(),
      options.snapshot_dir.c_str(),
      sharded.shards_loaded_from_snapshot() == sharded.num_shards()
          ? "warm start"
          : "cold start — run again for a warm one",
      sharded.build_seconds());
  const auto footprint = sharded.memory_breakdown();
  std::printf("footprint: %s\n", footprint.ToString().c_str());

  // Serve: the searcher fans each query across the shards on the shared
  // pool, and the engine runs batches on it too — ShardedSearcher is a
  // regular Searcher, so the two compose (nested task submission).
  const ShardedSearcher searcher(sharded, {}, &executor);
  const QueryEngine engine(searcher, EngineOptions{.executor = &executor});

  QueryWorkloadParams wp;
  wp.num_queries = 8;
  wp.seed = 2013;
  QueryGenerator qgen(city, wp);
  const auto queries = qgen.Workload();

  // Two concurrent callers — batches pipeline on the executor instead
  // of serializing behind a lock; each batch's results stay in query
  // order and bit-identical to a solo run.
  BatchResult batch, shadow;
  std::thread second_caller(
      [&] { shadow = engine.Run(queries, /*k=*/3, QueryKind::kOatsq); });
  batch = engine.Run(queries, /*k=*/3, QueryKind::kAtsq);
  second_caller.join();

  std::printf("\nbatch of %zu ATSQ queries (plus a concurrent OATSQ batch) "
              "on %u shared workers: %.1f ms\n",
              queries.size(), batch.threads_used, batch.wall_ms);
  for (size_t i = 0; i < batch.results.size(); ++i) {
    std::printf("  q%zu top-3:", i);
    for (const auto& r : batch.results[i]) {
      std::printf("  Tr%u (%.3f km)", r.trajectory, r.distance);
    }
    std::printf("\n");
  }
  std::printf("\ncounters: %s\n", batch.totals.ToString().c_str());
  std::printf("concurrent OATSQ batch answered %zu queries in the gaps\n",
              shadow.results.size());
  return 0;
}
