// Sharded serving with snapshot warm starts: the production-shaped path.
//
// First run (cold): the city dataset is partitioned round-robin into 4
// shards, a GAT index is built per shard in parallel, and every shard is
// snapshotted into ./gat_snapshots/. Second run (warm): the indexes are
// restored from the snapshots instead of being rebuilt — the startup
// path a serving process takes after a restart. Either way, queries fan
// out across the shards and the merged top-k is bit-identical to a
// single monolithic index.
//
// Build & run:   ./build/examples/sharded_serving   (run it twice!)

#include <cstdio>

#include "gat/datagen/checkin_generator.h"
#include "gat/datagen/query_generator.h"
#include "gat/engine/query_engine.h"
#include "gat/shard/sharded_index.h"
#include "gat/shard/sharded_searcher.h"

int main() {
  using namespace gat;

  // A small synthetic Los Angeles (see src/gat/datagen). In a real
  // deployment the dataset would come from LoadBinary/LoadText.
  const Dataset city = GenerateCity(CityProfile::LosAngeles(/*scale=*/0.02));
  std::printf("dataset: %zu trajectories, %u distinct activities\n",
              city.size(), city.num_distinct_activities());

  ShardOptions options;
  options.num_shards = 4;
  options.snapshot_dir = "gat_snapshots";  // self-priming cache
  const ShardedIndex sharded(city, GatConfig{}, options);
  std::printf(
      "startup: %u/%u shards restored from '%s' (%s) in %.3f s\n",
      sharded.shards_loaded_from_snapshot(), sharded.num_shards(),
      options.snapshot_dir.c_str(),
      sharded.shards_loaded_from_snapshot() == sharded.num_shards()
          ? "warm start"
          : "cold start — run again for a warm one",
      sharded.build_seconds());
  const auto footprint = sharded.memory_breakdown();
  std::printf("footprint: %s\n", footprint.ToString().c_str());

  // Serve a batch: ShardedSearcher is a regular Searcher, so it plugs
  // straight into the concurrent QueryEngine.
  const ShardedSearcher searcher(sharded);
  const QueryEngine engine(searcher, EngineOptions{.threads = 4});

  QueryWorkloadParams wp;
  wp.num_queries = 8;
  wp.seed = 2013;
  QueryGenerator qgen(city, wp);
  const auto queries = qgen.Workload();
  const BatchResult batch = engine.Run(queries, /*k=*/3, QueryKind::kAtsq);

  std::printf("\nbatch of %zu ATSQ queries on %u engine threads: %.1f ms\n",
              queries.size(), batch.threads_used, batch.wall_ms);
  for (size_t i = 0; i < batch.results.size(); ++i) {
    std::printf("  q%zu top-3:", i);
    for (const auto& r : batch.results[i]) {
      std::printf("  Tr%u (%.3f km)", r.trajectory, r.distance);
    }
    std::printf("\n");
  }
  std::printf("\ncounters: %s\n", batch.totals.ToString().c_str());
  return 0;
}
