// Remote serving over the GATW wire protocol: the full network path in
// one process.
//
// A poll(2)-based Server wraps the serving front door behind a real
// loopback socket; a blocking Client connects, speaks length-prefixed
// CRC-checked binary frames, and gets back exactly what an in-process
// FrontDoor::Serve of the same request produces — results, per-query
// statuses and the deterministic SearchStats counters, bit for bit
// (asserted below). The demo then exercises the protocol's error
// surface: a request that blows its deadline, a tenant burst that gets
// shed with a machine-readable reason (and provably zero engine work),
// and a deliberately corrupted frame that the server answers with a
// clean connection close — never a crash.
//
// Build & run:   ./build/examples/remote_serving

#include <cstdio>
#include <cstdlib>

#include "gat/datagen/checkin_generator.h"
#include "gat/datagen/query_generator.h"
#include "gat/engine/executor.h"
#include "gat/engine/query_engine.h"
#include "gat/net/client.h"
#include "gat/net/server.h"
#include "gat/search/gat_search.h"
#include "gat/serve/front_door.h"

int main() {
  using namespace gat;

  const Dataset city = GenerateCity(CityProfile::Testing(
      /*trajectories=*/300, /*seed=*/17));
  const GatIndex index(city);
  const GatSearcher searcher(city, index);
  Executor executor(4);
  const QueryEngine engine(searcher, EngineOptions{.executor = &executor});

  FrontDoorOptions door_options;
  door_options.default_quota = TenantQuota{/*tokens_per_sec=*/0.0,
                                           /*burst=*/4.0};
  FrontDoor door(engine, door_options);

  wire::ServerOptions server_options;
  server_options.executor = &executor;
  wire::Server server(door, server_options);
  if (!server.Start()) {
    std::printf("bind failed\n");
    return 1;
  }
  std::printf("serving on 127.0.0.1:%u\n", server.port());

  QueryWorkloadParams wp;
  wp.num_queries = 6;
  wp.seed = 2013;
  QueryGenerator qgen(city, wp);

  ServeRequest request;
  request.tenant = 1;
  request.queries = qgen.Workload();
  request.k = 3;

  // --- the happy path, checked against the in-process answer --------
  wire::Client client;
  if (!client.Connect("127.0.0.1", server.port())) {
    std::printf("connect failed\n");
    return 1;
  }
  ServeResult remote;
  if (!client.Call(request, &remote)) {
    std::printf("call failed\n");
    return 1;
  }
  const ServeResult local = door.Serve(request);  // burns a 2nd token
  const bool identical = remote.status == local.status &&
                         remote.batch.results == local.batch.results;
  std::printf("batch of %zu queries over the socket: %s\n",
              request.queries.size(),
              identical ? "bit-identical to in-process serving"
                        : "DIVERGED (bug!)");
  for (size_t i = 0; i < remote.batch.results.size(); ++i) {
    std::printf("  q%zu top-3:", i);
    for (const auto& r : remote.batch.results[i]) {
      std::printf("  Tr%u (%.3f km)", r.trajectory, r.distance);
    }
    std::printf("\n");
  }
  if (!identical) return 1;

  // --- deadline exceeded: expired before the engine saw it ----------
  ServeRequest late = request;
  late.deadline_micros = 1;  // the steady clock is far past 1 us
  ServeResult expired;
  if (!client.Call(late, &expired) ||
      expired.status != ServeStatus::kDeadlineExceeded) {
    std::printf("deadline path failed\n");
    return 1;
  }
  std::printf("expired request answered kDeadlineExceeded, no results\n");

  // --- overload: the burst runs dry, sheds carry the reason ---------
  // Tokens burnt so far: the happy-path call, the in-process shadow,
  // and the expired request (admission charges before the deadline
  // gate). One remains of burst 4 — burn it with another expired call
  // (zero tasks by contract), then every further call must shed.
  if (!client.Call(late, &expired)) return 1;
  const uint64_t tasks_before = executor.tasks_submitted();
  ServeResult last;
  int sheds = 0;
  for (int i = 0; i < 4; ++i) {
    if (!client.Call(request, &last)) return 1;
    if (last.status == ServeStatus::kShed) ++sheds;
  }
  const uint64_t shed_task_delta = executor.tasks_submitted() - tasks_before;
  if (sheds != 4 || last.shed_reason != ShedReason::kTenantRateLimit ||
      last.shed_tenant != 1 || shed_task_delta != 0) {
    std::printf("shed surface wrong\n");
    return 1;
  }
  std::printf("burst exhausted: %d/4 shed (reason=kTenantRateLimit, "
              "tenant=%u), executor task delta across the sheds: %llu\n",
              sheds, last.shed_tenant,
              static_cast<unsigned long long>(shed_task_delta));

  // --- a corrupted frame closes the session, never crashes ----------
  std::string frame = wire::EncodeRequestFrame(request);
  frame[frame.size() / 2] ^= 0x01;  // flip one payload bit → CRC reject
  wire::Client vandal;
  if (!vandal.Connect("127.0.0.1", server.port()) ||
      !vandal.SendRaw(frame) || !vandal.AwaitCleanClose()) {
    std::printf("corruption path failed\n");
    return 1;
  }
  std::printf("corrupt frame: session closed cleanly, server alive\n");

  // ...and the server really is still alive:
  ServeResult again;
  wire::Client after;
  if (!after.Connect("127.0.0.1", server.port()) ||
      !after.Call(late, &again)) {
    std::printf("post-corruption call failed\n");
    return 1;
  }
  std::printf("next connection served normally\n");

  server.Stop();
  return 0;
}
