// Index tuning: how the GAT construction knobs trade memory for query
// latency — grid depth d (Figure 8), TAS interval count M, the candidate
// batch size lambda, and the paper's memory-budget formula for the number
// of HICL levels kept in RAM.
//
// Build & run:   ./build/examples/index_tuning

#include <cstdio>

#include "gat/datagen/checkin_generator.h"
#include "gat/datagen/query_generator.h"
#include "gat/index/gat_index.h"
#include "gat/search/gat_search.h"
#include "gat/util/stopwatch.h"

using namespace gat;

namespace {

double AvgQueryMs(const GatSearcher& searcher,
                  const std::vector<Query>& queries) {
  Stopwatch timer;
  for (const Query& q : queries) searcher.Atsq(q, 9);
  return timer.ElapsedMillis() / static_cast<double>(queries.size());
}

}  // namespace

int main() {
  const Dataset city = GenerateCity(CityProfile::LosAngeles(0.05));
  QueryWorkloadParams wp;
  wp.num_queries = 20;
  wp.seed = 7;
  QueryGenerator qgen(city, wp);
  const auto queries = qgen.Workload();

  std::printf("Grid depth sweep (Figure 8):\n");
  std::printf("%-10s%14s%20s\n", "grid", "avg ms", "main memory (KB)");
  for (int depth : {4, 5, 6, 7, 8}) {
    GatConfig config;
    config.depth = depth;
    config.memory_levels = std::min(depth, 6);
    const GatIndex index(city, config);
    const GatSearcher searcher(city, index);
    std::printf("%dx%-7d%14.3f%20zu\n", 1 << depth, 1 << depth,
                AvgQueryMs(searcher, queries),
                index.memory_breakdown().MainMemoryTotal() / 1024);
  }

  std::printf("\nTAS interval sweep (sketch memory = 8*M*N bytes):\n");
  std::printf("%-6s%16s%18s\n", "M", "TAS bytes", "sketch prune rate");
  for (int m : {1, 2, 4, 8}) {
    GatConfig config;
    config.tas_intervals = m;
    const GatIndex index(city, config);
    const GatSearcher searcher(city, index);
    SearchStats total;
    for (const Query& q : queries) {
      SearchStats st;
      searcher.Atsq(q, 9, &st);
      st.elapsed_ms = 0;
      total += st;
    }
    const double rate =
        total.candidates_retrieved == 0
            ? 0.0
            : 100.0 * static_cast<double>(total.tas_pruned) /
                  static_cast<double>(total.candidates_retrieved);
    std::printf("%-6d%16zu%17.1f%%\n", m, index.tas().MemoryBytes(), rate);
  }

  std::printf("\nHICL memory-budget formula (Section IV):\n");
  const uint32_t vocab = city.num_distinct_activities();
  for (size_t budget_mb : {1, 4, 16, 64}) {
    const int h =
        Hicl::MemoryLevelsForBudget(budget_mb * 1024 * 1024, vocab, 8);
    std::printf("  budget %3zu MB, C=%u activities -> keep levels 1..%d in "
                "RAM\n",
                budget_mb, vocab, h);
  }
  return 0;
}
