// Quickstart: the paper's running example (Figure 1) on the public API.
//
// A tourist plans to visit three places and perform activities
// {art,brunch}, {coffee,dancing}, {escape-room}. Two candidate reference
// trajectories exist: Tr1 is closer in pure geometry but does not offer
// the wanted activities at the right places; Tr2 matches them. ATSQ ranks
// Tr2 first — the motivating observation of the paper's introduction.
//
// Build & run:   ./build/examples/quickstart

#include <cstdio>
#include <string>
#include <vector>

#include "gat/core/match.h"
#include "gat/index/gat_index.h"
#include "gat/model/dataset.h"
#include "gat/search/gat_search.h"

namespace {

using namespace gat;

Trajectory MakeTrajectory(
    Dataset& dataset,
    std::vector<std::pair<Point, std::vector<std::string>>> pts) {
  std::vector<TrajectoryPoint> points;
  for (auto& [loc, names] : pts) {
    TrajectoryPoint tp;
    tp.location = loc;
    for (const auto& name : names) {
      tp.activities.push_back(dataset.mutable_vocabulary().InternActivity(name));
    }
    points.push_back(std::move(tp));
  }
  return Trajectory(std::move(points));
}

}  // namespace

int main() {
  // A small planar city (km coordinates). Tr1 hugs the query locations but
  // its nearby points lack the demanded activities; Tr2 is slightly
  // farther yet covers them.
  Dataset dataset;
  const TrajectoryId tr2_id = 1;
  dataset.Add(MakeTrajectory(dataset, {
      {{1.0, 1.2}, {"dancing"}},
      {{2.0, 1.8}, {"art", "coffee"}},
      {{3.1, 2.4}, {"brunch"}},
      {{4.2, 3.0}, {"coffee"}},
      {{5.0, 3.9}, {"dancing", "escape-room"}},
  }));
  dataset.Add(MakeTrajectory(dataset, {
      {{1.4, 2.6}, {"art"}},
      {{2.2, 3.2}, {"brunch", "coffee"}},
      {{3.4, 3.6}, {"coffee", "dancing"}},
      {{4.6, 4.4}, {"escape-room"}},
      {{5.4, 5.0}, {"football"}},
  }));
  dataset.Finalize();  // re-ranks activity IDs by frequency

  // Demanded activities are looked up by name *after* finalization.
  const auto& vocab = dataset.vocabulary();
  auto act = [&](const char* name) { return vocab.Lookup(name); };

  Query query({
      QueryPoint{{2.0, 2.0}, {act("art"), act("brunch")}},
      QueryPoint{{3.5, 3.0}, {act("coffee"), act("dancing")}},
      QueryPoint{{4.8, 4.2}, {act("escape-room")}},
  });

  const GatIndex index(dataset, GatConfig{.depth = 4, .memory_levels = 3});
  const GatSearcher searcher(dataset, index);

  std::printf("Query stops and demands:\n");
  for (const auto& qp : query.points()) {
    std::printf("  (%.1f, %.1f) km:", qp.location.x, qp.location.y);
    for (ActivityId id : qp.activities) {
      std::printf(" %s", vocab.Name(id).c_str());
    }
    std::printf("\n");
  }

  std::printf("\n-- ATSQ (order-free top-k by minimum match distance) --\n");
  for (const auto& r : searcher.Atsq(query, 2)) {
    const auto mm =
        ComputeMinimumMatch(dataset.trajectory(r.trajectory), query);
    std::printf("Tr%u  Dmm=%.3f km  minimum match:", r.trajectory + 1,
                r.distance);
    for (size_t qi = 0; qi < mm.witnesses.size(); ++qi) {
      std::printf(" q%zu->{", qi + 1);
      for (size_t i = 0; i < mm.witnesses[qi].size(); ++i) {
        std::printf("%sp%u", i ? "," : "", mm.witnesses[qi][i] + 1);
      }
      std::printf("}");
    }
    std::printf("\n");
  }

  std::printf("\n-- OATSQ (order-sensitive) --\n");
  for (const auto& r : searcher.Oatsq(query, 2)) {
    std::printf("Tr%u  Dmom=%.3f km\n", r.trajectory + 1, r.distance);
  }

  std::printf(
      "\nDespite Tr1 being geometrically closer, Tr%u wins: it offers the\n"
      "demanded activities near every stop (the paper's Figure-1 point).\n",
      tr2_id + 1);
  return 0;
}
