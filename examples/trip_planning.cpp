// Trip planning with order-sensitive search (OATSQ).
//
// Scenario from the paper's introduction: a visitor wants a day plan —
// breakfast downtown, then a museum, then dinner near the waterfront, in
// that order. OATSQ retrieves the trajectories of locals whose activity
// *sequence* matches, which an order-free ATSQ would not guarantee.
//
// Build & run:   ./build/examples/trip_planning

#include <cstdio>

#include "gat/datagen/checkin_generator.h"
#include "gat/datagen/query_generator.h"
#include "gat/index/gat_index.h"
#include "gat/model/dataset_stats.h"
#include "gat/search/gat_search.h"

using namespace gat;

int main() {
  // A synthetic city with the New-York statistical profile at 5% scale.
  const Dataset city = GenerateCity(CityProfile::NewYork(0.05));
  const auto stats = DatasetStats::Collect(city);
  std::printf("City: %llu trajectories, %llu check-ins, %llu activities\n",
              static_cast<unsigned long long>(stats.num_trajectories),
              static_cast<unsigned long long>(stats.num_points),
              static_cast<unsigned long long>(stats.num_activity_assignments));

  const GatIndex index(city);
  const GatSearcher searcher(city, index);
  std::printf("GAT index built in %.2f s (%s)\n\n", index.build_seconds(),
              index.memory_breakdown().ToString().c_str());

  // Sample a realistic 3-stop itinerary from the city itself (the query
  // generator implements the paper's workload recipe).
  QueryWorkloadParams wp;
  wp.num_query_points = 3;
  wp.activities_per_point = 2;
  wp.diameter_km = 8.0;
  wp.seed = 99;
  QueryGenerator qgen(city, wp);
  const Query itinerary = qgen.Next();

  std::printf("Planned stops (in order):\n");
  for (size_t i = 0; i < itinerary.size(); ++i) {
    std::printf("  stop %zu at (%.2f, %.2f) km, demanded activity IDs:",
                i + 1, itinerary[i].location.x, itinerary[i].location.y);
    for (ActivityId a : itinerary[i].activities) std::printf(" #%u", a);
    std::printf("\n");
  }

  SearchStats atsq_stats;
  SearchStats oatsq_stats;
  const auto unordered = searcher.Atsq(itinerary, 5, &atsq_stats);
  const auto ordered = searcher.Oatsq(itinerary, 5, &oatsq_stats);

  std::printf("\nTop-5 order-free references (ATSQ):\n");
  for (const auto& r : unordered) {
    std::printf("  user %-6u Dmm  = %.3f km\n", r.trajectory, r.distance);
  }
  std::printf("Top-5 order-respecting references (OATSQ):\n");
  for (const auto& r : ordered) {
    std::printf("  user %-6u Dmom = %.3f km\n", r.trajectory, r.distance);
  }

  std::printf("\nSearch work (ATSQ):  %s\n", atsq_stats.ToString().c_str());
  std::printf("Search work (OATSQ): %s\n", oatsq_stats.ToString().c_str());
  std::printf(
      "\nNote how every OATSQ distance is >= the ATSQ distance of the same\n"
      "rank (Lemma 3): respecting the stop order can only cost more.\n");
  return 0;
}
