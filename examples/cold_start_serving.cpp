// Cold-start serving from mmap-ed snapshots: the out-of-core path.
//
// A restarted serving process should answer its first query before it
// has "loaded the index" in any traditional sense. Here the sharded
// snapshot directory is mmap-ed instead of deserialized: the
// disk-resident components (all APL postings, the deep HICL levels)
// stay in the files as zero-copy views and are read page-granularly
// through one shared BlockCache, while only the small RAM tier (ITL,
// TAS, high HICL levels) is materialized. A PrefetchScheduler warms
// each batch's predicted posting blocks ahead of refinement on the same
// executor the queries run on.
//
// First run (cold): shards are built, snapshotted, and immediately
// re-served from their mappings. Second run (warm): the mappings load
// directly — run it twice and compare the startup line.
//
// The demo then exercises the live-operations path: serve a batch,
// hot-swap every shard to an equivalent incoming snapshot with
// ShardedIndex::ReloadShard (no drain — in-flight readers pin the old
// revision, whose cache blocks are purged once it retires), and serve
// the same batch again to show the answers are bit-identical across
// the swap.
//
// Build & run:   ./build/examples/cold_start_serving   (run it twice!)

#include <cstdio>
#include <filesystem>

#include "gat/datagen/checkin_generator.h"
#include "gat/datagen/query_generator.h"
#include "gat/engine/executor.h"
#include "gat/engine/query_engine.h"
#include "gat/shard/sharded_index.h"
#include "gat/shard/sharded_searcher.h"
#include "gat/storage/prefetch.h"
#include "gat/util/stopwatch.h"

int main() {
  using namespace gat;

  Executor executor(4);
  const Dataset city = GenerateCity(CityProfile::LosAngeles(/*scale=*/0.02));
  std::printf("dataset: %zu trajectories, %u distinct activities\n",
              city.size(), city.num_distinct_activities());

  Stopwatch startup;
  ShardOptions options;
  options.num_shards = 4;
  options.snapshot_dir = "gat_snapshots_mmap";
  options.executor = &executor;
  options.mmap_disk_tier = true;                     // the storage subsystem
  options.cache_config.capacity_bytes = 8ull << 20;  // shared across shards
  options.cache_config.block_bytes = 4096;
  ShardedIndex sharded(city, GatConfig{}, options);  // mutable: hot-swapped
  const double startup_ms = startup.ElapsedMillis();

  const auto footprint = sharded.memory_breakdown();
  std::printf(
      "startup: %u/%u shards mmap-served (%s) in %.2f ms\n"
      "resident: %zu B main-memory tier; %zu B disk tier stays in the "
      "mappings\n",
      sharded.shards_mmap_served(), sharded.num_shards(),
      sharded.shards_loaded_from_snapshot() == sharded.num_shards()
          ? "warm start"
          : "cold start — run again for a warm one",
      startup_ms, footprint.MainMemoryTotal(), footprint.DiskTotal());

  // Serving: shard fan-out + batch pipelining + prefetch on one pool.
  // The pin-aware scheduler overload: it re-pins each shard's current
  // revision per query, so it stays valid across the hot-swap below
  // (the fixed-pointer overload would dangle once a shard reloads).
  const ShardedSearcher searcher(sharded, {}, &executor);
  const PrefetchScheduler prefetcher(sharded);
  const QueryEngine engine(
      searcher,
      EngineOptions{.executor = &executor, .prefetcher = &prefetcher});

  QueryWorkloadParams wp;
  wp.num_queries = 8;
  wp.seed = 2013;
  QueryGenerator qgen(city, wp);
  const auto queries = qgen.Workload();

  // Time-to-first-query: startup plus one answered query.
  Stopwatch first_query;
  const std::vector<Query> first(queries.begin(), queries.begin() + 1);
  (void)engine.Run(first, /*k=*/3, QueryKind::kAtsq);
  std::printf("time-to-first-query: %.2f ms startup + %.2f ms query\n",
              startup_ms, first_query.ElapsedMillis());

  const BatchResult batch = engine.Run(queries, /*k=*/3, QueryKind::kAtsq);
  std::printf("\nbatch of %zu queries on %u shared workers: %.1f ms\n",
              queries.size(), batch.threads_used, batch.wall_ms);
  for (size_t i = 0; i < batch.results.size(); ++i) {
    std::printf("  q%zu top-3:", i);
    for (const auto& r : batch.results[i]) {
      std::printf("  Tr%u (%.3f km)", r.trajectory, r.distance);
    }
    std::printf("\n");
  }

  std::printf("\ncounters: %s\n", batch.totals.ToString().c_str());
  if (batch.storage.present) {
    std::printf(
        "block cache: %.1f%% hit rate (%llu hits / %llu misses), "
        "%llu blocks prefetched, %llu evictions, %u B blocks\n",
        100.0 * batch.storage.HitRate(),
        static_cast<unsigned long long>(batch.storage.hits),
        static_cast<unsigned long long>(batch.storage.misses),
        static_cast<unsigned long long>(batch.storage.prefetched),
        static_cast<unsigned long long>(batch.storage.evictions),
        batch.storage.block_bytes);
  }
  const auto warmed = prefetcher.stats();
  std::printf("prefetch: %llu queries swept, %llu APL rows warmed\n",
              static_cast<unsigned long long>(warmed.queries),
              static_cast<unsigned long long>(warmed.rows_warmed));

  // Live reload: stage an equivalent "incoming" generation of every
  // shard snapshot and hot-swap it in while the process keeps serving.
  // A real deployment points this at a freshly produced snapshot; the
  // mechanics — validate off the serving path, atomic swap, drain-then-
  // invalidate — are identical.
  std::printf("\n--- hot-swap: serve -> reload every shard -> serve ---\n");
  const auto cache_before = sharded.block_cache()->Snapshot();
  Stopwatch reload_timer;
  for (uint32_t shard = 0; shard < sharded.num_shards(); ++shard) {
    const std::string current = ShardedIndex::SnapshotPath(
        options.snapshot_dir, shard, sharded.num_shards());
    const std::string incoming =
        options.snapshot_dir + "/incoming-" + std::to_string(shard) + ".gats";
    std::error_code ec;
    std::filesystem::copy_file(
        current, incoming, std::filesystem::copy_options::overwrite_existing,
        ec);
    if (ec || !sharded.ReloadShard(shard, incoming, &executor)) {
      std::printf("shard %u: reload failed — old revision keeps serving\n",
                  shard);
    }
  }
  const auto cache_after = sharded.block_cache()->Snapshot();
  std::printf(
      "reloaded %llu/%u shards in %.2f ms (epochs now at %llu); "
      "%llu cached blocks of the retired mappings invalidated\n",
      static_cast<unsigned long long>(sharded.reloads_completed()),
      sharded.num_shards(), reload_timer.ElapsedMillis(),
      static_cast<unsigned long long>(sharded.shard_epoch(0)),
      static_cast<unsigned long long>(cache_after.invalidated -
                                      cache_before.invalidated));

  const BatchResult after = engine.Run(queries, /*k=*/3, QueryKind::kAtsq);
  bool identical = after.results.size() == batch.results.size();
  for (size_t i = 0; identical && i < after.results.size(); ++i) {
    identical = after.results[i] == batch.results[i];
  }
  std::printf("batch re-run across the swap: results %s\n",
              identical ? "bit-identical (equivalent snapshot, as promised)"
                        : "DIVERGED — this is a bug");
  return identical ? 0 : 1;
}
