// Place recommendation: find users with similar activity patterns around
// the places a user frequents, comparing the GAT index against the three
// baseline search strategies of the paper (they must return identical
// distances — only the work they do differs).
//
// Build & run:   ./build/examples/place_recommendation

#include <cstdio>
#include <vector>

#include "gat/baselines/il_search.h"
#include "gat/baselines/irt_search.h"
#include "gat/baselines/rt_search.h"
#include "gat/datagen/checkin_generator.h"
#include "gat/datagen/query_generator.h"
#include "gat/index/gat_index.h"
#include "gat/search/gat_search.h"
#include "gat/util/stopwatch.h"

using namespace gat;

int main() {
  const Dataset city = GenerateCity(CityProfile::LosAngeles(0.05));
  std::printf("City: %zu trajectories\n", city.size());

  const GatIndex index(city);
  const GatSearcher gat(city, index);
  const IlSearcher il(city);
  const RtSearcher rt(city);
  const IrtSearcher irt(city);
  const std::vector<const Searcher*> searchers = {&gat, &il, &rt, &irt};

  QueryWorkloadParams wp;
  wp.num_queries = 10;
  wp.seed = 2013;
  QueryGenerator qgen(city, wp);
  const auto queries = qgen.Workload();

  std::printf("\n%-6s%14s%16s%14s%12s\n", "method", "avg ms/query",
              "candidates", "dist comps", "disk reads");
  ResultList reference;
  for (const Searcher* s : searchers) {
    SearchStats total;
    double elapsed = 0.0;
    ResultList last;
    for (const Query& q : queries) {
      SearchStats st;
      Stopwatch timer;
      last = s->Search(q, 9, QueryKind::kAtsq, &st);
      elapsed += timer.ElapsedMillis();
      st.elapsed_ms = 0;
      total += st;
    }
    if (s == &gat) {
      reference = last;
    } else if (!SameDistances(last, reference, 1e-7)) {
      std::printf("!! %s disagrees with GAT on the last query\n",
                  s->name().c_str());
    }
    std::printf("%-6s%14.3f%16llu%14llu%12llu\n", s->name().c_str(),
                elapsed / queries.size(),
                static_cast<unsigned long long>(total.candidates_retrieved),
                static_cast<unsigned long long>(total.distance_computations),
                static_cast<unsigned long long>(total.disk_reads));
  }

  std::printf(
      "\nAll four methods return the same top-k distances; they differ in\n"
      "how many candidates they touch — the entire subject of the paper's\n"
      "evaluation (Section VII).\n");
  return 0;
}
