// Place recommendation: find users with similar activity patterns around
// the places a user frequents, comparing the GAT index against the three
// baseline search strategies of the paper (they must return identical
// distances — only the work they do differs).
//
// Each method's workload runs through the concurrent QueryEngine
// (gat/engine): batches fan out over a work-stealing thread pool and the
// per-thread stats merge into one SearchStats — same results as a serial
// loop, a fraction of the wall-clock.
//
// Build & run:   ./build/examples/place_recommendation [threads]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "gat/baselines/il_search.h"
#include "gat/baselines/irt_search.h"
#include "gat/baselines/rt_search.h"
#include "gat/datagen/checkin_generator.h"
#include "gat/datagen/query_generator.h"
#include "gat/engine/query_engine.h"
#include "gat/index/gat_index.h"
#include "gat/search/gat_search.h"

using namespace gat;

int main(int argc, char** argv) {
  const int requested = argc > 1 ? std::atoi(argv[1]) : 4;
  if (requested < 1) {
    std::fprintf(stderr, "usage: %s [threads>=1]\n", argv[0]);
    return 2;
  }
  const uint32_t threads = static_cast<uint32_t>(requested);
  const Dataset city = GenerateCity(CityProfile::LosAngeles(0.05));
  std::printf("City: %zu trajectories; %u engine threads\n", city.size(),
              threads);

  const GatIndex index(city);
  const GatSearcher gat(city, index);
  const IlSearcher il(city);
  const RtSearcher rt(city);
  const IrtSearcher irt(city);
  const std::vector<const Searcher*> searchers = {&gat, &il, &rt, &irt};

  QueryWorkloadParams wp;
  wp.num_queries = 10;
  wp.seed = 2013;
  QueryGenerator qgen(city, wp);
  const auto queries = qgen.Workload();

  std::printf("\n%-6s%14s%16s%14s%12s\n", "method", "avg ms/query",
              "candidates", "dist comps", "disk reads");
  std::vector<ResultList> reference;
  for (const Searcher* s : searchers) {
    QueryEngine engine(*s, EngineOptions{.threads = threads});
    const BatchResult batch = engine.Run(queries, 9, QueryKind::kAtsq);
    if (s == &gat) {
      reference = batch.results;
    } else {
      for (size_t i = 0; i < queries.size(); ++i) {
        if (!SameDistances(batch.results[i], reference[i], 1e-7)) {
          std::printf("!! %s disagrees with GAT on query %zu\n",
                      s->name().c_str(), i);
        }
      }
    }
    std::printf(
        "%-6s%14.3f%16llu%14llu%12llu\n", s->name().c_str(),
        batch.wall_ms / queries.size(),
        static_cast<unsigned long long>(batch.totals.candidates_retrieved),
        static_cast<unsigned long long>(batch.totals.distance_computations),
        static_cast<unsigned long long>(batch.totals.disk_reads));
  }

  std::printf(
      "\nAll four methods return the same top-k distances; they differ in\n"
      "how many candidates they touch — the entire subject of the paper's\n"
      "evaluation (Section VII).\n");
  return 0;
}
