// Tests for the bench measurement protocol (bench/harness.h): flag
// parsing, the warmup/target-RSD repeat loop, and the BENCH_*.json
// payload shape documented in docs/BENCH_PROTOCOL.md.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/harness.h"

namespace gat::bench {
namespace {

BenchProtocol Parse(std::vector<const char*> args) {
  args.insert(args.begin(), "bench_test");
  return BenchProtocol::FromArgs(static_cast<int>(args.size()),
                                 const_cast<char**>(args.data()));
}

TEST(BenchProtocol, Defaults) {
  const BenchProtocol p = Parse({});
  EXPECT_EQ(p.threads, 1u);
  EXPECT_EQ(p.warmup, 1u);
  EXPECT_DOUBLE_EQ(p.target_rsd_pct, 5.0);
  EXPECT_EQ(p.max_repeat, 5u);
  EXPECT_TRUE(p.json_path.empty());
}

TEST(BenchProtocol, ParsesAllFlags) {
  const BenchProtocol p = Parse({"--threads", "8", "--warmup", "2",
                                 "--target-rsd", "2.5", "--max-repeat", "9",
                                 "--json", "/tmp/out.json"});
  EXPECT_EQ(p.threads, 8u);
  EXPECT_EQ(p.warmup, 2u);
  EXPECT_DOUBLE_EQ(p.target_rsd_pct, 2.5);
  EXPECT_EQ(p.max_repeat, 9u);
  EXPECT_EQ(p.json_path, "/tmp/out.json");
}

TEST(BenchProtocol, ZeroValuesAreClamped) {
  const BenchProtocol p = Parse({"--threads", "0", "--max-repeat", "0"});
  EXPECT_EQ(p.threads, 1u);
  EXPECT_EQ(p.max_repeat, 1u);
}

TEST(BenchProtocolDeathTest, NegativeValuesRejected) {
  EXPECT_EXIT(Parse({"--threads", "-1"}), ::testing::ExitedWithCode(2),
              "invalid value for --threads");
  EXPECT_EXIT(Parse({"--max-repeat", "-3"}), ::testing::ExitedWithCode(2),
              "invalid value for --max-repeat");
  EXPECT_EXIT(Parse({"--target-rsd", "-0.5"}), ::testing::ExitedWithCode(2),
              "invalid value for --target-rsd");
}

TEST(MeasureWorkload, RespectsMaxRepeatAndReportsCounters) {
  const Dataset dataset =
      GenerateCity(CityProfile::Testing(/*trajectories=*/150, /*seed=*/3));
  const GatIndex index(dataset);
  const GatSearcher searcher(dataset, index);
  QueryWorkloadParams wp;
  wp.num_queries = 6;
  wp.seed = 17;
  const auto queries = QueryGenerator(dataset, wp).Workload();

  BenchProtocol proto;
  proto.threads = 2;
  proto.warmup = 1;
  proto.target_rsd_pct = 0.0;  // unreachable: force max_repeat batches
  proto.max_repeat = 3;
  const Measurement m =
      MeasureWorkload(searcher, queries, /*k=*/5, QueryKind::kAtsq, proto);

  EXPECT_EQ(m.repeats, 3u);
  EXPECT_EQ(m.threads, 2u);
  EXPECT_GT(m.ns_per_op, 0.0);
  EXPECT_GT(m.totals.candidates_retrieved, 0u);
  EXPECT_GE(m.avg_cost_ms, m.avg_ms);  // disk penalty only adds
}

TEST(BenchReport, WritesWellFormedJson) {
  BenchProtocol proto;
  proto.threads = 4;
  proto.json_path = "/tmp/gat_bench_protocol_test.json";
  BenchReport report("protocol_test", proto);

  Measurement m;
  m.ns_per_op = 1234.5;
  m.rsd_pct = 2.25;
  m.repeats = 3;
  m.avg_ms = 0.0012345;
  m.avg_cost_ms = 2.0012345;
  m.totals.candidates_retrieved = 42;
  m.totals.tas_pruned = 7;
  m.totals.distance_computations = 11;
  m.totals.disk_reads = 9;
  report.Add("LA/ATSQ/GAT/k=5", m, /*ops=*/15);
  report.AddRaw("kernel/\"quoted\\name\"", 99.5, 0.0, 1, 100);

  const std::string path = report.Write();
  EXPECT_EQ(path, proto.json_path);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();

  // Structural checks: balanced braces/brackets and the documented keys.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  for (const char* key :
       {"\"bench\"", "\"schema_version\"", "\"unit\"", "\"protocol\"",
        "\"results\"", "\"threads\"", "\"warmup\"", "\"target_rsd_pct\"",
        "\"max_repeat\"", "\"ns_per_op\"", "\"rsd_pct\"", "\"repeats\"",
        "\"ops\"", "\"candidates_verified\"", "\"disk_reads\"",
        "\"avg_cost_ms_per_query\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  // Quotes and backslashes in record names must be escaped.
  EXPECT_NE(json.find("kernel/\\\"quoted\\\\name\\\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(BenchReport, WriteFailureReturnsEmptyPath) {
  BenchProtocol proto;
  proto.json_path = "/nonexistent-dir/deeper/out.json";
  const BenchReport report("unwritable", proto);
  EXPECT_TRUE(report.Write().empty());
}

}  // namespace
}  // namespace gat::bench
