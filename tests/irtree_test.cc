// Tests for the IR-tree: activity-filtered incremental NN and node pruning.

#include "gat/rtree/irtree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "gat/util/rng.h"

namespace gat {
namespace {

std::vector<IrTreeEntry> RandomEntries(Rng& rng, size_t n,
                                       uint32_t vocabulary) {
  std::vector<IrTreeEntry> entries;
  for (size_t i = 0; i < n; ++i) {
    IrTreeEntry e;
    e.point = Point{rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
    e.trajectory = static_cast<TrajectoryId>(i / 4);
    e.point_index = static_cast<PointIndex>(i % 4);
    const uint32_t count = rng.NextU32(4);  // 0..3 activities
    for (uint32_t c = 0; c < count; ++c) {
      e.activities.push_back(rng.NextU32(vocabulary));
    }
    std::sort(e.activities.begin(), e.activities.end());
    e.activities.erase(std::unique(e.activities.begin(), e.activities.end()),
                       e.activities.end());
    entries.push_back(std::move(e));
  }
  return entries;
}

TEST(IrTree, EmptyTree) {
  IrTree tree = IrTree::BulkLoad({});
  EXPECT_EQ(tree.size(), 0u);
  IrTree::NearestIterator it(tree, Point{0, 0}, {1});
  const IrTreeEntry* e = nullptr;
  double d;
  EXPECT_FALSE(it.Next(&e, &d));
}

class IrTreeFilterTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IrTreeFilterTest, FilteredStreamYieldsExactlyMatchingPoints) {
  Rng rng(GetParam());
  const auto entries = RandomEntries(rng, 500, 20);
  const IrTree tree = IrTree::BulkLoad(entries, 8);
  const Point origin{rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
  const std::vector<ActivityId> filter = {3, 7};

  // Expected: every entry carrying activity 3 or 7, by distance.
  std::vector<double> expected;
  for (const auto& e : entries) {
    const bool has = std::binary_search(e.activities.begin(),
                                        e.activities.end(), 3u) ||
                     std::binary_search(e.activities.begin(),
                                        e.activities.end(), 7u);
    if (has) expected.push_back(Distance(origin, e.point));
  }
  std::sort(expected.begin(), expected.end());

  IrTree::NearestIterator it(tree, origin, filter);
  const IrTreeEntry* e = nullptr;
  double d;
  size_t count = 0;
  double prev = -1.0;
  while (it.Next(&e, &d)) {
    ASSERT_GE(d, prev);
    ASSERT_LT(count, expected.size());
    ASSERT_NEAR(d, expected[count], 1e-9);
    // Yielded entries really carry a demanded activity.
    const bool has =
        std::binary_search(e->activities.begin(), e->activities.end(), 3u) ||
        std::binary_search(e->activities.begin(), e->activities.end(), 7u);
    ASSERT_TRUE(has);
    prev = d;
    ++count;
  }
  EXPECT_EQ(count, expected.size());
}

TEST_P(IrTreeFilterTest, EmptyFilterDegeneratesToPlainBrowsing) {
  Rng rng(GetParam() + 1000);
  const auto entries = RandomEntries(rng, 300, 10);
  const IrTree tree = IrTree::BulkLoad(entries, 8);
  IrTree::NearestIterator it(tree, Point{50, 50}, {});
  const IrTreeEntry* e = nullptr;
  double d;
  size_t count = 0;
  while (it.Next(&e, &d)) ++count;
  EXPECT_EQ(count, entries.size());
  EXPECT_EQ(it.nodes_pruned(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IrTreeFilterTest, ::testing::Values(1, 2, 3));

TEST(IrTree, PrunesSubtreesWithoutDemandedActivity) {
  // Left half of the plane carries activity 0, right half activity 1;
  // searching for activity 1 from the far left must prune left subtrees.
  std::vector<IrTreeEntry> entries;
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    IrTreeEntry e;
    const bool left = i < 100;
    e.point = Point{rng.NextDouble(left ? 0 : 60, left ? 40 : 100),
                    rng.NextDouble(0, 100)};
    e.trajectory = static_cast<TrajectoryId>(i);
    e.activities = {left ? 0u : 1u};
    entries.push_back(std::move(e));
  }
  const IrTree tree = IrTree::BulkLoad(entries, 8);
  IrTree::NearestIterator it(tree, Point{0, 50}, {1});
  const IrTreeEntry* e = nullptr;
  double d;
  size_t count = 0;
  while (it.Next(&e, &d)) {
    ASSERT_EQ(e->activities, (std::vector<ActivityId>{1}));
    ++count;
  }
  EXPECT_EQ(count, 100u);
  EXPECT_GT(it.nodes_pruned(), 0u);
}

TEST(IrTree, InvertedFileBytesPositive) {
  Rng rng(6);
  const auto entries = RandomEntries(rng, 100, 10);
  const IrTree tree = IrTree::BulkLoad(entries, 8);
  EXPECT_GT(tree.InvertedFileBytes(), 0u);
}

}  // namespace
}  // namespace gat
