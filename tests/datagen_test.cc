// Tests for the synthetic check-in generator and the query workload
// generator.

#include <gtest/gtest.h>

#include <algorithm>

#include "gat/datagen/checkin_generator.h"
#include "gat/datagen/query_generator.h"
#include "gat/model/dataset_stats.h"

namespace gat {
namespace {

TEST(CheckinGenerator, DeterministicForSameSeed) {
  const Dataset a = GenerateCity(CityProfile::Testing(100, 9));
  const Dataset b = GenerateCity(CityProfile::Testing(100, 9));
  ASSERT_EQ(a.size(), b.size());
  for (TrajectoryId t = 0; t < a.size(); ++t) {
    const auto& ta = a.trajectory(t);
    const auto& tb = b.trajectory(t);
    ASSERT_EQ(ta.size(), tb.size());
    for (size_t i = 0; i < ta.size(); ++i) {
      ASSERT_EQ(ta[i].location, tb[i].location);
      ASSERT_EQ(ta[i].activities, tb[i].activities);
    }
  }
}

TEST(CheckinGenerator, DifferentSeedsDiffer) {
  const Dataset a = GenerateCity(CityProfile::Testing(50, 1));
  const Dataset b = GenerateCity(CityProfile::Testing(50, 2));
  bool identical = a.size() == b.size();
  if (identical) {
    for (TrajectoryId t = 0; t < a.size() && identical; ++t) {
      identical = a.trajectory(t).size() == b.trajectory(t).size();
    }
  }
  EXPECT_FALSE(identical);
}

TEST(CheckinGenerator, StatsTrackProfile) {
  CityProfile p = CityProfile::Testing(400, 33);
  p.mean_points_per_trajectory = 15.0;
  p.mean_activities_per_point = 2.5;
  const Dataset d = GenerateCity(p);
  const auto s = DatasetStats::Collect(d);
  EXPECT_EQ(s.num_trajectories, 400u);
  EXPECT_NEAR(s.avg_points_per_trajectory, 15.0, 2.5);
  EXPECT_NEAR(s.avg_activities_per_point, 2.5, 0.4);
  EXPECT_LE(s.extent_width_km, p.width_km + 1e-9);
  EXPECT_LE(s.extent_height_km, p.height_km + 1e-9);
  EXPECT_GT(s.num_distinct_activities, 10u);
}

TEST(CheckinGenerator, FrequenciesAreZipfSkewed) {
  const Dataset d = GenerateCity(CityProfile::Testing(300, 44));
  const auto& freqs = d.activity_frequencies();
  ASSERT_GT(freqs.size(), 8u);
  // Frequency-ranked IDs: non-increasing, with real skew between the head
  // and the tail.
  for (size_t i = 1; i < freqs.size(); ++i) ASSERT_LE(freqs[i], freqs[i - 1]);
  EXPECT_GT(freqs.front(), 4 * freqs.back());
}

TEST(CheckinGenerator, PaperProfilesScaleCorrectly) {
  const CityProfile la = CityProfile::LosAngeles(0.01);
  EXPECT_EQ(la.num_trajectories, 316u);  // 31,557 * 0.01
  const CityProfile ny = CityProfile::NewYork(0.01);
  EXPECT_EQ(ny.num_trajectories, 490u);
  // LA trajectories carry more activity than NY's — the Table-IV ratio the
  // paper's analysis leans on.
  EXPECT_GT(la.mean_points_per_trajectory * la.mean_activities_per_point,
            ny.mean_points_per_trajectory * ny.mean_activities_per_point);
}

// ---------------------------------------------------------------------------

TEST(QueryGenerator, RespectsWorkloadShape) {
  const Dataset d = GenerateCity(CityProfile::Testing(300, 10));
  QueryWorkloadParams wp;
  wp.num_query_points = 4;
  wp.activities_per_point = 3;
  wp.num_queries = 25;
  wp.seed = 77;
  QueryGenerator gen(d, wp);
  for (const Query& q : gen.Workload()) {
    ASSERT_EQ(q.size(), 4u);
    for (const auto& qp : q.points()) {
      ASSERT_GE(qp.activities.size(), 1u);
      ASSERT_LE(qp.activities.size(), 3u);
    }
  }
}

TEST(QueryGenerator, QueriesAreSatisfiable) {
  // Queries sampled from existing trajectories must have at least one
  // order-sensitive match in the dataset (the source trajectory).
  const Dataset d = GenerateCity(CityProfile::Testing(200, 11));
  QueryWorkloadParams wp;
  wp.num_queries = 15;
  wp.seed = 78;
  QueryGenerator gen(d, wp);
  for (const Query& q : gen.Workload()) {
    bool matched = false;
    for (TrajectoryId t = 0; t < d.size() && !matched; ++t) {
      std::vector<ActivityId> demanded = q.ActivityUnion();
      const auto available = d.trajectory(t).ActivityUnion();
      matched = std::includes(available.begin(), available.end(),
                              demanded.begin(), demanded.end());
    }
    ASSERT_TRUE(matched);
  }
}

TEST(QueryGenerator, DiameterControl) {
  const Dataset d = GenerateCity(CityProfile::Testing(400, 12));
  for (double target : {2.0, 5.0, 10.0}) {
    QueryWorkloadParams wp;
    wp.diameter_km = target;
    wp.num_queries = 10;
    wp.seed = 79;
    QueryGenerator gen(d, wp);
    for (const Query& q : gen.Workload()) {
      // Accepted directly or rescaled in the fallback: within 50% of the
      // target is the loose sanity envelope.
      EXPECT_NEAR(q.Diameter(), target, target * 0.5);
    }
  }
}

TEST(QueryGenerator, DeterministicWorkload) {
  const Dataset d = GenerateCity(CityProfile::Testing(150, 13));
  QueryWorkloadParams wp;
  wp.num_queries = 5;
  wp.seed = 80;
  QueryGenerator g1(d, wp);
  QueryGenerator g2(d, wp);
  const auto w1 = g1.Workload();
  const auto w2 = g2.Workload();
  ASSERT_EQ(w1.size(), w2.size());
  for (size_t i = 0; i < w1.size(); ++i) {
    ASSERT_EQ(w1[i].size(), w2[i].size());
    for (size_t j = 0; j < w1[i].size(); ++j) {
      ASSERT_EQ(w1[i][j].location, w2[i][j].location);
      ASSERT_EQ(w1[i][j].activities, w2[i][j].activities);
    }
  }
}

}  // namespace
}  // namespace gat
