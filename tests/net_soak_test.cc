// Loopback soak for the wire layer, meant to run under TSan and ASan
// (ctest label: soak): real sockets against a poll(2) Server on a
// shared Executor, checking the properties the socket boundary must
// not bend —
//
//  1. a batch served through Client → socket → Session → FrontDoor is
//     bit-identical to an in-process FrontDoor::Serve of the same
//     request — results, per-query statuses, and every deterministic
//     SearchStats counter field by field,
//  2. requests shed at the wire path produce a zero delta in
//     Executor::tasks_submitted() (the overload invariant survives the
//     transport),
//  3. concurrent clients and pipelined frames keep per-connection
//     response order and exactness,
//  4. malformed frames close their session cleanly while the server
//     keeps serving everyone else.
//
// Determinism: the front door runs on a ManualClock that nobody
// advances — zero-rate quotas shed on token exhaustion alone, and
// requests without deadlines never expire.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gat/common/clock.h"
#include "gat/datagen/checkin_generator.h"
#include "gat/datagen/query_generator.h"
#include "gat/engine/executor.h"
#include "gat/engine/query_engine.h"
#include "gat/net/client.h"
#include "gat/net/server.h"
#include "gat/search/gat_search.h"
#include "gat/serve/front_door.h"

namespace gat {
namespace {

constexpr uint32_t kClientThreads = 6;
constexpr uint32_t kRequestsPerClient = 25;
constexpr uint32_t kQueriesPerRequest = 3;
constexpr size_t kTopK = 5;
constexpr uint32_t kSheddingTenant = 99;

class NetSoakTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = GenerateCity(CityProfile::Testing(/*trajectories=*/300,
                                                 /*seed=*/77));
    index_ = std::make_unique<GatIndex>(dataset_);
    searcher_ = std::make_unique<GatSearcher>(dataset_, *index_);

    QueryWorkloadParams wp;
    wp.num_queries = kClientThreads * kQueriesPerRequest;
    wp.seed = 5;
    QueryGenerator qgen(dataset_, wp);
    pool_ = qgen.Workload();
    for (uint32_t c = 0; c < kClientThreads; ++c) {
      client_queries_.emplace_back(
          pool_.begin() + c * kQueriesPerRequest,
          pool_.begin() + (c + 1) * kQueriesPerRequest);
    }

    executor_ = std::make_unique<Executor>(4);
    engine_ = std::make_unique<QueryEngine>(
        *searcher_, EngineOptions{.executor = executor_.get()});
    FrontDoorOptions options;
    options.clock = &clock_;  // frozen: no refills, no expiries
    options.default_quota = TenantQuota{/*tokens_per_sec=*/0.0,
                                        /*burst=*/1e9};
    options.tenant_quotas.push_back(
        {kSheddingTenant, TenantQuota{/*tokens_per_sec=*/0.0,
                                      /*burst=*/0.0}});
    door_ = std::make_unique<FrontDoor>(*engine_, options);

    wire::ServerOptions server_options;
    server_options.executor = executor_.get();
    server_ = std::make_unique<wire::Server>(*door_, server_options);
    ASSERT_TRUE(server_->Start());

    // The in-process reference: a second front door over the same
    // engine (so the socket path's admission spending cannot interfere)
    // serving the identical requests.
    FrontDoorOptions ref_options;
    ref_options.clock = &clock_;
    ref_options.default_quota = TenantQuota{0.0, 1e9};
    reference_door_ = std::make_unique<FrontDoor>(*engine_, ref_options);
    for (uint32_t c = 0; c < kClientThreads; ++c) {
      reference_.push_back(reference_door_->Serve(RequestFor(c)));
      ASSERT_EQ(reference_.back().status, ServeStatus::kOk);
    }
  }

  void TearDown() override {
    if (server_) server_->Stop();
  }

  ServeRequest RequestFor(uint32_t client) const {
    ServeRequest request;
    request.tenant = client;
    request.queries = client_queries_[client];
    request.k = kTopK;
    return request;
  }

  // Field-by-field equality of every deterministic counter
  // (elapsed_ms is wall time and excluded by design — it is also the
  // only non-counter field the codec ships).
  static void ExpectSameCounters(const SearchStats& a, const SearchStats& b) {
    EXPECT_EQ(a.candidates_retrieved, b.candidates_retrieved);
    EXPECT_EQ(a.tas_pruned, b.tas_pruned);
    EXPECT_EQ(a.activity_rejected, b.activity_rejected);
    EXPECT_EQ(a.mib_rejected, b.mib_rejected);
    EXPECT_EQ(a.distance_computations, b.distance_computations);
    EXPECT_EQ(a.nodes_popped, b.nodes_popped);
    EXPECT_EQ(a.heap_pushes, b.heap_pushes);
    EXPECT_EQ(a.rounds, b.rounds);
    EXPECT_EQ(a.disk_reads, b.disk_reads);
    EXPECT_EQ(a.block_hits, b.block_hits);
    EXPECT_EQ(a.blocks_read, b.blocks_read);
    EXPECT_EQ(a.index_pins, b.index_pins);
    EXPECT_EQ(a.deadline_skips, b.deadline_skips);
    EXPECT_EQ(a.critical_disk_reads, b.critical_disk_reads);
  }

  void ExpectMatchesReference(const ServeResult& got, uint32_t client) {
    ASSERT_EQ(got.status, ServeStatus::kOk);
    EXPECT_EQ(got.shed_reason, ShedReason::kNone);
    EXPECT_EQ(got.batch.results, reference_[client].batch.results);
    EXPECT_EQ(got.batch.statuses, reference_[client].batch.statuses);
    EXPECT_EQ(got.batch.deadline_exceeded,
              reference_[client].batch.deadline_exceeded);
    ExpectSameCounters(got.batch.totals, reference_[client].batch.totals);
  }

  ManualClock clock_;
  Dataset dataset_;
  std::unique_ptr<GatIndex> index_;
  std::unique_ptr<GatSearcher> searcher_;
  std::vector<Query> pool_;
  std::vector<std::vector<Query>> client_queries_;
  std::unique_ptr<Executor> executor_;
  std::unique_ptr<QueryEngine> engine_;
  std::unique_ptr<FrontDoor> door_;
  std::unique_ptr<FrontDoor> reference_door_;
  std::unique_ptr<wire::Server> server_;
  std::vector<ServeResult> reference_;
};

TEST_F(NetSoakTest, SocketPathIsBitIdenticalToInProcessServe) {
  wire::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()));
  for (uint32_t c = 0; c < kClientThreads; ++c) {
    ServeResult remote;
    ASSERT_TRUE(client.Call(RequestFor(c), &remote));
    ExpectMatchesReference(remote, c);
  }
}

TEST_F(NetSoakTest, WirePathShedsWithZeroExecutorTasks) {
  wire::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()));

  ServeRequest starved = RequestFor(0);
  starved.tenant = kSheddingTenant;  // zero-token bucket: always shed

  const uint64_t tasks_before = executor_->tasks_submitted();
  for (int i = 0; i < 20; ++i) {
    ServeResult result;
    ASSERT_TRUE(client.Call(starved, &result));
    EXPECT_EQ(result.status, ServeStatus::kShed);
    EXPECT_EQ(result.shed_reason, ShedReason::kTenantRateLimit);
    EXPECT_EQ(result.shed_tenant, kSheddingTenant);
    EXPECT_TRUE(result.batch.results.empty());
  }
  // The acceptance-criterion assertion: a request shed at the wire
  // path creates ZERO executor tasks — TryAdmit plus an encode on the
  // serving thread, nothing submitted.
  EXPECT_EQ(executor_->tasks_submitted() - tasks_before, 0u);

  // And expiry is equally free: a deadline in the frozen clock's past
  // is answered without engine work (admission still charges a token,
  // which the generous default quota absorbs).
  clock_.SetMicros(1'000'000);
  ServeRequest late = RequestFor(0);
  late.deadline_micros = 1;
  const uint64_t tasks_before_late = executor_->tasks_submitted();
  for (int i = 0; i < 5; ++i) {
    ServeResult result;
    ASSERT_TRUE(client.Call(late, &result));
    EXPECT_EQ(result.status, ServeStatus::kDeadlineExceeded);
    EXPECT_TRUE(result.batch.results.empty());
  }
  EXPECT_EQ(executor_->tasks_submitted() - tasks_before_late, 0u);
}

TEST_F(NetSoakTest, ConcurrentClientsStayExactUnderLoad) {
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (uint32_t c = 0; c < kClientThreads; ++c) {
    clients.emplace_back([&, c] {
      wire::Client client;
      if (!client.Connect("127.0.0.1", server_->port())) {
        failures.fetch_add(1);
        return;
      }
      ServeRequest request = RequestFor(c);
      // Alternate priority classes: scheduling may differ, answers may
      // not.
      request.priority = (c % 2 == 0) ? RequestPriority::kInteractive
                                      : RequestPriority::kBulk;
      for (uint32_t r = 0; r < kRequestsPerClient; ++r) {
        ServeResult remote;
        if (!client.Call(request, &remote) ||
            remote.status != ServeStatus::kOk ||
            remote.batch.results != reference_[c].batch.results ||
            remote.batch.statuses != reference_[c].batch.statuses) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  const wire::ServerCounters counters = server_->counters();
  EXPECT_EQ(counters.requests_served,
            uint64_t{kClientThreads} * kRequestsPerClient);
  EXPECT_EQ(counters.protocol_errors, 0u);
}

TEST_F(NetSoakTest, PipelinedRequestsAnswerInOrder) {
  wire::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()));

  // Write every request up front — engine-bound and fast-path frames
  // interleaved (a shed between two real batches) — then read the
  // responses back; they must arrive in request order.
  std::string burst;
  ServeRequest starved = RequestFor(0);
  starved.tenant = kSheddingTenant;
  for (uint32_t c = 0; c < kClientThreads; ++c) {
    burst += wire::EncodeRequestFrame(RequestFor(c));
    burst += wire::EncodeRequestFrame(starved);
  }
  ASSERT_TRUE(client.SendRaw(burst));

  for (uint32_t c = 0; c < kClientThreads; ++c) {
    ServeResult remote;
    ASSERT_TRUE(client.ReadResponse(&remote));
    ExpectMatchesReference(remote, c);
    ASSERT_TRUE(client.ReadResponse(&remote));
    EXPECT_EQ(remote.status, ServeStatus::kShed);
    EXPECT_EQ(remote.shed_tenant, kSheddingTenant);
  }
}

TEST_F(NetSoakTest, MalformedFramesCloseOnlyTheirSession) {
  // A connection that has already earned a response gets it before the
  // poisoned byte kills the session.
  wire::Client vandal;
  ASSERT_TRUE(vandal.Connect("127.0.0.1", server_->port()));
  std::string stream = wire::EncodeRequestFrame(RequestFor(1));
  std::string bad = wire::EncodeRequestFrame(RequestFor(2));
  bad[bad.size() / 2] ^= 0x10;  // flip a payload bit → CRC reject
  stream += bad;
  ASSERT_TRUE(vandal.SendRaw(stream));
  ServeResult earned;
  ASSERT_TRUE(vandal.ReadResponse(&earned));
  ExpectMatchesReference(earned, 1);
  EXPECT_TRUE(vandal.AwaitCleanClose());

  // Garbage from the first byte: closed without a single frame.
  wire::Client gibberish;
  ASSERT_TRUE(gibberish.Connect("127.0.0.1", server_->port()));
  ASSERT_TRUE(gibberish.SendRaw(std::string(64, '\xff')));
  EXPECT_TRUE(gibberish.AwaitCleanClose());

  // The server outlives its vandals: fresh connections still serve,
  // and the bookkeeping recorded both incidents.
  wire::Client survivor;
  ASSERT_TRUE(survivor.Connect("127.0.0.1", server_->port()));
  ServeResult remote;
  ASSERT_TRUE(survivor.Call(RequestFor(3), &remote));
  ExpectMatchesReference(remote, 3);
  EXPECT_EQ(server_->counters().protocol_errors, 2u);
}

}  // namespace
}  // namespace gat
