// Tests for gat/storage/async_io: the raw block I/O engine (io_uring
// and pread-pool backends), the AsyncDiskTier built on it, and the
// stage-then-search path through IoStager + TaskGroup::Defer.
//
// The load-bearing invariants:
//   * both backends return exactly the requested bytes at arbitrary
//     (unaligned) offsets and lengths, including short-read
//     continuation, and Drain() implies every completion ran;
//   * an AsyncDiskTier answers bit-identically to the MappedDiskTier
//     (and the simulated tier) with equal logical disk_reads and equal
//     per-block counters — the physics changed, the accounting did not;
//   * staging makes subsequent demand fetches stall-free, and the
//     staged engine path (executor + IoStager) returns bit-identical
//     batches while yielding cold queries instead of blocking workers.

#include <fcntl.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "gat/datagen/checkin_generator.h"
#include "gat/datagen/query_generator.h"
#include "gat/engine/executor.h"
#include "gat/engine/query_engine.h"
#include "gat/index/snapshot.h"
#include "gat/search/gat_search.h"
#include "gat/storage/async_io.h"
#include "gat/storage/loaded_snapshot.h"
#include "gat/storage/mapped_snapshot.h"
#include "gat/storage/prefetch.h"

namespace gat {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<Query> TestQueries(const Dataset& dataset, uint64_t seed,
                               uint32_t count = 10) {
  QueryWorkloadParams wp;
  wp.num_queries = count;
  wp.seed = seed;
  QueryGenerator qgen(dataset, wp);
  return qgen.Workload();
}

/// A scratch file of pseudorandom (seed-reproducible) bytes.
std::string WritePatternFile(const std::string& name, size_t bytes,
                             std::string* contents) {
  std::mt19937_64 rng(0x5eedull + bytes);
  contents->resize(bytes);
  for (size_t i = 0; i < bytes; ++i) {
    (*contents)[i] = static_cast<char>(rng() & 0xff);
  }
  const std::string path = TempPath(name);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  EXPECT_NE(f, nullptr);
  EXPECT_EQ(std::fwrite(contents->data(), 1, bytes, f), bytes);
  std::fclose(f);
  return path;
}

/// Submits a pile of unaligned reads and checks every byte and every
/// completion under the given backend configuration.
void ExerciseBackend(const AsyncIoOptions& options, IoBackend expected) {
  std::string contents;
  const std::string path =
      WritePatternFile("async_io_pattern.bin", 70000, &contents);
  const int fd = ::open(path.c_str(), O_RDONLY);
  ASSERT_GE(fd, 0);

  AsyncBlockIo io(options);
  EXPECT_EQ(io.backend(), expected);

  // Deliberately awkward extents: odd offsets, odd lengths, a read
  // ending exactly at EOF, single bytes — nothing block-aligned.
  const std::vector<std::pair<uint64_t, uint32_t>> extents = {
      {0, 1},     {1, 1},      {0, 4096},  {4095, 2},       {12345, 6789},
      {777, 513}, {69000, 1000 /* ends at EOF */}, {65536, 4464}};
  std::vector<std::vector<char>> bufs;
  bufs.reserve(extents.size());
  for (const auto& [offset, len] : extents) {
    bufs.emplace_back(len, '\0');
  }
  std::atomic<size_t> completions{0};
  std::atomic<bool> all_full{true};
  for (size_t i = 0; i < extents.size(); ++i) {
    io.SubmitRead(fd, extents[i].first, bufs[i].data(), extents[i].second,
                  [&, i](int64_t result) {
                    if (result != static_cast<int64_t>(extents[i].second)) {
                      all_full.store(false);
                    }
                    completions.fetch_add(1);
                  });
  }
  io.Drain();  // returning implies every callback above already ran
  EXPECT_EQ(completions.load(), extents.size());
  EXPECT_TRUE(all_full.load());
  EXPECT_EQ(io.reads_submitted(), extents.size());
  EXPECT_EQ(io.reads_completed(), extents.size());
  for (size_t i = 0; i < extents.size(); ++i) {
    EXPECT_EQ(std::string(bufs[i].data(), bufs[i].size()),
              contents.substr(extents[i].first, extents[i].second))
        << "extent " << i;
  }
  ::close(fd);
  std::remove(path.c_str());
}

TEST(AsyncBlockIo, PoolBackendReadsExactBytes) {
  AsyncIoOptions options;
  options.allow_io_uring = false;  // force the pread pool
  options.workers = 3;
  ExerciseBackend(options, IoBackend::kThreadPool);
}

TEST(AsyncBlockIo, PoolSingleWorkerSmallQueueStillCompletes) {
  // queue_depth below the submission count: SubmitRead must block at
  // the in-flight bound and drain forward, never deadlock or drop.
  AsyncIoOptions options;
  options.allow_io_uring = false;
  options.workers = 1;
  options.queue_depth = 4;
  ExerciseBackend(options, IoBackend::kThreadPool);
}

TEST(AsyncBlockIo, UringBackendReadsExactBytesWhenAvailable) {
  if (!ProbeIoUring()) {
    GTEST_SKIP() << "io_uring unavailable (kernel/seccomp); pool backend "
                    "covered above";
  }
  AsyncIoOptions options;
  options.allow_io_uring = true;
  ExerciseBackend(options, IoBackend::kIoUring);
}

TEST(AsyncBlockIo, EnvOverrideForcesPool) {
  // GAT_IO_BACKEND=pool must win even where io_uring is available — the
  // CI escape hatch, and the way both backends stay testable anywhere.
  ::setenv("GAT_IO_BACKEND", "pool", 1);
  AsyncIoOptions options;
  options.allow_io_uring = true;
  AsyncBlockIo io(options);
  EXPECT_EQ(io.backend(), IoBackend::kThreadPool);
  ::unsetenv("GAT_IO_BACKEND");
}

// ---------------------------------------------------------------------------
// AsyncDiskTier
// ---------------------------------------------------------------------------

struct TierFixture {
  Dataset dataset;
  std::unique_ptr<GatIndex> built;
  std::string path;

  explicit TierFixture(uint32_t trajectories = 200)
      : dataset(GenerateCity(CityProfile::Testing(trajectories, 31))) {
    const GatConfig config{.depth = 6, .memory_levels = 4,
                           .tas_intervals = 2};
    built = std::make_unique<GatIndex>(dataset, config);
    path = TempPath("async_tier.gats");
    EXPECT_TRUE(SaveSnapshot(*built, path));
  }
  ~TierFixture() { std::remove(path.c_str()); }

  LoadedSnapshot Load(SnapshotIoMode mode,
                                       uint64_t capacity_bytes = 1 << 20,
                                       CacheAdmission admission =
                                           CacheAdmission::kAdmitAll) const {
    MappedSnapshotOptions options;
    options.io_mode = mode;
    options.cache_config.block_bytes = 512;
    options.cache_config.shards = 1;
    options.cache_config.capacity_bytes = capacity_bytes;
    options.cache_config.admission = admission;
    return LoadedSnapshot::LoadMapped(path, options);
  }
};

TEST(AsyncDiskTier, BitIdenticalToMappedTierWithEqualCounters) {
  const TierFixture fix;
  const auto mmap_snap = fix.Load(SnapshotIoMode::kMmap);
  const auto async_snap = fix.Load(SnapshotIoMode::kAsync);
  ASSERT_TRUE(mmap_snap);
  ASSERT_TRUE(async_snap);
  EXPECT_EQ(mmap_snap.mapped()->async_tier(), nullptr);
  ASSERT_NE(async_snap.mapped()->async_tier(), nullptr);

  const GatSearcher fresh(fix.dataset, *fix.built);
  const GatSearcher mapped(fix.dataset, *mmap_snap);
  const GatSearcher async_mapped(fix.dataset, *async_snap);
  for (const Query& q : TestQueries(fix.dataset, 77)) {
    for (const QueryKind kind : {QueryKind::kAtsq, QueryKind::kOatsq}) {
      SearchStats fresh_stats, map_stats, async_stats;
      const ResultList want = fresh.Search(q, 9, kind, &fresh_stats);
      const ResultList via_mmap = mapped.Search(q, 9, kind, &map_stats);
      const ResultList via_async =
          async_mapped.Search(q, 9, kind, &async_stats);
      ASSERT_EQ(want, via_mmap) << ToString(kind);
      ASSERT_EQ(want, via_async) << ToString(kind);
      EXPECT_EQ(async_stats.disk_reads, fresh_stats.disk_reads);
      // Block-level accounting matches the mmap tier *exactly*: same
      // cache geometry, same logical access sequence, same hit/read
      // split — only the physical read changed.
      EXPECT_EQ(async_stats.block_hits, map_stats.block_hits);
      EXPECT_EQ(async_stats.blocks_read, map_stats.blocks_read);
    }
  }
  EXPECT_GT(async_snap.mapped()->async_tier()->stats().async_reads, 0u);
}

TEST(AsyncDiskTier, StagingMakesDemandFetchesStallFree) {
  const TierFixture fix;
  const auto snap = fix.Load(SnapshotIoMode::kAsync);
  ASSERT_TRUE(snap);
  const AsyncDiskTier* tier = snap.mapped()->async_tier();
  ASSERT_NE(tier, nullptr);

  // Stage a few whole rows cold, then demand-fetch the same extents:
  // the fetches must hit resident blocks and never stall.
  const Apl& apl = snap->apl();
  std::vector<std::pair<uint64_t, uint64_t>> extents;
  for (TrajectoryId t = 0; t < 8 && t < apl.num_trajectories(); ++t) {
    extents.push_back(apl.RowExtent(t));
  }
  std::atomic<bool> ready{false};
  const size_t staged = tier->StageExtents(
      extents, [&ready] { ready.store(true, std::memory_order_release); });
  EXPECT_GT(staged, 0u);  // fresh cache: the rows must have been cold
  while (!ready.load(std::memory_order_acquire)) {
  }
  EXPECT_EQ(tier->stats().staged_blocks, staged);

  DiskAccessCounter counter;
  for (const auto& [offset, bytes] : extents) {
    tier->Fetch(offset, bytes, &counter);
  }
  EXPECT_EQ(tier->stats().worker_stalls, 0u);
  EXPECT_EQ(tier->stats().stalled_blocks, 0u);
  EXPECT_EQ(counter.BlocksRead(), 0u);
  EXPECT_GT(counter.BlockHits(), 0u);

  // Restaging the same extents finds everything resident: the ready
  // callback runs inline and nothing is submitted.
  bool inline_ready = false;
  EXPECT_EQ(tier->StageExtents(extents,
                               [&inline_ready] { inline_ready = true; }),
            0u);
  EXPECT_TRUE(inline_ready);
}

TEST(AsyncDiskTier, ColdDemandFetchCountsOneStall) {
  const TierFixture fix;
  const auto snap = fix.Load(SnapshotIoMode::kAsync);
  ASSERT_TRUE(snap);
  const AsyncDiskTier* tier = snap.mapped()->async_tier();
  const auto extent = snap->apl().RowExtent(0);
  if (extent.second == 0) GTEST_SKIP() << "empty first row";
  DiskAccessCounter counter;
  tier->Fetch(extent.first, extent.second, &counter);
  EXPECT_EQ(tier->stats().worker_stalls, 1u);
  EXPECT_EQ(tier->stats().stalled_blocks, counter.BlocksRead());
  // Same extent again: resident now, no new stall.
  tier->Fetch(extent.first, extent.second, &counter);
  EXPECT_EQ(tier->stats().worker_stalls, 1u);
}

// ---------------------------------------------------------------------------
// Staged engine (IoStager + TaskGroup::Defer through QueryEngine)
// ---------------------------------------------------------------------------

TEST(StagedEngine, BitIdenticalBatchesAndYieldAccounting) {
  const TierFixture fix;
  const std::vector<Query> queries = TestQueries(fix.dataset, 91, 12);

  // Reference: inline engine over the built (simulated-tier) index.
  const GatSearcher fresh(fix.dataset, *fix.built);
  const QueryEngine reference(fresh, EngineOptions{.threads = 1});
  const BatchResult want = reference.Run(queries, 9, QueryKind::kAtsq);

  // Staged: executor engine over the async snapshot with a small cache,
  // every query staged through the IoStager before its search task.
  const auto snap = fix.Load(SnapshotIoMode::kAsync, /*capacity_bytes=*/
                             16 * 512);
  ASSERT_TRUE(snap);
  const GatSearcher async_mapped(fix.dataset, *snap);
  const IoStager stager(snap.index(), snap.mapped()->async_tier());
  Executor executor(4);
  const QueryEngine staged(
      async_mapped,
      EngineOptions{.executor = &executor, .stager = &stager});
  const BatchResult got = staged.Run(queries, 9, QueryKind::kAtsq);

  ASSERT_EQ(got.results.size(), want.results.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(got.results[i], want.results[i]) << "query " << i;
    EXPECT_EQ(got.statuses[i], QueryStatus::kOk);
  }
  EXPECT_EQ(got.totals.disk_reads, want.totals.disk_reads);
  // Every query went through Stage exactly once, and on a cold
  // thrash-sized cache at least one of them had to yield.
  const IoStager::Stats stats = stager.stats();
  EXPECT_EQ(stats.queries_inline + stats.queries_yielded, queries.size());
  EXPECT_GT(stats.queries_yielded, 0u);
  EXPECT_GT(stats.blocks_staged, 0u);
  EXPECT_TRUE(got.storage.present);

  // Re-running the batch is still bit-identical (warm cache, inline
  // resumes) and stages nothing new on the fully-warm path.
  const BatchResult again = staged.Run(queries, 9, QueryKind::kAtsq);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(again.results[i], want.results[i]) << "query " << i;
  }
}

TEST(StagedEngine, InlineEngineIgnoresStagerButReportsItsCache) {
  // threads == 1: no executor, so the stager must not stage (there is
  // no slot to yield) — but the batch still reports cache deltas from
  // the stager's cache.
  const TierFixture fix;
  const auto snap = fix.Load(SnapshotIoMode::kAsync);
  ASSERT_TRUE(snap);
  const GatSearcher async_mapped(fix.dataset, *snap);
  const IoStager stager(snap.index(), snap.mapped()->async_tier());
  const QueryEngine engine(
      async_mapped, EngineOptions{.threads = 1, .stager = &stager});
  const std::vector<Query> queries = TestQueries(fix.dataset, 5, 4);
  const BatchResult batch = engine.Run(queries, 9, QueryKind::kAtsq);
  EXPECT_EQ(stager.stats().queries_inline + stager.stats().queries_yielded,
            0u);
  EXPECT_TRUE(batch.storage.present);
  EXPECT_GT(batch.storage.hits + batch.storage.misses, 0u);
}

}  // namespace
}  // namespace gat
