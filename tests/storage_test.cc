// Tests for the storage subsystem (gat/storage): mmap-backed snapshot
// serving, the block-cached disk tier, and prefetch.
//
// The load-bearing invariants:
//   * a MappedSnapshot answers bit-identically to the built / stream-
//     loaded index, with equal logical disk_reads (same access pattern,
//     real I/O underneath);
//   * every malformed-file path (truncation, bit rot, bad magic/version,
//     config/fingerprint mismatch) fails as nullptr, never as a subtly
//     wrong index — same contract as LoadSnapshot;
//   * mmap edge cases: empty-shard snapshots, mappings whose last block
//     is partial, read-only file permissions;
//   * the BlockCache is a correct sharded LRU with exact stats, and the
//     DiskAccessCounter tolerates concurrent accumulation.

#include <sys/stat.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "gat/datagen/checkin_generator.h"
#include "gat/datagen/query_generator.h"
#include "gat/engine/query_engine.h"
#include "gat/index/snapshot.h"
#include "gat/search/gat_search.h"
#include "gat/shard/sharded_index.h"
#include "gat/shard/sharded_searcher.h"
#include "gat/storage/block_cache.h"
#include "gat/storage/mapped_file.h"
#include "gat/storage/loaded_snapshot.h"
#include "gat/storage/mapped_snapshot.h"
#include "gat/storage/prefetch.h"

namespace gat {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<Query> TestQueries(const Dataset& dataset, uint64_t seed,
                               uint32_t count = 10) {
  QueryWorkloadParams wp;
  wp.num_queries = count;
  wp.seed = seed;
  QueryGenerator qgen(dataset, wp);
  return qgen.Workload();
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ---------------------------------------------------------------------------
// MappedFile
// ---------------------------------------------------------------------------

TEST(MappedFile, MissingFileAndDirectoryFailCleanly) {
  MappedFile f;
  EXPECT_FALSE(f.Open(TempPath("no_such_file.bin")));
  EXPECT_FALSE(f.valid());
  EXPECT_FALSE(f.Open(::testing::TempDir()));  // a directory, not a file
  EXPECT_FALSE(f.valid());
}

TEST(MappedFile, EmptyFileMapsAsValidEmpty) {
  const std::string path = TempPath("empty.bin");
  WriteFileBytes(path, "");
  MappedFile f;
  ASSERT_TRUE(f.Open(path));
  EXPECT_TRUE(f.valid());
  EXPECT_EQ(f.size(), 0u);
  EXPECT_EQ(f.data(), nullptr);
  std::remove(path.c_str());
}

TEST(MappedFile, ReadOnlyPermissionsSuffice) {
  const std::string path = TempPath("readonly.bin");
  WriteFileBytes(path, "serving never writes");
  ASSERT_EQ(::chmod(path.c_str(), 0444), 0);
  MappedFile f;
  ASSERT_TRUE(f.Open(path));
  EXPECT_EQ(f.size(), 20u);
  EXPECT_EQ(std::string(f.data(), f.size()), "serving never writes");
  ::chmod(path.c_str(), 0644);
  std::remove(path.c_str());
}

TEST(MappedFile, MoveTransfersTheMapping) {
  const std::string path = TempPath("move.bin");
  WriteFileBytes(path, "abcd");
  MappedFile a;
  ASSERT_TRUE(a.Open(path));
  MappedFile b(std::move(a));
  EXPECT_FALSE(a.valid());
  ASSERT_TRUE(b.valid());
  EXPECT_EQ(std::string(b.data(), b.size()), "abcd");
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// BlockCache
// ---------------------------------------------------------------------------

/// The tier's demand protocol: a missed block is published only after
/// the (test-elided) read-and-verify step.
bool TouchAndPublish(BlockCache& cache, const BlockFileToken& file,
                     uint64_t block) {
  const bool hit = cache.Touch(file, block);
  if (!hit) cache.Publish(file, block);
  return hit;
}

TEST(BlockCache, LruEvictionAndExactStats) {
  BlockCacheConfig config;
  config.block_bytes = 512;
  config.capacity_bytes = 2 * 512;  // two blocks
  config.shards = 1;                // one LRU list: order fully observable
  BlockCache cache(config);
  ASSERT_EQ(cache.capacity_blocks(), 2u);
  const BlockFileToken file = cache.RegisterFile();

  EXPECT_FALSE(TouchAndPublish(cache, file, 0));  // miss, resident {0}
  EXPECT_FALSE(TouchAndPublish(cache, file, 1));  // miss, resident {0,1}
  EXPECT_TRUE(TouchAndPublish(cache, file, 0));   // hit, 0 now MRU
  EXPECT_FALSE(TouchAndPublish(cache, file, 2));  // miss, evicts LRU = 1
  EXPECT_TRUE(TouchAndPublish(cache, file, 0));   // still resident
  EXPECT_FALSE(TouchAndPublish(cache, file, 1));  // was evicted: miss again

  const BlockCacheStats stats = cache.Snapshot();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(cache.ResidentBlocks(), 2u);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 2.0 / 6.0);
}

TEST(BlockCache, MissIsNotResidentUntilPublished) {
  // The verify-before-publish contract: a concurrent lookup between a
  // miss and its Publish must also miss, never consume an unverified
  // block.
  BlockCache cache(BlockCacheConfig{.block_bytes = 512,
                                    .capacity_bytes = 8 * 512,
                                    .shards = 1});
  const BlockFileToken file = cache.RegisterFile();
  EXPECT_FALSE(cache.Touch(file, 5));  // miss — not yet published
  EXPECT_FALSE(cache.Touch(file, 5));  // still a miss
  EXPECT_EQ(cache.ResidentBlocks(), 0u);
  cache.Publish(file, 5);
  cache.Publish(file, 5);  // racing duplicate publish is idempotent
  EXPECT_TRUE(cache.Touch(file, 5));
  EXPECT_EQ(cache.ResidentBlocks(), 1u);
}

TEST(BlockCache, WarmCountsSeparatelyFromDemand) {
  BlockCache cache(BlockCacheConfig{.block_bytes = 512,
                                    .capacity_bytes = 8 * 512,
                                    .shards = 1});
  const BlockFileToken file = cache.RegisterFile();
  EXPECT_FALSE(cache.Warm(file, 3));  // prefetch fill...
  cache.Publish(file, 3);             // ...published after the read
  EXPECT_TRUE(cache.Warm(file, 3));   // prefetch re-touch
  EXPECT_TRUE(cache.Touch(file, 3));  // demand hit on the warmed block
  const BlockCacheStats stats = cache.Snapshot();
  EXPECT_EQ(stats.prefetched, 1u);
  EXPECT_EQ(stats.prefetch_hits, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 0u);
}

// ---------------------------------------------------------------------------
// Scan-resistant admission (CacheAdmission::kScanResistant)
// ---------------------------------------------------------------------------

BlockCacheConfig ScanResistantConfig(uint64_t capacity_blocks) {
  return BlockCacheConfig{.block_bytes = 512,
                          .capacity_bytes = capacity_blocks * 512,
                          .shards = 1,
                          .admission = CacheAdmission::kScanResistant};
}

TEST(BlockCacheAdmission, SequentialScanDoesNotEvictHotSet) {
  // The scenario the policy exists for: a scan larger than the whole
  // cache must not flush a repeatedly-touched working set. Each scan
  // block arrives with frequency 1 and loses the duel against any warm
  // victim — served but never cached.
  BlockCache cache(ScanResistantConfig(4));
  const BlockFileToken file = cache.RegisterFile();
  for (uint64_t b = 0; b < 4; ++b) TouchAndPublish(cache, file, b);
  for (int round = 0; round < 2; ++round) {
    for (uint64_t b = 0; b < 4; ++b) EXPECT_TRUE(cache.Touch(file, b));
  }

  for (uint64_t b = 100; b < 120; ++b) {
    EXPECT_FALSE(TouchAndPublish(cache, file, b));  // scanned once each
  }

  // The hot set survived the scan untouched.
  for (uint64_t b = 0; b < 4; ++b) EXPECT_TRUE(cache.Touch(file, b));
  const BlockCacheStats stats = cache.Snapshot();
  EXPECT_EQ(stats.admission_rejects, 20u);
  EXPECT_EQ(stats.ghost_hits, 0u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(cache.ResidentBlocks(), 4u);
}

TEST(BlockCacheAdmission, GhostHitReadmitsSecondReference) {
  // 2Q half of the policy: a rejected candidate that comes back within
  // the ghost window is genuinely re-referenced — admit it even though
  // its frequency alone would lose the duel.
  BlockCache cache(ScanResistantConfig(2));
  const BlockFileToken file = cache.RegisterFile();
  TouchAndPublish(cache, file, 0);
  TouchAndPublish(cache, file, 1);
  EXPECT_TRUE(cache.Touch(file, 0));
  EXPECT_TRUE(cache.Touch(file, 1));

  EXPECT_FALSE(TouchAndPublish(cache, file, 9));  // rejected -> ghost
  EXPECT_EQ(cache.Snapshot().admission_rejects, 1u);
  EXPECT_FALSE(cache.Touch(file, 9));  // still not resident...
  cache.Publish(file, 9);              // ...but remembered: admitted now
  EXPECT_TRUE(cache.Touch(file, 9));
  const BlockCacheStats stats = cache.Snapshot();
  EXPECT_EQ(stats.ghost_hits, 1u);
  EXPECT_EQ(stats.evictions, 1u);  // the ghost admission evicted the LRU
  EXPECT_EQ(cache.ResidentBlocks(), 2u);
}

TEST(BlockCacheAdmission, PrefetchPublishBypassesFrequencyDuel) {
  // A prefetcher's whole point is warming blocks *before* their first
  // demand touch — frequency 0 by construction. Staged/prefetched
  // publishes therefore skip the duel (they still ride the LRU, so a
  // wrong prediction ages out normally).
  BlockCache cache(ScanResistantConfig(2));
  const BlockFileToken file = cache.RegisterFile();
  TouchAndPublish(cache, file, 0);
  TouchAndPublish(cache, file, 1);
  EXPECT_TRUE(cache.Touch(file, 0));
  EXPECT_TRUE(cache.Touch(file, 1));

  EXPECT_FALSE(cache.Warm(file, 9));
  cache.Publish(file, 9, /*prefetch=*/true);
  EXPECT_TRUE(cache.Touch(file, 9));  // admitted despite frequency 0
  EXPECT_EQ(cache.Snapshot().admission_rejects, 0u);
}

TEST(BlockCacheAdmission, GhostForgetsUnregisteredFileAcrossIdReuse) {
  // Ghost entries key on (file id, block) with no generation, so an
  // unregister must purge them: a recycled id would otherwise inherit
  // the predecessor's ghosts and earn free admissions for unrelated
  // blocks.
  BlockCache cache(ScanResistantConfig(2));
  const BlockFileToken resident = cache.RegisterFile();
  TouchAndPublish(cache, resident, 0);
  TouchAndPublish(cache, resident, 1);
  EXPECT_TRUE(cache.Touch(resident, 0));
  EXPECT_TRUE(cache.Touch(resident, 1));

  const BlockFileToken retiring = cache.RegisterFile();
  EXPECT_FALSE(TouchAndPublish(cache, retiring, 7));  // rejected -> ghost
  cache.Unregister(retiring);

  const BlockFileToken successor = cache.RegisterFile();
  ASSERT_EQ(successor.id, retiring.id);  // the id really was recycled
  EXPECT_FALSE(TouchAndPublish(cache, successor, 7));
  const BlockCacheStats stats = cache.Snapshot();
  EXPECT_EQ(stats.ghost_hits, 0u);  // no inherited second chance
  EXPECT_EQ(stats.admission_rejects, 2u);
  EXPECT_FALSE(cache.Touch(successor, 7));
}

TEST(BlockCacheAdmission, DefaultAdmitAllIsUnchangedLru) {
  // The default policy must stay byte-for-byte the seed behavior: every
  // publish admitted, plain LRU eviction, admission counters dormant.
  BlockCache cache(BlockCacheConfig{.block_bytes = 512,
                                    .capacity_bytes = 2 * 512,
                                    .shards = 1});
  const BlockFileToken file = cache.RegisterFile();
  TouchAndPublish(cache, file, 0);
  TouchAndPublish(cache, file, 1);
  EXPECT_TRUE(cache.Touch(file, 0));
  EXPECT_TRUE(cache.Touch(file, 1));
  for (uint64_t b = 100; b < 110; ++b) {
    EXPECT_FALSE(TouchAndPublish(cache, file, b));  // each one admitted
  }
  EXPECT_FALSE(cache.Touch(file, 0));  // the scan flushed the hot set
  const BlockCacheStats stats = cache.Snapshot();
  EXPECT_EQ(stats.admission_rejects, 0u);
  EXPECT_EQ(stats.ghost_hits, 0u);
  EXPECT_EQ(stats.evictions, 10u);
}

TEST(BlockCache, FilesDoNotAliasEachOthersBlocks) {
  BlockCache cache(BlockCacheConfig{.block_bytes = 512,
                                    .capacity_bytes = 64 * 512});
  const BlockFileToken a = cache.RegisterFile();
  const BlockFileToken b = cache.RegisterFile();
  ASSERT_NE(a.id, b.id);
  EXPECT_FALSE(TouchAndPublish(cache, a, 7));
  EXPECT_FALSE(TouchAndPublish(cache, b, 7));  // same index, other file
  EXPECT_TRUE(TouchAndPublish(cache, a, 7));
  EXPECT_TRUE(TouchAndPublish(cache, b, 7));
}

TEST(BlockCache, ConcurrentTouchesKeepExactTotals) {
  BlockCache cache(BlockCacheConfig{.block_bytes = 512,
                                    .capacity_bytes = 4096 * 512,
                                    .shards = 8});
  const BlockFileToken file = cache.RegisterFile();
  constexpr int kThreads = 4;
  constexpr uint64_t kTouches = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, file, t] {
      for (uint64_t i = 0; i < kTouches; ++i) {
        TouchAndPublish(cache, file, (static_cast<uint64_t>(t) << 32) | i);
      }
    });
  }
  for (auto& t : threads) t.join();
  const BlockCacheStats stats = cache.Snapshot();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kTouches);
  EXPECT_EQ(stats.misses, kThreads * kTouches);  // all keys distinct
}

TEST(DiskAccessCounter, ConcurrentAccumulationIsExact) {
  DiskAccessCounter counter;
  constexpr int kThreads = 4;
  constexpr uint64_t kIncrements = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kIncrements; ++i) {
        counter.RecordRead();
        counter.RecordBlockHit();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.Reads(), kThreads * kIncrements);
  EXPECT_EQ(counter.BlockHits(), kThreads * kIncrements);
}

// ---------------------------------------------------------------------------
// MappedSnapshot — equivalence
// ---------------------------------------------------------------------------

TEST(MappedSnapshot, BitIdenticalAnswersAndEqualDiskReads) {
  const Dataset dataset = GenerateCity(CityProfile::Testing(200, 31));
  const GatConfig config{.depth = 6, .memory_levels = 4, .tas_intervals = 2};
  const GatIndex built(dataset, config);
  const std::string path = TempPath("mapped_roundtrip.gats");
  ASSERT_TRUE(SaveSnapshot(built, path));

  const LoadedSnapshot snap = LoadedSnapshot::LoadMapped(path);
  ASSERT_TRUE(snap);
  EXPECT_EQ(snap->config(), built.config());

  // Identical tier accounting (Figure 8's memory-cost series).
  const auto mb = built.memory_breakdown();
  const auto ml = snap->memory_breakdown();
  EXPECT_EQ(ml.MainMemoryTotal(), mb.MainMemoryTotal());
  EXPECT_EQ(ml.DiskTotal(), mb.DiskTotal());

  const GatSearcher fresh(dataset, built);
  const GatSearcher mapped(dataset, *snap);
  uint64_t total_block_traffic = 0;
  for (const Query& q : TestQueries(dataset, 77)) {
    for (const QueryKind kind : {QueryKind::kAtsq, QueryKind::kOatsq}) {
      SearchStats fresh_stats, mapped_stats;
      const ResultList a = fresh.Search(q, 9, kind, &fresh_stats);
      const ResultList b = mapped.Search(q, 9, kind, &mapped_stats);
      ASSERT_EQ(a, b) << ToString(kind);
      EXPECT_EQ(mapped_stats.candidates_retrieved,
                fresh_stats.candidates_retrieved);
      EXPECT_EQ(mapped_stats.tas_pruned, fresh_stats.tas_pruned);
      EXPECT_EQ(mapped_stats.distance_computations,
                fresh_stats.distance_computations);
      // The subsystem's core contract: identical logical reads, only
      // the physics underneath changed.
      EXPECT_EQ(mapped_stats.disk_reads, fresh_stats.disk_reads);
      // The simulated side never sees blocks; the mapped side must.
      EXPECT_EQ(fresh_stats.block_hits + fresh_stats.blocks_read, 0u);
      total_block_traffic +=
          mapped_stats.block_hits + mapped_stats.blocks_read;
    }
  }
  EXPECT_GT(total_block_traffic, 0u);
  EXPECT_GT(snap.mapped()->cache().Snapshot().DemandLookups(), 0u);
  std::remove(path.c_str());
}

TEST(MappedSnapshot, ResaveOfMappedIndexIsByteIdentical) {
  // SaveSnapshot writes through the component views, so an index served
  // from a mapping must snapshot to exactly the bytes it was served
  // from — the serving form does not degrade persistence.
  const Dataset dataset = GenerateCity(CityProfile::Testing(120, 5));
  const GatIndex built(dataset, GatConfig{.depth = 5, .memory_levels = 3});
  const std::string p1 = TempPath("resave1.gats");
  const std::string p2 = TempPath("resave2.gats");
  ASSERT_TRUE(SaveSnapshot(built, p1));
  const LoadedSnapshot snap = LoadedSnapshot::LoadMapped(p1);
  ASSERT_TRUE(snap);
  ASSERT_TRUE(SaveSnapshot(*snap, p2));
  EXPECT_EQ(ReadFileBytes(p1), ReadFileBytes(p2));
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST(MappedSnapshot, ExecutorValidationIsBitIdentical) {
  // 300 trajectories puts the APL past the parallel-validation row
  // threshold, so the executor path actually fans out.
  const Dataset dataset = GenerateCity(CityProfile::Testing(300, 47));
  const GatIndex built(dataset, GatConfig{.depth = 5, .memory_levels = 3});
  const std::string path = TempPath("mapped_executor.gats");
  ASSERT_TRUE(SaveSnapshot(built, path));

  Executor executor(4);
  MappedSnapshotOptions options;
  options.executor = &executor;
  const LoadedSnapshot parallel = LoadedSnapshot::LoadMapped(path, options);
  const LoadedSnapshot sequential = LoadedSnapshot::LoadMapped(path);
  ASSERT_TRUE(parallel);
  ASSERT_TRUE(sequential);

  const GatSearcher a(dataset, *sequential);
  const GatSearcher b(dataset, *parallel);
  for (const Query& q : TestQueries(dataset, 99, 5)) {
    SearchStats sa, sb;
    ASSERT_EQ(a.Search(q, 9, QueryKind::kAtsq, &sa),
              b.Search(q, 9, QueryKind::kAtsq, &sb));
    EXPECT_EQ(sb.disk_reads, sa.disk_reads);
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// MappedSnapshot — malformed files and mmap edge cases
// ---------------------------------------------------------------------------

TEST(MappedSnapshot, TruncationAnywhereIsRejected) {
  const Dataset dataset = GenerateCity(CityProfile::Testing(80, 13));
  const GatIndex index(dataset, GatConfig{.depth = 4, .memory_levels = 2});
  const std::string path = TempPath("mapped_full.gats");
  ASSERT_TRUE(SaveSnapshot(index, path));
  const std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 64u);

  const std::string cut = TempPath("mapped_cut.gats");
  for (size_t n = 0; n < bytes.size(); n += 97) {
    WriteFileBytes(cut, bytes.substr(0, n));
    EXPECT_EQ(MappedSnapshot::Load(cut), nullptr)
        << "prefix of " << n << " bytes";
  }
  for (size_t n = bytes.size() - 4; n < bytes.size(); ++n) {
    WriteFileBytes(cut, bytes.substr(0, n));
    EXPECT_EQ(MappedSnapshot::Load(cut), nullptr)
        << "prefix of " << n << " bytes";
  }
  std::remove(cut.c_str());
  std::remove(path.c_str());
}

TEST(MappedSnapshot, BitCorruptionAnywhereIsRejected) {
  const Dataset dataset = GenerateCity(CityProfile::Testing(60, 19));
  const GatIndex index(dataset, GatConfig{.depth = 4, .memory_levels = 2});
  const std::string path = TempPath("mapped_corrupt.gats");
  ASSERT_TRUE(SaveSnapshot(index, path));
  const std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 64u);

  const std::string mutated = TempPath("mapped_mutated.gats");
  for (size_t pos = 0; pos < bytes.size();
       pos += (pos < 16 ? 1 : 131)) {  // every header byte, then strided
    std::string copy = bytes;
    copy[pos] = static_cast<char>(copy[pos] ^ 0x5C);
    WriteFileBytes(mutated, copy);
    EXPECT_EQ(MappedSnapshot::Load(mutated), nullptr)
        << "byte " << pos << " flipped";
  }
  std::remove(mutated.c_str());
  std::remove(path.c_str());
}

TEST(MappedSnapshot, ConfigAndFingerprintGatingMatchesLoadSnapshot) {
  const Dataset dataset = GenerateCity(CityProfile::Testing(60, 11));
  const GatConfig saved{.depth = 5, .memory_levels = 3, .tas_intervals = 2};
  const GatIndex index(dataset, saved);
  const uint32_t fingerprint = DatasetFingerprint(dataset);
  const std::string path = TempPath("mapped_gating.gats");
  ASSERT_TRUE(SaveSnapshot(index, path, fingerprint));

  MappedSnapshotOptions ok;
  ok.expected = &saved;
  ok.expected_fingerprint = fingerprint;
  EXPECT_NE(MappedSnapshot::Load(path, ok), nullptr);
  EXPECT_NE(MappedSnapshot::Load(path), nullptr);  // checks waived

  GatConfig other = saved;
  other.depth = 6;
  MappedSnapshotOptions bad_config;
  bad_config.expected = &other;
  EXPECT_EQ(MappedSnapshot::Load(path, bad_config), nullptr);

  MappedSnapshotOptions bad_pairing;
  bad_pairing.expected_fingerprint = fingerprint ^ 0x1234u;
  EXPECT_EQ(MappedSnapshot::Load(path, bad_pairing), nullptr);
  std::remove(path.c_str());
}

TEST(MappedSnapshot, MappingEndingMidBlockServesCorrectly) {
  // Snapshot sizes are never block-aligned, so the last cache block is
  // partial; with a block size larger than the whole file, *every* read
  // lands in one partial block. Both must serve and verify correctly.
  const Dataset dataset = GenerateCity(CityProfile::Testing(150, 23));
  const GatIndex built(dataset, GatConfig{.depth = 5, .memory_levels = 3});
  const std::string path = TempPath("mapped_midblock.gats");
  ASSERT_TRUE(SaveSnapshot(built, path));
  const auto file_bytes = std::filesystem::file_size(path);

  const GatSearcher fresh(dataset, built);
  for (const uint32_t block_bytes : {512u, 4096u, 1u << 20}) {
    SCOPED_TRACE(block_bytes);
    ASSERT_NE(file_bytes % block_bytes, 0u);  // the premise of the test
    MappedSnapshotOptions options;
    options.cache_config.block_bytes = block_bytes;
    const LoadedSnapshot snap = LoadedSnapshot::LoadMapped(path, options);
    ASSERT_TRUE(snap);
    const GatSearcher mapped(dataset, *snap);
    for (const Query& q : TestQueries(dataset, 41, 5)) {
      SearchStats fresh_stats, mapped_stats;
      ASSERT_EQ(fresh.Search(q, 9, QueryKind::kAtsq, &fresh_stats),
                mapped.Search(q, 9, QueryKind::kAtsq, &mapped_stats));
      EXPECT_EQ(mapped_stats.disk_reads, fresh_stats.disk_reads);
    }
  }
  std::remove(path.c_str());
}

TEST(MappedSnapshot, ReadOnlySnapshotFileServes) {
  const Dataset dataset = GenerateCity(CityProfile::Testing(80, 29));
  const GatIndex built(dataset, GatConfig{.depth = 4, .memory_levels = 2});
  const std::string path = TempPath("mapped_readonly.gats");
  ASSERT_TRUE(SaveSnapshot(built, path));
  ASSERT_EQ(::chmod(path.c_str(), 0444), 0);

  const LoadedSnapshot snap = LoadedSnapshot::LoadMapped(path);
  ASSERT_TRUE(snap);
  const GatSearcher fresh(dataset, built);
  const GatSearcher mapped(dataset, *snap);
  for (const Query& q : TestQueries(dataset, 43, 5)) {
    EXPECT_EQ(fresh.Search(q, 9, QueryKind::kAtsq),
              mapped.Search(q, 9, QueryKind::kAtsq));
  }
  ::chmod(path.c_str(), 0644);
  std::remove(path.c_str());
}

TEST(MappedSnapshot, EmptyShardSnapshotServes) {
  // An empty dataset builds a valid index over the fallback grid space;
  // its snapshot must mmap-serve like any other (the empty-shard
  // cold-start path).
  Dataset empty;
  empty.Finalize();
  const GatIndex built(empty);
  const std::string path = TempPath("mapped_empty.gats");
  ASSERT_TRUE(SaveSnapshot(built, path, DatasetFingerprint(empty)));

  MappedSnapshotOptions options;
  options.expected_fingerprint = DatasetFingerprint(empty);
  const LoadedSnapshot snap = LoadedSnapshot::LoadMapped(path, options);
  ASSERT_TRUE(snap);
  EXPECT_EQ(snap->config(), built.config());

  const GatSearcher searcher(empty, *snap);
  const Dataset query_frame = GenerateCity(CityProfile::Testing(20, 3));
  for (const Query& q : TestQueries(query_frame, 17, 3)) {
    EXPECT_TRUE(searcher.Search(q, 5, QueryKind::kAtsq).empty());
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Sharded mmap serving + prefetch
// ---------------------------------------------------------------------------

TEST(ShardedMmap, BitIdenticalAtOneTwoFourShards) {
  const Dataset dataset = GenerateCity(CityProfile::Testing(240, 61));
  const GatIndex single_index(dataset);
  const GatSearcher single(dataset, single_index);
  const auto queries = TestQueries(dataset, 71, 6);

  for (const uint32_t num_shards : {1u, 2u, 4u}) {
    SCOPED_TRACE(num_shards);
    const std::string dir =
        TempPath("sharded_mmap_" + std::to_string(num_shards));
    ShardOptions options;
    options.num_shards = num_shards;
    options.build_threads = 1;
    options.snapshot_dir = dir;
    options.mmap_disk_tier = true;
    options.cache_config.block_bytes = 1024;
    options.cache_config.capacity_bytes = 1 << 20;

    // Cold: built + snapshotted + immediately mmap-served.
    const ShardedIndex cold(dataset, {}, options);
    EXPECT_EQ(cold.shards_loaded_from_snapshot(), 0u);
    EXPECT_EQ(cold.shards_mmap_served(), num_shards);
    ASSERT_NE(cold.block_cache(), nullptr);

    // Warm: every shard restored straight from its mapping.
    const ShardedIndex warm(dataset, {}, options);
    EXPECT_EQ(warm.shards_loaded_from_snapshot(), num_shards);
    EXPECT_EQ(warm.shards_mmap_served(), num_shards);

    // In-memory reference over the same partition.
    ShardOptions plain;
    plain.num_shards = num_shards;
    plain.build_threads = 1;
    const ShardedIndex memory(dataset, {}, plain);

    const ShardedSearcher mapped(warm);
    const ShardedSearcher reference(memory);
    for (const Query& q : queries) {
      SearchStats mapped_stats, reference_stats;
      const ResultList got = mapped.Search(q, 9, QueryKind::kAtsq,
                                           &mapped_stats);
      const ResultList want = reference.Search(q, 9, QueryKind::kAtsq,
                                               &reference_stats);
      ASSERT_EQ(got, want);
      ASSERT_EQ(got, single.Search(q, 9, QueryKind::kAtsq));
      EXPECT_EQ(mapped_stats.disk_reads, reference_stats.disk_reads);
    }
    // The shards really did read through the shared cache.
    EXPECT_GT(warm.block_cache()->Snapshot().DemandLookups(), 0u);
    std::filesystem::remove_all(dir);
  }
}

TEST(Prefetch, WarmsPredictedRowsAndKeepsResultsIdentical) {
  const Dataset dataset = GenerateCity(CityProfile::Testing(240, 67));
  const GatIndex built(dataset);
  const std::string path = TempPath("prefetch.gats");
  ASSERT_TRUE(SaveSnapshot(built, path));
  const auto queries = TestQueries(dataset, 73, 8);

  MappedSnapshotOptions options;
  options.cache_config.block_bytes = 1024;
  options.cache_config.capacity_bytes = 8 << 20;  // everything fits
  const LoadedSnapshot snap = LoadedSnapshot::LoadMapped(path, options);
  ASSERT_TRUE(snap);
  const GatSearcher mapped(dataset, *snap);

  const PrefetchScheduler prefetcher({snap.index()},
                                     &snap.mapped()->cache());
  prefetcher.PrefetchBatch(queries);
  const auto prefetch_stats = prefetcher.stats();
  EXPECT_EQ(prefetch_stats.queries, queries.size());
  EXPECT_GT(prefetch_stats.rows_warmed, 0u);
  EXPECT_GT(snap.mapped()->cache().Snapshot().prefetched, 0u);

  // Warmed rows turn their first demand fetch into hits.
  SearchStats stats;
  (void)mapped.Search(queries.front(), 9, QueryKind::kAtsq, &stats);
  EXPECT_GT(stats.block_hits, 0u);

  // Through the engine: prefetching must never change answers, and the
  // batch reports its cache activity.
  const GatSearcher fresh(dataset, built);
  const QueryEngine reference(fresh, EngineOptions{.threads = 1});
  const BatchResult want = reference.Run(queries, 9, QueryKind::kAtsq);
  for (const uint32_t threads : {1u, 4u}) {
    SCOPED_TRACE(threads);
    const QueryEngine engine(
        mapped, EngineOptions{.threads = threads, .prefetcher = &prefetcher});
    const BatchResult got = engine.Run(queries, 9, QueryKind::kAtsq);
    ASSERT_EQ(got.results.size(), want.results.size());
    for (size_t i = 0; i < want.results.size(); ++i) {
      EXPECT_EQ(got.results[i], want.results[i]);
    }
    EXPECT_EQ(got.totals.disk_reads, want.totals.disk_reads);
    EXPECT_TRUE(got.storage.present);
    EXPECT_EQ(got.storage.block_bytes, 1024u);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gat
