// Tests for the order-sensitive match distance (Algorithm 4), the MIB
// validation, and the paper's Table III worked example.

#include "gat/core/order_match.h"

#include <gtest/gtest.h>

#include <vector>

#include "gat/core/match.h"
#include "gat/datagen/checkin_generator.h"
#include "gat/datagen/query_generator.h"

namespace gat {
namespace {

constexpr ActivityId kA = 0, kB = 1, kC = 2, kD = 3, kE = 4, kF = 5;

// Figure 1 / Table III fixture for Tr1, assembled straight from the
// distance matrices (see match_test.cc for the matrix source).
OrderMatchInput FigureOneTr1Input() {
  const std::vector<std::vector<ActivityId>> point_acts = {
      {kD}, {kA, kC}, {kB}, {kC}, {kD, kE}};
  const std::vector<std::vector<ActivityId>> query_acts = {
      {kA, kB}, {kC, kD}, {kE}};
  const std::vector<std::vector<double>> dist = {{2, 8, 16, 24, 32},
                                                 {14, 6, 3, 11, 20},
                                                 {33, 25, 17, 8, 1}};
  OrderMatchInput input;
  input.trajectory_length = 5;
  for (size_t qi = 0; qi < query_acts.size(); ++qi) {
    std::vector<MatchPoint> mp;
    for (size_t j = 0; j < point_acts.size(); ++j) {
      const ActivityMask mask = ComputeMask(query_acts[qi], point_acts[j]);
      if (mask == 0) continue;
      mp.push_back(MatchPoint{dist[qi][j], mask,
                              static_cast<PointIndex>(j)});
    }
    input.match_points.push_back(std::move(mp));
    input.activity_counts.push_back(static_cast<int>(query_acts[qi].size()));
  }
  return input;
}

OrderMatchInput FigureOneTr2Input() {
  const std::vector<std::vector<ActivityId>> point_acts = {
      {kA}, {kB, kC}, {kC, kD}, {kE}, {kF}};
  const std::vector<std::vector<ActivityId>> query_acts = {
      {kA, kB}, {kC, kD}, {kE}};
  const std::vector<std::vector<double>> dist = {{6, 8, 17, 26, 31},
                                                 {14, 13, 4, 13, 20},
                                                 {32, 28, 16, 7, 3}};
  OrderMatchInput input;
  input.trajectory_length = 5;
  for (size_t qi = 0; qi < query_acts.size(); ++qi) {
    std::vector<MatchPoint> mp;
    for (size_t j = 0; j < point_acts.size(); ++j) {
      const ActivityMask mask = ComputeMask(query_acts[qi], point_acts[j]);
      if (mask == 0) continue;
      mp.push_back(MatchPoint{dist[qi][j], mask,
                              static_cast<PointIndex>(j)});
    }
    input.match_points.push_back(std::move(mp));
    input.activity_counts.push_back(static_cast<int>(query_acts[qi].size()));
  }
  return input;
}

TEST(TableThreeExample, FullMatrixMatchesPaper) {
  std::vector<std::vector<double>> g;
  const double dmom = ComputeDmomMatrix(FigureOneTr1Input(), &g);
  EXPECT_DOUBLE_EQ(dmom, 56.0);
  ASSERT_EQ(g.size(), 3u);
  ASSERT_EQ(g[0].size(), 5u);
  // Table III, row i = 1.
  EXPECT_EQ(g[0][0], kInfDist);
  EXPECT_EQ(g[0][1], kInfDist);
  EXPECT_DOUBLE_EQ(g[0][2], 24.0);
  EXPECT_DOUBLE_EQ(g[0][3], 24.0);
  EXPECT_DOUBLE_EQ(g[0][4], 24.0);
  // Row i = 2.
  EXPECT_EQ(g[1][0], kInfDist);
  EXPECT_EQ(g[1][1], kInfDist);
  EXPECT_EQ(g[1][2], kInfDist);
  EXPECT_EQ(g[1][3], kInfDist);
  EXPECT_DOUBLE_EQ(g[1][4], 55.0);
  // Row i = 3.
  EXPECT_EQ(g[2][0], kInfDist);
  EXPECT_EQ(g[2][1], kInfDist);
  EXPECT_EQ(g[2][2], kInfDist);
  EXPECT_EQ(g[2][3], kInfDist);
  EXPECT_DOUBLE_EQ(g[2][4], 56.0);
}

TEST(TableThreeExample, Tr2OrderSensitiveEqualsOrderFree) {
  // The paper: "Tr2.MOM(Q) is the same as Tr2.MM(Q)" = 25.
  EXPECT_DOUBLE_EQ(
      MinOrderSensitiveMatchDistance(FigureOneTr2Input(), kInfDist), 25.0);
}

TEST(TableThreeExample, ThresholdPruningReturnsInfinity) {
  // With a running k-th best below 24, row i=1 already exceeds it.
  EXPECT_EQ(MinOrderSensitiveMatchDistance(FigureOneTr1Input(), 20.0),
            kInfDist);
  // A threshold above the true value must not prune.
  EXPECT_DOUBLE_EQ(MinOrderSensitiveMatchDistance(FigureOneTr1Input(), 60.0),
                   56.0);
  // Equal threshold must not prune either (pruning is strict >).
  EXPECT_DOUBLE_EQ(MinOrderSensitiveMatchDistance(FigureOneTr1Input(), 56.0),
                   56.0);
}

// ---------------------------------------------------------------------------
// Lemma 4 monotonicity on the Figure-1 matrix.
// ---------------------------------------------------------------------------

TEST(LemmaFour, MatrixMonotonicity) {
  std::vector<std::vector<double>> g;
  ComputeDmomMatrix(FigureOneTr1Input(), &g);
  // 1) Non-increasing along each row (larger window can only help).
  for (const auto& row : g) {
    for (size_t j = 1; j < row.size(); ++j) ASSERT_GE(row[j - 1], row[j]);
  }
  // 2) Non-decreasing down each column (more query points cost more).
  for (size_t j = 0; j < g[0].size(); ++j) {
    for (size_t i = 1; i < g.size(); ++i) ASSERT_LE(g[i - 1][j], g[i][j]);
  }
}

// ---------------------------------------------------------------------------
// Geometry-level wrapper + MIB validation.
// ---------------------------------------------------------------------------

Trajectory MakeTrajectory(
    std::vector<std::pair<Point, std::vector<ActivityId>>> pts) {
  std::vector<TrajectoryPoint> points;
  for (auto& [loc, acts] : pts) points.push_back(TrajectoryPoint{loc, acts});
  Trajectory tr(std::move(points));
  tr.NormalizeActivities();
  return tr;
}

TEST(Mib, BoundsComputedOverAnyMatchingPoint) {
  const auto tr = MakeTrajectory({{Point{0, 0}, {kA}},
                                  {Point{1, 0}, {kB}},
                                  {Point{2, 0}, {kA, kC}},
                                  {Point{3, 0}, {}}});
  const auto mib = ComputeMib(tr, QueryPoint{Point{0, 0}, {kA}});
  EXPECT_TRUE(mib.valid);
  EXPECT_EQ(mib.lb, 0u);
  EXPECT_EQ(mib.ub, 2u);
  const auto none = ComputeMib(tr, QueryPoint{Point{0, 0}, {kF}});
  EXPECT_FALSE(none.valid);
}

TEST(Mib, ValidationRejectsImpossibleOrder) {
  // b-points all strictly before a-points: query (a then b) is impossible.
  const auto tr = MakeTrajectory({{Point{0, 0}, {kB}},
                                  {Point{1, 0}, {kB}},
                                  {Point{2, 0}, {kA}}});
  Query ab({QueryPoint{Point{0, 0}, {kA}}, QueryPoint{Point{1, 0}, {kB}}});
  EXPECT_FALSE(PassesMibValidation(tr, ab));
  Query ba({QueryPoint{Point{0, 0}, {kB}}, QueryPoint{Point{1, 0}, {kA}}});
  EXPECT_TRUE(PassesMibValidation(tr, ba));
}

TEST(Mib, SharedPointSatisfiesBothQueryPoints) {
  // Equal indices are allowed ("smaller than or equal", Definition 7).
  const auto tr = MakeTrajectory({{Point{0, 0}, {kA, kB}}});
  Query q({QueryPoint{Point{0, 0}, {kA}}, QueryPoint{Point{0, 0}, {kB}}});
  EXPECT_TRUE(PassesMibValidation(tr, q));
  EXPECT_DOUBLE_EQ(MinOrderSensitiveMatchDistance(tr, q), 0.0);
}

TEST(Dmom, OrderConstraintForcesWorseMatch) {
  // a at index 2 (near), b at index 0 (near) — order a->b must use the far
  // b at index 3.
  const auto tr = MakeTrajectory({{Point{1, 0}, {kB}},
                                  {Point{5, 0}, {kA}},
                                  {Point{9, 0}, {kB}}});
  Query q({QueryPoint{Point{5, 0}, {kA}}, QueryPoint{Point{1, 0}, {kB}}});
  EXPECT_DOUBLE_EQ(MinMatchDistance(tr, q), 0.0 + 0.0);
  // Order-sensitive: b must come at/after a's match (index 1) -> index 2,
  // at distance 8 from the b query location.
  EXPECT_DOUBLE_EQ(MinOrderSensitiveMatchDistance(tr, q), 8.0);
}

TEST(Dmom, NoOrderSensitiveMatchDespitePointMatches) {
  // The case Section VI-B warns about: point matches exist for each query
  // point but cannot be ordered.
  const auto tr = MakeTrajectory({{Point{0, 0}, {kB}}, {Point{1, 0}, {kA}}});
  Query q({QueryPoint{Point{0, 0}, {kA}}, QueryPoint{Point{1, 0}, {kB}}});
  EXPECT_NE(MinMatchDistance(tr, q), kInfDist);
  EXPECT_EQ(MinOrderSensitiveMatchDistance(tr, q), kInfDist);
}

TEST(Dmom, EmptyQueryIsZero) {
  const auto tr = MakeTrajectory({{Point{0, 0}, {kA}}});
  EXPECT_DOUBLE_EQ(MinOrderSensitiveMatchDistance(tr, Query{}), 0.0);
}

TEST(Dmom, EmptyTrajectoryIsInfinite) {
  Trajectory tr;
  Query q({QueryPoint{Point{0, 0}, {kA}}});
  EXPECT_EQ(MinOrderSensitiveMatchDistance(tr, q), kInfDist);
}

TEST(Dmom, EmptyActivityQueryPointActsAsWildcard) {
  const auto tr = MakeTrajectory({{Point{0, 0}, {kA}}, {Point{1, 0}, {kB}}});
  Query q({QueryPoint{Point{0, 0}, {kA}},
           QueryPoint{Point{9, 9}, {}},  // no demands, contributes 0
           QueryPoint{Point{1, 0}, {kB}}});
  EXPECT_DOUBLE_EQ(MinOrderSensitiveMatchDistance(tr, q), 0.0);
}

// ---------------------------------------------------------------------------
// Lemma 3 property: Dmm <= Dmom on generated data, and tightness when the
// minimum point matches happen to be ordered.
// ---------------------------------------------------------------------------

class LemmaThreeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LemmaThreeTest, DmmLowerBoundsDmom) {
  const Dataset dataset = GenerateCity(CityProfile::Testing(120, GetParam()));
  QueryWorkloadParams wp;
  wp.num_queries = 10;
  wp.seed = GetParam() * 97 + 13;
  QueryGenerator qgen(dataset, wp);
  int finite_moms = 0;
  for (const Query& q : qgen.Workload()) {
    for (TrajectoryId t = 0; t < dataset.size(); ++t) {
      const auto& tr = dataset.trajectory(t);
      const double dmom = MinOrderSensitiveMatchDistance(tr, q);
      if (dmom == kInfDist) continue;
      ++finite_moms;
      const double dmm = MinMatchDistance(tr, q);
      ASSERT_LE(dmm, dmom + 1e-9);
    }
  }
  // The workload construction (queries sampled from real trajectories in
  // order) guarantees at least the source trajectories match.
  EXPECT_GT(finite_moms, 0);
}

TEST_P(LemmaThreeTest, MibNeverRejectsOrderSensitiveMatches) {
  // MIB validation may admit false positives but must not reject any
  // trajectory with a finite Dmom.
  const Dataset dataset = GenerateCity(CityProfile::Testing(100, GetParam()));
  QueryWorkloadParams wp;
  wp.num_queries = 8;
  wp.seed = GetParam() + 555;
  QueryGenerator qgen(dataset, wp);
  for (const Query& q : qgen.Workload()) {
    for (TrajectoryId t = 0; t < dataset.size(); ++t) {
      const auto& tr = dataset.trajectory(t);
      if (MinOrderSensitiveMatchDistance(tr, q) != kInfDist) {
        ASSERT_TRUE(PassesMibValidation(tr, q));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LemmaThreeTest, ::testing::Values(4, 5, 6));

}  // namespace
}  // namespace gat
