// Stress tests for the engine's concurrency primitives, written to give
// TSan (-fsanitize=thread, the CI `tsan` matrix leg) real interleavings
// to chew on: WorkStealingQueue steal races, executor task storms, and
// cross-batch pipelining through one QueryEngine.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "gat/datagen/checkin_generator.h"
#include "gat/datagen/query_generator.h"
#include "gat/engine/executor.h"
#include "gat/engine/query_engine.h"
#include "gat/engine/work_queue.h"
#include "gat/index/gat_index.h"
#include "gat/search/gat_search.h"

namespace gat {
namespace {

// ------------------------------------------------------ work-queue races

TEST(WorkQueueStress, ExactlyOnceUnderRepeatedContention) {
  // Many rounds of short queues: start/drain transitions are where a
  // double-hand-out or a lost index would hide. Uneven worker counts
  // force constant stealing.
  constexpr uint32_t kRounds = 200;
  static constexpr size_t kTasks = 64;
  constexpr uint32_t kWorkers = 5;
  for (uint32_t round = 0; round < kRounds; ++round) {
    WorkStealingQueue queue(kTasks, kWorkers);
    std::vector<std::atomic<uint32_t>> claimed(kTasks);
    std::vector<std::thread> threads;
    threads.reserve(kWorkers);
    for (uint32_t w = 0; w < kWorkers; ++w) {
      threads.emplace_back([&queue, &claimed, w] {
        size_t idx = 0;
        while (queue.TryPop(w, &idx)) {
          ASSERT_LT(idx, kTasks);
          claimed[idx].fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (auto& t : threads) t.join();
    for (size_t i = 0; i < kTasks; ++i) {
      ASSERT_EQ(claimed[i].load(), 1u) << "round " << round << " index " << i;
    }
  }
}

TEST(WorkQueueStress, AllWorkersStealFromOneLoadedStripe) {
  // Every task lands in stripe 0 (the other stripes are empty), so every
  // pop except worker 0's is a steal — the fetch_add race on one cursor
  // is maximally contended.
  constexpr size_t kTasks = 10000;
  constexpr uint32_t kWorkers = 8;
  // One stripe owns everything: build with 1 worker's striping, then pop
  // with kWorkers ids — TryPop tolerates ids beyond the stripe count
  // only if we size it up front, so emulate by giving workers 1..7 empty
  // stripes via a queue built for kWorkers where stripe 0 gets the bulk.
  WorkStealingQueue queue(kTasks, kWorkers);
  // Drain stripes 1..7 first so the parallel phase is pure stealing.
  size_t idx = 0;
  size_t predrained = 0;
  for (uint32_t w = 1; w < kWorkers; ++w) {
    const size_t stripe_len = kTasks / kWorkers;
    for (size_t i = 0; i < stripe_len; ++i) {
      ASSERT_TRUE(queue.TryPop(w, &idx));
      ++predrained;
    }
  }
  std::atomic<size_t> popped{0};
  std::vector<std::thread> threads;
  for (uint32_t w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&queue, &popped, w] {
      size_t i = 0;
      while (queue.TryPop(w, &i)) popped.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(predrained + popped.load(), kTasks);
}

// ------------------------------------------------------- executor storms

TEST(ExecutorStress, NestedGroupStormCompletes) {
  Executor executor(4);
  std::atomic<uint64_t> leaves{0};
  constexpr int kRounds = 50;
  for (int round = 0; round < kRounds; ++round) {
    TaskGroup outer(executor);
    for (int i = 0; i < 16; ++i) {
      outer.Submit([&executor, &leaves] {
        TaskGroup inner(executor);
        for (int j = 0; j < 4; ++j) {
          inner.Submit([&leaves] {
            leaves.fetch_add(1, std::memory_order_relaxed);
          });
        }
        inner.Wait();
      });
    }
    outer.Wait();
  }
  EXPECT_EQ(leaves.load(), uint64_t{kRounds} * 16 * 4);
}

// ------------------------------------------- cross-batch pipelined engine

class PipelineStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = GenerateCity(CityProfile::Testing(/*trajectories=*/150,
                                                 /*seed=*/7));
    index_ = std::make_unique<GatIndex>(dataset_);
    searcher_ = std::make_unique<GatSearcher>(dataset_, *index_);
    QueryWorkloadParams wp;
    wp.num_queries = 12;
    wp.seed = 31;
    queries_ = QueryGenerator(dataset_, wp).Workload();
    ASSERT_FALSE(queries_.empty());
  }

  Dataset dataset_;
  std::unique_ptr<GatIndex> index_;
  std::unique_ptr<GatSearcher> searcher_;
  std::vector<Query> queries_;
};

TEST_F(PipelineStressTest, ConcurrentBatchesStayBitIdentical) {
  QueryEngine single(*searcher_, EngineOptions{.threads = 1});
  const BatchResult want = single.Run(queries_, /*k=*/5, QueryKind::kAtsq);

  QueryEngine pooled(*searcher_, EngineOptions{.threads = 4});
  constexpr int kCallers = 6;
  constexpr int kBatchesPerCaller = 5;
  std::vector<std::thread> callers;
  std::atomic<int> mismatches{0};
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&] {
      for (int b = 0; b < kBatchesPerCaller; ++b) {
        const BatchResult got = pooled.Run(queries_, /*k=*/5,
                                           QueryKind::kAtsq);
        if (got.results.size() != want.results.size()) {
          mismatches.fetch_add(1);
          continue;
        }
        for (size_t i = 0; i < got.results.size(); ++i) {
          if (got.results[i] != want.results[i]) mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace gat
