// Tests for the geometry substrate: points, rectangles, distances.

#include <gtest/gtest.h>

#include <cmath>

#include "gat/geo/point.h"
#include "gat/geo/rect.h"
#include "gat/util/rng.h"

namespace gat {
namespace {

TEST(PointDistance, Euclidean) {
  EXPECT_DOUBLE_EQ(Distance(Point{0, 0}, Point{3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(Distance(Point{1, 1}, Point{1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(DistanceSquared(Point{0, 0}, Point{3, 4}), 25.0);
}

TEST(PointDistance, Symmetry) {
  Rng rng(99);
  for (int i = 0; i < 100; ++i) {
    const Point a{rng.NextDouble(-50, 50), rng.NextDouble(-50, 50)};
    const Point b{rng.NextDouble(-50, 50), rng.NextDouble(-50, 50)};
    EXPECT_DOUBLE_EQ(Distance(a, b), Distance(b, a));
  }
}

TEST(PointDistance, TriangleInequality) {
  Rng rng(100);
  for (int i = 0; i < 200; ++i) {
    const Point a{rng.NextDouble(0, 10), rng.NextDouble(0, 10)};
    const Point b{rng.NextDouble(0, 10), rng.NextDouble(0, 10)};
    const Point c{rng.NextDouble(0, 10), rng.NextDouble(0, 10)};
    EXPECT_LE(Distance(a, c), Distance(a, b) + Distance(b, c) + 1e-12);
  }
}

TEST(ProjectLonLat, MetroScaleAccuracy) {
  // Two points ~1 km apart near Los Angeles (34N).
  const Point a = ProjectLonLat(-118.2437, 34.0522, 34.0);
  const Point b = ProjectLonLat(-118.2437, 34.0612, 34.0);
  EXPECT_NEAR(Distance(a, b), 1.0, 0.02);  // 0.009 deg lat ~ 1.0007 km
}

TEST(Rect, EmptyAbsorbsPoints) {
  Rect r = Rect::Empty();
  EXPECT_TRUE(r.IsEmpty());
  r.Expand(Point{2, 3});
  EXPECT_FALSE(r.IsEmpty());
  EXPECT_TRUE(r.Contains(Point{2, 3}));
  EXPECT_DOUBLE_EQ(r.Area(), 0.0);
  r.Expand(Point{4, 1});
  EXPECT_DOUBLE_EQ(r.Width(), 2.0);
  EXPECT_DOUBLE_EQ(r.Height(), 2.0);
  EXPECT_DOUBLE_EQ(r.Area(), 4.0);
}

TEST(Rect, ContainsBoundary) {
  const Rect r{Point{0, 0}, Point{2, 2}};
  EXPECT_TRUE(r.Contains(Point{0, 0}));
  EXPECT_TRUE(r.Contains(Point{2, 2}));
  EXPECT_TRUE(r.Contains(Point{1, 2}));
  EXPECT_FALSE(r.Contains(Point{2.0001, 1}));
}

TEST(Rect, Intersects) {
  const Rect a{Point{0, 0}, Point{2, 2}};
  EXPECT_TRUE(a.Intersects(Rect{Point{1, 1}, Point{3, 3}}));
  EXPECT_TRUE(a.Intersects(Rect{Point{2, 2}, Point{3, 3}}));  // touching
  EXPECT_FALSE(a.Intersects(Rect{Point{2.1, 0}, Point{3, 1}}));
  EXPECT_TRUE(a.Intersects(a));
}

TEST(Rect, ExpandRect) {
  Rect a{Point{0, 0}, Point{1, 1}};
  a.Expand(Rect{Point{2, -1}, Point{3, 0.5}});
  EXPECT_EQ(a, (Rect{Point{0, -1}, Point{3, 1}}));
  // Expanding with an empty rect is a no-op.
  Rect b = a;
  b.Expand(Rect::Empty());
  EXPECT_EQ(a, b);
}

TEST(MinDist, InsideIsZero) {
  const Rect r{Point{0, 0}, Point{4, 4}};
  EXPECT_DOUBLE_EQ(MinDist(Point{2, 2}, r), 0.0);
  EXPECT_DOUBLE_EQ(MinDist(Point{0, 4}, r), 0.0);  // on the border
}

TEST(MinDist, AxisAndCorner) {
  const Rect r{Point{0, 0}, Point{4, 4}};
  EXPECT_DOUBLE_EQ(MinDist(Point{-3, 2}, r), 3.0);   // left face
  EXPECT_DOUBLE_EQ(MinDist(Point{2, 10}, r), 6.0);   // top face
  EXPECT_DOUBLE_EQ(MinDist(Point{7, 8}, r), 5.0);    // corner (3,4)
}

TEST(MinDist, LowerBoundsDistanceToAnyInnerPoint) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    Rect r{Point{rng.NextDouble(0, 5), rng.NextDouble(0, 5)}, Point{}};
    r.max = Point{r.min.x + rng.NextDouble(0, 5), r.min.y + rng.NextDouble(0, 5)};
    const Point q{rng.NextDouble(-10, 15), rng.NextDouble(-10, 15)};
    const Point inner{rng.NextDouble(r.min.x, r.max.x + 1e-12),
                      rng.NextDouble(r.min.y, r.max.y + 1e-12)};
    EXPECT_LE(MinDist(q, r), Distance(q, inner) + 1e-9);
  }
}

TEST(UnionArea, EnlargementMetric) {
  const Rect a{Point{0, 0}, Point{1, 1}};
  const Rect b{Point{2, 2}, Point{3, 3}};
  EXPECT_DOUBLE_EQ(UnionArea(a, b), 9.0);
  EXPECT_DOUBLE_EQ(UnionArea(a, a), 1.0);
}

TEST(Rect, MarginAndCenter) {
  const Rect r{Point{0, 0}, Point{4, 2}};
  EXPECT_DOUBLE_EQ(r.Margin(), 6.0);
  EXPECT_EQ(r.Center(), (Point{2, 1}));
}

}  // namespace
}  // namespace gat
