// Tests for the sharded serving layer: the round-robin partition, the
// parallel shard builds, and the central guarantee that ShardedSearcher
// answers bit-identically to a single GatIndex over the whole dataset.

#include "gat/shard/sharded_index.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "gat/datagen/checkin_generator.h"
#include "gat/datagen/query_generator.h"
#include "gat/engine/executor.h"
#include "gat/engine/query_engine.h"
#include "gat/search/gat_search.h"
#include "gat/shard/sharded_searcher.h"

namespace gat {
namespace {

std::vector<Query> TestQueries(const Dataset& dataset, uint64_t seed,
                               uint32_t count = 12) {
  QueryWorkloadParams wp;
  wp.num_queries = count;
  wp.seed = seed;
  QueryGenerator qgen(dataset, wp);
  return qgen.Workload();
}

TEST(Partition, RoundRobinIsStableAndPreservesGlobalFrame) {
  const Dataset dataset = GenerateCity(CityProfile::Testing(50, 17));
  const uint32_t kShards = 3;
  const auto shards = dataset.PartitionRoundRobin(kShards);
  ASSERT_EQ(shards.size(), kShards);

  size_t total = 0;
  for (uint32_t s = 0; s < kShards; ++s) {
    ASSERT_TRUE(shards[s].finalized());
    // Global frame preserved: bounding box, activity table, vocabulary.
    EXPECT_EQ(shards[s].bounding_box(), dataset.bounding_box());
    EXPECT_EQ(shards[s].num_distinct_activities(),
              dataset.num_distinct_activities());
    EXPECT_EQ(shards[s].vocabulary().size(), dataset.vocabulary().size());
    total += shards[s].size();

    // Stable mapping: local j in shard s is global j * N + s, with the
    // activity IDs untranslated.
    for (TrajectoryId local = 0; local < shards[s].size(); ++local) {
      const Trajectory& got = shards[s].trajectory(local);
      const Trajectory& want = dataset.trajectory(local * kShards + s);
      ASSERT_EQ(got.size(), want.size());
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].location, want[i].location);
        EXPECT_EQ(got[i].activities, want[i].activities);
      }
    }
  }
  EXPECT_EQ(total, dataset.size());
}

TEST(Partition, MoreShardsThanTrajectoriesLeavesEmptyShards) {
  const Dataset dataset = GenerateCity(CityProfile::Testing(3, 23));
  const auto shards = dataset.PartitionRoundRobin(8);
  ASSERT_EQ(shards.size(), 8u);
  for (uint32_t s = 0; s < 8; ++s) {
    EXPECT_EQ(shards[s].size(), s < dataset.size() ? 1u : 0u);
  }
  // Empty shards still carry the global frame and can back an index.
  const ShardedIndex sharded(dataset, {}, ShardOptions{.num_shards = 8});
  const ShardedSearcher searcher(sharded);
  for (const Query& q : TestQueries(dataset, 5, 3)) {
    EXPECT_NO_FATAL_FAILURE(searcher.Search(q, 2, QueryKind::kAtsq));
  }
}

TEST(Partition, EmptyShardsAnswerLikeTheSingleIndex) {
  // Regression: shards > trajectory count must stay bit-identical to
  // the monolithic index, sequentially and fanned out on an executor.
  const Dataset dataset = GenerateCity(CityProfile::Testing(5, 29));
  const GatIndex single_index(dataset);
  const GatSearcher single(dataset, single_index);
  const ShardedIndex sharded(dataset, {}, ShardOptions{.num_shards = 8});
  Executor executor(4);
  const ShardedSearcher sequential(sharded);
  const ShardedSearcher fanned(sharded, {}, &executor);
  for (const Query& q : TestQueries(dataset, 61, 6)) {
    for (const QueryKind kind : {QueryKind::kAtsq, QueryKind::kOatsq}) {
      const ResultList want = single.Search(q, 4, kind);
      ASSERT_EQ(sequential.Search(q, 4, kind), want);
      ASSERT_EQ(fanned.Search(q, 4, kind), want);
    }
  }
}

TEST(Partition, EmptyParentDatasetBuildsAndAnswersEmpty) {
  // Regression: an empty dataset has an empty bounding box; every shard
  // (all empty) must still build a valid index, snapshot-cache, and
  // answer zero results — never abort in the grid.
  Dataset empty;
  empty.Finalize();
  const std::string dir = ::testing::TempDir() + "/empty_parent_cache";
  std::filesystem::remove_all(dir);
  ShardOptions options;
  options.num_shards = 4;
  options.snapshot_dir = dir;
  const ShardedIndex cold(empty, {}, options);
  EXPECT_EQ(cold.shards_loaded_from_snapshot(), 0u);
  const ShardedIndex warm(empty, {}, options);
  EXPECT_EQ(warm.shards_loaded_from_snapshot(), 4u);

  Query q;
  q.Add(QueryPoint{Point{1.0, 2.0}, {0, 1}});
  for (const ShardedIndex* index : {&cold, &warm}) {
    const ShardedSearcher searcher(*index);
    for (const QueryKind kind : {QueryKind::kAtsq, QueryKind::kOatsq}) {
      EXPECT_TRUE(searcher.Search(q, 3, kind).empty());
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(Partition, EmptyShardSnapshotsWarmLoad) {
  // The empty shards of a sparse dataset must round-trip through the
  // snapshot cache exactly like populated ones.
  const Dataset dataset = GenerateCity(CityProfile::Testing(3, 23));
  const std::string dir = ::testing::TempDir() + "/sparse_shard_cache";
  std::filesystem::remove_all(dir);
  ShardOptions options;
  options.num_shards = 8;
  options.snapshot_dir = dir;
  const ShardedIndex cold(dataset, {}, options);
  EXPECT_EQ(cold.shards_loaded_from_snapshot(), 0u);
  const ShardedIndex warm(dataset, {}, options);
  EXPECT_EQ(warm.shards_loaded_from_snapshot(), 8u);
  const ShardedSearcher cold_searcher(cold);
  const ShardedSearcher warm_searcher(warm);
  for (const Query& q : TestQueries(dataset, 5, 3)) {
    ASSERT_EQ(warm_searcher.Search(q, 2, QueryKind::kAtsq),
              cold_searcher.Search(q, 2, QueryKind::kAtsq));
  }
  std::filesystem::remove_all(dir);
}

class ShardEquivalenceTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ShardEquivalenceTest, TopKBitIdenticalToSingleIndex) {
  const uint32_t num_shards = GetParam();
  const Dataset dataset = GenerateCity(CityProfile::Testing(200, 41));
  const GatIndex single_index(dataset);
  const GatSearcher single(dataset, single_index);

  // Built on a shared executor, searched both sequentially and with
  // per-query fan-out on the same pool: all three answers must be
  // bit-identical.
  Executor executor(4);
  const ShardedIndex sharded(
      dataset, {},
      ShardOptions{.num_shards = num_shards, .executor = &executor});
  const ShardedSearcher sequential(sharded);
  const ShardedSearcher fanned(sharded, {}, &executor);

  for (const Query& q : TestQueries(dataset, 123)) {
    for (const QueryKind kind : {QueryKind::kAtsq, QueryKind::kOatsq}) {
      for (const size_t k : {1u, 5u, 9u}) {
        const ResultList want = single.Search(q, k, kind);
        // operator== on SearchResult compares trajectory IDs and exact
        // double distances — bit-identical, not merely epsilon-close.
        ASSERT_EQ(sequential.Search(q, k, kind), want)
            << ToString(kind) << " shards=" << num_shards << " k=" << k;
        ASSERT_EQ(fanned.Search(q, k, kind), want)
            << "fan-out " << ToString(kind) << " shards=" << num_shards
            << " k=" << k;
      }
    }
  }
}

TEST_P(ShardEquivalenceTest, FanOutStatsMatchSequentialVisit) {
  // The merge happens after the group barrier in shard order, so the
  // summed counters — and the elapsed_ms summation order — are the same
  // whether the shards ran inline or as tasks. Only the disk critical
  // path differs: max over shards when fanned out, sum when sequential.
  const uint32_t num_shards = GetParam();
  const Dataset dataset = GenerateCity(CityProfile::Testing(200, 41));
  Executor executor(4);
  const ShardedIndex sharded(dataset, {},
                             ShardOptions{.num_shards = num_shards});
  const ShardedSearcher sequential(sharded);
  const ShardedSearcher fanned(sharded, {}, &executor);

  for (const Query& q : TestQueries(dataset, 77, 4)) {
    SearchStats seq_stats, fan_stats;
    sequential.Search(q, 5, QueryKind::kAtsq, &seq_stats);
    fanned.Search(q, 5, QueryKind::kAtsq, &fan_stats);
    EXPECT_EQ(fan_stats.candidates_retrieved, seq_stats.candidates_retrieved);
    EXPECT_EQ(fan_stats.tas_pruned, seq_stats.tas_pruned);
    EXPECT_EQ(fan_stats.distance_computations,
              seq_stats.distance_computations);
    EXPECT_EQ(fan_stats.disk_reads, seq_stats.disk_reads);
    EXPECT_EQ(seq_stats.CriticalDiskReads(), seq_stats.disk_reads);
    EXPECT_LE(fan_stats.CriticalDiskReads(), fan_stats.disk_reads);
    if (num_shards > 1) {
      // The slowest branch can never exceed the sum of all branches and
      // (for a query that reads at all) is at least 1/num_shards of it.
      EXPECT_GE(fan_stats.CriticalDiskReads() * num_shards,
                fan_stats.disk_reads);
    } else {
      EXPECT_EQ(fan_stats.CriticalDiskReads(), seq_stats.disk_reads);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, ShardEquivalenceTest,
                         ::testing::Values(1u, 2u, 4u));

TEST(ShardedSearcher, StatsAreResetPerQueryLikeEveryOtherSearcher) {
  const Dataset dataset = GenerateCity(CityProfile::Testing(100, 71));
  const ShardedIndex sharded(dataset, {}, ShardOptions{.num_shards = 2});
  const ShardedSearcher searcher(sharded);
  const auto queries = TestQueries(dataset, 11, 2);

  SearchStats fresh;
  searcher.Search(queries[0], 5, QueryKind::kAtsq, &fresh);
  // Reusing one stats object across queries must not accumulate.
  SearchStats reused;
  searcher.Search(queries[1], 5, QueryKind::kAtsq, &reused);
  searcher.Search(queries[0], 5, QueryKind::kAtsq, &reused);
  EXPECT_EQ(reused.candidates_retrieved, fresh.candidates_retrieved);
  EXPECT_EQ(reused.distance_computations, fresh.distance_computations);
  EXPECT_EQ(reused.disk_reads, fresh.disk_reads);
}

TEST(ShardedSearcher, BatchThroughQueryEngineMatchesSingleIndex) {
  const Dataset dataset = GenerateCity(CityProfile::Testing(150, 67));
  const GatIndex single_index(dataset);
  const GatSearcher single(dataset, single_index);
  const ShardedIndex sharded(dataset, {}, ShardOptions{.num_shards = 4});
  const ShardedSearcher fanned(sharded);

  const auto queries = TestQueries(dataset, 321, 16);
  const QueryEngine single_engine(single, EngineOptions{.threads = 1});
  const QueryEngine shard_engine(fanned, EngineOptions{.threads = 4});
  for (const QueryKind kind : {QueryKind::kAtsq, QueryKind::kOatsq}) {
    const BatchResult want = single_engine.Run(queries, 9, kind);
    const BatchResult got = shard_engine.Run(queries, 9, kind);
    ASSERT_EQ(got.results.size(), want.results.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      ASSERT_EQ(got.results[i], want.results[i]) << "query " << i;
    }
  }
}

TEST(ShardedSearcher, NestedFanOutInsideEngineTasksMatchesSingleIndex) {
  // The full production shape: engine batch tasks AND per-query shard
  // tasks on ONE executor — nested submission, no second pool. Answers
  // must stay bit-identical to the single-threaded monolithic run.
  const Dataset dataset = GenerateCity(CityProfile::Testing(150, 67));
  const GatIndex single_index(dataset);
  const GatSearcher single(dataset, single_index);

  Executor executor(4);
  const ShardedIndex sharded(
      dataset, {}, ShardOptions{.num_shards = 4, .executor = &executor});
  const ShardedSearcher fanned(sharded, {}, &executor);

  const auto queries = TestQueries(dataset, 321, 16);
  const QueryEngine single_engine(single, EngineOptions{.threads = 1});
  const QueryEngine shard_engine(fanned, EngineOptions{.executor = &executor});
  for (const QueryKind kind : {QueryKind::kAtsq, QueryKind::kOatsq}) {
    const BatchResult want = single_engine.Run(queries, 9, kind);
    const BatchResult got = shard_engine.Run(queries, 9, kind);
    ASSERT_EQ(got.results.size(), want.results.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      ASSERT_EQ(got.results[i], want.results[i]) << "query " << i;
    }
  }
}

TEST(ShardedIndex, SnapshotDirectoryIsASelfPrimingCache) {
  const Dataset dataset = GenerateCity(CityProfile::Testing(120, 83));
  const std::string dir = ::testing::TempDir() + "/shard_cache";
  std::filesystem::remove_all(dir);

  ShardOptions options;
  options.num_shards = 3;
  options.snapshot_dir = dir;

  // Cold start: nothing to load, everything built and saved.
  const ShardedIndex cold(dataset, {}, options);
  EXPECT_EQ(cold.shards_loaded_from_snapshot(), 0u);
  for (uint32_t s = 0; s < 3; ++s) {
    EXPECT_TRUE(std::filesystem::exists(ShardedIndex::SnapshotPath(dir, s, 3)));
  }

  // Warm start: every shard restored from its snapshot, same answers.
  const ShardedIndex warm(dataset, {}, options);
  EXPECT_EQ(warm.shards_loaded_from_snapshot(), 3u);
  const ShardedSearcher cold_searcher(cold);
  const ShardedSearcher warm_searcher(warm);
  for (const Query& q : TestQueries(dataset, 9)) {
    for (const QueryKind kind : {QueryKind::kAtsq, QueryKind::kOatsq}) {
      ASSERT_EQ(warm_searcher.Search(q, 9, kind),
                cold_searcher.Search(q, 9, kind));
    }
  }

  // A config change invalidates the cache instead of serving stale data.
  ShardOptions reconfigured = options;
  const GatConfig deeper{.depth = 7, .memory_levels = 5, .tas_intervals = 2};
  const ShardedIndex rebuilt(dataset, deeper, reconfigured);
  EXPECT_EQ(rebuilt.shards_loaded_from_snapshot(), 0u);
  EXPECT_EQ(rebuilt.shard_index(0)->config(), deeper);

  // A shard-count change produces differently named snapshots — also a
  // clean rebuild, not a mismatched load.
  ShardOptions resharded = options;
  resharded.num_shards = 2;
  const ShardedIndex recut(dataset, {}, resharded);
  EXPECT_EQ(recut.shards_loaded_from_snapshot(), 0u);
  const ShardedSearcher recut_searcher(recut);
  for (const Query& q : TestQueries(dataset, 9, 4)) {
    ASSERT_EQ(recut_searcher.Search(q, 9, QueryKind::kAtsq),
              cold_searcher.Search(q, 9, QueryKind::kAtsq));
  }
  std::filesystem::remove_all(dir);
}

TEST(ShardedIndex, StaleSnapshotOfDifferentDatasetIsRebuilt) {
  const std::string dir = ::testing::TempDir() + "/shard_stale";
  std::filesystem::remove_all(dir);
  ShardOptions options;
  options.num_shards = 2;
  options.snapshot_dir = dir;

  // Prime the cache with dataset A, then construct over other datasets
  // under the same file names and config: the dataset fingerprint must
  // force a rebuild, never a stale warm load.
  const Dataset a = GenerateCity(CityProfile::Testing(100, 51));
  const ShardedIndex primed(a, {}, options);
  EXPECT_EQ(primed.shards_loaded_from_snapshot(), 0u);

  // Different size...
  const Dataset smaller = GenerateCity(CityProfile::Testing(60, 52));
  const ShardedIndex rebuilt(smaller, {}, options);
  EXPECT_EQ(rebuilt.shards_loaded_from_snapshot(), 0u);
  EXPECT_EQ(rebuilt.shard_index(0)->tas().num_trajectories(),
            rebuilt.shard_dataset(0).size());

  // ...and the nasty case: same trajectory count, different content
  // (row counts match, only the fingerprint differs).
  const Dataset same_size = GenerateCity(CityProfile::Testing(60, 53));
  ASSERT_EQ(same_size.size(), smaller.size());
  const ShardedIndex recut(same_size, {}, options);
  EXPECT_EQ(recut.shards_loaded_from_snapshot(), 0u);

  // After rebuilding, the cache is coherent again for the last dataset.
  const ShardedIndex warm(same_size, {}, options);
  EXPECT_EQ(warm.shards_loaded_from_snapshot(), 2u);
  std::filesystem::remove_all(dir);
}

TEST(ShardedIndex, MemoryBreakdownSumsShards) {
  const Dataset dataset = GenerateCity(CityProfile::Testing(90, 29));
  const ShardedIndex sharded(dataset, {}, ShardOptions{.num_shards = 2});
  size_t main_total = 0;
  for (uint32_t s = 0; s < 2; ++s) {
    main_total += sharded.shard_index(s)->memory_breakdown().MainMemoryTotal();
  }
  EXPECT_EQ(sharded.memory_breakdown().MainMemoryTotal(), main_total);
  EXPECT_GT(main_total, 0u);
}

}  // namespace
}  // namespace gat
