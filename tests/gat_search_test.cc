// GAT searcher tests: correctness against the brute-force oracle across
// index/search configurations, degenerate queries, and failure injection.

#include "gat/search/gat_search.h"

#include <gtest/gtest.h>

#include "gat/baselines/brute_force.h"
#include "gat/datagen/checkin_generator.h"
#include "gat/datagen/query_generator.h"

namespace gat {
namespace {

struct GatConfigCase {
  int depth;
  int memory_levels;
  int tas_intervals;
  uint32_t lambda;
  uint32_t nearest_cells;
  bool tight_bound;
  bool use_tas;
};

class GatSearchConfigTest : public ::testing::TestWithParam<GatConfigCase> {};

TEST_P(GatSearchConfigTest, MatchesBruteForceOnBothQueryKinds) {
  const auto c = GetParam();
  const Dataset dataset = GenerateCity(CityProfile::Testing(250, 2024));
  GatConfig config;
  config.depth = c.depth;
  config.memory_levels = c.memory_levels;
  config.tas_intervals = c.tas_intervals;
  const GatIndex index(dataset, config);
  GatSearchParams params;
  params.lambda = c.lambda;
  params.nearest_cells = c.nearest_cells;
  params.use_tight_lower_bound = c.tight_bound;
  params.use_tas = c.use_tas;
  const GatSearcher gat(dataset, index, params);
  const BruteForceSearcher oracle(dataset);

  QueryWorkloadParams wp;
  wp.num_queries = 12;
  wp.seed = 999;
  QueryGenerator qgen(dataset, wp);
  for (const Query& q : qgen.Workload()) {
    for (const QueryKind kind : {QueryKind::kAtsq, QueryKind::kOatsq}) {
      const auto expected = oracle.Search(q, 9, kind);
      const auto actual = gat.Search(q, 9, kind);
      ASSERT_TRUE(SameDistances(actual, expected, 1e-7))
          << ToString(kind) << " depth=" << c.depth
          << " lambda=" << c.lambda;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, GatSearchConfigTest,
    ::testing::Values(
        GatConfigCase{8, 6, 2, 64, 10, true, true},    // paper defaults
        GatConfigCase{5, 3, 2, 64, 10, true, true},    // coarse grid
        GatConfigCase{1, 1, 2, 64, 10, true, true},    // degenerate grid
        GatConfigCase{8, 0, 2, 64, 10, true, true},    // all HICL on disk
        GatConfigCase{8, 8, 2, 64, 10, true, true},    // all HICL in memory
        GatConfigCase{8, 6, 1, 64, 10, true, true},    // single TAS interval
        GatConfigCase{8, 6, 8, 64, 10, true, true},    // many TAS intervals
        GatConfigCase{8, 6, 2, 1, 10, true, true},     // lambda = 1
        GatConfigCase{8, 6, 2, 5000, 10, true, true},  // lambda > dataset
        GatConfigCase{8, 6, 2, 64, 1, true, true},     // m = 1
        GatConfigCase{8, 6, 2, 64, 64, true, true},    // large m
        GatConfigCase{8, 6, 2, 64, 10, false, true},   // naive lower bound
        GatConfigCase{8, 6, 2, 64, 10, true, false},   // TAS disabled
        GatConfigCase{8, 6, 2, 64, 10, false, false}));

// ---------------------------------------------------------------------------
// Degenerate and failure-injection cases.
// ---------------------------------------------------------------------------

class GatSearchEdgeTest : public ::testing::Test {
 protected:
  GatSearchEdgeTest()
      : dataset_(GenerateCity(CityProfile::Testing(120, 555))),
        index_(dataset_),
        searcher_(dataset_, index_) {}

  Dataset dataset_;
  GatIndex index_;
  GatSearcher searcher_;
};

TEST_F(GatSearchEdgeTest, EmptyQueryReturnsNothing) {
  EXPECT_TRUE(searcher_.Atsq(Query{}, 5).empty());
  EXPECT_TRUE(searcher_.Oatsq(Query{}, 5).empty());
}

TEST_F(GatSearchEdgeTest, KZeroReturnsNothing) {
  Query q({QueryPoint{Point{1, 1}, {0}}});
  EXPECT_TRUE(searcher_.Atsq(q, 0).empty());
}

TEST_F(GatSearchEdgeTest, AllEmptyActivitySetsMatchEverythingAtZero) {
  Query q({QueryPoint{Point{1, 1}, {}}, QueryPoint{Point{2, 2}, {}}});
  const auto results = searcher_.Atsq(q, 5);
  ASSERT_EQ(results.size(), 5u);
  for (const auto& r : results) EXPECT_DOUBLE_EQ(r.distance, 0.0);
}

TEST_F(GatSearchEdgeTest, UnknownActivityYieldsNoResults) {
  // An activity ID beyond the vocabulary matches nothing.
  Query q({QueryPoint{Point{1, 1}, {999999}}});
  EXPECT_TRUE(searcher_.Atsq(q, 5).empty());
  EXPECT_TRUE(searcher_.Oatsq(q, 5).empty());
}

TEST_F(GatSearchEdgeTest, KLargerThanMatchCountReturnsAllMatches) {
  QueryWorkloadParams wp;
  wp.num_queries = 1;
  wp.seed = 13;
  QueryGenerator qgen(dataset_, wp);
  const Query q = qgen.Next();
  const BruteForceSearcher oracle(dataset_);
  const auto expected = oracle.Search(q, 100000, QueryKind::kAtsq);
  const auto actual = searcher_.Atsq(q, 100000);
  EXPECT_TRUE(SameDistances(actual, expected, 1e-7));
  EXPECT_LT(actual.size(), dataset_.size());  // not everything matches
}

TEST_F(GatSearchEdgeTest, QueryLocationOutsideBoundingBox) {
  // Locations far outside the indexed space still work (mdist clamps).
  const auto& box = dataset_.bounding_box();
  Query q({QueryPoint{Point{box.max.x + 500, box.max.y + 500},
                      {0}}});  // most frequent activity
  const BruteForceSearcher oracle(dataset_);
  const auto expected = oracle.Search(q, 3, QueryKind::kAtsq);
  const auto actual = searcher_.Atsq(q, 3);
  EXPECT_TRUE(SameDistances(actual, expected, 1e-7));
}

TEST_F(GatSearchEdgeTest, StatsArepopulated) {
  QueryWorkloadParams wp;
  wp.num_queries = 1;
  wp.seed = 14;
  QueryGenerator qgen(dataset_, wp);
  const Query q = qgen.Next();
  SearchStats stats;
  searcher_.Atsq(q, 9, &stats);
  EXPECT_GT(stats.candidates_retrieved, 0u);
  EXPECT_GT(stats.nodes_popped, 0u);
  EXPECT_GT(stats.rounds, 0u);
  EXPECT_GT(stats.distance_computations, 0u);
  EXPECT_GE(stats.elapsed_ms, 0.0);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST_F(GatSearchEdgeTest, TasPruningActuallyFires) {
  // Across a workload, the sketch should reject at least some candidates
  // (with M=2 on a Zipf vocabulary there are always mismatched candidates).
  QueryWorkloadParams wp;
  wp.num_queries = 20;
  wp.seed = 15;
  wp.activities_per_point = 4;
  QueryGenerator qgen(dataset_, wp);
  uint64_t pruned = 0;
  for (const Query& q : qgen.Workload()) {
    SearchStats stats;
    searcher_.Atsq(q, 9, &stats);
    pruned += stats.tas_pruned;
  }
  EXPECT_GT(pruned, 0u);
}

TEST_F(GatSearchEdgeTest, ResultsAreSortedAndDistinct) {
  QueryWorkloadParams wp;
  wp.num_queries = 10;
  wp.seed = 16;
  QueryGenerator qgen(dataset_, wp);
  for (const Query& q : qgen.Workload()) {
    const auto results = searcher_.Oatsq(q, 9);
    for (size_t i = 1; i < results.size(); ++i) {
      EXPECT_LE(results[i - 1].distance, results[i].distance);
      EXPECT_NE(results[i - 1].trajectory, results[i].trajectory);
    }
    for (const auto& r : results) EXPECT_NE(r.distance, kInfDist);
  }
}

TEST_F(GatSearchEdgeTest, OatsqDistancesDominateAtsq) {
  // Lemma 3 at the system level: for the same query, the i-th OATSQ
  // distance is >= the i-th ATSQ distance.
  QueryWorkloadParams wp;
  wp.num_queries = 10;
  wp.seed = 17;
  QueryGenerator qgen(dataset_, wp);
  for (const Query& q : qgen.Workload()) {
    const auto atsq = searcher_.Atsq(q, 9);
    const auto oatsq = searcher_.Oatsq(q, 9);
    for (size_t i = 0; i < std::min(atsq.size(), oatsq.size()); ++i) {
      EXPECT_LE(atsq[i].distance, oatsq[i].distance + 1e-9);
    }
  }
}

}  // namespace
}  // namespace gat
