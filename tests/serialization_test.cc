// Tests for dataset persistence (binary + text formats).

#include "gat/model/serialization.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "gat/datagen/checkin_generator.h"
#include "gat/model/dataset_stats.h"

namespace gat {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(Serialization, BinaryRoundTrip) {
  const Dataset original = GenerateCity(CityProfile::Testing(80, 21));
  const std::string path = TempPath("roundtrip.gatd");
  ASSERT_TRUE(SaveBinary(original, path));

  Dataset loaded;
  ASSERT_TRUE(LoadBinary(&loaded, path));
  ASSERT_EQ(loaded.size(), original.size());
  for (TrajectoryId t = 0; t < original.size(); ++t) {
    const auto& a = original.trajectory(t);
    const auto& b = loaded.trajectory(t);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].location, b[i].location);
      ASSERT_EQ(a[i].activities, b[i].activities);
    }
  }
  const auto sa = DatasetStats::Collect(original);
  const auto sb = DatasetStats::Collect(loaded);
  EXPECT_EQ(sa.num_activity_assignments, sb.num_activity_assignments);
  EXPECT_EQ(sa.num_distinct_activities, sb.num_distinct_activities);
  std::remove(path.c_str());
}

TEST(Serialization, BinaryRejectsGarbage) {
  const std::string path = TempPath("garbage.gatd");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a gat dataset";
  }
  Dataset d;
  EXPECT_FALSE(LoadBinary(&d, path));
  std::remove(path.c_str());
}

TEST(Serialization, BinaryMissingFile) {
  Dataset d;
  EXPECT_FALSE(LoadBinary(&d, TempPath("does_not_exist.gatd")));
}

TEST(Serialization, BinaryVersionMismatch) {
  const Dataset original = GenerateCity(CityProfile::Testing(20, 3));
  const std::string path = TempPath("future_version.gatd");
  ASSERT_TRUE(SaveBinary(original, path));
  {
    // The version field sits right after the 4-byte magic.
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(4);
    const uint32_t future_version = 99;
    f.write(reinterpret_cast<const char*>(&future_version),
            sizeof(future_version));
  }
  Dataset d;
  EXPECT_FALSE(LoadBinary(&d, path));
  std::remove(path.c_str());
}

TEST(Serialization, BinaryTruncatedFile) {
  const Dataset original = GenerateCity(CityProfile::Testing(30, 4));
  const std::string path = TempPath("whole.gatd");
  ASSERT_TRUE(SaveBinary(original, path));
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 16u);
  const std::string cut_path = TempPath("cut.gatd");
  for (const double fraction : {0.1, 0.5, 0.9}) {
    const size_t keep = static_cast<size_t>(bytes.size() * fraction);
    {
      std::ofstream out(cut_path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), keep);
    }
    Dataset d;
    EXPECT_FALSE(LoadBinary(&d, cut_path)) << "kept " << keep << " bytes";
  }
  std::remove(cut_path.c_str());
  std::remove(path.c_str());
}

TEST(Serialization, SaveRequiresFinalizedDataset) {
  Dataset d;
  EXPECT_FALSE(SaveBinary(d, TempPath("unfinalized.gatd")));
}

TEST(Serialization, TextFormatRoundTrip) {
  const std::string path = TempPath("city.gattxt");
  {
    std::ofstream out(path);
    out << "# comment line\n"
        << "traj alice\n"
        << "p 1.5 2.5 sushi,jogging\n"
        << "p 3.0 4.0\n"
        << "traj bob\n"
        << "p 0.0 0.0 sushi\n";
  }
  Dataset d;
  ASSERT_TRUE(LoadText(&d, path));
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d.trajectory(0).size(), 2u);
  EXPECT_EQ(d.trajectory(1).size(), 1u);
  // "sushi" occurs twice -> frequency rank 0; "jogging" once -> rank 1.
  EXPECT_EQ(d.vocabulary().Lookup("sushi"), 0u);
  EXPECT_EQ(d.vocabulary().Lookup("jogging"), 1u);
  EXPECT_EQ(d.trajectory(0)[0].activities, (std::vector<ActivityId>{0, 1}));
  EXPECT_TRUE(d.trajectory(0)[1].activities.empty());

  // Save and reload preserves everything.
  const std::string path2 = TempPath("city2.gattxt");
  ASSERT_TRUE(SaveText(d, path2));
  Dataset d2;
  ASSERT_TRUE(LoadText(&d2, path2));
  ASSERT_EQ(d2.size(), d.size());
  EXPECT_EQ(d2.trajectory(0)[0].activities, d.trajectory(0)[0].activities);
  std::remove(path.c_str());
  std::remove(path2.c_str());
}

TEST(Serialization, TextRejectsPointBeforeTrajectory) {
  const std::string path = TempPath("bad.gattxt");
  {
    std::ofstream out(path);
    out << "p 1.0 2.0 x\n";
  }
  Dataset d;
  EXPECT_FALSE(LoadText(&d, path));
  std::remove(path.c_str());
}

TEST(Serialization, TextRejectsUnknownTag) {
  const std::string path = TempPath("bad2.gattxt");
  {
    std::ofstream out(path);
    out << "traj u\nzzz 1 2\n";
  }
  Dataset d;
  EXPECT_FALSE(LoadText(&d, path));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gat
