// Tests for dataset persistence (binary + text formats).

#include "gat/model/serialization.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "gat/datagen/checkin_generator.h"
#include "gat/model/dataset_stats.h"

namespace gat {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(Serialization, BinaryRoundTrip) {
  const Dataset original = GenerateCity(CityProfile::Testing(80, 21));
  const std::string path = TempPath("roundtrip.gatd");
  ASSERT_TRUE(SaveBinary(original, path));

  Dataset loaded;
  ASSERT_TRUE(LoadBinary(&loaded, path));
  ASSERT_EQ(loaded.size(), original.size());
  for (TrajectoryId t = 0; t < original.size(); ++t) {
    const auto& a = original.trajectory(t);
    const auto& b = loaded.trajectory(t);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].location, b[i].location);
      ASSERT_EQ(a[i].activities, b[i].activities);
    }
  }
  const auto sa = DatasetStats::Collect(original);
  const auto sb = DatasetStats::Collect(loaded);
  EXPECT_EQ(sa.num_activity_assignments, sb.num_activity_assignments);
  EXPECT_EQ(sa.num_distinct_activities, sb.num_distinct_activities);
  std::remove(path.c_str());
}

TEST(Serialization, BinaryRejectsGarbage) {
  const std::string path = TempPath("garbage.gatd");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a gat dataset";
  }
  Dataset d;
  EXPECT_FALSE(LoadBinary(&d, path));
  std::remove(path.c_str());
}

TEST(Serialization, BinaryMissingFile) {
  Dataset d;
  EXPECT_FALSE(LoadBinary(&d, TempPath("does_not_exist.gatd")));
}

TEST(Serialization, SaveRequiresFinalizedDataset) {
  Dataset d;
  EXPECT_FALSE(SaveBinary(d, TempPath("unfinalized.gatd")));
}

TEST(Serialization, TextFormatRoundTrip) {
  const std::string path = TempPath("city.gattxt");
  {
    std::ofstream out(path);
    out << "# comment line\n"
        << "traj alice\n"
        << "p 1.5 2.5 sushi,jogging\n"
        << "p 3.0 4.0\n"
        << "traj bob\n"
        << "p 0.0 0.0 sushi\n";
  }
  Dataset d;
  ASSERT_TRUE(LoadText(&d, path));
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d.trajectory(0).size(), 2u);
  EXPECT_EQ(d.trajectory(1).size(), 1u);
  // "sushi" occurs twice -> frequency rank 0; "jogging" once -> rank 1.
  EXPECT_EQ(d.vocabulary().Lookup("sushi"), 0u);
  EXPECT_EQ(d.vocabulary().Lookup("jogging"), 1u);
  EXPECT_EQ(d.trajectory(0)[0].activities, (std::vector<ActivityId>{0, 1}));
  EXPECT_TRUE(d.trajectory(0)[1].activities.empty());

  // Save and reload preserves everything.
  const std::string path2 = TempPath("city2.gattxt");
  ASSERT_TRUE(SaveText(d, path2));
  Dataset d2;
  ASSERT_TRUE(LoadText(&d2, path2));
  ASSERT_EQ(d2.size(), d.size());
  EXPECT_EQ(d2.trajectory(0)[0].activities, d.trajectory(0)[0].activities);
  std::remove(path.c_str());
  std::remove(path2.c_str());
}

TEST(Serialization, TextRejectsPointBeforeTrajectory) {
  const std::string path = TempPath("bad.gattxt");
  {
    std::ofstream out(path);
    out << "p 1.0 2.0 x\n";
  }
  Dataset d;
  EXPECT_FALSE(LoadText(&d, path));
  std::remove(path.c_str());
}

TEST(Serialization, TextRejectsUnknownTag) {
  const std::string path = TempPath("bad2.gattxt");
  {
    std::ofstream out(path);
    out << "traj u\nzzz 1 2\n";
  }
  Dataset d;
  EXPECT_FALSE(LoadText(&d, path));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gat
