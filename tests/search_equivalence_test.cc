// The central integration test: on generated datasets, all four searchers
// of the paper (GAT, IL, RT, IRT) and the brute-force oracle must return
// identical top-k distance vectors for both ATSQ and OATSQ, across a grid
// of workload parameters (the paper's experiment dimensions).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "gat/baselines/brute_force.h"
#include "gat/baselines/il_search.h"
#include "gat/baselines/irt_search.h"
#include "gat/baselines/rt_search.h"
#include "gat/datagen/checkin_generator.h"
#include "gat/datagen/query_generator.h"
#include "gat/index/gat_index.h"
#include "gat/search/gat_search.h"

namespace gat {
namespace {

struct WorkloadCase {
  uint32_t k;
  uint32_t num_query_points;
  uint32_t activities_per_point;
  double diameter_km;
  uint64_t seed;
};

std::ostream& operator<<(std::ostream& os, const WorkloadCase& w) {
  return os << "k=" << w.k << " |Q|=" << w.num_query_points
            << " |q.Phi|=" << w.activities_per_point << " d=" << w.diameter_km
            << " seed=" << w.seed;
}

class SearchEquivalenceTest : public ::testing::TestWithParam<WorkloadCase> {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new Dataset(GenerateCity(CityProfile::Testing(300, 31415)));
    index_ = new GatIndex(*dataset_);
    gat_ = new GatSearcher(*dataset_, *index_);
    il_ = new IlSearcher(*dataset_);
    rt_ = new RtSearcher(*dataset_);
    irt_ = new IrtSearcher(*dataset_);
    oracle_ = new BruteForceSearcher(*dataset_);
  }

  static void TearDownTestSuite() {
    delete oracle_;
    delete irt_;
    delete rt_;
    delete il_;
    delete gat_;
    delete index_;
    delete dataset_;
    oracle_ = nullptr;
    irt_ = nullptr;
    rt_ = nullptr;
    il_ = nullptr;
    gat_ = nullptr;
    index_ = nullptr;
    dataset_ = nullptr;
  }

  static Dataset* dataset_;
  static GatIndex* index_;
  static GatSearcher* gat_;
  static IlSearcher* il_;
  static RtSearcher* rt_;
  static IrtSearcher* irt_;
  static BruteForceSearcher* oracle_;
};

Dataset* SearchEquivalenceTest::dataset_ = nullptr;
GatIndex* SearchEquivalenceTest::index_ = nullptr;
GatSearcher* SearchEquivalenceTest::gat_ = nullptr;
IlSearcher* SearchEquivalenceTest::il_ = nullptr;
RtSearcher* SearchEquivalenceTest::rt_ = nullptr;
IrtSearcher* SearchEquivalenceTest::irt_ = nullptr;
BruteForceSearcher* SearchEquivalenceTest::oracle_ = nullptr;

TEST_P(SearchEquivalenceTest, AllSearchersAgreeWithOracle) {
  const auto w = GetParam();
  QueryWorkloadParams wp;
  wp.num_query_points = w.num_query_points;
  wp.activities_per_point = w.activities_per_point;
  wp.diameter_km = w.diameter_km;
  wp.num_queries = 8;
  wp.seed = w.seed;
  QueryGenerator qgen(*dataset_, wp);

  const std::vector<const Searcher*> searchers = {gat_, il_, rt_, irt_};
  for (const Query& q : qgen.Workload()) {
    for (const QueryKind kind : {QueryKind::kAtsq, QueryKind::kOatsq}) {
      const auto expected = oracle_->Search(q, w.k, kind);
      for (const Searcher* s : searchers) {
        const auto actual = s->Search(q, w.k, kind);
        ASSERT_TRUE(SameDistances(actual, expected, 1e-7))
            << s->name() << " " << ToString(kind) << " {" << w << "}"
            << " expected " << expected.size() << " results, got "
            << actual.size();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperParameterGrid, SearchEquivalenceTest,
    ::testing::Values(
        // Effect of k (Figure 3 axis).
        WorkloadCase{1, 4, 3, 4.0, 1}, WorkloadCase{5, 4, 3, 4.0, 2},
        WorkloadCase{9, 4, 3, 4.0, 3}, WorkloadCase{25, 4, 3, 4.0, 4},
        // Effect of |Q| (Figure 4 axis).
        WorkloadCase{9, 1, 3, 4.0, 5}, WorkloadCase{9, 2, 3, 4.0, 6},
        WorkloadCase{9, 6, 3, 4.0, 7},
        // Effect of |q.Phi| (Figure 5 axis).
        WorkloadCase{9, 4, 1, 4.0, 8}, WorkloadCase{9, 4, 2, 4.0, 9},
        WorkloadCase{9, 4, 5, 4.0, 10},
        // Effect of delta(Q) (Figure 6 axis).
        WorkloadCase{9, 4, 3, 1.0, 11}, WorkloadCase{9, 4, 3, 8.0, 12},
        WorkloadCase{9, 4, 3, 15.0, 13}));

}  // namespace
}  // namespace gat
