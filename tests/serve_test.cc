// Tests for gat/serve: token-bucket admission edge cases, deadline
// semantics at every task boundary (admission, query start, shard
// sweep), priority classes, and the open-loop load driver's virtual-time
// determinism — all on an injectable ManualClock, so every outcome is a
// pure function of the schedule.

#include <gtest/gtest.h>

#include <algorithm>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "gat/common/clock.h"
#include "gat/common/query_context.h"
#include "gat/datagen/checkin_generator.h"
#include "gat/datagen/query_generator.h"
#include "gat/engine/executor.h"
#include "gat/engine/query_engine.h"
#include "gat/search/gat_search.h"
#include "gat/serve/front_door.h"
#include "gat/serve/load_driver.h"
#include "gat/serve/token_bucket.h"
#include "gat/shard/sharded_index.h"
#include "gat/shard/sharded_searcher.h"

namespace gat {
namespace {

std::vector<Query> TestQueries(const Dataset& dataset, uint64_t seed,
                               uint32_t count) {
  QueryWorkloadParams wp;
  wp.num_queries = count;
  wp.seed = seed;
  QueryGenerator qgen(dataset, wp);
  return qgen.Workload();
}

// ---------------------------------------------------------- TokenBucket

TEST(TokenBucket, StartsFullAndBurstBounds) {
  TokenBucket bucket(/*tokens_per_sec=*/10.0, /*burst=*/3.0);
  // The initial burst admits exactly 3 back-to-back requests.
  EXPECT_TRUE(bucket.TryAcquire(0));
  EXPECT_TRUE(bucket.TryAcquire(0));
  EXPECT_TRUE(bucket.TryAcquire(0));
  EXPECT_FALSE(bucket.TryAcquire(0));
}

TEST(TokenBucket, RefillsAtRateAndCapsAtBurst) {
  TokenBucket bucket(/*tokens_per_sec=*/10.0, /*burst=*/3.0);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(bucket.TryAcquire(0));
  EXPECT_FALSE(bucket.TryAcquire(0));
  // 10 tokens/s = one per 100ms. At +100ms exactly one is back.
  EXPECT_TRUE(bucket.TryAcquire(100'000));
  EXPECT_FALSE(bucket.TryAcquire(100'000));
  // A long idle period refills to burst, never beyond: 10 virtual
  // seconds would mint 100 tokens, but only 3 fit.
  EXPECT_TRUE(bucket.TryAcquire(10'200'000));
  EXPECT_TRUE(bucket.TryAcquire(10'200'000));
  EXPECT_TRUE(bucket.TryAcquire(10'200'000));
  EXPECT_FALSE(bucket.TryAcquire(10'200'000));
}

TEST(TokenBucket, ZeroRateNeverRefills) {
  TokenBucket bucket(/*tokens_per_sec=*/0.0, /*burst=*/2.0);
  EXPECT_TRUE(bucket.TryAcquire(0));
  EXPECT_TRUE(bucket.TryAcquire(0));
  // However long the clock advances, a zero-rate tenant stays starved.
  EXPECT_FALSE(bucket.TryAcquire(3'600'000'000ULL));
}

TEST(TokenBucket, ClockRewindMintsNothing) {
  TokenBucket bucket(/*tokens_per_sec=*/1000.0, /*burst=*/1.0);
  EXPECT_TRUE(bucket.TryAcquire(1'000'000));
  // Rewinding to 0 must not refill (and must not crash); the bucket
  // refills only once the clock passes its high-water mark again.
  EXPECT_FALSE(bucket.TryAcquire(0));
  EXPECT_FALSE(bucket.TryAcquire(1'000'000));
  EXPECT_TRUE(bucket.TryAcquire(1'001'000));
}

TEST(TokenBucket, FailedAcquireDrainsNothing) {
  TokenBucket bucket(/*tokens_per_sec=*/0.0, /*burst=*/1.5);
  EXPECT_TRUE(bucket.TryAcquire(0));   // 0.5 left
  EXPECT_FALSE(bucket.TryAcquire(0));  // refused, balance untouched
  EXPECT_DOUBLE_EQ(bucket.tokens(), 0.5);
}

// --------------------------------------------------------- QueryContext

TEST(QueryContext, ExpiryIsInclusiveAtTheDeadline) {
  ManualClock clock;
  QueryContext context;
  context.clock = &clock;
  context.deadline_micros = 1000;
  clock.SetMicros(999);
  EXPECT_FALSE(context.Expired());
  // "Expires exactly at check": now == deadline counts as expired.
  clock.SetMicros(1000);
  EXPECT_TRUE(context.Expired());
  clock.SetMicros(1001);
  EXPECT_TRUE(context.Expired());
}

TEST(QueryContext, NoDeadlineNeverExpires) {
  ManualClock clock;
  clock.SetMicros(1ULL << 60);
  QueryContext context;
  context.clock = &clock;
  EXPECT_FALSE(context.HasDeadline());
  EXPECT_FALSE(context.Expired());
}

// ----------------------------------------------------- Executor priority

TEST(Executor, LowPriorityYieldsToHigh) {
  // One worker, paused behind a gate task: everything else queues.
  Executor executor(1);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::vector<int> order;

  TaskGroup gate(executor);
  gate.Submit([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });

  TaskGroup low(executor, TaskPriority::kLow);
  TaskGroup high(executor, TaskPriority::kHigh);
  // Low submitted FIRST — strict priority must still run high first.
  for (int i = 0; i < 3; ++i) {
    low.Submit([&, i] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(100 + i);
    });
  }
  for (int i = 0; i < 3; ++i) {
    high.Submit([&, i] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(i);
    });
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  // Poll instead of Wait(): Wait() would *help* run this thread's own
  // group's tasks, racing the worker and blurring the dequeue order.
  // With the main thread hands-off, the single worker's strict
  // high-before-low pop order is the only order there is.
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (order.size() == 6) break;
    }
    std::this_thread::yield();
  }
  high.Wait();
  low.Wait();
  ASSERT_EQ(order.size(), 6u);
  // All high (0,1,2 in FIFO order) strictly before all low (100..102).
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 2);
  EXPECT_EQ(order[3], 100);
  EXPECT_EQ(order[4], 101);
  EXPECT_EQ(order[5], 102);
}

TEST(Executor, TasksSubmittedCountsEveryEnqueue) {
  Executor executor(2);
  const uint64_t before = executor.tasks_submitted();
  {
    TaskGroup group(executor);
    for (int i = 0; i < 5; ++i) group.Submit([] {});
  }
  {
    TaskGroup low(executor, TaskPriority::kLow);
    for (int i = 0; i < 2; ++i) low.Submit([] {});
  }
  EXPECT_EQ(executor.tasks_submitted() - before, 7u);
}

TEST(Executor, TaskPriorityForMapsBulkToLow) {
  EXPECT_EQ(TaskPriorityFor(nullptr), TaskPriority::kHigh);
  QueryContext interactive;
  EXPECT_EQ(TaskPriorityFor(&interactive), TaskPriority::kHigh);
  QueryContext bulk;
  bulk.priority = RequestPriority::kBulk;
  EXPECT_EQ(TaskPriorityFor(&bulk), TaskPriority::kLow);
}

// ------------------------------------------------------------ FrontDoor

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = GenerateCity(CityProfile::Testing(/*trajectories=*/200,
                                                 /*seed=*/29));
    index_ = std::make_unique<GatIndex>(dataset_);
    searcher_ = std::make_unique<GatSearcher>(dataset_, *index_);
    queries_ = TestQueries(dataset_, /*seed=*/7, /*count=*/16);
  }

  Dataset dataset_;
  std::unique_ptr<GatIndex> index_;
  std::unique_ptr<GatSearcher> searcher_;
  std::vector<Query> queries_;
};

TEST_F(ServeTest, PerTenantBucketsIsolateTenants) {
  ManualClock clock;
  QueryEngine engine(*searcher_, EngineOptions{.threads = 1});
  FrontDoorOptions options;
  options.clock = &clock;
  options.default_quota = TenantQuota{/*tokens_per_sec=*/0.0, /*burst=*/2.0};
  FrontDoor door(engine, options);

  // Tenant 1 exhausts its own burst; tenant 2's bucket is untouched.
  EXPECT_TRUE(door.TryAdmit(1));
  EXPECT_TRUE(door.TryAdmit(1));
  EXPECT_FALSE(door.TryAdmit(1));
  EXPECT_TRUE(door.TryAdmit(2));
  EXPECT_TRUE(door.TryAdmit(2));
  EXPECT_FALSE(door.TryAdmit(2));

  const FrontDoorCounters counters = door.counters();
  EXPECT_EQ(counters.admitted, 4u);
  EXPECT_EQ(counters.shed, 2u);
}

TEST_F(ServeTest, TenantQuotaOverridesApply) {
  ManualClock clock;
  QueryEngine engine(*searcher_, EngineOptions{.threads = 1});
  FrontDoorOptions options;
  options.clock = &clock;
  options.default_quota = TenantQuota{0.0, 1.0};
  options.tenant_quotas.push_back({7, TenantQuota{0.0, 3.0}});
  FrontDoor door(engine, options);

  EXPECT_TRUE(door.TryAdmit(0));
  EXPECT_FALSE(door.TryAdmit(0));  // default burst 1
  EXPECT_TRUE(door.TryAdmit(7));
  EXPECT_TRUE(door.TryAdmit(7));
  EXPECT_TRUE(door.TryAdmit(7));
  EXPECT_FALSE(door.TryAdmit(7));  // override burst 3
}

TEST_F(ServeTest, ShedRequestCreatesZeroExecutorTasks) {
  ManualClock clock;
  Executor executor(4);
  QueryEngine engine(*searcher_, EngineOptions{.executor = &executor});
  FrontDoorOptions options;
  options.clock = &clock;
  options.default_quota = TenantQuota{0.0, 1.0};
  FrontDoor door(engine, options);

  ServeRequest request;
  request.tenant = 0;
  request.queries = queries_;
  request.k = 5;

  // First request: admitted, runs on the pool.
  const uint64_t before_ok = executor.tasks_submitted();
  ServeResult ok = door.Serve(request);
  EXPECT_EQ(ok.status, ServeStatus::kOk);
  const uint64_t ok_tasks = executor.tasks_submitted() - before_ok;
  EXPECT_EQ(ok_tasks,
            std::min<uint64_t>(executor.threads(), queries_.size()));

  // Second request: bucket empty → shed, and the executor counter is
  // the proof that shedding did zero engine work.
  const uint64_t before_shed = executor.tasks_submitted();
  ServeResult shed = door.Serve(request);
  EXPECT_EQ(shed.status, ServeStatus::kShed);
  EXPECT_TRUE(shed.batch.results.empty());
  EXPECT_EQ(executor.tasks_submitted() - before_shed, 0u);
}

TEST_F(ServeTest, ExpiredAtAdmissionDoesZeroEngineWork) {
  ManualClock clock;
  Executor executor(4);
  QueryEngine engine(*searcher_, EngineOptions{.executor = &executor});
  FrontDoorOptions options;
  options.clock = &clock;
  FrontDoor door(engine, options);

  clock.SetMicros(5'000);
  ServeRequest request;
  request.queries = queries_;
  request.deadline_micros = 5'000;  // now == deadline → expired

  const uint64_t before = executor.tasks_submitted();
  ServeResult result = door.Serve(request);
  EXPECT_EQ(result.status, ServeStatus::kDeadlineExceeded);
  EXPECT_TRUE(result.batch.results.empty());
  EXPECT_EQ(executor.tasks_submitted() - before, 0u);

  const FrontDoorCounters counters = door.counters();
  EXPECT_EQ(counters.admitted, 1u);
  EXPECT_EQ(counters.deadline_misses, 1u);
  EXPECT_EQ(counters.completed, 0u);
}

TEST_F(ServeTest, DeadlineJustAheadOfNowCompletes) {
  // The boundary's other side: a deadline one microsecond in the future
  // is NOT expired at the entry check, and since the ManualClock never
  // advances during the batch, the request completes normally.
  ManualClock clock;
  QueryEngine engine(*searcher_, EngineOptions{.threads = 1});
  FrontDoorOptions options;
  options.clock = &clock;
  FrontDoor door(engine, options);

  clock.SetMicros(5'000);
  ServeRequest request;
  request.queries = queries_;
  request.deadline_micros = 5'001;

  ServeResult result = door.Serve(request);
  EXPECT_EQ(result.status, ServeStatus::kOk);
  ASSERT_EQ(result.batch.results.size(), queries_.size());
  EXPECT_EQ(result.batch.deadline_exceeded, 0u);
  EXPECT_EQ(door.counters().completed, 1u);
}

// A searcher wrapper that advances a ManualClock by a fixed tick after
// every completed Search — the deterministic stand-in for "each query
// burns real time", which lets a single-threaded batch expire midway.
class ClockAdvancingSearcher : public Searcher {
 public:
  ClockAdvancingSearcher(const Searcher& inner, ManualClock& clock,
                         uint64_t tick_micros)
      : inner_(inner), clock_(clock), tick_micros_(tick_micros) {}

  ResultList Search(const Query& query, size_t k, QueryKind kind,
                    SearchStats* stats = nullptr,
                    const QueryContext* context = nullptr) const override {
    ResultList out = inner_.Search(query, k, kind, stats, context);
    clock_.AdvanceMicros(tick_micros_);
    return out;
  }
  std::string name() const override { return inner_.name(); }

 private:
  const Searcher& inner_;
  ManualClock& clock_;
  const uint64_t tick_micros_;
};

TEST_F(ServeTest, MidBatchExpiryRefusesRemainingQueriesAndAllResults) {
  ManualClock clock;
  ClockAdvancingSearcher ticking(*searcher_, clock, /*tick_micros=*/1'000);
  QueryEngine engine(ticking, EngineOptions{.threads = 1});

  const std::vector<Query> batch_queries(queries_.begin(),
                                         queries_.begin() + 4);
  QueryContext context;
  context.clock = &clock;
  context.deadline_micros = 2'000;  // two 1ms queries fit, then expiry

  BatchResult batch = engine.Run(batch_queries, 5, QueryKind::kAtsq,
                                 &context);
  ASSERT_EQ(batch.statuses.size(), 4u);
  EXPECT_EQ(batch.statuses[0], QueryStatus::kOk);
  EXPECT_EQ(batch.statuses[1], QueryStatus::kOk);
  // After two ticks now == 2000 == deadline: expired exactly at the
  // boundary — the remaining queries are refused, not started.
  EXPECT_EQ(batch.statuses[2], QueryStatus::kDeadlineExceeded);
  EXPECT_EQ(batch.statuses[3], QueryStatus::kDeadlineExceeded);
  EXPECT_EQ(batch.deadline_exceeded, 2u);
  EXPECT_EQ(batch.totals.deadline_skips, 2u);
  EXPECT_TRUE(batch.results[2].empty());
  EXPECT_TRUE(batch.results[3].empty());

  // The completed prefix is bit-identical to an undeadlined run.
  BatchResult reference = engine.Run(batch_queries, 5, QueryKind::kAtsq);
  EXPECT_EQ(batch.results[0], reference.results[0]);
  EXPECT_EQ(batch.results[1], reference.results[1]);

  // And the front door maps any mid-batch expiry to a deadline miss
  // with every result cleared — never partial answers.
  clock.SetMicros(0);
  FrontDoorOptions options;
  options.clock = &clock;
  FrontDoor door(engine, options);
  ServeRequest request;
  request.queries = batch_queries;
  request.k = 5;
  request.deadline_micros = 2'000;
  ServeResult served = door.Serve(request);
  EXPECT_EQ(served.status, ServeStatus::kDeadlineExceeded);
  for (const ResultList& r : served.batch.results) EXPECT_TRUE(r.empty());
}

// ------------------------------------------------- Shard-boundary checks

TEST(ServeSharded, ExpiredQueryRefusesEveryShardSweep) {
  const Dataset dataset = GenerateCity(CityProfile::Testing(120, 31));
  const ShardedIndex sharded(dataset, {}, ShardOptions{.num_shards = 3});
  const ShardedSearcher searcher(sharded);
  const std::vector<Query> queries = TestQueries(dataset, 3, 4);

  ManualClock clock;
  clock.SetMicros(10'000);
  QueryContext context;
  context.clock = &clock;
  context.deadline_micros = 10'000;

  SearchStats stats;
  const ResultList results =
      searcher.Search(queries[0], 5, QueryKind::kAtsq, &stats, &context);
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(stats.deadline_skips, 1u);
  // The entry boundary refused the query before any shard visit: no
  // revision pinned, no disk touched.
  EXPECT_EQ(stats.index_pins, 0u);
  EXPECT_EQ(stats.disk_reads, 0u);
}

TEST(ServeSharded, UnexpiredContextIsBitIdenticalToNoContext) {
  const Dataset dataset = GenerateCity(CityProfile::Testing(120, 31));
  const ShardedIndex sharded(dataset, {}, ShardOptions{.num_shards = 3});
  const ShardedSearcher searcher(sharded);
  const std::vector<Query> queries = TestQueries(dataset, 3, 6);

  ManualClock clock;
  QueryContext context;
  context.clock = &clock;
  context.deadline_micros = 1'000'000;
  context.priority = RequestPriority::kBulk;

  for (const Query& query : queries) {
    SearchStats with_ctx;
    SearchStats without_ctx;
    const ResultList a =
        searcher.Search(query, 5, QueryKind::kAtsq, &with_ctx, &context);
    const ResultList b =
        searcher.Search(query, 5, QueryKind::kAtsq, &without_ctx);
    EXPECT_EQ(a, b);
    EXPECT_EQ(with_ctx.candidates_retrieved, without_ctx.candidates_retrieved);
    EXPECT_EQ(with_ctx.index_pins, without_ctx.index_pins);
    EXPECT_EQ(with_ctx.deadline_skips, 0u);
  }
}

// ------------------------------------------------------------ LoadDriver

TEST(LoadDriver, ScheduleIsDeterministicAndMeanPaced) {
  LoadScheduleParams params;
  params.arrivals_per_sec = 500.0;
  params.duration_ms = 400.0;
  params.seed = 99;
  const std::vector<ArrivalSpec> a = MakeOpenLoopSchedule(params);
  const std::vector<ArrivalSpec> b = MakeOpenLoopSchedule(params);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival_ms, b[i].arrival_ms);
    EXPECT_EQ(a[i].tenant, b[i].tenant);
    EXPECT_EQ(a[i].priority, b[i].priority);
  }
  // ~200 arrivals expected; the jittered-uniform gap is mean-preserving
  // so the count lands well within ±30%.
  EXPECT_GT(a.size(), 140u);
  EXPECT_LT(a.size(), 260u);
  for (size_t i = 1; i < a.size(); ++i) {
    EXPECT_GT(a[i].arrival_ms, a[i - 1].arrival_ms);
  }
}

class LoadDriverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = GenerateCity(CityProfile::Testing(150, 41));
    sharded_ = std::make_unique<ShardedIndex>(dataset_, GatConfig{},
                                              ShardOptions{.num_shards = 2});
    pool_ = TestQueries(dataset_, /*seed=*/13, /*count=*/32);
  }

  struct Observed {
    std::vector<ServeStatus> statuses;
    std::vector<ResultList> first_results;
  };

  // One full open-loop run at the given engine thread count. The
  // simulated timeline must not depend on `threads`.
  DriveOutcome RunAt(uint32_t threads, Observed* observed = nullptr) {
    ManualClock clock;
    std::unique_ptr<Executor> executor;
    if (threads > 1) executor = std::make_unique<Executor>(threads);
    ShardedSearcher searcher(*sharded_, {}, executor.get());
    EngineOptions engine_options;
    engine_options.threads = 1;
    if (executor != nullptr) engine_options.executor = executor.get();
    QueryEngine engine(searcher, engine_options);

    FrontDoorOptions door_options;
    door_options.clock = &clock;
    door_options.default_quota = TenantQuota{80.0, 20.0};
    FrontDoor door(engine, door_options);

    LoadScheduleParams params;
    params.arrivals_per_sec = 600.0;  // well past the 80/s buckets
    params.duration_ms = 500.0;
    params.seed = 7;
    const std::vector<ArrivalSpec> schedule = MakeOpenLoopSchedule(params);

    DriverOptions options;
    options.virtual_slots = 3;
    options.service_ms_per_query = 4.0;
    options.k = 5;
    ServeObserver observer;
    if (observed != nullptr) {
      observer = [observed](const ArrivalSpec&, const ServeResult& result) {
        observed->statuses.push_back(result.status);
        observed->first_results.push_back(
            result.batch.results.empty() ? ResultList{}
                                         : result.batch.results.front());
      };
    }
    return RunOpenLoop(door, clock, schedule, pool_, options, observer);
  }

  Dataset dataset_;
  std::unique_ptr<ShardedIndex> sharded_;
  std::vector<Query> pool_;
};

TEST_F(LoadDriverTest, OutcomesAreBitIdenticalAcrossThreadCounts) {
  Observed at1;
  Observed at4;
  const DriveOutcome one = RunAt(1, &at1);
  const DriveOutcome four = RunAt(4, &at4);

  // The whole point of virtual time: counters, latency vectors and
  // per-request outcomes are pure functions of the schedule.
  auto expect_identical = [](const ClassOutcome& a, const ClassOutcome& b) {
    EXPECT_EQ(a.offered, b.offered);
    EXPECT_EQ(a.admitted, b.admitted);
    EXPECT_EQ(a.shed, b.shed);
    EXPECT_EQ(a.deadline_misses, b.deadline_misses);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.latency_ms, b.latency_ms);
    EXPECT_EQ(a.totals.candidates_retrieved, b.totals.candidates_retrieved);
    EXPECT_EQ(a.totals.disk_reads, b.totals.disk_reads);
  };
  expect_identical(one.interactive, four.interactive);
  expect_identical(one.bulk, four.bulk);
  EXPECT_EQ(one.virtual_duration_ms, four.virtual_duration_ms);

  // Per-request statuses and answers, in event order.
  ASSERT_EQ(at1.statuses.size(), at4.statuses.size());
  EXPECT_EQ(at1.statuses, at4.statuses);
  ASSERT_EQ(at1.first_results.size(), at4.first_results.size());
  for (size_t i = 0; i < at1.first_results.size(); ++i) {
    EXPECT_EQ(at1.first_results[i], at4.first_results[i]) << i;
  }

  // Overload sanity: the 600/s offered load must actually shed against
  // 80/s buckets, and some work must complete.
  EXPECT_GT(one.interactive.shed + one.bulk.shed, 0u);
  EXPECT_GT(one.interactive.completed, 0u);
}

TEST_F(LoadDriverTest, InteractiveOvertakesBulkOnASingleSlot) {
  // Crafted schedule, one virtual slot: a long bulk train arrives
  // first, then interactive requests. Strict class priority must let
  // every interactive request jump the queued bulk requests — visible
  // as interactive latencies far below what FIFO would give them.
  ManualClock clock;
  ShardedSearcher searcher(*sharded_);
  QueryEngine engine(searcher, EngineOptions{.threads = 1});
  FrontDoorOptions door_options;
  door_options.clock = &clock;
  door_options.default_quota = TenantQuota{1e6, 1e6};  // admission off
  FrontDoor door(engine, door_options);

  std::vector<ArrivalSpec> schedule;
  for (int i = 0; i < 6; ++i) {
    ArrivalSpec bulk;
    bulk.arrival_ms = 1.0 + i;
    bulk.priority = RequestPriority::kBulk;
    bulk.num_queries = 1;
    bulk.pool_offset = static_cast<uint32_t>(i);
    schedule.push_back(bulk);
  }
  for (int i = 0; i < 3; ++i) {
    ArrivalSpec interactive;
    interactive.arrival_ms = 8.0 + i;
    interactive.priority = RequestPriority::kInteractive;
    interactive.num_queries = 1;
    interactive.pool_offset = static_cast<uint32_t>(6 + i);
    schedule.push_back(interactive);
  }

  DriverOptions options;
  options.virtual_slots = 1;
  options.service_ms_per_query = 10.0;
  options.k = 5;
  const DriveOutcome outcome =
      RunOpenLoop(door, clock, schedule, pool_, options);

  ASSERT_EQ(outcome.interactive.completed, 3u);
  ASSERT_EQ(outcome.bulk.completed, 6u);
  // FIFO would finish the 6 bulk requests (60ms of service) before the
  // first interactive one. With class priority, the interactive train
  // runs as soon as the in-flight bulk request drains: worst latency
  // covers at most (one residual bulk + the 3 interactive services).
  for (const double latency : outcome.interactive.latency_ms) {
    EXPECT_LT(latency, 40.0);
  }
  // Bulk pays for yielding: its tail waits behind the overtakers.
  EXPECT_GT(outcome.bulk.latency_ms.back(), 60.0);
}

}  // namespace
}  // namespace gat
