// Tests for the Morton space-filling curve.

#include "gat/geo/zorder.h"

#include <gtest/gtest.h>

#include "gat/util/rng.h"

namespace gat {
namespace {

TEST(ZOrder, KnownValues) {
  EXPECT_EQ(zorder::Encode(0, 0), 0u);
  EXPECT_EQ(zorder::Encode(1, 0), 1u);
  EXPECT_EQ(zorder::Encode(0, 1), 2u);
  EXPECT_EQ(zorder::Encode(1, 1), 3u);
  EXPECT_EQ(zorder::Encode(2, 0), 4u);
  EXPECT_EQ(zorder::Encode(3, 3), 15u);
}

TEST(ZOrder, SpreadCompactInverse) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const uint32_t v = rng.NextU32(1u << 16);
    EXPECT_EQ(zorder::CompactBits16(zorder::SpreadBits16(v)), v);
  }
}

class ZOrderRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(ZOrderRoundTrip, EncodeDecode) {
  const uint32_t axis = 1u << GetParam();
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    const uint32_t col = rng.NextU32(axis);
    const uint32_t row = rng.NextU32(axis);
    const uint32_t code = zorder::Encode(col, row);
    EXPECT_LT(static_cast<uint64_t>(code), uint64_t{axis} * axis);
    EXPECT_EQ(zorder::DecodeCol(code), col);
    EXPECT_EQ(zorder::DecodeRow(code), row);
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, ZOrderRoundTrip,
                         ::testing::Values(1, 2, 4, 8, 12, 16));

TEST(ZOrder, ParentChildRelation) {
  Rng rng(42);
  for (int i = 0; i < 500; ++i) {
    const uint32_t col = rng.NextU32(1u << 8);
    const uint32_t row = rng.NextU32(1u << 8);
    const uint32_t code = zorder::Encode(col, row);
    // Parent cell covers a 2x2 block: its coordinates are halved.
    EXPECT_EQ(zorder::Parent(code), zorder::Encode(col / 2, row / 2));
    // All four children map back to the parent.
    const uint32_t first = zorder::FirstChild(code);
    for (uint32_t c = first; c < first + 4; ++c) {
      EXPECT_EQ(zorder::Parent(c), code);
    }
  }
}

TEST(ZOrder, ChildrenCoverParentBlock) {
  const uint32_t code = zorder::Encode(3, 5);
  const uint32_t first = zorder::FirstChild(code);
  // Children occupy columns {6,7} x rows {10,11}.
  bool seen[2][2] = {};
  for (uint32_t c = first; c < first + 4; ++c) {
    const uint32_t col = zorder::DecodeCol(c);
    const uint32_t row = zorder::DecodeRow(c);
    ASSERT_GE(col, 6u);
    ASSERT_LE(col, 7u);
    ASSERT_GE(row, 10u);
    ASSERT_LE(row, 11u);
    seen[col - 6][row - 10] = true;
  }
  EXPECT_TRUE(seen[0][0] && seen[0][1] && seen[1][0] && seen[1][1]);
}

}  // namespace
}  // namespace gat
