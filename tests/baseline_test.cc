// Unit tests for the baseline searchers' index structures and behaviours
// that the equivalence test does not cover.

#include <gtest/gtest.h>

#include <algorithm>

#include "gat/baselines/brute_force.h"
#include "gat/baselines/il_search.h"
#include "gat/baselines/irt_search.h"
#include "gat/baselines/rt_search.h"
#include "gat/datagen/checkin_generator.h"
#include "gat/datagen/query_generator.h"
#include "gat/index/gat_index.h"
#include "gat/search/gat_search.h"

namespace gat {
namespace {

class BaselineTest : public ::testing::Test {
 protected:
  BaselineTest() : dataset_(GenerateCity(CityProfile::Testing(150, 888))) {}
  Dataset dataset_;
};

TEST_F(BaselineTest, IlCandidatesMatchScan) {
  IlSearcher il(dataset_);
  // For a few activity combinations, IL's intersection must equal a scan.
  for (const std::vector<ActivityId>& acts :
       {std::vector<ActivityId>{0}, {0, 1}, {2, 5}, {0, 3, 7}}) {
    std::vector<TrajectoryId> expected;
    for (TrajectoryId t = 0; t < dataset_.size(); ++t) {
      const auto available = dataset_.trajectory(t).ActivityUnion();
      if (std::includes(available.begin(), available.end(), acts.begin(),
                        acts.end())) {
        expected.push_back(t);
      }
    }
    EXPECT_EQ(il.CandidatesFor(acts), expected);
  }
}

TEST_F(BaselineTest, IlUnknownActivityYieldsNoCandidates) {
  IlSearcher il(dataset_);
  EXPECT_TRUE(il.CandidatesFor({999999}).empty());
  EXPECT_TRUE(il.CandidatesFor({0, 999999}).empty());
}

TEST_F(BaselineTest, IlEmptyActivityListMatchesEverything) {
  IlSearcher il(dataset_);
  EXPECT_EQ(il.CandidatesFor({}).size(), dataset_.size());
  EXPECT_GT(il.IndexBytes(), 0u);
}

TEST_F(BaselineTest, IlCandidateCountIndependentOfK) {
  // The paper: IL's cost is constant in k since it refines all candidates.
  IlSearcher il(dataset_);
  QueryWorkloadParams wp;
  wp.num_queries = 1;
  wp.seed = 3;
  QueryGenerator qgen(dataset_, wp);
  const Query q = qgen.Next();
  SearchStats s5, s25;
  il.Search(q, 5, QueryKind::kAtsq, &s5);
  il.Search(q, 25, QueryKind::kAtsq, &s25);
  EXPECT_EQ(s5.candidates_retrieved, s25.candidates_retrieved);
}

TEST_F(BaselineTest, GatExaminesNoMoreCandidatesThanIl) {
  // The mechanism behind Figure 3: GAT's spatial+activity pruning refines
  // no more candidates than activity-only IL (which refines every
  // trajectory covering the demanded activities). On larger datasets the
  // inequality is strict; the Figure-3 bench shows the gap.
  IlSearcher il(dataset_);
  GatIndex index(dataset_);
  GatSearcher gat(dataset_, index);
  QueryWorkloadParams wp;
  wp.num_queries = 15;
  wp.seed = 4;
  wp.diameter_km = 3.0;
  QueryGenerator qgen(dataset_, wp);
  uint64_t il_total = 0;
  uint64_t gat_total = 0;
  for (const Query& q : qgen.Workload()) {
    SearchStats si, sg;
    il.Search(q, 9, QueryKind::kAtsq, &si);
    gat.Search(q, 9, QueryKind::kAtsq, &sg);
    il_total += si.distance_computations;
    gat_total += sg.distance_computations;
  }
  EXPECT_LE(gat_total, il_total);
}

TEST_F(BaselineTest, RtAndIrtStopEarly) {
  // Both tree baselines must terminate without scanning every trajectory
  // on small-k queries (their whole point versus brute force). Uses a
  // larger dataset than the fixture: early termination needs enough
  // matches that the k-th best distance undercuts the stream radii.
  const Dataset big = GenerateCity(CityProfile::Testing(800, 889));
  RtSearcher rt(big);
  IrtSearcher irt(big);
  QueryWorkloadParams wp;
  wp.num_queries = 10;
  wp.seed = 5;
  wp.diameter_km = 4.0;
  QueryGenerator qgen(big, wp);
  uint64_t rt_cand = 0;
  uint64_t irt_cand = 0;
  const uint64_t total = 10 * big.size();
  for (const Query& q : qgen.Workload()) {
    SearchStats sr, si;
    rt.Search(q, 3, QueryKind::kAtsq, &sr);
    irt.Search(q, 3, QueryKind::kAtsq, &si);
    rt_cand += sr.candidates_retrieved;
    irt_cand += si.candidates_retrieved;
  }
  EXPECT_LT(rt_cand, total);
  EXPECT_LT(irt_cand, total);
  // IRT's activity filter retrieves no more candidates than RT.
  EXPECT_LE(irt_cand, rt_cand);
}

TEST_F(BaselineTest, BruteForceScansEverything) {
  BruteForceSearcher bf(dataset_);
  Query q({QueryPoint{Point{1, 1}, {0}}});
  SearchStats stats;
  bf.Search(q, 5, QueryKind::kAtsq, &stats);
  EXPECT_EQ(stats.candidates_retrieved, dataset_.size());
}

TEST_F(BaselineTest, SearcherNames) {
  EXPECT_EQ(IlSearcher(dataset_).name(), "IL");
  EXPECT_EQ(RtSearcher(dataset_).name(), "RT");
  EXPECT_EQ(IrtSearcher(dataset_).name(), "IRT");
  EXPECT_EQ(BruteForceSearcher(dataset_).name(), "BF");
}

}  // namespace
}  // namespace gat
