// Tests for live snapshot reload: the BlockCache file-generation /
// Unregister protocol, the parallel CRC sweep of MappedSnapshot::Load,
// and the epoch-guarded hot-swap (ShardedIndex::ReloadShard +
// PinShard) end to end.
//
// The load-bearing invariants:
//   * Crc32Combine folds chunk CRCs to exactly the sequential checksum,
//     so the parallel load sweep accepts/rejects identically;
//   * Unregister purges every resident block of the retired mapping and
//     the generation check makes a recycled file id airtight: a token
//     kept past its Unregister can neither hit the successor's blocks
//     nor resurrect its own — even racing the retirement;
//   * ReloadShard swaps atomically under fire: queries hammering the
//     index through any number of mid-flight equivalent-snapshot swaps
//     stay bit-identical to the unsharded reference, old revisions
//     drain before their blocks are purged, and a corrupted / truncated
//     / missing / wrong-dataset incoming snapshot leaves the serving
//     revision untouched.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "gat/datagen/checkin_generator.h"
#include "gat/datagen/query_generator.h"
#include "gat/engine/query_engine.h"
#include "gat/index/snapshot.h"
#include "gat/index/snapshot_format.h"
#include "gat/search/gat_search.h"
#include "gat/shard/sharded_index.h"
#include "gat/shard/sharded_searcher.h"
#include "gat/storage/block_cache.h"
#include "gat/storage/loaded_snapshot.h"
#include "gat/storage/mapped_snapshot.h"
#include "gat/storage/prefetch.h"
#include "gat/util/rng.h"

namespace gat {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<Query> TestQueries(const Dataset& dataset, uint64_t seed,
                               uint32_t count = 6) {
  QueryWorkloadParams wp;
  wp.num_queries = count;
  wp.seed = seed;
  QueryGenerator qgen(dataset, wp);
  return qgen.Workload();
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ---------------------------------------------------------------------------
// Crc32Combine
// ---------------------------------------------------------------------------

TEST(Crc32Combine, FoldsChunksToTheSequentialChecksum) {
  using snapshot_format::Crc32;
  using snapshot_format::Crc32Combine;
  Rng rng(20130715);
  std::string data(10000, '\0');
  for (char& c : data) c = static_cast<char>(rng.NextU32(256));

  const uint32_t whole = Crc32(data.data(), data.size());
  // Every split point of a two-chunk fold, strided; plus degenerate
  // empty chunks on either side.
  for (size_t cut : {size_t{0}, size_t{1}, size_t{511}, size_t{512},
                     size_t{4096}, data.size() - 1, data.size()}) {
    const uint32_t a = Crc32(data.data(), cut);
    const uint32_t b = Crc32(data.data() + cut, data.size() - cut);
    EXPECT_EQ(Crc32Combine(a, b, data.size() - cut), whole) << cut;
  }
  // Many-chunk fold at an awkward stride, like the load sweep's.
  const size_t stride = 739;
  uint32_t folded = Crc32(data.data(), std::min(stride, data.size()));
  for (size_t pos = stride; pos < data.size(); pos += stride) {
    const size_t len = std::min(stride, data.size() - pos);
    folded = Crc32Combine(folded, Crc32(data.data() + pos, len), len);
  }
  EXPECT_EQ(folded, whole);
}

// ---------------------------------------------------------------------------
// BlockCache: Unregister + file generations
// ---------------------------------------------------------------------------

TEST(BlockCacheReload, UnregisterPurgesEveryResidentBlock) {
  BlockCache cache(BlockCacheConfig{.block_bytes = 512,
                                    .capacity_bytes = 64 * 512,
                                    .shards = 4});
  const BlockFileToken keep = cache.RegisterFile();
  const BlockFileToken retire = cache.RegisterFile();
  for (uint64_t b = 0; b < 8; ++b) {
    cache.Publish(keep, b);
    cache.Publish(retire, b);
  }
  ASSERT_EQ(cache.ResidentBlocks(), 16u);

  cache.Unregister(retire);
  const BlockCacheStats stats = cache.Snapshot();
  EXPECT_EQ(stats.invalidated, 8u);
  EXPECT_EQ(stats.files_retired, 1u);
  EXPECT_EQ(cache.ResidentBlocks(), 8u);  // the other file is untouched
  for (uint64_t b = 0; b < 8; ++b) {
    EXPECT_TRUE(cache.Touch(keep, b));
  }
  // Idempotent: re-retiring the same token is a counted no-op.
  cache.Unregister(retire);
  EXPECT_EQ(cache.Snapshot().files_retired, 1u);
}

TEST(BlockCacheReload, FileIdReuseAcrossGenerationsCannotAlias) {
  BlockCache cache(BlockCacheConfig{.block_bytes = 512,
                                    .capacity_bytes = 64 * 512,
                                    .shards = 1});
  const BlockFileToken old_gen = cache.RegisterFile();
  for (uint64_t b = 0; b < 4; ++b) cache.Publish(old_gen, b);
  cache.Unregister(old_gen);

  // The slot recycles: same id, newer generation.
  const BlockFileToken new_gen = cache.RegisterFile();
  ASSERT_EQ(new_gen.id, old_gen.id);
  ASSERT_NE(new_gen.generation, old_gen.generation);

  // The successor namespace starts empty — nothing of the old
  // generation survived the purge.
  for (uint64_t b = 0; b < 4; ++b) {
    EXPECT_FALSE(cache.Touch(new_gen, b));
  }
  // A straggler still holding the retired token: lookups always miss
  // (they may be aliased by the successor's blocks) and publishes are
  // dropped (they would resurrect purged blocks into the recycled id).
  cache.Publish(new_gen, 0);
  EXPECT_FALSE(cache.Touch(old_gen, 0));   // resident for new_gen only
  cache.Publish(old_gen, 1);               // dropped
  EXPECT_FALSE(cache.Touch(new_gen, 1));
  EXPECT_FALSE(cache.Warm(old_gen, 0));
  EXPECT_GT(cache.Snapshot().stale_drops, 0u);
  // The successor's own view is exact.
  EXPECT_TRUE(cache.Touch(new_gen, 0));
}

TEST(BlockCacheReload, ConcurrentStaleOpsNeverLeakIntoTheSuccessor) {
  // TSan exercise of the retire/lookup race: workers hammer a token
  // while the main thread unregisters it and recycles the id. The
  // generation re-check under the shard mutex must drop every straggler
  // operation — after the dust settles, nothing of the old generation
  // is resident.
  BlockCache cache(BlockCacheConfig{.block_bytes = 512,
                                    .capacity_bytes = 4096 * 512,
                                    .shards = 8});
  const BlockFileToken old_gen = cache.RegisterFile();
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&cache, old_gen, &stop, t] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t block = (static_cast<uint64_t>(t) << 8) | (i % 64);
        if (!cache.Touch(old_gen, block)) cache.Publish(old_gen, block);
        ++i;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  cache.Unregister(old_gen);  // racing the workers, by design
  const BlockFileToken new_gen = cache.RegisterFile();
  ASSERT_EQ(new_gen.id, old_gen.id);
  // Successor registered while stragglers still fire: its namespace
  // must be (and stay) empty until it publishes something itself.
  for (uint64_t b = 0; b < 64; ++b) {
    EXPECT_FALSE(cache.Touch(new_gen, b));
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : workers) w.join();
  // Deterministic stale ops on top of whatever the workers raced in
  // (on a loaded machine they may all have parked across the retire
  // window): a retired token neither hits nor inserts.
  cache.Publish(old_gen, 0);
  EXPECT_FALSE(cache.Touch(old_gen, 0));
  EXPECT_EQ(cache.ResidentBlocks(), 0u);
  EXPECT_GT(cache.Snapshot().stale_drops, 0u);
}

// ---------------------------------------------------------------------------
// MappedSnapshot: parallel CRC sweep
// ---------------------------------------------------------------------------

TEST(ParallelCrcSweep, AcceptsAndServesBitIdentically) {
  // 512-byte blocks over a ~200 KiB snapshot = ~400 blocks, past the
  // parallel-sweep threshold, so the executor path actually fans out.
  const Dataset dataset = GenerateCity(CityProfile::Testing(400, 7));
  const GatIndex built(dataset, GatConfig{.depth = 5, .memory_levels = 3});
  const std::string path = TempPath("parallel_crc.gats");
  ASSERT_TRUE(SaveSnapshot(built, path));
  ASSERT_GE(std::filesystem::file_size(path), 512u * 256u);

  Executor executor(4);
  MappedSnapshotOptions parallel_options;
  parallel_options.executor = &executor;
  parallel_options.cache_config.block_bytes = 512;
  const LoadedSnapshot parallel =
      LoadedSnapshot::LoadMapped(path, parallel_options);
  MappedSnapshotOptions sequential_options;
  sequential_options.cache_config.block_bytes = 512;
  const LoadedSnapshot sequential =
      LoadedSnapshot::LoadMapped(path, sequential_options);
  ASSERT_TRUE(parallel);
  ASSERT_TRUE(sequential);

  const GatSearcher a(dataset, *sequential);
  const GatSearcher b(dataset, *parallel);
  for (const Query& q : TestQueries(dataset, 99, 5)) {
    SearchStats sa, sb;
    ASSERT_EQ(a.Search(q, 9, QueryKind::kAtsq, &sa),
              b.Search(q, 9, QueryKind::kAtsq, &sb));
    // Identical per-block checksums too: the demand path verifies each
    // filled block against them, so serving through the parallel-swept
    // snapshot is the proof they match.
    EXPECT_EQ(sb.disk_reads, sa.disk_reads);
    EXPECT_EQ(sb.blocks_read, sa.blocks_read);
  }
  std::remove(path.c_str());
}

TEST(ParallelCrcSweep, RejectsCorruptionIdenticallyToSequential) {
  const Dataset dataset = GenerateCity(CityProfile::Testing(400, 11));
  const GatIndex built(dataset, GatConfig{.depth = 5, .memory_levels = 3});
  const std::string path = TempPath("parallel_crc_bad.gats");
  ASSERT_TRUE(SaveSnapshot(built, path));
  const std::string bytes = ReadFileBytes(path);
  ASSERT_GE(bytes.size(), 512u * 256u);

  Executor executor(4);
  const std::string mutated = TempPath("parallel_crc_mutated.gats");
  for (size_t pos = 16; pos < bytes.size(); pos += bytes.size() / 7) {
    std::string copy = bytes;
    copy[pos] = static_cast<char>(copy[pos] ^ 0x5C);
    WriteFileBytes(mutated, copy);
    MappedSnapshotOptions options;
    options.executor = &executor;
    options.cache_config.block_bytes = 512;
    EXPECT_EQ(MappedSnapshot::Load(mutated, options), nullptr)
        << "byte " << pos << " flipped";
  }
  std::remove(mutated.c_str());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// ShardedIndex::ReloadShard
// ---------------------------------------------------------------------------

struct ReloadFixture {
  explicit ReloadFixture(const std::string& name, uint32_t num_shards,
                         bool mmap)
      : dataset(GenerateCity(CityProfile::Testing(240, 61))),
        dir(TempPath(name)) {
    std::error_code ec;  // a crashed previous run may have left the dir
    std::filesystem::remove_all(dir, ec);
    ShardOptions options;
    options.num_shards = num_shards;
    options.build_threads = 1;
    options.snapshot_dir = dir;
    options.mmap_disk_tier = mmap;
    options.cache_config.block_bytes = 1024;
    options.cache_config.capacity_bytes = 1 << 20;
    sharded = std::make_unique<ShardedIndex>(dataset, GatConfig{}, options);
    // A second byte-identical generation of every shard snapshot — the
    // "incoming" files a rolling reload serves next.
    for (uint32_t shard = 0; shard < num_shards; ++shard) {
      gen_a.push_back(ShardedIndex::SnapshotPath(dir, shard, num_shards));
      gen_b.push_back(dir + "/incoming-" + std::to_string(shard) + ".gats");
      std::filesystem::copy_file(gen_a.back(), gen_b.back());
    }
  }
  ~ReloadFixture() {
    std::error_code ec;
    sharded.reset();
    std::filesystem::remove_all(dir, ec);
  }

  Dataset dataset;
  std::string dir;
  std::unique_ptr<ShardedIndex> sharded;
  std::vector<std::string> gen_a, gen_b;
};

TEST(ReloadShard, EquivalentSwapKeepsAnswersAndPurgesTheOldMapping) {
  ReloadFixture fx("reload_equivalent", 2, /*mmap=*/true);
  const GatIndex single(fx.dataset);
  const GatSearcher reference(fx.dataset, single);
  const ShardedSearcher searcher(*fx.sharded);
  const auto queries = TestQueries(fx.dataset, 71);

  ASSERT_EQ(fx.sharded->shard_epoch(0), 0u);
  const uint64_t retired_before =
      fx.sharded->block_cache()->Snapshot().files_retired;

  // Warm the cache through the current generation, then swap both
  // shards and verify: epochs bumped, old mappings retired (their
  // blocks purged), answers unchanged.
  for (const Query& q : queries) {
    SearchStats stats;
    ASSERT_EQ(searcher.Search(q, 9, QueryKind::kAtsq, &stats),
              reference.Search(q, 9, QueryKind::kAtsq));
    EXPECT_EQ(stats.index_pins, 2u);  // one pin per shard visit
  }
  ASSERT_TRUE(fx.sharded->ReloadShard(0, fx.gen_b[0]));
  ASSERT_TRUE(fx.sharded->ReloadShard(1, fx.gen_b[1]));
  EXPECT_EQ(fx.sharded->shard_epoch(0), 1u);
  EXPECT_EQ(fx.sharded->shard_epoch(1), 1u);
  EXPECT_EQ(fx.sharded->reloads_completed(), 2u);
  EXPECT_EQ(fx.sharded->reloads_failed(), 0u);
  EXPECT_EQ(fx.sharded->shards_mmap_served(), 2u);

  const BlockCacheStats stats = fx.sharded->block_cache()->Snapshot();
  EXPECT_EQ(stats.files_retired, retired_before + 2);
  EXPECT_GT(stats.invalidated, 0u);  // the warmed blocks were purged

  for (const Query& q : queries) {
    ASSERT_EQ(searcher.Search(q, 9, QueryKind::kAtsq),
              reference.Search(q, 9, QueryKind::kAtsq));
  }
}

TEST(ReloadShard, PinnedRevisionSurvivesTheSwapAndDrainsOnRelease) {
  ReloadFixture fx("reload_pin", 1, /*mmap=*/true);
  const auto queries = TestQueries(fx.dataset, 31, 3);
  const GatIndex single(fx.dataset);
  const GatSearcher reference(fx.dataset, single);

  auto pinned = fx.sharded->PinShard(0);
  ASSERT_EQ(pinned->epoch, 0u);
  const uint64_t retired_before =
      fx.sharded->block_cache()->Snapshot().files_retired;

  ASSERT_TRUE(fx.sharded->ReloadShard(0, fx.gen_b[0]));
  EXPECT_EQ(fx.sharded->shard_epoch(0), 1u);

  // The pinned (retired) revision still serves, bit-identically — its
  // mapping and tier cannot be torn down under the reader.
  const GatSearcher old_reader(fx.sharded->shard_dataset(0), *pinned->index);
  for (const Query& q : queries) {
    EXPECT_EQ(old_reader.Search(q, 9, QueryKind::kAtsq),
              reference.Search(q, 9, QueryKind::kAtsq));
  }
  // Not until the last pin drops is the old mapping unregistered.
  EXPECT_EQ(fx.sharded->block_cache()->Snapshot().files_retired,
            retired_before);
  pinned.reset();
  EXPECT_EQ(fx.sharded->block_cache()->Snapshot().files_retired,
            retired_before + 1);
}

TEST(ReloadShard, CorruptedIncomingSnapshotLeavesTheOldServing) {
  ReloadFixture fx("reload_corrupt", 1, /*mmap=*/true);
  const auto queries = TestQueries(fx.dataset, 43, 3);
  const GatIndex single(fx.dataset);
  const GatSearcher reference(fx.dataset, single);
  const ShardedSearcher searcher(*fx.sharded);

  // Corrupt, truncated, missing, and wrong-dataset incoming files: all
  // must fail the reload without touching the serving revision.
  const std::string bytes = ReadFileBytes(fx.gen_b[0]);
  std::string corrupt = bytes;
  corrupt[bytes.size() / 2] ^= 0x5C;
  const std::string corrupt_path = fx.dir + "/corrupt.gats";
  WriteFileBytes(corrupt_path, corrupt);
  EXPECT_FALSE(fx.sharded->ReloadShard(0, corrupt_path));

  const std::string truncated_path = fx.dir + "/truncated.gats";
  WriteFileBytes(truncated_path, bytes.substr(0, bytes.size() / 2));
  EXPECT_FALSE(fx.sharded->ReloadShard(0, truncated_path));

  EXPECT_FALSE(fx.sharded->ReloadShard(0, fx.dir + "/missing.gats"));

  // A valid snapshot of a *different* dataset: the fingerprint gate.
  const Dataset other = GenerateCity(CityProfile::Testing(120, 5));
  const GatIndex other_index(other);
  const std::string other_path = fx.dir + "/other.gats";
  ASSERT_TRUE(SaveSnapshot(other_index, other_path,
                           DatasetFingerprint(other)));
  EXPECT_FALSE(fx.sharded->ReloadShard(0, other_path));

  EXPECT_EQ(fx.sharded->reloads_failed(), 4u);
  EXPECT_EQ(fx.sharded->reloads_completed(), 0u);
  EXPECT_EQ(fx.sharded->shard_epoch(0), 0u);
  for (const Query& q : queries) {
    EXPECT_EQ(searcher.Search(q, 9, QueryKind::kAtsq),
              reference.Search(q, 9, QueryKind::kAtsq));
  }
}

TEST(ReloadShard, StreamModeReloadsWithoutAnMmapTier) {
  // snapshot_dir without mmap_disk_tier: revisions are heap-owned
  // indexes and ReloadShard goes through the stream loader — the epoch
  // guard is tier-independent.
  ReloadFixture fx("reload_stream", 2, /*mmap=*/false);
  ASSERT_EQ(fx.sharded->block_cache(), nullptr);
  const GatIndex single(fx.dataset);
  const GatSearcher reference(fx.dataset, single);
  const ShardedSearcher searcher(*fx.sharded);
  const auto queries = TestQueries(fx.dataset, 83, 4);

  ASSERT_TRUE(fx.sharded->ReloadShard(0, fx.gen_b[0]));
  ASSERT_TRUE(fx.sharded->ReloadShard(1, fx.gen_b[1]));
  EXPECT_EQ(fx.sharded->shard_epoch(0), 1u);
  for (const Query& q : queries) {
    EXPECT_EQ(searcher.Search(q, 9, QueryKind::kAtsq),
              reference.Search(q, 9, QueryKind::kAtsq));
  }
}

TEST(ReloadShard, QueriesStayBitIdenticalUnderContinuousSwaps) {
  // The TSan centerpiece: searchers (with executor fan-out and a
  // pin-aware prefetcher) hammer the index from several threads while a
  // reloader rolls equivalent snapshots across both shards. Every
  // answer must equal the precomputed reference; afterwards, every
  // retired generation must have been unregistered from the cache.
  ReloadFixture fx("reload_race", 2, /*mmap=*/true);
  const GatIndex single(fx.dataset);
  const GatSearcher reference(fx.dataset, single);
  const auto queries = TestQueries(fx.dataset, 71, 4);
  std::vector<ResultList> expected;
  for (const Query& q : queries) {
    expected.push_back(reference.Search(q, 9, QueryKind::kAtsq));
  }

  Executor executor(4);
  const ShardedSearcher searcher(*fx.sharded, {}, &executor);
  const PrefetchScheduler prefetcher(*fx.sharded);  // pins per query

  constexpr int kReloadsPerShard = 12;
  std::atomic<bool> stop{false};
  std::atomic<bool> diverged{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      uint64_t i = static_cast<uint64_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        const size_t qi = i++ % queries.size();
        if (i % 7 == 0) prefetcher.PrefetchQuery(queries[qi]);
        SearchStats stats;
        if (searcher.Search(queries[qi], 9, QueryKind::kAtsq, &stats) !=
                expected[qi] ||
            stats.index_pins != 2) {
          diverged.store(true, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  for (int round = 0; round < kReloadsPerShard; ++round) {
    for (uint32_t shard = 0; shard < 2; ++shard) {
      const auto& path =
          round % 2 == 0 ? fx.gen_b[shard] : fx.gen_a[shard];
      ASSERT_TRUE(fx.sharded->ReloadShard(shard, path, &executor));
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& r : readers) r.join();
  EXPECT_FALSE(diverged.load());
  EXPECT_EQ(fx.sharded->reloads_completed(), 2u * kReloadsPerShard);
  EXPECT_EQ(fx.sharded->reloads_failed(), 0u);
  EXPECT_EQ(fx.sharded->shard_epoch(0), kReloadsPerShard);

  // Every retired generation drained and unregistered: only the two
  // currently-serving mappings remain live in the cache.
  const BlockCacheStats stats = fx.sharded->block_cache()->Snapshot();
  EXPECT_EQ(stats.files_retired, 2u * kReloadsPerShard);

  // And the engine view: a batch run across a final pair of swaps is
  // bit-identical, with the cache's invalidation deltas visible in the
  // batch storage stats.
  const QueryEngine engine(
      searcher, EngineOptions{.executor = &executor,
                              .prefetcher = &prefetcher});
  const uint64_t invalidated_before =
      fx.sharded->block_cache()->Snapshot().invalidated;
  std::thread swapper([&] {
    ASSERT_TRUE(fx.sharded->ReloadShard(0, fx.gen_b[0]));
    ASSERT_TRUE(fx.sharded->ReloadShard(1, fx.gen_b[1]));
  });
  const BatchResult batch = engine.Run(queries, 9, QueryKind::kAtsq);
  swapper.join();
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(batch.results[i], expected[i]);
  }
  EXPECT_TRUE(batch.storage.present);
  const uint64_t invalidated_after =
      fx.sharded->block_cache()->Snapshot().invalidated;
  EXPECT_GE(invalidated_after, invalidated_before);
}

}  // namespace
}  // namespace gat
