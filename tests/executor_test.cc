// Tests for gat/engine/executor: task-group barriers, help-while-waiting,
// nested submission from inside tasks, and sharing one pool across
// concurrent submitters — the invariants QueryEngine, ShardedSearcher and
// ShardedIndex all lean on.

#include "gat/engine/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

namespace gat {
namespace {

TEST(Executor, ResolvesThreadCounts) {
  Executor four(4);
  EXPECT_EQ(four.threads(), 4u);
  Executor defaulted(0);
  EXPECT_GE(defaulted.threads(), 1u);
  EXPECT_GE(Executor::Default().threads(), 1u);
}

TEST(Executor, RunsEveryTaskExactlyOnce) {
  Executor executor(4);
  constexpr int kTasks = 200;
  std::vector<std::atomic<int>> ran(kTasks);
  TaskGroup group(executor);
  for (int i = 0; i < kTasks; ++i) {
    group.Submit([&ran, i] { ran[i].fetch_add(1); });
  }
  group.Wait();
  for (int i = 0; i < kTasks; ++i) EXPECT_EQ(ran[i].load(), 1) << i;
}

TEST(Executor, WaitIsIdempotentAndEmptyGroupReturnsImmediately) {
  Executor executor(2);
  TaskGroup empty(executor);
  empty.Wait();  // no tasks: must not block
  TaskGroup group(executor);
  std::atomic<int> ran{0};
  group.Submit([&ran] { ran.fetch_add(1); });
  group.Wait();
  group.Wait();  // second wait is a no-op
  EXPECT_EQ(ran.load(), 1);
}

TEST(Executor, DestructorWaitsForSubmittedTasks) {
  Executor executor(2);
  std::atomic<int> ran{0};
  {
    TaskGroup group(executor);
    for (int i = 0; i < 32; ++i) group.Submit([&ran] { ran.fetch_add(1); });
    // No explicit Wait: the destructor is the barrier.
  }
  EXPECT_EQ(ran.load(), 32);
}

TEST(Executor, SingleThreadedExecutorCompletesViaHelping) {
  // One worker plus the helping waiter must drain everything even when
  // tasks outnumber the pool many times over.
  Executor executor(1);
  std::atomic<int> ran{0};
  TaskGroup group(executor);
  for (int i = 0; i < 100; ++i) group.Submit([&ran] { ran.fetch_add(1); });
  group.Wait();
  EXPECT_EQ(ran.load(), 100);
}

TEST(Executor, NestedSubmissionFromInsideTasks) {
  // The ShardedSearcher shape: an outer task fans out subtasks on the
  // same executor and waits for them. Must complete at any pool size,
  // including 1 (everything degrades to helping).
  for (const uint32_t threads : {1u, 2u, 4u}) {
    Executor executor(threads);
    std::atomic<int> leaves{0};
    TaskGroup outer(executor);
    for (int i = 0; i < 8; ++i) {
      outer.Submit([&executor, &leaves] {
        TaskGroup inner(executor);
        for (int j = 0; j < 8; ++j) {
          inner.Submit([&leaves] { leaves.fetch_add(1); });
        }
        inner.Wait();
      });
    }
    outer.Wait();
    EXPECT_EQ(leaves.load(), 64) << "threads=" << threads;
  }
}

TEST(Executor, DoublyNestedGroupsComplete) {
  // Build-inside-serve depth: task -> subgroup -> subsubgroup.
  Executor executor(2);
  std::atomic<int> leaves{0};
  TaskGroup outer(executor);
  for (int i = 0; i < 4; ++i) {
    outer.Submit([&executor, &leaves] {
      TaskGroup mid(executor);
      for (int j = 0; j < 4; ++j) {
        mid.Submit([&executor, &leaves] {
          TaskGroup inner(executor);
          for (int l = 0; l < 4; ++l) {
            inner.Submit([&leaves] { leaves.fetch_add(1); });
          }
          inner.Wait();
        });
      }
      mid.Wait();
    });
  }
  outer.Wait();
  EXPECT_EQ(leaves.load(), 64);
}

TEST(Executor, ConcurrentSubmittersShareOnePool) {
  // The cross-batch pipelining shape: many caller threads, each with its
  // own group, interleaving on one executor.
  Executor executor(4);
  constexpr int kCallers = 8;
  constexpr int kTasksPerCaller = 50;
  std::atomic<int> ran{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&executor, &ran] {
      TaskGroup group(executor);
      for (int i = 0; i < kTasksPerCaller; ++i) {
        group.Submit([&ran] { ran.fetch_add(1); });
      }
      group.Wait();
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(ran.load(), kCallers * kTasksPerCaller);
}

TEST(Executor, RunOneTaskOnIdleExecutorReturnsFalse) {
  Executor executor(2);
  EXPECT_FALSE(executor.RunOneTask());
}

TEST(Executor, HelpingIsRestrictedToTheCallersGroup) {
  // Park both workers on a latch so further submissions stay queued,
  // then verify a group-restricted RunOneTask refuses a stranger's
  // task while the unrestricted form runs it.
  Executor executor(2);
  std::promise<void> release;
  std::shared_future<void> latch(release.get_future());
  std::atomic<int> parked{0};
  TaskGroup blockers(executor);
  for (int i = 0; i < 2; ++i) {
    blockers.Submit([latch, &parked] {
      parked.fetch_add(1);
      latch.wait();
    });
  }
  // Both workers must be parked before the probe task is queued, or a
  // free worker would race us to it.
  while (parked.load() < 2) std::this_thread::yield();

  std::atomic<int> ran{0};
  TaskGroup queued(executor);
  queued.Submit([&ran] { ran.fetch_add(1); });

  TaskGroup stranger(executor);
  EXPECT_FALSE(executor.RunOneTask(&stranger));  // not its task
  EXPECT_EQ(ran.load(), 0);
  EXPECT_TRUE(executor.RunOneTask(&queued));  // its own task
  EXPECT_EQ(ran.load(), 1);

  release.set_value();
  blockers.Wait();
  queued.Wait();
  stranger.Wait();
}

TEST(Executor, DeferredResumeCompletesTheGroup) {
  // The yield-the-slot mechanism: Defer reserves a completion the group
  // barrier waits on; Resume enqueues the continuation later, from any
  // thread. Wait must block across the gap and run the continuation.
  Executor executor(2);
  TaskGroup group(executor);
  std::atomic<int> ran{0};
  const TaskGroup::Deferred deferred = group.Defer();
  std::thread resumer([deferred, &ran] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    deferred.Resume([&ran] { ran.fetch_add(1); });
  });
  group.Wait();  // must not return before the resumed continuation ran
  EXPECT_EQ(ran.load(), 1);
  resumer.join();
}

TEST(Executor, DeferredResumeFromCompletionContextInterleavesWithTasks) {
  // The QueryEngine staged pattern: normal tasks and deferred
  // continuations share one group; continuations resume from foreign
  // threads (an I/O completion in production) while workers drain tasks.
  Executor executor(4);
  TaskGroup group(executor);
  constexpr int kEach = 50;
  std::atomic<int> ran{0};
  std::vector<TaskGroup::Deferred> deferred;
  deferred.reserve(kEach);
  for (int i = 0; i < kEach; ++i) {
    group.Submit([&ran] { ran.fetch_add(1); });
    deferred.push_back(group.Defer());
  }
  std::thread completer([&deferred, &ran] {
    for (const TaskGroup::Deferred& d : deferred) {
      d.Resume([&ran] { ran.fetch_add(1); });
    }
  });
  group.Wait();
  EXPECT_EQ(ran.load(), 2 * kEach);
  completer.join();
}

TEST(Executor, DeferCountsOneSubmissionPerResumeNotPerDefer) {
  // Defer only reserves the slot; the executor sees a task when Resume
  // enqueues the continuation — exactly one per deferred completion.
  Executor executor(2);
  const uint64_t before = executor.tasks_submitted();
  TaskGroup group(executor);
  const TaskGroup::Deferred a = group.Defer();
  const TaskGroup::Deferred b = group.Defer();
  EXPECT_EQ(executor.tasks_submitted(), before);  // nothing enqueued yet
  a.Resume([] {});
  b.Resume([] {});
  group.Wait();
  EXPECT_EQ(executor.tasks_submitted(), before + 2);
}

}  // namespace
}  // namespace gat
