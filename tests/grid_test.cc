// Tests for the hierarchical quad grid geometry.

#include "gat/index/grid.h"

#include <gtest/gtest.h>

#include "gat/geo/zorder.h"
#include "gat/util/rng.h"

namespace gat {
namespace {

TEST(GridGeometry, LeafCodeCornerCells) {
  GridGeometry grid(Rect{Point{0, 0}, Point{16, 16}}, 2);  // 4x4 cells
  EXPECT_EQ(grid.LeafCode(Point{0.5, 0.5}), zorder::Encode(0, 0));
  EXPECT_EQ(grid.LeafCode(Point{15.5, 0.5}), zorder::Encode(3, 0));
  EXPECT_EQ(grid.LeafCode(Point{0.5, 15.5}), zorder::Encode(0, 3));
  EXPECT_EQ(grid.LeafCode(Point{15.5, 15.5}), zorder::Encode(3, 3));
}

TEST(GridGeometry, BoundaryPointsClampIntoGrid) {
  GridGeometry grid(Rect{Point{0, 0}, Point{8, 8}}, 3);
  // The max corner itself lands in the last cell, not outside.
  EXPECT_EQ(grid.LeafCode(Point{8, 8}), zorder::Encode(7, 7));
  // Points outside the space clamp to border cells.
  EXPECT_EQ(grid.LeafCode(Point{-5, 4}), grid.LeafCode(Point{0, 4}));
  EXPECT_EQ(grid.LeafCode(Point{100, 100}), zorder::Encode(7, 7));
}

TEST(GridGeometry, CellRectTilesTheSpace) {
  GridGeometry grid(Rect{Point{0, 0}, Point{10, 10}}, 2);
  double total_area = 0.0;
  for (uint32_t code = 0; code < grid.CellCount(2); ++code) {
    total_area += grid.CellRect(2, code).Area();
  }
  EXPECT_NEAR(total_area, grid.space().Area(), 1e-6);
}

TEST(GridGeometry, PointsFallInsideTheirLeafCell) {
  GridGeometry grid(Rect{Point{-3, 2}, Point{21, 17}}, 5);
  Rng rng(31);
  for (int i = 0; i < 500; ++i) {
    const Point p{rng.NextDouble(-3, 21), rng.NextDouble(2, 17)};
    const uint32_t code = grid.LeafCode(p);
    EXPECT_TRUE(grid.CellRect(grid.depth(), code).Contains(p))
        << "point " << ToString(p);
  }
}

TEST(GridGeometry, ParentCellContainsChildCells) {
  GridGeometry grid(Rect{Point{0, 0}, Point{32, 32}}, 4);
  Rng rng(32);
  for (int level = 1; level < 4; ++level) {
    for (int i = 0; i < 50; ++i) {
      const uint32_t code = rng.NextU32(
          static_cast<uint32_t>(grid.CellCount(level)));
      const Rect parent = grid.CellRect(level, code);
      const uint32_t first = zorder::FirstChild(code);
      for (uint32_t c = first; c < first + 4; ++c) {
        const Rect child = grid.CellRect(level + 1, c);
        EXPECT_TRUE(parent.Contains(child.min));
        EXPECT_TRUE(parent.Contains(child.max));
      }
    }
  }
}

TEST(GridGeometry, MinDistMatchesRectMinDist) {
  GridGeometry grid(Rect{Point{0, 0}, Point{10, 10}}, 3);
  const Point q{-2, 5};
  for (uint32_t code = 0; code < 16; ++code) {
    EXPECT_DOUBLE_EQ(grid.MinDistToCell(q, 3, code),
                     MinDist(q, grid.CellRect(3, code)));
  }
}

TEST(GridGeometry, DegenerateExtentStillWorks) {
  // All points on a horizontal line.
  GridGeometry grid(Rect{Point{0, 5}, Point{10, 5}}, 3);
  const uint32_t a = grid.LeafCode(Point{0, 5});
  const uint32_t b = grid.LeafCode(Point{10, 5});
  EXPECT_NE(a, b);  // x still discriminates
}

TEST(GridGeometry, DepthOneHasFourCells) {
  GridGeometry grid(Rect{Point{0, 0}, Point{4, 4}}, 1);
  EXPECT_EQ(grid.CellCount(1), 4u);
  EXPECT_EQ(grid.LeafCode(Point{1, 1}), zorder::Encode(0, 0));
  EXPECT_EQ(grid.LeafCode(Point{3, 3}), zorder::Encode(1, 1));
}

}  // namespace
}  // namespace gat
