// Tests for the GAT index components: HICL, ITL, TAS, APL and the composed
// GatIndex builder.

#include "gat/index/gat_index.h"

#include <gtest/gtest.h>

#include <set>

#include "gat/datagen/checkin_generator.h"
#include "gat/geo/zorder.h"

namespace gat {
namespace {

// ---------------------------------------------------------------------------
// HICL
// ---------------------------------------------------------------------------

TEST(Hicl, AggregatesLeafOccupancyUpward) {
  // depth 3; activity 0 occurs in leaf cells 5 and 40.
  Hicl hicl(3, 2, {{5, 40}});
  EXPECT_TRUE(hicl.Contains(0, 3, 5));
  EXPECT_TRUE(hicl.Contains(0, 3, 40));
  EXPECT_FALSE(hicl.Contains(0, 3, 6));
  EXPECT_TRUE(hicl.Contains(0, 2, 5 >> 2));
  EXPECT_TRUE(hicl.Contains(0, 2, 40 >> 2));
  EXPECT_TRUE(hicl.Contains(0, 1, 5 >> 4));
  EXPECT_TRUE(hicl.Contains(0, 1, 40 >> 4));
  EXPECT_FALSE(hicl.Contains(0, 1, 3));
}

TEST(Hicl, CellsWithAnyIsSortedUnion) {
  Hicl hicl(2, 2, {{1, 7}, {7, 9}, {}});
  EXPECT_EQ(hicl.CellsWithAny({0, 1}, 2), (std::vector<uint32_t>{1, 7, 9}));
  EXPECT_TRUE(hicl.CellsWithAny({2}, 2).empty());
  EXPECT_TRUE(hicl.CellsWithAny({}, 2).empty());
}

TEST(Hicl, ChildrenWithAnyFiltersEmptyQuadrants) {
  // Leaf cells 0..3 are the children of level-1 cell 0; only 0 and 3 have
  // the activity.
  Hicl hicl(2, 2, {{0, 3}});
  std::vector<uint32_t> out;
  hicl.ChildrenWithAny({0}, 1, 0, &out);
  EXPECT_EQ(out, (std::vector<uint32_t>{0, 3}));
}

TEST(Hicl, UnknownActivityIsEverywhereAbsent) {
  Hicl hicl(2, 2, {{1}});
  EXPECT_FALSE(hicl.Contains(99, 2, 1));
  EXPECT_TRUE(hicl.CellsAt(99, 1).empty());
}

TEST(Hicl, DiskTierAccounting) {
  // depth 3, memory_levels 1: levels 2-3 are disk tier.
  Hicl hicl(3, 1, {{0, 1, 2, 3}});
  // Level 3 stores 4 codes, level 2 stores 1, level 1 stores 1.
  EXPECT_EQ(hicl.MemoryBytes(), 1 * sizeof(uint32_t));
  EXPECT_EQ(hicl.DiskBytes(), 5 * sizeof(uint32_t));
  DiskAccessCounter disk;
  hicl.Contains(0, 3, 0, &disk);  // disk level
  hicl.Contains(0, 1, 0, &disk);  // memory level
  EXPECT_EQ(disk.reads, 1u);
}

TEST(Hicl, MemoryLevelsForBudget) {
  // C = 100 activities, 4 bytes per cell id. Level 1 worst case = 4 cells
  // * 100 * 4B = 1600B; level 2 adds 16*100*4 = 6400B.
  EXPECT_EQ(Hicl::MemoryLevelsForBudget(1599, 100, 8), 0);
  EXPECT_EQ(Hicl::MemoryLevelsForBudget(1600, 100, 8), 1);
  EXPECT_EQ(Hicl::MemoryLevelsForBudget(8000, 100, 8), 2);
  // Budget beyond all levels caps at depth.
  EXPECT_EQ(Hicl::MemoryLevelsForBudget(size_t{1} << 40, 100, 3), 3);
}

// ---------------------------------------------------------------------------
// ITL
// ---------------------------------------------------------------------------

TEST(Itl, PostingsRoundTrip) {
  Itl::Builder builder;
  builder[7][2] = {0, 4, 1, 4};  // unsorted, with duplicate
  builder[7][5] = {3};
  builder[9][2] = {2};
  Itl itl(std::move(builder));
  EXPECT_EQ(itl.num_cells(), 2u);

  const auto t72 = itl.Trajectories(7, 2);
  EXPECT_EQ(std::vector<TrajectoryId>(t72.begin(), t72.end()),
            (std::vector<TrajectoryId>{0, 1, 4}));
  const auto t75 = itl.Trajectories(7, 5);
  EXPECT_EQ(std::vector<TrajectoryId>(t75.begin(), t75.end()),
            (std::vector<TrajectoryId>{3}));
  EXPECT_TRUE(itl.Trajectories(7, 99).empty());
  EXPECT_TRUE(itl.Trajectories(8, 2).empty());

  const auto acts = itl.ActivitiesIn(7);
  EXPECT_EQ(std::vector<ActivityId>(acts.begin(), acts.end()),
            (std::vector<ActivityId>{2, 5}));
  EXPECT_TRUE(itl.ActivitiesIn(8).empty());
  EXPECT_GT(itl.MemoryBytes(), 0u);
}

// ---------------------------------------------------------------------------
// TAS
// ---------------------------------------------------------------------------

TEST(Tas, FigureTwoExample) {
  // Figure 2(iii): Tr1 activities {a..e}\{f} sketch [a,b] [c,e];
  // Tr2 {a,c,d,e,f}... the paper shows [a,c] [d,f]; Tr3 {b,c,e,f} ->
  // [b,c] [e,f]. With a=0..f=5 and M=2.
  const std::vector<std::vector<ActivityId>> sets = {
      {0, 1, 2, 3, 4}, {0, 2, 3, 5}, {1, 2, 4, 5}};
  Tas tas(sets, 2);
  // Tr1 {a,b,c,d,e}: the largest gap is any of the unit gaps; the sketch
  // must cover exactly the IDs and contain no false negatives.
  for (size_t t = 0; t < sets.size(); ++t) {
    for (ActivityId a : sets[t]) {
      EXPECT_TRUE(tas.MightContain(static_cast<TrajectoryId>(t), a));
    }
  }
  // Tr3's sketch is [b,c] ∪ [e,f] (gap between c=2 and e=4 is the largest):
  const auto iv3 = tas.Intervals(2);
  ASSERT_EQ(iv3.size(), 2u);
  EXPECT_EQ(iv3[0].lo, 1u);
  EXPECT_EQ(iv3[0].hi, 2u);
  EXPECT_EQ(iv3[1].lo, 4u);
  EXPECT_EQ(iv3[1].hi, 5u);
  // And it correctly excludes a=0 and d=3 — the paper's Tr3 rejection.
  EXPECT_FALSE(tas.MightContain(2, 0));
  EXPECT_FALSE(tas.MightContain(2, 3));
  EXPECT_FALSE(tas.MightContainAll(2, {0, 3}));
}

TEST(Tas, PartitionIsGapOptimal) {
  // IDs {0, 1, 10, 11, 50}: with M=3 the splits are at gaps 9 (1->10) and
  // 39 (11->50), total width (1-0)+(11-10)+(50-50) = 2.
  const auto ivs = Tas::PartitionIds({0, 1, 10, 11, 50}, 3);
  ASSERT_EQ(ivs.size(), 3u);
  EXPECT_EQ(ivs[0].lo, 0u);
  EXPECT_EQ(ivs[0].hi, 1u);
  EXPECT_EQ(ivs[1].lo, 10u);
  EXPECT_EQ(ivs[1].hi, 11u);
  EXPECT_EQ(ivs[2].lo, 50u);
  EXPECT_EQ(ivs[2].hi, 50u);
}

TEST(Tas, PartitionOptimalityBruteForce) {
  // Exhaustively verify gap-splitting optimality against all possible
  // partitions for small inputs: total width must be minimal.
  const std::vector<ActivityId> ids = {2, 3, 9, 14, 15, 30};
  for (int m = 1; m <= 4; ++m) {
    const auto ivs = Tas::PartitionIds(ids, m);
    uint64_t width = 0;
    for (const auto& iv : ivs) width += iv.hi - iv.lo;
    // Brute force: choose m-1 split positions among the 5 gaps.
    uint64_t best = UINT64_MAX;
    const int gaps = static_cast<int>(ids.size()) - 1;
    for (uint32_t mask = 0; mask < (1u << gaps); ++mask) {
      if (__builtin_popcount(mask) != m - 1) continue;
      uint64_t w = 0;
      size_t start = 0;
      for (int g = 0; g < gaps; ++g) {
        if (mask & (1u << g)) {
          w += ids[g] - ids[start];
          start = g + 1;
        }
      }
      w += ids.back() - ids[start];
      best = std::min(best, w);
    }
    EXPECT_EQ(width, best) << "M=" << m;
  }
}

TEST(Tas, SingleIntervalAndEmptySet) {
  Tas tas({{3, 9}, {}}, 1);
  EXPECT_TRUE(tas.MightContain(0, 3));
  EXPECT_TRUE(tas.MightContain(0, 5));  // false positive by design
  EXPECT_TRUE(tas.MightContain(0, 9));
  EXPECT_FALSE(tas.MightContain(0, 2));
  EXPECT_FALSE(tas.MightContain(0, 10));
  // Empty activity set: nothing might be contained.
  EXPECT_FALSE(tas.MightContain(1, 0));
  EXPECT_TRUE(tas.MightContainAll(1, {}));
}

TEST(Tas, MemoryCostMatchesPaperFormula) {
  // 8 bytes per interval; N trajectories with >= M distinct IDs use
  // exactly M intervals each -> 8*M*N bytes.
  const std::vector<std::vector<ActivityId>> sets = {
      {0, 10, 20, 30}, {1, 11, 21, 31}, {2, 12, 22, 32}};
  Tas tas(sets, 3);
  EXPECT_EQ(tas.MemoryBytes(), 8u * 3u * 3u);
}

TEST(Tas, NoFalseDismissalsOnGeneratedData) {
  const Dataset dataset = GenerateCity(CityProfile::Testing(150, 77));
  for (int m : {1, 2, 4, 8}) {
    std::vector<std::vector<ActivityId>> sets;
    for (const auto& tr : dataset.trajectories()) {
      sets.push_back(tr.ActivityUnion());
    }
    Tas tas(sets, m);
    for (TrajectoryId t = 0; t < dataset.size(); ++t) {
      for (ActivityId a : sets[t]) {
        ASSERT_TRUE(tas.MightContain(t, a)) << "M=" << m << " t=" << t;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// APL
// ---------------------------------------------------------------------------

TEST(Apl, PostingsMatchDatasetScan) {
  const Dataset dataset = GenerateCity(CityProfile::Testing(60, 41));
  Apl apl(dataset);
  for (TrajectoryId t = 0; t < dataset.size(); ++t) {
    const auto& tr = dataset.trajectory(t);
    for (ActivityId a : tr.ActivityUnion()) {
      std::vector<PointIndex> expected;
      for (PointIndex i = 0; i < tr.size(); ++i) {
        if (tr[i].HasActivity(a)) expected.push_back(i);
      }
      const auto postings = apl.Postings(t, a);
      ASSERT_EQ(std::vector<PointIndex>(postings.begin(), postings.end()),
                expected);
    }
    EXPECT_TRUE(apl.HasAllActivities(t, tr.ActivityUnion()));
  }
}

TEST(Apl, MissingActivityAndDiskCounting) {
  Dataset d;
  {
    std::vector<TrajectoryPoint> pts = {{Point{0, 0}, {0}}};
    d.Add(Trajectory(std::move(pts)));
  }
  d.Finalize();
  Apl apl(d);
  DiskAccessCounter disk;
  EXPECT_TRUE(apl.Postings(0, 42, &disk).empty());
  EXPECT_FALSE(apl.HasAllActivities(0, {0, 42}, &disk));
  EXPECT_EQ(disk.reads, 2u);
}

// ---------------------------------------------------------------------------
// Composed index
// ---------------------------------------------------------------------------

TEST(GatIndex, BuildOnGeneratedCity) {
  const Dataset dataset = GenerateCity(CityProfile::Testing(200, 55));
  GatConfig config;
  config.depth = 6;
  config.memory_levels = 4;
  config.tas_intervals = 2;
  GatIndex index(dataset, config);

  EXPECT_EQ(index.grid().depth(), 6);
  const auto mem = index.memory_breakdown();
  EXPECT_GT(mem.hicl_memory, 0u);
  EXPECT_GT(mem.itl_memory, 0u);
  EXPECT_GT(mem.tas_memory, 0u);
  EXPECT_GT(mem.apl_disk, 0u);
  EXPECT_EQ(mem.MainMemoryTotal(),
            mem.hicl_memory + mem.itl_memory + mem.tas_memory);
  EXPECT_FALSE(mem.ToString().empty());

  // Spot-check consistency: every activity-bearing point's leaf cell is
  // listed in HICL at the leaf level and its trajectory in the ITL.
  for (TrajectoryId t = 0; t < dataset.size(); ++t) {
    const auto& tr = dataset.trajectory(t);
    for (PointIndex i = 0; i < tr.size(); ++i) {
      const uint32_t leaf = index.grid().LeafCode(tr[i].location);
      for (ActivityId a : tr[i].activities) {
        ASSERT_TRUE(index.hicl().Contains(a, config.depth, leaf));
        const auto trajs = index.itl().Trajectories(leaf, a);
        ASSERT_TRUE(std::binary_search(trajs.begin(), trajs.end(), t));
      }
    }
  }
}

TEST(GatIndex, FinerGridCostsMoreMemory) {
  const Dataset dataset = GenerateCity(CityProfile::Testing(150, 66));
  GatConfig coarse;
  coarse.depth = 4;
  coarse.memory_levels = 4;
  GatConfig fine;
  fine.depth = 8;
  fine.memory_levels = 6;
  const auto coarse_mem =
      GatIndex(dataset, coarse).memory_breakdown().MainMemoryTotal();
  const auto fine_mem =
      GatIndex(dataset, fine).memory_breakdown().MainMemoryTotal();
  // Figure 8's trend: more partitions -> more memory.
  EXPECT_GT(fine_mem, coarse_mem);
}

}  // namespace
}  // namespace gat
