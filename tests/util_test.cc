// Tests for util: Rng, ZipfSampler, TopKCollector, string formatting.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "gat/util/rng.h"
#include "gat/util/string_util.h"
#include "gat/util/top_k.h"
#include "gat/util/zipf.h"

namespace gat {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, BoundedValuesInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextU64(17), 17u);
    EXPECT_LT(rng.NextU32(3), 3u);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    const double r = rng.NextDouble(-2.0, 5.0);
    EXPECT_GE(r, -2.0);
    EXPECT_LT(r, 5.0);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(6);
  const int n = 20000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, PoissonMean) {
  Rng rng(7);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.NextPoisson(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, SampleDistinctProperties) {
  Rng rng(8);
  for (int round = 0; round < 50; ++round) {
    const uint32_t n = 10 + rng.NextU32(90);
    const uint32_t k = 1 + rng.NextU32(n);
    auto picks = rng.SampleDistinct(n, k);
    ASSERT_EQ(picks.size(), k);
    ASSERT_TRUE(std::is_sorted(picks.begin(), picks.end()));
    ASSERT_EQ(std::adjacent_find(picks.begin(), picks.end()), picks.end());
    for (uint32_t p : picks) ASSERT_LT(p, n);
  }
}

TEST(Rng, SampleDistinctFullRange) {
  Rng rng(9);
  const auto all = rng.SampleDistinct(10, 10);
  std::vector<uint32_t> expect(10);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(all, expect);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(10);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

// ---------------------------------------------------------------------------

TEST(Zipf, PmfSumsToOne) {
  ZipfSampler z(100, 0.8);
  double sum = 0.0;
  for (uint32_t r = 0; r < 100; ++r) sum += z.Pmf(r);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Zipf, PmfMonotonicallyDecreasing) {
  ZipfSampler z(50, 1.0);
  for (uint32_t r = 1; r < 50; ++r) EXPECT_LE(z.Pmf(r), z.Pmf(r - 1) + 1e-15);
}

TEST(Zipf, ThetaZeroIsUniform) {
  ZipfSampler z(10, 0.0);
  for (uint32_t r = 0; r < 10; ++r) EXPECT_NEAR(z.Pmf(r), 0.1, 1e-12);
}

TEST(Zipf, SamplingMatchesPmf) {
  ZipfSampler z(20, 0.9);
  Rng rng(11);
  std::vector<int> counts(20, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[z.Sample(rng)];
  for (uint32_t r = 0; r < 20; ++r) {
    EXPECT_NEAR(static_cast<double>(counts[r]) / n, z.Pmf(r), 0.01);
  }
}

// ---------------------------------------------------------------------------

TEST(TopKCollector, KeepsKSmallest) {
  TopKCollector c(3);
  EXPECT_EQ(c.Threshold(), kInfDist);
  c.Offer(1, 5.0);
  c.Offer(2, 1.0);
  EXPECT_EQ(c.Threshold(), kInfDist);  // fewer than k results
  c.Offer(3, 3.0);
  EXPECT_DOUBLE_EQ(c.Threshold(), 5.0);
  c.Offer(4, 2.0);  // evicts 5.0
  EXPECT_DOUBLE_EQ(c.Threshold(), 3.0);
  c.Offer(5, 10.0);  // rejected
  const auto results = c.SortedResults();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_DOUBLE_EQ(results[0].distance, 1.0);
  EXPECT_DOUBLE_EQ(results[1].distance, 2.0);
  EXPECT_DOUBLE_EQ(results[2].distance, 3.0);
}

TEST(TopKCollector, RejectsInfiniteDistances) {
  TopKCollector c(2);
  EXPECT_FALSE(c.Offer(1, kInfDist));
  EXPECT_EQ(c.size(), 0u);
}

TEST(TopKCollector, TieBreaksByTrajectoryId) {
  TopKCollector c(1);
  c.Offer(7, 2.0);
  c.Offer(3, 2.0);  // same distance, smaller id wins
  const auto results = c.SortedResults();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].trajectory, 3u);
}

// ---------------------------------------------------------------------------

TEST(StringUtil, FormatWithCommas) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(31557), "31,557");
  EXPECT_EQ(FormatWithCommas(3164124), "3,164,124");
}

TEST(StringUtil, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(StringUtil, JoinAndPad) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(PadLeft("ab", 4), "  ab");
  EXPECT_EQ(PadRight("ab", 4), "ab  ");
  EXPECT_EQ(PadLeft("abcde", 4), "abcde");
}

}  // namespace
}  // namespace gat
