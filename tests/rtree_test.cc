// Tests for the R-tree substrate: invariants, bulk load, incremental NN.

#include "gat/rtree/rtree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "gat/util/rng.h"

namespace gat {
namespace {

std::vector<RTreeEntry> RandomEntries(Rng& rng, size_t n) {
  std::vector<RTreeEntry> entries;
  for (size_t i = 0; i < n; ++i) {
    entries.push_back(RTreeEntry{
        Point{rng.NextDouble(0, 100), rng.NextDouble(0, 100)},
        static_cast<TrajectoryId>(i / 5), static_cast<PointIndex>(i % 5)});
  }
  return entries;
}

TEST(RTree, EmptyTree) {
  RTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.Height(), 0);
  EXPECT_TRUE(tree.CheckInvariants());
  RTree::NearestIterator it(tree, Point{0, 0});
  RTreeEntry e;
  double d;
  EXPECT_FALSE(it.Next(&e, &d));
  EXPECT_EQ(it.PendingLowerBound(), kInfDist);
}

TEST(RTree, DynamicInsertMaintainsInvariants) {
  Rng rng(1);
  RTree tree(8);
  const auto entries = RandomEntries(rng, 500);
  for (size_t i = 0; i < entries.size(); ++i) {
    tree.Insert(entries[i]);
    if (i % 50 == 0) ASSERT_TRUE(tree.CheckInvariants()) << "after " << i;
  }
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(tree.size(), 500u);
  EXPECT_GE(tree.Height(), 2);
  // Every inserted entry is retrievable.
  auto all = tree.CollectAll();
  EXPECT_EQ(all.size(), 500u);
}

class RTreeBulkLoadTest : public ::testing::TestWithParam<size_t> {};

TEST_P(RTreeBulkLoadTest, InvariantsAndCompleteness) {
  Rng rng(GetParam());
  const auto entries = RandomEntries(rng, GetParam());
  RTree tree = RTree::BulkLoad(entries, 16);
  EXPECT_EQ(tree.size(), entries.size());
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(tree.CollectAll().size(), entries.size());
}

INSTANTIATE_TEST_SUITE_P(Sizes, RTreeBulkLoadTest,
                         ::testing::Values(1, 2, 15, 16, 17, 100, 1000, 3000));

class RTreeNearestTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RTreeNearestTest, YieldsEntriesInDistanceOrder) {
  Rng rng(GetParam());
  const auto entries = RandomEntries(rng, 400);
  const RTree tree = RTree::BulkLoad(entries, 8);
  const Point origin{rng.NextDouble(0, 100), rng.NextDouble(0, 100)};

  std::vector<double> expected;
  for (const auto& e : entries) expected.push_back(Distance(origin, e.point));
  std::sort(expected.begin(), expected.end());

  RTree::NearestIterator it(tree, origin);
  RTreeEntry e;
  double d;
  size_t count = 0;
  double prev = -1.0;
  while (it.Next(&e, &d)) {
    ASSERT_GE(d, prev);  // non-decreasing
    ASSERT_NEAR(d, expected[count], 1e-9);
    ASSERT_DOUBLE_EQ(d, Distance(origin, e.point));
    prev = d;
    ++count;
  }
  EXPECT_EQ(count, entries.size());
}

TEST_P(RTreeNearestTest, PendingLowerBoundIsSound) {
  Rng rng(GetParam() ^ 0xF00);
  const auto entries = RandomEntries(rng, 200);
  const RTree tree = RTree::BulkLoad(entries, 8);
  const Point origin{50, 50};
  RTree::NearestIterator it(tree, origin);
  RTreeEntry e;
  double d;
  while (true) {
    const double pending = it.PendingLowerBound();
    if (!it.Next(&e, &d)) break;
    // The pre-pop pending bound must never exceed the returned distance.
    ASSERT_LE(pending, d + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RTreeNearestTest,
                         ::testing::Values(10, 20, 30, 40));

TEST(RTree, DynamicVsBulkLoadSameNearestSequence) {
  Rng rng(77);
  const auto entries = RandomEntries(rng, 300);
  RTree dynamic_tree(8);
  for (const auto& e : entries) dynamic_tree.Insert(e);
  const RTree bulk_tree = RTree::BulkLoad(entries, 8);

  const Point origin{25, 75};
  RTree::NearestIterator a(dynamic_tree, origin);
  RTree::NearestIterator b(bulk_tree, origin);
  RTreeEntry ea, eb;
  double da, db;
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(a.Next(&ea, &da));
    ASSERT_TRUE(b.Next(&eb, &db));
    ASSERT_NEAR(da, db, 1e-9);
  }
}

TEST(RTree, DuplicatePointsAllRetained) {
  RTree tree(4);
  for (int i = 0; i < 20; ++i) {
    tree.Insert(RTreeEntry{Point{1, 1}, static_cast<TrajectoryId>(i), 0});
  }
  EXPECT_EQ(tree.size(), 20u);
  EXPECT_TRUE(tree.CheckInvariants());
  RTree::NearestIterator it(tree, Point{1, 1});
  RTreeEntry e;
  double d;
  int count = 0;
  while (it.Next(&e, &d)) {
    EXPECT_DOUBLE_EQ(d, 0.0);
    ++count;
  }
  EXPECT_EQ(count, 20);
}

}  // namespace
}  // namespace gat
