// Overload soak for the serving front door, meant to run under TSan and
// ASan (ctest label: soak): many client threads hammer one FrontDoor on
// one shared executor far past its admission budget, and the suite
// checks the three properties overload must not bend —
//
//  1. shed requests create ZERO executor tasks (exact task-count delta),
//  2. every accepted request's answers are bit-identical to a quiescent
//     single-threaded run of the same queries,
//  3. every accepted request's SearchStats counters are exactly the
//     quiescent counters — concurrency and shedding may reorder work,
//     never change it.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "gat/datagen/checkin_generator.h"
#include "gat/datagen/query_generator.h"
#include "gat/engine/executor.h"
#include "gat/engine/query_engine.h"
#include "gat/search/gat_search.h"
#include "gat/serve/front_door.h"

namespace gat {
namespace {

constexpr uint32_t kClientThreads = 8;
constexpr uint32_t kRequestsPerClient = 40;
constexpr uint32_t kQueriesPerRequest = 3;
constexpr size_t kTopK = 5;

class ServeSoakTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = GenerateCity(CityProfile::Testing(/*trajectories=*/300,
                                                 /*seed=*/77));
    index_ = std::make_unique<GatIndex>(dataset_);
    searcher_ = std::make_unique<GatSearcher>(dataset_, *index_);

    QueryWorkloadParams wp;
    wp.num_queries = kClientThreads * kQueriesPerRequest;
    wp.seed = 5;
    QueryGenerator qgen(dataset_, wp);
    pool_ = qgen.Workload();

    // Each client replays one fixed slice of the pool; the quiescent
    // reference for that slice is computed once, single-threaded.
    for (uint32_t c = 0; c < kClientThreads; ++c) {
      client_queries_.emplace_back(
          pool_.begin() + c * kQueriesPerRequest,
          pool_.begin() + (c + 1) * kQueriesPerRequest);
    }
    QueryEngine quiet(*searcher_, EngineOptions{.threads = 1});
    for (uint32_t c = 0; c < kClientThreads; ++c) {
      reference_.push_back(
          quiet.Run(client_queries_[c], kTopK, QueryKind::kAtsq));
    }
  }

  // Counter-field equality (elapsed_ms is wall time and excluded).
  static void ExpectSameCounters(const SearchStats& a, const SearchStats& b) {
    EXPECT_EQ(a.candidates_retrieved, b.candidates_retrieved);
    EXPECT_EQ(a.disk_reads, b.disk_reads);
    EXPECT_EQ(a.rounds, b.rounds);
    EXPECT_EQ(a.nodes_popped, b.nodes_popped);
    EXPECT_EQ(a.deadline_skips, b.deadline_skips);
  }

  Dataset dataset_;
  std::unique_ptr<GatIndex> index_;
  std::unique_ptr<GatSearcher> searcher_;
  std::vector<Query> pool_;
  std::vector<std::vector<Query>> client_queries_;
  std::vector<BatchResult> reference_;
};

TEST_F(ServeSoakTest, ShedRequestsConsumeNoExecutorWorkUnderOverload) {
  Executor executor(4);
  QueryEngine engine(*searcher_, EngineOptions{.executor = &executor});
  FrontDoorOptions options;
  // Tight budget: 8 threads x 40 requests against one tenant's
  // 100/s + burst-8 bucket guarantees heavy shedding.
  options.default_quota = TenantQuota{/*tokens_per_sec=*/100.0,
                                      /*burst=*/8.0};
  FrontDoor door(engine, options);

  const uint64_t tasks_before = executor.tasks_submitted();
  std::atomic<uint64_t> ok_count{0};
  std::atomic<uint64_t> shed_count{0};
  std::atomic<int> failures{0};

  std::vector<std::thread> clients;
  for (uint32_t c = 0; c < kClientThreads; ++c) {
    clients.emplace_back([&, c] {
      ServeRequest request;
      request.tenant = 0;  // one shared tenant: maximum contention
      request.queries = client_queries_[c];
      request.k = kTopK;
      for (uint32_t r = 0; r < kRequestsPerClient; ++r) {
        ServeResult result = door.Serve(request);
        if (result.status == ServeStatus::kShed) {
          shed_count.fetch_add(1);
          if (!result.batch.results.empty()) failures.fetch_add(1);
          continue;
        }
        if (result.status != ServeStatus::kOk) {
          failures.fetch_add(1);  // no deadlines set: kOk or kShed only
          continue;
        }
        ok_count.fetch_add(1);
        // Accepted answers are bit-identical to the quiescent run,
        // whatever shedding and concurrency surround them.
        if (result.batch.results != reference_[c].results) {
          failures.fetch_add(1);
        }
        for (size_t i = 0; i < result.batch.results.size(); ++i) {
          if (result.batch.statuses[i] != QueryStatus::kOk) {
            failures.fetch_add(1);
          }
        }
        ExpectSameCounters(result.batch.totals, reference_[c].totals);
      }
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(shed_count.load(), 0u) << "overload must actually shed";
  EXPECT_GT(ok_count.load(), 0u) << "the burst must admit something";
  EXPECT_EQ(ok_count.load() + shed_count.load(),
            uint64_t{kClientThreads} * kRequestsPerClient);

  // The central overload invariant: executor tasks exist only for
  // admitted requests — each runs min(threads, queries) batch tasks —
  // and shed requests contribute exactly zero.
  const uint64_t expected_per_ok =
      std::min<uint64_t>(executor.threads(), kQueriesPerRequest);
  EXPECT_EQ(executor.tasks_submitted() - tasks_before,
            ok_count.load() * expected_per_ok);

  const FrontDoorCounters counters = door.counters();
  EXPECT_EQ(counters.admitted, ok_count.load());
  EXPECT_EQ(counters.shed, shed_count.load());
  EXPECT_EQ(counters.completed, ok_count.load());
  EXPECT_EQ(counters.deadline_misses, 0u);
}

TEST_F(ServeSoakTest, MixedPriorityClassesStayExactUnderConcurrency) {
  Executor executor(4);
  QueryEngine engine(*searcher_, EngineOptions{.executor = &executor});
  FrontDoorOptions options;
  options.default_quota = TenantQuota{/*tokens_per_sec=*/500.0,
                                      /*burst=*/16.0};
  FrontDoor door(engine, options);

  std::atomic<int> failures{0};
  std::atomic<uint64_t> completed{0};
  std::vector<std::thread> clients;
  for (uint32_t c = 0; c < kClientThreads; ++c) {
    clients.emplace_back([&, c] {
      ServeRequest request;
      request.tenant = c;  // per-client tenants: everything admits
      request.priority = (c % 2 == 0) ? RequestPriority::kInteractive
                                      : RequestPriority::kBulk;
      request.queries = client_queries_[c];
      request.k = kTopK;
      for (uint32_t r = 0; r < 8; ++r) {
        ServeResult result = door.Serve(request);
        if (result.status != ServeStatus::kOk) {
          failures.fetch_add(1);
          continue;
        }
        completed.fetch_add(1);
        // Priority picks a queue, never an answer: bulk-class results
        // are bit-identical to the quiescent (high-priority) reference.
        if (result.batch.results != reference_[c].results) {
          failures.fetch_add(1);
        }
        ExpectSameCounters(result.batch.totals, reference_[c].totals);
      }
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(completed.load(), uint64_t{kClientThreads} * 8);
  EXPECT_EQ(door.counters().deadline_misses, 0u);
}

}  // namespace
}  // namespace gat
