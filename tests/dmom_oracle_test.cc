// Validates Algorithm 4 (the Dmom dynamic program) against a brute-force
// oracle that enumerates every order-sensitive match explicitly
// (Definition 7), on randomized small inputs. This covers the search space
// far beyond the single Table-III worked example.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <limits>
#include <vector>

#include "gat/common/check.h"
#include "gat/core/order_match.h"
#include "gat/util/rng.h"

namespace gat {
namespace {

/// Exhaustive Dmom: choose for each query point i a subset P_i of its
/// match points that covers q_i.Phi, such that max(index(P_{i-1})) <=
/// min(index(P_i)) (Definition 7 allows equality), minimizing the summed
/// distance. Exponential — only for tiny inputs.
double OracleDmom(const OrderMatchInput& input) {
  const size_t m = input.match_points.size();

  // Pre-enumerate, per query point, every covering subset of its match
  // points with (cost, min_pos, max_pos).
  struct Option {
    double cost;
    PointIndex min_pos;
    PointIndex max_pos;
  };
  std::vector<std::vector<Option>> options(m);
  for (size_t i = 0; i < m; ++i) {
    const auto& mps = input.match_points[i];
    const int bits = input.activity_counts[i];
    if (bits == 0) {
      // Empty Phi: the empty subset matches at zero cost with no position
      // constraint; model as an option spanning nothing.
      options[i].push_back(Option{0.0, 0, static_cast<PointIndex>(
                                              input.trajectory_length)});
      continue;
    }
    const ActivityMask full = (ActivityMask{1} << bits) - 1;
    const size_t n = mps.size();
    GAT_CHECK(n <= 16);  // oracle enumeration limit
    for (uint32_t subset = 1; subset < (1u << n); ++subset) {
      ActivityMask covered = 0;
      double cost = 0.0;
      PointIndex lo = std::numeric_limits<PointIndex>::max();
      PointIndex hi = 0;
      for (size_t p = 0; p < n; ++p) {
        if (!(subset & (1u << p))) continue;
        covered |= mps[p].mask;
        cost += mps[p].distance;
        lo = std::min(lo, mps[p].point_index);
        hi = std::max(hi, mps[p].point_index);
      }
      if ((covered & full) == full) {
        options[i].push_back(Option{cost, lo, hi});
      }
    }
  }

  // DFS over query points with a running boundary: every point of P_i must
  // sit at or after the last point of P_{i-1}.
  double best = kInfDist;
  std::vector<size_t> pick(m, 0);
  std::function<void(size_t, PointIndex, double)> dfs =
      [&](size_t i, PointIndex boundary, double cost) {
        if (cost >= best) return;
        if (i == m) {
          best = cost;
          return;
        }
        for (const auto& opt : options[i]) {
          const bool unconstrained =
              input.activity_counts[i] == 0;  // empty Phi matches anywhere
          if (!unconstrained && opt.min_pos < boundary) continue;
          const PointIndex next_boundary =
              unconstrained ? boundary : opt.max_pos;
          dfs(i + 1, next_boundary, cost + opt.cost);
        }
      };
  dfs(0, 0, 0.0);
  return best;
}

struct OracleParam {
  int num_query_points;
  int activities_per_point;
  int trajectory_length;
  uint64_t seed;
};

class DmomOracleTest : public ::testing::TestWithParam<OracleParam> {};

TEST_P(DmomOracleTest, Algorithm4MatchesExhaustiveEnumeration) {
  const auto p = GetParam();
  Rng rng(p.seed);
  for (int round = 0; round < 60; ++round) {
    OrderMatchInput input;
    input.trajectory_length = p.trajectory_length;
    for (int i = 0; i < p.num_query_points; ++i) {
      input.activity_counts.push_back(p.activities_per_point);
      std::vector<MatchPoint> mps;
      for (PointIndex pos = 0; pos < static_cast<PointIndex>(p.trajectory_length);
           ++pos) {
        if (!rng.NextBool(0.6)) continue;  // point has no q_i activities
        ActivityMask mask = 0;
        for (int b = 0; b < p.activities_per_point; ++b) {
          if (rng.NextBool(0.4)) mask |= ActivityMask{1} << b;
        }
        if (mask == 0) continue;
        mps.push_back(MatchPoint{rng.NextDouble(0.0, 50.0), mask, pos});
      }
      input.match_points.push_back(std::move(mps));
    }

    const double expected = OracleDmom(input);
    const double actual = MinOrderSensitiveMatchDistance(input, kInfDist);
    if (expected == kInfDist) {
      ASSERT_EQ(actual, kInfDist) << "round " << round;
    } else {
      ASSERT_NEAR(actual, expected, 1e-9) << "round " << round;
    }

    // Threshold pruning must never change a non-pruned answer and must
    // return infinity when the threshold is strictly below the answer.
    if (expected != kInfDist) {
      ASSERT_NEAR(
          MinOrderSensitiveMatchDistance(input, expected + 1.0), expected,
          1e-9);
      ASSERT_EQ(MinOrderSensitiveMatchDistance(input, expected * 0.5 - 1.0),
                kInfDist);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SmallInputs, DmomOracleTest,
    ::testing::Values(OracleParam{1, 2, 5, 1}, OracleParam{2, 2, 6, 2},
                      OracleParam{2, 3, 7, 3}, OracleParam{3, 2, 8, 4},
                      OracleParam{3, 3, 6, 5}, OracleParam{4, 2, 7, 6},
                      OracleParam{2, 1, 10, 7}, OracleParam{3, 1, 12, 8}));

TEST(DmomOracle, SharedBoundaryPointIsLegal) {
  // One point carrying both query points' demands at position 0: Definition
  // 7 allows index equality, so both may match it.
  OrderMatchInput input;
  input.trajectory_length = 1;
  input.activity_counts = {1, 1};
  input.match_points = {{MatchPoint{2.0, 0b1, 0}},
                        {MatchPoint{3.0, 0b1, 0}}};
  EXPECT_DOUBLE_EQ(OracleDmom(input), 5.0);
  EXPECT_DOUBLE_EQ(MinOrderSensitiveMatchDistance(input, kInfDist), 5.0);
}

}  // namespace
}  // namespace gat
