// Tests for the data model: trajectories, dataset finalization (frequency
// ranking), vocabulary, queries, dataset statistics.

#include <gtest/gtest.h>

#include "gat/model/dataset.h"
#include "gat/model/dataset_stats.h"
#include "gat/model/query.h"
#include "gat/model/trajectory.h"

namespace gat {
namespace {

Trajectory MakeTrajectory(
    std::vector<std::pair<Point, std::vector<ActivityId>>> pts) {
  std::vector<TrajectoryPoint> points;
  for (auto& [loc, acts] : pts) points.push_back(TrajectoryPoint{loc, acts});
  return Trajectory(std::move(points));
}

TEST(TrajectoryPoint, HasActivity) {
  TrajectoryPoint p{Point{0, 0}, {1, 3, 5}};
  EXPECT_TRUE(p.HasActivity(3));
  EXPECT_FALSE(p.HasActivity(2));
  EXPECT_TRUE(p.HasAnyActivity({2, 5}));
  EXPECT_FALSE(p.HasAnyActivity({0, 2, 4}));
  EXPECT_FALSE(p.HasAnyActivity({}));
}

TEST(Trajectory, NormalizeSortsAndDedups) {
  auto tr = MakeTrajectory({{Point{0, 0}, {5, 1, 5, 3, 1}}});
  tr.NormalizeActivities();
  EXPECT_EQ(tr[0].activities, (std::vector<ActivityId>{1, 3, 5}));
}

TEST(Trajectory, ActivityUnionAndCount) {
  auto tr = MakeTrajectory(
      {{Point{0, 0}, {2, 1}}, {Point{1, 1}, {3, 2}}, {Point{2, 2}, {}}});
  tr.NormalizeActivities();
  EXPECT_EQ(tr.ActivityUnion(), (std::vector<ActivityId>{1, 2, 3}));
  EXPECT_EQ(tr.ActivityCount(), 4u);
}

TEST(Trajectory, BoundingBox) {
  auto tr = MakeTrajectory({{Point{1, 5}, {}}, {Point{-2, 3}, {}}});
  const Rect box = tr.BoundingBox();
  EXPECT_EQ(box, (Rect{Point{-2, 3}, Point{1, 5}}));
}

TEST(Dataset, FinalizeRanksActivitiesByFrequency) {
  Dataset d;
  // Activity 9 appears 3x, activity 4 appears 2x, activity 1 appears 1x.
  d.Add(MakeTrajectory({{Point{0, 0}, {9, 4}}, {Point{1, 0}, {9}}}));
  d.Add(MakeTrajectory({{Point{2, 0}, {9, 4, 1}}}));
  d.Finalize();
  // After ranking: 9 -> 0, 4 -> 1, 1 -> 2.
  const auto& freqs = d.activity_frequencies();
  ASSERT_EQ(freqs.size(), 3u);
  EXPECT_EQ(freqs[0], 3u);
  EXPECT_EQ(freqs[1], 2u);
  EXPECT_EQ(freqs[2], 1u);
  // Frequencies are non-increasing by construction.
  for (size_t i = 1; i < freqs.size(); ++i) EXPECT_LE(freqs[i], freqs[i - 1]);
  // The remapped IDs appear in the trajectories.
  EXPECT_EQ(d.trajectory(0)[0].activities, (std::vector<ActivityId>{0, 1}));
  EXPECT_EQ(d.trajectory(0)[1].activities, (std::vector<ActivityId>{0}));
  EXPECT_EQ(d.trajectory(1)[0].activities, (std::vector<ActivityId>{0, 1, 2}));
}

TEST(Dataset, FinalizeIsIdempotent) {
  Dataset d;
  d.Add(MakeTrajectory({{Point{0, 0}, {3}}}));
  d.Finalize();
  const auto before = d.trajectory(0)[0].activities;
  d.Finalize();
  EXPECT_EQ(d.trajectory(0)[0].activities, before);
}

TEST(Dataset, BoundingBoxCoversAllPoints) {
  Dataset d;
  d.Add(MakeTrajectory({{Point{-1, -2}, {0}}, {Point{5, 7}, {0}}}));
  d.Add(MakeTrajectory({{Point{3, 9}, {0}}}));
  d.Finalize();
  EXPECT_EQ(d.bounding_box(), (Rect{Point{-1, -2}, Point{5, 9}}));
}

TEST(Dataset, VocabularyPermutedWithFrequencies) {
  Dataset d;
  auto& vocab = d.mutable_vocabulary();
  const ActivityId rare = vocab.InternActivity("rare");
  const ActivityId common = vocab.InternActivity("common");
  d.Add(MakeTrajectory({{Point{0, 0}, {common, rare}},
                        {Point{1, 0}, {common}}}));
  d.Finalize();
  // "common" should now be ID 0.
  EXPECT_EQ(d.vocabulary().Lookup("common"), 0u);
  EXPECT_EQ(d.vocabulary().Lookup("rare"), 1u);
  EXPECT_EQ(d.vocabulary().Name(0), "common");
}

TEST(Dataset, SampleSubsets) {
  Dataset d;
  for (int i = 0; i < 5; ++i) {
    d.Add(MakeTrajectory(
        {{Point{static_cast<double>(i), 0}, {static_cast<ActivityId>(i)}}}));
  }
  d.Finalize();
  const Dataset sub = d.Sample({1, 3});
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_TRUE(sub.finalized());
  EXPECT_EQ(sub.trajectory(0)[0].location.x, 1.0);
  EXPECT_EQ(sub.trajectory(1)[0].location.x, 3.0);
}

TEST(ActivityVocabulary, InternIsIdempotent) {
  ActivityVocabulary v;
  const ActivityId a = v.InternActivity("sushi");
  EXPECT_EQ(v.InternActivity("sushi"), a);
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v.Lookup("missing"), kInvalidId);
}

TEST(Query, NormalizesActivities) {
  Query q({QueryPoint{Point{0, 0}, {5, 1, 5}}});
  EXPECT_EQ(q[0].activities, (std::vector<ActivityId>{1, 5}));
  q.Add(QueryPoint{Point{1, 1}, {9, 2, 2}});
  EXPECT_EQ(q[1].activities, (std::vector<ActivityId>{2, 9}));
}

TEST(Query, ActivityUnion) {
  Query q({QueryPoint{Point{0, 0}, {1, 2}}, QueryPoint{Point{1, 1}, {2, 3}}});
  EXPECT_EQ(q.ActivityUnion(), (std::vector<ActivityId>{1, 2, 3}));
}

TEST(Query, Diameter) {
  Query q({QueryPoint{Point{0, 0}, {}}, QueryPoint{Point{3, 4}, {}},
           QueryPoint{Point{1, 1}, {}}});
  EXPECT_DOUBLE_EQ(q.Diameter(), 5.0);
  EXPECT_DOUBLE_EQ(Query({QueryPoint{Point{2, 2}, {}}}).Diameter(), 0.0);
  EXPECT_DOUBLE_EQ(Query{}.Diameter(), 0.0);
}

TEST(DatasetStats, CollectMatchesManualCounts) {
  Dataset d;
  d.Add(MakeTrajectory({{Point{0, 0}, {1, 2}}, {Point{10, 0}, {1}}}));
  d.Add(MakeTrajectory({{Point{0, 5}, {}}}));
  d.Finalize();
  const auto s = DatasetStats::Collect(d);
  EXPECT_EQ(s.num_trajectories, 2u);
  EXPECT_EQ(s.num_points, 3u);
  EXPECT_EQ(s.num_activity_assignments, 3u);
  EXPECT_EQ(s.num_distinct_activities, 2u);
  EXPECT_DOUBLE_EQ(s.avg_points_per_trajectory, 1.5);
  EXPECT_DOUBLE_EQ(s.avg_activities_per_point, 1.0);
  EXPECT_DOUBLE_EQ(s.avg_activities_per_trajectory, 1.5);
  EXPECT_DOUBLE_EQ(s.extent_width_km, 10.0);
  EXPECT_DOUBLE_EQ(s.extent_height_km, 5.0);
  EXPECT_FALSE(s.ToTableRow("T").empty());
}

}  // namespace
}  // namespace gat
