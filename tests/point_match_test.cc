// Tests for the minimum point match distance kernel (Algorithm 3 and the
// exhaustive reference), including the paper's Table II worked example.

#include "gat/core/point_match.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "gat/util/rng.h"

namespace gat {
namespace {

// ---------------------------------------------------------------------------
// Table II of the paper: q.Phi = {a, b, c, d} (bits a=0 b=1 c=2 d=3).
// ---------------------------------------------------------------------------

std::vector<MatchPoint> TableTwoCandidates() {
  return {
      {10.0, 0b0001, 0},  // p1 {a}
      {11.0, 0b0110, 1},  // p2 {b, c}
      {13.0, 0b0011, 2},  // p3 {a, b}
      {15.0, 0b1000, 3},  // p4 {d}
      {17.0, 0b1100, 4},  // p5 {c, d}
      {26.0, 0b0111, 5},  // p6 {a, b, c}
      {31.0, 0b1111, 6},  // p7 {a, b, c, d}
  };
}

TEST(PointMatchTableTwo, FinalDistanceMatchesPaper) {
  const auto result = MinPointMatchDistance(TableTwoCandidates(), 4);
  EXPECT_DOUBLE_EQ(result.distance, 30.0);
}

TEST(PointMatchTableTwo, EarlyTerminationAtP7) {
  // The paper: "algorithm can stop now since Dmpm = 30 < 31" — p7 is never
  // examined.
  const auto result = MinPointMatchDistance(TableTwoCandidates(), 4);
  EXPECT_TRUE(result.early_terminated);
  EXPECT_EQ(result.points_examined, 6u);
}

TEST(PointMatchTableTwo, IntermediateHashTableStates) {
  // Replays the per-point updates of Table II against the incremental
  // table.
  PointMatchTable table(4);
  const auto cp = TableTwoCandidates();

  table.AddPoint(cp[0].mask, cp[0].distance);  // p1 {a}: 10
  EXPECT_DOUBLE_EQ(table.DistanceFor(0b0001), 10.0);
  EXPECT_FALSE(table.Covered());

  table.AddPoint(cp[1].mask, cp[1].distance);  // p2 {b,c}: 11
  EXPECT_DOUBLE_EQ(table.DistanceFor(0b0010), 11.0);  // {b}
  EXPECT_DOUBLE_EQ(table.DistanceFor(0b0100), 11.0);  // {c}
  EXPECT_DOUBLE_EQ(table.DistanceFor(0b0110), 11.0);  // {b,c}
  EXPECT_DOUBLE_EQ(table.DistanceFor(0b0011), 21.0);  // {a,b}
  EXPECT_DOUBLE_EQ(table.DistanceFor(0b0101), 21.0);  // {a,c}
  EXPECT_DOUBLE_EQ(table.DistanceFor(0b0111), 21.0);  // {a,b,c}

  table.AddPoint(cp[2].mask, cp[2].distance);  // p3 {a,b}: 13
  EXPECT_DOUBLE_EQ(table.DistanceFor(0b0011), 13.0);  // improved {a,b}

  table.AddPoint(cp[3].mask, cp[3].distance);  // p4 {d}: 15
  EXPECT_DOUBLE_EQ(table.DistanceFor(0b1000), 15.0);  // {d}
  EXPECT_DOUBLE_EQ(table.DistanceFor(0b1001), 25.0);  // {a,d}
  EXPECT_DOUBLE_EQ(table.DistanceFor(0b1010), 26.0);  // {b,d}
  EXPECT_DOUBLE_EQ(table.DistanceFor(0b1100), 26.0);  // {c,d}
  EXPECT_DOUBLE_EQ(table.DistanceFor(0b1110), 26.0);  // {b,c,d}
  EXPECT_DOUBLE_EQ(table.DistanceFor(0b1011), 28.0);  // {a,b,d}
  EXPECT_DOUBLE_EQ(table.DistanceFor(0b1111), 36.0);  // full, per paper
  EXPECT_TRUE(table.Covered());

  table.AddPoint(cp[4].mask, cp[4].distance);  // p5 {c,d}: 17
  EXPECT_DOUBLE_EQ(table.DistanceFor(0b1100), 17.0);
  EXPECT_DOUBLE_EQ(table.CurrentDistance(), 30.0);  // {a,b}+{c,d}=13+17

  table.AddPoint(cp[5].mask, cp[5].distance);  // p6: no update
  EXPECT_DOUBLE_EQ(table.DistanceFor(0b0111), 21.0);
  EXPECT_DOUBLE_EQ(table.CurrentDistance(), 30.0);
}

// ---------------------------------------------------------------------------
// Exhaustive reference
// ---------------------------------------------------------------------------

TEST(ExhaustiveMinPointMatch, TableTwoAgrees) {
  std::vector<PointIndex> witness;
  const double d = ExhaustiveMinPointMatch(TableTwoCandidates(), 4, &witness);
  EXPECT_DOUBLE_EQ(d, 30.0);
  // The optimal match is {p3 {a,b}, p5 {c,d}} = indices {2, 4}.
  EXPECT_EQ(witness, (std::vector<PointIndex>{2, 4}));
}

TEST(ExhaustiveMinPointMatch, NoCoverReturnsInfinity) {
  std::vector<MatchPoint> cp = {{1.0, 0b01, 0}, {2.0, 0b01, 1}};
  std::vector<PointIndex> witness;
  EXPECT_EQ(ExhaustiveMinPointMatch(cp, 2, &witness), kInfDist);
  EXPECT_TRUE(witness.empty());
}

TEST(ExhaustiveMinPointMatch, EmptyCandidates) {
  EXPECT_EQ(ExhaustiveMinPointMatch({}, 3, nullptr), kInfDist);
}

TEST(ExhaustiveMinPointMatch, SinglePointFullCover) {
  std::vector<MatchPoint> cp = {{5.5, 0b111, 0}};
  std::vector<PointIndex> witness;
  EXPECT_DOUBLE_EQ(ExhaustiveMinPointMatch(cp, 3, &witness), 5.5);
  EXPECT_EQ(witness, (std::vector<PointIndex>{0}));
}

TEST(ExhaustiveMinPointMatch, PrefersSinglePointOverCheapPair) {
  // One point covering everything at 10 vs two points at 6 each.
  std::vector<MatchPoint> cp = {
      {10.0, 0b11, 0}, {6.0, 0b01, 1}, {6.0, 0b10, 2}};
  EXPECT_DOUBLE_EQ(ExhaustiveMinPointMatch(cp, 2, nullptr), 10.0);
}

TEST(ExhaustiveMinPointMatch, PrefersPairWhenCheaper) {
  std::vector<MatchPoint> cp = {
      {20.0, 0b11, 0}, {6.0, 0b01, 1}, {6.0, 0b10, 2}};
  std::vector<PointIndex> witness;
  EXPECT_DOUBLE_EQ(ExhaustiveMinPointMatch(cp, 2, &witness), 12.0);
  EXPECT_EQ(witness, (std::vector<PointIndex>{1, 2}));
}

// ---------------------------------------------------------------------------
// Basic kernel behaviour
// ---------------------------------------------------------------------------

TEST(PointMatchTable, ZeroMaskIsIgnored) {
  PointMatchTable table(3);
  table.AddPoint(0, 1.0);
  EXPECT_FALSE(table.Covered());
  EXPECT_EQ(table.CurrentDistance(), kInfDist);
}

TEST(PointMatchTable, MaskBitsOutsideQueryAreDropped) {
  PointMatchTable table(2);  // full mask 0b11
  table.AddPoint(0b1111, 3.0);
  EXPECT_TRUE(table.Covered());
  EXPECT_DOUBLE_EQ(table.CurrentDistance(), 3.0);
}

TEST(PointMatchTable, ResetClearsState) {
  PointMatchTable table(2);
  table.AddPoint(0b11, 1.0);
  EXPECT_TRUE(table.Covered());
  table.Reset();
  EXPECT_FALSE(table.Covered());
  EXPECT_EQ(table.DistanceFor(0b01), kInfDist);
  table.AddPoint(0b01, 2.0);
  table.AddPoint(0b10, 3.0);
  EXPECT_DOUBLE_EQ(table.CurrentDistance(), 5.0);
}

TEST(MinPointMatchDistance, NeverEarlyTerminatesWhenUncoverable) {
  std::vector<MatchPoint> cp = {{1.0, 0b01, 0}, {2.0, 0b01, 1}};
  const auto r = MinPointMatchDistance(cp, 2);
  EXPECT_EQ(r.distance, kInfDist);
  EXPECT_FALSE(r.early_terminated);
  EXPECT_EQ(r.points_examined, 2u);
}

// ---------------------------------------------------------------------------
// Property sweeps: Algorithm 3 == exhaustive reference; insertion order
// independence of the incremental table.
// ---------------------------------------------------------------------------

struct RandomKernelParam {
  int num_activities;
  int num_points;
  uint64_t seed;
};

class PointMatchPropertyTest
    : public ::testing::TestWithParam<RandomKernelParam> {};

std::vector<MatchPoint> RandomCandidates(Rng& rng, int bits, int n) {
  std::vector<MatchPoint> cp;
  const ActivityMask full = (ActivityMask{1} << bits) - 1;
  for (int i = 0; i < n; ++i) {
    // Random non-zero mask, skewed towards few bits (like real points).
    ActivityMask mask = 0;
    for (int b = 0; b < bits; ++b) {
      if (rng.NextBool(0.35)) mask |= ActivityMask{1} << b;
    }
    if (mask == 0) mask = ActivityMask{1} << rng.NextU32(bits);
    mask &= full;
    cp.push_back(MatchPoint{rng.NextDouble(0.0, 100.0), mask,
                            static_cast<PointIndex>(i)});
  }
  return cp;
}

TEST_P(PointMatchPropertyTest, Algorithm3MatchesExhaustive) {
  const auto param = GetParam();
  Rng rng(param.seed);
  for (int round = 0; round < 30; ++round) {
    const auto cp =
        RandomCandidates(rng, param.num_activities, param.num_points);
    const double expected =
        ExhaustiveMinPointMatch(cp, param.num_activities, nullptr);
    const double actual =
        MinPointMatchDistance(cp, param.num_activities).distance;
    if (expected == kInfDist) {
      ASSERT_EQ(actual, kInfDist)
          << "round " << round << " bits " << param.num_activities;
    } else {
      ASSERT_NEAR(actual, expected, 1e-9)
          << "round " << round << " bits " << param.num_activities;
    }
  }
}

TEST_P(PointMatchPropertyTest, InsertionOrderIndependence) {
  // Sortedness is only needed for early termination; the final table value
  // must be identical under any insertion order (this property is what
  // Algorithm 4 relies on when growing windows backwards).
  const auto param = GetParam();
  Rng rng(param.seed ^ 0xABCDEF);
  for (int round = 0; round < 15; ++round) {
    auto cp = RandomCandidates(rng, param.num_activities, param.num_points);
    PointMatchTable forward(param.num_activities);
    for (const auto& p : cp) forward.AddPoint(p.mask, p.distance);
    for (int shuffle = 0; shuffle < 3; ++shuffle) {
      rng.Shuffle(cp);
      PointMatchTable shuffled(param.num_activities);
      for (const auto& p : cp) shuffled.AddPoint(p.mask, p.distance);
      if (forward.CurrentDistance() == kInfDist) {
        ASSERT_EQ(shuffled.CurrentDistance(), kInfDist);
      } else {
        ASSERT_NEAR(shuffled.CurrentDistance(), forward.CurrentDistance(),
                    1e-9);
      }
    }
  }
}

TEST_P(PointMatchPropertyTest, WitnessIsConsistent) {
  const auto param = GetParam();
  Rng rng(param.seed ^ 0x5A5A5A);
  for (int round = 0; round < 20; ++round) {
    const auto cp =
        RandomCandidates(rng, param.num_activities, param.num_points);
    std::vector<PointIndex> witness;
    const double d =
        ExhaustiveMinPointMatch(cp, param.num_activities, &witness);
    if (d == kInfDist) {
      ASSERT_TRUE(witness.empty());
      continue;
    }
    // The witness must cover the full mask and its cost must equal d.
    ActivityMask covered = 0;
    double cost = 0.0;
    for (PointIndex idx : witness) {
      const auto it = std::find_if(
          cp.begin(), cp.end(),
          [idx](const MatchPoint& p) { return p.point_index == idx; });
      ASSERT_NE(it, cp.end());
      covered |= it->mask;
      cost += it->distance;
    }
    const ActivityMask full =
        (ActivityMask{1} << param.num_activities) - 1;
    ASSERT_EQ(covered & full, full);
    ASSERT_NEAR(cost, d, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PointMatchPropertyTest,
    ::testing::Values(RandomKernelParam{1, 8, 11}, RandomKernelParam{2, 10, 12},
                      RandomKernelParam{3, 12, 13}, RandomKernelParam{4, 16, 14},
                      RandomKernelParam{5, 20, 15}, RandomKernelParam{6, 24, 16},
                      RandomKernelParam{8, 30, 17},
                      RandomKernelParam{3, 2, 18},   // fewer points than bits
                      RandomKernelParam{5, 3, 19}));

}  // namespace
}  // namespace gat
