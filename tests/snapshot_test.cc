// Tests for GAT index snapshots: save -> load must preserve search
// behavior bit-identically, and every malformed-file path must fail
// cleanly (nullptr, no crash, no exception).

#include "gat/index/snapshot.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "gat/datagen/checkin_generator.h"
#include "gat/datagen/query_generator.h"
#include "gat/engine/executor.h"
#include "gat/search/gat_search.h"

namespace gat {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Stand-alone CRC-32 (IEEE), matching snapshot.cc's, so tests can forge
// a valid checksum over corrupted payload bytes and prove the structural
// validators reject what the CRC no longer can.
uint32_t TestCrc32(const char* data, size_t size) {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t byte = 0; byte < 256; ++byte) {
      uint32_t crc = byte;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
      }
      t[byte] = crc;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ static_cast<unsigned char>(data[i])) & 0xFF];
  }
  return crc ^ 0xFFFFFFFFu;
}

std::vector<Query> TestQueries(const Dataset& dataset, uint64_t seed) {
  QueryWorkloadParams wp;
  wp.num_queries = 10;
  wp.seed = seed;
  QueryGenerator qgen(dataset, wp);
  return qgen.Workload();
}

long FileSize(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  return in ? static_cast<long>(in.tellg()) : -1;
}

void TruncateTo(const std::string& src, const std::string& dst, long bytes) {
  std::ifstream in(src, std::ios::binary);
  std::vector<char> buf(bytes);
  in.read(buf.data(), bytes);
  std::ofstream out(dst, std::ios::binary | std::ios::trunc);
  out.write(buf.data(), bytes);
}

TEST(Snapshot, RoundTripSearchesBitIdentically) {
  const Dataset dataset = GenerateCity(CityProfile::Testing(200, 31));
  const GatConfig config{.depth = 6, .memory_levels = 4, .tas_intervals = 2};
  const GatIndex built(dataset, config);
  const std::string path = TempPath("roundtrip.gats");
  ASSERT_TRUE(SaveSnapshot(built, path));

  const auto loaded = LoadSnapshot(path);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->config(), built.config());

  // Same footprint accounting...
  const auto mb = built.memory_breakdown();
  const auto ml = loaded->memory_breakdown();
  EXPECT_EQ(ml.MainMemoryTotal(), mb.MainMemoryTotal());
  EXPECT_EQ(ml.DiskTotal(), mb.DiskTotal());

  // ...and bit-identical answers: not just equal distances, the exact
  // same (trajectory, distance) pairs, including deterministic work
  // counters, for both query kinds.
  const GatSearcher fresh(dataset, built);
  const GatSearcher restored(dataset, *loaded);
  for (const Query& q : TestQueries(dataset, 77)) {
    for (const QueryKind kind : {QueryKind::kAtsq, QueryKind::kOatsq}) {
      SearchStats fresh_stats, restored_stats;
      const ResultList a = fresh.Search(q, 9, kind, &fresh_stats);
      const ResultList b = restored.Search(q, 9, kind, &restored_stats);
      ASSERT_EQ(a, b) << ToString(kind);
      EXPECT_EQ(restored_stats.candidates_retrieved,
                fresh_stats.candidates_retrieved);
      EXPECT_EQ(restored_stats.tas_pruned, fresh_stats.tas_pruned);
      EXPECT_EQ(restored_stats.distance_computations,
                fresh_stats.distance_computations);
      EXPECT_EQ(restored_stats.disk_reads, fresh_stats.disk_reads);
    }
  }
  std::remove(path.c_str());
}

TEST(Snapshot, SavedBytesAreDeterministic) {
  const Dataset dataset = GenerateCity(CityProfile::Testing(120, 5));
  const GatIndex index(dataset, GatConfig{.depth = 5, .memory_levels = 3});
  const std::string p1 = TempPath("det1.gats");
  const std::string p2 = TempPath("det2.gats");
  ASSERT_TRUE(SaveSnapshot(index, p1));
  ASSERT_TRUE(SaveSnapshot(index, p2));
  std::ifstream a(p1, std::ios::binary), b(p2, std::ios::binary);
  const std::string bytes_a((std::istreambuf_iterator<char>(a)),
                            std::istreambuf_iterator<char>());
  const std::string bytes_b((std::istreambuf_iterator<char>(b)),
                            std::istreambuf_iterator<char>());
  EXPECT_FALSE(bytes_a.empty());
  EXPECT_EQ(bytes_a, bytes_b);
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST(Snapshot, MissingFileFailsCleanly) {
  EXPECT_EQ(LoadSnapshot(TempPath("no_such_snapshot.gats")), nullptr);
}

TEST(Snapshot, BadMagicIsRejected) {
  const std::string path = TempPath("bad_magic.gats");
  {
    std::ofstream out(path, std::ios::binary);
    out << "GATD this is a dataset header, not an index snapshot";
  }
  EXPECT_EQ(LoadSnapshot(path), nullptr);
  std::remove(path.c_str());
}

TEST(Snapshot, VersionMismatchIsRejected) {
  const Dataset dataset = GenerateCity(CityProfile::Testing(60, 9));
  const GatIndex index(dataset, GatConfig{.depth = 4, .memory_levels = 2});
  const std::string path = TempPath("version.gats");
  ASSERT_TRUE(SaveSnapshot(index, path));
  ASSERT_NE(LoadSnapshot(path), nullptr);

  // The version field sits right after the 4-byte magic.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(4);
    const uint32_t future_version = 999;
    f.write(reinterpret_cast<const char*>(&future_version),
            sizeof(future_version));
  }
  EXPECT_EQ(LoadSnapshot(path), nullptr);
  std::remove(path.c_str());
}

TEST(Snapshot, ConfigMismatchOnLoadIsRejected) {
  const Dataset dataset = GenerateCity(CityProfile::Testing(60, 11));
  const GatConfig saved{.depth = 5, .memory_levels = 3, .tas_intervals = 2};
  const GatIndex index(dataset, saved);
  const std::string path = TempPath("config.gats");
  ASSERT_TRUE(SaveSnapshot(index, path));

  // Unchecked and matching-config loads succeed.
  EXPECT_NE(LoadSnapshot(path), nullptr);
  EXPECT_NE(LoadSnapshot(path, &saved), nullptr);

  // Any differing field refuses the snapshot.
  GatConfig other = saved;
  other.depth = 6;
  EXPECT_EQ(LoadSnapshot(path, &other), nullptr);
  other = saved;
  other.memory_levels = 2;
  EXPECT_EQ(LoadSnapshot(path, &other), nullptr);
  other = saved;
  other.tas_intervals = 3;
  EXPECT_EQ(LoadSnapshot(path, &other), nullptr);
  std::remove(path.c_str());
}

TEST(Snapshot, DatasetFingerprintBindsSnapshotToItsDataset) {
  const Dataset a = GenerateCity(CityProfile::Testing(60, 15));
  const Dataset b = GenerateCity(CityProfile::Testing(60, 16));
  const uint32_t fp_a = DatasetFingerprint(a);
  const uint32_t fp_b = DatasetFingerprint(b);
  ASSERT_NE(fp_a, 0u);
  ASSERT_NE(fp_a, fp_b);
  EXPECT_EQ(fp_a, DatasetFingerprint(a));  // deterministic

  const GatIndex index(a, GatConfig{.depth = 4, .memory_levels = 2});
  const std::string path = TempPath("paired.gats");
  ASSERT_TRUE(SaveSnapshot(index, path, fp_a));

  EXPECT_NE(LoadSnapshot(path, nullptr, fp_a), nullptr);  // right dataset
  EXPECT_NE(LoadSnapshot(path), nullptr);                 // check waived
  EXPECT_EQ(LoadSnapshot(path, nullptr, fp_b), nullptr);  // wrong dataset
  std::remove(path.c_str());
}

TEST(Snapshot, BitCorruptionAnywhereIsRejected) {
  const Dataset dataset = GenerateCity(CityProfile::Testing(60, 19));
  const GatIndex index(dataset, GatConfig{.depth = 4, .memory_levels = 2});
  const std::string path = TempPath("corrupt.gats");
  ASSERT_TRUE(SaveSnapshot(index, path));
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 64u);

  // Flipping a single byte anywhere — header fields included — must be
  // caught (payload damage by the CRC32, header damage by the
  // magic/version/checksum checks). Sweep a spread of positions.
  const std::string mutated = TempPath("mutated.gats");
  for (size_t pos = 0; pos < bytes.size();
       pos += (pos < 16 ? 1 : 131)) {  // every header byte, then strided
    std::string copy = bytes;
    copy[pos] = static_cast<char>(copy[pos] ^ 0x5C);
    {
      std::ofstream out(mutated, std::ios::binary | std::ios::trunc);
      out.write(copy.data(), copy.size());
    }
    EXPECT_EQ(LoadSnapshot(mutated), nullptr) << "byte " << pos << " flipped";
  }
  std::remove(mutated.c_str());
  std::remove(path.c_str());
}

TEST(Snapshot, ExecutorLoadIsBitIdenticalToSequentialLoad) {
  // 300 trajectories puts the APL past the parallel-validation row
  // threshold, so the executor path actually fans out.
  const Dataset dataset = GenerateCity(CityProfile::Testing(300, 47));
  const GatIndex built(dataset, GatConfig{.depth = 5, .memory_levels = 3});
  const std::string path = TempPath("executor_load.gats");
  ASSERT_TRUE(SaveSnapshot(built, path));

  Executor executor(4);
  const auto sequential = LoadSnapshot(path);
  const auto parallel = LoadSnapshot(path, nullptr, 0, &executor);
  ASSERT_NE(sequential, nullptr);
  ASSERT_NE(parallel, nullptr);
  EXPECT_EQ(parallel->memory_breakdown().MainMemoryTotal(),
            sequential->memory_breakdown().MainMemoryTotal());

  const GatSearcher a(dataset, *sequential);
  const GatSearcher b(dataset, *parallel);
  for (const Query& q : TestQueries(dataset, 99)) {
    for (const QueryKind kind : {QueryKind::kAtsq, QueryKind::kOatsq}) {
      SearchStats sa, sb;
      ASSERT_EQ(a.Search(q, 9, kind, &sa), b.Search(q, 9, kind, &sb));
      EXPECT_EQ(sb.candidates_retrieved, sa.candidates_retrieved);
      EXPECT_EQ(sb.disk_reads, sa.disk_reads);
    }
  }
  std::remove(path.c_str());
}

TEST(Snapshot, CorruptionRejectedThroughExecutorPathToo) {
  // Bit flips and truncations must load as nullptr no matter which
  // validation path runs — a parallel load may never out-race a reject.
  const Dataset dataset = GenerateCity(CityProfile::Testing(300, 53));
  const GatIndex index(dataset, GatConfig{.depth = 4, .memory_levels = 2});
  const std::string path = TempPath("executor_corrupt.gats");
  ASSERT_TRUE(SaveSnapshot(index, path));
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 64u);

  Executor executor(4);
  const std::string mutated = TempPath("executor_mutated.gats");
  for (size_t pos = 0; pos < bytes.size(); pos += 257) {
    std::string copy = bytes;
    copy[pos] = static_cast<char>(copy[pos] ^ 0x5C);
    {
      std::ofstream out(mutated, std::ios::binary | std::ios::trunc);
      out.write(copy.data(), copy.size());
    }
    EXPECT_EQ(LoadSnapshot(mutated, nullptr, 0, &executor), nullptr)
        << "byte " << pos << " flipped";
  }
  for (const size_t cut : {size_t{20}, bytes.size() / 2, bytes.size() - 3}) {
    std::ofstream out(mutated, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(cut));
    out.close();
    EXPECT_EQ(LoadSnapshot(mutated, nullptr, 0, &executor), nullptr)
        << "prefix of " << cut << " bytes";
  }
  std::remove(mutated.c_str());
  std::remove(path.c_str());
}

TEST(Snapshot, ForgedChecksumNeverChangesTheDecisionParity) {
  // An attacker (or a very unlucky disk) can corrupt a payload byte AND
  // re-stamp a matching CRC. Structural validation is then the only
  // line of defense; some flips are benign (stored byte counters), but
  // whatever the sequential loader decides, the executor-parallel
  // loader must decide identically — and neither may crash or hand out
  // an index that fails its own invariants.
  const Dataset dataset = GenerateCity(CityProfile::Testing(300, 59));
  const GatIndex index(dataset, GatConfig{.depth = 4, .memory_levels = 2});
  const std::string path = TempPath("forged.gats");
  ASSERT_TRUE(SaveSnapshot(index, path));
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  }
  constexpr size_t kHeaderBytes = 12;
  ASSERT_GT(bytes.size(), kHeaderBytes + 64);

  Executor executor(4);
  const std::string forged = TempPath("forged_mutated.gats");
  size_t rejected = 0, accepted = 0;
  for (size_t pos = kHeaderBytes; pos < bytes.size(); pos += 211) {
    std::string copy = bytes;
    copy[pos] = static_cast<char>(copy[pos] ^ 0x5C);
    const uint32_t crc =
        TestCrc32(copy.data() + kHeaderBytes, copy.size() - kHeaderBytes);
    copy.replace(8, 4, reinterpret_cast<const char*>(&crc), 4);
    {
      std::ofstream out(forged, std::ios::binary | std::ios::trunc);
      out.write(copy.data(), copy.size());
    }
    const auto sequential = LoadSnapshot(forged);
    const auto parallel = LoadSnapshot(forged, nullptr, 0, &executor);
    ASSERT_EQ(sequential == nullptr, parallel == nullptr)
        << "decision diverged at byte " << pos;
    (sequential == nullptr ? rejected : accepted) += 1;
  }
  // The sweep must have hit real structural damage, not only benign
  // counter bytes — otherwise this test proves nothing.
  EXPECT_GT(rejected, 0u);
  std::remove(forged.c_str());
  std::remove(path.c_str());
}

TEST(Snapshot, EmptyIndexRoundTrips) {
  // An empty dataset builds a valid index over the fallback grid space;
  // its snapshot must round-trip (the empty-shard warm-start path).
  Dataset empty;
  empty.Finalize();
  const GatIndex built(empty);
  const std::string path = TempPath("empty.gats");
  ASSERT_TRUE(SaveSnapshot(built, path, DatasetFingerprint(empty)));
  const auto loaded =
      LoadSnapshot(path, nullptr, DatasetFingerprint(empty));
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->config(), built.config());
  std::remove(path.c_str());
}

TEST(Snapshot, TruncationAnywhereIsRejected) {
  const Dataset dataset = GenerateCity(CityProfile::Testing(80, 13));
  const GatIndex index(dataset, GatConfig{.depth = 4, .memory_levels = 2});
  const std::string path = TempPath("full.gats");
  ASSERT_TRUE(SaveSnapshot(index, path));
  const long size = FileSize(path);
  ASSERT_GT(size, 0);

  const std::string cut = TempPath("cut.gats");
  // Every prefix shorter than the full file must fail — sweep a spread of
  // cut points (every 97 bytes covers all sections at this index size)
  // plus the last few bytes, which land inside the end tag.
  for (long bytes = 0; bytes < size; bytes += 97) {
    TruncateTo(path, cut, bytes);
    EXPECT_EQ(LoadSnapshot(cut), nullptr) << "prefix of " << bytes << " bytes";
  }
  for (long bytes = size - 4; bytes < size; ++bytes) {
    TruncateTo(path, cut, bytes);
    EXPECT_EQ(LoadSnapshot(cut), nullptr) << "prefix of " << bytes << " bytes";
  }
  std::remove(cut.c_str());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gat
