// Tests for GAT index snapshots: save -> load must preserve search
// behavior bit-identically, and every malformed-file path must fail
// cleanly (nullptr, no crash, no exception).

#include "gat/index/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "gat/datagen/checkin_generator.h"
#include "gat/datagen/query_generator.h"
#include "gat/search/gat_search.h"

namespace gat {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<Query> TestQueries(const Dataset& dataset, uint64_t seed) {
  QueryWorkloadParams wp;
  wp.num_queries = 10;
  wp.seed = seed;
  QueryGenerator qgen(dataset, wp);
  return qgen.Workload();
}

long FileSize(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  return in ? static_cast<long>(in.tellg()) : -1;
}

void TruncateTo(const std::string& src, const std::string& dst, long bytes) {
  std::ifstream in(src, std::ios::binary);
  std::vector<char> buf(bytes);
  in.read(buf.data(), bytes);
  std::ofstream out(dst, std::ios::binary | std::ios::trunc);
  out.write(buf.data(), bytes);
}

TEST(Snapshot, RoundTripSearchesBitIdentically) {
  const Dataset dataset = GenerateCity(CityProfile::Testing(200, 31));
  const GatConfig config{.depth = 6, .memory_levels = 4, .tas_intervals = 2};
  const GatIndex built(dataset, config);
  const std::string path = TempPath("roundtrip.gats");
  ASSERT_TRUE(SaveSnapshot(built, path));

  const auto loaded = LoadSnapshot(path);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->config(), built.config());

  // Same footprint accounting...
  const auto mb = built.memory_breakdown();
  const auto ml = loaded->memory_breakdown();
  EXPECT_EQ(ml.MainMemoryTotal(), mb.MainMemoryTotal());
  EXPECT_EQ(ml.DiskTotal(), mb.DiskTotal());

  // ...and bit-identical answers: not just equal distances, the exact
  // same (trajectory, distance) pairs, including deterministic work
  // counters, for both query kinds.
  const GatSearcher fresh(dataset, built);
  const GatSearcher restored(dataset, *loaded);
  for (const Query& q : TestQueries(dataset, 77)) {
    for (const QueryKind kind : {QueryKind::kAtsq, QueryKind::kOatsq}) {
      SearchStats fresh_stats, restored_stats;
      const ResultList a = fresh.Search(q, 9, kind, &fresh_stats);
      const ResultList b = restored.Search(q, 9, kind, &restored_stats);
      ASSERT_EQ(a, b) << ToString(kind);
      EXPECT_EQ(restored_stats.candidates_retrieved,
                fresh_stats.candidates_retrieved);
      EXPECT_EQ(restored_stats.tas_pruned, fresh_stats.tas_pruned);
      EXPECT_EQ(restored_stats.distance_computations,
                fresh_stats.distance_computations);
      EXPECT_EQ(restored_stats.disk_reads, fresh_stats.disk_reads);
    }
  }
  std::remove(path.c_str());
}

TEST(Snapshot, SavedBytesAreDeterministic) {
  const Dataset dataset = GenerateCity(CityProfile::Testing(120, 5));
  const GatIndex index(dataset, GatConfig{.depth = 5, .memory_levels = 3});
  const std::string p1 = TempPath("det1.gats");
  const std::string p2 = TempPath("det2.gats");
  ASSERT_TRUE(SaveSnapshot(index, p1));
  ASSERT_TRUE(SaveSnapshot(index, p2));
  std::ifstream a(p1, std::ios::binary), b(p2, std::ios::binary);
  const std::string bytes_a((std::istreambuf_iterator<char>(a)),
                            std::istreambuf_iterator<char>());
  const std::string bytes_b((std::istreambuf_iterator<char>(b)),
                            std::istreambuf_iterator<char>());
  EXPECT_FALSE(bytes_a.empty());
  EXPECT_EQ(bytes_a, bytes_b);
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST(Snapshot, MissingFileFailsCleanly) {
  EXPECT_EQ(LoadSnapshot(TempPath("no_such_snapshot.gats")), nullptr);
}

TEST(Snapshot, BadMagicIsRejected) {
  const std::string path = TempPath("bad_magic.gats");
  {
    std::ofstream out(path, std::ios::binary);
    out << "GATD this is a dataset header, not an index snapshot";
  }
  EXPECT_EQ(LoadSnapshot(path), nullptr);
  std::remove(path.c_str());
}

TEST(Snapshot, VersionMismatchIsRejected) {
  const Dataset dataset = GenerateCity(CityProfile::Testing(60, 9));
  const GatIndex index(dataset, GatConfig{.depth = 4, .memory_levels = 2});
  const std::string path = TempPath("version.gats");
  ASSERT_TRUE(SaveSnapshot(index, path));
  ASSERT_NE(LoadSnapshot(path), nullptr);

  // The version field sits right after the 4-byte magic.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(4);
    const uint32_t future_version = 999;
    f.write(reinterpret_cast<const char*>(&future_version),
            sizeof(future_version));
  }
  EXPECT_EQ(LoadSnapshot(path), nullptr);
  std::remove(path.c_str());
}

TEST(Snapshot, ConfigMismatchOnLoadIsRejected) {
  const Dataset dataset = GenerateCity(CityProfile::Testing(60, 11));
  const GatConfig saved{.depth = 5, .memory_levels = 3, .tas_intervals = 2};
  const GatIndex index(dataset, saved);
  const std::string path = TempPath("config.gats");
  ASSERT_TRUE(SaveSnapshot(index, path));

  // Unchecked and matching-config loads succeed.
  EXPECT_NE(LoadSnapshot(path), nullptr);
  EXPECT_NE(LoadSnapshot(path, &saved), nullptr);

  // Any differing field refuses the snapshot.
  GatConfig other = saved;
  other.depth = 6;
  EXPECT_EQ(LoadSnapshot(path, &other), nullptr);
  other = saved;
  other.memory_levels = 2;
  EXPECT_EQ(LoadSnapshot(path, &other), nullptr);
  other = saved;
  other.tas_intervals = 3;
  EXPECT_EQ(LoadSnapshot(path, &other), nullptr);
  std::remove(path.c_str());
}

TEST(Snapshot, DatasetFingerprintBindsSnapshotToItsDataset) {
  const Dataset a = GenerateCity(CityProfile::Testing(60, 15));
  const Dataset b = GenerateCity(CityProfile::Testing(60, 16));
  const uint32_t fp_a = DatasetFingerprint(a);
  const uint32_t fp_b = DatasetFingerprint(b);
  ASSERT_NE(fp_a, 0u);
  ASSERT_NE(fp_a, fp_b);
  EXPECT_EQ(fp_a, DatasetFingerprint(a));  // deterministic

  const GatIndex index(a, GatConfig{.depth = 4, .memory_levels = 2});
  const std::string path = TempPath("paired.gats");
  ASSERT_TRUE(SaveSnapshot(index, path, fp_a));

  EXPECT_NE(LoadSnapshot(path, nullptr, fp_a), nullptr);  // right dataset
  EXPECT_NE(LoadSnapshot(path), nullptr);                 // check waived
  EXPECT_EQ(LoadSnapshot(path, nullptr, fp_b), nullptr);  // wrong dataset
  std::remove(path.c_str());
}

TEST(Snapshot, BitCorruptionAnywhereIsRejected) {
  const Dataset dataset = GenerateCity(CityProfile::Testing(60, 19));
  const GatIndex index(dataset, GatConfig{.depth = 4, .memory_levels = 2});
  const std::string path = TempPath("corrupt.gats");
  ASSERT_TRUE(SaveSnapshot(index, path));
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 64u);

  // Flipping a single byte anywhere — header fields included — must be
  // caught (payload damage by the CRC32, header damage by the
  // magic/version/checksum checks). Sweep a spread of positions.
  const std::string mutated = TempPath("mutated.gats");
  for (size_t pos = 0; pos < bytes.size();
       pos += (pos < 16 ? 1 : 131)) {  // every header byte, then strided
    std::string copy = bytes;
    copy[pos] = static_cast<char>(copy[pos] ^ 0x5C);
    {
      std::ofstream out(mutated, std::ios::binary | std::ios::trunc);
      out.write(copy.data(), copy.size());
    }
    EXPECT_EQ(LoadSnapshot(mutated), nullptr) << "byte " << pos << " flipped";
  }
  std::remove(mutated.c_str());
  std::remove(path.c_str());
}

TEST(Snapshot, TruncationAnywhereIsRejected) {
  const Dataset dataset = GenerateCity(CityProfile::Testing(80, 13));
  const GatIndex index(dataset, GatConfig{.depth = 4, .memory_levels = 2});
  const std::string path = TempPath("full.gats");
  ASSERT_TRUE(SaveSnapshot(index, path));
  const long size = FileSize(path);
  ASSERT_GT(size, 0);

  const std::string cut = TempPath("cut.gats");
  // Every prefix shorter than the full file must fail — sweep a spread of
  // cut points (every 97 bytes covers all sections at this index size)
  // plus the last few bytes, which land inside the end tag.
  for (long bytes = 0; bytes < size; bytes += 97) {
    TruncateTo(path, cut, bytes);
    EXPECT_EQ(LoadSnapshot(cut), nullptr) << "prefix of " << bytes << " bytes";
  }
  for (long bytes = size - 4; bytes < size; ++bytes) {
    TruncateTo(path, cut, bytes);
    EXPECT_EQ(LoadSnapshot(cut), nullptr) << "prefix of " << bytes << " bytes";
  }
  std::remove(cut.c_str());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gat
