// Cold-cache thrash soak for the async storage tier, meant to run under
// TSan and ASan (ctest label: soak): concurrent staged batches hammer an
// AsyncDiskTier through a cache far smaller than the working set —
// every query stages cold blocks, yields its executor slot, resumes
// from an I/O completion, and demand-misses race prefetch publishes and
// evictions the whole time. Alongside, mappings register and unregister
// against the same shared cache (the hot-swap pattern), so completions
// race file retirement and id reuse.
//
// The properties thrash must not bend:
//  1. every concurrent staged batch answers bit-identically to a
//     quiescent single-threaded run (and so do all its logical
//     disk_reads totals);
//  2. nothing crashes, deadlocks, or trips the tier's CRC verification
//     under eviction/readmission churn — with both admission policies;
//  3. the churned cache's bookkeeping stays exact: residency never
//     exceeds capacity and retired files leave nothing behind.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gat/datagen/checkin_generator.h"
#include "gat/datagen/query_generator.h"
#include "gat/engine/executor.h"
#include "gat/engine/query_engine.h"
#include "gat/index/snapshot.h"
#include "gat/search/gat_search.h"
#include "gat/storage/loaded_snapshot.h"
#include "gat/storage/mapped_snapshot.h"
#include "gat/storage/prefetch.h"

namespace gat {
namespace {

constexpr uint32_t kBatchThreads = 4;
constexpr uint32_t kRounds = 6;
constexpr size_t kTopK = 7;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

class ColdCacheSoakTest : public ::testing::TestWithParam<CacheAdmission> {
 protected:
  void SetUp() override {
    dataset_ = GenerateCity(CityProfile::Testing(/*trajectories=*/300,
                                                 /*seed=*/41));
    const GatConfig config{.depth = 6, .memory_levels = 4,
                           .tas_intervals = 2};
    index_ = std::make_unique<GatIndex>(dataset_, config);
    path_ = TempPath("cold_cache_soak.gats");
    ASSERT_TRUE(SaveSnapshot(*index_, path_));

    QueryWorkloadParams wp;
    wp.num_queries = 24;
    wp.seed = 9;
    QueryGenerator qgen(dataset_, wp);
    queries_ = qgen.Workload();

    // Quiescent reference over the built index (simulated tier).
    const GatSearcher fresh(dataset_, *index_);
    const QueryEngine reference(fresh, EngineOptions{.threads = 1});
    want_ = reference.Run(queries_, kTopK, QueryKind::kAtsq);
  }

  void TearDown() override { std::remove(path_.c_str()); }

  LoadedSnapshot LoadThrashing(BlockCache* shared) const {
    MappedSnapshotOptions options;
    options.io_mode = SnapshotIoMode::kAsync;
    options.cache = shared;
    return LoadedSnapshot::LoadMapped(path_, options);
  }

  Dataset dataset_;
  std::unique_ptr<GatIndex> index_;
  std::string path_;
  std::vector<Query> queries_;
  BatchResult want_;
};

TEST_P(ColdCacheSoakTest, ConcurrentStagedBatchesStayBitIdentical) {
  // One deliberately thrash-sized shared cache: far fewer blocks than
  // the per-batch working set, so staging, demand stalls, evictions and
  // (under kScanResistant) rejections/readmissions all fire constantly.
  BlockCacheConfig cache_config;
  cache_config.block_bytes = 512;
  cache_config.capacity_bytes = 32 * 512;
  cache_config.shards = 2;
  cache_config.admission = GetParam();
  BlockCache cache(cache_config);

  const auto snap = LoadThrashing(&cache);
  ASSERT_TRUE(snap);
  ASSERT_NE(snap.mapped()->async_tier(), nullptr);
  const GatSearcher searcher(dataset_, *snap);
  const IoStager stager(snap.index(), snap.mapped()->async_tier());
  Executor executor(kBatchThreads);
  const QueryEngine engine(
      searcher, EngineOptions{.executor = &executor, .stager = &stager});

  // Background churn: mappings of the same file register against the
  // shared cache, serve a few fetches, and retire — completions and
  // ghost/frequency state must survive Unregister and id reuse.
  std::atomic<bool> stop{false};
  std::atomic<uint32_t> churn_failures{0};
  std::thread churn([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const auto transient = LoadThrashing(&cache);
      if (!transient) {  // gtest asserts stay on the main thread
        churn_failures.fetch_add(1);
        break;
      }
      DiskAccessCounter counter;
      const Apl& apl = transient->apl();
      for (TrajectoryId t = 0; t < 16 && t < apl.num_trajectories(); ++t) {
        const auto [offset, bytes] = apl.RowExtent(t);
        transient.mapped()->async_tier()->Fetch(offset, bytes, &counter);
      }
      // transient destructs here: drain, unregister, purge, id reuse.
    }
  });

  std::vector<std::thread> drivers;
  std::atomic<uint32_t> mismatches{0};
  for (uint32_t d = 0; d < 3; ++d) {
    drivers.emplace_back([&] {
      for (uint32_t round = 0; round < kRounds; ++round) {
        const BatchResult got = engine.Run(queries_, kTopK, QueryKind::kAtsq);
        if (got.totals.disk_reads != want_.totals.disk_reads) {
          mismatches.fetch_add(1);
        }
        for (size_t i = 0; i < queries_.size(); ++i) {
          if (got.results[i] != want_.results[i]) mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : drivers) t.join();
  stop.store(true, std::memory_order_release);
  churn.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(churn_failures.load(), 0u);
  EXPECT_LE(cache.ResidentBlocks(), cache.capacity_blocks());
  const BlockCacheStats stats = cache.Snapshot();
  EXPECT_GT(stats.evictions + stats.admission_rejects, 0u);  // it thrashed
  EXPECT_GT(stats.files_retired, 0u);                        // it churned
  if (GetParam() == CacheAdmission::kAdmitAll) {
    EXPECT_EQ(stats.admission_rejects, 0u);
    EXPECT_EQ(stats.ghost_hits, 0u);
  }
  EXPECT_GT(snap.mapped()->async_tier()->stats().staged_blocks, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, ColdCacheSoakTest,
    ::testing::Values(CacheAdmission::kAdmitAll,
                      CacheAdmission::kScanResistant),
    [](const ::testing::TestParamInfo<CacheAdmission>& info) {
      return info.param == CacheAdmission::kAdmitAll ? "AdmitAll"
                                                     : "ScanResistant";
    });

}  // namespace
}  // namespace gat
