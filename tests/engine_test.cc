// Tests for gat/engine: the work-stealing queue, multi-thread vs
// single-thread result equivalence (the QueryEngine determinism contract)
// and lock-free stats merging.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "gat/datagen/checkin_generator.h"
#include "gat/datagen/query_generator.h"
#include "gat/engine/executor.h"
#include "gat/engine/query_engine.h"
#include "gat/engine/work_queue.h"
#include "gat/index/gat_index.h"
#include "gat/search/gat_search.h"

namespace gat {
namespace {

// ---------------------------------------------------------------- queue

TEST(WorkStealingQueue, SingleWorkerDrainsInOrder) {
  WorkStealingQueue q(5, 1);
  size_t idx = 0;
  for (size_t expected = 0; expected < 5; ++expected) {
    ASSERT_TRUE(q.TryPop(0, &idx));
    EXPECT_EQ(idx, expected);
  }
  EXPECT_FALSE(q.TryPop(0, &idx));
}

TEST(WorkStealingQueue, EveryIndexHandedOutExactlyOnce) {
  constexpr size_t kTasks = 1000;
  constexpr uint32_t kWorkers = 7;
  WorkStealingQueue q(kTasks, kWorkers);
  std::vector<std::atomic<int>> claimed(kTasks);
  std::vector<std::thread> threads;
  for (uint32_t w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w] {
      size_t idx = 0;
      while (q.TryPop(w, &idx)) {
        ASSERT_LT(idx, kTasks);
        claimed[idx].fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(claimed[i].load(), 1) << "index " << i;
  }
}

TEST(WorkStealingQueue, StealingDrainsUnbalancedLoad) {
  // More workers than tasks: most stripes start empty, so completion
  // requires stealing to work.
  WorkStealingQueue q(3, 8);
  std::vector<std::atomic<int>> claimed(3);
  std::vector<std::thread> threads;
  for (uint32_t w = 0; w < 8; ++w) {
    threads.emplace_back([&, w] {
      size_t idx = 0;
      while (q.TryPop(w, &idx)) claimed[idx].fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(claimed[i].load(), 1);
}

// ---------------------------------------------------------------- engine

class QueryEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = GenerateCity(CityProfile::Testing(/*trajectories=*/400,
                                                 /*seed=*/11));
    index_ = std::make_unique<GatIndex>(dataset_);
    searcher_ = std::make_unique<GatSearcher>(dataset_, *index_);
    QueryWorkloadParams wp;
    wp.num_queries = 40;
    wp.seed = 99;
    queries_ = QueryGenerator(dataset_, wp).Workload();
    ASSERT_FALSE(queries_.empty());
  }

  Dataset dataset_;
  std::unique_ptr<GatIndex> index_;
  std::unique_ptr<GatSearcher> searcher_;
  std::vector<Query> queries_;
};

TEST_F(QueryEngineTest, MultiThreadMatchesSingleThreadBitIdentical) {
  QueryEngine single(*searcher_, EngineOptions{.threads = 1});
  QueryEngine pooled(*searcher_, EngineOptions{.threads = 4});
  ASSERT_EQ(pooled.threads(), 4u);

  for (const QueryKind kind : {QueryKind::kAtsq, QueryKind::kOatsq}) {
    const BatchResult st = single.Run(queries_, /*k=*/10, kind);
    const BatchResult mt = pooled.Run(queries_, /*k=*/10, kind);
    ASSERT_EQ(st.results.size(), queries_.size());
    ASSERT_EQ(mt.results.size(), queries_.size());
    for (size_t i = 0; i < queries_.size(); ++i) {
      // operator== on SearchResult compares trajectory id and the exact
      // double distance — bit-identical, not approximately equal.
      EXPECT_EQ(st.results[i], mt.results[i]) << "query " << i;
    }
  }
}

TEST_F(QueryEngineTest, ResultsIdenticalAcrossRepeatedRuns) {
  QueryEngine pooled(*searcher_, EngineOptions{.threads = 4});
  const BatchResult a = pooled.Run(queries_, /*k=*/5, QueryKind::kAtsq);
  const BatchResult b = pooled.Run(queries_, /*k=*/5, QueryKind::kAtsq);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i], b.results[i]);
  }
}

TEST_F(QueryEngineTest, MergedStatsEqualSequentialSums) {
  // The per-thread slots must merge to exactly the counters a sequential
  // loop accumulates: every counter is deterministic per query, and each
  // query lands in exactly one slot.
  SearchStats expected;
  for (const Query& q : queries_) {
    SearchStats per_query;
    searcher_->Search(q, /*k=*/10, QueryKind::kAtsq, &per_query);
    per_query.elapsed_ms = 0.0;  // timing is the one non-deterministic field
    expected += per_query;
  }

  QueryEngine pooled(*searcher_, EngineOptions{.threads = 4});
  BatchResult batch = pooled.Run(queries_, /*k=*/10, QueryKind::kAtsq);

  EXPECT_EQ(batch.totals.candidates_retrieved, expected.candidates_retrieved);
  EXPECT_EQ(batch.totals.tas_pruned, expected.tas_pruned);
  EXPECT_EQ(batch.totals.activity_rejected, expected.activity_rejected);
  EXPECT_EQ(batch.totals.mib_rejected, expected.mib_rejected);
  EXPECT_EQ(batch.totals.distance_computations,
            expected.distance_computations);
  EXPECT_EQ(batch.totals.nodes_popped, expected.nodes_popped);
  EXPECT_EQ(batch.totals.heap_pushes, expected.heap_pushes);
  EXPECT_EQ(batch.totals.rounds, expected.rounds);
  EXPECT_EQ(batch.totals.disk_reads, expected.disk_reads);

  // Cross-check the lock-free merge itself: totals == sum of slots.
  SearchStats resummed;
  for (const SearchStats& s : batch.per_thread) resummed += s;
  EXPECT_EQ(batch.totals.candidates_retrieved, resummed.candidates_retrieved);
  EXPECT_EQ(batch.totals.disk_reads, resummed.disk_reads);
  EXPECT_EQ(batch.per_thread.size(), 4u);
}

TEST_F(QueryEngineTest, EmptyBatch) {
  QueryEngine pooled(*searcher_, EngineOptions{.threads = 4});
  const BatchResult batch = pooled.Run({}, /*k=*/10, QueryKind::kAtsq);
  EXPECT_TRUE(batch.results.empty());
  EXPECT_EQ(batch.totals.candidates_retrieved, 0u);
}

TEST_F(QueryEngineTest, MoreThreadsThanQueries) {
  const std::vector<Query> two(queries_.begin(), queries_.begin() + 2);
  QueryEngine pooled(*searcher_, EngineOptions{.threads = 8});
  QueryEngine single(*searcher_, EngineOptions{.threads = 1});
  const BatchResult mt = pooled.Run(two, /*k=*/10, QueryKind::kAtsq);
  const BatchResult st = single.Run(two, /*k=*/10, QueryKind::kAtsq);
  ASSERT_EQ(mt.results.size(), 2u);
  for (size_t i = 0; i < 2; ++i) EXPECT_EQ(mt.results[i], st.results[i]);
}

TEST_F(QueryEngineTest, OwningConstructor) {
  auto owned = std::make_unique<GatSearcher>(dataset_, *index_);
  QueryEngine engine(std::move(owned), EngineOptions{.threads = 2});
  const BatchResult batch = engine.Run(queries_, /*k=*/3, QueryKind::kAtsq);
  EXPECT_EQ(batch.results.size(), queries_.size());
  EXPECT_EQ(batch.threads_used, 2u);
}

TEST_F(QueryEngineTest, SharedExecutorMatchesOwnedPool) {
  // EngineOptions::executor: the engine becomes a thin client of an
  // external pool; answers must not depend on who owns the threads.
  Executor executor(3);
  QueryEngine shared(*searcher_, EngineOptions{.executor = &executor});
  EXPECT_EQ(shared.threads(), 3u);
  EXPECT_EQ(shared.executor(), &executor);
  QueryEngine single(*searcher_, EngineOptions{.threads = 1});
  const BatchResult got = shared.Run(queries_, /*k=*/7, QueryKind::kAtsq);
  const BatchResult want = single.Run(queries_, /*k=*/7, QueryKind::kAtsq);
  ASSERT_EQ(got.results.size(), want.results.size());
  for (size_t i = 0; i < queries_.size(); ++i) {
    EXPECT_EQ(got.results[i], want.results[i]) << "query " << i;
  }
}

TEST_F(QueryEngineTest, TwoEnginesPipelineOnOneExecutor) {
  // Two engines (different k) share one pool from two caller threads —
  // the cross-batch pipelining shape. Each batch must be bit-identical
  // to its single-threaded reference.
  Executor executor(4);
  QueryEngine a(*searcher_, EngineOptions{.executor = &executor});
  QueryEngine b(*searcher_, EngineOptions{.executor = &executor});
  QueryEngine single(*searcher_, EngineOptions{.threads = 1});
  const BatchResult want_a = single.Run(queries_, /*k=*/3, QueryKind::kAtsq);
  const BatchResult want_b = single.Run(queries_, /*k=*/8, QueryKind::kOatsq);

  BatchResult got_a, got_b;
  std::thread caller_a(
      [&] { got_a = a.Run(queries_, /*k=*/3, QueryKind::kAtsq); });
  std::thread caller_b(
      [&] { got_b = b.Run(queries_, /*k=*/8, QueryKind::kOatsq); });
  caller_a.join();
  caller_b.join();
  for (size_t i = 0; i < queries_.size(); ++i) {
    EXPECT_EQ(got_a.results[i], want_a.results[i]) << "batch a, query " << i;
    EXPECT_EQ(got_b.results[i], want_b.results[i]) << "batch b, query " << i;
  }
}

TEST_F(QueryEngineTest, PerQueryLatenciesArePopulated) {
  QueryEngine pooled(*searcher_, EngineOptions{.threads = 4});
  const BatchResult batch = pooled.Run(queries_, /*k=*/5, QueryKind::kAtsq);
  ASSERT_EQ(batch.latencies.size(), queries_.size());
  uint64_t critical_total = 0;
  for (const QueryLatency& lat : batch.latencies) {
    EXPECT_GE(lat.wall_ms, 0.0);
    critical_total += lat.critical_disk_reads;
  }
  // A sequential searcher's critical path is its disk_reads, so the
  // per-query values must sum to the batch counter exactly.
  EXPECT_EQ(critical_total, batch.totals.disk_reads);
}

}  // namespace
}  // namespace gat
