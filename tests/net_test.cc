// Tests for gat/net without sockets: codec round trips with
// encode→decode→encode byte identity, the full corruption matrix
// (truncation, oversized lengths, bad magic/version/type, flipped
// payload bits, structural inconsistencies — every case a clean
// reject, never a crash), the Session state machine on dribbled and
// batched buffers, and the zero-engine-work fast-path dispatch on a
// ManualClock front door.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "gat/common/clock.h"
#include "gat/datagen/checkin_generator.h"
#include "gat/datagen/query_generator.h"
#include "gat/engine/executor.h"
#include "gat/engine/query_engine.h"
#include "gat/live/live_index.h"
#include "gat/net/client.h"
#include "gat/net/codec.h"
#include "gat/net/server.h"
#include "gat/net/session.h"
#include "gat/search/gat_search.h"
#include "gat/serve/front_door.h"

namespace gat {
namespace {

using wire::BuildFrame;
using wire::DecodeIngestAckPayload;
using wire::DecodeIngestPayload;
using wire::DecodeRequestPayload;
using wire::DecodeResultPayload;
using wire::EncodeIngestAckPayload;
using wire::EncodeIngestFrame;
using wire::EncodeIngestPayload;
using wire::EncodeRequestFrame;
using wire::EncodeRequestPayload;
using wire::EncodeResultFrame;
using wire::EncodeResultPayload;
using wire::FrameHeader;
using wire::FrameType;
using wire::InboundFrame;
using wire::ParseFrameHeader;
using wire::Session;

std::vector<Query> TestQueries(const Dataset& dataset, uint64_t seed,
                               uint32_t count) {
  QueryWorkloadParams wp;
  wp.num_queries = count;
  wp.seed = seed;
  QueryGenerator qgen(dataset, wp);
  return qgen.Workload();
}

ServeRequest MakeRequest() {
  ServeRequest request;
  request.tenant = 42;
  request.priority = RequestPriority::kBulk;
  request.deadline_micros = 123'456'789;
  request.k = 7;
  request.kind = QueryKind::kOatsq;
  request.queries.push_back(Query(std::vector<QueryPoint>{
      {{1.5, -2.25}, {3, 9, 11}}, {{0.0, 4.5}, {2}}}));
  request.queries.push_back(
      Query(std::vector<QueryPoint>{{{-7.125, 8.0}, {1, 5}}}));
  return request;
}

ServeResult MakeOkResult() {
  ServeResult result;
  result.status = ServeStatus::kOk;
  result.batch.results.push_back(
      {SearchResult{4, 0.5}, SearchResult{17, 1.25}});
  result.batch.results.push_back({SearchResult{2, 3.75}});
  result.batch.statuses = {QueryStatus::kOk, QueryStatus::kOk};
  result.batch.totals.candidates_retrieved = 31;
  result.batch.totals.tas_pruned = 7;
  result.batch.totals.distance_computations = 24;
  result.batch.totals.disk_reads = 5;
  result.batch.totals.index_pins = 2;
  result.batch.totals.elapsed_ms = 1.5;
  return result;
}

bool StatsEqual(const SearchStats& a, const SearchStats& b) {
  return a.candidates_retrieved == b.candidates_retrieved &&
         a.tas_pruned == b.tas_pruned &&
         a.activity_rejected == b.activity_rejected &&
         a.mib_rejected == b.mib_rejected &&
         a.distance_computations == b.distance_computations &&
         a.nodes_popped == b.nodes_popped &&
         a.heap_pushes == b.heap_pushes && a.rounds == b.rounds &&
         a.disk_reads == b.disk_reads && a.block_hits == b.block_hits &&
         a.blocks_read == b.blocks_read && a.index_pins == b.index_pins &&
         a.deadline_skips == b.deadline_skips &&
         a.critical_disk_reads == b.critical_disk_reads &&
         a.elapsed_ms == b.elapsed_ms;
}

// ---------------------------------------------------------- round trips

TEST(WireCodec, RequestRoundTripIsByteIdentical) {
  const ServeRequest request = MakeRequest();
  const std::string payload = EncodeRequestPayload(request);

  ServeRequest decoded;
  ASSERT_TRUE(DecodeRequestPayload(payload, &decoded));
  EXPECT_EQ(decoded.tenant, request.tenant);
  EXPECT_EQ(decoded.priority, request.priority);
  EXPECT_EQ(decoded.deadline_micros, request.deadline_micros);
  EXPECT_EQ(decoded.k, request.k);
  EXPECT_EQ(decoded.kind, request.kind);
  ASSERT_EQ(decoded.queries.size(), request.queries.size());
  for (size_t q = 0; q < decoded.queries.size(); ++q) {
    ASSERT_EQ(decoded.queries[q].size(), request.queries[q].size());
    for (size_t p = 0; p < decoded.queries[q].size(); ++p) {
      EXPECT_EQ(decoded.queries[q][p].location.x,
                request.queries[q][p].location.x);
      EXPECT_EQ(decoded.queries[q][p].location.y,
                request.queries[q][p].location.y);
      EXPECT_EQ(decoded.queries[q][p].activities,
                request.queries[q][p].activities);
    }
  }
  // The second encode closes the loop: byte identity, not just field
  // equality — the discipline every determinism gate builds on.
  EXPECT_EQ(EncodeRequestPayload(decoded), payload);
  EXPECT_EQ(EncodeRequestFrame(decoded), EncodeRequestFrame(request));
}

TEST(WireCodec, OkResultRoundTripIsByteIdentical) {
  const ServeResult result = MakeOkResult();
  const std::string payload = EncodeResultPayload(result);

  ServeResult decoded;
  ASSERT_TRUE(DecodeResultPayload(payload, &decoded));
  EXPECT_EQ(decoded.status, ServeStatus::kOk);
  EXPECT_EQ(decoded.shed_reason, ShedReason::kNone);
  EXPECT_EQ(decoded.batch.results, result.batch.results);
  EXPECT_EQ(decoded.batch.statuses, result.batch.statuses);
  EXPECT_TRUE(StatsEqual(decoded.batch.totals, result.batch.totals));
  EXPECT_EQ(EncodeResultPayload(decoded), payload);
  EXPECT_EQ(EncodeResultFrame(decoded), EncodeResultFrame(result));
}

TEST(WireCodec, ShedResultRoundTripIsByteIdentical) {
  ServeResult shed;
  shed.status = ServeStatus::kShed;
  shed.shed_reason = ShedReason::kTenantRateLimit;
  shed.shed_tenant = 9;
  const std::string payload = EncodeResultPayload(shed);

  ServeResult decoded;
  ASSERT_TRUE(DecodeResultPayload(payload, &decoded));
  EXPECT_EQ(decoded.status, ServeStatus::kShed);
  EXPECT_EQ(decoded.shed_reason, ShedReason::kTenantRateLimit);
  EXPECT_EQ(decoded.shed_tenant, 9u);
  EXPECT_TRUE(decoded.batch.results.empty());
  EXPECT_EQ(EncodeResultPayload(decoded), payload);
}

TEST(WireCodec, DeadlineResultRoundTripIsByteIdentical) {
  // Mid-batch expiry: statuses are mixed, every list is cleared, the
  // stats record the burnt work.
  ServeResult expired;
  expired.status = ServeStatus::kDeadlineExceeded;
  expired.batch.results = {{}, {}};
  expired.batch.statuses = {QueryStatus::kOk, QueryStatus::kDeadlineExceeded};
  expired.batch.deadline_exceeded = 1;
  expired.batch.totals.deadline_skips = 1;
  expired.batch.totals.rounds = 3;
  const std::string payload = EncodeResultPayload(expired);

  ServeResult decoded;
  ASSERT_TRUE(DecodeResultPayload(payload, &decoded));
  EXPECT_EQ(decoded.status, ServeStatus::kDeadlineExceeded);
  EXPECT_EQ(decoded.batch.deadline_exceeded, 1u);
  EXPECT_EQ(decoded.batch.statuses,
            (std::vector<QueryStatus>{QueryStatus::kOk,
                                      QueryStatus::kDeadlineExceeded}));
  EXPECT_EQ(EncodeResultPayload(decoded), payload);
}

IngestRequest MakeIngest() {
  IngestRequest request;
  request.tenant = 42;
  request.checkins.push_back({/*user=*/7, {1.5, -2.25}, {3, 9, 11}});
  request.checkins.push_back({/*user=*/7, {0.0, 4.5}, {2}});
  request.checkins.push_back({/*user=*/8, {-7.125, 8.0}, {}});
  return request;
}

TEST(WireCodec, IngestRoundTripIsByteIdentical) {
  const IngestRequest request = MakeIngest();
  const std::string payload = EncodeIngestPayload(request);

  IngestRequest decoded;
  ASSERT_TRUE(DecodeIngestPayload(payload, &decoded));
  EXPECT_EQ(decoded.tenant, request.tenant);
  ASSERT_EQ(decoded.checkins.size(), request.checkins.size());
  for (size_t i = 0; i < decoded.checkins.size(); ++i) {
    EXPECT_EQ(decoded.checkins[i].user, request.checkins[i].user);
    EXPECT_EQ(decoded.checkins[i].location.x, request.checkins[i].location.x);
    EXPECT_EQ(decoded.checkins[i].location.y, request.checkins[i].location.y);
    EXPECT_EQ(decoded.checkins[i].activities, request.checkins[i].activities);
  }
  EXPECT_EQ(EncodeIngestPayload(decoded), payload);
  EXPECT_EQ(EncodeIngestFrame(decoded), EncodeIngestFrame(request));
}

TEST(WireCodec, IngestAckRoundTripsEveryProducibleState) {
  // The four states FrontDoor::Ingest can produce, each byte-identical
  // through the loop.
  IngestResult ok;
  ok.status = IngestStatus::kOk;
  ok.accepted = 3;
  ok.watermark = 17;
  IngestResult shed;
  shed.status = IngestStatus::kShed;
  shed.shed_reason = ShedReason::kWriteRateLimit;
  shed.shed_tenant = 42;
  IngestResult invalid;
  invalid.status = IngestStatus::kInvalid;
  IngestResult unavailable;
  unavailable.status = IngestStatus::kUnavailable;

  for (const IngestResult& result : {ok, shed, invalid, unavailable}) {
    const std::string payload = EncodeIngestAckPayload(result);
    IngestResult decoded;
    ASSERT_TRUE(DecodeIngestAckPayload(payload, &decoded));
    EXPECT_EQ(decoded.status, result.status);
    EXPECT_EQ(decoded.shed_reason, result.shed_reason);
    EXPECT_EQ(decoded.shed_tenant, result.shed_tenant);
    EXPECT_EQ(decoded.accepted, result.accepted);
    EXPECT_EQ(decoded.watermark, result.watermark);
    EXPECT_EQ(EncodeIngestAckPayload(decoded), payload);
  }
}

// ----------------------------------------------------- header validation

TEST(WireCodec, HeaderParsesItsOwnEncoding) {
  const std::string frame = BuildFrame(FrameType::kServeRequest, "abcd");
  ASSERT_EQ(frame.size(), wire::kHeaderBytes + 4);
  FrameHeader header;
  ASSERT_TRUE(ParseFrameHeader(frame.data(), frame.size(), &header));
  EXPECT_EQ(header.type, FrameType::kServeRequest);
  EXPECT_EQ(header.payload_bytes, 4u);
  EXPECT_TRUE(wire::VerifyPayload(header, "abcd"));
  EXPECT_FALSE(wire::VerifyPayload(header, "abce"));
}

TEST(WireCodec, HeaderRejectsBadMagicVersionTypeAndLength) {
  const std::string good = BuildFrame(FrameType::kServeRequest, "abcd");
  FrameHeader header;

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_FALSE(ParseFrameHeader(bad_magic.data(), bad_magic.size(), &header));

  std::string bad_version = good;
  bad_version[4] = 99;
  EXPECT_FALSE(
      ParseFrameHeader(bad_version.data(), bad_version.size(), &header));

  std::string bad_type = good;
  bad_type[8] = 77;
  EXPECT_FALSE(ParseFrameHeader(bad_type.data(), bad_type.size(), &header));

  // Declared length over the cap: rejected from the header alone,
  // before any payload byte exists (or is allocated).
  std::string oversized = good;
  const uint32_t huge = wire::kMaxPayloadBytes + 1;
  std::memcpy(&oversized[12], &huge, sizeof(huge));
  EXPECT_FALSE(ParseFrameHeader(oversized.data(), oversized.size(), &header));
}

// ----------------------------------------------------- corruption matrix

TEST(WireCodec, RequestDecodeRejectsStructuralCorruption) {
  const ServeRequest request = MakeRequest();
  const std::string payload = EncodeRequestPayload(request);
  ServeRequest out;

  // Truncation at every prefix length: reject, never a crash. (This
  // sweeps the truncated-frame case at the payload layer.)
  for (size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(
        DecodeRequestPayload(std::string_view(payload.data(), len), &out))
        << "accepted a " << len << "-byte prefix";
  }

  // Trailing bytes are a reject, not padding.
  EXPECT_FALSE(DecodeRequestPayload(payload + std::string(4, '\0'), &out));

  auto corrupt_u32 = [&](size_t offset, uint32_t value) {
    std::string bad = payload;
    std::memcpy(&bad[offset], &value, sizeof(value));
    return bad;
  };
  // Payload layout: tenant@0, priority@4, kind@8, k@12, deadline@16,
  // num_queries@24, then per-query data.
  EXPECT_FALSE(DecodeRequestPayload(corrupt_u32(4, 2), &out));  // priority
  EXPECT_FALSE(DecodeRequestPayload(corrupt_u32(8, 9), &out));  // kind
  EXPECT_FALSE(DecodeRequestPayload(corrupt_u32(12, 0), &out));  // k = 0
  EXPECT_FALSE(
      DecodeRequestPayload(corrupt_u32(12, wire::kMaxTopK + 1), &out));
  EXPECT_FALSE(DecodeRequestPayload(corrupt_u32(24, 0), &out));  // 0 queries
  EXPECT_FALSE(DecodeRequestPayload(
      corrupt_u32(24, wire::kMaxQueriesPerRequest + 1), &out));
  // num_points of query 0 (offset 28): zero and absurd both reject.
  EXPECT_FALSE(DecodeRequestPayload(corrupt_u32(28, 0), &out));
  EXPECT_FALSE(DecodeRequestPayload(
      corrupt_u32(28, wire::kMaxPointsPerQuery + 1), &out));

  // Non-finite coordinate (x of the first point, offset 32).
  std::string nan_payload = payload;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::memcpy(&nan_payload[32], &nan, sizeof(nan));
  EXPECT_FALSE(DecodeRequestPayload(nan_payload, &out));

  // Activities must be strictly ascending: the first point of query 0
  // carries {3, 9, 11} at offset 52 (after x@32, y@40, count@48).
  EXPECT_FALSE(DecodeRequestPayload(corrupt_u32(56, 3), &out));  // 3,3,11
  EXPECT_FALSE(DecodeRequestPayload(corrupt_u32(56, 1), &out));  // 3,1,11
}

TEST(WireCodec, ResultDecodeRejectsInconsistentState) {
  ServeResult out;

  // A shed that carries batch slots, or a non-shed with shed detail.
  ServeResult shed;
  shed.status = ServeStatus::kShed;
  shed.shed_reason = ShedReason::kTenantRateLimit;
  shed.shed_tenant = 1;
  std::string payload = EncodeResultPayload(shed);
  auto corrupt_u32 = [](std::string s, size_t offset, uint32_t value) {
    std::memcpy(&s[offset], &value, sizeof(value));
    return s;
  };
  // Layout: status@0, shed_reason@4, shed_tenant@8,
  // deadline_exceeded@12 (u64), num_queries@20.
  EXPECT_FALSE(
      DecodeResultPayload(corrupt_u32(payload, 4, 0), &out));  // no reason
  EXPECT_FALSE(
      DecodeResultPayload(corrupt_u32(payload, 0, 3), &out));  // bad status
  EXPECT_FALSE(DecodeResultPayload(corrupt_u32(payload, 4, 200), &out));
  // kWriteRateLimit exists on the wire but only in ingest acks — the
  // serve path never sheds for the write bucket, so a serve response
  // claiming it is a protocol violation, not a forward-compat accept.
  EXPECT_FALSE(DecodeResultPayload(corrupt_u32(payload, 4, 2), &out));

  const ServeResult ok = MakeOkResult();
  payload = EncodeResultPayload(ok);
  EXPECT_FALSE(
      DecodeResultPayload(corrupt_u32(payload, 4, 1), &out));  // reason on ok
  EXPECT_FALSE(
      DecodeResultPayload(corrupt_u32(payload, 8, 5), &out));  // tenant on ok
  // deadline_exceeded must equal the count of expired statuses (0 here).
  EXPECT_FALSE(DecodeResultPayload(corrupt_u32(payload, 12, 1), &out));
  // Truncation sweep on the response payload too.
  for (size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(
        DecodeResultPayload(std::string_view(payload.data(), len), &out));
  }
  EXPECT_FALSE(DecodeResultPayload(payload + std::string(4, '\0'), &out));
}

TEST(WireCodec, IngestDecodeRejectsStructuralCorruption) {
  const IngestRequest request = MakeIngest();
  const std::string payload = EncodeIngestPayload(request);
  IngestRequest out;

  // Truncation at every prefix length: reject, never a crash.
  for (size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(
        DecodeIngestPayload(std::string_view(payload.data(), len), &out))
        << "accepted a " << len << "-byte prefix";
  }
  EXPECT_FALSE(DecodeIngestPayload(payload + std::string(4, '\0'), &out));

  auto corrupt_u32 = [&](size_t offset, uint32_t value) {
    std::string bad = payload;
    std::memcpy(&bad[offset], &value, sizeof(value));
    return bad;
  };
  // Payload layout: tenant@0, num_checkins@4; first check-in: user@8
  // (u64), x@16, y@24, num_activities@32, activities@36.
  EXPECT_FALSE(DecodeIngestPayload(corrupt_u32(4, 0), &out));  // empty batch
  EXPECT_FALSE(DecodeIngestPayload(
      corrupt_u32(4, wire::kMaxCheckInsPerIngest + 1), &out));
  EXPECT_FALSE(DecodeIngestPayload(
      corrupt_u32(32, wire::kMaxActivitiesPerPoint + 1), &out));

  // Non-finite coordinate (x of the first check-in, offset 16).
  std::string nan_payload = payload;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::memcpy(&nan_payload[16], &nan, sizeof(nan));
  EXPECT_FALSE(DecodeIngestPayload(nan_payload, &out));

  // Activities must be strictly ascending: the first check-in carries
  // {3, 9, 11} at offset 36.
  EXPECT_FALSE(DecodeIngestPayload(corrupt_u32(40, 3), &out));  // 3,3,11
  EXPECT_FALSE(DecodeIngestPayload(corrupt_u32(40, 1), &out));  // 3,1,11
}

TEST(WireCodec, IngestAckDecodeRejectsInconsistentState) {
  IngestResult out;
  auto corrupt_u32 = [](std::string s, size_t offset, uint32_t value) {
    std::memcpy(&s[offset], &value, sizeof(value));
    return s;
  };

  // Layout: status@0, shed_reason@4, shed_tenant@8, accepted@12 (u64),
  // watermark@20 (u64).
  IngestResult ok;
  ok.status = IngestStatus::kOk;
  ok.accepted = 3;
  ok.watermark = 17;
  std::string payload = EncodeIngestAckPayload(ok);
  EXPECT_FALSE(
      DecodeIngestAckPayload(corrupt_u32(payload, 0, 7), &out));  // bad status
  EXPECT_FALSE(
      DecodeIngestAckPayload(corrupt_u32(payload, 4, 1), &out));  // reason on ok
  EXPECT_FALSE(
      DecodeIngestAckPayload(corrupt_u32(payload, 8, 5), &out));  // tenant on ok
  EXPECT_FALSE(
      DecodeIngestAckPayload(corrupt_u32(payload, 12, 0), &out));  // ok, 0 rows
  // watermark below accepted: the cumulative count cannot lag the batch.
  EXPECT_FALSE(DecodeIngestAckPayload(corrupt_u32(payload, 20, 2), &out));

  IngestResult shed;
  shed.status = IngestStatus::kShed;
  shed.shed_reason = ShedReason::kWriteRateLimit;
  shed.shed_tenant = 42;
  payload = EncodeIngestAckPayload(shed);
  // A shed ack names the one write shed policy and nothing else.
  EXPECT_FALSE(DecodeIngestAckPayload(corrupt_u32(payload, 4, 0), &out));
  EXPECT_FALSE(DecodeIngestAckPayload(corrupt_u32(payload, 4, 1), &out));
  // A shed applied nothing.
  EXPECT_FALSE(DecodeIngestAckPayload(corrupt_u32(payload, 12, 1), &out));

  // Truncation and trailing bytes.
  for (size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(
        DecodeIngestAckPayload(std::string_view(payload.data(), len), &out));
  }
  EXPECT_FALSE(DecodeIngestAckPayload(payload + std::string(4, '\0'), &out));
}

// ------------------------------------------------------------- session

TEST(WireSession, ReassemblesDribbledBytesAndPipelinedFrames) {
  const ServeRequest request = MakeRequest();
  const std::string frame = EncodeRequestFrame(request);

  // One byte at a time: kNeedMore until the last byte lands.
  Session session;
  InboundFrame out;
  for (size_t i = 0; i + 1 < frame.size(); ++i) {
    session.Append(&frame[i], 1);
    ASSERT_EQ(session.Next(&out), Session::Event::kNeedMore);
  }
  session.Append(&frame[frame.size() - 1], 1);
  ASSERT_EQ(session.Next(&out), Session::Event::kRequest);
  ASSERT_EQ(out.kind, InboundFrame::Kind::kRequest);
  EXPECT_EQ(EncodeRequestPayload(out.request), EncodeRequestPayload(request));
  EXPECT_EQ(session.Next(&out), Session::Event::kNeedMore);

  // Two frames in one Append: two requests, in order.
  Session pipelined;
  const std::string two = frame + frame;
  pipelined.Append(two.data(), two.size());
  EXPECT_EQ(pipelined.Next(&out), Session::Event::kRequest);
  EXPECT_EQ(pipelined.Next(&out), Session::Event::kRequest);
  EXPECT_EQ(pipelined.Next(&out), Session::Event::kNeedMore);
  EXPECT_EQ(pipelined.frames_decoded(), 2u);
}

TEST(WireSession, MalformedInputClosesPermanently) {
  const std::string frame = EncodeRequestFrame(MakeRequest());
  InboundFrame out;

  // A flipped payload bit: the CRC catches it at frame level.
  {
    Session session;
    std::string bad = frame;
    bad[bad.size() - 3] ^= 0x40;
    session.Append(bad.data(), bad.size());
    EXPECT_EQ(session.Next(&out), Session::Event::kClosed);
    EXPECT_TRUE(session.closed());
    // Closed is absorbing: even a pristine frame is not read anymore.
    session.Append(frame.data(), frame.size());
    EXPECT_EQ(session.Next(&out), Session::Event::kClosed);
    EXPECT_EQ(session.frames_decoded(), 0u);
  }

  // A valid frame followed by garbage: the request is delivered, then
  // the session closes on the bad magic.
  {
    Session session;
    // (at least kHeaderBytes of junk, so the header parse actually runs)
    const std::string stream = frame + std::string(24, 'J');
    session.Append(stream.data(), stream.size());
    EXPECT_EQ(session.Next(&out), Session::Event::kRequest);
    EXPECT_EQ(session.Next(&out), Session::Event::kClosed);
  }

  // A response frame where requests belong: wrong direction, closed.
  {
    Session session;
    const std::string response = EncodeResultFrame(MakeOkResult());
    session.Append(response.data(), response.size());
    EXPECT_EQ(session.Next(&out), Session::Event::kClosed);
  }

  // A zero-query request hand-built at the frame layer (the encoder
  // refuses to produce one): protocol violation, closed.
  {
    Session session;
    std::string payload = EncodeRequestPayload(MakeRequest());
    const uint32_t zero = 0;
    std::memcpy(&payload[24], &zero, sizeof(zero));
    payload.resize(28);  // num_queries = 0, nothing after
    const std::string bad = BuildFrame(FrameType::kServeRequest, payload);
    session.Append(bad.data(), bad.size());
    EXPECT_EQ(session.Next(&out), Session::Event::kClosed);
  }

  // An ingest ack where client frames belong: wrong direction, closed.
  {
    Session session;
    IngestResult ok;
    ok.status = IngestStatus::kOk;
    ok.accepted = 1;
    ok.watermark = 1;
    const std::string ack = wire::EncodeIngestAckFrame(ok);
    session.Append(ack.data(), ack.size());
    EXPECT_EQ(session.Next(&out), Session::Event::kClosed);
  }
}

TEST(WireSession, InterleavesIngestAndServeFramesInArrivalOrder) {
  const ServeRequest request = MakeRequest();
  const IngestRequest ingest = MakeIngest();
  const std::string stream = EncodeRequestFrame(request) +
                             EncodeIngestFrame(ingest) +
                             EncodeRequestFrame(request);

  Session session;
  session.Append(stream.data(), stream.size());
  InboundFrame out;
  ASSERT_EQ(session.Next(&out), Session::Event::kRequest);
  EXPECT_EQ(out.kind, InboundFrame::Kind::kRequest);
  ASSERT_EQ(session.Next(&out), Session::Event::kRequest);
  ASSERT_EQ(out.kind, InboundFrame::Kind::kIngest);
  EXPECT_EQ(EncodeIngestPayload(out.ingest), EncodeIngestPayload(ingest));
  ASSERT_EQ(session.Next(&out), Session::Event::kRequest);
  EXPECT_EQ(out.kind, InboundFrame::Kind::kRequest);
  EXPECT_EQ(EncodeRequestPayload(out.request), EncodeRequestPayload(request));
  EXPECT_EQ(session.Next(&out), Session::Event::kNeedMore);
  EXPECT_EQ(session.frames_decoded(), 3u);

  // A corrupt ingest frame closes like a corrupt request frame.
  Session poisoned;
  std::string bad = EncodeIngestFrame(ingest);
  bad[bad.size() - 3] ^= 0x40;
  poisoned.Append(bad.data(), bad.size());
  EXPECT_EQ(poisoned.Next(&out), Session::Event::kClosed);
  EXPECT_TRUE(poisoned.closed());
}

// ----------------------------------------------- fast-path dispatch

class WireDispatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = GenerateCity(CityProfile::Testing(/*trajectories=*/200,
                                                 /*seed=*/29));
    index_ = std::make_unique<GatIndex>(dataset_);
    searcher_ = std::make_unique<GatSearcher>(dataset_, *index_);
    queries_ = TestQueries(dataset_, /*seed=*/7, /*count=*/8);
  }

  Dataset dataset_;
  std::unique_ptr<GatIndex> index_;
  std::unique_ptr<GatSearcher> searcher_;
  std::vector<Query> queries_;
};

TEST_F(WireDispatchTest, FastPathAnswersShedAndExpiredWithZeroTasks) {
  ManualClock clock;
  Executor executor(2);
  QueryEngine engine(*searcher_, EngineOptions{.executor = &executor});
  FrontDoorOptions options;
  options.clock = &clock;
  options.default_quota = TenantQuota{0.0, 2.0};
  FrontDoor door(engine, options);

  ServeRequest request;
  request.queries = queries_;
  request.k = 3;

  // Live and admitted: the fast path declines, no task yet.
  std::string frame;
  uint64_t before = executor.tasks_submitted();
  EXPECT_EQ(wire::TryServeFastPath(door, request, &frame),
            wire::DispatchOutcome::kNeedsEngine);
  EXPECT_EQ(executor.tasks_submitted() - before, 0u);

  // Expired at entry: answered with zero tasks.
  ServeRequest late = request;
  late.deadline_micros = 1;
  clock.SetMicros(10);
  before = executor.tasks_submitted();
  ASSERT_EQ(wire::TryServeFastPath(door, late, &frame),
            wire::DispatchOutcome::kResponded);
  EXPECT_EQ(executor.tasks_submitted() - before, 0u);
  ServeResult decoded;
  ASSERT_TRUE(DecodeResultPayload(
      std::string_view(frame).substr(wire::kHeaderBytes), &decoded));
  EXPECT_EQ(decoded.status, ServeStatus::kDeadlineExceeded);

  // Bucket empty (burst 2, both tokens above): shed with zero tasks,
  // carrying the machine-readable reason.
  before = executor.tasks_submitted();
  ASSERT_EQ(wire::TryServeFastPath(door, request, &frame),
            wire::DispatchOutcome::kResponded);
  EXPECT_EQ(executor.tasks_submitted() - before, 0u);
  ASSERT_TRUE(DecodeResultPayload(
      std::string_view(frame).substr(wire::kHeaderBytes), &decoded));
  EXPECT_EQ(decoded.status, ServeStatus::kShed);
  EXPECT_EQ(decoded.shed_reason, ShedReason::kTenantRateLimit);
  EXPECT_EQ(decoded.shed_tenant, request.tenant);
}

TEST_F(WireDispatchTest, ServeFrameMatchesInProcessServe) {
  ManualClock clock;
  QueryEngine engine(*searcher_, EngineOptions{.threads = 1});
  FrontDoorOptions options;
  options.clock = &clock;
  FrontDoor door(engine, options);

  ServeRequest request;
  request.queries = queries_;
  request.k = 5;

  const std::string frame = wire::ServeFrame(door, request);
  ServeResult via_wire;
  ASSERT_TRUE(DecodeResultPayload(
      std::string_view(frame).substr(wire::kHeaderBytes), &via_wire));
  const ServeResult direct = door.Serve(request);
  ASSERT_EQ(via_wire.status, ServeStatus::kOk);
  EXPECT_EQ(via_wire.batch.results, direct.batch.results);
  EXPECT_EQ(via_wire.batch.statuses, direct.batch.statuses);
  // elapsed_ms is wall clock and differs between the two runs; every
  // deterministic counter must agree.
  SearchStats wire_totals = via_wire.batch.totals;
  SearchStats direct_totals = direct.batch.totals;
  wire_totals.elapsed_ms = direct_totals.elapsed_ms = 0.0;
  EXPECT_TRUE(StatsEqual(wire_totals, direct_totals));
}

TEST_F(WireDispatchTest, IngestFrameCarriesEveryFrontDoorOutcome) {
  ManualClock clock;
  QueryEngine engine(*searcher_, EngineOptions{.threads = 1});
  FrontDoorOptions options;
  options.clock = &clock;
  // Burst 9, no refill: three 3-check-in batches get through admission
  // (admission charges per check-in whether or not the batch applies),
  // the fourth sheds.
  options.default_write_quota = TenantQuota{0.0, 9.0};
  FrontDoor door(engine, options);

  // A batch the live index will accept: check-ins at locations the
  // dataset already covers, with in-vocabulary activities.
  IngestRequest request;
  request.tenant = 42;
  for (size_t i = 0; i < 3; ++i) {
    const TrajectoryPoint& p = dataset_.trajectories()[i].points().front();
    request.checkins.push_back({/*user=*/900 + i, p.location, p.activities});
  }

  auto ack_of = [](const std::string& frame) {
    IngestResult ack;
    EXPECT_TRUE(DecodeIngestAckPayload(
        std::string_view(frame).substr(wire::kHeaderBytes), &ack));
    return ack;
  };

  // No live index attached: the door is read-only, kUnavailable.
  IngestResult ack = ack_of(wire::IngestFrame(door, request));
  EXPECT_EQ(ack.status, IngestStatus::kUnavailable);
  EXPECT_EQ(door.counters().ingest_failed, 1u);

  // Dataset is move-only; an empty ExtendWith is the frame-preserving
  // copy (the fixture keeps serving dataset_ through searcher_).
  LiveIndex live(dataset_.ExtendWith({}));
  door.AttachLiveIndex(&live);

  // Accepted: the ack's watermark is the cumulative check-in count and
  // the delta grew by the batch's new users.
  ack = ack_of(wire::IngestFrame(door, request));
  EXPECT_EQ(ack.status, IngestStatus::kOk);
  EXPECT_EQ(ack.accepted, 3u);
  EXPECT_EQ(ack.watermark, 3u);
  EXPECT_EQ(live.delta_trajectories(), 3u);
  EXPECT_EQ(door.counters().checkins_accepted, 3u);

  // Invalid: one check-in outside the bounding box poisons the whole
  // batch (all-or-nothing), burning write tokens but applying nothing.
  IngestRequest bad = request;
  bad.checkins[1].location = {1.0e9, 1.0e9};
  ack = ack_of(wire::IngestFrame(door, bad));
  EXPECT_EQ(ack.status, IngestStatus::kInvalid);
  EXPECT_EQ(live.delta_trajectories(), 3u);
  EXPECT_EQ(live.batches_rejected(), 1u);

  // Shed: the write bucket is empty after three admitted batches — the
  // next one sheds with the write-specific reason, applying nothing.
  ack = ack_of(wire::IngestFrame(door, request));
  EXPECT_EQ(ack.status, IngestStatus::kShed);
  EXPECT_EQ(ack.shed_reason, ShedReason::kWriteRateLimit);
  EXPECT_EQ(ack.shed_tenant, request.tenant);
  EXPECT_EQ(live.watermark(), 3u);
  EXPECT_EQ(door.counters().ingest_shed, 1u);
  EXPECT_EQ(door.counters().ingest_admitted, 3u);
  EXPECT_EQ(door.counters().ingest_failed, 2u);
}

}  // namespace
}  // namespace gat
