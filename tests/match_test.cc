// Tests for Dmm / Dbm and the Figure-1 running example of the paper.

#include "gat/core/match.h"

#include <gtest/gtest.h>

#include <vector>

#include "gat/core/point_match.h"
#include "gat/datagen/checkin_generator.h"
#include "gat/datagen/query_generator.h"
#include "gat/util/rng.h"

namespace gat {
namespace {

// Activity IDs for the Figure-1 alphabet.
constexpr ActivityId kA = 0, kB = 1, kC = 2, kD = 3, kE = 4, kF = 5;

// The Figure-1 example is defined by distance *matrices*, not coordinates,
// so the fixtures drive the mask/distance kernels directly.
struct MatrixFixture {
  // Per trajectory point: activity set.
  std::vector<std::vector<ActivityId>> point_activities;
  // row[i][j] = d(q_i, p_j).
  std::vector<std::vector<double>> distances;
  // Per query point: demanded activities.
  std::vector<std::vector<ActivityId>> query_activities;

  std::vector<MatchPoint> CandidatesFor(size_t qi) const {
    std::vector<MatchPoint> cp;
    for (size_t j = 0; j < point_activities.size(); ++j) {
      const ActivityMask mask =
          ComputeMask(query_activities[qi], point_activities[j]);
      if (mask == 0) continue;
      cp.push_back(MatchPoint{distances[qi][j], mask,
                              static_cast<PointIndex>(j)});
    }
    return cp;
  }

  double Dmm() const {
    double total = 0.0;
    for (size_t qi = 0; qi < query_activities.size(); ++qi) {
      const double d =
          MinPointMatchDistance(
              CandidatesFor(qi),
              static_cast<int>(query_activities[qi].size()))
              .distance;
      if (d == kInfDist) return kInfDist;
      total += d;
    }
    return total;
  }
};

MatrixFixture FigureOneTr1() {
  MatrixFixture f;
  f.point_activities = {{kD}, {kA, kC}, {kB}, {kC}, {kD, kE}};
  f.distances = {{2, 8, 16, 24, 32},   // q1 {a,b}
                 {14, 6, 3, 11, 20},   // q2 {c,d}
                 {33, 25, 17, 8, 1}};  // q3 {e}
  f.query_activities = {{kA, kB}, {kC, kD}, {kE}};
  return f;
}

MatrixFixture FigureOneTr2() {
  MatrixFixture f;
  f.point_activities = {{kA}, {kB, kC}, {kC, kD}, {kE}, {kF}};
  f.distances = {{6, 8, 17, 26, 31},
                 {14, 13, 4, 13, 20},
                 {32, 28, 16, 7, 3}};
  f.query_activities = {{kA, kB}, {kC, kD}, {kE}};
  return f;
}

TEST(FigureOneExample, MinimumPointMatchOfQ2OnTr1) {
  // The paper: with the distance matrix, {p1,1, p1,2} is the minimum point
  // match of q2 = {c, d}, at distance 14 + 6 = 20.
  const auto f = FigureOneTr1();
  std::vector<PointIndex> witness;
  const double d = ExhaustiveMinPointMatch(f.CandidatesFor(1), 2, &witness);
  EXPECT_DOUBLE_EQ(d, 20.0);
  EXPECT_EQ(witness, (std::vector<PointIndex>{0, 1}));
}

TEST(FigureOneExample, MinimumMatchDistances) {
  // Tr1.MM(Q) = {{p12,p13},{p11,p12},{p15}} -> 24 + 20 + 1 = 45;
  // Tr2.MM(Q) = {{p21,p22},{p23},{p24}}     -> 14 + 4 + 7 = 25.
  EXPECT_DOUBLE_EQ(FigureOneTr1().Dmm(), 45.0);
  EXPECT_DOUBLE_EQ(FigureOneTr2().Dmm(), 25.0);
}

TEST(FigureOneExample, Tr2IsMoreSimilarDespiteBeingSpatiallyFarther) {
  // The motivating observation of the introduction: pure geometry would
  // rank Tr1 first, but activity-aware matching ranks Tr2 first.
  EXPECT_LT(FigureOneTr2().Dmm(), FigureOneTr1().Dmm());
}

TEST(FigureOneExample, MinimumMatchWitnesses) {
  const auto f2 = FigureOneTr2();
  std::vector<PointIndex> w;
  EXPECT_DOUBLE_EQ(ExhaustiveMinPointMatch(f2.CandidatesFor(0), 2, &w), 14.0);
  EXPECT_EQ(w, (std::vector<PointIndex>{0, 1}));  // {p2,1, p2,2}
  EXPECT_DOUBLE_EQ(ExhaustiveMinPointMatch(f2.CandidatesFor(1), 2, &w), 4.0);
  EXPECT_EQ(w, (std::vector<PointIndex>{2}));  // {p2,3}
  EXPECT_DOUBLE_EQ(ExhaustiveMinPointMatch(f2.CandidatesFor(2), 1, &w), 7.0);
  EXPECT_EQ(w, (std::vector<PointIndex>{3}));  // {p2,4}
}

// ---------------------------------------------------------------------------
// ComputeMask
// ---------------------------------------------------------------------------

TEST(ComputeMask, BitPositionsFollowQueryOrder) {
  const std::vector<ActivityId> query = {3, 7, 9};
  EXPECT_EQ(ComputeMask(query, {3}), 0b001u);
  EXPECT_EQ(ComputeMask(query, {7}), 0b010u);
  EXPECT_EQ(ComputeMask(query, {9}), 0b100u);
  EXPECT_EQ(ComputeMask(query, {3, 9}), 0b101u);
  EXPECT_EQ(ComputeMask(query, {1, 2, 8}), 0u);
  EXPECT_EQ(ComputeMask(query, {}), 0u);
  EXPECT_EQ(ComputeMask({}, {1, 2}), 0u);
}

TEST(ComputeMask, IgnoresNonQueryActivities) {
  const std::vector<ActivityId> query = {5, 6};
  EXPECT_EQ(ComputeMask(query, {1, 5, 6, 99}), 0b11u);
}

// ---------------------------------------------------------------------------
// Geometry-level wrappers
// ---------------------------------------------------------------------------

Trajectory MakeTrajectory(
    std::vector<std::pair<Point, std::vector<ActivityId>>> pts) {
  std::vector<TrajectoryPoint> points;
  for (auto& [loc, acts] : pts) points.push_back(TrajectoryPoint{loc, acts});
  Trajectory tr(std::move(points));
  tr.NormalizeActivities();
  return tr;
}

TEST(MinMatchDistance, SimpleGeometry) {
  // Two points on the x axis; query at origin demands both activities.
  const auto tr = MakeTrajectory(
      {{Point{1.0, 0.0}, {kA}}, {Point{2.0, 0.0}, {kB}}});
  Query q({QueryPoint{Point{0.0, 0.0}, {kA, kB}}});
  EXPECT_DOUBLE_EQ(MinMatchDistance(tr, q), 3.0);
}

TEST(MinMatchDistance, UnmatchedQueryIsInfinite) {
  const auto tr = MakeTrajectory({{Point{1.0, 0.0}, {kA}}});
  Query q({QueryPoint{Point{0.0, 0.0}, {kA, kB}}});
  EXPECT_EQ(MinMatchDistance(tr, q), kInfDist);
}

TEST(MinMatchDistance, EmptyQueryPointContributesZero) {
  const auto tr = MakeTrajectory({{Point{5.0, 0.0}, {kA}}});
  Query q({QueryPoint{Point{0.0, 0.0}, {}},
           QueryPoint{Point{4.0, 0.0}, {kA}}});
  EXPECT_DOUBLE_EQ(MinMatchDistance(tr, q), 1.0);
}

TEST(BestMatchDistance, PureSpatialIgnoresActivities) {
  const auto tr = MakeTrajectory(
      {{Point{1.0, 0.0}, {}}, {Point{10.0, 0.0}, {kA}}});
  Query q({QueryPoint{Point{0.0, 0.0}, {kA}}});
  // Nearest point is the activity-less one at distance 1.
  EXPECT_DOUBLE_EQ(BestMatchDistance(tr, q), 1.0);
  // While Dmm must use the activity-bearing point at distance 10.
  EXPECT_DOUBLE_EQ(MinMatchDistance(tr, q), 10.0);
}

TEST(BestMatchDistance, EmptyTrajectory) {
  Trajectory tr;
  Query q({QueryPoint{Point{0.0, 0.0}, {kA}}});
  EXPECT_EQ(BestMatchDistance(tr, q), kInfDist);
}

TEST(CoversQueryActivities, ExactPredicate) {
  const auto tr = MakeTrajectory(
      {{Point{0, 0}, {kA, kC}}, {Point{1, 1}, {kB}}});
  EXPECT_TRUE(CoversQueryActivities(
      tr, Query({QueryPoint{Point{0, 0}, {kA, kB}}})));
  EXPECT_TRUE(CoversQueryActivities(
      tr, Query({QueryPoint{Point{0, 0}, {kA}},
                 QueryPoint{Point{1, 1}, {kB, kC}}})));
  EXPECT_FALSE(CoversQueryActivities(
      tr, Query({QueryPoint{Point{0, 0}, {kA, kD}}})));
}

TEST(ComputeMinimumMatch, WitnessesPerQueryPoint) {
  const auto tr = MakeTrajectory({{Point{1.0, 0.0}, {kA}},
                                  {Point{2.0, 0.0}, {kB}},
                                  {Point{0.5, 0.0}, {kC}}});
  Query q({QueryPoint{Point{0.0, 0.0}, {kA, kB}},
           QueryPoint{Point{0.0, 0.0}, {kC}}});
  const auto mm = ComputeMinimumMatch(tr, q);
  EXPECT_DOUBLE_EQ(mm.distance, 3.5);
  ASSERT_EQ(mm.witnesses.size(), 2u);
  EXPECT_EQ(mm.witnesses[0], (std::vector<PointIndex>{0, 1}));
  EXPECT_EQ(mm.witnesses[1], (std::vector<PointIndex>{2}));
}

TEST(ComputeMinimumMatch, NoMatchClearsWitnesses) {
  const auto tr = MakeTrajectory({{Point{1.0, 0.0}, {kA}}});
  Query q({QueryPoint{Point{0.0, 0.0}, {kA}},
           QueryPoint{Point{0.0, 0.0}, {kF}}});
  const auto mm = ComputeMinimumMatch(tr, q);
  EXPECT_EQ(mm.distance, kInfDist);
  for (const auto& w : mm.witnesses) EXPECT_TRUE(w.empty());
}

// ---------------------------------------------------------------------------
// Lemma 2 property: Dbm <= Dmm on generated data.
// ---------------------------------------------------------------------------

class LemmaTwoTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LemmaTwoTest, BestMatchLowerBoundsMinimumMatch) {
  const Dataset dataset = GenerateCity(CityProfile::Testing(120, GetParam()));
  QueryWorkloadParams wp;
  wp.num_queries = 10;
  wp.seed = GetParam() * 31 + 7;
  QueryGenerator qgen(dataset, wp);
  for (const Query& q : qgen.Workload()) {
    for (TrajectoryId t = 0; t < dataset.size(); ++t) {
      const auto& tr = dataset.trajectory(t);
      const double dmm = MinMatchDistance(tr, q);
      if (dmm == kInfDist) continue;
      ASSERT_LE(BestMatchDistance(tr, q), dmm + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LemmaTwoTest, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace gat
