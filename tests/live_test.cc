// Tests for live ingestion: the LiveIndex delta/base split, its
// generation-aware merge, and the LiveSearcher's merged top-k.
//
// The load-bearing invariants:
//   * Ingest is all-or-nothing against the base frame: one bad check-in
//     refuses the whole batch and nothing becomes visible;
//   * the merged (base + delta) answer is bit-identical to a monolithic
//     GatSearcher over Dataset::ExtendWith(delta) — at every shard
//     count, for both query kinds, before and after any merge schedule;
//   * MergeDelta publishes a new generation (possibly a different shard
//     cut) without a single failed or diverging query under continuous
//     fire, and a reader pinned to the old generation keeps serving it
//     bit-identically until the pin drops;
//   * ingests, merges and queries may race freely — the LiveView pairs
//     a delta only ever with the base generation it complements.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "gat/datagen/checkin_generator.h"
#include "gat/datagen/query_generator.h"
#include "gat/index/gat_index.h"
#include "gat/live/live_index.h"
#include "gat/live/live_searcher.h"
#include "gat/search/gat_search.h"
#include "gat/shard/sharded_searcher.h"
#include "gat/util/rng.h"

namespace gat {
namespace {

std::vector<Query> TestQueries(const Dataset& dataset, uint64_t seed,
                               uint32_t count = 6) {
  QueryWorkloadParams wp;
  wp.num_queries = count;
  wp.seed = seed;
  QueryGenerator qgen(dataset, wp);
  return qgen.Workload();
}

/// Check-ins the base frame must accept: locations and activity sets
/// sampled from the dataset's own points, spread over `num_users`
/// users so trajectories grow multi-point.
std::vector<CheckIn> SampleCheckIns(const Dataset& dataset, Rng& rng,
                                    size_t count, uint64_t user_base,
                                    uint64_t num_users) {
  std::vector<CheckIn> out;
  out.reserve(count);
  while (out.size() < count) {
    const Trajectory& t =
        dataset.trajectories()[rng.NextU32(static_cast<uint32_t>(
            dataset.size()))];
    if (t.empty()) continue;
    const TrajectoryPoint& p =
        t.points()[rng.NextU32(static_cast<uint32_t>(t.size()))];
    out.push_back({user_base + out.size() % num_users, p.location,
                   p.activities});
  }
  return out;
}

// ---------------------------------------------------------------------------
// Ingest validation
// ---------------------------------------------------------------------------

TEST(LiveIngest, ValidatesBatchesAtomically) {
  LiveIndex live(GenerateCity(CityProfile::Testing(120, 17)));
  Rng rng(3);
  std::vector<CheckIn> batch = SampleCheckIns(live.base(), rng, 4, 100, 2);

  // One bad check-in anywhere poisons the whole batch: an activity at
  // the frame limit, a point outside the bounding box, a non-finite
  // coordinate. Nothing of the healthy prefix is applied.
  const uint32_t limit = live.base().activity_frame_limit();
  std::vector<CheckIn> bad = batch;
  bad[3].activities = {limit};
  EXPECT_FALSE(live.Ingest(bad));
  bad = batch;
  bad[0].location = {1.0e9, 1.0e9};
  EXPECT_FALSE(live.Ingest(bad));
  bad = batch;
  bad[2].location.x = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(live.Ingest(bad));
  EXPECT_EQ(live.batches_rejected(), 3u);
  EXPECT_EQ(live.watermark(), 0u);
  EXPECT_EQ(live.delta_trajectories(), 0u);

  // An empty batch is an accepted no-op.
  uint64_t watermark = 99;
  EXPECT_TRUE(live.Ingest({}, &watermark));
  EXPECT_EQ(watermark, 0u);

  // The valid batch lands whole: 4 check-ins over 2 users = 2 delta
  // trajectories of 2 points each, in arrival order.
  ASSERT_TRUE(live.Ingest(batch, &watermark));
  EXPECT_EQ(watermark, 4u);
  const auto view = live.Pin();
  ASSERT_EQ(view->delta->trajectories.size(), 2u);
  EXPECT_EQ(view->delta->trajectories[0].size(), 2u);
  EXPECT_EQ(view->delta->trajectories[1].size(), 2u);
  EXPECT_EQ(view->delta->users, (std::vector<uint64_t>{100, 101}));
  EXPECT_EQ(view->delta->base_trajectories, live.base().size());
  EXPECT_EQ(view->delta->base_generation, live.base().generation());
}

// ---------------------------------------------------------------------------
// Merged top-k bit-identity
// ---------------------------------------------------------------------------

/// The tentpole invariant, swept over shard counts and query kinds:
/// LiveSearcher over (sharded base + delta) answers bit-identically to
/// one monolithic GatSearcher over the same data rebuilt as one
/// dataset — before a merge, after a merge, and after post-merge
/// check-ins reopened trajectories for already-sealed users.
class LiveBitIdentity : public ::testing::TestWithParam<uint32_t> {};

TEST_P(LiveBitIdentity, MatchesMonolithicRebuildAcrossMerges) {
  const uint32_t num_shards = GetParam();
  const CityProfile profile = CityProfile::Testing(150, 23);
  ShardOptions options;
  options.num_shards = num_shards;
  options.build_threads = 1;
  LiveIndex live(GenerateCity(profile), GatConfig{}, options);
  const LiveSearcher searcher(live);
  const auto queries = TestQueries(live.base(), 51, 5);
  Rng rng(7);

  const auto expect_monolithic = [&](const std::string& stage) {
    const auto view = live.Pin();
    const Dataset extended =
        live.base().ExtendWith(view->delta->trajectories);
    const GatIndex mono(extended);
    const GatSearcher reference(extended, mono);
    for (const Query& q : queries) {
      for (const QueryKind kind : {QueryKind::kAtsq, QueryKind::kOatsq}) {
        SearchStats stats;
        ASSERT_EQ(searcher.Search(q, 9, kind, &stats),
                  reference.Search(q, 9, kind))
            << stage << " shards=" << num_shards
            << " kind=" << static_cast<int>(kind);
        // The delta side must not leak into the gated pin counter.
        EXPECT_EQ(stats.index_pins, num_shards);
      }
    }
  };

  ASSERT_TRUE(live.Ingest(SampleCheckIns(live.base(), rng, 12, 500, 5)));
  expect_monolithic("pre-merge");

  ASSERT_TRUE(live.MergeDelta(num_shards));
  EXPECT_EQ(live.delta_trajectories(), 0u);
  EXPECT_EQ(live.base().generation(), 1u);
  EXPECT_EQ(live.sharded().generation_number(), 1u);
  expect_monolithic("post-merge");

  // The same users check in again: the merge sealed their previous
  // trajectories, so these open new ones at fresh global IDs.
  ASSERT_TRUE(live.Ingest(SampleCheckIns(live.base(), rng, 8, 500, 5)));
  EXPECT_EQ(live.delta_trajectories(), 5u);
  expect_monolithic("post-merge ingest");

  // A merge to a different shard cut is the same operation.
  const uint32_t other_shards = num_shards == 1 ? 2 : num_shards - 1;
  ASSERT_TRUE(live.MergeDelta(other_shards));
  EXPECT_EQ(live.sharded().num_shards(), other_shards);
  const auto view = live.Pin();
  EXPECT_EQ(view->generation->num_shards(), other_shards);
  const GatIndex mono(live.base());
  const GatSearcher reference(live.base(), mono);
  for (const Query& q : queries) {
    SearchStats stats;
    ASSERT_EQ(searcher.Search(q, 9, QueryKind::kAtsq, &stats),
              reference.Search(q, 9, QueryKind::kAtsq));
    EXPECT_EQ(stats.index_pins, other_shards);
  }
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, LiveBitIdentity,
                         ::testing::Values(1u, 2u, 4u));

// ---------------------------------------------------------------------------
// Generation change under fire
// ---------------------------------------------------------------------------

TEST(LiveMerge, GenerationChangeUnderQueryFireLosesNothing) {
  // The acceptance gate: ReloadGeneration moves the serving cut
  // 4→3→4→… shards while reader threads hammer the live searcher.
  // Zero failed queries, zero divergence — every answer bit-identical
  // to the (unchanging) monolithic reference; a view pinned before the
  // first merge keeps serving its retired generation bit-identically
  // until released.
  const CityProfile profile = CityProfile::Testing(240, 61);
  ShardOptions options;
  options.num_shards = 4;
  options.build_threads = 1;
  LiveIndex live(GenerateCity(profile), GatConfig{}, options);
  Executor executor(4);
  const LiveSearcher searcher(live, {}, &executor);
  const auto queries = TestQueries(live.base(), 71, 4);
  const GatIndex mono(live.base());
  const GatSearcher reference(live.base(), mono);
  std::vector<ResultList> expected;
  for (const Query& q : queries) {
    expected.push_back(reference.Search(q, 9, QueryKind::kAtsq));
  }

  // Pinned before any generation change: the drain witness.
  const auto old_view = live.Pin();
  ASSERT_EQ(old_view->generation->number(), 0u);

  constexpr int kRounds = 8;
  std::atomic<bool> stop{false};
  std::atomic<bool> diverged{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      uint64_t i = static_cast<uint64_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        const size_t qi = i++ % queries.size();
        SearchStats stats;
        if (searcher.Search(queries[qi], 9, QueryKind::kAtsq, &stats) !=
                expected[qi] ||
            (stats.index_pins != 3 && stats.index_pins != 4)) {
          diverged.store(true, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  for (int round = 0; round < kRounds; ++round) {
    ASSERT_TRUE(live.MergeDelta(round % 2 == 0 ? 3 : 4, "", &executor));
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& r : readers) r.join();
  EXPECT_FALSE(diverged.load());
  EXPECT_EQ(live.sharded().generations_published(), kRounds);
  EXPECT_EQ(live.sharded().generation_number(), kRounds);
  EXPECT_EQ(live.merges_completed(), kRounds);

  // The pinned generation survived every swap: its 4-shard cut still
  // answers bit-identically through the explicit-generation API.
  const ShardedSearcher base_searcher(live.sharded());
  ASSERT_EQ(old_view->generation->num_shards(), 4u);
  for (size_t i = 0; i < queries.size(); ++i) {
    SearchStats stats;
    EXPECT_EQ(base_searcher.SearchGeneration(*old_view->generation,
                                             queries[i], 9, QueryKind::kAtsq,
                                             &stats),
              expected[i]);
    EXPECT_EQ(stats.index_pins, 4u);
  }
}

// ---------------------------------------------------------------------------
// Snapshot-backed generations
// ---------------------------------------------------------------------------

TEST(LiveMerge, MmapGenerationsGetFreshDirectoriesPerMerge) {
  const std::string dir = ::testing::TempDir() + "/live_gen_snapshots";
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  ShardOptions options;
  options.num_shards = 2;
  options.build_threads = 1;
  options.snapshot_dir = dir;
  options.mmap_disk_tier = true;
  options.cache_config.block_bytes = 1024;
  options.cache_config.capacity_bytes = 1 << 20;
  {
    LiveIndex live(GenerateCity(CityProfile::Testing(140, 37)), GatConfig{},
                   options);
    ASSERT_EQ(live.sharded().shards_mmap_served(), 2u);
    Rng rng(11);
    ASSERT_TRUE(live.Ingest(SampleCheckIns(live.base(), rng, 10, 700, 4)));

    // mmap generations need somewhere to live: a merge without a
    // snapshot dir is refused with serving untouched.
    EXPECT_FALSE(live.MergeDelta(2));
    EXPECT_EQ(live.sharded().generation_number(), 0u);
    EXPECT_EQ(live.delta_trajectories(), 4u);

    // Each merged generation persists under its own gen-<n> directory —
    // never over the mapped predecessor's files.
    ASSERT_TRUE(live.MergeDelta(2, dir));
    EXPECT_TRUE(std::filesystem::exists(
        ShardedIndex::SnapshotPath(dir + "/gen-1", 0, 2)));
    ASSERT_TRUE(live.Ingest(SampleCheckIns(live.base(), rng, 6, 800, 3)));
    ASSERT_TRUE(live.MergeDelta(3, dir));
    EXPECT_TRUE(std::filesystem::exists(
        ShardedIndex::SnapshotPath(dir + "/gen-2", 2, 3)));
    EXPECT_EQ(live.sharded().shards_mmap_served(), 3u);

    const LiveSearcher searcher(live);
    const GatIndex mono(live.base());
    const GatSearcher reference(live.base(), mono);
    for (const Query& q : TestQueries(live.base(), 13, 4)) {
      EXPECT_EQ(searcher.Search(q, 9, QueryKind::kOatsq),
                reference.Search(q, 9, QueryKind::kOatsq));
    }
  }
  std::filesystem::remove_all(dir, ec);
}

// ---------------------------------------------------------------------------
// Ingest / merge / query races
// ---------------------------------------------------------------------------

TEST(LiveRace, ConcurrentIngestsMergesAndQueriesConverge) {
  // The TSan centerpiece: writers stream batches, a merger compacts at
  // alternating shard cuts, readers search throughout. Nothing may
  // tear; when the dust settles every accepted check-in is accounted
  // for and the final answer is bit-identical to the monolithic
  // rebuild of the final state.
  const CityProfile profile = CityProfile::Testing(160, 43);
  ShardOptions options;
  options.num_shards = 2;
  options.build_threads = 1;
  LiveIndex live(GenerateCity(profile), GatConfig{}, options);
  Executor executor(4);
  const LiveSearcher searcher(live, {}, &executor);
  const auto queries = TestQueries(live.base(), 29, 4);

  constexpr int kWriters = 2;
  constexpr int kBatchesPerWriter = 40;
  constexpr size_t kBatchSize = 5;
  constexpr int kMerges = 5;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&live, w] {
      Rng rng(100 + static_cast<uint64_t>(w));
      for (int b = 0; b < kBatchesPerWriter; ++b) {
        const auto batch = SampleCheckIns(
            live.base(), rng, kBatchSize,
            1000 + static_cast<uint64_t>(w) * 100, 7);
        ASSERT_TRUE(live.Ingest(batch));
      }
    });
  }
  threads.emplace_back([&live, &executor] {
    for (int m = 0; m < kMerges; ++m) {
      ASSERT_TRUE(live.MergeDelta(m % 2 == 0 ? 3 : 2, "", &executor));
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      uint64_t i = static_cast<uint64_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        const size_t qi = i++ % queries.size();
        const ResultList results =
            searcher.Search(queries[qi], 9, QueryKind::kAtsq);
        if (results.size() > 9) return;  // impossible; keeps the loop honest
      }
    });
  }
  for (auto& t : threads) t.join();
  stop.store(true, std::memory_order_relaxed);
  for (auto& r : readers) r.join();

  EXPECT_EQ(live.watermark(), kWriters * kBatchesPerWriter * kBatchSize);
  EXPECT_EQ(live.batches_rejected(), 0u);
  EXPECT_EQ(live.merges_completed(), kMerges);

  // Final consistency: the pinned view pairs the delta with exactly the
  // base generation it complements, and the merged answer equals the
  // monolithic rebuild of base ⊕ delta.
  const auto view = live.Pin();
  EXPECT_EQ(view->delta->base_generation, view->generation->number());
  EXPECT_EQ(view->delta->base_trajectories,
            view->generation->total_trajectories());
  const Dataset final_state =
      live.base().ExtendWith(view->delta->trajectories);
  const GatIndex mono(final_state);
  const GatSearcher reference(final_state, mono);
  for (const Query& q : queries) {
    for (const QueryKind kind : {QueryKind::kAtsq, QueryKind::kOatsq}) {
      EXPECT_EQ(searcher.Search(q, 9, kind), reference.Search(q, 9, kind));
    }
  }
}

}  // namespace
}  // namespace gat
