// Live-ingestion soak, meant to run under TSan and ASan (ctest label:
// soak): writer threads stream check-in batches, a merger compacts the
// delta into new generations at alternating shard cuts, and reader
// threads search throughout — through the full wire-equivalent stack
// (LiveSearcher over pinned LiveViews). Between rounds the world
// quiesces and the suite asserts the one property ingestion must never
// bend: the merged (base + delta) top-k is bit-identical to a
// monolithic index rebuilt from the same data, for both query kinds.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "gat/datagen/checkin_generator.h"
#include "gat/datagen/query_generator.h"
#include "gat/index/gat_index.h"
#include "gat/live/live_index.h"
#include "gat/live/live_searcher.h"
#include "gat/search/gat_search.h"
#include "gat/util/rng.h"

namespace gat {
namespace {

constexpr int kRounds = 4;
constexpr int kWriters = 3;
constexpr int kReaders = 3;
constexpr int kBatchesPerWriterPerRound = 25;
constexpr size_t kBatchSize = 6;
constexpr size_t kTopK = 9;

std::vector<CheckIn> SampleCheckIns(const Dataset& dataset, Rng& rng,
                                    size_t count, uint64_t user_base,
                                    uint64_t num_users) {
  std::vector<CheckIn> out;
  out.reserve(count);
  while (out.size() < count) {
    const Trajectory& t =
        dataset.trajectories()[rng.NextU32(static_cast<uint32_t>(
            dataset.size()))];
    if (t.empty()) continue;
    const TrajectoryPoint& p =
        t.points()[rng.NextU32(static_cast<uint32_t>(t.size()))];
    out.push_back({user_base + out.size() % num_users, p.location,
                   p.activities});
  }
  return out;
}

TEST(LiveSoak, SustainedIngestMergeAndQueryStaysBitIdentical) {
  const CityProfile profile = CityProfile::Testing(260, 91);
  ShardOptions options;
  options.num_shards = 4;
  options.build_threads = 1;
  LiveIndex live(GenerateCity(profile), GatConfig{}, options);
  Executor executor(4);
  const LiveSearcher searcher(live, {}, &executor);

  QueryWorkloadParams wp;
  wp.num_queries = 6;
  wp.seed = 19;
  QueryGenerator qgen(live.base(), wp);
  const std::vector<Query> queries = qgen.Workload();

  uint64_t expected_watermark = 0;
  for (int round = 0; round < kRounds; ++round) {
    // Concurrency phase: writers, a merger changing the shard cut, and
    // readers all race. Readers only sanity-check shape here — the
    // serving data is a moving target mid-round.
    std::atomic<bool> stop{false};
    std::vector<std::thread> threads;
    for (int w = 0; w < kWriters; ++w) {
      threads.emplace_back([&live, round, w] {
        Rng rng(static_cast<uint64_t>(round) * 100 + w);
        const uint64_t user_base =
            10'000 + static_cast<uint64_t>(w) * 1'000;
        for (int b = 0; b < kBatchesPerWriterPerRound; ++b) {
          ASSERT_TRUE(live.Ingest(SampleCheckIns(
              live.base(), rng, kBatchSize, user_base, 11)));
        }
      });
    }
    threads.emplace_back([&live, &executor, round] {
      ASSERT_TRUE(
          live.MergeDelta(round % 2 == 0 ? 3 : 4, "", &executor));
      ASSERT_TRUE(
          live.MergeDelta(round % 2 == 0 ? 4 : 3, "", &executor));
    });
    std::vector<std::thread> readers;
    std::atomic<uint64_t> searches{0};
    for (int r = 0; r < kReaders; ++r) {
      readers.emplace_back([&, r] {
        uint64_t i = static_cast<uint64_t>(r);
        while (!stop.load(std::memory_order_relaxed)) {
          const Query& q = queries[i++ % queries.size()];
          const ResultList results =
              searcher.Search(q, kTopK, QueryKind::kAtsq);
          if (results.size() > kTopK) return;  // impossible
          searches.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (auto& t : threads) t.join();
    stop.store(true, std::memory_order_relaxed);
    for (auto& r : readers) r.join();
    EXPECT_GT(searches.load(), 0u);

    // Quiesced gate: every accepted check-in accounted for, and the
    // live answer equals the monolithic rebuild of the exact state.
    expected_watermark += static_cast<uint64_t>(kWriters) *
                          kBatchesPerWriterPerRound * kBatchSize;
    ASSERT_EQ(live.watermark(), expected_watermark);
    ASSERT_EQ(live.batches_rejected(), 0u);
    const auto view = live.Pin();
    ASSERT_EQ(view->delta->base_generation, view->generation->number());
    const Dataset state = live.base().ExtendWith(view->delta->trajectories);
    const GatIndex mono(state);
    const GatSearcher reference(state, mono);
    for (const Query& q : queries) {
      for (const QueryKind kind : {QueryKind::kAtsq, QueryKind::kOatsq}) {
        ASSERT_EQ(searcher.Search(q, kTopK, kind),
                  reference.Search(q, kTopK, kind))
            << "round " << round << " kind " << static_cast<int>(kind);
      }
    }
  }
  EXPECT_EQ(live.merges_completed(), 2u * kRounds);
  EXPECT_EQ(live.sharded().generations_published(), 2u * kRounds);
}

}  // namespace
}  // namespace gat
