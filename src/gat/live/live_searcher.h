#ifndef GAT_LIVE_LIVE_SEARCHER_H_
#define GAT_LIVE_LIVE_SEARCHER_H_

#include <string>

#include "gat/core/searcher.h"
#include "gat/live/live_index.h"
#include "gat/shard/sharded_searcher.h"

namespace gat {

/// Top-k search over a LiveIndex: one pinned `LiveView`, the full
/// sharded GAT machinery over its base generation, an exact scan of its
/// delta, one merged heap.
///
/// The delta side is searched exactly, not approximately: every delta
/// trajectory goes through the same `RefineCandidate` kernel the
/// indexed searchers refine with (activity-cover gate, MIB validation
/// for OATSQ, then the exact Dmm/Dmom), at an infinite threshold so no
/// candidate is pruned by heap state. Delta trajectory `i` is offered
/// at global ID `base_trajectories + i` — the ID `ExtendWith` will
/// assign it at the next merge — and `TopKCollector`'s
/// (distance, global ID) tie-break does the rest: the merged answer is
/// bit-identical to one monolithic GatSearcher over base ⊕ delta,
/// regardless of shard count or how many merges have compacted the
/// history.
///
/// Stats: the base sweep accounts exactly like ShardedSearcher
/// (`index_pins` = shards visited — the gated pin counter is untouched
/// by the delta side); each delta trajectory scanned adds one
/// `candidates_retrieved` and whatever the refinement kernel charges
/// (disk_reads, activity_rejected, mib_rejected,
/// distance_computations).
///
/// Deadlines follow the ShardedSearcher contract: expired on entry →
/// nothing touched; expired during the fan-out → empty result, never a
/// partial merge. The delta scan runs under the same rule (checked once
/// before the scan — the delta is small by construction, merges keep it
/// so).
///
/// Thread-safety: const Search, all per-query state on the stack; safe
/// against concurrent Ingest / MergeDelta / ReloadShard.
class LiveSearcher : public Searcher {
 public:
  /// `index` must outlive the searcher; so must `executor` when given.
  explicit LiveSearcher(const LiveIndex& index,
                        const GatSearchParams& params = {},
                        Executor* executor = nullptr);

  ResultList Search(const Query& query, size_t k, QueryKind kind,
                    SearchStats* stats = nullptr,
                    const QueryContext* context = nullptr) const override;
  std::string name() const override { return "GAT-live"; }

  const LiveIndex& index() const { return index_; }

 private:
  const LiveIndex& index_;
  ShardedSearcher base_searcher_;
};

}  // namespace gat

#endif  // GAT_LIVE_LIVE_SEARCHER_H_
