#ifndef GAT_LIVE_LIVE_INDEX_H_
#define GAT_LIVE_LIVE_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "gat/engine/executor.h"
#include "gat/live/checkin.h"
#include "gat/model/dataset.h"
#include "gat/shard/sharded_index.h"

namespace gat {

/// An immutable snapshot of the delta side of a LiveIndex: the
/// trajectories assembled from every check-in accepted after the base
/// generation it complements was cut. Published copy-on-write per
/// accepted batch — readers scan it lock-free while writers build the
/// successor.
///
/// Delta trajectory `i` serves at global ID `base_trajectories + i`:
/// exactly the ID it will hold once a merge seals it into the next base
/// generation via `Dataset::ExtendWith`, which is what makes the merged
/// (base + delta) answer bit-identical to a monolithic index over the
/// extended dataset.
struct DeltaSnapshot {
  /// The dataset generation this delta complements.
  uint64_t base_generation = 0;
  /// Size of that base — the global ID offset of delta trajectory 0.
  size_t base_trajectories = 0;
  /// Cumulative check-ins accepted by the owning LiveIndex when this
  /// snapshot was published (monotonic across merges; the freshness
  /// ruler: a reader serving watermark W has seen every check-in
  /// 1..W).
  uint64_t watermark = 0;
  /// One in-arrival-order trajectory per user seen since the base cut.
  std::vector<Trajectory> trajectories;
  /// users[i] = the user whose delta trajectory is trajectories[i].
  std::vector<uint64_t> users;
  /// user -> index into `trajectories` (the writer's append cursor;
  /// immutable once published like everything else here).
  std::unordered_map<uint64_t, size_t> user_index;
};

/// One consistent serving view of a LiveIndex: the pinned base
/// generation and the delta that complements exactly that generation.
/// Published as a unit — a reader that pinned a view can never observe
/// a delta paired with the wrong base cut, no matter how ingests and
/// merges interleave with the pin.
struct LiveView {
  std::shared_ptr<const ShardGeneration> generation;
  std::shared_ptr<const DeltaSnapshot> delta;
};

/// The live-ingestion face of the GAT index: a sharded, snapshot-served
/// base (every structure of Section IV, built per shard) plus a small
/// in-memory delta absorbing writes, behind one generation-aware
/// serving API.
///
///   * `Ingest` appends a batch of check-ins: validated against the
///     base frame (all-or-nothing), logged, and folded into a new
///     published `DeltaSnapshot` — visible to the next `Pin` in one
///     writer critical section, no index rebuild.
///   * `Pin` hands a reader the current `LiveView`; `LiveSearcher`
///     answers top-k over view.generation (the full GAT machinery) plus
///     an exact scan of view.delta, merged — bit-identical to a
///     monolithic index over base ⊕ delta.
///   * `MergeDelta` compacts: extends the base dataset with the delta
///     trajectories (`Dataset::ExtendWith` — frame preserved, IDs
///     stable), builds the next generation entirely off the serving
///     path (`ShardedIndex::ReloadGeneration`, possibly at a different
///     shard count — shard rebalancing is the same operation with an
///     empty delta), then atomically republishes the view with a fresh
///     delta holding only the check-ins that arrived during the build.
///
/// A user's delta trajectory is sealed by the merge: check-ins arriving
/// after the cut start a NEW trajectory for that user. Trajectory
/// identity is (user, generation segment) — deterministic, so replaying
/// the same check-in stream through any schedule of merges yields the
/// same final dataset extension order.
///
/// Thread-safety: `Ingest` may be called from any number of threads
/// (serialized internally); `MergeDelta` likewise (merges serialize
/// with each other and with ingest only for the final swap); `Pin` and
/// all counters are wait-free reads against both.
class LiveIndex {
 public:
  /// Takes ownership of the finalized base dataset (kept — merges
  /// extend it) and builds the serving base over it.
  LiveIndex(Dataset base, const GatConfig& config = {},
            const ShardOptions& options = {});

  /// Appends a batch of check-ins atomically: either every check-in is
  /// validated against the base frame — finite coordinates inside
  /// `base().bounding_box()`, every activity ID below
  /// `base().activity_frame_limit()` — and the whole batch becomes
  /// visible in one published delta, or nothing is applied and the call
  /// returns false. Empty batches are accepted as no-ops.
  ///
  /// On success `*watermark_out` (when non-null) is the cumulative
  /// watermark after this batch — the ack value the wire layer reports.
  bool Ingest(std::span<const CheckIn> checkins,
              uint64_t* watermark_out = nullptr);

  /// The current serving view, pinned: base generation and delta stay
  /// alive and mutually consistent until the pointer is dropped.
  std::shared_ptr<const LiveView> Pin() const;

  /// Compacts the current delta into the next base generation at
  /// `num_shards` shards, off the serving path, then swaps. When
  /// `snapshot_dir` is non-empty the new generation persists under
  /// `<snapshot_dir>/gen-<number>` (a fresh directory per generation —
  /// never over a mapped predecessor). Safe to call with an empty
  /// delta: that is a pure shard-rebalance / generation bump.
  /// Returns false (serving untouched) if the underlying generation
  /// build is refused.
  bool MergeDelta(uint32_t num_shards,
                  const std::string& snapshot_dir = std::string(),
                  Executor* executor = nullptr);

  /// The serving base. Searchers fan out over it via the LiveView.
  const ShardedIndex& sharded() const { return sharded_; }

  /// The base dataset of the *latest merged* generation (what the next
  /// merge will extend). Readers wanting the dataset consistent with a
  /// search must go through `Pin` instead.
  const Dataset& base() const { return base_; }

  /// Cumulative check-ins accepted over this index's lifetime.
  uint64_t watermark() const {
    return watermark_.load(std::memory_order_relaxed);
  }
  /// Ingest batches refused by validation (nothing applied).
  uint64_t batches_rejected() const {
    return batches_rejected_.load(std::memory_order_relaxed);
  }
  /// Completed `MergeDelta` calls.
  uint64_t merges_completed() const {
    return merges_completed_.load(std::memory_order_relaxed);
  }
  /// Delta trajectories in the current view (readers use the pinned
  /// view's delta; this is a monitoring convenience).
  size_t delta_trajectories() const { return Pin()->delta->trajectories.size(); }

 private:
  /// Folds one validated check-in into a writer-private delta.
  static void AppendCheckIn(DeltaSnapshot& delta, const CheckIn& checkin);

  /// Publishes a new view under view_mu_.
  void PublishView(std::shared_ptr<const ShardGeneration> generation,
                   std::shared_ptr<const DeltaSnapshot> delta);

  GatConfig config_;
  Dataset base_;
  ShardedIndex sharded_;

  /// Serializes writers (ingest batches and the merge's swap phase).
  std::mutex write_mu_;
  /// Serializes merges with each other (held across the whole build).
  std::mutex merge_mu_;
  /// Check-ins accepted since the last merge, in arrival order;
  /// log_[i] is cumulative check-in number merged_watermark_ + i + 1.
  /// The merge replays the tail beyond its delta snapshot's watermark
  /// into the fresh delta — no subtraction from a moving snapshot.
  std::vector<CheckIn> log_;
  /// Cumulative watermark sealed into base_ by the last merge.
  uint64_t merged_watermark_ = 0;

  mutable std::mutex view_mu_;
  std::shared_ptr<const LiveView> view_;

  std::atomic<uint64_t> watermark_{0};
  std::atomic<uint64_t> batches_rejected_{0};
  std::atomic<uint64_t> merges_completed_{0};
};

}  // namespace gat

#endif  // GAT_LIVE_LIVE_INDEX_H_
