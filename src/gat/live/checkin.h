#ifndef GAT_LIVE_CHECKIN_H_
#define GAT_LIVE_CHECKIN_H_

#include <cstdint>
#include <vector>

#include "gat/common/types.h"
#include "gat/geo/point.h"

namespace gat {

/// One live check-in: user `user` was at `location` doing `activities`
/// (IDs in the serving dataset's frequency-ranked frame). The unit of
/// the ingest API — check-ins from one user accumulate, in arrival
/// order, into that user's delta trajectory until a merge seals the
/// segment into the base dataset (Definition 2's chronological order is
/// the arrival order; there is no explicit timestamp field, matching
/// the rest of the reproduction).
struct CheckIn {
  uint64_t user = 0;
  Point location;
  std::vector<ActivityId> activities;  // any order; normalized on accept
};

}  // namespace gat

#endif  // GAT_LIVE_CHECKIN_H_
