#include "gat/live/live_searcher.h"

#include <memory>

#include "gat/baselines/refinement.h"
#include "gat/common/query_context.h"
#include "gat/util/top_k.h"

namespace gat {

LiveSearcher::LiveSearcher(const LiveIndex& index,
                           const GatSearchParams& params, Executor* executor)
    : index_(index), base_searcher_(index.sharded(), params, executor) {}

ResultList LiveSearcher::Search(const Query& query, size_t k, QueryKind kind,
                                SearchStats* stats,
                                const QueryContext* context) const {
  // One view pin for the whole query: base generation and delta are the
  // consistent pair the LiveIndex published together, whatever ingests,
  // merges or reloads land while we run.
  const std::shared_ptr<const LiveView> view = index_.Pin();

  // The base sweep carries the Searcher stats contract (reset +
  // accumulate) and the entry deadline check; it returns empty with a
  // deadline_skips mark when the query was dead on arrival.
  ResultList base = base_searcher_.SearchGeneration(*view->generation, query,
                                                    k, kind, stats, context);
  // Same task-boundary rule as the shard fan-out: a deadline that
  // expired during (or before) the base sweep yields nothing — never a
  // partial merge. This also covers the dead-on-arrival case above.
  if (context != nullptr && context->Expired()) return {};

  const DeltaSnapshot& delta = *view->delta;
  TopKCollector merged(k);
  for (const SearchResult& r : base) {
    merged.Offer(r.trajectory, r.distance);
  }
  SearchStats local;
  SearchStats& delta_stats = stats != nullptr ? *stats : local;
  for (size_t i = 0; i < delta.trajectories.size(); ++i) {
    // Exact refinement at an infinite threshold: heap state must not
    // prune a delta candidate, or the result could diverge from the
    // monolithic reference on distance ties at the boundary.
    delta_stats.candidates_retrieved += 1;
    const double dist = RefineCandidate(delta.trajectories[i], query, kind,
                                        kInfDist, delta_stats);
    merged.Offer(
        static_cast<TrajectoryId>(delta.base_trajectories + i), dist);
  }
  return ToResultList(merged);
}

}  // namespace gat
