#include "gat/live/live_index.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "gat/common/check.h"

namespace gat {

LiveIndex::LiveIndex(Dataset base, const GatConfig& config,
                     const ShardOptions& options)
    : config_(config), base_(std::move(base)), sharded_(base_, config, options) {
  GAT_CHECK(base_.finalized());
  auto delta = std::make_shared<DeltaSnapshot>();
  delta->base_generation = base_.generation();
  delta->base_trajectories = base_.size();
  PublishView(sharded_.PinGeneration(), std::move(delta));
}

void LiveIndex::AppendCheckIn(DeltaSnapshot& delta, const CheckIn& checkin) {
  TrajectoryPoint point;
  point.location = checkin.location;
  point.activities = checkin.activities;
  std::sort(point.activities.begin(), point.activities.end());
  point.activities.erase(
      std::unique(point.activities.begin(), point.activities.end()),
      point.activities.end());
  auto it = delta.user_index.find(checkin.user);
  if (it == delta.user_index.end()) {
    delta.user_index.emplace(checkin.user, delta.trajectories.size());
    delta.users.push_back(checkin.user);
    delta.trajectories.emplace_back(
        std::vector<TrajectoryPoint>{std::move(point)});
  } else {
    delta.trajectories[it->second].mutable_points().push_back(
        std::move(point));
  }
}

bool LiveIndex::Ingest(std::span<const CheckIn> checkins,
                       uint64_t* watermark_out) {
  std::lock_guard<std::mutex> lock(write_mu_);
  // All-or-nothing validation against the base frame. The frame —
  // bounding box, activity-ID space — is invariant across merges
  // (ExtendWith inherits it verbatim), so acceptance never depends on
  // how ingest interleaves with compaction.
  const Rect& box = base_.bounding_box();
  const uint32_t frame_limit = base_.activity_frame_limit();
  for (const CheckIn& c : checkins) {
    if (!std::isfinite(c.location.x) || !std::isfinite(c.location.y) ||
        !box.Contains(c.location)) {
      batches_rejected_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    for (ActivityId a : c.activities) {
      if (a >= frame_limit) {
        batches_rejected_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
    }
  }
  if (checkins.empty()) {
    if (watermark_out != nullptr) {
      *watermark_out = watermark_.load(std::memory_order_relaxed);
    }
    return true;
  }

  // Copy-on-write: fold the batch into a private copy of the current
  // delta and publish it whole. Readers scanning the predecessor are
  // untouched; the next Pin sees every check-in of this batch or none.
  const std::shared_ptr<const LiveView> current = Pin();
  auto next = std::make_shared<DeltaSnapshot>(*current->delta);
  for (const CheckIn& c : checkins) {
    AppendCheckIn(*next, c);
    log_.push_back(c);
  }
  const uint64_t watermark =
      watermark_.load(std::memory_order_relaxed) + checkins.size();
  watermark_.store(watermark, std::memory_order_relaxed);
  next->watermark = watermark;
  if (watermark_out != nullptr) *watermark_out = watermark;
  PublishView(current->generation, std::move(next));
  return true;
}

std::shared_ptr<const LiveView> LiveIndex::Pin() const {
  std::lock_guard<std::mutex> lock(view_mu_);
  return view_;
}

bool LiveIndex::MergeDelta(uint32_t num_shards,
                           const std::string& snapshot_dir,
                           Executor* executor) {
  // Merges serialize here; ingest keeps running throughout the build
  // and only shares the short swap section at the end.
  std::lock_guard<std::mutex> merge_lock(merge_mu_);
  const std::shared_ptr<const LiveView> view = Pin();
  const std::shared_ptr<const DeltaSnapshot> delta = view->delta;

  // Seal the delta's trajectories into the next dataset generation.
  // base_ is only written inside merge_mu_, so reading it here is safe
  // against everything but ourselves.
  Dataset extended = base_.ExtendWith(delta->trajectories);
  const std::string dir =
      snapshot_dir.empty()
          ? std::string()
          : snapshot_dir + "/gen-" + std::to_string(extended.generation());
  // The expensive part — partition, build or snapshot-load every shard
  // of the new cut — runs entirely off the serving path.
  if (!sharded_.ReloadGeneration(extended, num_shards, dir, executor)) {
    return false;
  }
  const std::shared_ptr<const ShardGeneration> generation =
      sharded_.PinGeneration();

  {
    std::lock_guard<std::mutex> write_lock(write_mu_);
    // Check-ins that landed during the build are in the log tail beyond
    // the sealed watermark; replay them into a fresh delta. A user's
    // pre-merge segment is sealed — post-merge check-ins start a new
    // delta trajectory for that user (trajectory identity is
    // (user, generation segment)).
    const size_t sealed = delta->watermark - merged_watermark_;
    auto fresh = std::make_shared<DeltaSnapshot>();
    fresh->base_generation = extended.generation();
    fresh->base_trajectories = extended.size();
    fresh->watermark = watermark_.load(std::memory_order_relaxed);
    for (size_t i = sealed; i < log_.size(); ++i) {
      AppendCheckIn(*fresh, log_[i]);
    }
    log_.erase(log_.begin(), log_.begin() + sealed);
    merged_watermark_ = delta->watermark;
    base_ = std::move(extended);
    PublishView(generation, std::move(fresh));
  }
  merges_completed_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void LiveIndex::PublishView(std::shared_ptr<const ShardGeneration> generation,
                            std::shared_ptr<const DeltaSnapshot> delta) {
  auto view = std::make_shared<LiveView>();
  view->generation = std::move(generation);
  view->delta = std::move(delta);
  std::lock_guard<std::mutex> lock(view_mu_);
  view_ = std::move(view);
}

}  // namespace gat
