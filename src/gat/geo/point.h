#ifndef GAT_GEO_POINT_H_
#define GAT_GEO_POINT_H_

#include <cmath>
#include <string>

namespace gat {

/// A 2-D point in a planar city coordinate system measured in kilometres.
///
/// The paper works on metro-scale areas (Los Angeles / New York check-ins,
/// query diameters 5-50 km) where an equirectangular projection of WGS84
/// coordinates onto a local plane is accurate to well under 0.5%; the
/// reproduction therefore uses planar Euclidean distance in km directly.
/// `ProjectLonLat` converts raw longitude/latitude into this system for
/// users loading real check-in data.
struct Point {
  double x = 0.0;  ///< east-west coordinate, km
  double y = 0.0;  ///< north-south coordinate, km

  bool operator==(const Point& other) const {
    return x == other.x && y == other.y;
  }
};

/// Euclidean distance in km.
double Distance(const Point& a, const Point& b);

/// Squared distance (avoids sqrt on comparison-only paths).
double DistanceSquared(const Point& a, const Point& b);

/// Equirectangular projection of (lon, lat) degrees around a reference
/// latitude into planar km. Suitable for metro-scale extents.
Point ProjectLonLat(double lon_deg, double lat_deg, double ref_lat_deg);

/// Debug representation "(x, y)".
std::string ToString(const Point& p);

}  // namespace gat

#endif  // GAT_GEO_POINT_H_
