#ifndef GAT_GEO_RECT_H_
#define GAT_GEO_RECT_H_

#include <string>

#include "gat/geo/point.h"

namespace gat {

/// Axis-aligned rectangle (MBR). Used by the grid cells of the GAT index
/// and by the R-tree / IR-tree baselines.
struct Rect {
  Point min;
  Point max;

  /// An "empty" rectangle that absorbs any point on Expand.
  static Rect Empty();

  /// Degenerate rectangle covering a single point.
  static Rect FromPoint(const Point& p);

  bool IsEmpty() const { return min.x > max.x || min.y > max.y; }

  bool Contains(const Point& p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }

  bool Intersects(const Rect& other) const {
    return !(other.min.x > max.x || other.max.x < min.x ||
             other.min.y > max.y || other.max.y < min.y);
  }

  /// Grows to include `p`.
  void Expand(const Point& p);

  /// Grows to include `other`.
  void Expand(const Rect& other);

  double Width() const { return max.x - min.x; }
  double Height() const { return max.y - min.y; }
  double Area() const;

  /// Half-perimeter margin, used by R-tree split heuristics.
  double Margin() const { return Width() + Height(); }

  Point Center() const { return Point{(min.x + max.x) / 2, (min.y + max.y) / 2}; }

  bool operator==(const Rect& other) const {
    return min == other.min && max == other.max;
  }
};

/// Minimum distance from a point to a rectangle (0 when inside). This is
/// `mdist` in the paper's candidate-retrieval priority queue (Section V-A)
/// and the MBR bound of best-first R-tree search.
double MinDist(const Point& p, const Rect& r);

/// Squared MinDist.
double MinDistSquared(const Point& p, const Rect& r);

/// Area of the union MBR of two rectangles (R-tree enlargement metric).
double UnionArea(const Rect& a, const Rect& b);

/// Debug representation.
std::string ToString(const Rect& r);

}  // namespace gat

#endif  // GAT_GEO_RECT_H_
