#include "gat/geo/rect.h"

#include <algorithm>
#include <cstdio>
#include <limits>

namespace gat {

Rect Rect::Empty() {
  Rect r;
  r.min = Point{std::numeric_limits<double>::max(),
                std::numeric_limits<double>::max()};
  r.max = Point{std::numeric_limits<double>::lowest(),
                std::numeric_limits<double>::lowest()};
  return r;
}

Rect Rect::FromPoint(const Point& p) { return Rect{p, p}; }

void Rect::Expand(const Point& p) {
  min.x = std::min(min.x, p.x);
  min.y = std::min(min.y, p.y);
  max.x = std::max(max.x, p.x);
  max.y = std::max(max.y, p.y);
}

void Rect::Expand(const Rect& other) {
  if (other.IsEmpty()) return;
  Expand(other.min);
  Expand(other.max);
}

double Rect::Area() const {
  if (IsEmpty()) return 0.0;
  return Width() * Height();
}

double MinDistSquared(const Point& p, const Rect& r) {
  double dx = 0.0;
  if (p.x < r.min.x) {
    dx = r.min.x - p.x;
  } else if (p.x > r.max.x) {
    dx = p.x - r.max.x;
  }
  double dy = 0.0;
  if (p.y < r.min.y) {
    dy = r.min.y - p.y;
  } else if (p.y > r.max.y) {
    dy = p.y - r.max.y;
  }
  return dx * dx + dy * dy;
}

double MinDist(const Point& p, const Rect& r) {
  return std::sqrt(MinDistSquared(p, r));
}

double UnionArea(const Rect& a, const Rect& b) {
  Rect u = a;
  u.Expand(b);
  return u.Area();
}

std::string ToString(const Rect& r) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "[%s - %s]", ToString(r.min).c_str(),
                ToString(r.max).c_str());
  return buf;
}

}  // namespace gat
