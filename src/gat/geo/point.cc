#include "gat/geo/point.h"

#include <cstdio>

namespace gat {

namespace {
constexpr double kEarthRadiusKm = 6371.0088;
constexpr double kDegToRad = M_PI / 180.0;
}  // namespace

double Distance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

double DistanceSquared(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

Point ProjectLonLat(double lon_deg, double lat_deg, double ref_lat_deg) {
  Point p;
  p.x = kEarthRadiusKm * lon_deg * kDegToRad * std::cos(ref_lat_deg * kDegToRad);
  p.y = kEarthRadiusKm * lat_deg * kDegToRad;
  return p;
}

std::string ToString(const Point& p) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "(%.4f, %.4f)", p.x, p.y);
  return buf;
}

}  // namespace gat
