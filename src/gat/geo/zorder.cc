#include "gat/geo/zorder.h"

namespace gat {
namespace zorder {

uint32_t SpreadBits16(uint32_t v) {
  v &= 0x0000FFFF;
  v = (v | (v << 8)) & 0x00FF00FF;
  v = (v | (v << 4)) & 0x0F0F0F0F;
  v = (v | (v << 2)) & 0x33333333;
  v = (v | (v << 1)) & 0x55555555;
  return v;
}

uint32_t CompactBits16(uint32_t v) {
  v &= 0x55555555;
  v = (v | (v >> 1)) & 0x33333333;
  v = (v | (v >> 2)) & 0x0F0F0F0F;
  v = (v | (v >> 4)) & 0x00FF00FF;
  v = (v | (v >> 8)) & 0x0000FFFF;
  return v;
}

uint32_t Encode(uint32_t col, uint32_t row) {
  return SpreadBits16(col) | (SpreadBits16(row) << 1);
}

uint32_t DecodeCol(uint32_t code) { return CompactBits16(code); }

uint32_t DecodeRow(uint32_t code) { return CompactBits16(code >> 1); }

}  // namespace zorder
}  // namespace gat
