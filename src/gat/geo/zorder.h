#ifndef GAT_GEO_ZORDER_H_
#define GAT_GEO_ZORDER_H_

#include <cstdint>

namespace gat {

/// Z-order (Morton) space-filling curve utilities.
///
/// The GAT index assigns every grid cell a numerical ID by interleaving the
/// bits of its (col, row) coordinates (Section IV: "Each cell can be
/// assigned a unique numerical ID by using space filling curve"). Cell IDs
/// at level `l` use 2*l bits. The curve also gives the parent/child
/// relation for free: the parent of a Morton code is `code >> 2`, and the
/// four children of `code` are `code*4 + {0,1,2,3}`.
namespace zorder {

/// Interleaves the lower 16 bits of `v` with zeros: b15..b0 -> bits at even
/// positions of the result.
uint32_t SpreadBits16(uint32_t v);

/// Inverse of SpreadBits16.
uint32_t CompactBits16(uint32_t v);

/// Morton code of (col, row); both must be < 2^16.
uint32_t Encode(uint32_t col, uint32_t row);

/// Recovers the column (x) of a Morton code.
uint32_t DecodeCol(uint32_t code);

/// Recovers the row (y) of a Morton code.
uint32_t DecodeRow(uint32_t code);

/// Parent Morton code one level up.
inline uint32_t Parent(uint32_t code) { return code >> 2; }

/// First (smallest) child Morton code one level down; the four children are
/// FirstChild(code) + {0,1,2,3}.
inline uint32_t FirstChild(uint32_t code) { return code << 2; }

}  // namespace zorder
}  // namespace gat

#endif  // GAT_GEO_ZORDER_H_
