#include "gat/net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <vector>

namespace gat::wire {

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

bool Client::Connect(const std::string& host, uint16_t port) {
  Close();
  fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Close();
    return false;
  }
  return true;
}

bool Client::SendRaw(const std::string& bytes) {
  if (fd_ < 0) return false;
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    Close();
    return false;
  }
  return true;
}

bool Client::ReadExact(char* data, size_t size) {
  size_t got = 0;
  while (got < size) {
    const ssize_t n = read(fd_, data + got, size - got);
    if (n > 0) {
      got += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // EOF or error
  }
  return true;
}

bool Client::Call(const ServeRequest& request, ServeResult* result) {
  if (fd_ < 0) return false;
  if (!SendRaw(EncodeRequestFrame(request))) return false;
  return ReadResponse(result);
}

bool Client::ReadResponse(ServeResult* result) {
  if (fd_ < 0) return false;
  char header_bytes[kHeaderBytes];
  FrameHeader header;
  if (!ReadExact(header_bytes, sizeof(header_bytes)) ||
      !ParseFrameHeader(header_bytes, sizeof(header_bytes), &header) ||
      header.type != FrameType::kServeResponse) {
    Close();
    return false;
  }
  std::vector<char> payload(header.payload_bytes);
  if (!ReadExact(payload.data(), payload.size())) {
    Close();
    return false;
  }
  const std::string_view view(payload.data(), payload.size());
  if (!VerifyPayload(header, view) || !DecodeResultPayload(view, result)) {
    Close();
    return false;
  }
  return true;
}

bool Client::CallIngest(const IngestRequest& request, IngestResult* result) {
  if (fd_ < 0) return false;
  if (!SendRaw(EncodeIngestFrame(request))) return false;
  return ReadIngestAck(result);
}

bool Client::ReadIngestAck(IngestResult* result) {
  if (fd_ < 0) return false;
  char header_bytes[kHeaderBytes];
  FrameHeader header;
  if (!ReadExact(header_bytes, sizeof(header_bytes)) ||
      !ParseFrameHeader(header_bytes, sizeof(header_bytes), &header) ||
      header.type != FrameType::kIngestAck) {
    Close();
    return false;
  }
  std::vector<char> payload(header.payload_bytes);
  if (!ReadExact(payload.data(), payload.size())) {
    Close();
    return false;
  }
  const std::string_view view(payload.data(), payload.size());
  if (!VerifyPayload(header, view) || !DecodeIngestAckPayload(view, result)) {
    Close();
    return false;
  }
  return true;
}

bool Client::AwaitCleanClose() {
  if (fd_ < 0) return false;
  char byte = 0;
  for (;;) {
    const ssize_t n = read(fd_, &byte, 1);
    if (n == 0) {
      Close();
      return true;  // EOF with no stray bytes
    }
    if (n < 0 && errno == EINTR) continue;
    Close();
    return false;  // unexpected bytes or a hard error
  }
}

}  // namespace gat::wire
