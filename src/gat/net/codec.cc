#include "gat/net/codec.h"

#include <cmath>
#include <cstring>

#include "gat/common/check.h"

namespace gat::wire {

namespace {

/// Append-only little scribe over a std::string. Fixed-width host-order
/// fields, like gat/model/binary_io.h writes snapshots.
class Writer {
 public:
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  std::string Take() { return std::move(out_); }

 private:
  void Raw(const void* p, size_t n) {
    out_.append(reinterpret_cast<const char*>(p), n);
  }
  std::string out_;
};

/// Bounds-checked cursor over a received payload. Every read that
/// would cross the end fails instead of touching memory — the first
/// half of the reject-or-bit-exact contract.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool U32(uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Raw(v, sizeof(*v)); }
  bool F64(double* v) { return Raw(v, sizeof(*v)); }
  /// Trailing bytes after the last field are a reject, not padding.
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  bool Raw(void* p, size_t n) {
    if (data_.size() - pos_ < n) return false;
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  std::string_view data_;
  size_t pos_ = 0;
};

bool DecodeQuery(Reader& r, Query* out) {
  uint32_t num_points = 0;
  if (!r.U32(&num_points)) return false;
  if (num_points == 0 || num_points > kMaxPointsPerQuery) return false;
  std::vector<QueryPoint> points;
  points.reserve(num_points);
  for (uint32_t p = 0; p < num_points; ++p) {
    QueryPoint point;
    if (!r.F64(&point.location.x)) return false;
    if (!r.F64(&point.location.y)) return false;
    // NaN/inf coordinates would poison every distance comparison
    // downstream; they cannot come from a correct encoder.
    if (!std::isfinite(point.location.x) ||
        !std::isfinite(point.location.y)) {
      return false;
    }
    uint32_t num_activities = 0;
    if (!r.U32(&num_activities)) return false;
    if (num_activities > kMaxActivitiesPerPoint) return false;
    point.activities.reserve(num_activities);
    for (uint32_t a = 0; a < num_activities; ++a) {
      uint32_t activity = 0;
      if (!r.U32(&activity)) return false;
      // Strictly ascending = sorted and deduplicated, exactly the
      // normal form `Query` maintains — so Query's re-normalization
      // is the identity and decode→encode is byte-exact.
      if (!point.activities.empty() && activity <= point.activities.back()) {
        return false;
      }
      point.activities.push_back(activity);
    }
    points.push_back(std::move(point));
  }
  *out = Query(std::move(points));
  return true;
}

}  // namespace

std::string EncodeRequestPayload(const ServeRequest& request) {
  GAT_CHECK(!request.queries.empty());
  GAT_CHECK(request.queries.size() <= kMaxQueriesPerRequest);
  GAT_CHECK(request.k >= 1 && request.k <= kMaxTopK);
  Writer w;
  w.U32(request.tenant);
  w.U32(static_cast<uint32_t>(request.priority));
  w.U32(static_cast<uint32_t>(request.kind));
  w.U32(static_cast<uint32_t>(request.k));
  w.U64(request.deadline_micros);
  w.U32(static_cast<uint32_t>(request.queries.size()));
  for (const Query& query : request.queries) {
    GAT_CHECK(!query.empty());
    GAT_CHECK(query.size() <= kMaxPointsPerQuery);
    w.U32(static_cast<uint32_t>(query.size()));
    for (const QueryPoint& point : query.points()) {
      w.F64(point.location.x);
      w.F64(point.location.y);
      GAT_CHECK(point.activities.size() <= kMaxActivitiesPerPoint);
      w.U32(static_cast<uint32_t>(point.activities.size()));
      for (ActivityId activity : point.activities) w.U32(activity);
    }
  }
  return w.Take();
}

bool DecodeRequestPayload(std::string_view payload, ServeRequest* out) {
  Reader r(payload);
  ServeRequest request;
  uint32_t priority = 0;
  uint32_t kind = 0;
  uint32_t k = 0;
  uint32_t num_queries = 0;
  if (!r.U32(&request.tenant)) return false;
  if (!r.U32(&priority)) return false;
  if (priority > static_cast<uint32_t>(RequestPriority::kBulk)) return false;
  request.priority = static_cast<RequestPriority>(priority);
  if (!r.U32(&kind)) return false;
  if (kind > static_cast<uint32_t>(QueryKind::kOatsq)) return false;
  request.kind = static_cast<QueryKind>(kind);
  if (!r.U32(&k)) return false;
  if (k == 0 || k > kMaxTopK) return false;
  request.k = k;
  if (!r.U64(&request.deadline_micros)) return false;
  if (!r.U32(&num_queries)) return false;
  // A request with nothing to serve is a protocol violation, not an
  // empty batch: no correct client encodes one (the encoder refuses).
  if (num_queries == 0 || num_queries > kMaxQueriesPerRequest) return false;
  request.queries.reserve(num_queries);
  for (uint32_t q = 0; q < num_queries; ++q) {
    Query query;
    if (!DecodeQuery(r, &query)) return false;
    request.queries.push_back(std::move(query));
  }
  if (!r.AtEnd()) return false;
  *out = std::move(request);
  return true;
}

std::string EncodeResultPayload(const ServeResult& result) {
  const BatchResult& batch = result.batch;
  GAT_CHECK(batch.results.size() == batch.statuses.size());
  GAT_CHECK(batch.results.size() <= kMaxQueriesPerRequest);
  Writer w;
  w.U32(static_cast<uint32_t>(result.status));
  w.U32(static_cast<uint32_t>(result.shed_reason));
  w.U32(result.shed_tenant);
  w.U64(batch.deadline_exceeded);
  w.U32(static_cast<uint32_t>(batch.results.size()));
  for (size_t i = 0; i < batch.results.size(); ++i) {
    const ResultList& results = batch.results[i];
    GAT_CHECK(results.size() <= kMaxResultsPerQuery);
    w.U32(static_cast<uint32_t>(batch.statuses[i]));
    w.U32(static_cast<uint32_t>(results.size()));
    for (const SearchResult& entry : results) {
      w.U32(entry.trajectory);
      w.F64(entry.distance);
    }
  }
  const SearchStats& t = batch.totals;
  w.U64(t.candidates_retrieved);
  w.U64(t.tas_pruned);
  w.U64(t.activity_rejected);
  w.U64(t.mib_rejected);
  w.U64(t.distance_computations);
  w.U64(t.nodes_popped);
  w.U64(t.heap_pushes);
  w.U64(t.rounds);
  w.U64(t.disk_reads);
  w.U64(t.block_hits);
  w.U64(t.blocks_read);
  w.U64(t.index_pins);
  w.U64(t.deadline_skips);
  w.U64(t.critical_disk_reads);
  w.F64(t.elapsed_ms);
  return w.Take();
}

bool DecodeResultPayload(std::string_view payload, ServeResult* out) {
  Reader r(payload);
  ServeResult result;
  uint32_t status = 0;
  uint32_t shed_reason = 0;
  uint32_t num_queries = 0;
  if (!r.U32(&status)) return false;
  if (status > static_cast<uint32_t>(ServeStatus::kDeadlineExceeded)) {
    return false;
  }
  result.status = static_cast<ServeStatus>(status);
  if (!r.U32(&shed_reason)) return false;
  if (shed_reason > static_cast<uint32_t>(ShedReason::kTenantRateLimit)) {
    return false;
  }
  result.shed_reason = static_cast<ShedReason>(shed_reason);
  if (!r.U32(&result.shed_tenant)) return false;
  if (!r.U64(&result.batch.deadline_exceeded)) return false;
  if (!r.U32(&num_queries)) return false;
  if (num_queries > kMaxQueriesPerRequest) return false;
  // Cross-field discipline: a shed carries no batch at all, and a
  // non-shed carries no shed detail. Violations mean a peer invented
  // state the serving side never produces — reject.
  if (result.status == ServeStatus::kShed) {
    if (result.shed_reason == ShedReason::kNone) return false;
    if (num_queries != 0 || result.batch.deadline_exceeded != 0) return false;
  } else {
    if (result.shed_reason != ShedReason::kNone) return false;
    if (result.shed_tenant != 0) return false;
  }
  result.batch.results.reserve(num_queries);
  result.batch.statuses.reserve(num_queries);
  uint64_t deadline_statuses = 0;
  for (uint32_t q = 0; q < num_queries; ++q) {
    uint32_t query_status = 0;
    uint32_t num_results = 0;
    if (!r.U32(&query_status)) return false;
    if (query_status > static_cast<uint32_t>(QueryStatus::kDeadlineExceeded)) {
      return false;
    }
    const auto qs = static_cast<QueryStatus>(query_status);
    if (!r.U32(&num_results)) return false;
    if (num_results > kMaxResultsPerQuery) return false;
    // Expired queries never carry partial answers, and an expired
    // *request* clears every list (FrontDoor contract).
    if (qs == QueryStatus::kDeadlineExceeded && num_results != 0) {
      return false;
    }
    if (result.status == ServeStatus::kDeadlineExceeded && num_results != 0) {
      return false;
    }
    if (qs == QueryStatus::kDeadlineExceeded) ++deadline_statuses;
    ResultList results;
    results.reserve(num_results);
    for (uint32_t i = 0; i < num_results; ++i) {
      SearchResult entry;
      if (!r.U32(&entry.trajectory)) return false;
      if (!r.F64(&entry.distance)) return false;
      results.push_back(entry);
    }
    result.batch.results.push_back(std::move(results));
    result.batch.statuses.push_back(qs);
  }
  // `deadline_exceeded` is definitionally the count of expired
  // queries — except for a request expired before the engine saw it,
  // which has no per-query slots at all.
  if (num_queries != 0 &&
      result.batch.deadline_exceeded != deadline_statuses) {
    return false;
  }
  SearchStats& t = result.batch.totals;
  if (!r.U64(&t.candidates_retrieved)) return false;
  if (!r.U64(&t.tas_pruned)) return false;
  if (!r.U64(&t.activity_rejected)) return false;
  if (!r.U64(&t.mib_rejected)) return false;
  if (!r.U64(&t.distance_computations)) return false;
  if (!r.U64(&t.nodes_popped)) return false;
  if (!r.U64(&t.heap_pushes)) return false;
  if (!r.U64(&t.rounds)) return false;
  if (!r.U64(&t.disk_reads)) return false;
  if (!r.U64(&t.block_hits)) return false;
  if (!r.U64(&t.blocks_read)) return false;
  if (!r.U64(&t.index_pins)) return false;
  if (!r.U64(&t.deadline_skips)) return false;
  if (!r.U64(&t.critical_disk_reads)) return false;
  if (!r.F64(&t.elapsed_ms)) return false;
  if (!r.AtEnd()) return false;
  *out = std::move(result);
  return true;
}

std::string EncodeIngestPayload(const IngestRequest& request) {
  GAT_CHECK(!request.checkins.empty());
  GAT_CHECK(request.checkins.size() <= kMaxCheckInsPerIngest);
  Writer w;
  w.U32(request.tenant);
  w.U32(static_cast<uint32_t>(request.checkins.size()));
  for (const CheckIn& c : request.checkins) {
    GAT_CHECK(std::isfinite(c.location.x) && std::isfinite(c.location.y));
    GAT_CHECK(c.activities.size() <= kMaxActivitiesPerPoint);
    w.U64(c.user);
    w.F64(c.location.x);
    w.F64(c.location.y);
    w.U32(static_cast<uint32_t>(c.activities.size()));
    for (size_t i = 0; i < c.activities.size(); ++i) {
      GAT_CHECK(i == 0 || c.activities[i] > c.activities[i - 1]);
      w.U32(c.activities[i]);
    }
  }
  return w.Take();
}

bool DecodeIngestPayload(std::string_view payload, IngestRequest* out) {
  Reader r(payload);
  IngestRequest request;
  uint32_t num_checkins = 0;
  if (!r.U32(&request.tenant)) return false;
  if (!r.U32(&num_checkins)) return false;
  // An ingest with nothing to apply is a protocol violation, same rule
  // as an empty query batch.
  if (num_checkins == 0 || num_checkins > kMaxCheckInsPerIngest) return false;
  request.checkins.reserve(num_checkins);
  for (uint32_t i = 0; i < num_checkins; ++i) {
    CheckIn c;
    if (!r.U64(&c.user)) return false;
    if (!r.F64(&c.location.x)) return false;
    if (!r.F64(&c.location.y)) return false;
    if (!std::isfinite(c.location.x) || !std::isfinite(c.location.y)) {
      return false;
    }
    uint32_t num_activities = 0;
    if (!r.U32(&num_activities)) return false;
    if (num_activities > kMaxActivitiesPerPoint) return false;
    c.activities.reserve(num_activities);
    for (uint32_t a = 0; a < num_activities; ++a) {
      uint32_t activity = 0;
      if (!r.U32(&activity)) return false;
      // Strictly ascending: sorted + deduplicated, so the LiveIndex's
      // normalization is the identity and decode→encode is byte-exact.
      if (!c.activities.empty() && activity <= c.activities.back()) {
        return false;
      }
      c.activities.push_back(activity);
    }
    request.checkins.push_back(std::move(c));
  }
  if (!r.AtEnd()) return false;
  *out = std::move(request);
  return true;
}

std::string EncodeIngestAckPayload(const IngestResult& result) {
  Writer w;
  w.U32(static_cast<uint32_t>(result.status));
  w.U32(static_cast<uint32_t>(result.shed_reason));
  w.U32(result.shed_tenant);
  w.U64(result.accepted);
  w.U64(result.watermark);
  return w.Take();
}

bool DecodeIngestAckPayload(std::string_view payload, IngestResult* out) {
  Reader r(payload);
  IngestResult result;
  uint32_t status = 0;
  uint32_t shed_reason = 0;
  if (!r.U32(&status)) return false;
  if (status > static_cast<uint32_t>(IngestStatus::kUnavailable)) return false;
  result.status = static_cast<IngestStatus>(status);
  if (!r.U32(&shed_reason)) return false;
  if (shed_reason > static_cast<uint32_t>(ShedReason::kWriteRateLimit)) {
    return false;
  }
  result.shed_reason = static_cast<ShedReason>(shed_reason);
  if (!r.U32(&result.shed_tenant)) return false;
  if (!r.U64(&result.accepted)) return false;
  if (!r.U64(&result.watermark)) return false;
  if (!r.AtEnd()) return false;
  // Cross-field discipline: exactly the states FrontDoor::Ingest
  // produces. The write path has one shed policy, so a shed ack names
  // it and nothing else; any non-ok ack applied nothing.
  if (result.status == IngestStatus::kShed) {
    if (result.shed_reason != ShedReason::kWriteRateLimit) return false;
  } else {
    if (result.shed_reason != ShedReason::kNone) return false;
    if (result.shed_tenant != 0) return false;
  }
  if (result.status == IngestStatus::kOk) {
    // A wire ingest carries at least one check-in, so an ok ack
    // accepted at least one and the cumulative watermark covers them.
    if (result.accepted == 0 || result.watermark < result.accepted) {
      return false;
    }
  } else {
    if (result.accepted != 0 || result.watermark != 0) return false;
  }
  *out = result;
  return true;
}

std::string BuildFrame(FrameType type, std::string_view payload) {
  GAT_CHECK(payload.size() <= kMaxPayloadBytes);
  Writer w;
  uint32_t magic = 0;
  std::memcpy(&magic, kMagic, sizeof(magic));
  w.U32(magic);
  w.U32(kVersion);
  w.U32(static_cast<uint32_t>(type));
  w.U32(static_cast<uint32_t>(payload.size()));
  w.U32(snapshot_format::Crc32(payload.data(), payload.size()));
  std::string frame = w.Take();
  frame.append(payload.data(), payload.size());
  return frame;
}

std::string EncodeRequestFrame(const ServeRequest& request) {
  return BuildFrame(FrameType::kServeRequest, EncodeRequestPayload(request));
}

std::string EncodeResultFrame(const ServeResult& result) {
  return BuildFrame(FrameType::kServeResponse, EncodeResultPayload(result));
}

std::string EncodeIngestFrame(const IngestRequest& request) {
  return BuildFrame(FrameType::kIngest, EncodeIngestPayload(request));
}

std::string EncodeIngestAckFrame(const IngestResult& result) {
  return BuildFrame(FrameType::kIngestAck, EncodeIngestAckPayload(result));
}

bool ParseFrameHeader(const char* data, size_t size, FrameHeader* out) {
  GAT_CHECK(size >= kHeaderBytes);
  if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0) return false;
  uint32_t version = 0;
  uint32_t type = 0;
  FrameHeader header;
  std::memcpy(&version, data + 4, sizeof(version));
  std::memcpy(&type, data + 8, sizeof(type));
  std::memcpy(&header.payload_bytes, data + 12, sizeof(header.payload_bytes));
  std::memcpy(&header.payload_crc32, data + 16, sizeof(header.payload_crc32));
  if (version != kVersion) return false;
  if (type != static_cast<uint32_t>(FrameType::kServeRequest) &&
      type != static_cast<uint32_t>(FrameType::kServeResponse) &&
      type != static_cast<uint32_t>(FrameType::kIngest) &&
      type != static_cast<uint32_t>(FrameType::kIngestAck)) {
    return false;
  }
  header.type = static_cast<FrameType>(type);
  if (header.payload_bytes > kMaxPayloadBytes) return false;
  *out = header;
  return true;
}

bool VerifyPayload(const FrameHeader& header, std::string_view payload) {
  GAT_CHECK(payload.size() == header.payload_bytes);
  return snapshot_format::Crc32(payload.data(), payload.size()) ==
         header.payload_crc32;
}

}  // namespace gat::wire
