#ifndef GAT_NET_CLIENT_H_
#define GAT_NET_CLIENT_H_

#include <cstdint>
#include <string>

#include "gat/net/codec.h"
#include "gat/serve/front_door.h"

namespace gat::wire {

/// A blocking `GATW` client: connect, send a request frame, wait for
/// the response frame. The test/bench/example counterpart of `Server`
/// — deliberately synchronous (one outstanding call per Call), with a
/// raw-bytes escape hatch so the corruption tests can speak broken
/// protocol on purpose.
///
/// Every transport or protocol error closes the connection and fails
/// the call; the client applies the same reject-or-bit-exact decode
/// discipline as the server (a malformed server response is an error,
/// never a crash).
///
/// Thread-safety: none; one thread per client.
class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// IPv4 host ("127.0.0.1") + port. False on failure.
  bool Connect(const std::string& host, uint16_t port);

  /// Sends `request` and blocks for its response. False on any
  /// transport or protocol error (the connection is closed then and
  /// `*result` is unspecified).
  bool Call(const ServeRequest& request, ServeResult* result);

  /// Blocks for one response frame without sending anything. With
  /// several requests already written (via SendRaw), responses arrive
  /// strictly in request order — the pipelining half of Call.
  bool ReadResponse(ServeResult* result);

  /// Sends a check-in batch and blocks for its kIngestAck. Same error
  /// contract as Call. The ack itself carries the outcome (`result`):
  /// a shed or invalid batch is a successful call with a non-ok
  /// status, not a transport error.
  bool CallIngest(const IngestRequest& request, IngestResult* result);

  /// Blocks for one ingest ack without sending — the pipelining half
  /// of CallIngest.
  bool ReadIngestAck(IngestResult* result);

  /// Sends arbitrary bytes as-is. For protocol tests.
  bool SendRaw(const std::string& bytes);

  /// Blocks until the server closes the connection. True iff EOF
  /// arrived with zero intervening bytes — the server's clean close
  /// after a protocol violation sends nothing.
  bool AwaitCleanClose();

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  /// Reads exactly `size` bytes. False on EOF or error.
  bool ReadExact(char* data, size_t size);

  int fd_ = -1;
};

}  // namespace gat::wire

#endif  // GAT_NET_CLIENT_H_
