#ifndef GAT_NET_SESSION_H_
#define GAT_NET_SESSION_H_

#include <cstdint>
#include <string>

#include "gat/net/codec.h"
#include "gat/serve/front_door.h"

namespace gat::wire {

/// The per-connection protocol state machine, sans-io: bytes go in
/// through `Append` (from any transport — a socket, a test buffer),
/// decoded requests come out of `Next`. The session never touches a
/// file descriptor, which is what makes the whole
/// read-frames → decode → serve → encode loop testable without
/// sockets.
///
/// Error handling is the protocol's core promise: any malformed input
/// — bad magic or version, unknown frame type, oversized declared
/// length, CRC mismatch, undecodable or inconsistent payload, or a
/// response frame where a request belongs — moves the session to
/// `closed` permanently. A closed session consumes no further bytes
/// and emits no further requests; the transport's only job is to
/// close the connection. Never a crash, by construction: every read
/// is bounds-checked and every enum value range-checked before use.
///
/// Thread-safety: none. One session belongs to one connection and is
/// driven by one thread at a time (the server's poll thread).
/// One decoded inbound frame: a query request or an ingest batch. The
/// session's `Next` fills exactly the member `kind` names; the other
/// stays default-constructed.
struct InboundFrame {
  enum class Kind : uint8_t {
    kRequest = 0,  // `request` holds a decoded ServeRequest
    kIngest = 1,   // `ingest` holds a decoded IngestRequest
  };
  Kind kind = Kind::kRequest;
  ServeRequest request;
  IngestRequest ingest;
};

class Session {
 public:
  enum class Event : uint8_t {
    kNeedMore = 0,  // no complete frame buffered; feed more bytes
    kRequest = 1,   // *out holds the next decoded inbound frame
    kClosed = 2,    // protocol violation; the connection must close
  };

  /// Feeds transport bytes. No-op once closed.
  void Append(const char* data, size_t size);

  /// Consumes the next complete frame — a query request (kServeRequest)
  /// or a write batch (kIngest); both directions of inbound traffic
  /// interleave freely on one connection and come out strictly in
  /// arrival order. Call in a loop after every Append until it stops
  /// returning kRequest.
  Event Next(InboundFrame* out);

  bool closed() const { return closed_; }

  /// Frames decoded / rejected over the session's lifetime.
  uint64_t frames_decoded() const { return frames_decoded_; }

 private:
  std::string buffer_;
  size_t consumed_ = 0;  // compacted lazily
  bool closed_ = false;
  uint64_t frames_decoded_ = 0;
};

/// Outcome of the fast-path dispatch below.
enum class DispatchOutcome : uint8_t {
  /// `*frame` holds the complete encoded response; zero engine work
  /// (and zero executor tasks) were performed.
  kResponded = 0,
  /// The request was admitted and is live: the caller must run
  /// `ServeAdmittedFrame`, on whatever thread it schedules work.
  kNeedsEngine = 1,
};

/// The zero-engine-work half of serving: charges admission and checks
/// the deadline on the calling thread. A shed or already-expired
/// request is fully answered here — no task submitted, no shard
/// pinned, nothing — which is what lets the server keep the
/// "shedding overload costs nothing" invariant across the socket
/// boundary (`Executor::tasks_submitted()` provably unchanged).
DispatchOutcome TryServeFastPath(FrontDoor& door, const ServeRequest& request,
                                 std::string* frame);

/// The blocking half: runs an already-admitted, live request through
/// the engine and encodes the response frame. Pair with
/// `TryServeFastPath` (which performed the admission).
std::string ServeAdmittedFrame(FrontDoor& door, const ServeRequest& request);

/// Convenience for inline serving (tests, single-threaded servers):
/// full admission + execution + encode.
std::string ServeFrame(FrontDoor& door, const ServeRequest& request);

/// The write path's whole dispatch: admission + application + encoded
/// kIngestAck. Always inline — ingestion is a validated append into
/// the delta, never engine work, so there is no fast/slow split and no
/// executor task (the server handles kIngest frames on the poll
/// thread, preserving per-connection FIFO with queries).
std::string IngestFrame(FrontDoor& door, const IngestRequest& request);

}  // namespace gat::wire

#endif  // GAT_NET_SESSION_H_
