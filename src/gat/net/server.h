#ifndef GAT_NET_SERVER_H_
#define GAT_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gat/engine/executor.h"
#include "gat/net/session.h"
#include "gat/serve/front_door.h"

namespace gat::wire {

/// Server knobs. IPv4 only — the test/bench/ops surface this server
/// exists for is loopback and rack-local addresses.
struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; `port()` reports the bound one.
  uint16_t port = 0;
  int backlog = 64;
  /// Runs admitted requests as tasks on this executor, one task per
  /// request — the transport schedules at request granularity and the
  /// engine fans out below it on the same pool. Non-owning; must
  /// outlive the server. nullptr serves inline on the poll thread
  /// (correct, but one request at a time across all connections).
  Executor* executor = nullptr;
};

/// Transport-level counters (policy counters live in FrontDoor).
struct ServerCounters {
  uint64_t sessions_opened = 0;
  uint64_t sessions_closed = 0;
  uint64_t requests_served = 0;
  /// kIngest frames answered (always on the pumping thread — ingestion
  /// is a delta append, never an executor task).
  uint64_t ingests_served = 0;
  /// Sessions that hit malformed input and were closed cleanly.
  uint64_t protocol_errors = 0;
};

/// A poll(2)-based socket front end over `FrontDoor`: one poll thread
/// owns every descriptor (listener, wakeup pipe, connections) and all
/// framing state; admitted live requests run as executor tasks.
///
/// Transport adds parsing, not policy. Admission, deadlines and
/// priorities stay in `FrontDoor`; the server's one scheduling duty is
/// the zero-engine-work invariant: shed and already-expired requests
/// are answered on the poll thread (or on a predecessor's task while
/// it drains the connection queue) via `TryServeFastPath` — no
/// executor task is ever submitted for them, so
/// `Executor::tasks_submitted()` does not move under pure overload.
///
/// Per connection, requests are answered strictly in arrival order
/// (at most one engine task in flight per connection; queued
/// successors wait, fast-path successors are answered by whichever
/// thread drains the queue). Malformed input closes the connection
/// cleanly after flushing responses already earned — never a crash,
/// never a partial frame.
class Server {
 public:
  /// `door` is borrowed and must outlive the server.
  explicit Server(FrontDoor& door, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the poll thread. False on any socket
  /// failure (port in use, bad host). Call once.
  bool Start();

  /// Stops accepting, joins the poll thread, waits for in-flight
  /// request tasks, closes every connection. Idempotent.
  void Stop();

  /// The bound port (valid after a successful Start).
  uint16_t port() const { return port_; }

  ServerCounters counters() const;

 private:
  struct Connection {
    int fd = -1;
    /// Framing state: poll thread only.
    Session session;
    /// Everything below is shared with request tasks.
    std::mutex mu;
    std::deque<InboundFrame> pending;
    std::string outbox;
    bool busy = false;     // one engine task in flight
    bool pumping = false;  // one thread draining `pending`
    bool input_closed = false;
  };

  void PollLoop();
  void Wake();
  /// Reads all available bytes, feeds the session, queues requests.
  void HandleReadable(const std::shared_ptr<Connection>& conn);
  /// Drains `pending`: fast-path responses inline, at most one engine
  /// task in flight. Callable from the poll thread and from tasks.
  void PumpConnection(std::shared_ptr<Connection> conn);
  /// Writes as much outbox as the socket takes. False = write error.
  bool FlushOutbox(Connection& conn);

  FrontDoor& door_;
  const ServerOptions options_;
  uint16_t port_ = 0;

  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: [0] polled, [1] written
  std::thread poll_thread_;
  std::atomic<bool> running_{false};
  bool started_ = false;

  /// One group per priority class so bulk request tasks yield the
  /// pool to interactive ones, mirroring the engine's two queues.
  std::unique_ptr<TaskGroup> interactive_group_;
  std::unique_ptr<TaskGroup> bulk_group_;

  /// Poll-thread-owned connection list.
  std::vector<std::shared_ptr<Connection>> connections_;

  std::atomic<uint64_t> sessions_opened_{0};
  std::atomic<uint64_t> sessions_closed_{0};
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> ingests_served_{0};
  std::atomic<uint64_t> protocol_errors_{0};
};

}  // namespace gat::wire

#endif  // GAT_NET_SERVER_H_
