#include "gat/net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace gat::wire {

namespace {

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

Server::Server(FrontDoor& door, ServerOptions options)
    : door_(door), options_(std::move(options)) {}

Server::~Server() { Stop(); }

bool Server::Start() {
  if (started_) return false;

  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return false;
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1 ||
      bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(listen_fd_, options_.backlog) != 0 ||
      !SetNonBlocking(listen_fd_) || pipe(wake_fds_) != 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  SetNonBlocking(wake_fds_[0]);
  SetNonBlocking(wake_fds_[1]);

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);

  if (options_.executor != nullptr) {
    interactive_group_ =
        std::make_unique<TaskGroup>(*options_.executor, TaskPriority::kHigh);
    bulk_group_ =
        std::make_unique<TaskGroup>(*options_.executor, TaskPriority::kLow);
  }

  started_ = true;
  running_.store(true, std::memory_order_release);
  poll_thread_ = std::thread([this] { PollLoop(); });
  return true;
}

void Server::Stop() {
  if (!started_) return;
  running_.store(false, std::memory_order_release);
  Wake();
  poll_thread_.join();
  // The poll thread is gone, so no new requests can queue; in-flight
  // tasks may still be chaining through connection queues. Their
  // chains terminate (pending is finite once reads stop) and the
  // groups' barriers cover every link.
  if (interactive_group_ != nullptr) interactive_group_->Wait();
  if (bulk_group_ != nullptr) bulk_group_->Wait();
  for (const auto& conn : connections_) {
    close(conn->fd);
    sessions_closed_.fetch_add(1, std::memory_order_relaxed);
  }
  connections_.clear();
  close(listen_fd_);
  close(wake_fds_[0]);
  close(wake_fds_[1]);
  listen_fd_ = wake_fds_[0] = wake_fds_[1] = -1;
  started_ = false;
}

ServerCounters Server::counters() const {
  ServerCounters out;
  out.sessions_opened = sessions_opened_.load(std::memory_order_relaxed);
  out.sessions_closed = sessions_closed_.load(std::memory_order_relaxed);
  out.requests_served = requests_served_.load(std::memory_order_relaxed);
  out.ingests_served = ingests_served_.load(std::memory_order_relaxed);
  out.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  return out;
}

void Server::Wake() {
  const char byte = 0;
  // Best-effort: a full pipe already guarantees a pending wakeup.
  [[maybe_unused]] const ssize_t n = write(wake_fds_[1], &byte, 1);
}

void Server::HandleReadable(const std::shared_ptr<Connection>& conn) {
  char buf[16384];
  for (;;) {
    const ssize_t n = read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      conn->session.Append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // EOF or hard error: no more input. Responses still owed (queued
    // requests, an in-flight task) flush before the close.
    conn->input_closed = true;
    break;
  }
  InboundFrame inbound;
  for (;;) {
    const Session::Event event = conn->session.Next(&inbound);
    if (event == Session::Event::kRequest) {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->pending.push_back(std::move(inbound));
      continue;
    }
    if (event == Session::Event::kClosed) {
      if (!conn->input_closed) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        conn->input_closed = true;
        // Stop reading a protocol violator; what is already decoded
        // still gets served and flushed (clean close, not a crash —
        // and not an abandoned valid request either).
        shutdown(conn->fd, SHUT_RD);
      }
      break;
    }
    break;  // kNeedMore
  }
}

void Server::PumpConnection(std::shared_ptr<Connection> conn) {
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->pumping) return;  // the active pumper will see our work
    conn->pumping = true;
  }
  for (;;) {
    InboundFrame inbound;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->busy || conn->pending.empty()) {
        conn->pumping = false;
        return;
      }
      inbound = std::move(conn->pending.front());
      conn->pending.pop_front();
    }

    // Ingest frames are answered inline by whichever thread pumps the
    // queue: the whole write path is admission + a validated delta
    // append — no engine work to schedule — and answering in place
    // keeps this connection's acks and responses in arrival order.
    if (inbound.kind == InboundFrame::Kind::kIngest) {
      std::string ack = IngestFrame(door_, inbound.ingest);
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->outbox += ack;
      ingests_served_.fetch_add(1, std::memory_order_relaxed);
      Wake();
      continue;
    }
    ServeRequest& request = inbound.request;

    // Zero-engine-work path first: shed and already-expired requests
    // are answered right here, with no executor task ever existing.
    std::string frame;
    if (TryServeFastPath(door_, request, &frame) ==
        DispatchOutcome::kResponded) {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->outbox += frame;
      requests_served_.fetch_add(1, std::memory_order_relaxed);
      Wake();
      continue;
    }

    if (options_.executor == nullptr) {
      frame = ServeAdmittedFrame(door_, request);
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->outbox += frame;
      requests_served_.fetch_add(1, std::memory_order_relaxed);
      Wake();
      continue;
    }

    // Admitted and live: one task, carrying the request by shared_ptr
    // (std::function requires copyable captures). `busy` keeps this
    // connection's answers in arrival order; the task re-pumps on
    // completion so queued successors never wait for the poll thread.
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->busy = true;
      conn->pumping = false;
    }
    auto shared_request = std::make_shared<ServeRequest>(std::move(request));
    TaskGroup& group = shared_request->priority == RequestPriority::kBulk
                           ? *bulk_group_
                           : *interactive_group_;
    group.Submit([this, conn, shared_request] {
      std::string response = ServeAdmittedFrame(door_, *shared_request);
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        conn->outbox += response;
        conn->busy = false;
        requests_served_.fetch_add(1, std::memory_order_relaxed);
      }
      Wake();
      PumpConnection(conn);
    });
    return;
  }
}

bool Server::FlushOutbox(Connection& conn) {
  std::lock_guard<std::mutex> lock(conn.mu);
  while (!conn.outbox.empty()) {
    // MSG_NOSIGNAL: a peer that vanished mid-response is a dropped
    // connection, not a SIGPIPE process kill.
    const ssize_t n =
        send(conn.fd, conn.outbox.data(), conn.outbox.size(), MSG_NOSIGNAL);
    if (n > 0) {
      conn.outbox.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    conn.outbox.clear();  // undeliverable; let the connection retire
    return false;
  }
  return true;
}

void Server::PollLoop() {
  while (running_.load(std::memory_order_acquire)) {
    std::vector<pollfd> fds;
    fds.reserve(connections_.size() + 2);
    fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({wake_fds_[0], POLLIN, 0});
    for (const auto& conn : connections_) {
      short events = 0;
      if (!conn->input_closed) events |= POLLIN;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        if (!conn->outbox.empty()) events |= POLLOUT;
      }
      fds.push_back({conn->fd, events, 0});
    }

    if (poll(fds.data(), fds.size(), /*timeout_ms=*/-1) < 0) {
      if (errno == EINTR) continue;
      break;
    }

    if (fds[1].revents & POLLIN) {
      char drain[256];
      while (read(wake_fds_[0], drain, sizeof(drain)) > 0) {
      }
    }

    if (fds[0].revents & POLLIN) {
      for (;;) {
        const int fd = accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        SetNonBlocking(fd);
        auto conn = std::make_shared<Connection>();
        conn->fd = fd;
        connections_.push_back(std::move(conn));
        sessions_opened_.fetch_add(1, std::memory_order_relaxed);
      }
    }

    for (size_t i = 0; i < connections_.size(); ++i) {
      const auto& conn = connections_[i];
      const short revents = fds[i + 2].revents;
      if (revents & (POLLIN | POLLHUP | POLLERR)) {
        HandleReadable(conn);
        PumpConnection(conn);
      }
      if (revents & POLLOUT) {
        if (!FlushOutbox(*conn)) conn->input_closed = true;
      }
    }

    // Retire connections with nothing left to read, run or write.
    for (size_t i = 0; i < connections_.size();) {
      const auto& conn = connections_[i];
      bool drained;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        drained = conn->input_closed && !conn->busy && !conn->pumping &&
                  conn->pending.empty() && conn->outbox.empty();
      }
      if (drained) {
        close(conn->fd);
        sessions_closed_.fetch_add(1, std::memory_order_relaxed);
        connections_.erase(connections_.begin() +
                           static_cast<ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }
}

}  // namespace gat::wire
