#ifndef GAT_NET_WIRE_FORMAT_H_
#define GAT_NET_WIRE_FORMAT_H_

#include <cstddef>
#include <cstdint>

#include "gat/index/snapshot_format.h"

/// The `GATW` wire format: length-prefixed binary frames carrying the
/// serving front door's requests and responses across a socket. The
/// authoritative layout (field order, versioning rules, the stable
/// numeric values of every status enum) is docs/WIRE_PROTOCOL.md; this
/// header is the single in-tree home of the constants.
///
/// A frame is a fixed 20-byte header followed by the payload:
///
///   magic 'GATW' | version u32 | frame type u32 | payload len u32 |
///   payload CRC32 u32 | payload bytes...
///
/// All header fields and every payload field are 4-byte multiples —
/// the same alignment discipline as the `GATS` snapshot format, whose
/// CRC-32 machinery (`gat::snapshot_format::Crc32`) checksums the
/// payload. Byte order is host order (x86-64 little-endian), exactly
/// like the snapshots: one serialization dialect per repo.
///
/// Decoding is reject-or-bit-exact, mirroring the snapshot loaders: a
/// reader either accepts a frame whose re-encoding is byte-identical,
/// or rejects it (bad magic/version/type, oversized length, CRC
/// mismatch, short payload, trailing bytes, out-of-range enum value,
/// structural inconsistency) and the session closes cleanly — a
/// malformed peer can end its connection, never crash the server.
namespace gat::wire {

inline constexpr char kMagic[4] = {'G', 'A', 'T', 'W'};
inline constexpr uint32_t kVersion = 1;

/// Frame types. Wire-stable: add at the end, never renumber. (Enum
/// growth is NOT a version bump — old peers reject unknown types and
/// close, which is the compatible failure mode; the version changes
/// only when the layout of an existing frame changes.)
enum class FrameType : uint32_t {
  kServeRequest = 1,
  kServeResponse = 2,
  kIngest = 3,     // a tenant's check-in batch (write path)
  kIngestAck = 4,  // the ingest outcome: status, accepted, watermark
};

/// magic + version + frame type + payload length + payload CRC32.
inline constexpr size_t kHeaderBytes = 20;

/// Hard ceiling on a declared payload length. A peer announcing more
/// is rejected before any allocation — the length field alone must
/// never size a buffer.
inline constexpr uint32_t kMaxPayloadBytes = 64u << 20;

/// Structural caps the decoder enforces (and the encoder checks), so
/// a hostile length field deep inside a CRC-valid payload still cannot
/// demand absurd allocations.
inline constexpr uint32_t kMaxQueriesPerRequest = 1u << 16;
inline constexpr uint32_t kMaxPointsPerQuery = 1u << 12;
inline constexpr uint32_t kMaxActivitiesPerPoint = 1u << 12;
inline constexpr uint32_t kMaxTopK = 1u << 20;
inline constexpr uint32_t kMaxResultsPerQuery = 1u << 20;
inline constexpr uint32_t kMaxCheckInsPerIngest = 1u << 16;

/// The parsed fixed-size frame header. `payload_crc32` is
/// `snapshot_format::Crc32` over the payload bytes.
struct FrameHeader {
  FrameType type = FrameType::kServeRequest;
  uint32_t payload_bytes = 0;
  uint32_t payload_crc32 = 0;
};

}  // namespace gat::wire

#endif  // GAT_NET_WIRE_FORMAT_H_
