#ifndef GAT_NET_CODEC_H_
#define GAT_NET_CODEC_H_

#include <string>
#include <string_view>

#include "gat/net/wire_format.h"
#include "gat/serve/front_door.h"

namespace gat::wire {

/// Serialization of the serving API (`ServeRequest`, `ServeResult` and
/// the deterministic part of its `BatchResult`) to `GATW` payloads and
/// frames. Pure byte shuffling — no sockets — so the whole codec is
/// testable on buffers and the determinism gates never depend on the
/// kernel.
///
/// The response payload carries exactly the deterministic serving
/// outcome: per-query result lists, per-query `QueryStatus`, the
/// summed `SearchStats` counters, and the request-level
/// `ServeStatus`/`ShedReason`. Wall-clock diagnostics (`latencies`,
/// `per_thread`, `wall_ms`, `threads_used`, `storage`) are
/// transport-local by design and decode to their defaults.

/// Payload codecs. Decoders return false on any malformed input —
/// reject-or-bit-exact, never a crash; on false `*out` is
/// unspecified. Encoders GAT_CHECK the same structural envelope the
/// decoders enforce (an in-process caller violating it is a bug, not
/// a protocol event).
std::string EncodeRequestPayload(const ServeRequest& request);
bool DecodeRequestPayload(std::string_view payload, ServeRequest* out);
std::string EncodeResultPayload(const ServeResult& result);
bool DecodeResultPayload(std::string_view payload, ServeResult* out);

/// Write path: a tenant's check-in batch (kIngest) and its outcome
/// (kIngestAck). Same dialect, same discipline — per-point activity
/// lists strictly ascending, coordinates finite, the ack's cross-field
/// rules exactly the states `FrontDoor::Ingest` produces.
std::string EncodeIngestPayload(const IngestRequest& request);
bool DecodeIngestPayload(std::string_view payload, IngestRequest* out);
std::string EncodeIngestAckPayload(const IngestResult& result);
bool DecodeIngestAckPayload(std::string_view payload, IngestResult* out);

/// Wraps `payload` in a `GATW` frame header (type, length, CRC).
std::string BuildFrame(FrameType type, std::string_view payload);

/// Complete frames: BuildFrame over the payload encoders.
std::string EncodeRequestFrame(const ServeRequest& request);
std::string EncodeResultFrame(const ServeResult& result);
std::string EncodeIngestFrame(const IngestRequest& request);
std::string EncodeIngestAckFrame(const IngestResult& result);

/// Parses and validates a frame header from `data` (which must hold at
/// least kHeaderBytes). False = bad magic, wrong version, unknown
/// frame type, or declared payload over kMaxPayloadBytes; the
/// connection carrying it must close.
bool ParseFrameHeader(const char* data, size_t size, FrameHeader* out);

/// CRC check of a received payload against its header.
bool VerifyPayload(const FrameHeader& header, std::string_view payload);

}  // namespace gat::wire

#endif  // GAT_NET_CODEC_H_
