#include "gat/net/session.h"

#include <utility>

namespace gat::wire {

void Session::Append(const char* data, size_t size) {
  if (closed_) return;
  // Compact the consumed prefix before growing: the buffer never holds
  // more than the unparsed tail plus one incoming read.
  if (consumed_ > 0) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, size);
}

Session::Event Session::Next(InboundFrame* out) {
  if (closed_) return Event::kClosed;
  const size_t available = buffer_.size() - consumed_;
  if (available < kHeaderBytes) return Event::kNeedMore;
  const char* frame = buffer_.data() + consumed_;
  FrameHeader header;
  if (!ParseFrameHeader(frame, kHeaderBytes, &header)) {
    closed_ = true;
    return Event::kClosed;
  }
  // A server session speaks one direction: responses or acks arriving
  // here mean a confused (or hostile) peer.
  if (header.type != FrameType::kServeRequest &&
      header.type != FrameType::kIngest) {
    closed_ = true;
    return Event::kClosed;
  }
  if (available < kHeaderBytes + header.payload_bytes) {
    return Event::kNeedMore;
  }
  const std::string_view payload(frame + kHeaderBytes, header.payload_bytes);
  if (!VerifyPayload(header, payload)) {
    closed_ = true;
    return Event::kClosed;
  }
  InboundFrame decoded;
  if (header.type == FrameType::kServeRequest) {
    decoded.kind = InboundFrame::Kind::kRequest;
    if (!DecodeRequestPayload(payload, &decoded.request)) {
      closed_ = true;
      return Event::kClosed;
    }
  } else {
    decoded.kind = InboundFrame::Kind::kIngest;
    if (!DecodeIngestPayload(payload, &decoded.ingest)) {
      closed_ = true;
      return Event::kClosed;
    }
  }
  consumed_ += kHeaderBytes + header.payload_bytes;
  ++frames_decoded_;
  *out = std::move(decoded);
  return Event::kRequest;
}

DispatchOutcome TryServeFastPath(FrontDoor& door, const ServeRequest& request,
                                 std::string* frame) {
  if (!door.TryAdmit(request.tenant)) {
    ServeResult shed;
    shed.status = ServeStatus::kShed;
    shed.shed_reason = ShedReason::kTenantRateLimit;
    shed.shed_tenant = request.tenant;
    *frame = EncodeResultFrame(shed);
    return DispatchOutcome::kResponded;
  }
  QueryContext context;
  context.clock = &door.clock();
  context.deadline_micros = request.deadline_micros;
  if (context.Expired()) {
    // Already dead at admission: ServeAdmitted's entry gate refuses it
    // without creating any engine work, so answering inline is free.
    *frame = EncodeResultFrame(door.ServeAdmitted(request));
    return DispatchOutcome::kResponded;
  }
  return DispatchOutcome::kNeedsEngine;
}

std::string ServeAdmittedFrame(FrontDoor& door, const ServeRequest& request) {
  return EncodeResultFrame(door.ServeAdmitted(request));
}

std::string ServeFrame(FrontDoor& door, const ServeRequest& request) {
  std::string frame;
  if (TryServeFastPath(door, request, &frame) == DispatchOutcome::kResponded) {
    return frame;
  }
  return ServeAdmittedFrame(door, request);
}

std::string IngestFrame(FrontDoor& door, const IngestRequest& request) {
  return EncodeIngestAckFrame(door.Ingest(request));
}

}  // namespace gat::wire
