#ifndef GAT_CORE_ORDER_MATCH_H_
#define GAT_CORE_ORDER_MATCH_H_

#include <vector>

#include "gat/common/types.h"
#include "gat/core/point_match.h"
#include "gat/model/query.h"
#include "gat/model/trajectory.h"

namespace gat {

/// The matching index bound MIB(q) = [lb, ub] of Section VI-B: the smallest
/// and greatest trajectory position index among points carrying at least
/// one activity of q.Phi. `valid` is false when no such point exists.
struct MatchingIndexBound {
  PointIndex lb = 0;
  PointIndex ub = 0;
  bool valid = false;
};

/// Computes MIB(q) for one query point over a trajectory.
MatchingIndexBound ComputeMib(const Trajectory& trajectory,
                              const QueryPoint& query_point);

/// Order validation of Section VI-B: a candidate can be eliminated when two
/// query points q_i, q_j (i < j) have MIB(q_i).lb > MIB(q_j).ub — their
/// point matches cannot comply with the order q_i -> q_j. Also fails when
/// any q has no match point at all. May still admit false positives; the
/// Dmom DP is the final arbiter.
bool PassesMibValidation(const Trajectory& trajectory, const Query& query);

/// Low-level inputs to the Dmom dynamic program, decoupled from geometry so
/// that tests can feed the paper's Figure-1 distance matrices verbatim.
///
/// For each query point i: `match_points[i]` lists, in ascending trajectory
/// position, the points of Tr carrying >= 1 activity of q_i.Phi with their
/// distances and masks; `activity_counts[i]` = |q_i.Phi|.
struct OrderMatchInput {
  std::vector<std::vector<MatchPoint>> match_points;
  std::vector<int> activity_counts;
  size_t trajectory_length = 0;
};

/// Builds the DP input from a trajectory and query.
OrderMatchInput BuildOrderMatchInput(const Trajectory& trajectory,
                                     const Query& query);

/// Algorithm 4: the minimum order-sensitive match distance Dmom(Q, Tr)
/// via the dynamic program over G(i, j) with
///     G(i, j) = min_{1<=k<=j} { G(i-1, k) + Dmpm(q_i, Tr[k..j]) }   (Eq. 1)
/// using the incremental point-match table for the inner window scan and
/// the two Lemma-4 monotonicity cuts:
///   * the k-loop stops at the first k with G(i-1, k) = +inf, and
///   * the whole computation aborts (returning kInfDist) as soon as
///     G(i, |Tr|) exceeds `pruning_threshold` (the k-th smallest Dmom seen
///     so far, Algorithm 4 line 9).
///
/// Returns kInfDist when no order-sensitive match exists or when pruned.
double MinOrderSensitiveMatchDistance(const OrderMatchInput& input,
                                      double pruning_threshold);

/// Convenience overload on (trajectory, query).
double MinOrderSensitiveMatchDistance(const Trajectory& trajectory,
                                      const Query& query,
                                      double pruning_threshold = kInfDist);

/// Test/diagnostic variant that materializes the full matrix G
/// (rows 1..m, cols 1..n; g[i-1][j-1] = G(i,j)); no threshold pruning.
/// Returns G(m, n).
double ComputeDmomMatrix(const OrderMatchInput& input,
                         std::vector<std::vector<double>>* g);

}  // namespace gat

#endif  // GAT_CORE_ORDER_MATCH_H_
