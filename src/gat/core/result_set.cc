#include "gat/core/result_set.h"

#include <cmath>

namespace gat {

std::string ToString(QueryKind kind) {
  return kind == QueryKind::kAtsq ? "ATSQ" : "OATSQ";
}

ResultList ToResultList(const TopKCollector& collector) {
  ResultList out;
  for (const auto& e : collector.SortedResults()) {
    out.push_back(SearchResult{e.trajectory, e.distance});
  }
  return out;
}

bool SameDistances(const ResultList& a, const ResultList& b, double epsilon) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i].distance - b[i].distance) > epsilon) return false;
  }
  return true;
}

}  // namespace gat
