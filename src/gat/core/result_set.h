#ifndef GAT_CORE_RESULT_SET_H_
#define GAT_CORE_RESULT_SET_H_

#include <string>
#include <vector>

#include "gat/common/types.h"
#include "gat/util/top_k.h"

namespace gat {

/// Query flavour: ATSQ (order-free, Section II) or OATSQ (order-sensitive,
/// Section VI). Values are wire-stable (encoded by gat/net, see
/// docs/WIRE_PROTOCOL.md): add at the end, never renumber.
enum class QueryKind {
  kAtsq = 0,
  kOatsq = 1,
};

std::string ToString(QueryKind kind);

/// One ranked answer of a similarity query.
struct SearchResult {
  TrajectoryId trajectory = kInvalidId;
  double distance = kInfDist;

  bool operator==(const SearchResult& other) const {
    return trajectory == other.trajectory && distance == other.distance;
  }
};

using ResultList = std::vector<SearchResult>;

/// Converts a TopKCollector into an ascending-distance result list.
ResultList ToResultList(const TopKCollector& collector);

/// True when two result lists agree on distances (within `epsilon`).
/// Trajectory IDs are allowed to differ on equal-distance ties; every
/// correct searcher must produce the same distance vector.
bool SameDistances(const ResultList& a, const ResultList& b, double epsilon);

}  // namespace gat

#endif  // GAT_CORE_RESULT_SET_H_
