#ifndef GAT_CORE_SEARCHER_H_
#define GAT_CORE_SEARCHER_H_

#include <string>

#include "gat/core/result_set.h"
#include "gat/model/query.h"
#include "gat/search/search_stats.h"

namespace gat {

struct QueryContext;  // gat/common/query_context.h

/// Common interface of the four competitors evaluated in Section VII:
/// GAT, IL, RT and IRT. They differ only in indexing structure and
/// candidate retrieval; all share the same Dmm / Dmom refinement kernels
/// (the paper makes the same methodological point).
///
/// ## Threading contract
///
/// `Search` must be safe to call concurrently from many threads on one
/// instance: implementations keep all per-query mutable state on the
/// caller's stack (or in the caller-provided `stats`) and treat the
/// searcher, its index and its dataset as immutable after construction.
/// No `mutable` members, no `const_cast` writes, no lazily-built caches
/// without internal synchronization. `QueryEngine` (gat/engine) depends
/// on this to share one searcher across its whole thread pool.
class Searcher {
 public:
  virtual ~Searcher() = default;

  /// Top-k search. Results are sorted by ascending distance with ties
  /// broken by trajectory ID. `stats` (optional) receives per-query
  /// counters. `context` (optional) carries the request's deadline and
  /// priority class: implementations that fan work out as tasks check it
  /// at their task boundaries and, when the deadline has passed, return
  /// an *empty* list with `stats->deadline_skips` counted — partial
  /// results are never returned (see QueryContext). Single-threaded
  /// searchers may ignore it: the engine enforces the deadline before
  /// each query starts.
  virtual ResultList Search(const Query& query, size_t k, QueryKind kind,
                            SearchStats* stats = nullptr,
                            const QueryContext* context = nullptr) const = 0;

  /// Short display name ("GAT", "IL", "RT", "IRT").
  virtual std::string name() const = 0;
};

}  // namespace gat

#endif  // GAT_CORE_SEARCHER_H_
