#ifndef GAT_CORE_SEARCHER_H_
#define GAT_CORE_SEARCHER_H_

#include <string>

#include "gat/core/result_set.h"
#include "gat/model/query.h"
#include "gat/search/search_stats.h"

namespace gat {

/// Common interface of the four competitors evaluated in Section VII:
/// GAT, IL, RT and IRT. They differ only in indexing structure and
/// candidate retrieval; all share the same Dmm / Dmom refinement kernels
/// (the paper makes the same methodological point).
///
/// ## Threading contract
///
/// `Search` must be safe to call concurrently from many threads on one
/// instance: implementations keep all per-query mutable state on the
/// caller's stack (or in the caller-provided `stats`) and treat the
/// searcher, its index and its dataset as immutable after construction.
/// No `mutable` members, no `const_cast` writes, no lazily-built caches
/// without internal synchronization. `QueryEngine` (gat/engine) depends
/// on this to share one searcher across its whole thread pool.
class Searcher {
 public:
  virtual ~Searcher() = default;

  /// Top-k search. Results are sorted by ascending distance with ties
  /// broken by trajectory ID. `stats` (optional) receives per-query
  /// counters.
  virtual ResultList Search(const Query& query, size_t k, QueryKind kind,
                            SearchStats* stats = nullptr) const = 0;

  /// Short display name ("GAT", "IL", "RT", "IRT").
  virtual std::string name() const = 0;
};

}  // namespace gat

#endif  // GAT_CORE_SEARCHER_H_
