#ifndef GAT_CORE_MATCH_H_
#define GAT_CORE_MATCH_H_

#include <vector>

#include "gat/common/types.h"
#include "gat/core/point_match.h"
#include "gat/model/query.h"
#include "gat/model/trajectory.h"

namespace gat {

/// Bitmask of `query_activities` (sorted) carried by `point_activities`
/// (sorted): bit i is set iff query_activities[i] appears in
/// point_activities. At most kMaxQueryActivities query activities are
/// considered.
ActivityMask ComputeMask(const std::vector<ActivityId>& query_activities,
                         const std::vector<ActivityId>& point_activities);

/// Extracts the candidate point set CP of Algorithm 3 from a trajectory:
/// every point sharing at least one activity with q.Phi, annotated with its
/// distance to q and activity mask. Returned in trajectory (point index)
/// order.
std::vector<MatchPoint> CollectMatchPoints(const Trajectory& trajectory,
                                           const QueryPoint& query_point);

/// Dmpm(q, Tr) (Definition 4) via Algorithm 3.
double MinPointMatchDistance(const Trajectory& trajectory,
                             const QueryPoint& query_point);

/// Dmm(Q, Tr) (Definition 6, computed per Lemma 1 as the sum of per-query-
/// point minimum point match distances). kInfDist when Tr is not a match
/// for Q (some q in Q has no point match).
double MinMatchDistance(const Trajectory& trajectory, const Query& query);

/// Dbm(Q, Tr): the best match distance of Chen et al. — sum over q in Q of
/// the distance to the spatially nearest point of Tr, ignoring activities.
/// Always a lower bound of Dmm (Lemma 2). kInfDist for empty trajectories.
double BestMatchDistance(const Trajectory& trajectory, const Query& query);

/// The minimum match Tr.MM(Q) with witnesses: per query point, the point
/// indices of one minimum point match (Definition 4). Returns kInfDist and
/// leaves `witnesses` with empty entries when Tr is not a match.
struct MinimumMatch {
  double distance = kInfDist;
  /// witnesses[i] = sorted point indices of Tr.MPM(q_i).
  std::vector<std::vector<PointIndex>> witnesses;
};
MinimumMatch ComputeMinimumMatch(const Trajectory& trajectory,
                                 const Query& query);

/// True iff the union of Tr's activities covers Q's demanded activity
/// union — the "whole match" validity condition (Definition 5). This is
/// the exact predicate that TAS/APL validation approximates.
bool CoversQueryActivities(const Trajectory& trajectory, const Query& query);

}  // namespace gat

#endif  // GAT_CORE_MATCH_H_
