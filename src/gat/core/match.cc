#include "gat/core/match.h"

#include <algorithm>

#include "gat/common/check.h"

namespace gat {

ActivityMask ComputeMask(const std::vector<ActivityId>& query_activities,
                         const std::vector<ActivityId>& point_activities) {
  ActivityMask mask = 0;
  const size_t bits =
      std::min<size_t>(query_activities.size(), kMaxQueryActivities);
  // Merge over two sorted lists.
  size_t qi = 0;
  size_t pi = 0;
  while (qi < bits && pi < point_activities.size()) {
    if (query_activities[qi] < point_activities[pi]) {
      ++qi;
    } else if (point_activities[pi] < query_activities[qi]) {
      ++pi;
    } else {
      mask |= ActivityMask{1} << qi;
      ++qi;
      ++pi;
    }
  }
  return mask;
}

std::vector<MatchPoint> CollectMatchPoints(const Trajectory& trajectory,
                                           const QueryPoint& query_point) {
  std::vector<MatchPoint> out;
  const auto& points = trajectory.points();
  for (PointIndex i = 0; i < points.size(); ++i) {
    const ActivityMask mask =
        ComputeMask(query_point.activities, points[i].activities);
    if (mask == 0) continue;
    out.push_back(MatchPoint{
        Distance(points[i].location, query_point.location), mask, i});
  }
  return out;
}

double MinPointMatchDistance(const Trajectory& trajectory,
                             const QueryPoint& query_point) {
  if (query_point.activities.empty()) return 0.0;
  auto cp = CollectMatchPoints(trajectory, query_point);
  return gat::MinPointMatchDistance(
             std::move(cp),
             static_cast<int>(std::min<size_t>(query_point.activities.size(),
                                               kMaxQueryActivities)))
      .distance;
}

double MinMatchDistance(const Trajectory& trajectory, const Query& query) {
  // Lemma 1: Dmm(Q, Tr) = sum_i Dmpm(q_i, Tr).
  double total = 0.0;
  for (const auto& q : query.points()) {
    const double d = MinPointMatchDistance(trajectory, q);
    if (d == kInfDist) return kInfDist;
    total += d;
  }
  return total;
}

double BestMatchDistance(const Trajectory& trajectory, const Query& query) {
  if (trajectory.empty()) return kInfDist;
  double total = 0.0;
  for (const auto& q : query.points()) {
    double best = kInfDist;
    for (const auto& p : trajectory.points()) {
      best = std::min(best, Distance(p.location, q.location));
    }
    total += best;
  }
  return total;
}

MinimumMatch ComputeMinimumMatch(const Trajectory& trajectory,
                                 const Query& query) {
  MinimumMatch result;
  result.witnesses.resize(query.size());
  double total = 0.0;
  for (size_t i = 0; i < query.size(); ++i) {
    const auto& q = query[i];
    if (q.activities.empty()) continue;
    auto cp = CollectMatchPoints(trajectory, q);
    const double d = ExhaustiveMinPointMatch(
        cp,
        static_cast<int>(
            std::min<size_t>(q.activities.size(), kMaxQueryActivities)),
        &result.witnesses[i]);
    if (d == kInfDist) {
      for (auto& w : result.witnesses) w.clear();
      return result;  // distance stays kInfDist
    }
    total += d;
  }
  result.distance = total;
  return result;
}

bool CoversQueryActivities(const Trajectory& trajectory, const Query& query) {
  const auto demanded = query.ActivityUnion();
  const auto available = trajectory.ActivityUnion();
  return std::includes(available.begin(), available.end(), demanded.begin(),
                       demanded.end());
}

}  // namespace gat
