#include "gat/core/point_match.h"

#include <algorithm>

#include "gat/common/check.h"

namespace gat {

PointMatchTable::PointMatchTable(int num_activities)
    : num_bits_(num_activities),
      full_mask_((num_activities >= 32)
                     ? ~ActivityMask{0}
                     : ((ActivityMask{1} << num_activities) - 1)) {
  GAT_CHECK(num_activities >= 1 && num_activities <= kMaxQueryActivities);
  dist_.assign(size_t{1} << num_bits_, kInfDist);
  present_.assign(size_t{1} << num_bits_, 0);
}

void PointMatchTable::Reset() {
  for (ActivityMask m : finite_) {
    dist_[m] = kInfDist;
    present_[m] = 0;
  }
  finite_.clear();
}

double PointMatchTable::DistanceFor(ActivityMask mask) const {
  GAT_DCHECK(mask <= full_mask_);
  return dist_[mask];
}

void PointMatchTable::SetEntry(ActivityMask mask, double distance) {
  dist_[mask] = distance;
  if (!present_[mask]) {
    present_[mask] = 1;
    finite_.push_back(mask);
  }
}

void PointMatchTable::AddPoint(ActivityMask mask, double distance) {
  mask &= full_mask_;  // p.Phi' = p.Phi ∩ q.Phi (Algorithm 3, line 7)
  if (mask == 0) return;

  // FIFO walk over subsets of p.Phi' (lines 8-15).
  queue_.clear();
  queue_.push_back(mask);
  size_t head = 0;
  while (head < queue_.size()) {
    const ActivityMask ks = queue_[head++];
    // Line 11: a better (or equal) match for ks already exists — neither ks
    // nor its subsets can improve.
    if (dist_[ks] <= distance) continue;
    SetEntry(ks, distance);

    // Line 15: push all (|ks|-1)-size subsets.
    for (ActivityMask bits = ks; bits != 0;) {
      const ActivityMask low = bits & (~bits + 1);
      const ActivityMask sub = ks & ~low;
      if (sub != 0) queue_.push_back(sub);
      bits ^= low;
    }

    // Lines 16-19: refresh unions of ks with every existing key. Keys
    // created *by this loop* are unions containing ks and are skipped by
    // the subset test anyway, so iterating up to the pre-loop size is
    // exactly the paper's "for each s in H.keys".
    const size_t end = finite_.size();
    const double ks_dist = dist_[ks];
    for (size_t i = 0; i < end; ++i) {
      const ActivityMask s = finite_[i];
      const ActivityMask u = s | ks;
      if (u == s || u == ks) continue;  // subset/superset relation: skip
      const double combined = dist_[s] + ks_dist;
      if (combined < dist_[u]) SetEntry(u, combined);
    }
  }
}

PointMatchResult MinPointMatchDistance(std::vector<MatchPoint> candidates,
                                       int num_activities) {
  PointMatchResult result;
  PointMatchTable table(num_activities);

  // Line 2: sort CP by distance to q. Ties broken by point index for
  // deterministic examined-point counts.
  std::sort(candidates.begin(), candidates.end(),
            [](const MatchPoint& a, const MatchPoint& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.point_index < b.point_index;
            });

  for (const MatchPoint& p : candidates) {
    // Line 5: all further points are at least this far away, so no better
    // match can appear.
    if (table.Covered() && table.CurrentDistance() <= p.distance) {
      result.early_terminated = true;
      break;
    }
    table.AddPoint(p.mask, p.distance);
    ++result.points_examined;
  }
  result.distance = table.CurrentDistance();
  return result;
}

double ExhaustiveMinPointMatch(const std::vector<MatchPoint>& candidates,
                               int num_activities,
                               std::vector<PointIndex>* witness) {
  GAT_CHECK(num_activities >= 1 && num_activities <= kMaxQueryActivities);
  const ActivityMask full = (ActivityMask{1} << num_activities) - 1;
  const size_t table_size = size_t{1} << num_activities;

  std::vector<double> dp(table_size, kInfDist);
  dp[0] = 0.0;
  // parent[m] = (previous mask, index into candidates) of the update that
  // produced dp[m]; used for witness reconstruction.
  struct Parent {
    ActivityMask prev = 0;
    uint32_t cand = kInvalidId;
  };
  std::vector<Parent> parent(table_size);

  for (uint32_t c = 0; c < candidates.size(); ++c) {
    const ActivityMask pm = candidates[c].mask & full;
    if (pm == 0) continue;
    const double d = candidates[c].distance;
    // In-place update is safe: a second application of the same point only
    // targets masks that already contain pm, which we skip.
    for (ActivityMask m = 0; m <= full; ++m) {
      if (dp[m] == kInfDist) continue;
      const ActivityMask nm = m | pm;
      if (nm == m) continue;
      if (dp[m] + d < dp[nm]) {
        dp[nm] = dp[m] + d;
        parent[nm] = Parent{m, c};
      }
    }
  }

  if (witness != nullptr) {
    witness->clear();
    if (dp[full] != kInfDist) {
      ActivityMask m = full;
      while (m != 0) {
        const Parent& pa = parent[m];
        GAT_CHECK(pa.cand != kInvalidId);
        witness->push_back(candidates[pa.cand].point_index);
        m = pa.prev;
      }
      std::sort(witness->begin(), witness->end());
      witness->erase(std::unique(witness->begin(), witness->end()),
                     witness->end());
    }
  }
  return dp[full];
}

}  // namespace gat
