#ifndef GAT_CORE_POINT_MATCH_H_
#define GAT_CORE_POINT_MATCH_H_

#include <cstdint>
#include <vector>

#include "gat/common/types.h"

namespace gat {

/// A candidate match point for one query point q: the distance d(p, q) and
/// the bitmask of q.Phi activities that p carries (bit i corresponds to the
/// i-th activity of q.Phi in sorted order). Only points with a non-empty
/// intersection with q.Phi participate in point matches (Definition 3), so
/// `mask` is always non-zero in kernel input.
struct MatchPoint {
  double distance = 0.0;
  ActivityMask mask = 0;
  PointIndex point_index = 0;
};

/// Outcome of a minimum-point-match computation (Definition 4).
struct PointMatchResult {
  /// Dmpm(q, Tr); kInfDist when Tr cannot cover q.Phi.
  double distance = kInfDist;
  /// Number of candidate points actually examined before termination.
  uint32_t points_examined = 0;
  /// True if the sorted-order early-termination condition fired
  /// (Algorithm 3, line 5).
  bool early_terminated = false;
};

/// The hash table H of Algorithm 3, maintained incrementally.
///
/// Keys are subsets of q.Phi encoded as bitmasks; values are the current
/// minimum match distance for that activity subset. The table is dense
/// (2^|q.Phi| slots; |q.Phi| <= kMaxQueryActivities), which makes both the
/// subset-seeding walk and the pairwise-union refresh loop (Algorithm 3,
/// lines 10-19) branch-cheap.
///
/// Points may be added in *arbitrary* order: sortedness by distance is only
/// required for the early-termination test, not for correctness of the
/// final value. This property is what lets Algorithm 4 (order-sensitive DP)
/// grow the window Tr[k..j] by prepending points while reusing the same
/// table. A dedicated property test (point_match_test.cc) checks
/// order-independence against the exhaustive reference.
class PointMatchTable {
 public:
  /// `num_activities` = |q.Phi|, in [1, kMaxQueryActivities].
  explicit PointMatchTable(int num_activities);

  /// Clears all entries (cheap: touches only previously finite keys).
  void Reset();

  /// Inserts one candidate point (Algorithm 3, lines 7-19).
  void AddPoint(ActivityMask mask, double distance);

  /// Current H[q.Phi], i.e. the minimum point match distance over all
  /// points added so far; kInfDist while uncovered.
  double CurrentDistance() const { return dist_[full_mask_]; }

  /// Current H[mask] (kInfDist when absent).
  double DistanceFor(ActivityMask mask) const;

  /// True once the added points jointly cover q.Phi.
  bool Covered() const { return dist_[full_mask_] != kInfDist; }

  ActivityMask full_mask() const { return full_mask_; }
  int num_activities() const { return num_bits_; }

 private:
  void SetEntry(ActivityMask mask, double distance);

  int num_bits_;
  ActivityMask full_mask_;
  std::vector<double> dist_;          // size 1 << num_bits_
  std::vector<ActivityMask> finite_;  // keys currently present in H
  std::vector<uint8_t> present_;      // membership flags for finite_
  std::vector<ActivityMask> queue_;   // reusable FIFO for the subset walk
};

/// Algorithm 3 in full: sorts `candidates` by ascending distance, feeds the
/// table, and stops early once the next point's distance exceeds the
/// current Dmpm. `num_activities` = |q.Phi|.
PointMatchResult MinPointMatchDistance(std::vector<MatchPoint> candidates,
                                       int num_activities);

/// Exhaustive reference implementation of Dmpm: an O(|CP| * 2^|q.Phi|)
/// set-cover DP over activity subsets that also reconstructs the witness
/// point set (the minimum point match Tr.MPM(q), Definition 4). Used as the
/// test oracle for Algorithm 3 and for producing human-readable results in
/// the examples.
///
/// `witness` (optional) receives the point indices of one minimum point
/// match, sorted ascending.
double ExhaustiveMinPointMatch(const std::vector<MatchPoint>& candidates,
                               int num_activities,
                               std::vector<PointIndex>* witness);

}  // namespace gat

#endif  // GAT_CORE_POINT_MATCH_H_
