#include "gat/core/order_match.h"

#include <algorithm>

#include "gat/common/check.h"
#include "gat/core/match.h"

namespace gat {

MatchingIndexBound ComputeMib(const Trajectory& trajectory,
                              const QueryPoint& query_point) {
  MatchingIndexBound mib;
  const auto& points = trajectory.points();
  for (PointIndex i = 0; i < points.size(); ++i) {
    if (!points[i].HasAnyActivity(query_point.activities)) continue;
    if (!mib.valid) {
      mib.lb = i;
      mib.valid = true;
    }
    mib.ub = i;
  }
  return mib;
}

bool PassesMibValidation(const Trajectory& trajectory, const Query& query) {
  std::vector<MatchingIndexBound> mibs;
  mibs.reserve(query.size());
  for (const auto& q : query.points()) {
    MatchingIndexBound mib = ComputeMib(trajectory, q);
    if (!mib.valid) return false;
    mibs.push_back(mib);
  }
  for (size_t i = 0; i < mibs.size(); ++i) {
    for (size_t j = i + 1; j < mibs.size(); ++j) {
      if (mibs[i].lb > mibs[j].ub) return false;
    }
  }
  return true;
}

OrderMatchInput BuildOrderMatchInput(const Trajectory& trajectory,
                                     const Query& query) {
  OrderMatchInput input;
  input.trajectory_length = trajectory.size();
  input.match_points.reserve(query.size());
  input.activity_counts.reserve(query.size());
  for (const auto& q : query.points()) {
    input.match_points.push_back(CollectMatchPoints(trajectory, q));
    input.activity_counts.push_back(static_cast<int>(
        std::min<size_t>(q.activities.size(), kMaxQueryActivities)));
  }
  return input;
}

namespace {

/// Shared DP core. When `g_out` is non-null the full matrix is recorded and
/// threshold pruning is disabled (diagnostic mode).
double DmomCore(const OrderMatchInput& input, double pruning_threshold,
                std::vector<std::vector<double>>* g_out) {
  const size_t m = input.match_points.size();
  const size_t n = input.trajectory_length;
  GAT_CHECK(m == input.activity_counts.size());
  if (m == 0) return 0.0;
  if (n == 0) return kInfDist;

  if (g_out != nullptr) {
    g_out->assign(m, std::vector<double>(n, kInfDist));
    pruning_threshold = kInfDist;
  }

  // prev[j] holds G(i-1, j+1); the guardian row G(0, *) = 0 (Algorithm 4,
  // line 1).
  std::vector<double> prev(n, 0.0);
  std::vector<double> curr(n, kInfDist);

  // match_at[j] = the MatchPoint of q_i at trajectory position j, or
  // nullptr. Rebuilt per row i.
  std::vector<const MatchPoint*> match_at(n);

  for (size_t i = 0; i < m; ++i) {
    std::fill(match_at.begin(), match_at.end(), nullptr);
    for (const MatchPoint& mp : input.match_points[i]) {
      GAT_CHECK(mp.point_index < n);
      match_at[mp.point_index] = &mp;
    }
    const int bits = std::max(1, input.activity_counts[i]);
    const bool no_activities = input.activity_counts[i] == 0;
    PointMatchTable table(bits);

    for (size_t j = 0; j < n; ++j) {
      double best = kInfDist;
      if (no_activities) {
        // Degenerate q_i with empty Phi: Dmpm over any window is 0, so
        // G(i, j) = min_{k<=j} G(i-1, k) = G(i-1, j) by Lemma 4.
        best = prev[j];
      } else {
        // Window scan: k descends from j to 0 (paper's j..1), growing the
        // window Tr[k..j] by prepending p_k into the incremental table.
        table.Reset();
        for (size_t k = j + 1; k-- > 0;) {
          if (prev[k] == kInfDist) {
            // Lemma 4(1): G(i-1, k') is infinite for all k' < k as well.
            break;
          }
          if (match_at[k] != nullptr) {
            table.AddPoint(match_at[k]->mask, match_at[k]->distance);
          }
          const double window_dmpm = table.CurrentDistance();
          if (window_dmpm == kInfDist) continue;
          best = std::min(best, prev[k] + window_dmpm);
        }
      }
      curr[j] = best;
      if (g_out != nullptr) (*g_out)[i][j] = best;
    }

    // Algorithm 4, line 9: if even the unconstrained tail G(i, n) exceeds
    // the running k-th best Dmom, Lemma 4(2) guarantees G(m, n) does too.
    if (curr[n - 1] > pruning_threshold) return kInfDist;
    prev.swap(curr);
    std::fill(curr.begin(), curr.end(), kInfDist);
  }
  return prev[n - 1];
}

}  // namespace

double MinOrderSensitiveMatchDistance(const OrderMatchInput& input,
                                      double pruning_threshold) {
  return DmomCore(input, pruning_threshold, nullptr);
}

double MinOrderSensitiveMatchDistance(const Trajectory& trajectory,
                                      const Query& query,
                                      double pruning_threshold) {
  return MinOrderSensitiveMatchDistance(BuildOrderMatchInput(trajectory, query),
                                        pruning_threshold);
}

double ComputeDmomMatrix(const OrderMatchInput& input,
                         std::vector<std::vector<double>>* g) {
  return DmomCore(input, kInfDist, g);
}

}  // namespace gat
