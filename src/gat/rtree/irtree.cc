#include "gat/rtree/irtree.h"

#include <algorithm>
#include <cmath>

#include "gat/common/check.h"

namespace gat {

namespace {

/// 64-bit hash summary of an activity set (one bit per activity hash).
uint64_t SummaryBit(ActivityId a) {
  uint64_t x = a;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return uint64_t{1} << (x & 63);
}

uint64_t SummaryOf(const std::vector<ActivityId>& activities) {
  uint64_t s = 0;
  for (ActivityId a : activities) s |= SummaryBit(a);
  return s;
}

/// Sorted-union in place.
void MergeInto(std::vector<ActivityId>* dst,
               const std::vector<ActivityId>& src) {
  std::vector<ActivityId> merged;
  merged.reserve(dst->size() + src.size());
  std::set_union(dst->begin(), dst->end(), src.begin(), src.end(),
                 std::back_inserter(merged));
  *dst = std::move(merged);
}

bool SharesAny(const std::vector<ActivityId>& sorted_a,
               const std::vector<ActivityId>& sorted_b) {
  auto a = sorted_a.begin();
  auto b = sorted_b.begin();
  while (a != sorted_a.end() && b != sorted_b.end()) {
    if (*a < *b) {
      ++a;
    } else if (*b < *a) {
      ++b;
    } else {
      return true;
    }
  }
  return false;
}

}  // namespace

struct IrTree::Node {
  Rect mbr = Rect::Empty();
  int level = 0;
  std::vector<std::unique_ptr<Node>> children;
  std::vector<IrTreeEntry> entries;
  /// The node's inverted file: union of activities below, plus summary.
  std::vector<ActivityId> activities;
  uint64_t summary = 0;

  bool leaf() const { return level == 0; }

  void Finish() {
    mbr = Rect::Empty();
    activities.clear();
    if (leaf()) {
      for (const auto& e : entries) {
        mbr.Expand(e.point);
        MergeInto(&activities, e.activities);
      }
    } else {
      for (const auto& c : children) {
        mbr.Expand(c->mbr);
        MergeInto(&activities, c->activities);
      }
    }
    summary = SummaryOf(activities);
  }
};

IrTree::IrTree() = default;
IrTree::~IrTree() = default;
IrTree::IrTree(IrTree&&) noexcept = default;
IrTree& IrTree::operator=(IrTree&&) noexcept = default;

IrTree IrTree::BulkLoad(std::vector<IrTreeEntry> entries, int max_entries) {
  GAT_CHECK(max_entries >= 4);
  IrTree tree;
  tree.max_entries_ = max_entries;
  tree.size_ = entries.size();
  if (entries.empty()) {
    tree.root_ = std::make_unique<Node>();
    return tree;
  }
  const size_t cap = static_cast<size_t>(max_entries);

  std::sort(entries.begin(), entries.end(),
            [](const IrTreeEntry& a, const IrTreeEntry& b) {
              return a.point.x < b.point.x;
            });
  const size_t pages = (entries.size() + cap - 1) / cap;
  const size_t slabs = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(pages))));
  const size_t slab_size = slabs * cap;

  std::vector<std::unique_ptr<Node>> level_nodes;
  for (size_t s = 0; s * slab_size < entries.size(); ++s) {
    const size_t begin = s * slab_size;
    const size_t end = std::min(begin + slab_size, entries.size());
    std::sort(entries.begin() + begin, entries.begin() + end,
              [](const IrTreeEntry& a, const IrTreeEntry& b) {
                return a.point.y < b.point.y;
              });
    for (size_t i = begin; i < end; i += cap) {
      auto leaf = std::make_unique<Node>();
      leaf->level = 0;
      const size_t page_end = std::min(i + cap, end);
      leaf->entries.assign(std::make_move_iterator(entries.begin() + i),
                           std::make_move_iterator(entries.begin() + page_end));
      leaf->Finish();
      level_nodes.push_back(std::move(leaf));
    }
  }

  int level = 1;
  while (level_nodes.size() > 1) {
    std::sort(level_nodes.begin(), level_nodes.end(),
              [](const std::unique_ptr<Node>& a, const std::unique_ptr<Node>& b) {
                return a->mbr.Center().x < b->mbr.Center().x;
              });
    const size_t p2 = (level_nodes.size() + cap - 1) / cap;
    const size_t s2 = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(p2))));
    const size_t slab2 = s2 * cap;
    for (size_t s = 0; s * slab2 < level_nodes.size(); ++s) {
      const size_t begin = s * slab2;
      const size_t end = std::min(begin + slab2, level_nodes.size());
      std::sort(level_nodes.begin() + begin, level_nodes.begin() + end,
                [](const std::unique_ptr<Node>& a,
                   const std::unique_ptr<Node>& b) {
                  return a->mbr.Center().y < b->mbr.Center().y;
                });
    }
    std::vector<std::unique_ptr<Node>> parents;
    for (size_t i = 0; i < level_nodes.size(); i += cap) {
      auto parent = std::make_unique<Node>();
      parent->level = level;
      const size_t end = std::min(i + cap, level_nodes.size());
      for (size_t j = i; j < end; ++j) {
        parent->children.push_back(std::move(level_nodes[j]));
      }
      parent->Finish();
      parents.push_back(std::move(parent));
    }
    level_nodes = std::move(parents);
    ++level;
  }
  tree.root_ = std::move(level_nodes.front());
  return tree;
}

size_t IrTree::InvertedFileBytes() const {
  size_t bytes = 0;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    bytes += n->activities.size() * sizeof(ActivityId) + sizeof(uint64_t);
    if (!n->leaf()) {
      for (const auto& c : n->children) stack.push_back(c.get());
    }
  }
  return bytes;
}

IrTree::NearestIterator::NearestIterator(
    const IrTree& tree, const Point& origin,
    std::vector<ActivityId> filter_activities)
    : tree_(tree), origin_(origin), filter_(std::move(filter_activities)) {
  std::sort(filter_.begin(), filter_.end());
  filter_.erase(std::unique(filter_.begin(), filter_.end()), filter_.end());
  filter_summary_ = SummaryOf(filter_);
  if (tree.size_ > 0) {
    heap_.push(HeapItem{MinDist(origin_, tree.root_->mbr), tree.root_.get(),
                        nullptr});
  }
}

bool IrTree::NearestIterator::Next(const IrTreeEntry** entry,
                                   double* distance) {
  while (!heap_.empty()) {
    const HeapItem item = heap_.top();
    heap_.pop();
    if (item.node == nullptr) {
      *entry = item.entry;
      *distance = item.distance;
      return true;
    }
    ++nodes_popped_;
    const Node* n = item.node;
    if (n->leaf()) {
      for (const auto& e : n->entries) {
        if (!filter_.empty() && !SharesAny(e.activities, filter_)) {
          continue;  // entry carries none of the demanded activities
        }
        heap_.push(HeapItem{Distance(origin_, e.point), nullptr, &e});
      }
    } else {
      for (const auto& c : n->children) {
        // Check the child's inverted file before probing it (Section
        // III-C): summary first (cheap), exact list on summary hit.
        if (!filter_.empty()) {
          if ((c->summary & filter_summary_) == 0 ||
              !SharesAny(c->activities, filter_)) {
            ++nodes_pruned_;
            continue;
          }
        }
        heap_.push(HeapItem{MinDist(origin_, c->mbr), c.get(), nullptr});
      }
    }
  }
  return false;
}

double IrTree::NearestIterator::PendingLowerBound() const {
  return heap_.empty() ? kInfDist : heap_.top().distance;
}

}  // namespace gat
