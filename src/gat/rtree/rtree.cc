#include "gat/rtree/rtree.h"

#include <algorithm>
#include <cmath>

#include "gat/common/check.h"

namespace gat {

/// R-tree node: a leaf holds entries, an internal node holds children.
/// `level` is 0 at leaves and grows upward.
struct RTree::Node {
  Rect mbr = Rect::Empty();
  int level = 0;
  std::vector<std::unique_ptr<Node>> children;
  std::vector<RTreeEntry> entries;

  bool leaf() const { return level == 0; }

  void RecomputeMbr() {
    mbr = Rect::Empty();
    if (leaf()) {
      for (const auto& e : entries) mbr.Expand(e.point);
    } else {
      for (const auto& c : children) mbr.Expand(c->mbr);
    }
  }
};

namespace {

/// Guttman's quadratic split over a set of rectangles: picks the pair of
/// seeds wasting the most area, then assigns the rest by least enlargement
/// while respecting the minimum fill. Returns a 0/1 group flag per rect.
std::vector<char> QuadraticPartition(const std::vector<Rect>& rects,
                                     size_t min_fill) {
  const size_t n = rects.size();
  GAT_CHECK(n >= 2);
  size_t seed_a = 0;
  size_t seed_b = 1;
  double worst = -1.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double waste =
          UnionArea(rects[i], rects[j]) - rects[i].Area() - rects[j].Area();
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  std::vector<char> group(n, -1);
  group[seed_a] = 0;
  group[seed_b] = 1;
  Rect mbr[2] = {rects[seed_a], rects[seed_b]};
  size_t count[2] = {1, 1};
  size_t remaining = n - 2;

  while (remaining > 0) {
    // Force-assign when one group must absorb everything left to reach the
    // minimum fill.
    int forced = -1;
    if (count[0] + remaining == min_fill) forced = 0;
    if (count[1] + remaining == min_fill) forced = 1;
    if (forced >= 0) {
      for (size_t i = 0; i < n; ++i) {
        if (group[i] < 0) {
          group[i] = static_cast<char>(forced);
          mbr[forced].Expand(rects[i]);
          ++count[forced];
        }
      }
      remaining = 0;
      break;
    }
    // PickNext: the rect with maximum preference difference.
    size_t best = n;
    double best_diff = -1.0;
    for (size_t i = 0; i < n; ++i) {
      if (group[i] >= 0) continue;
      const double d0 = UnionArea(mbr[0], rects[i]) - mbr[0].Area();
      const double d1 = UnionArea(mbr[1], rects[i]) - mbr[1].Area();
      const double diff = std::abs(d0 - d1);
      if (diff > best_diff) {
        best_diff = diff;
        best = i;
      }
    }
    GAT_CHECK(best < n);
    const double d0 = UnionArea(mbr[0], rects[best]) - mbr[0].Area();
    const double d1 = UnionArea(mbr[1], rects[best]) - mbr[1].Area();
    int target;
    if (d0 != d1) {
      target = d0 < d1 ? 0 : 1;
    } else if (mbr[0].Area() != mbr[1].Area()) {
      target = mbr[0].Area() < mbr[1].Area() ? 0 : 1;
    } else {
      target = count[0] <= count[1] ? 0 : 1;
    }
    group[best] = static_cast<char>(target);
    mbr[target].Expand(rects[best]);
    ++count[target];
    --remaining;
  }
  return group;
}

}  // namespace

RTree::RTree(int max_entries) : max_entries_(max_entries) {
  GAT_CHECK(max_entries >= 4);
  root_ = std::make_unique<Node>();
}

RTree::~RTree() = default;
RTree::RTree(RTree&&) noexcept = default;
RTree& RTree::operator=(RTree&&) noexcept = default;

Rect RTree::bounds() const { return root_->mbr; }

int RTree::Height() const {
  if (size_ == 0) return 0;
  return root_->level + 1;
}

void RTree::Insert(const RTreeEntry& entry) {
  std::unique_ptr<Node> split;
  InsertRecursive(root_.get(), entry, root_->level, &split);
  if (split != nullptr) {
    auto new_root = std::make_unique<Node>();
    new_root->level = root_->level + 1;
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split));
    new_root->RecomputeMbr();
    root_ = std::move(new_root);
  }
  ++size_;
}

void RTree::InsertRecursive(Node* node, const RTreeEntry& entry,
                            int target_level, std::unique_ptr<Node>* split_out) {
  (void)target_level;
  node->mbr.Expand(entry.point);
  if (node->leaf()) {
    node->entries.push_back(entry);
    if (node->entries.size() > static_cast<size_t>(max_entries_)) {
      // Quadratic split of an overflowing leaf.
      std::vector<Rect> rects;
      rects.reserve(node->entries.size());
      for (const auto& e : node->entries) rects.push_back(Rect::FromPoint(e.point));
      const auto group =
          QuadraticPartition(rects, static_cast<size_t>(max_entries_) / 2);
      auto sibling = std::make_unique<Node>();
      sibling->level = 0;
      std::vector<RTreeEntry> keep;
      for (size_t i = 0; i < node->entries.size(); ++i) {
        if (group[i] == 0) {
          keep.push_back(node->entries[i]);
        } else {
          sibling->entries.push_back(node->entries[i]);
        }
      }
      node->entries = std::move(keep);
      node->RecomputeMbr();
      sibling->RecomputeMbr();
      *split_out = std::move(sibling);
    }
    return;
  }

  // ChooseSubtree: least area enlargement, ties by smallest area.
  Node* best = nullptr;
  double best_enlargement = kInfDist;
  double best_area = kInfDist;
  for (const auto& child : node->children) {
    const double enlargement =
        UnionArea(child->mbr, Rect::FromPoint(entry.point)) -
        child->mbr.Area();
    const double area = child->mbr.Area();
    if (enlargement < best_enlargement ||
        (enlargement == best_enlargement && area < best_area)) {
      best_enlargement = enlargement;
      best_area = area;
      best = child.get();
    }
  }
  GAT_CHECK(best != nullptr);

  std::unique_ptr<Node> child_split;
  InsertRecursive(best, entry, target_level, &child_split);
  if (child_split != nullptr) {
    node->children.push_back(std::move(child_split));
    if (node->children.size() > static_cast<size_t>(max_entries_)) {
      std::vector<Rect> rects;
      rects.reserve(node->children.size());
      for (const auto& c : node->children) rects.push_back(c->mbr);
      const auto group =
          QuadraticPartition(rects, static_cast<size_t>(max_entries_) / 2);
      auto sibling = std::make_unique<Node>();
      sibling->level = node->level;
      std::vector<std::unique_ptr<Node>> keep;
      for (size_t i = 0; i < node->children.size(); ++i) {
        if (group[i] == 0) {
          keep.push_back(std::move(node->children[i]));
        } else {
          sibling->children.push_back(std::move(node->children[i]));
        }
      }
      node->children = std::move(keep);
      node->RecomputeMbr();
      sibling->RecomputeMbr();
      *split_out = std::move(sibling);
    }
  }
}

RTree RTree::BulkLoad(std::vector<RTreeEntry> entries, int max_entries) {
  RTree tree(max_entries);
  tree.size_ = entries.size();
  if (entries.empty()) return tree;

  const size_t cap = static_cast<size_t>(max_entries);

  // Sort-Tile-Recursive leaf packing.
  std::sort(entries.begin(), entries.end(),
            [](const RTreeEntry& a, const RTreeEntry& b) {
              return a.point.x < b.point.x;
            });
  const size_t num_pages = (entries.size() + cap - 1) / cap;
  const size_t slabs = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(num_pages))));
  const size_t slab_size = slabs * cap;

  std::vector<std::unique_ptr<Node>> level_nodes;
  for (size_t s = 0; s * slab_size < entries.size(); ++s) {
    const size_t begin = s * slab_size;
    const size_t end = std::min(begin + slab_size, entries.size());
    std::sort(entries.begin() + begin, entries.begin() + end,
              [](const RTreeEntry& a, const RTreeEntry& b) {
                return a.point.y < b.point.y;
              });
    for (size_t i = begin; i < end; i += cap) {
      auto leaf = std::make_unique<Node>();
      leaf->level = 0;
      const size_t page_end = std::min(i + cap, end);
      leaf->entries.assign(entries.begin() + i, entries.begin() + page_end);
      leaf->RecomputeMbr();
      level_nodes.push_back(std::move(leaf));
    }
  }

  // Pack upward until a single root remains.
  int level = 1;
  while (level_nodes.size() > 1) {
    std::sort(level_nodes.begin(), level_nodes.end(),
              [](const std::unique_ptr<Node>& a, const std::unique_ptr<Node>& b) {
                return a->mbr.Center().x < b->mbr.Center().x;
              });
    const size_t pages = (level_nodes.size() + cap - 1) / cap;
    const size_t s2 = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(pages))));
    const size_t slab2 = s2 * cap;
    for (size_t s = 0; s * slab2 < level_nodes.size(); ++s) {
      const size_t begin = s * slab2;
      const size_t end = std::min(begin + slab2, level_nodes.size());
      std::sort(level_nodes.begin() + begin, level_nodes.begin() + end,
                [](const std::unique_ptr<Node>& a,
                   const std::unique_ptr<Node>& b) {
                  return a->mbr.Center().y < b->mbr.Center().y;
                });
    }
    std::vector<std::unique_ptr<Node>> parents;
    for (size_t i = 0; i < level_nodes.size(); i += cap) {
      auto parent = std::make_unique<Node>();
      parent->level = level;
      const size_t end = std::min(i + cap, level_nodes.size());
      for (size_t j = i; j < end; ++j) {
        parent->children.push_back(std::move(level_nodes[j]));
      }
      parent->RecomputeMbr();
      parents.push_back(std::move(parent));
    }
    level_nodes = std::move(parents);
    ++level;
  }
  tree.root_ = std::move(level_nodes.front());
  return tree;
}

namespace {

bool CheckNode(const RTree::Node* node, int expected_leaf_depth, int depth,
               int max_entries);

}  // namespace

bool RTree::CheckInvariants() const {
  if (size_ == 0) return true;
  // Depth of the leftmost leaf is the reference depth.
  const Node* n = root_.get();
  int leaf_depth = 0;
  while (!n->leaf()) {
    if (n->children.empty()) return false;
    n = n->children.front().get();
    ++leaf_depth;
  }
  return CheckNode(root_.get(), leaf_depth, 0, max_entries_);
}

namespace {

bool CheckNode(const RTree::Node* node, int expected_leaf_depth, int depth,
               int max_entries) {
  if (node->leaf()) {
    if (depth != expected_leaf_depth) return false;
    if (node->entries.size() > static_cast<size_t>(max_entries)) return false;
    for (const auto& e : node->entries) {
      if (!node->mbr.Contains(e.point)) return false;
    }
    return true;
  }
  if (node->children.empty() ||
      node->children.size() > static_cast<size_t>(max_entries)) {
    return false;
  }
  Rect combined = Rect::Empty();
  for (const auto& c : node->children) {
    combined.Expand(c->mbr);
    if (c->level != node->level - 1) return false;
    if (!CheckNode(c.get(), expected_leaf_depth, depth + 1, max_entries)) {
      return false;
    }
  }
  return combined == node->mbr;
}

}  // namespace

std::vector<RTreeEntry> RTree::CollectAll() const {
  std::vector<RTreeEntry> out;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    if (n->leaf()) {
      out.insert(out.end(), n->entries.begin(), n->entries.end());
    } else {
      for (const auto& c : n->children) stack.push_back(c.get());
    }
  }
  return out;
}

RTree::NearestIterator::NearestIterator(const RTree& tree, const Point& origin)
    : tree_(tree), origin_(origin) {
  if (tree.size_ > 0) {
    heap_.push(HeapItem{MinDist(origin_, tree.root_->mbr), tree.root_.get(),
                        nullptr});
  }
}

bool RTree::NearestIterator::Next(RTreeEntry* entry, double* distance) {
  while (!heap_.empty()) {
    const HeapItem item = heap_.top();
    heap_.pop();
    if (item.node == nullptr) {
      *entry = *item.entry;
      *distance = item.distance;
      return true;
    }
    ++nodes_popped_;
    const Node* n = item.node;
    if (n->leaf()) {
      for (const auto& e : n->entries) {
        heap_.push(HeapItem{Distance(origin_, e.point), nullptr, &e});
      }
    } else {
      for (const auto& c : n->children) {
        heap_.push(HeapItem{MinDist(origin_, c->mbr), c.get(), nullptr});
      }
    }
  }
  return false;
}

double RTree::NearestIterator::PendingLowerBound() const {
  return heap_.empty() ? kInfDist : heap_.top().distance;
}

}  // namespace gat
