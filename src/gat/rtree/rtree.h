#ifndef GAT_RTREE_RTREE_H_
#define GAT_RTREE_RTREE_H_

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "gat/common/types.h"
#include "gat/geo/point.h"
#include "gat/geo/rect.h"

namespace gat {

/// One indexed trajectory point.
struct RTreeEntry {
  Point point;
  TrajectoryId trajectory = kInvalidId;
  PointIndex point_index = 0;
};

/// A 2-D R-tree over trajectory points — the substrate of the RT baseline
/// (Section III-B), which "treats the points of all trajectories as a point
/// set and indexes these points using an R-tree" (Guttman's structure).
///
/// Two construction paths:
///  * `Insert` — Guttman's dynamic insertion with the quadratic split
///    heuristic (exercised by unit tests; supports incremental loads).
///  * `BulkLoad` — Sort-Tile-Recursive packing, used by the benchmark
///    harness for deterministic, well-filled trees.
///
/// Nearest-neighbour access is incremental "distance browsing"
/// (Hjaltason & Samet): a NearestIterator yields entries in non-decreasing
/// distance from an origin, which is exactly what the k-BCT-style search of
/// Chen et al. needs.
class RTree {
 public:
  explicit RTree(int max_entries = 32);
  ~RTree();

  RTree(RTree&&) noexcept;
  RTree& operator=(RTree&&) noexcept;
  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;

  /// Dynamic insert (quadratic split on overflow).
  void Insert(const RTreeEntry& entry);

  /// Builds a packed tree bottom-up with Sort-Tile-Recursive.
  static RTree BulkLoad(std::vector<RTreeEntry> entries, int max_entries = 32);

  size_t size() const { return size_; }
  int max_entries() const { return max_entries_; }

  /// MBR of all entries (empty rect when the tree is empty).
  Rect bounds() const;

  /// Height of the tree (0 for empty, 1 for a single leaf).
  int Height() const;

  /// Structural invariants: MBR containment, fan-out limits, uniform leaf
  /// depth. Used by tests; returns false on violation.
  bool CheckInvariants() const;

  /// Collects all entries (test support).
  std::vector<RTreeEntry> CollectAll() const;

  struct Node;  // exposed for the IR-tree, which decorates nodes

  /// Incremental best-first nearest-neighbour iterator.
  class NearestIterator {
   public:
    NearestIterator(const RTree& tree, const Point& origin);

    /// Advances to the next nearest entry; returns false when drained.
    bool Next(RTreeEntry* entry, double* distance);

    /// Lower bound on the distance of everything not yet returned: the
    /// head key of the traversal heap (+inf when drained). This is the
    /// per-query-point search radius of the RT baseline's Lemma-2 bound.
    double PendingLowerBound() const;

    uint64_t nodes_popped() const { return nodes_popped_; }

   private:
    struct HeapItem {
      double distance;
      const Node* node;    // nullptr when this is a leaf entry
      const RTreeEntry* entry;
      bool operator>(const HeapItem& other) const {
        return distance > other.distance;
      }
    };

    const RTree& tree_;
    Point origin_;
    std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>>
        heap_;
    uint64_t nodes_popped_ = 0;
  };

 private:
  friend class NearestIterator;

  void InsertRecursive(Node* node, const RTreeEntry& entry, int target_level,
                       std::unique_ptr<Node>* split_out);

  std::unique_ptr<Node> root_;
  int max_entries_;
  size_t size_ = 0;
};

}  // namespace gat

#endif  // GAT_RTREE_RTREE_H_
