#ifndef GAT_RTREE_IRTREE_H_
#define GAT_RTREE_IRTREE_H_

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "gat/common/types.h"
#include "gat/geo/point.h"
#include "gat/geo/rect.h"

namespace gat {

/// One indexed point with its activity set (the "text description" of the
/// spatial web object in IR-tree terms).
struct IrTreeEntry {
  Point point;
  TrajectoryId trajectory = kInvalidId;
  PointIndex point_index = 0;
  std::vector<ActivityId> activities;  // sorted ascending
};

/// IR-tree (Cong et al., VLDB 2009) specialized for the IRT baseline
/// (Section III-C): an R-tree whose every node carries an inverted file —
/// here, the sorted union of activity IDs beneath it, plus a 64-bit Bloom-
/// style summary for cheap rejection. The search algorithm checks a node's
/// activity summary against the query before descending: subtrees without
/// any demanded activity are pruned, which is the one modification the
/// paper makes relative to the RT baseline.
///
/// Construction is STR bulk loading (the baseline indexes a static point
/// set).
class IrTree {
 public:
  static IrTree BulkLoad(std::vector<IrTreeEntry> entries,
                         int max_entries = 32);

  /// An empty tree; usually replaced by a BulkLoad result.
  IrTree();
  ~IrTree();
  IrTree(IrTree&&) noexcept;
  IrTree& operator=(IrTree&&) noexcept;
  IrTree(const IrTree&) = delete;
  IrTree& operator=(const IrTree&) = delete;

  size_t size() const { return size_; }

  /// Total bytes of the per-node inverted files (index-size accounting).
  size_t InvertedFileBytes() const;

  struct Node;

  /// Incremental nearest-neighbour iterator that skips subtrees and
  /// entries carrying none of `filter_activities` (sorted). With an empty
  /// filter it degenerates to plain distance browsing.
  class NearestIterator {
   public:
    NearestIterator(const IrTree& tree, const Point& origin,
                    std::vector<ActivityId> filter_activities);

    bool Next(const IrTreeEntry** entry, double* distance);
    double PendingLowerBound() const;
    uint64_t nodes_popped() const { return nodes_popped_; }
    uint64_t nodes_pruned() const { return nodes_pruned_; }

   private:
    struct HeapItem {
      double distance;
      const Node* node;
      const IrTreeEntry* entry;
      bool operator>(const HeapItem& other) const {
        return distance > other.distance;
      }
    };

    const IrTree& tree_;
    Point origin_;
    std::vector<ActivityId> filter_;
    uint64_t filter_summary_ = 0;
    std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>>
        heap_;
    uint64_t nodes_popped_ = 0;
    uint64_t nodes_pruned_ = 0;
  };

 private:
  std::unique_ptr<Node> root_;
  int max_entries_ = 0;
  size_t size_ = 0;
};

}  // namespace gat

#endif  // GAT_RTREE_IRTREE_H_
