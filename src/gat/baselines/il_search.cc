#include "gat/baselines/il_search.h"

#include <algorithm>

#include "gat/baselines/refinement.h"
#include "gat/common/check.h"
#include "gat/util/stopwatch.h"
#include "gat/util/top_k.h"

namespace gat {

IlSearcher::IlSearcher(const Dataset& dataset) : dataset_(dataset) {
  GAT_CHECK(dataset.finalized());
  postings_.resize(dataset.num_distinct_activities());
  for (TrajectoryId t = 0; t < dataset.size(); ++t) {
    for (ActivityId a : dataset.trajectory(t).ActivityUnion()) {
      GAT_DCHECK(a < postings_.size());
      postings_[a].push_back(t);
    }
  }
  // Trajectory IDs are visited in order, so each list is already sorted.
}

std::vector<TrajectoryId> IlSearcher::CandidatesFor(
    const std::vector<ActivityId>& activities) const {
  if (activities.empty()) {
    std::vector<TrajectoryId> all(dataset_.size());
    for (TrajectoryId t = 0; t < dataset_.size(); ++t) all[t] = t;
    return all;
  }
  // Intersect shortest-first to keep intermediate results small.
  std::vector<const std::vector<TrajectoryId>*> lists;
  lists.reserve(activities.size());
  for (ActivityId a : activities) {
    if (a >= postings_.size()) return {};  // activity absent from dataset
    lists.push_back(&postings_[a]);
  }
  std::sort(lists.begin(), lists.end(),
            [](const auto* a, const auto* b) { return a->size() < b->size(); });
  std::vector<TrajectoryId> result = *lists.front();
  std::vector<TrajectoryId> next;
  for (size_t i = 1; i < lists.size() && !result.empty(); ++i) {
    next.clear();
    std::set_intersection(result.begin(), result.end(), lists[i]->begin(),
                          lists[i]->end(), std::back_inserter(next));
    result.swap(next);
  }
  return result;
}

size_t IlSearcher::IndexBytes() const {
  size_t bytes = 0;
  for (const auto& list : postings_) {
    bytes += list.size() * sizeof(TrajectoryId);
  }
  return bytes;
}

ResultList IlSearcher::Search(const Query& query, size_t k, QueryKind kind,
                              SearchStats* stats,
                              const QueryContext* /*context*/) const {
  SearchStats local;
  SearchStats& st = stats != nullptr ? *stats : local;
  st.Reset();
  Stopwatch timer;
  if (query.empty() || k == 0) return {};

  TopKCollector collector(k);
  for (TrajectoryId t : CandidatesFor(query.ActivityUnion())) {
    ++st.candidates_retrieved;
    const double d = RefineCandidate(dataset_.trajectory(t), query, kind,
                                     collector.Threshold(), st);
    collector.Offer(t, d);
  }
  st.elapsed_ms = timer.ElapsedMillis();
  return ToResultList(collector);
}

}  // namespace gat
