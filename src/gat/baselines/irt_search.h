#ifndef GAT_BASELINES_IRT_SEARCH_H_
#define GAT_BASELINES_IRT_SEARCH_H_

#include <cstdint>

#include "gat/core/searcher.h"
#include "gat/model/dataset.h"
#include "gat/rtree/irtree.h"

namespace gat {

/// The IRT baseline (Section III-C): like RT, but the index is an IR-tree
/// whose nodes carry activity inverted files. Before probing the entries of
/// a node, the search checks the node's activity summary against the
/// demanded activities; subtrees without any of them are pruned. Each query
/// point's stream is filtered by that point's own activity set, so the
/// stream enumerates exactly the potential point matches in ascending
/// distance — the per-stream pending distance lower-bounds the minimum
/// *point match* distance of every unseen trajectory, giving a valid (and
/// tighter than RT's) termination bound.
class IrtSearcher : public Searcher {
 public:
  explicit IrtSearcher(const Dataset& dataset, uint32_t batch = 64,
                       int max_node_entries = 32);

  ResultList Search(const Query& query, size_t k, QueryKind kind,
                    SearchStats* stats = nullptr,
                    const QueryContext* context = nullptr) const override;
  std::string name() const override { return "IRT"; }

  const IrTree& tree() const { return tree_; }

 private:
  const Dataset& dataset_;
  IrTree tree_;
  uint32_t batch_;
};

}  // namespace gat

#endif  // GAT_BASELINES_IRT_SEARCH_H_
