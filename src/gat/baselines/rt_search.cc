#include "gat/baselines/rt_search.h"

#include <algorithm>
#include <vector>

#include "gat/baselines/refinement.h"
#include "gat/common/check.h"
#include "gat/util/stopwatch.h"
#include "gat/util/top_k.h"

namespace gat {

RtSearcher::RtSearcher(const Dataset& dataset, uint32_t batch,
                       int max_node_entries)
    : dataset_(dataset), batch_(batch) {
  GAT_CHECK(dataset.finalized());
  GAT_CHECK(batch > 0);
  std::vector<RTreeEntry> entries;
  for (TrajectoryId t = 0; t < dataset.size(); ++t) {
    const auto& tr = dataset.trajectory(t);
    for (PointIndex i = 0; i < tr.size(); ++i) {
      entries.push_back(RTreeEntry{tr[i].location, t, i});
    }
  }
  tree_ = RTree::BulkLoad(std::move(entries), max_node_entries);
}

ResultList RtSearcher::Search(const Query& query, size_t k, QueryKind kind,
                              SearchStats* stats,
                              const QueryContext* /*context*/) const {
  SearchStats local;
  SearchStats& st = stats != nullptr ? *stats : local;
  st.Reset();
  Stopwatch timer;
  if (query.empty() || k == 0) return {};

  // One incremental NN stream per query location. Query points with an
  // empty activity set contribute 0 to every Dmm/Dmom and are skipped
  // (their stream would otherwise inflate the lower bound unsoundly).
  std::vector<RTree::NearestIterator> streams;
  streams.reserve(query.size());
  std::vector<size_t> stream_query;  // stream -> query point index
  for (size_t i = 0; i < query.size(); ++i) {
    if (query[i].activities.empty()) continue;
    streams.emplace_back(tree_, query[i].location);
    stream_query.push_back(i);
  }

  TopKCollector collector(k);
  std::vector<char> seen(dataset_.size(), 0);

  if (streams.empty()) {
    // Degenerate query: every trajectory matches at distance 0.
    ResultList out;
    for (TrajectoryId t = 0; t < dataset_.size() && out.size() < k; ++t) {
      out.push_back(SearchResult{t, 0.0});
    }
    st.elapsed_ms = timer.ElapsedMillis();
    return out;
  }

  while (true) {
    ++st.rounds;
    // Pop `batch_` points, always advancing the stream with the smallest
    // pending distance — this visits trajectory points globally in
    // best-first order, the spirit of the adapted k-BCT algorithm.
    std::vector<TrajectoryId> fresh;
    for (uint32_t b = 0; b < batch_; ++b) {
      size_t best_stream = streams.size();
      double best_pending = kInfDist;
      for (size_t s = 0; s < streams.size(); ++s) {
        const double pending = streams[s].PendingLowerBound();
        if (pending < best_pending) {
          best_pending = pending;
          best_stream = s;
        }
      }
      if (best_stream == streams.size()) break;  // every stream drained
      RTreeEntry entry;
      double dist = 0.0;
      if (!streams[best_stream].Next(&entry, &dist)) continue;
      ++st.nodes_popped;
      if (!seen[entry.trajectory]) {
        seen[entry.trajectory] = 1;
        fresh.push_back(entry.trajectory);
      }
    }

    for (TrajectoryId t : fresh) {
      ++st.candidates_retrieved;
      const double d = RefineCandidate(dataset_.trajectory(t), query, kind,
                                       collector.Threshold(), st);
      collector.Offer(t, d);
    }

    // Lemma-2 bound: any unseen trajectory has, for each demanded query
    // point, all its points still pending in that stream, so its best
    // match distance — and therefore its Dmm and Dmom — is at least the
    // sum of pending stream heads. A drained stream has popped every
    // point, so nothing is unseen and the search is complete.
    double bound = 0.0;
    bool any_stream_drained = false;
    for (auto& s : streams) {
      const double pending = s.PendingLowerBound();
      if (pending == kInfDist) {
        any_stream_drained = true;
        break;
      }
      bound += pending;
    }
    if (any_stream_drained) break;
    if (collector.Threshold() < bound) break;
  }

  // Every R-tree node visited is one (simulated) disk page read.
  for (auto& s : streams) st.disk_reads += s.nodes_popped();
  st.elapsed_ms = timer.ElapsedMillis();
  return ToResultList(collector);
}

}  // namespace gat
