#ifndef GAT_BASELINES_BRUTE_FORCE_H_
#define GAT_BASELINES_BRUTE_FORCE_H_

#include "gat/core/searcher.h"
#include "gat/model/dataset.h"

namespace gat {

/// Exhaustive scan over every trajectory. Not part of the paper's
/// evaluation; serves as the correctness oracle for all other searchers and
/// as the "no index" datum in ablation discussions.
class BruteForceSearcher : public Searcher {
 public:
  explicit BruteForceSearcher(const Dataset& dataset);

  ResultList Search(const Query& query, size_t k, QueryKind kind,
                    SearchStats* stats = nullptr,
                    const QueryContext* context = nullptr) const override;
  std::string name() const override { return "BF"; }

 private:
  const Dataset& dataset_;
};

}  // namespace gat

#endif  // GAT_BASELINES_BRUTE_FORCE_H_
