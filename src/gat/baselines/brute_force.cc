#include "gat/baselines/brute_force.h"

#include "gat/baselines/refinement.h"
#include "gat/common/check.h"
#include "gat/util/stopwatch.h"
#include "gat/util/top_k.h"

namespace gat {

BruteForceSearcher::BruteForceSearcher(const Dataset& dataset)
    : dataset_(dataset) {
  GAT_CHECK(dataset.finalized());
}

ResultList BruteForceSearcher::Search(const Query& query, size_t k,
                                      QueryKind kind, SearchStats* stats,
                                      const QueryContext* /*context*/) const {
  SearchStats local;
  SearchStats& st = stats != nullptr ? *stats : local;
  st.Reset();
  Stopwatch timer;
  if (query.empty() || k == 0) return {};

  TopKCollector collector(k);
  for (TrajectoryId t = 0; t < dataset_.size(); ++t) {
    ++st.candidates_retrieved;
    const double d = RefineCandidate(dataset_.trajectory(t), query, kind,
                                     collector.Threshold(), st);
    collector.Offer(t, d);
  }
  st.elapsed_ms = timer.ElapsedMillis();
  return ToResultList(collector);
}

}  // namespace gat
