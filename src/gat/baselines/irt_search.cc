#include "gat/baselines/irt_search.h"

#include <vector>

#include "gat/baselines/refinement.h"
#include "gat/common/check.h"
#include "gat/util/stopwatch.h"
#include "gat/util/top_k.h"

namespace gat {

IrtSearcher::IrtSearcher(const Dataset& dataset, uint32_t batch,
                         int max_node_entries)
    : dataset_(dataset), batch_(batch) {
  GAT_CHECK(dataset.finalized());
  GAT_CHECK(batch > 0);
  std::vector<IrTreeEntry> entries;
  for (TrajectoryId t = 0; t < dataset.size(); ++t) {
    const auto& tr = dataset.trajectory(t);
    for (PointIndex i = 0; i < tr.size(); ++i) {
      entries.push_back(IrTreeEntry{tr[i].location, t, i, tr[i].activities});
    }
  }
  tree_ = IrTree::BulkLoad(std::move(entries), max_node_entries);
}

ResultList IrtSearcher::Search(const Query& query, size_t k, QueryKind kind,
                               SearchStats* stats,
                               const QueryContext* /*context*/) const {
  SearchStats local;
  SearchStats& st = stats != nullptr ? *stats : local;
  st.Reset();
  Stopwatch timer;
  if (query.empty() || k == 0) return {};

  // One activity-filtered NN stream per demanded query point.
  std::vector<IrTree::NearestIterator> streams;
  streams.reserve(query.size());
  for (size_t i = 0; i < query.size(); ++i) {
    if (query[i].activities.empty()) continue;
    streams.emplace_back(tree_, query[i].location, query[i].activities);
  }

  if (streams.empty()) {
    ResultList out;
    for (TrajectoryId t = 0; t < dataset_.size() && out.size() < k; ++t) {
      out.push_back(SearchResult{t, 0.0});
    }
    st.elapsed_ms = timer.ElapsedMillis();
    return out;
  }

  TopKCollector collector(k);
  std::vector<char> seen(dataset_.size(), 0);

  while (true) {
    ++st.rounds;
    std::vector<TrajectoryId> fresh;
    for (uint32_t b = 0; b < batch_; ++b) {
      size_t best_stream = streams.size();
      double best_pending = kInfDist;
      for (size_t s = 0; s < streams.size(); ++s) {
        const double pending = streams[s].PendingLowerBound();
        if (pending < best_pending) {
          best_pending = pending;
          best_stream = s;
        }
      }
      if (best_stream == streams.size()) break;  // every stream drained
      const IrTreeEntry* entry = nullptr;
      double dist = 0.0;
      if (!streams[best_stream].Next(&entry, &dist)) continue;
      ++st.nodes_popped;
      if (!seen[entry->trajectory]) {
        seen[entry->trajectory] = 1;
        fresh.push_back(entry->trajectory);
      }
    }

    for (TrajectoryId t : fresh) {
      ++st.candidates_retrieved;
      const double d = RefineCandidate(dataset_.trajectory(t), query, kind,
                                       collector.Threshold(), st);
      collector.Offer(t, d);
    }

    // Per-stream pending distances lower-bound the per-query-point minimum
    // point match distance of every unseen trajectory: an unseen
    // trajectory's match points for q_i all still sit in stream i. When a
    // stream drains, every trajectory that could match q_i at all has been
    // seen, so nothing unseen can be a match and the search is complete.
    double bound = 0.0;
    bool any_stream_drained = false;
    for (auto& s : streams) {
      const double pending = s.PendingLowerBound();
      if (pending == kInfDist) {
        any_stream_drained = true;
        break;
      }
      bound += pending;
    }
    if (any_stream_drained) break;
    if (collector.Threshold() < bound) break;
  }

  // Every IR-tree node visited is one (simulated) disk page read.
  for (auto& s : streams) st.disk_reads += s.nodes_popped();
  st.elapsed_ms = timer.ElapsedMillis();
  return ToResultList(collector);
}

}  // namespace gat
