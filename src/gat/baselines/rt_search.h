#ifndef GAT_BASELINES_RT_SEARCH_H_
#define GAT_BASELINES_RT_SEARCH_H_

#include <cstdint>

#include "gat/core/searcher.h"
#include "gat/model/dataset.h"
#include "gat/rtree/rtree.h"

namespace gat {

/// The RT baseline (Section III-B): all trajectory points in one R-tree;
/// candidates are discovered in increasing spatial distance via one
/// incremental nearest-neighbour stream per query location — the k-BCT
/// search of Chen et al. adapted to activity trajectories. The Lemma-2
/// bound (best match distance lower-bounds the minimum match distance)
/// gives the termination test: when the k-th smallest Dmm/Dmom found so far
/// drops below the sum of the per-stream search radii, no unseen trajectory
/// can improve the result.
class RtSearcher : public Searcher {
 public:
  /// `batch` = how many points are popped per round before the bound is
  /// re-checked (the analogue of GAT's lambda).
  explicit RtSearcher(const Dataset& dataset, uint32_t batch = 64,
                      int max_node_entries = 32);

  ResultList Search(const Query& query, size_t k, QueryKind kind,
                    SearchStats* stats = nullptr,
                    const QueryContext* context = nullptr) const override;
  std::string name() const override { return "RT"; }

  const RTree& tree() const { return tree_; }

 private:
  const Dataset& dataset_;
  RTree tree_;
  uint32_t batch_;
};

}  // namespace gat

#endif  // GAT_BASELINES_RT_SEARCH_H_
