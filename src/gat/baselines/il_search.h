#ifndef GAT_BASELINES_IL_SEARCH_H_
#define GAT_BASELINES_IL_SEARCH_H_

#include <vector>

#include "gat/core/searcher.h"
#include "gat/model/dataset.h"

namespace gat {

/// The IL baseline (Section III-A): a per-activity inverted list over
/// trajectory IDs, built from each trajectory's aggregated activity set.
/// Search first intersects the lists of every demanded activity — filtering
/// out trajectories that cannot possibly match — then sequentially refines
/// all survivors. Uses activity information only; its cost is independent
/// of k and of the spatial spread of the query, exactly the behaviour
/// Figures 3-6 show.
class IlSearcher : public Searcher {
 public:
  explicit IlSearcher(const Dataset& dataset);

  ResultList Search(const Query& query, size_t k, QueryKind kind,
                    SearchStats* stats = nullptr,
                    const QueryContext* context = nullptr) const override;
  std::string name() const override { return "IL"; }

  /// Trajectories containing every activity in `activities` (sorted IDs).
  std::vector<TrajectoryId> CandidatesFor(
      const std::vector<ActivityId>& activities) const;

  size_t IndexBytes() const;

 private:
  const Dataset& dataset_;
  /// posting_[a] = sorted trajectory IDs whose activity union contains a.
  std::vector<std::vector<TrajectoryId>> postings_;
};

}  // namespace gat

#endif  // GAT_BASELINES_IL_SEARCH_H_
