#ifndef GAT_BASELINES_REFINEMENT_H_
#define GAT_BASELINES_REFINEMENT_H_

#include "gat/core/match.h"
#include "gat/core/order_match.h"
#include "gat/model/query.h"
#include "gat/model/trajectory.h"
#include "gat/search/search_stats.h"

namespace gat {

/// Shared candidate-refinement step: all searchers compute the final
/// distances with the same kernels (the paper's experimental setup,
/// Section VII-A: the four algorithms "only differ in the index structure
/// and how they retrieve candidates").
///
/// Returns the query distance of `trajectory` (Dmm for ATSQ, Dmom for
/// OATSQ) or kInfDist when it is not a (order-sensitive) match or its Dmom
/// provably exceeds `threshold`. Updates rejection counters in `stats`.
inline double RefineCandidate(const Trajectory& trajectory, const Query& query,
                              QueryKind kind, double threshold,
                              SearchStats& stats) {
  // Fetching the candidate's record is one (simulated) disk read — the
  // dominant cost of the paper's disk-resident baselines.
  ++stats.disk_reads;
  if (!CoversQueryActivities(trajectory, query)) {
    ++stats.activity_rejected;
    return kInfDist;
  }
  if (kind == QueryKind::kAtsq) {
    ++stats.distance_computations;
    return MinMatchDistance(trajectory, query);
  }
  if (!PassesMibValidation(trajectory, query)) {
    ++stats.mib_rejected;
    return kInfDist;
  }
  ++stats.distance_computations;
  return MinOrderSensitiveMatchDistance(trajectory, query, threshold);
}

}  // namespace gat

#endif  // GAT_BASELINES_REFINEMENT_H_
