#ifndef GAT_COMMON_CHECK_H_
#define GAT_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Lightweight invariant checking.
///
/// GAT_CHECK is always on (index construction and query planning are not
/// hot paths); GAT_DCHECK compiles away in release builds and is used inside
/// per-point kernels. Following the Google style guide we do not use
/// exceptions; a failed check aborts with a source location.
#define GAT_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "GAT_CHECK failed: %s at %s:%d\n", #cond,        \
                   __FILE__, __LINE__);                                     \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#ifndef NDEBUG
#define GAT_DCHECK(cond) GAT_CHECK(cond)
#else
#define GAT_DCHECK(cond) \
  do {                   \
  } while (0)
#endif

#endif  // GAT_COMMON_CHECK_H_
