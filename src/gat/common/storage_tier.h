#ifndef GAT_COMMON_STORAGE_TIER_H_
#define GAT_COMMON_STORAGE_TIER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

/// Two-tier storage accounting.
///
/// The paper (Section IV, VII) splits the GAT index between main memory and
/// hard disk: HICL levels above `h` and all APL postings live on disk, while
/// the high HICL levels, the ITL and the TAS are memory resident. Every
/// component is tagged with the tier the paper assigns it to, so that (a)
/// the memory-cost experiment of Figure 8 counts exactly what the paper
/// counts and (b) search statistics can report how many disk accesses each
/// algorithm performs. What a "disk access" physically is depends on the
/// `DiskTier` the index reads through (gat/storage/disk_tier.h): the
/// default simulated tier only counts, the mmap tier does page-granular
/// block I/O through a cache — with identical logical-read counts.
namespace gat {

enum class StorageTier : uint8_t {
  kMainMemory = 0,
  kDisk = 1,
};

/// hits / lookups with the shared zero-lookups convention (0.0) — the
/// one hit-rate formula every cache statistic in the tree reports.
inline double CacheHitRate(uint64_t hits, uint64_t lookups) {
  return lookups == 0
             ? 0.0
             : static_cast<double>(hits) / static_cast<double>(lookups);
}

/// Byte/access counters for one component on one tier.
struct TierUsage {
  StorageTier tier = StorageTier::kMainMemory;
  size_t bytes = 0;

  TierUsage() = default;
  TierUsage(StorageTier t, size_t b) : tier(t), bytes(b) {}
};

/// Mutable counter of disk reads, threaded through searches.
///
/// `reads` counts *logical* fetches (one per APL row / disk-tier HICL
/// list), the paper-comparable unit that is identical under the
/// simulated and the mmap-backed tier. The block counters are populated
/// only by a block-cached tier: `block_hits + blocks_read` is the number
/// of cache-block lookups the logical fetches decomposed into, and
/// `blocks_read` the misses that did real page-granular I/O.
///
/// Counters are relaxed atomics so one counter may be shared across
/// concurrent search branches (shard fan-out, prefetch tasks) without
/// torn updates; the usual pattern is still one counter per task merged
/// at the join barrier (`SearchStats::operator+=`), where relaxed
/// increments cost nothing.
struct DiskAccessCounter {
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> block_hits{0};
  std::atomic<uint64_t> blocks_read{0};

  void RecordRead() { reads.fetch_add(1, std::memory_order_relaxed); }
  void RecordBlockHit() {
    block_hits.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordBlockRead() {
    blocks_read.fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t Reads() const { return reads.load(std::memory_order_relaxed); }
  uint64_t BlockHits() const {
    return block_hits.load(std::memory_order_relaxed);
  }
  uint64_t BlocksRead() const {
    return blocks_read.load(std::memory_order_relaxed);
  }

  void Reset() {
    reads.store(0, std::memory_order_relaxed);
    block_hits.store(0, std::memory_order_relaxed);
    blocks_read.store(0, std::memory_order_relaxed);
  }
};

}  // namespace gat

#endif  // GAT_COMMON_STORAGE_TIER_H_
