#ifndef GAT_COMMON_STORAGE_TIER_H_
#define GAT_COMMON_STORAGE_TIER_H_

#include <cstddef>
#include <cstdint>

/// Two-tier storage accounting.
///
/// The paper (Section IV, VII) splits the GAT index between main memory and
/// hard disk: HICL levels above `h` and all APL postings live on disk, while
/// the high HICL levels, the ITL and the TAS are memory resident. We keep
/// everything in RAM (the reproduction substitutes a 2013 HDD testbed with a
/// tier-accounting layer) but tag every component with the tier the paper
/// assigns it to, so that (a) the memory-cost experiment of Figure 8 counts
/// exactly what the paper counts and (b) search statistics can report how
/// many simulated disk accesses each algorithm performs.
namespace gat {

enum class StorageTier : uint8_t {
  kMainMemory = 0,
  kDisk = 1,
};

/// Byte/access counters for one component on one tier.
struct TierUsage {
  StorageTier tier = StorageTier::kMainMemory;
  size_t bytes = 0;

  TierUsage() = default;
  TierUsage(StorageTier t, size_t b) : tier(t), bytes(b) {}
};

/// Mutable counter of simulated disk reads, threaded through searches.
struct DiskAccessCounter {
  uint64_t reads = 0;

  void RecordRead() { ++reads; }
  void Reset() { reads = 0; }
};

}  // namespace gat

#endif  // GAT_COMMON_STORAGE_TIER_H_
