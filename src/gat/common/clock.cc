#include "gat/common/clock.h"

#include <chrono>

namespace gat {

uint64_t SteadyClock::NowMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

const SteadyClock& SteadyClock::Default() {
  static const SteadyClock clock;
  return clock;
}

}  // namespace gat
