#ifndef GAT_COMMON_TYPES_H_
#define GAT_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

/// Fundamental identifier and numeric types shared across the library.
///
/// The library follows the paper's data model (Zheng et al., ICDE 2013,
/// Section II): activities are opaque entries of a pre-defined vocabulary,
/// trajectories are sequences of geo-points each tagged with a set of
/// activity IDs.
namespace gat {

/// Identifier of an activity in the vocabulary. After the dataset is
/// finalized, activity IDs are re-ranked so that ID 0 is the most frequent
/// activity (required by the TAS sketch construction, Section IV).
using ActivityId = uint32_t;

/// Identifier of a trajectory within a dataset (dense, 0-based).
using TrajectoryId = uint32_t;

/// Index of a point within a single trajectory (0-based).
using PointIndex = uint32_t;

/// Sentinel for "no id".
inline constexpr uint32_t kInvalidId = std::numeric_limits<uint32_t>::max();

/// Distances are non-negative; +infinity encodes "no match exists"
/// (e.g. Dmpm of a trajectory that cannot cover the query activities).
inline constexpr double kInfDist = std::numeric_limits<double>::infinity();

/// Bitmask over the activities of a *single query point*. Each query point
/// carries at most `kMaxQueryActivities` activities (the paper evaluates
/// |q.Phi| in 1..5), so subsets of q.Phi fit comfortably in 32 bits.
using ActivityMask = uint32_t;

/// Upper bound on |q.Phi| accepted by the match-distance kernels. The
/// Algorithm-3 hash table is dense over subsets of q.Phi, i.e. 2^|q.Phi|
/// entries, so this cap also bounds kernel memory.
inline constexpr int kMaxQueryActivities = 16;

}  // namespace gat

#endif  // GAT_COMMON_TYPES_H_
