#ifndef GAT_COMMON_QUERY_CONTEXT_H_
#define GAT_COMMON_QUERY_CONTEXT_H_

#include <cstdint>

#include "gat/common/clock.h"

namespace gat {

/// Scheduling class of a request on the shared executor. Interactive
/// requests (a user waiting on a top-k answer) overtake queued bulk work
/// (analytics batches, rebuild-adjacent sweeps) at every submission
/// point; within a class, FIFO order is preserved.
enum class RequestPriority : uint8_t {
  kInteractive = 0,
  kBulk = 1,
};

/// Per-request context the serving front door attaches to a query batch
/// and every layer below reads at its task boundaries: the engine checks
/// it before starting each query, and fan-out searchers check it before
/// each per-shard sweep. It carries no results and owns nothing — one
/// immutable struct per request, shared by all of the request's tasks.
///
/// ## Deadline semantics
///
/// `deadline_micros` is absolute on `clock`; 0 means "no deadline". A
/// request expires exactly *at* its deadline (`now >= deadline`), so a
/// boundary check that runs at the deadline instant already refuses the
/// work — "just in time" is too late, by design: the caller's budget is
/// spent. Expiry is monotone (the clock never goes backwards), so once
/// any boundary observes it, every later boundary of the request does
/// too. Work that expires mid-flight is never partially returned: the
/// query that hit the deadline reports `deadline_exceeded` and its
/// results are dropped, keeping answers bit-identical or absent — never
/// subtly truncated.
struct QueryContext {
  /// Time source of the deadline. Required when `deadline_micros` != 0.
  const Clock* clock = nullptr;

  /// Absolute expiry on `clock`, in microseconds. 0 = no deadline.
  uint64_t deadline_micros = 0;

  RequestPriority priority = RequestPriority::kInteractive;

  bool HasDeadline() const {
    return deadline_micros != 0 && clock != nullptr;
  }

  /// True from the deadline instant onward (see class comment).
  bool Expired() const {
    return HasDeadline() && clock->NowMicros() >= deadline_micros;
  }
};

}  // namespace gat

#endif  // GAT_COMMON_QUERY_CONTEXT_H_
