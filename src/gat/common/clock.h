#ifndef GAT_COMMON_CLOCK_H_
#define GAT_COMMON_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace gat {

/// Time source of the serving layer. Every admission, deadline and
/// scheduling decision reads time through this interface so the whole
/// front door can run on an injected fake clock: tests drive token-bucket
/// refills and deadline expiry deterministically, and the open-loop bench
/// schedules run in *virtual* time, making shed/deadline counters
/// bit-identical across machines and thread counts.
///
/// Implementations must be safe to read from any thread.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic microseconds since an arbitrary epoch. Never decreases.
  virtual uint64_t NowMicros() const = 0;
};

/// Wall time: std::chrono::steady_clock. The production clock.
class SteadyClock final : public Clock {
 public:
  uint64_t NowMicros() const override;

  /// Process-wide instance for callers that do not inject a clock.
  static const SteadyClock& Default();
};

/// A clock that moves only when told to — the deterministic time source
/// of tests and virtual-time bench schedules. Readers may race with
/// Set/Advance (the value is a single atomic); determinism additionally
/// requires the *driver* to advance it only between units of work, never
/// while tasks that read it are in flight.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(uint64_t start_micros = 0) : micros_(start_micros) {}

  uint64_t NowMicros() const override {
    return micros_.load(std::memory_order_relaxed);
  }

  /// Jumps to an absolute time. Callers are expected to keep it
  /// monotonic; consumers (token buckets) tolerate a rewind by simply
  /// not refilling.
  void SetMicros(uint64_t micros) {
    micros_.store(micros, std::memory_order_relaxed);
  }

  void AdvanceMicros(uint64_t delta) {
    micros_.fetch_add(delta, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> micros_;
};

}  // namespace gat

#endif  // GAT_COMMON_CLOCK_H_
