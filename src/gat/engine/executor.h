#ifndef GAT_ENGINE_EXECUTOR_H_
#define GAT_ENGINE_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "gat/common/query_context.h"

namespace gat {

class TaskGroup;

/// Scheduling class of a task on the shared executor. High-priority
/// tasks are always dequeued before low-priority ones; within a class,
/// FIFO order is preserved. The default is kHigh, so callers that never
/// mention priority are scheduled exactly as before the seam existed.
enum class TaskPriority : uint8_t {
  kHigh = 0,  // interactive serving, builds, anything latency-bound
  kLow = 1,   // bulk/background requests; only runs when no kHigh queued
};

/// Maps a request's priority class onto the executor seam: bulk
/// requests yield the pool to interactive work.
inline TaskPriority TaskPriorityFor(const QueryContext* context) {
  return context != nullptr && context->priority == RequestPriority::kBulk
             ? TaskPriority::kLow
             : TaskPriority::kHigh;
}

/// The thread-count rule every layer shares: `requested` = 0 resolves
/// to std::thread::hardware_concurrency(), floored at 1.
uint32_t ResolveThreadCount(uint32_t requested);

/// A persistent pool of worker threads executing submitted tasks — the
/// one threading primitive every layer shares. Query batches
/// (`QueryEngine`), per-query shard fan-out (`ShardedSearcher`), shard
/// builds and snapshot loads (`ShardedIndex`) all run as tasks on one
/// executor, so a process that rebuilds an index while serving queries
/// pays for exactly one thread set, and independent callers interleave
/// on the same workers instead of serializing behind a mutex.
///
/// Tasks are submitted through a `TaskGroup` (below), which is also the
/// completion token. There is no per-task future: the unit of
/// synchronization is "this group of sibling tasks is done", which is
/// what batches, fan-outs and builds all need.
///
/// ## Nested submission
///
/// A task may itself create a `TaskGroup`, submit subtasks and `Wait()`
/// on them. Waiting never parks a thread while that group has queued
/// tasks: the waiter *helps*, draining its own group's tasks from the
/// executor's queue until the group completes. That is what makes
/// per-query shard fan-out inside an engine worker safe — no
/// thread-in-thread spawning, no worker starvation, and a
/// single-threaded executor degrades to plain (deterministic) inline
/// execution because the submitting thread runs every task itself.
/// Helping is deliberately restricted to the waiter's own group: a
/// waiter never executes a stranger's task, so a timed section around a
/// fan-out (e.g. the engine's per-query stopwatch) measures only its
/// own work.
///
/// Progress argument: every queued task belongs to a group whose waiter
/// helps it, so a waiter blocks only when its remaining tasks are
/// already running on other threads. Tasks block only in nested
/// `Wait()`s (group scopes nest LIFO), so the innermost running task
/// always runs to completion and wakes its waiter — acyclic by
/// construction, hence no deadlock.
///
/// Thread-safety: all members are internally synchronized; `Submit` /
/// `Wait` / `RunOneTask` may be called from any thread, including from
/// inside tasks.
class Executor {
 public:
  /// `threads` = 0 picks std::thread::hardware_concurrency(). The pool
  /// is spawned eagerly and lives until destruction.
  explicit Executor(uint32_t threads = 0);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  uint32_t threads() const { return threads_; }

  /// Process-wide shared executor (hardware_concurrency workers),
  /// created on first use. The default pool for callers that do not
  /// manage executor lifetime themselves.
  static Executor& Default();

  /// Runs one queued task on the calling thread if any is pending;
  /// `only_from` (optional) restricts the pick to that group's tasks.
  /// Returns false when nothing eligible was queued. The building block
  /// of help-while-waiting; exposed for tests.
  bool RunOneTask(TaskGroup* only_from = nullptr);

  /// Total tasks ever enqueued on this executor (monotonic). The proof
  /// hook for admission control: a shed request must leave this counter
  /// unchanged — rejection happens before any task exists.
  uint64_t tasks_submitted() const {
    return tasks_submitted_.load(std::memory_order_relaxed);
  }

 private:
  friend class TaskGroup;

  struct QueuedTask {
    std::function<void()> fn;
    TaskGroup* group;
  };

  void Enqueue(QueuedTask task, TaskPriority priority);
  void WorkerLoop();

  // Pops the next runnable task: high-priority FIFO first, then low.
  // Caller must hold mu_ and have checked HasQueued().
  QueuedTask PopLocked();
  bool HasQueued() const { return !queues_[0].empty() || !queues_[1].empty(); }

  const uint32_t threads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  // One FIFO per TaskPriority, indexed by the enum's underlying value.
  std::deque<QueuedTask> queues_[2];
  bool stop_ = false;
  std::atomic<uint64_t> tasks_submitted_{0};
};

/// A set of sibling tasks on one executor plus their completion barrier.
/// Submit any number of tasks, then `Wait()`; the destructor waits too,
/// so tasks can safely capture stack state of the submitting frame by
/// reference. Single-use: create one group per fan-out.
///
/// `Wait()` helps execute this group's queued tasks while any are
/// pending, so nesting groups inside tasks cannot starve the pool.
///
/// Every task submitted through one group shares the group's priority
/// class (a fan-out is scheduled as a unit); the default kHigh keeps
/// legacy callers byte-identical in behavior.
class TaskGroup {
 public:
  explicit TaskGroup(Executor& executor,
                     TaskPriority priority = TaskPriority::kHigh)
      : executor_(executor), priority_(priority) {}
  ~TaskGroup() { Wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// A reserved completion slot handed out by `Defer()`: the group
  /// counts it as pending, but no task is queued yet — the executor
  /// worker that would have run it is free to run other tasks. Calling
  /// `Resume(fn)` later (typically from an I/O completion context)
  /// enqueues `fn` as a regular task of the group at the group's
  /// priority; the group completes only after every resumed continuation
  /// has run. This is how a query waiting on cold blocks *yields its
  /// executor slot*: the staging task returns (slot freed), the deferred
  /// slot keeps the batch's Wait() open, and the continuation re-enters
  /// the queue when the reads land.
  ///
  /// Copyable so it can ride through std::function; `Resume` must be
  /// called exactly once across all copies (never zero times — the
  /// group's Wait() would never return), and the group must outlive the
  /// call (guaranteed whenever the resumer runs before the batch's
  /// Wait() returns, which the pending count itself enforces).
  class Deferred {
   public:
    Deferred() = default;
    void Resume(std::function<void()> fn) const;

   private:
    friend class TaskGroup;
    explicit Deferred(TaskGroup* group) : group_(group) {}
    TaskGroup* group_ = nullptr;
  };

  /// Enqueues `fn`. The task must not outlive the group (Wait/dtor
  /// guarantees it does not).
  void Submit(std::function<void()> fn);

  /// Reserves a completion slot without queueing a task; see Deferred.
  Deferred Defer();

  /// Blocks until every submitted task has finished, executing this
  /// group's queued tasks on this thread while waiting. Idempotent.
  void Wait();

 private:
  void OnTaskDone();

  Executor& executor_;
  const TaskPriority priority_;
  std::mutex mu_;
  std::condition_variable done_cv_;
  size_t pending_ = 0;
};

}  // namespace gat

#endif  // GAT_ENGINE_EXECUTOR_H_
