#ifndef GAT_ENGINE_WORK_QUEUE_H_
#define GAT_ENGINE_WORK_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "gat/common/check.h"

namespace gat {

/// Lock-free work-stealing distribution of the task indices [0, size)
/// across a fixed number of workers.
///
/// Each worker owns one contiguous stripe of the index range with an
/// atomic cursor. A worker drains its own stripe first (perfect locality,
/// zero contention in the common case); once empty it steals from the
/// victim stripe with the most remaining work. All operations are single
/// `fetch_add`s on the stripe cursors — no locks, no CAS loops — so a
/// stalled worker can never block the others.
///
/// The queue hands out each index exactly once. It is single-use: build
/// one per batch.
class WorkStealingQueue {
 public:
  WorkStealingQueue(size_t num_tasks, uint32_t num_workers)
      : num_tasks_(num_tasks), stripes_(num_workers) {
    GAT_CHECK(num_workers > 0);
    // Split [0, num_tasks) into num_workers stripes; the first
    // `num_tasks % num_workers` stripes get one extra task.
    const size_t base = num_tasks / num_workers;
    const size_t extra = num_tasks % num_workers;
    size_t begin = 0;
    for (uint32_t w = 0; w < num_workers; ++w) {
      const size_t len = base + (w < extra ? 1 : 0);
      stripes_[w].cursor.store(begin, std::memory_order_relaxed);
      stripes_[w].end = begin + len;
      begin += len;
    }
  }

  WorkStealingQueue(const WorkStealingQueue&) = delete;
  WorkStealingQueue& operator=(const WorkStealingQueue&) = delete;

  /// Pops the next task index for `worker`, preferring its own stripe and
  /// stealing from the fullest victim otherwise. Returns false when every
  /// stripe is drained.
  bool TryPop(uint32_t worker, size_t* index) {
    if (PopFrom(worker, index)) return true;
    // Own stripe empty: steal. Re-scan after a failed steal — another
    // worker may have raced us to the victim's last task while a different
    // stripe still has work.
    for (;;) {
      uint32_t victim = UINT32_MAX;
      size_t most_remaining = 0;
      for (uint32_t w = 0; w < stripes_.size(); ++w) {
        if (w == worker) continue;
        const size_t cur = stripes_[w].cursor.load(std::memory_order_relaxed);
        const size_t remaining = cur < stripes_[w].end ? stripes_[w].end - cur : 0;
        if (remaining > most_remaining) {
          most_remaining = remaining;
          victim = w;
        }
      }
      if (victim == UINT32_MAX) return false;  // everything drained
      if (PopFrom(victim, index)) return true;
    }
  }

  size_t size() const { return num_tasks_; }
  uint32_t workers() const { return static_cast<uint32_t>(stripes_.size()); }

 private:
  struct alignas(64) Stripe {  // own cache line: cursors are contended
    std::atomic<size_t> cursor{0};
    size_t end = 0;
  };

  bool PopFrom(uint32_t stripe_idx, size_t* index) {
    Stripe& s = stripes_[stripe_idx];
    // Claim optimistically; fetch_add past `end` is harmless — the cursor
    // only ever moves forward and claims beyond `end` are discarded.
    if (s.cursor.load(std::memory_order_relaxed) >= s.end) return false;
    const size_t claimed = s.cursor.fetch_add(1, std::memory_order_relaxed);
    if (claimed >= s.end) return false;
    *index = claimed;
    return true;
  }

  size_t num_tasks_;
  std::vector<Stripe> stripes_;
};

}  // namespace gat

#endif  // GAT_ENGINE_WORK_QUEUE_H_
