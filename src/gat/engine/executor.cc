#include "gat/engine/executor.h"

#include <chrono>
#include <utility>

namespace gat {

uint32_t ResolveThreadCount(uint32_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

Executor::Executor(uint32_t threads) : threads_(ResolveThreadCount(threads)) {
  workers_.reserve(threads_);
  for (uint32_t w = 0; w < threads_; ++w) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

Executor& Executor::Default() {
  static Executor executor(0);
  return executor;
}

void Executor::Enqueue(QueuedTask task, TaskPriority priority) {
  tasks_submitted_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    queues_[static_cast<size_t>(priority)].push_back(std::move(task));
  }
  cv_.notify_one();
}

Executor::QueuedTask Executor::PopLocked() {
  // Strict priority: every queued kHigh task runs before any kLow one.
  std::deque<QueuedTask>& q = !queues_[0].empty() ? queues_[0] : queues_[1];
  QueuedTask task = std::move(q.front());
  q.pop_front();
  return task;
}

bool Executor::RunOneTask(TaskGroup* only_from) {
  QueuedTask task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (only_from == nullptr) {
      if (!HasQueued()) return false;
      task = PopLocked();
    } else {
      // Help only the caller's group: a waiter must never spend its
      // (possibly timed) wait executing a stranger's task. A group's
      // tasks all share one priority class, but scan both queues so the
      // helper finds its work regardless of class. The queues are
      // fan-out-sized, so the scan is short.
      bool found = false;
      for (auto& queue : queues_) {
        for (auto it = queue.begin(); it != queue.end(); ++it) {
          if (it->group == only_from) {
            task = std::move(*it);
            queue.erase(it);
            found = true;
            break;
          }
        }
        if (found) break;
      }
      if (!found) return false;
    }
  }
  task.fn();
  return true;
}

void Executor::WorkerLoop() {
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || HasQueued(); });
      // Drain the queues before honoring stop: a group destroyed right
      // before the executor must still see its tasks finish.
      if (!HasQueued()) return;
      task = PopLocked();
    }
    task.fn();
  }
}

void TaskGroup::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
  }
  executor_.Enqueue(Executor::QueuedTask{
                        [this, fn = std::move(fn)] {
                          fn();
                          OnTaskDone();
                        },
                        this},
                    priority_);
}

TaskGroup::Deferred TaskGroup::Defer() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
  }
  return Deferred(this);
}

void TaskGroup::Deferred::Resume(std::function<void()> fn) const {
  // The pending slot was charged by Defer(); enqueue without
  // re-incrementing, exactly mirroring Submit's wrapper otherwise. The
  // group's waiter either helps this task from the queue or is woken by
  // OnTaskDone within its 1 ms wait lease.
  TaskGroup* group = group_;
  group->executor_.Enqueue(Executor::QueuedTask{
                               [group, fn = std::move(fn)] {
                                 fn();
                                 group->OnTaskDone();
                               },
                               group},
                           group->priority_);
}

void TaskGroup::Wait() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (pending_ == 0) return;
    }
    // Help: run this group's queued tasks instead of parking. Only when
    // none are queued — the stragglers are mid-flight on other threads —
    // does this thread actually block.
    if (executor_.RunOneTask(this)) continue;
    std::unique_lock<std::mutex> lock(mu_);
    // Re-check under the lock, then sleep with a short lease: a task
    // running on another thread may enqueue helpable subtasks after the
    // queue looked empty, and the timeout turns that race into a bounded
    // stall instead of a missed wakeup.
    done_cv_.wait_for(lock, std::chrono::milliseconds(1),
                      [this] { return pending_ == 0; });
    if (pending_ == 0) return;
  }
}

void TaskGroup::OnTaskDone() {
  std::lock_guard<std::mutex> lock(mu_);
  if (--pending_ == 0) done_cv_.notify_all();
}

}  // namespace gat
