#include "gat/engine/executor.h"

#include <chrono>
#include <utility>

namespace gat {

uint32_t ResolveThreadCount(uint32_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

Executor::Executor(uint32_t threads) : threads_(ResolveThreadCount(threads)) {
  workers_.reserve(threads_);
  for (uint32_t w = 0; w < threads_; ++w) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

Executor& Executor::Default() {
  static Executor executor(0);
  return executor;
}

void Executor::Enqueue(QueuedTask task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool Executor::RunOneTask(TaskGroup* only_from) {
  QueuedTask task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = queue_.begin();
    if (only_from != nullptr) {
      // Help only the caller's group: a waiter must never spend its
      // (possibly timed) wait executing a stranger's task. The queue is
      // fan-out-sized, so the scan is short.
      while (it != queue_.end() && it->group != only_from) ++it;
    }
    if (it == queue_.end()) return false;
    task = std::move(*it);
    queue_.erase(it);
  }
  task.fn();
  return true;
}

void Executor::WorkerLoop() {
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain the queue before honoring stop: a group destroyed right
      // before the executor must still see its tasks finish.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task.fn();
  }
}

void TaskGroup::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
  }
  executor_.Enqueue(Executor::QueuedTask{
      [this, fn = std::move(fn)] {
        fn();
        OnTaskDone();
      },
      this});
}

void TaskGroup::Wait() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (pending_ == 0) return;
    }
    // Help: run this group's queued tasks instead of parking. Only when
    // none are queued — the stragglers are mid-flight on other threads —
    // does this thread actually block.
    if (executor_.RunOneTask(this)) continue;
    std::unique_lock<std::mutex> lock(mu_);
    // Re-check under the lock, then sleep with a short lease: a task
    // running on another thread may enqueue helpable subtasks after the
    // queue looked empty, and the timeout turns that race into a bounded
    // stall instead of a missed wakeup.
    done_cv_.wait_for(lock, std::chrono::milliseconds(1),
                      [this] { return pending_ == 0; });
    if (pending_ == 0) return;
  }
}

void TaskGroup::OnTaskDone() {
  std::lock_guard<std::mutex> lock(mu_);
  if (--pending_ == 0) done_cv_.notify_all();
}

}  // namespace gat
