#ifndef GAT_ENGINE_QUERY_ENGINE_H_
#define GAT_ENGINE_QUERY_ENGINE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "gat/core/result_set.h"
#include "gat/core/searcher.h"
#include "gat/model/query.h"
#include "gat/search/search_stats.h"

namespace gat {

/// QueryEngine knobs.
struct EngineOptions {
  /// Worker threads in the pool. 0 = std::thread::hardware_concurrency().
  /// 1 runs batches inline on the caller thread (no pool is created).
  uint32_t threads = 0;
};

/// Outcome of one batch: answers in query order plus merged statistics.
struct BatchResult {
  /// results[i] answers queries[i] — ordering is deterministic and
  /// independent of the thread count and of work-stealing interleavings.
  std::vector<ResultList> results;

  /// Counters summed over all queries (merged from the per-thread slots).
  SearchStats totals;

  /// Per-worker partial sums, index = worker id. Diagnostic: shows how
  /// evenly the work-stealing queue spread the batch.
  std::vector<SearchStats> per_thread;

  /// Wall-clock of the whole batch (not the sum of per-query times).
  double wall_ms = 0.0;

  /// Workers that executed the batch.
  uint32_t threads_used = 1;
};

/// Executes batches of queries over one Searcher on a fixed-size thread
/// pool. The unified entry point for benches, examples, servers and tests:
/// single-threaded callers get the plain loop (`threads = 1`), concurrent
/// callers get work-stealing fan-out with identical results.
///
/// ## Threading contract
///
/// `Searcher::Search` is a const member on every implementation, and the
/// GAT/IL/RT/IRT searchers keep all per-query mutation inside a local
/// `State` object on the query's stack — the searcher, the index and the
/// dataset are never written after construction. The engine relies on
/// exactly that contract: N workers share one `const Searcher&` with no
/// synchronization. Anything reachable from a `Searcher` must stay
/// logically const during `Search` (no caches mutated through
/// `const_cast`/`mutable` without internal locking).
///
/// Determinism: every query is an independent task; results are written to
/// a pre-sized slot indexed by query position, and per-thread stats are
/// accumulated in per-worker slots merged only after the batch barrier —
/// lock-free by construction since no two workers ever touch the same
/// slot. Top-k answers are therefore bit-identical across thread counts.
class QueryEngine {
 public:
  /// Non-owning: `searcher` must outlive the engine.
  explicit QueryEngine(const Searcher& searcher, EngineOptions options = {});

  /// Owning variant for callers that build the searcher ad hoc.
  explicit QueryEngine(std::unique_ptr<Searcher> searcher,
                       EngineOptions options = {});

  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Runs a batch. Blocks until every query is answered. Thread-safe in
  /// the sense that concurrent calls are serialized on an internal mutex —
  /// one batch owns the pool at a time.
  BatchResult Run(const std::vector<Query>& queries, size_t k,
                  QueryKind kind) const;

  const Searcher& searcher() const { return searcher_; }
  uint32_t threads() const { return threads_; }

 private:
  struct Pool;

  std::unique_ptr<Searcher> owned_;  // may be null (non-owning ctor)
  const Searcher& searcher_;
  uint32_t threads_;
  std::unique_ptr<Pool> pool_;   // null when threads_ == 1
  mutable std::mutex run_mu_;    // serializes concurrent Run() calls
};

}  // namespace gat

#endif  // GAT_ENGINE_QUERY_ENGINE_H_
