#ifndef GAT_ENGINE_QUERY_ENGINE_H_
#define GAT_ENGINE_QUERY_ENGINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "gat/common/storage_tier.h"
#include "gat/core/result_set.h"
#include "gat/core/searcher.h"
#include "gat/engine/executor.h"
#include "gat/model/query.h"
#include "gat/search/search_stats.h"

namespace gat {

class PrefetchScheduler;  // gat/storage/prefetch.h; engine holds a pointer
class IoStager;           // gat/storage/prefetch.h; stage-then-search hook

/// Outcome of one query inside a batch. A deadline-exceeded query has
/// an empty result list — never partial answers.
enum class QueryStatus : uint8_t {
  kOk = 0,
  kDeadlineExceeded = 1,
};

/// QueryEngine knobs.
struct EngineOptions {
  /// Worker threads of the engine-owned executor. 0 =
  /// std::thread::hardware_concurrency(). 1 runs batches inline on the
  /// caller thread (no pool is created). Ignored when `executor` is set.
  uint32_t threads = 0;

  /// Share an existing executor instead of owning one (non-owning; must
  /// outlive the engine). The way a serving process runs query batches,
  /// shard fan-out and index rebuilds on one thread set.
  Executor* executor = nullptr;

  /// Warm the disk tier for each batch ahead of refinement (non-owning;
  /// must outlive the engine). With an executor the sweep is submitted
  /// as tasks *before* the batch's search tasks, overlapping prefetch
  /// I/O of later queries with the search of earlier ones; inline
  /// engines run it before the batch loop. nullptr = no prefetch.
  const PrefetchScheduler* prefetcher = nullptr;

  /// Stage-then-search over an async disk tier (non-owning; must
  /// outlive the engine). With an executor, each query's predicted cold
  /// blocks are staged first and the query *yields its executor slot*
  /// (`TaskGroup::Defer`) until they are resident — its search task
  /// re-enters the queue from the I/O completion, so cold-block waits
  /// stop pinning pool workers. Takes precedence over `prefetcher` for
  /// batch warming. Ignored on the inline (single-threaded) path,
  /// where there is no slot to yield and the demand path is already
  /// deterministic. nullptr = search tasks run immediately.
  const IoStager* stager = nullptr;
};

/// Block-cache activity observed across one batch (deltas of the
/// prefetcher's cache around `Run`). Diagnostic: when several batches
/// share one cache concurrently, their deltas interleave.
struct BatchStorageStats {
  /// False when the engine has no prefetcher or the prefetcher has no
  /// cache (simulated tier) — the other fields are then meaningless.
  bool present = false;
  uint32_t block_bytes = 0;
  uint64_t hits = 0;        ///< demand lookups served by the cache
  uint64_t misses = 0;      ///< demand lookups that did real block reads
  uint64_t evictions = 0;
  uint64_t prefetched = 0;  ///< blocks warmed by the prefetch sweep
  /// Live-reload activity around the batch: blocks purged because a
  /// retired mapping was unregistered, and mappings retired. Both stay
  /// 0 while no snapshot hot-swap overlaps the batch.
  uint64_t invalidated = 0;
  uint64_t files_retired = 0;
  /// Scan-resistant admission activity around the batch (both 0 under
  /// the default admit-all policy): publishes denied residency by a
  /// full shard, and admissions earned by a ghost-list re-reference.
  uint64_t admission_rejects = 0;
  uint64_t ghost_hits = 0;

  double HitRate() const { return CacheHitRate(hits, hits + misses); }
};

/// Wall-clock cost of one query as the engine observed it.
struct QueryLatency {
  /// Wall-clock of this query's `Search` call, including any per-query
  /// shard fan-out inside the searcher.
  double wall_ms = 0.0;

  /// Simulated disk reads on the query's critical path: equals the
  /// query's `disk_reads` for sequential searchers, the slowest parallel
  /// branch for fan-out searchers (SearchStats::CriticalDiskReads).
  uint64_t critical_disk_reads = 0;
};

/// Outcome of one batch: answers in query order plus merged statistics.
struct BatchResult {
  /// results[i] answers queries[i] — ordering is deterministic and
  /// independent of the thread count and of task interleavings.
  std::vector<ResultList> results;

  /// statuses[i] reports whether queries[i] completed or hit its
  /// deadline (in which case results[i] is empty).
  std::vector<QueryStatus> statuses;

  /// Number of queries in this batch with status kDeadlineExceeded.
  uint64_t deadline_exceeded = 0;

  /// latencies[i] is the per-query wall-clock/critical-path cost of
  /// queries[i] (the input of the bench protocol's p50/p95/p99 fields).
  std::vector<QueryLatency> latencies;

  /// Counters summed over all queries (merged from the per-task slots).
  SearchStats totals;

  /// Per-task partial sums, index = batch task slot. Diagnostic: shows
  /// how evenly the work-stealing queue spread the batch.
  std::vector<SearchStats> per_thread;

  /// Wall-clock of the whole batch (not the sum of per-query times).
  double wall_ms = 0.0;

  /// Engine parallelism the batch was submitted with.
  uint32_t threads_used = 1;

  /// Block-cache deltas around this batch (present only with a
  /// cache-backed prefetcher; see BatchStorageStats).
  BatchStorageStats storage;
};

/// Executes batches of queries over one Searcher as task groups on an
/// executor. The unified entry point for benches, examples, servers and
/// tests: single-threaded callers get the plain loop (`threads = 1`),
/// concurrent callers get work-stealing fan-out with identical results.
///
/// ## Threading contract
///
/// `Searcher::Search` is a const member on every implementation, and the
/// GAT/IL/RT/IRT searchers keep all per-query mutation inside a local
/// `State` object on the query's stack — the searcher, the index and the
/// dataset are never written after construction. The engine relies on
/// exactly that contract: N tasks share one `const Searcher&` with no
/// synchronization. Anything reachable from a `Searcher` must stay
/// logically const during `Search` (no caches mutated through
/// `const_cast`/`mutable` without internal locking).
///
/// ## Cross-batch pipelining
///
/// `Run` is safe to call concurrently from any number of threads with no
/// serialization: each call owns its batch-local state (result slots,
/// stats slots, work-stealing cursors) and submits its tasks as one
/// `TaskGroup`, so batches from concurrent callers interleave on the
/// executor instead of queueing behind a mutex. Per-batch results stay
/// ordered and bit-identical regardless of what else shares the pool.
///
/// Determinism: every query is an independent task; results are written
/// to a pre-sized slot indexed by query position, and per-task stats are
/// accumulated in per-slot accumulators merged only after the group
/// barrier — lock-free by construction since no two tasks ever touch the
/// same slot. Top-k answers are therefore bit-identical across thread
/// counts, executor sharing, and concurrent batches.
///
/// ## Deadlines and priority
///
/// `Run` accepts an optional `QueryContext`. Its deadline is enforced at
/// task boundaries: each query task checks expiry before starting its
/// `Search`, and the searcher (if fan-out-capable) re-checks at its own
/// boundaries. A query that expires at any boundary reports
/// `QueryStatus::kDeadlineExceeded` with an empty result list — the
/// batch never returns partial answers for it. The context's priority
/// class picks the executor queue the batch's tasks join (bulk yields
/// to interactive). Under a frozen virtual-time clock the set of
/// expired queries is a pure function of the schedule, so statuses and
/// `SearchStats::deadline_skips` stay bit-identical across thread
/// counts.
class QueryEngine {
 public:
  /// Non-owning: `searcher` must outlive the engine.
  explicit QueryEngine(const Searcher& searcher, EngineOptions options = {});

  /// Owning variant for callers that build the searcher ad hoc.
  explicit QueryEngine(std::unique_ptr<Searcher> searcher,
                       EngineOptions options = {});

  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Runs a batch. Blocks until every query is answered (or refused at
  /// a deadline boundary). Concurrent calls pipeline on the shared
  /// executor (see class comment). `context`, when given, must outlive
  /// the call; it carries the batch's deadline and priority class.
  BatchResult Run(const std::vector<Query>& queries, size_t k, QueryKind kind,
                  const QueryContext* context = nullptr) const;

  const Searcher& searcher() const { return searcher_; }
  uint32_t threads() const { return threads_; }

  /// The executor batches run on, or nullptr for the inline
  /// single-threaded path.
  Executor* executor() const { return executor_; }

 private:
  std::unique_ptr<Searcher> owned_;  // may be null (non-owning ctor)
  const Searcher& searcher_;
  uint32_t threads_;
  std::unique_ptr<Executor> owned_executor_;  // null when shared or inline
  Executor* executor_ = nullptr;              // null when threads_ == 1
  const PrefetchScheduler* prefetcher_ = nullptr;  // null = no prefetch
  const IoStager* stager_ = nullptr;               // null = no staging
};

}  // namespace gat

#endif  // GAT_ENGINE_QUERY_ENGINE_H_
