#ifndef GAT_ENGINE_PARALLEL_FOR_H_
#define GAT_ENGINE_PARALLEL_FOR_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace gat {

/// Runs `fn(i)` for every i in [0, count), fanning out over up to
/// `threads` std::threads (0 = hardware_concurrency) and blocking until
/// all iterations return.
///
/// This is the build-time counterpart of `QueryEngine`: the engine's pool
/// is a query-batch primitive (its `Run` is serialized on a mutex and its
/// workers only execute `Searcher::Search`), so construction-side
/// fan-outs — parallel shard builds, snapshot loads — use this helper
/// instead of borrowing an engine. Threads are spawned per call; do not
/// use it on a per-query hot path.
///
/// `fn` must be safe to call concurrently for distinct `i`; iterations
/// are claimed from an atomic cursor, so the assignment of iterations to
/// threads is nondeterministic but each runs exactly once.
inline void ParallelFor(uint32_t threads, size_t count,
                        const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw > 0 ? hw : 1;
  }
  if (threads > count) threads = static_cast<uint32_t>(count);
  if (threads == 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<size_t> next{0};
  auto worker = [&] {
    for (size_t i = next.fetch_add(1, std::memory_order_relaxed); i < count;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      fn(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (uint32_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
}

}  // namespace gat

#endif  // GAT_ENGINE_PARALLEL_FOR_H_
