#include "gat/engine/query_engine.h"

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>

#include "gat/common/check.h"
#include "gat/engine/work_queue.h"
#include "gat/util/stopwatch.h"

namespace gat {

namespace {

uint32_t ResolveThreads(uint32_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace

/// Fixed pool of workers parked on a condition variable between batches.
/// A batch is published as (job, epoch): workers run `job(worker_id)` once
/// per epoch and report back through `active`.
struct QueryEngine::Pool {
  explicit Pool(uint32_t num_workers) {
    workers.reserve(num_workers);
    for (uint32_t w = 0; w < num_workers; ++w) {
      workers.emplace_back([this, w] { WorkerLoop(w); });
    }
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mu);
      stop = true;
    }
    cv_work.notify_all();
    for (auto& t : workers) t.join();
  }

  /// Runs `fn(worker_id)` on every worker and blocks until all return.
  void RunBatch(const std::function<void(uint32_t)>& fn) {
    std::unique_lock<std::mutex> lock(mu);
    job = &fn;
    active = static_cast<uint32_t>(workers.size());
    ++epoch;
    cv_work.notify_all();
    cv_done.wait(lock, [this] { return active == 0; });
    job = nullptr;
  }

 private:
  void WorkerLoop(uint32_t worker_id) {
    uint64_t seen_epoch = 0;
    for (;;) {
      const std::function<void(uint32_t)>* my_job = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv_work.wait(lock, [&] { return stop || epoch != seen_epoch; });
        if (stop) return;
        seen_epoch = epoch;
        my_job = job;
      }
      (*my_job)(worker_id);
      {
        std::lock_guard<std::mutex> lock(mu);
        if (--active == 0) cv_done.notify_all();
      }
    }
  }

  std::vector<std::thread> workers;
  std::mutex mu;
  std::condition_variable cv_work;
  std::condition_variable cv_done;
  const std::function<void(uint32_t)>* job = nullptr;
  uint64_t epoch = 0;
  uint32_t active = 0;
  bool stop = false;
};

QueryEngine::QueryEngine(const Searcher& searcher, EngineOptions options)
    : searcher_(searcher), threads_(ResolveThreads(options.threads)) {
  if (threads_ > 1) pool_ = std::make_unique<Pool>(threads_);
}

QueryEngine::QueryEngine(std::unique_ptr<Searcher> searcher,
                         EngineOptions options)
    : owned_(std::move(searcher)),
      searcher_(*owned_),
      threads_(ResolveThreads(options.threads)) {
  GAT_CHECK(owned_ != nullptr);
  if (threads_ > 1) pool_ = std::make_unique<Pool>(threads_);
}

QueryEngine::~QueryEngine() = default;

BatchResult QueryEngine::Run(const std::vector<Query>& queries, size_t k,
                             QueryKind kind) const {
  std::lock_guard<std::mutex> run_lock(run_mu_);
  BatchResult batch;
  batch.threads_used = threads_;
  batch.results.resize(queries.size());
  batch.per_thread.assign(threads_, SearchStats{});
  Stopwatch timer;

  if (queries.empty()) {
    batch.wall_ms = timer.ElapsedMillis();
    return batch;
  }

  // Each worker writes only results[i] for the indices it claimed and only
  // its own per_thread slot, so the batch needs no synchronization beyond
  // the queue cursors and the completion barrier.
  WorkStealingQueue queue(queries.size(), threads_);
  auto worker_body = [&](uint32_t worker_id) {
    SearchStats& slot = batch.per_thread[worker_id];
    size_t idx = 0;
    while (queue.TryPop(worker_id, &idx)) {
      SearchStats per_query;
      batch.results[idx] = searcher_.Search(queries[idx], k, kind, &per_query);
      slot += per_query;
    }
  };

  if (pool_ == nullptr) {
    worker_body(0);
  } else {
    pool_->RunBatch(worker_body);
  }

  // Lock-free merge: workers are done (barrier above), each slot had a
  // single writer, summation is single-threaded.
  for (const SearchStats& s : batch.per_thread) batch.totals += s;
  batch.wall_ms = timer.ElapsedMillis();
  return batch;
}

}  // namespace gat
