#include "gat/engine/query_engine.h"

#include <algorithm>

#include "gat/common/check.h"
#include "gat/engine/work_queue.h"
#include "gat/storage/block_cache.h"
#include "gat/storage/prefetch.h"
#include "gat/util/stopwatch.h"

namespace gat {

namespace {

const Searcher& DerefSearcher(const std::unique_ptr<Searcher>& searcher) {
  GAT_CHECK(searcher != nullptr);
  return *searcher;
}

}  // namespace

QueryEngine::QueryEngine(const Searcher& searcher, EngineOptions options)
    : searcher_(searcher),
      prefetcher_(options.prefetcher),
      stager_(options.stager) {
  if (options.executor != nullptr) {
    executor_ = options.executor;
    threads_ = executor_->threads();
  } else {
    threads_ = ResolveThreadCount(options.threads);
    if (threads_ > 1) {
      owned_executor_ = std::make_unique<Executor>(threads_);
      executor_ = owned_executor_.get();
    }
  }
}

QueryEngine::QueryEngine(std::unique_ptr<Searcher> searcher,
                         EngineOptions options)
    : QueryEngine(DerefSearcher(searcher), options) {
  owned_ = std::move(searcher);
}

QueryEngine::~QueryEngine() = default;

BatchResult QueryEngine::Run(const std::vector<Query>& queries, size_t k,
                             QueryKind kind,
                             const QueryContext* context) const {
  BatchResult batch;
  batch.threads_used = threads_;
  batch.results.resize(queries.size());
  batch.latencies.resize(queries.size());
  batch.statuses.assign(queries.size(), QueryStatus::kOk);
  Stopwatch timer;

  if (queries.empty()) {
    batch.wall_ms = timer.ElapsedMillis();
    return batch;
  }

  // Storage observability: sample the stager's (else the prefetcher's)
  // cache around the batch so the result carries the hit/miss/prefetch
  // deltas this batch caused (interleaved when batches share the cache
  // concurrently).
  const BlockCache* cache =
      stager_ != nullptr
          ? stager_->cache()
          : (prefetcher_ != nullptr ? prefetcher_->cache() : nullptr);
  BlockCacheStats cache_before;
  if (cache != nullptr) cache_before = cache->Snapshot();

  // One task per slot, each draining the shared work-stealing queue. A
  // task writes only results[i]/latencies[i] for the indices it claimed
  // and only its own per_thread slot, so the batch needs no
  // synchronization beyond the queue cursors and the group barrier.
  const uint32_t fanout = static_cast<uint32_t>(
      std::min<size_t>(threads_, queries.size()));
  batch.per_thread.assign(fanout, SearchStats{});
  WorkStealingQueue queue(queries.size(), fanout);
  auto task_body = [&](uint32_t slot) {
    SearchStats& acc = batch.per_thread[slot];
    size_t idx = 0;
    while (queue.TryPop(slot, &idx)) {
      // Task boundary: a query whose deadline has already passed never
      // starts its Search — it reports kDeadlineExceeded with an empty
      // result list instead of burning the pool on a dead request.
      if (context != nullptr && context->Expired()) {
        batch.statuses[idx] = QueryStatus::kDeadlineExceeded;
        acc.deadline_skips += 1;
        continue;
      }
      Stopwatch query_timer;
      SearchStats per_query;
      batch.results[idx] =
          searcher_.Search(queries[idx], k, kind, &per_query, context);
      batch.latencies[idx].wall_ms = query_timer.ElapsedMillis();
      batch.latencies[idx].critical_disk_reads = per_query.CriticalDiskReads();
      // The searcher refusing any of its own task boundaries (shard
      // sweeps) also means deadline-exceeded — and it already returned
      // an empty list, never partial answers.
      if (per_query.deadline_skips > 0) {
        batch.statuses[idx] = QueryStatus::kDeadlineExceeded;
        batch.results[idx].clear();
      }
      acc += per_query;
    }
  };

  const bool expired_at_start = context != nullptr && context->Expired();
  if (executor_ == nullptr) {
    // Inline path: the prefetch sweep runs before the batch loop —
    // deterministic, so --threads 1 bench counters stay exact.
    if (prefetcher_ != nullptr && !expired_at_start) {
      prefetcher_->PrefetchBatch(queries);
    }
    task_body(0);
  } else if (stager_ != nullptr) {
    // Stage-then-search: every query is its own deferred task. Its
    // predicted cold blocks go to the async tier first, and the search
    // enters the executor queue only from the staging completion
    // (Deferred::Resume) — a cold query holds a *reserved group slot*
    // while its I/O runs instead of pinning a pool worker. A query
    // whose working set is resident resumes inline from Stage, so a
    // warm batch degenerates to plain per-query tasks. One per_thread
    // slot per query keeps the merge single-writer and deterministic.
    batch.per_thread.assign(queries.size(), SearchStats{});
    TaskGroup group(*executor_, TaskPriorityFor(context));
    for (size_t i = 0; i < queries.size(); ++i) {
      // Deadline at the staging boundary: no I/O staged on behalf of a
      // query that would be refused anyway.
      if (context != nullptr && context->Expired()) {
        batch.statuses[i] = QueryStatus::kDeadlineExceeded;
        batch.per_thread[i].deadline_skips += 1;
        continue;
      }
      // The stopwatch starts at stage submission, so a staged query's
      // latency includes its I/O wait — the number the stall metric is
      // judged against.
      Stopwatch query_timer;
      auto run_search = [this, &batch, &queries, i, k, kind, context,
                         query_timer] {
        SearchStats& acc = batch.per_thread[i];
        if (context != nullptr && context->Expired()) {
          batch.statuses[i] = QueryStatus::kDeadlineExceeded;
          acc.deadline_skips += 1;
          return;
        }
        SearchStats per_query;
        batch.results[i] =
            searcher_.Search(queries[i], k, kind, &per_query, context);
        batch.latencies[i].wall_ms = query_timer.ElapsedMillis();
        batch.latencies[i].critical_disk_reads =
            per_query.CriticalDiskReads();
        if (per_query.deadline_skips > 0) {
          batch.statuses[i] = QueryStatus::kDeadlineExceeded;
          batch.results[i].clear();
        }
        acc += per_query;
      };
      const TaskGroup::Deferred deferred = group.Defer();
      stager_->Stage(queries[i], [deferred, run_search] {
        deferred.Resume(run_search);
      });
    }
    group.Wait();
  } else {
    TaskGroup group(*executor_, TaskPriorityFor(context));
    // Prefetch tasks first: the FIFO queue hands them to the first free
    // workers, so they sweep ahead while the remaining workers start on
    // the search slots — I/O of later queries overlaps the search of
    // earlier ones. A batch already past its deadline skips the sweep:
    // no I/O on behalf of queries that will all be refused.
    if (prefetcher_ != nullptr && !expired_at_start) {
      prefetcher_->SubmitBatch(queries, group,
                               std::max<uint32_t>(1, threads_ / 4));
    }
    for (uint32_t slot = 0; slot < fanout; ++slot) {
      group.Submit([&task_body, slot] { task_body(slot); });
    }
    group.Wait();
  }

  // Lock-free merge: the group barrier is past, each slot had a single
  // writer, summation is single-threaded and in slot order.
  for (const SearchStats& s : batch.per_thread) batch.totals += s;
  for (const QueryStatus s : batch.statuses) {
    if (s == QueryStatus::kDeadlineExceeded) ++batch.deadline_exceeded;
  }
  if (cache != nullptr) {
    const BlockCacheStats after = cache->Snapshot();
    batch.storage.present = true;
    batch.storage.block_bytes = cache->block_bytes();
    batch.storage.hits = after.hits - cache_before.hits;
    batch.storage.misses = after.misses - cache_before.misses;
    batch.storage.evictions = after.evictions - cache_before.evictions;
    batch.storage.prefetched = after.prefetched - cache_before.prefetched;
    batch.storage.invalidated = after.invalidated - cache_before.invalidated;
    batch.storage.files_retired =
        after.files_retired - cache_before.files_retired;
    batch.storage.admission_rejects =
        after.admission_rejects - cache_before.admission_rejects;
    batch.storage.ghost_hits = after.ghost_hits - cache_before.ghost_hits;
    // Close the feedback loop: the batch's own demand-miss delta is the
    // signal that widens or shrinks the prefetcher's prediction ring.
    if (prefetcher_ != nullptr) {
      prefetcher_->ObserveBatch(batch.storage.misses, queries.size());
    }
  }
  batch.wall_ms = timer.ElapsedMillis();
  return batch;
}

}  // namespace gat
