#ifndef GAT_SHARD_INDEX_HANDLE_H_
#define GAT_SHARD_INDEX_HANDLE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>

#include "gat/index/gat_index.h"
#include "gat/storage/loaded_snapshot.h"

namespace gat {

/// One immutable serving revision of a shard: a `LoadedSnapshot` — the
/// index plus whatever owns its storage (a mapping + block-cached tier,
/// or a heap-built `GatIndex`) — stamped with an epoch. A revision is
/// reference-counted through `IndexHandle`: in-flight searches pin it,
/// a reload swaps the handle to a successor, and the retired revision
/// is destroyed by whoever drops the last reference — which is what
/// runs the `MappedDiskTier` destructor and purges the mapping's blocks
/// from the shared `BlockCache` only after its last reader drained.
struct ShardRevision {
  /// Owns the index and its storage together (the lifetime rule is the
  /// wrapper's whole point — see storage/loaded_snapshot.h).
  LoadedSnapshot snapshot;
  /// The serving index (`snapshot.index()`); never null.
  const GatIndex* index = nullptr;
  /// Monotonic per shard: 0 for the constructed generation, +1 per
  /// installed successor — stamped by `IndexHandle::Install` under the
  /// handle mutex, so it is strictly increasing even when reloads of
  /// one shard race. Lets tests and operators observe swaps.
  uint64_t epoch = 0;

  /// The mapped storage side when this revision serves out of a
  /// mapping; nullptr in heap-owned (stream) mode.
  const MappedSnapshot* mapped() const { return snapshot.mapped(); }

  /// Wraps a loaded snapshot; the handle must be non-empty.
  static std::shared_ptr<ShardRevision> Of(LoadedSnapshot snapshot) {
    auto rev = std::make_shared<ShardRevision>();
    rev->index = snapshot.index();
    rev->snapshot = std::move(snapshot);
    return rev;
  }

  static std::shared_ptr<ShardRevision> Of(
      std::unique_ptr<MappedSnapshot> snapshot) {
    return Of(LoadedSnapshot::FromMapped(std::move(snapshot)));
  }

  static std::shared_ptr<ShardRevision> Of(std::unique_ptr<GatIndex> index) {
    return Of(LoadedSnapshot::FromOwned(std::move(index)));
  }
};

/// A pinned, read-only view of one shard's serving index. RAII face of
/// the revision refcount: while a PinnedShard is alive, the revision it
/// names — index, mapping, disk tier — cannot be destroyed, no matter
/// how many `ReloadShard`s retire it underneath. Copyable (a copy is
/// another pin) and cheap to move; drop it to release the pin.
///
/// This is the only way `ShardedIndex` hands out per-shard indexes:
/// the old unpinned `shard_index()`-returns-a-bare-reference shape was
/// a use-after-free trap under concurrent reload and is gone.
class PinnedShard {
 public:
  PinnedShard() = default;
  explicit PinnedShard(std::shared_ptr<const ShardRevision> revision)
      : revision_(std::move(revision)) {}

  /// The pinned index. Valid while this (or any copy) is alive.
  const GatIndex& index() const { return *revision_->index; }
  const GatIndex& operator*() const { return *revision_->index; }
  const GatIndex* operator->() const { return revision_->index; }

  /// The revision's install epoch (0 = constructed generation).
  uint64_t epoch() const { return revision_->epoch; }

  /// The underlying revision, for callers that need the storage side
  /// (e.g. the prefetcher reading the mapped tier).
  const std::shared_ptr<const ShardRevision>& revision() const {
    return revision_;
  }

  explicit operator bool() const { return revision_ != nullptr; }

 private:
  std::shared_ptr<const ShardRevision> revision_;
};

/// The epoch-guarded swap point of one shard: a shared_ptr published
/// under a mutex. `Pin` is the read side (a search acquires the current
/// revision and holds it for the duration of its shard visit — two
/// uncontended mutex ops plus a refcount, nanoseconds against a
/// millisecond search); `Swap` atomically installs a successor and
/// returns the predecessor, whose destruction the last pinning reader
/// triggers. There is no reader registry and no quiescence wait: the
/// shared_ptr count *is* the epoch drain.
///
/// Thread-safety: all methods are safe against each other from any
/// number of threads.
class IndexHandle {
 public:
  IndexHandle() = default;
  IndexHandle(const IndexHandle&) = delete;
  IndexHandle& operator=(const IndexHandle&) = delete;

  /// The current revision, pinned: the revision (index, mapping, tier)
  /// stays alive at least until the returned pointer is dropped, even
  /// across any number of concurrent `Swap`s.
  std::shared_ptr<const ShardRevision> Pin() const {
    std::lock_guard<std::mutex> lock(mu_);
    return current_;
  }

  /// Installs `next` as the serving revision — stamping its epoch to
  /// predecessor + 1 (0 when there is no predecessor) inside the same
  /// critical section, so epochs stay strictly monotonic under racing
  /// installs — and returns the retired revision (which the caller
  /// usually just drops; in-flight pins keep it alive until they
  /// drain). `next` must not be shared yet: it becomes immutable here.
  std::shared_ptr<const ShardRevision> Install(
      std::shared_ptr<ShardRevision> next) {
    std::lock_guard<std::mutex> lock(mu_);
    next->epoch = current_ != nullptr ? current_->epoch + 1 : 0;
    std::shared_ptr<const ShardRevision> prev = std::move(current_);
    current_ = std::move(next);
    return prev;
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const ShardRevision> current_;
};

}  // namespace gat

#endif  // GAT_SHARD_INDEX_HANDLE_H_
