#include "gat/shard/sharded_index.h"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <memory>
#include <utility>

#include "gat/common/check.h"
#include "gat/engine/executor.h"
#include "gat/index/snapshot.h"
#include "gat/util/stopwatch.h"

namespace gat {

ShardedIndex::ShardedIndex(const Dataset& dataset, const GatConfig& config,
                           const ShardOptions& options)
    : num_shards_(options.num_shards),
      config_(config),
      handles_(options.num_shards) {
  GAT_CHECK(num_shards_ >= 1);
  Stopwatch timer;

  shard_datasets_ = dataset.PartitionRoundRobin(num_shards_);

  const bool use_snapshots = !options.snapshot_dir.empty();
  // The mmap tier *is* the snapshot file; there is nothing to map
  // without a directory to persist into.
  GAT_CHECK(!options.mmap_disk_tier || use_snapshots);
  if (options.mmap_disk_tier) {
    cache_ = std::make_unique<BlockCache>(options.cache_config);
  }
  if (use_snapshots) {
    std::error_code ec;  // best effort; a failed mkdir surfaces as a build
    std::filesystem::create_directories(options.snapshot_dir, ec);
  }

  std::atomic<uint32_t> loaded{0};
  auto install = [this](uint32_t shard,
                        std::shared_ptr<ShardRevision> revision) {
    handles_[shard].Install(std::move(revision));  // stamps epoch 0
  };
  auto build_shard = [&](uint32_t shard, Executor* executor) {
    const Dataset& shard_dataset = shard_datasets_[shard];
    // Binds each snapshot to this exact dataset cut: a stale file — even
    // of a same-sized dataset — fails the load and triggers a rebuild.
    // Only worth the dataset pass when a cache is in play.
    const uint32_t fingerprint =
        use_snapshots ? DatasetFingerprint(shard_dataset) : 0;
    const std::string path =
        use_snapshots ? SnapshotPath(options.snapshot_dir, shard, num_shards_)
                      : std::string();
    MappedSnapshotOptions mapped_options;
    mapped_options.expected = &config_;
    mapped_options.expected_fingerprint = fingerprint;
    mapped_options.executor = executor;
    mapped_options.cache = cache_.get();
    if (use_snapshots) {
      if (options.mmap_disk_tier) {
        auto snap = MappedSnapshot::Load(path, mapped_options);
        if (snap != nullptr) {
          install(shard, ShardRevision::Of(std::move(snap)));
          loaded.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      } else {
        auto index = LoadSnapshot(path, &config_, fingerprint, executor);
        if (index != nullptr) {
          install(shard, ShardRevision::Of(std::move(index)));
          loaded.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
    }
    auto built = std::make_unique<GatIndex>(shard_dataset, config_);
    if (use_snapshots) {
      const bool saved = SaveSnapshot(*built, path,
                                      fingerprint);  // cache priming
      if (saved && options.mmap_disk_tier) {
        // Cold mmap start: swap the just-built heap index for the
        // mapped serving form immediately, so even the first process
        // generation serves its disk tier from the file. Falls back to
        // the built index if the fresh file cannot be mapped.
        auto snap = MappedSnapshot::Load(path, mapped_options);
        if (snap != nullptr) {
          install(shard, ShardRevision::Of(std::move(snap)));
          return;
        }
      }
    }
    install(shard, ShardRevision::Of(std::move(built)));
  };

  // Builds and snapshot loads are tasks on the shared executor when the
  // caller provides one (a serving process rebuilds on the same pool
  // its queries run on); otherwise a construction-scoped executor fans
  // the shards out, and build_threads == 1 stays a plain inline loop.
  Executor* executor = options.executor;
  std::unique_ptr<Executor> scoped;
  if (executor == nullptr && options.build_threads != 1 && num_shards_ > 1) {
    const uint32_t threads =
        std::min(ResolveThreadCount(options.build_threads), num_shards_);
    scoped = std::make_unique<Executor>(threads);
    executor = scoped.get();
  }
  if (executor == nullptr) {
    for (uint32_t shard = 0; shard < num_shards_; ++shard) {
      build_shard(shard, nullptr);
    }
  } else {
    TaskGroup group(*executor);
    for (uint32_t shard = 0; shard < num_shards_; ++shard) {
      group.Submit([&build_shard, shard, executor] {
        build_shard(shard, executor);
      });
    }
    group.Wait();
  }

  loaded_from_snapshot_ = loaded.load();
  build_seconds_ = timer.ElapsedMillis() / 1000.0;
}

const Dataset& ShardedIndex::shard_dataset(uint32_t shard) const {
  GAT_CHECK(shard < num_shards_);
  return shard_datasets_[shard];
}

PinnedShard ShardedIndex::shard_index(uint32_t shard) const {
  GAT_CHECK(shard < num_shards_);
  return PinnedShard(handles_[shard].Pin());
}

std::shared_ptr<const ShardRevision> ShardedIndex::PinShard(
    uint32_t shard) const {
  GAT_CHECK(shard < num_shards_);
  return handles_[shard].Pin();
}

uint64_t ShardedIndex::shard_epoch(uint32_t shard) const {
  return PinShard(shard)->epoch;
}

bool ShardedIndex::ReloadShard(uint32_t shard,
                               const std::string& snapshot_path,
                               Executor* executor) {
  GAT_CHECK(shard < num_shards_);
  // Same gating as construction: the incoming snapshot must be built
  // under this index's config *and* over this exact shard dataset —
  // anything else (including a corrupt or truncated file) fails here,
  // before the serving path is touched.
  const uint32_t fingerprint = DatasetFingerprint(shard_datasets_[shard]);
  std::shared_ptr<ShardRevision> next;
  if (cache_ != nullptr) {
    MappedSnapshotOptions mapped_options;
    mapped_options.expected = &config_;
    mapped_options.expected_fingerprint = fingerprint;
    mapped_options.executor = executor;
    mapped_options.cache = cache_.get();
    auto snap = MappedSnapshot::Load(snapshot_path, mapped_options);
    if (snap != nullptr) next = ShardRevision::Of(std::move(snap));
  } else {
    auto index = LoadSnapshot(snapshot_path, &config_, fingerprint, executor);
    if (index != nullptr) next = ShardRevision::Of(std::move(index));
  }
  if (next == nullptr) {
    reloads_failed_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // The install is the only serving-path touch (it stamps the epoch to
  // predecessor + 1 under the handle mutex); the retired revision is
  // dropped here and destroyed — tier unregistered, blocks purged —
  // by whichever in-flight reader drains last.
  handles_[shard].Install(std::move(next));
  reloads_completed_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

uint32_t ShardedIndex::shards_mmap_served() const {
  uint32_t count = 0;
  for (uint32_t shard = 0; shard < num_shards_; ++shard) {
    if (handles_[shard].Pin()->mapped != nullptr) ++count;
  }
  return count;
}

bool ShardedIndex::SaveSnapshots(const std::string& dir) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  bool ok = true;
  for (uint32_t shard = 0; shard < num_shards_; ++shard) {
    const auto revision = PinShard(shard);
    ok = SaveSnapshot(*revision->index,
                      SnapshotPath(dir, shard, num_shards_),
                      DatasetFingerprint(shard_datasets_[shard])) &&
         ok;
  }
  return ok;
}

std::string ShardedIndex::SnapshotPath(const std::string& dir, uint32_t shard,
                                       uint32_t num_shards) {
  return dir + "/shard-" + std::to_string(shard) + "-of-" +
         std::to_string(num_shards) + ".gats";
}

GatIndex::MemoryBreakdown ShardedIndex::memory_breakdown() const {
  GatIndex::MemoryBreakdown total;
  for (uint32_t shard = 0; shard < num_shards_; ++shard) {
    const auto revision = PinShard(shard);
    const auto b = revision->index->memory_breakdown();
    total.hicl_memory += b.hicl_memory;
    total.hicl_disk += b.hicl_disk;
    total.itl_memory += b.itl_memory;
    total.tas_memory += b.tas_memory;
    total.apl_disk += b.apl_disk;
  }
  return total;
}

}  // namespace gat
