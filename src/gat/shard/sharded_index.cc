#include "gat/shard/sharded_index.h"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <memory>
#include <utility>

#include "gat/common/check.h"
#include "gat/engine/executor.h"
#include "gat/index/snapshot.h"
#include "gat/util/stopwatch.h"

namespace gat {

const Dataset& ShardGeneration::shard_dataset(uint32_t shard) const {
  GAT_CHECK(shard < num_shards_);
  return shard_datasets_[shard];
}

std::shared_ptr<const ShardRevision> ShardGeneration::PinShard(
    uint32_t shard) const {
  GAT_CHECK(shard < num_shards_);
  return handles_[shard].Pin();
}

uint64_t ShardGeneration::shard_epoch(uint32_t shard) const {
  return PinShard(shard)->epoch;
}

std::shared_ptr<ShardGeneration> ShardedIndex::BuildGeneration(
    const Dataset& dataset, uint32_t num_shards,
    const std::string& snapshot_dir, Executor* executor,
    uint32_t build_threads) const {
  GAT_CHECK(num_shards >= 1);
  auto gen = std::make_shared<ShardGeneration>();
  gen->num_shards_ = num_shards;
  gen->total_trajectories_ = dataset.size();
  gen->shard_datasets_ = dataset.PartitionRoundRobin(num_shards);
  gen->handles_ = std::make_unique<IndexHandle[]>(num_shards);

  const bool use_snapshots = !snapshot_dir.empty();
  // The mmap tier *is* the snapshot file; there is nothing to map
  // without a directory to persist into.
  GAT_CHECK(cache_ == nullptr || use_snapshots);
  if (use_snapshots) {
    std::error_code ec;  // best effort; a failed mkdir surfaces as a build
    std::filesystem::create_directories(snapshot_dir, ec);
  }

  std::atomic<uint32_t> loaded{0};
  auto install = [&gen](uint32_t shard,
                        std::shared_ptr<ShardRevision> revision) {
    gen->handles_[shard].Install(std::move(revision));  // stamps epoch 0
  };
  auto build_shard = [&](uint32_t shard, Executor* shard_executor) {
    const Dataset& shard_dataset = gen->shard_datasets_[shard];
    // Binds each snapshot to this exact dataset cut: a stale file — even
    // of a same-sized dataset — fails the load and triggers a rebuild.
    // Only worth the dataset pass when a cache is in play.
    const uint32_t fingerprint =
        use_snapshots ? DatasetFingerprint(shard_dataset) : 0;
    const std::string path =
        use_snapshots ? SnapshotPath(snapshot_dir, shard, num_shards)
                      : std::string();
    MappedSnapshotOptions mapped_options;
    mapped_options.expected = &config_;
    mapped_options.expected_fingerprint = fingerprint;
    mapped_options.executor = shard_executor;
    mapped_options.cache = cache_.get();
    if (use_snapshots) {
      if (cache_ != nullptr) {
        auto snap = LoadedSnapshot::LoadMapped(path, mapped_options);
        if (snap) {
          install(shard, ShardRevision::Of(std::move(snap)));
          loaded.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      } else {
        auto index =
            LoadSnapshot(path, &config_, fingerprint, shard_executor);
        if (index != nullptr) {
          install(shard, ShardRevision::Of(std::move(index)));
          loaded.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
    }
    auto built = std::make_unique<GatIndex>(shard_dataset, config_);
    if (use_snapshots) {
      const bool saved = SaveSnapshot(*built, path,
                                      fingerprint);  // cache priming
      if (saved && cache_ != nullptr) {
        // Cold mmap start: swap the just-built heap index for the
        // mapped serving form immediately, so even the first process
        // generation serves its disk tier from the file. Falls back to
        // the built index if the fresh file cannot be mapped.
        auto snap = LoadedSnapshot::LoadMapped(path, mapped_options);
        if (snap) {
          install(shard, ShardRevision::Of(std::move(snap)));
          return;
        }
      }
    }
    install(shard, ShardRevision::Of(std::move(built)));
  };

  // Builds and snapshot loads are tasks on the shared executor when the
  // caller provides one (a serving process rebuilds on the same pool
  // its queries run on); otherwise a construction-scoped executor fans
  // the shards out, and build_threads == 1 stays a plain inline loop.
  std::unique_ptr<Executor> scoped;
  if (executor == nullptr && build_threads != 1 && num_shards > 1) {
    const uint32_t threads =
        std::min(ResolveThreadCount(build_threads), num_shards);
    scoped = std::make_unique<Executor>(threads);
    executor = scoped.get();
  }
  if (executor == nullptr) {
    for (uint32_t shard = 0; shard < num_shards; ++shard) {
      build_shard(shard, nullptr);
    }
  } else {
    TaskGroup group(*executor);
    for (uint32_t shard = 0; shard < num_shards; ++shard) {
      group.Submit([&build_shard, shard, executor] {
        build_shard(shard, executor);
      });
    }
    group.Wait();
  }

  gen->loaded_from_snapshot_ = loaded.load();
  return gen;
}

ShardedIndex::ShardedIndex(const Dataset& dataset, const GatConfig& config,
                           const ShardOptions& options)
    : config_(config) {
  GAT_CHECK(options.num_shards >= 1);
  GAT_CHECK(!options.mmap_disk_tier || !options.snapshot_dir.empty());
  if (options.mmap_disk_tier) {
    cache_ = std::make_unique<BlockCache>(options.cache_config);
  }
  Stopwatch timer;
  auto gen =
      BuildGeneration(dataset, options.num_shards, options.snapshot_dir,
                      options.executor, options.build_threads);
  // No publish race: nothing can pin before the constructor returns.
  current_ = std::move(gen);
  build_seconds_ = timer.ElapsedMillis() / 1000.0;
}

std::shared_ptr<const ShardGeneration> ShardedIndex::PinGeneration() const {
  std::lock_guard<std::mutex> lock(gen_mu_);
  return current_;
}

const Dataset& ShardedIndex::shard_dataset(uint32_t shard) const {
  // The generation outlives the returned reference only while it stays
  // current; see the header note. The pin is dropped deliberately — the
  // datasets of the current generation are kept alive by `current_`.
  return PinGeneration()->shard_dataset(shard);
}

PinnedShard ShardedIndex::shard_index(uint32_t shard) const {
  return PinnedShard(PinGeneration()->PinShard(shard));
}

std::shared_ptr<const ShardRevision> ShardedIndex::PinShard(
    uint32_t shard) const {
  return PinGeneration()->PinShard(shard);
}

uint64_t ShardedIndex::shard_epoch(uint32_t shard) const {
  return PinGeneration()->shard_epoch(shard);
}

bool ShardedIndex::ReloadShard(uint32_t shard,
                               const std::string& snapshot_path,
                               Executor* executor) {
  // The handshake: pin the generation whose cut this reload targets.
  // Everything below — fingerprint, validation, the handle itself — is
  // against this pinned cut, and the install happens only if it is
  // still the published one.
  const std::shared_ptr<const ShardGeneration> gen = PinGeneration();
  GAT_CHECK(shard < gen->num_shards());
  // Same gating as construction: the incoming snapshot must be built
  // under this index's config *and* over this exact shard dataset —
  // anything else (including a corrupt or truncated file) fails here,
  // before the serving path is touched.
  const uint32_t fingerprint = DatasetFingerprint(gen->shard_dataset(shard));
  std::shared_ptr<ShardRevision> next;
  if (cache_ != nullptr) {
    MappedSnapshotOptions mapped_options;
    mapped_options.expected = &config_;
    mapped_options.expected_fingerprint = fingerprint;
    mapped_options.executor = executor;
    mapped_options.cache = cache_.get();
    auto snap = LoadedSnapshot::LoadMapped(snapshot_path, mapped_options);
    if (snap) next = ShardRevision::Of(std::move(snap));
  } else {
    auto index = LoadSnapshot(snapshot_path, &config_, fingerprint, executor);
    if (index != nullptr) next = ShardRevision::Of(std::move(index));
  }
  if (next == nullptr) {
    reloads_failed_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  {
    // Refuse to resurrect a retired cut: if a generation change landed
    // while the snapshot was loading, this file describes a dataset cut
    // that is no longer served, and installing it into the dead
    // generation's handle would waste the work at best (the next drain
    // destroys it) and confuse pinned readers' epoch observations at
    // worst. The check and the install need no shared critical section
    // with the generation swap beyond this one: publishing is also
    // under gen_mu_, so current_ cannot change between the comparison
    // and the Install below.
    std::lock_guard<std::mutex> lock(gen_mu_);
    if (current_ != gen) {
      reloads_failed_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    // The install is the only serving-path touch (it stamps the epoch
    // to predecessor + 1 under the handle mutex); the retired revision
    // is dropped here and destroyed — tier unregistered, blocks purged
    // — by whichever in-flight reader drains last.
    gen->handles_[shard].Install(std::move(next));
  }
  reloads_completed_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool ShardedIndex::ReloadGeneration(const Dataset& dataset,
                                    uint32_t num_shards,
                                    const std::string& snapshot_dir,
                                    Executor* executor) {
  if (num_shards < 1) return false;
  // mmap mode needs a directory to persist into, same as construction.
  if (cache_ != nullptr && snapshot_dir.empty()) return false;
  // Built entirely off the serving path; queries keep answering on the
  // published generation throughout.
  auto gen = BuildGeneration(dataset, num_shards, snapshot_dir, executor,
                             /*build_threads=*/0);
  std::shared_ptr<const ShardGeneration> retired;
  {
    std::lock_guard<std::mutex> lock(gen_mu_);
    gen->number_ = current_->number() + 1;
    retired = std::move(current_);
    current_ = std::move(gen);
  }
  // `retired` drops here; readers that pinned the old generation keep
  // it (datasets, handles, revisions) alive until they drain, at which
  // point its mapped revisions unregister from the shared cache.
  generations_published_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

uint32_t ShardedIndex::shards_mmap_served() const {
  const auto gen = PinGeneration();
  uint32_t count = 0;
  for (uint32_t shard = 0; shard < gen->num_shards(); ++shard) {
    if (gen->PinShard(shard)->mapped() != nullptr) ++count;
  }
  return count;
}

bool ShardedIndex::SaveSnapshots(const std::string& dir) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const auto gen = PinGeneration();
  bool ok = true;
  for (uint32_t shard = 0; shard < gen->num_shards(); ++shard) {
    const auto revision = gen->PinShard(shard);
    ok = SaveSnapshot(*revision->index,
                      SnapshotPath(dir, shard, gen->num_shards()),
                      DatasetFingerprint(gen->shard_dataset(shard))) &&
         ok;
  }
  return ok;
}

std::string ShardedIndex::SnapshotPath(const std::string& dir, uint32_t shard,
                                       uint32_t num_shards) {
  return dir + "/shard-" + std::to_string(shard) + "-of-" +
         std::to_string(num_shards) + ".gats";
}

GatIndex::MemoryBreakdown ShardedIndex::memory_breakdown() const {
  const auto gen = PinGeneration();
  GatIndex::MemoryBreakdown total;
  for (uint32_t shard = 0; shard < gen->num_shards(); ++shard) {
    const auto revision = gen->PinShard(shard);
    const auto b = revision->index->memory_breakdown();
    total.hicl_memory += b.hicl_memory;
    total.hicl_disk += b.hicl_disk;
    total.itl_memory += b.itl_memory;
    total.tas_memory += b.tas_memory;
    total.apl_disk += b.apl_disk;
  }
  return total;
}

}  // namespace gat
