#ifndef GAT_SHARD_SHARDED_SEARCHER_H_
#define GAT_SHARD_SHARDED_SEARCHER_H_

#include <memory>
#include <string>
#include <vector>

#include "gat/core/searcher.h"
#include "gat/search/gat_search.h"
#include "gat/shard/sharded_index.h"

namespace gat {

/// Top-k search over a ShardedIndex: fans each query out across every
/// shard's GatSearcher and merges the per-shard top-k heaps into one
/// global top-k.
///
/// The merge is exact and deterministic: each shard returns its true
/// top-k by (distance, local ID); local IDs are mapped to global IDs and
/// re-offered to a fresh `TopKCollector`, whose (distance, global ID)
/// tie-breaking is the same rule every single-index searcher uses. Since
/// distances depend only on (query, trajectory) — never on which shard a
/// trajectory landed in — the merged result is bit-identical to running
/// one GatSearcher over the unpartitioned dataset.
///
/// Thread-safety: implements the Searcher contract (const Search, all
/// per-query state on the caller's stack), so one instance can back a
/// whole QueryEngine pool. Shards are visited sequentially within one
/// `Search` call; parallelism comes from batching queries through the
/// engine, not from per-query thread fan-out (see docs/KNOWN_ISSUES.md).
class ShardedSearcher : public Searcher {
 public:
  /// `index` must outlive the searcher.
  explicit ShardedSearcher(const ShardedIndex& index,
                           const GatSearchParams& params = {});

  ResultList Search(const Query& query, size_t k, QueryKind kind,
                    SearchStats* stats = nullptr) const override;
  std::string name() const override { return "GAT-sharded"; }

  const ShardedIndex& index() const { return index_; }

 private:
  const ShardedIndex& index_;
  std::vector<std::unique_ptr<GatSearcher>> shard_searchers_;
};

}  // namespace gat

#endif  // GAT_SHARD_SHARDED_SEARCHER_H_
