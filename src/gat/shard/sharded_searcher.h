#ifndef GAT_SHARD_SHARDED_SEARCHER_H_
#define GAT_SHARD_SHARDED_SEARCHER_H_

#include <string>

#include "gat/core/searcher.h"
#include "gat/engine/executor.h"
#include "gat/search/gat_search.h"
#include "gat/shard/sharded_index.h"

namespace gat {

/// Top-k search over a ShardedIndex: fans each query out across every
/// shard's index and merges the per-shard top-k heaps into one global
/// top-k.
///
/// The merge is exact and deterministic: each shard returns its true
/// top-k by (distance, local ID); local IDs are mapped to global IDs and
/// re-offered to a fresh `TopKCollector`, whose (distance, global ID)
/// tie-breaking is the same rule every single-index searcher uses. Since
/// distances depend only on (query, trajectory) — never on which shard a
/// trajectory landed in — the merged result is bit-identical to running
/// one GatSearcher over the unpartitioned dataset.
///
/// ## Live reload
///
/// Every shard visit pins the shard's current serving revision
/// (`ShardedIndex::PinShard`) for exactly the duration of that visit
/// and runs a stack-local `GatSearcher` over the pinned index, so a
/// concurrent `ReloadShard` never invalidates an in-flight search: the
/// old revision (index, mapping, block-cached tier) stays alive until
/// its last reader drains. A swap to an *equivalent* snapshot is
/// therefore invisible in the results — answers stay bit-identical
/// through any number of mid-batch swaps. Each pin is counted in
/// `SearchStats::index_pins` (a deterministic `num_shards` per query).
///
/// ## Per-query shard parallelism
///
/// With an `Executor` (constructor argument), one `Search` call fans the
/// shards out as sibling tasks on the pool and the calling thread helps
/// drain them — so single-query p50/p95 latency drops as shards are
/// added, instead of paying the shards sequentially. Submission is
/// nest-safe: when the caller is itself an executor task (a QueryEngine
/// batch worker), the shard tasks join the same pool with no
/// thread-in-thread spawning. Each task writes one pre-sized slot and
/// the merge happens after the group barrier in shard order, so results
/// and stats are bit-identical to the sequential visit. Without an
/// executor, shards are visited sequentially inline (no pool, no
/// overhead) — the right mode for `num_shards == 1` or strictly
/// single-threaded processes.
///
/// ## Deadlines
///
/// When `context` carries a deadline, it is checked at every task
/// boundary: once on entry (an already-expired query touches no shard,
/// pins nothing, and submits nothing) and once at the start of each
/// shard visit. A query that expires mid-fan-out never returns partial
/// results — the merge is abandoned, the result list is empty, and
/// `SearchStats::deadline_skips` counts the refused sweeps. Shard tasks
/// inherit the request's priority class via the context.
///
/// Thread-safety: implements the Searcher contract (const Search, all
/// per-query state on the caller's stack), so one instance can back a
/// whole QueryEngine pool at any engine thread count — concurrently
/// with `ReloadShard` on the underlying index.
class ShardedSearcher : public Searcher {
 public:
  /// `index` must outlive the searcher; so must `executor` when given
  /// (non-owning). `executor == nullptr` visits shards sequentially.
  explicit ShardedSearcher(const ShardedIndex& index,
                           const GatSearchParams& params = {},
                           Executor* executor = nullptr);

  ResultList Search(const Query& query, size_t k, QueryKind kind,
                    SearchStats* stats = nullptr,
                    const QueryContext* context = nullptr) const override;
  std::string name() const override { return "GAT-sharded"; }

  /// The fan-out/merge core against one explicit generation: every pin,
  /// dataset access and global-ID mapping goes through `generation`, so
  /// the sweep is immune to a concurrent `ReloadGeneration` changing the
  /// published cut mid-query. `Search` is exactly `PinGeneration()` +
  /// this; the live-ingestion searcher calls it with the generation its
  /// pinned view names, so base results and delta results stay mutually
  /// consistent. Stats contract matches `Search` (stats are reset).
  ResultList SearchGeneration(const ShardGeneration& generation,
                              const Query& query, size_t k, QueryKind kind,
                              SearchStats* stats = nullptr,
                              const QueryContext* context = nullptr) const;

  const ShardedIndex& index() const { return index_; }
  Executor* executor() const { return executor_; }

 private:
  const ShardedIndex& index_;
  GatSearchParams params_;
  Executor* executor_;  // null = sequential shard visits
};

}  // namespace gat

#endif  // GAT_SHARD_SHARDED_SEARCHER_H_
