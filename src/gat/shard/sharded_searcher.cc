#include "gat/shard/sharded_searcher.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "gat/common/query_context.h"
#include "gat/util/top_k.h"

namespace gat {

ShardedSearcher::ShardedSearcher(const ShardedIndex& index,
                                 const GatSearchParams& params,
                                 Executor* executor)
    : index_(index), params_(params), executor_(executor) {}

ResultList ShardedSearcher::Search(const Query& query, size_t k,
                                   QueryKind kind, SearchStats* stats,
                                   const QueryContext* context) const {
  // One generation pin per query: the cut (shard count, datasets,
  // global-ID mapping) cannot shift under the fan-out, no matter how
  // many ReloadGeneration swaps land meanwhile.
  const auto generation = index_.PinGeneration();
  return SearchGeneration(*generation, query, k, kind, stats, context);
}

ResultList ShardedSearcher::SearchGeneration(const ShardGeneration& generation,
                                             const Query& query, size_t k,
                                             QueryKind kind,
                                             SearchStats* stats,
                                             const QueryContext* context) const {
  // Per-query stats, like every other Searcher: reset, then accumulate
  // the shard sweeps of *this* query.
  if (stats != nullptr) stats->Reset();
  const uint32_t num_shards = generation.num_shards();

  // Entry task boundary: an already-expired query touches no shard —
  // no pin, no task submission, no partial work.
  if (context != nullptr && context->Expired()) {
    if (stats != nullptr) stats->deadline_skips += 1;
    return {};
  }

  std::vector<ResultList> shard_results(num_shards);
  std::vector<SearchStats> shard_stats(stats != nullptr ? num_shards : 0);
  std::vector<char> expired_slots(num_shards, 0);
  auto search_shard = [&](uint32_t shard) {
    // Per-shard task boundary: a deadline that passed while this sweep
    // sat in the queue refuses the sweep before pinning anything.
    if (context != nullptr && context->Expired()) {
      expired_slots[shard] = 1;
      if (stats != nullptr) shard_stats[shard].deadline_skips = 1;
      return;
    }
    // Pin for exactly this visit: the revision (and under mmap serving,
    // its mapping and tier) cannot be retired under the search, however
    // many ReloadShard swaps land meanwhile. The searcher itself is
    // stack-local — revision-dependent state never outlives the pin.
    const auto revision = generation.PinShard(shard);
    const GatSearcher searcher(generation.shard_dataset(shard),
                               *revision->index, params_);
    shard_results[shard] =
        searcher.Search(query, k, kind,
                        stats != nullptr ? &shard_stats[shard] : nullptr,
                        context);
  };

  if (executor_ == nullptr || num_shards <= 1) {
    for (uint32_t shard = 0; shard < num_shards; ++shard) search_shard(shard);
  } else {
    // Sibling tasks on the shared pool; each writes only its pre-sized
    // slot, and the caller helps drain the group (nest-safe when this
    // Search already runs on an executor task). Bulk-class requests
    // queue behind interactive work via the priority seam.
    TaskGroup group(*executor_, TaskPriorityFor(context));
    for (uint32_t shard = 0; shard < num_shards; ++shard) {
      group.Submit([&search_shard, shard] { search_shard(shard); });
    }
    group.Wait();
  }

  uint32_t visited = 0;
  for (uint32_t shard = 0; shard < num_shards; ++shard) {
    if (!expired_slots[shard]) ++visited;
  }

  // Merge after the barrier, in shard order — the result and the stats
  // are bit-identical whether the shards ran inline or as tasks.
  TopKCollector merged(k);
  for (uint32_t shard = 0; shard < num_shards; ++shard) {
    for (const SearchResult& r : shard_results[shard]) {
      merged.Offer(generation.GlobalId(shard, r.trajectory), r.distance);
    }
  }
  if (stats != nullptr) {
    uint64_t slowest_branch = 0;
    uint64_t sum_of_branches = 0;
    for (const SearchStats& s : shard_stats) {
      *stats += s;
      slowest_branch = std::max(slowest_branch, s.CriticalDiskReads());
      sum_of_branches += s.CriticalDiskReads();
    }
    // One revision pin per shard visit actually made — deterministic,
    // and the engine-level signal that serving went through the epoch
    // guard. Refused sweeps pin nothing.
    stats->index_pins += visited;
    // Counters stay sums (deterministic totals); the disk critical path
    // models the overlap the fan-out actually buys: at most `threads`
    // branches are in flight at once, so the path is the slowest branch
    // or the pool-width-limited share of the total, whichever binds. A
    // one-worker executor degrades to the sequential sum, exactly like
    // running without an executor.
    if (executor_ != nullptr && num_shards > 1) {
      const uint64_t width = executor_->threads();
      const uint64_t bandwidth_bound = (sum_of_branches + width - 1) / width;
      stats->critical_disk_reads =
          std::max(slowest_branch, bandwidth_bound);
    }
  }
  // Never partial results: if any sweep was refused, the merged top-k
  // would silently miss that shard's candidates — report nothing.
  for (uint32_t shard = 0; shard < num_shards; ++shard) {
    if (expired_slots[shard]) return {};
  }
  return ToResultList(merged);
}

}  // namespace gat
