#include "gat/shard/sharded_searcher.h"

#include "gat/util/top_k.h"

namespace gat {

ShardedSearcher::ShardedSearcher(const ShardedIndex& index,
                                 const GatSearchParams& params)
    : index_(index) {
  shard_searchers_.reserve(index.num_shards());
  for (uint32_t shard = 0; shard < index.num_shards(); ++shard) {
    shard_searchers_.push_back(std::make_unique<GatSearcher>(
        index.shard_dataset(shard), index.shard_index(shard), params));
  }
}

ResultList ShardedSearcher::Search(const Query& query, size_t k,
                                   QueryKind kind, SearchStats* stats) const {
  // Per-query stats, like every other Searcher: reset, then accumulate
  // the shard sweeps of *this* query.
  if (stats != nullptr) stats->Reset();
  TopKCollector merged(k);
  for (uint32_t shard = 0; shard < index_.num_shards(); ++shard) {
    SearchStats shard_stats;
    const ResultList shard_results = shard_searchers_[shard]->Search(
        query, k, kind, stats != nullptr ? &shard_stats : nullptr);
    if (stats != nullptr) *stats += shard_stats;
    for (const SearchResult& r : shard_results) {
      merged.Offer(index_.GlobalId(shard, r.trajectory), r.distance);
    }
  }
  return ToResultList(merged);
}

}  // namespace gat
