#ifndef GAT_SHARD_SHARDED_INDEX_H_
#define GAT_SHARD_SHARDED_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gat/engine/executor.h"
#include "gat/index/gat_index.h"
#include "gat/model/dataset.h"
#include "gat/shard/index_handle.h"
#include "gat/storage/block_cache.h"
#include "gat/storage/mapped_snapshot.h"

namespace gat {

/// Construction knobs of a ShardedIndex.
struct ShardOptions {
  /// Number of partitions. 1 degenerates to a single GatIndex behind the
  /// sharded interface.
  uint32_t num_shards = 1;

  /// Parallelism of the per-shard builds / snapshot loads when no
  /// `executor` is shared: 0 = hardware_concurrency, 1 = build inline on
  /// the calling thread. Ignored when `executor` is set.
  uint32_t build_threads = 0;

  /// Run the shard builds and snapshot loads as tasks on an existing
  /// executor (non-owning; must outlive the constructor call) instead of
  /// a construction-scoped pool. Pass the executor that also serves
  /// queries and a rebuilding process pays for exactly one thread set.
  Executor* executor = nullptr;

  /// When non-empty, the construction first tries to load each shard's
  /// index from `<snapshot_dir>/shard-<i>-of-<N>.gats`; shards whose
  /// snapshot is missing, stale (dataset fingerprint mismatch) or built
  /// under a different GatConfig are rebuilt from the dataset and their
  /// snapshot rewritten — the directory is a self-priming cache.
  std::string snapshot_dir;

  /// Serve each shard's disk-resident components (APL rows, deep HICL
  /// levels) as zero-copy views into its mmap-ed snapshot, read through
  /// one `BlockCache` whose budget (`cache_config`) is shared across all
  /// shards. Requires `snapshot_dir`. Cold shards are built, snapshotted
  /// and immediately re-served from the mapping, so a restart never
  /// materializes the disk tier. Search results and logical disk-read
  /// counts are identical to the default in-memory serving.
  bool mmap_disk_tier = false;
  BlockCacheConfig cache_config;
};

/// Horizontal partitioning of one dataset into N independent GAT indexes
/// (the ROADMAP's sharding direction; the paper's index, Section IV, is
/// built per shard unchanged).
///
/// Trajectories are assigned round-robin by global ID — stable, so shard
/// s of N always holds the same trajectories for a given dataset — and
/// every shard keeps the parent's activity-ID space and bounding box
/// (`Dataset::PartitionRoundRobin`), which is what makes per-shard
/// results mergeable without translation. Local shard IDs map back via
/// `GlobalId(shard, local) = local * N + shard`.
///
/// Shards whose partition slice is empty (more shards than trajectories,
/// or an empty parent dataset) are first-class: they build a valid empty
/// GatIndex over the inherited frame, snapshot-cache like any other
/// shard, and answer every query with zero results.
///
/// ## Live reload
///
/// Each shard serves through an epoch-guarded `IndexHandle`:
/// `PinShard` returns the current `ShardRevision` pinned for the
/// caller's lifetime, and `ReloadShard` builds and validates an
/// incoming snapshot *off the serving path*, then swaps it in
/// atomically. In-flight searches finish on the revision they pinned;
/// the retired revision — index, mapping, block-cached tier — is
/// destroyed when its last reader drains, which unregisters its file
/// from the shared `BlockCache` and purges its blocks (no stale block
/// can ever be served to the successor mapping). A reload whose
/// incoming snapshot is missing, corrupt, mis-configured or stamped
/// with the wrong dataset fingerprint fails without touching the
/// serving revision.
///
/// Thread-safety: the query path (all const members) is safe against
/// any number of concurrent `ReloadShard` calls; `ReloadShard` itself
/// may run concurrently for different shards (concurrent reloads of
/// the *same* shard serialize only at the swap — last one wins, every
/// intermediate revision drains normally). The partition
/// (`shard_dataset`) never changes after construction.
class ShardedIndex {
 public:
  /// Partitions `dataset` and builds (or snapshot-loads) all shard
  /// indexes as sibling tasks on `options.executor` (or a
  /// construction-scoped executor of `options.build_threads` workers).
  /// `dataset` itself is copied into the shards and need not outlive the
  /// index.
  explicit ShardedIndex(const Dataset& dataset, const GatConfig& config = {},
                        const ShardOptions& options = {});

  uint32_t num_shards() const { return num_shards_; }
  const GatConfig& config() const { return config_; }

  const Dataset& shard_dataset(uint32_t shard) const;

  /// The shard's current serving index, pinned: the returned RAII view
  /// keeps the revision (index, mapping, disk tier) alive until it is
  /// dropped, across any number of concurrent `ReloadShard`s. There is
  /// no unpinned accessor — a bare reference was a use-after-free trap
  /// under reload. Pins must not outlive the ShardedIndex.
  PinnedShard shard_index(uint32_t shard) const;

  /// Pins the shard's current serving revision: index, mapping and disk
  /// tier stay valid until the returned pointer is dropped, across any
  /// number of reloads. Pins must not outlive the ShardedIndex (the
  /// shard datasets the searchers also need live there).
  std::shared_ptr<const ShardRevision> PinShard(uint32_t shard) const;

  /// Epoch of the shard's serving revision (0 at construction, +1 per
  /// completed reload).
  uint64_t shard_epoch(uint32_t shard) const;

  /// Hot-swaps `shard`'s serving index with the snapshot at
  /// `snapshot_path`, without draining queries: the incoming file is
  /// mapped (mmap mode) or deserialized (default mode) and fully
  /// CRC/structurally validated off the serving path — on `executor`
  /// when given, making the load multi-core — then swapped in
  /// atomically. In-flight searches drain on the old revision, whose
  /// blocks are purged from the shared cache on destruction. The
  /// incoming snapshot must match the construction `GatConfig` and the
  /// shard's dataset fingerprint (an *equivalent* snapshot keeps
  /// serving bit-identical through the swap). Returns false — leaving
  /// the old revision serving untouched — on any load failure.
  bool ReloadShard(uint32_t shard, const std::string& snapshot_path,
                   Executor* executor = nullptr);

  /// Completed / failed `ReloadShard` calls over this index's lifetime.
  uint64_t reloads_completed() const {
    return reloads_completed_.load(std::memory_order_relaxed);
  }
  uint64_t reloads_failed() const {
    return reloads_failed_.load(std::memory_order_relaxed);
  }

  /// Inverse of the round-robin partition: the parent-dataset ID of local
  /// trajectory `local` in `shard`.
  TrajectoryId GlobalId(uint32_t shard, TrajectoryId local) const {
    return local * num_shards_ + shard;
  }

  /// Writes every shard's snapshot into `dir` (created if missing).
  /// Returns false if any shard fails to save.
  bool SaveSnapshots(const std::string& dir) const;

  /// `<dir>/shard-<shard>-of-<num_shards>.gats`.
  static std::string SnapshotPath(const std::string& dir, uint32_t shard,
                                  uint32_t num_shards);

  /// How many shards were restored from snapshots (vs built) — 0 on a
  /// cold start, `num_shards()` on a fully warm one.
  uint32_t shards_loaded_from_snapshot() const { return loaded_from_snapshot_; }

  /// The shared block cache of the mmap disk tier, or nullptr when
  /// `ShardOptions::mmap_disk_tier` was off.
  const BlockCache* block_cache() const { return cache_.get(); }

  /// Shards currently served from a mapped snapshot (== num_shards() in
  /// mmap mode unless a shard fell back to RAM, e.g. unwritable dir).
  uint32_t shards_mmap_served() const;

  /// Wall-clock seconds of the whole construction (partition + parallel
  /// build/load).
  double build_seconds() const { return build_seconds_; }

  /// Sum of the per-shard memory breakdowns.
  GatIndex::MemoryBreakdown memory_breakdown() const;

 private:
  uint32_t num_shards_;
  GatConfig config_;
  std::vector<Dataset> shard_datasets_;
  /// Declared before the handles on purpose: every mapped revision's
  /// disk tier unregisters from this cache in its destructor, so the
  /// cache must outlive the last revision the handles drop.
  std::unique_ptr<BlockCache> cache_;  // shared budget, mmap mode only
  /// One epoch-guarded swap point per shard; every revision holds
  /// either a mapped snapshot (mmap mode) or a heap-owned index.
  std::vector<IndexHandle> handles_;
  uint32_t loaded_from_snapshot_ = 0;
  std::atomic<uint64_t> reloads_completed_{0};
  std::atomic<uint64_t> reloads_failed_{0};
  double build_seconds_ = 0.0;
};

}  // namespace gat

#endif  // GAT_SHARD_SHARDED_INDEX_H_
