#ifndef GAT_SHARD_SHARDED_INDEX_H_
#define GAT_SHARD_SHARDED_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gat/engine/executor.h"
#include "gat/index/gat_index.h"
#include "gat/model/dataset.h"
#include "gat/storage/block_cache.h"
#include "gat/storage/mapped_snapshot.h"

namespace gat {

/// Construction knobs of a ShardedIndex.
struct ShardOptions {
  /// Number of partitions. 1 degenerates to a single GatIndex behind the
  /// sharded interface.
  uint32_t num_shards = 1;

  /// Parallelism of the per-shard builds / snapshot loads when no
  /// `executor` is shared: 0 = hardware_concurrency, 1 = build inline on
  /// the calling thread. Ignored when `executor` is set.
  uint32_t build_threads = 0;

  /// Run the shard builds and snapshot loads as tasks on an existing
  /// executor (non-owning; must outlive the constructor call) instead of
  /// a construction-scoped pool. Pass the executor that also serves
  /// queries and a rebuilding process pays for exactly one thread set.
  Executor* executor = nullptr;

  /// When non-empty, the construction first tries to load each shard's
  /// index from `<snapshot_dir>/shard-<i>-of-<N>.gats`; shards whose
  /// snapshot is missing, stale (dataset fingerprint mismatch) or built
  /// under a different GatConfig are rebuilt from the dataset and their
  /// snapshot rewritten — the directory is a self-priming cache.
  std::string snapshot_dir;

  /// Serve each shard's disk-resident components (APL rows, deep HICL
  /// levels) as zero-copy views into its mmap-ed snapshot, read through
  /// one `BlockCache` whose budget (`cache_config`) is shared across all
  /// shards. Requires `snapshot_dir`. Cold shards are built, snapshotted
  /// and immediately re-served from the mapping, so a restart never
  /// materializes the disk tier. Search results and logical disk-read
  /// counts are identical to the default in-memory serving.
  bool mmap_disk_tier = false;
  BlockCacheConfig cache_config;
};

/// Horizontal partitioning of one dataset into N independent GAT indexes
/// (the ROADMAP's sharding direction; the paper's index, Section IV, is
/// built per shard unchanged).
///
/// Trajectories are assigned round-robin by global ID — stable, so shard
/// s of N always holds the same trajectories for a given dataset — and
/// every shard keeps the parent's activity-ID space and bounding box
/// (`Dataset::PartitionRoundRobin`), which is what makes per-shard
/// results mergeable without translation. Local shard IDs map back via
/// `GlobalId(shard, local) = local * N + shard`.
///
/// Shards whose partition slice is empty (more shards than trajectories,
/// or an empty parent dataset) are first-class: they build a valid empty
/// GatIndex over the inherited frame, snapshot-cache like any other
/// shard, and answer every query with zero results.
///
/// Thread-safety: immutable after the constructor returns, like GatIndex.
class ShardedIndex {
 public:
  /// Partitions `dataset` and builds (or snapshot-loads) all shard
  /// indexes as sibling tasks on `options.executor` (or a
  /// construction-scoped executor of `options.build_threads` workers).
  /// `dataset` itself is copied into the shards and need not outlive the
  /// index.
  explicit ShardedIndex(const Dataset& dataset, const GatConfig& config = {},
                        const ShardOptions& options = {});

  uint32_t num_shards() const { return num_shards_; }
  const GatConfig& config() const { return config_; }

  const Dataset& shard_dataset(uint32_t shard) const;
  const GatIndex& shard_index(uint32_t shard) const;

  /// Inverse of the round-robin partition: the parent-dataset ID of local
  /// trajectory `local` in `shard`.
  TrajectoryId GlobalId(uint32_t shard, TrajectoryId local) const {
    return local * num_shards_ + shard;
  }

  /// Writes every shard's snapshot into `dir` (created if missing).
  /// Returns false if any shard fails to save.
  bool SaveSnapshots(const std::string& dir) const;

  /// `<dir>/shard-<shard>-of-<num_shards>.gats`.
  static std::string SnapshotPath(const std::string& dir, uint32_t shard,
                                  uint32_t num_shards);

  /// How many shards were restored from snapshots (vs built) — 0 on a
  /// cold start, `num_shards()` on a fully warm one.
  uint32_t shards_loaded_from_snapshot() const { return loaded_from_snapshot_; }

  /// The shared block cache of the mmap disk tier, or nullptr when
  /// `ShardOptions::mmap_disk_tier` was off.
  const BlockCache* block_cache() const { return cache_.get(); }

  /// Shards currently served from a mapped snapshot (== num_shards() in
  /// mmap mode unless a shard fell back to RAM, e.g. unwritable dir).
  uint32_t shards_mmap_served() const;

  /// All shard indexes, in shard order — the handle a
  /// `PrefetchScheduler` is built from.
  std::vector<const GatIndex*> shard_index_views() const;

  /// Wall-clock seconds of the whole construction (partition + parallel
  /// build/load).
  double build_seconds() const { return build_seconds_; }

  /// Sum of the per-shard memory breakdowns.
  GatIndex::MemoryBreakdown memory_breakdown() const;

 private:
  uint32_t num_shards_;
  GatConfig config_;
  std::vector<Dataset> shard_datasets_;
  /// Exactly one of shard_indexes_[s] / mapped_[s] is set per shard:
  /// heap-owned index (default mode, or mmap fallback) vs mapped
  /// snapshot owning its index, mapping and tier.
  std::vector<std::unique_ptr<GatIndex>> shard_indexes_;
  std::vector<std::unique_ptr<MappedSnapshot>> mapped_;
  std::unique_ptr<BlockCache> cache_;  // shared budget, mmap mode only
  uint32_t loaded_from_snapshot_ = 0;
  double build_seconds_ = 0.0;
};

}  // namespace gat

#endif  // GAT_SHARD_SHARDED_INDEX_H_
