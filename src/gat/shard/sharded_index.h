#ifndef GAT_SHARD_SHARDED_INDEX_H_
#define GAT_SHARD_SHARDED_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "gat/engine/executor.h"
#include "gat/index/gat_index.h"
#include "gat/model/dataset.h"
#include "gat/shard/index_handle.h"
#include "gat/storage/block_cache.h"
#include "gat/storage/mapped_snapshot.h"

namespace gat {

/// Construction knobs of a ShardedIndex.
struct ShardOptions {
  /// Number of partitions. 1 degenerates to a single GatIndex behind the
  /// sharded interface.
  uint32_t num_shards = 1;

  /// Parallelism of the per-shard builds / snapshot loads when no
  /// `executor` is shared: 0 = hardware_concurrency, 1 = build inline on
  /// the calling thread. Ignored when `executor` is set.
  uint32_t build_threads = 0;

  /// Run the shard builds and snapshot loads as tasks on an existing
  /// executor (non-owning; must outlive the constructor call) instead of
  /// a construction-scoped pool. Pass the executor that also serves
  /// queries and a rebuilding process pays for exactly one thread set.
  Executor* executor = nullptr;

  /// When non-empty, the construction first tries to load each shard's
  /// index from `<snapshot_dir>/shard-<i>-of-<N>.gats`; shards whose
  /// snapshot is missing, stale (dataset fingerprint mismatch) or built
  /// under a different GatConfig are rebuilt from the dataset and their
  /// snapshot rewritten — the directory is a self-priming cache.
  std::string snapshot_dir;

  /// Serve each shard's disk-resident components (APL rows, deep HICL
  /// levels) as zero-copy views into its mmap-ed snapshot, read through
  /// one `BlockCache` whose budget (`cache_config`) is shared across all
  /// shards. Requires `snapshot_dir`. Cold shards are built, snapshotted
  /// and immediately re-served from the mapping, so a restart never
  /// materializes the disk tier. Search results and logical disk-read
  /// counts are identical to the default in-memory serving.
  bool mmap_disk_tier = false;
  BlockCacheConfig cache_config;
};

/// One shard cut of one dataset generation: the partition (per-shard
/// datasets), its shard count, and one epoch-guarded `IndexHandle` per
/// shard. The serving unit of `ShardedIndex` — published as a whole
/// through a reference-counted pointer, so a reader that pinned a
/// generation sees one consistent cut (shard count, datasets, global-ID
/// mapping, indexes) for its entire visit, no matter how many
/// generation changes land meanwhile.
///
/// The partition and metadata are immutable after publication; the
/// handles keep swapping *within* the generation (`ReloadShard`), which
/// is what makes an intra-generation snapshot swap invisible to pinned
/// readers.
class ShardGeneration {
 public:
  /// Monotonic dataset-generation number: 0 for the constructed cut,
  /// +1 per published successor.
  uint64_t number() const { return number_; }

  uint32_t num_shards() const { return num_shards_; }

  const Dataset& shard_dataset(uint32_t shard) const;

  /// Total trajectories across all shards — the size of the monolithic
  /// dataset this cut partitions (delta global IDs start here).
  size_t total_trajectories() const { return total_trajectories_; }

  /// Pins the shard's current serving revision within this generation.
  std::shared_ptr<const ShardRevision> PinShard(uint32_t shard) const;

  /// Epoch of the shard's serving revision (0 at generation build, +1
  /// per completed intra-generation reload).
  uint64_t shard_epoch(uint32_t shard) const;

  /// Inverse of the round-robin partition: the parent-dataset ID of
  /// local trajectory `local` in `shard` under THIS generation's cut.
  TrajectoryId GlobalId(uint32_t shard, TrajectoryId local) const {
    return local * num_shards_ + shard;
  }

  /// How many shards were restored from snapshots when this generation
  /// was built (vs built from the dataset).
  uint32_t shards_loaded_from_snapshot() const { return loaded_from_snapshot_; }

 private:
  friend class ShardedIndex;

  uint64_t number_ = 0;
  uint32_t num_shards_ = 1;
  std::vector<Dataset> shard_datasets_;
  /// One epoch-guarded swap point per shard; every revision holds a
  /// `LoadedSnapshot` (mapped, or heap-owned). IndexHandle is
  /// internally synchronized, so the array can be reached through the
  /// otherwise-immutable generation.
  std::unique_ptr<IndexHandle[]> handles_;
  size_t total_trajectories_ = 0;
  uint32_t loaded_from_snapshot_ = 0;
};

/// Horizontal partitioning of one dataset into N independent GAT indexes
/// (the ROADMAP's sharding direction; the paper's index, Section IV, is
/// built per shard unchanged).
///
/// Trajectories are assigned round-robin by global ID — stable, so shard
/// s of N always holds the same trajectories for a given dataset — and
/// every shard keeps the parent's activity-ID space and bounding box
/// (`Dataset::PartitionRoundRobin`), which is what makes per-shard
/// results mergeable without translation. Local shard IDs map back via
/// `GlobalId(shard, local) = local * N + shard`.
///
/// Shards whose partition slice is empty (more shards than trajectories,
/// or an empty parent dataset) are first-class: they build a valid empty
/// GatIndex over the inherited frame, snapshot-cache like any other
/// shard, and answer every query with zero results.
///
/// ## Generations
///
/// The serving state — shard count, partition, per-shard handles — is
/// one published `ShardGeneration`. `PinGeneration` is the read side:
/// a searcher pins the current generation once per query and uses its
/// accessors throughout, so shard count and global-ID mapping cannot
/// shift under a single query's feet. Two write paths exist:
///
///  * `ReloadShard` swaps ONE shard's snapshot within the current
///    generation (same cut, same dataset — the rolling re-map). Its
///    fingerprint gate is a *generation handshake*: the incoming file
///    must match the pinned generation's shard dataset, and the install
///    is refused if a generation change retired that cut while the
///    snapshot was loading.
///  * `ReloadGeneration` publishes a whole new cut — typically a new
///    dataset generation (live ingestion's delta compacted in) and
///    possibly a different shard count, which subsumes shard
///    rebalancing. The new generation is partitioned, built or
///    snapshot-loaded entirely off the serving path, then swapped in
///    atomically; readers that pinned the old generation drain on it,
///    and its retirement purges its mappings' blocks from the shared
///    cache exactly like a shard reload does.
///
/// Thread-safety: the query path (all const members) is safe against
/// any number of concurrent `ReloadShard` / `ReloadGeneration` calls;
/// writers may run concurrently with each other (they serialize at the
/// publish points).
class ShardedIndex {
 public:
  /// Partitions `dataset` and builds (or snapshot-loads) all shard
  /// indexes as sibling tasks on `options.executor` (or a
  /// construction-scoped executor of `options.build_threads` workers).
  /// `dataset` itself is copied into the shards and need not outlive the
  /// index.
  explicit ShardedIndex(const Dataset& dataset, const GatConfig& config = {},
                        const ShardOptions& options = {});

  /// Pins the current generation: cut, datasets, handles and global-ID
  /// mapping stay valid (and mutually consistent) until the pointer is
  /// dropped, across any number of generation changes. The pin itself
  /// is two uncontended mutex ops + a refcount.
  std::shared_ptr<const ShardGeneration> PinGeneration() const;

  /// Shard count of the current generation. Prefer PinGeneration when
  /// more than one call must agree on the cut.
  uint32_t num_shards() const { return PinGeneration()->num_shards(); }

  /// Dataset-generation number of the current generation.
  uint64_t generation_number() const { return PinGeneration()->number(); }

  const GatConfig& config() const { return config_; }

  /// Current generation's shard dataset. The reference is valid while
  /// that generation lives; callers racing a `ReloadGeneration` must
  /// hold `PinGeneration()` and use its accessor instead.
  const Dataset& shard_dataset(uint32_t shard) const;

  /// The shard's current serving index, pinned: the returned RAII view
  /// keeps the revision (index, mapping, disk tier) alive until it is
  /// dropped, across any number of concurrent `ReloadShard`s. There is
  /// no unpinned accessor — a bare reference was a use-after-free trap
  /// under reload. Pins must not outlive the ShardedIndex.
  PinnedShard shard_index(uint32_t shard) const;

  /// Pins the shard's current serving revision: index, mapping and disk
  /// tier stay valid until the returned pointer is dropped, across any
  /// number of reloads. Pins must not outlive the ShardedIndex (the
  /// shard datasets the searchers also need live there).
  std::shared_ptr<const ShardRevision> PinShard(uint32_t shard) const;

  /// Epoch of the shard's serving revision (0 at construction, +1 per
  /// completed reload) in the current generation.
  uint64_t shard_epoch(uint32_t shard) const;

  /// Hot-swaps `shard`'s serving index with the snapshot at
  /// `snapshot_path`, without draining queries: the incoming file is
  /// mapped (mmap mode) or deserialized (default mode) and fully
  /// CRC/structurally validated off the serving path — on `executor`
  /// when given, making the load multi-core — then swapped in
  /// atomically. In-flight searches drain on the old revision, whose
  /// blocks are purged from the shared cache on destruction.
  ///
  /// The gate is a generation handshake: the incoming snapshot must
  /// match the construction `GatConfig` and the *pinned* generation's
  /// shard-dataset fingerprint, and the install is refused when a
  /// `ReloadGeneration` retired that cut while the file was loading —
  /// a reload can never resurrect a shard of a dead generation.
  /// Returns false — leaving serving untouched — on any failure.
  bool ReloadShard(uint32_t shard, const std::string& snapshot_path,
                   Executor* executor = nullptr);

  /// Publishes a new generation: partitions `dataset` into `num_shards`
  /// shards, builds or snapshot-loads them entirely off the serving
  /// path (under `snapshot_dir` when non-empty — use a FRESH directory
  /// per generation: writing over a snapshot file that an older
  /// generation still maps would corrupt it under its readers), then
  /// atomically swaps the published cut. Queries keep answering on
  /// whichever generation they pinned; the retired generation is
  /// destroyed — mappings unmapped, cache blocks purged — when its last
  /// reader drains. The new cut may change the shard count (shard
  /// rebalancing is just a generation change with the same dataset).
  ///
  /// In mmap mode `snapshot_dir` must be non-empty, like construction.
  /// Returns false (serving untouched) on invalid arguments.
  bool ReloadGeneration(const Dataset& dataset, uint32_t num_shards,
                        const std::string& snapshot_dir = std::string(),
                        Executor* executor = nullptr);

  /// Completed / failed `ReloadShard` calls over this index's lifetime.
  uint64_t reloads_completed() const {
    return reloads_completed_.load(std::memory_order_relaxed);
  }
  uint64_t reloads_failed() const {
    return reloads_failed_.load(std::memory_order_relaxed);
  }

  /// `ReloadGeneration` publications over this index's lifetime.
  uint64_t generations_published() const {
    return generations_published_.load(std::memory_order_relaxed);
  }

  /// Inverse of the round-robin partition under the current generation.
  /// Within one query, map IDs through the pinned generation instead.
  TrajectoryId GlobalId(uint32_t shard, TrajectoryId local) const {
    return PinGeneration()->GlobalId(shard, local);
  }

  /// Writes every shard's snapshot into `dir` (created if missing).
  /// Returns false if any shard fails to save.
  bool SaveSnapshots(const std::string& dir) const;

  /// `<dir>/shard-<shard>-of-<num_shards>.gats`.
  static std::string SnapshotPath(const std::string& dir, uint32_t shard,
                                  uint32_t num_shards);

  /// How many shards of the current generation were restored from
  /// snapshots (vs built) — 0 on a cold start, `num_shards()` on a
  /// fully warm one.
  uint32_t shards_loaded_from_snapshot() const {
    return PinGeneration()->shards_loaded_from_snapshot();
  }

  /// The shared block cache of the mmap disk tier, or nullptr when
  /// `ShardOptions::mmap_disk_tier` was off. One budget across every
  /// shard of every generation.
  const BlockCache* block_cache() const { return cache_.get(); }

  /// Shards currently served from a mapped snapshot (== num_shards() in
  /// mmap mode unless a shard fell back to RAM, e.g. unwritable dir).
  uint32_t shards_mmap_served() const;

  /// Wall-clock seconds of the whole construction (partition + parallel
  /// build/load).
  double build_seconds() const { return build_seconds_; }

  /// Sum of the per-shard memory breakdowns of the current generation.
  GatIndex::MemoryBreakdown memory_breakdown() const;

 private:
  /// Partition + parallel build/load of one generation (number left 0;
  /// the publisher stamps it).
  std::shared_ptr<ShardGeneration> BuildGeneration(
      const Dataset& dataset, uint32_t num_shards,
      const std::string& snapshot_dir, Executor* executor,
      uint32_t build_threads) const;

  GatConfig config_;
  /// Declared before the published generation on purpose: every mapped
  /// revision's disk tier unregisters from this cache in its
  /// destructor, so the cache must outlive the last revision of the
  /// last generation.
  std::unique_ptr<BlockCache> cache_;  // shared budget, mmap mode only
  mutable std::mutex gen_mu_;
  std::shared_ptr<const ShardGeneration> current_;
  std::atomic<uint64_t> reloads_completed_{0};
  std::atomic<uint64_t> reloads_failed_{0};
  std::atomic<uint64_t> generations_published_{0};
  double build_seconds_ = 0.0;
};

}  // namespace gat

#endif  // GAT_SHARD_SHARDED_INDEX_H_
