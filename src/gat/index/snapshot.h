#ifndef GAT_INDEX_SNAPSHOT_H_
#define GAT_INDEX_SNAPSHOT_H_

#include <memory>
#include <string>

#include "gat/engine/executor.h"
#include "gat/index/gat_index.h"

namespace gat {

/// GAT index persistence.
///
/// A snapshot is a versioned binary image of a built `GatIndex` ("GATS"
/// magic, version 1): magic + version + payload CRC32, then the
/// `GatConfig`, the padded grid rect, and one tagged section per
/// component — HICL, ITL, TAS, APL. A loaded index answers top-k queries
/// bit-identically to the freshly built index it was saved from (the
/// grid rect is restored without re-padding and every posting list
/// byte-for-byte, so candidate retrieval, pruning and refinement all
/// replay exactly).
///
/// Corruption cannot load as a subtly different index: the CRC rejects
/// any bit damage, and structural validation (sorted lists, offset
/// tables, cell codes within 4^level, ITL trajectory IDs within the
/// TAS/APL row count) independently bounds every *intra-index* reference
/// even for a forged checksum. APL point indices are the exception: they
/// index into the paired dataset's trajectories, which the snapshot does
/// not contain, so they are only as valid as the *pairing*. That is what
/// the dataset fingerprint guards: pass `DatasetFingerprint(dataset)` at
/// save and load time (as ShardedIndex does) and a snapshot of any other
/// dataset refuses to load. Callers that skip the fingerprint (0) own
/// the pairing contract themselves — serving a snapshot against the
/// wrong dataset can mis-answer or read out of bounds at query time.
///
/// Conventions follow gat/model/serialization.h: no exceptions; functions
/// return false / nullptr on I/O or format errors.

/// Checksum of a finalized dataset's full content (trajectory points and
/// activity IDs), for snapshot pairing. Never returns 0 (0 means "not
/// checked" in the snapshot API). O(dataset); ~milliseconds at bench
/// scale, far below an index build.
uint32_t DatasetFingerprint(const Dataset& dataset);

/// Writes a snapshot of `index` to `path`, stamping `dataset_fingerprint`
/// (0 = unknown). Returns false on I/O errors.
bool SaveSnapshot(const GatIndex& index, const std::string& path,
                  uint32_t dataset_fingerprint = 0);

/// Loads a snapshot. When `expected` is non-null, the stored `GatConfig`
/// must equal `*expected`; when `expected_fingerprint` is non-zero and
/// the snapshot was stamped (non-zero), the fingerprints must match —
/// together these refuse snapshots built under different index
/// parameters or over a different dataset. The returned index's
/// `build_seconds()` reports the load time. Returns nullptr on any
/// error.
///
/// `executor` (optional, non-owning) fans the structural validation of
/// the big HICL/APL sections out as tasks — the warm-start accelerator
/// for callers that already run a pool, e.g. `ShardedIndex` restoring
/// every shard on the serving executor. The accept/reject decision is
/// identical with or without it.
std::unique_ptr<GatIndex> LoadSnapshot(const std::string& path,
                                       const GatConfig* expected = nullptr,
                                       uint32_t expected_fingerprint = 0,
                                       Executor* executor = nullptr);

}  // namespace gat

#endif  // GAT_INDEX_SNAPSHOT_H_
