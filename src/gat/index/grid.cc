#include "gat/index/grid.h"

#include <algorithm>
#include <cmath>

namespace gat {

namespace {
// Relative padding so points on the max border fall into the last cell.
constexpr double kBorderPad = 1e-9;
}  // namespace

GridGeometry::GridGeometry(const Rect& space, int depth)
    : space_(space), depth_(depth) {
  GAT_CHECK(depth >= 1 && depth <= 12);
  GAT_CHECK(!space.IsEmpty());
  // Degenerate extents (all points on one line) still need positive cell
  // sizes.
  const double min_extent = 1e-6;
  if (space_.Width() < min_extent) space_.max.x = space_.min.x + min_extent;
  if (space_.Height() < min_extent) space_.max.y = space_.min.y + min_extent;
  space_.max.x += space_.Width() * kBorderPad;
  space_.max.y += space_.Height() * kBorderPad;
  const double axis = static_cast<double>(CellsPerAxis(depth_));
  cell_width_leaf_ = space_.Width() / axis;
  cell_height_leaf_ = space_.Height() / axis;
}

GridGeometry GridGeometry::Restore(const Rect& padded_space, int depth) {
  GAT_CHECK(depth >= 1 && depth <= 12);
  GAT_CHECK(padded_space.Width() > 0.0 && padded_space.Height() > 0.0);
  GridGeometry g;
  g.space_ = padded_space;
  g.depth_ = depth;
  // Same expressions as the constructor, on the identical (already padded)
  // rect — the cell sizes come out bit-identical.
  const double axis = static_cast<double>(g.CellsPerAxis(depth));
  g.cell_width_leaf_ = g.space_.Width() / axis;
  g.cell_height_leaf_ = g.space_.Height() / axis;
  return g;
}

uint32_t GridGeometry::LeafCode(const Point& p) const {
  const uint32_t axis = CellsPerAxis(depth_);
  auto clamp_coord = [axis](double v) {
    if (v < 0.0) return 0u;
    if (v >= static_cast<double>(axis)) return axis - 1;
    return static_cast<uint32_t>(v);
  };
  const uint32_t col = clamp_coord((p.x - space_.min.x) / cell_width_leaf_);
  const uint32_t row = clamp_coord((p.y - space_.min.y) / cell_height_leaf_);
  return zorder::Encode(col, row);
}

Rect GridGeometry::CellRect(int level, uint32_t code) const {
  GAT_DCHECK(level >= 1 && level <= depth_);
  GAT_DCHECK(code < CellCount(level));
  const uint32_t col = zorder::DecodeCol(code);
  const uint32_t row = zorder::DecodeRow(code);
  const double axis = static_cast<double>(CellsPerAxis(level));
  const double w = space_.Width() / axis;
  const double h = space_.Height() / axis;
  Rect r;
  r.min = Point{space_.min.x + col * w, space_.min.y + row * h};
  r.max = Point{r.min.x + w, r.min.y + h};
  return r;
}

double GridGeometry::MinDistToCell(const Point& p, int level,
                                   uint32_t code) const {
  return MinDist(p, CellRect(level, code));
}

}  // namespace gat
