#include "gat/index/itl.h"

#include <algorithm>

namespace gat {

Itl::Itl(Builder builder) {
  cells_.reserve(builder.size());
  for (auto& [code, acts] : builder) {
    CellPostings postings;
    postings.activities.reserve(acts.size());
    for (const auto& [a, _] : acts) postings.activities.push_back(a);
    std::sort(postings.activities.begin(), postings.activities.end());
    postings.offsets.reserve(postings.activities.size() + 1);
    postings.offsets.push_back(0);
    for (ActivityId a : postings.activities) {
      auto& trajs = acts[a];
      std::sort(trajs.begin(), trajs.end());
      trajs.erase(std::unique(trajs.begin(), trajs.end()), trajs.end());
      postings.trajectories.insert(postings.trajectories.end(), trajs.begin(),
                                   trajs.end());
      postings.offsets.push_back(
          static_cast<uint32_t>(postings.trajectories.size()));
    }
    memory_bytes_ += postings.activities.size() * sizeof(ActivityId) +
                     postings.offsets.size() * sizeof(uint32_t) +
                     postings.trajectories.size() * sizeof(TrajectoryId) +
                     sizeof(uint32_t);  // cell key
    cells_.emplace(code, std::move(postings));
  }
}

const Itl::CellPostings* Itl::Find(uint32_t leaf_code) const {
  auto it = cells_.find(leaf_code);
  return it == cells_.end() ? nullptr : &it->second;
}

std::span<const TrajectoryId> Itl::Trajectories(uint32_t leaf_code,
                                                ActivityId activity) const {
  const CellPostings* cell = Find(leaf_code);
  if (cell == nullptr) return {};
  const auto it = std::lower_bound(cell->activities.begin(),
                                   cell->activities.end(), activity);
  if (it == cell->activities.end() || *it != activity) return {};
  const size_t idx = static_cast<size_t>(it - cell->activities.begin());
  return {cell->trajectories.data() + cell->offsets[idx],
          cell->trajectories.data() + cell->offsets[idx + 1]};
}

std::span<const ActivityId> Itl::ActivitiesIn(uint32_t leaf_code) const {
  const CellPostings* cell = Find(leaf_code);
  if (cell == nullptr) return {};
  return {cell->activities.data(),
          cell->activities.data() + cell->activities.size()};
}

}  // namespace gat
