#ifndef GAT_INDEX_GRID_H_
#define GAT_INDEX_GRID_H_

#include <cstdint>

#include "gat/common/check.h"
#include "gat/geo/point.h"
#include "gat/geo/rect.h"
#include "gat/geo/zorder.h"

namespace gat {

/// The hierarchical quad grid underlying GAT (Section IV).
///
/// The spatial region is divided into 2^d x 2^d leaf cells (the d-Grid);
/// coarser grids (d-1, ..., 1) are formed by merging 2x2 blocks. A cell is
/// addressed by (level, code) where `code` is its Morton number within its
/// level; the level-l grid has 4^l cells. Level l's cell `c` has children
/// 4c..4c+3 at level l+1 — the space-filling-curve numbering of the paper.
class GridGeometry {
 public:
  /// `depth` is the paper's d (1..12). `space` must be non-empty; it is
  /// padded by a hair so boundary points land inside the last cell.
  GridGeometry(const Rect& space, int depth);

  /// Reconstructs a geometry from an already-padded `space()` rect (the
  /// snapshot load path). Unlike the constructor this applies no border
  /// padding, so the restored grid assigns bit-identical leaf codes to the
  /// saved one. `padded_space` must have positive width and height and
  /// `depth` must be in 1..12.
  static GridGeometry Restore(const Rect& padded_space, int depth);

  int depth() const { return depth_; }
  const Rect& space() const { return space_; }

  uint32_t CellsPerAxis(int level) const {
    GAT_DCHECK(level >= 1 && level <= depth_);
    return 1u << level;
  }

  /// Total cells at a level (4^level).
  uint64_t CellCount(int level) const {
    return uint64_t{1} << (2 * level);
  }

  /// Morton code of the leaf (level = depth) cell containing `p`; points
  /// outside the space are clamped to the border cells.
  uint32_t LeafCode(const Point& p) const;

  /// Geometric extent of cell (level, code).
  Rect CellRect(int level, uint32_t code) const;

  /// mdist of the candidate-retrieval priority queue: minimum distance
  /// from `p` to cell (level, code); 0 when inside.
  double MinDistToCell(const Point& p, int level, uint32_t code) const;

 private:
  GridGeometry() = default;  // only for Restore()

  Rect space_;
  int depth_ = 0;
  double cell_width_leaf_ = 0.0;
  double cell_height_leaf_ = 0.0;
};

}  // namespace gat

#endif  // GAT_INDEX_GRID_H_
