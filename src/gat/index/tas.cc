#include "gat/index/tas.h"

#include <algorithm>

#include "gat/common/check.h"

namespace gat {

std::vector<Tas::Interval> Tas::PartitionIds(
    const std::vector<ActivityId>& sorted_ids, int num_intervals) {
  std::vector<Interval> out;
  if (sorted_ids.empty()) return out;
  GAT_CHECK(num_intervals >= 1);

  // Gaps between consecutive IDs; the top (M-1) gaps are the optimal split
  // positions (Section IV: moving any split from gap g to gap g' < g
  // increases total width by g - g').
  struct Gap {
    ActivityId size;
    uint32_t after_index;  // split between after_index and after_index+1
  };
  std::vector<Gap> gaps;
  gaps.reserve(sorted_ids.size());
  for (uint32_t i = 0; i + 1 < sorted_ids.size(); ++i) {
    GAT_DCHECK(sorted_ids[i + 1] > sorted_ids[i]);
    gaps.push_back(Gap{sorted_ids[i + 1] - sorted_ids[i], i});
  }
  const size_t splits =
      std::min<size_t>(static_cast<size_t>(num_intervals) - 1, gaps.size());
  std::partial_sort(gaps.begin(), gaps.begin() + splits, gaps.end(),
                    [](const Gap& a, const Gap& b) {
                      if (a.size != b.size) return a.size > b.size;
                      return a.after_index < b.after_index;  // deterministic
                    });
  std::vector<uint32_t> cut_after;
  cut_after.reserve(splits);
  for (size_t i = 0; i < splits; ++i) cut_after.push_back(gaps[i].after_index);
  std::sort(cut_after.begin(), cut_after.end());

  uint32_t start = 0;
  for (uint32_t cut : cut_after) {
    out.push_back(Interval{sorted_ids[start], sorted_ids[cut]});
    start = cut + 1;
  }
  out.push_back(Interval{sorted_ids[start], sorted_ids.back()});
  return out;
}

Tas::Tas(const std::vector<std::vector<ActivityId>>& activity_sets,
         int num_intervals)
    : num_intervals_(num_intervals) {
  GAT_CHECK(num_intervals >= 1);
  offsets_.reserve(activity_sets.size() + 1);
  offsets_.push_back(0);
  for (const auto& ids : activity_sets) {
    const auto ivs = PartitionIds(ids, num_intervals);
    intervals_.insert(intervals_.end(), ivs.begin(), ivs.end());
    offsets_.push_back(static_cast<uint32_t>(intervals_.size()));
  }
}

bool Tas::MightContain(TrajectoryId t, ActivityId a) const {
  GAT_DCHECK(t + 1 < offsets_.size());
  const uint32_t begin = offsets_[t];
  const uint32_t end = offsets_[t + 1];
  // Binary search over disjoint sorted intervals: find the first interval
  // whose hi >= a and test its lo.
  uint32_t lo = begin;
  uint32_t hi = end;
  while (lo < hi) {
    const uint32_t mid = lo + (hi - lo) / 2;
    if (intervals_[mid].hi < a) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo < end && intervals_[lo].lo <= a;
}

bool Tas::MightContainAll(TrajectoryId t,
                          const std::vector<ActivityId>& activities) const {
  for (ActivityId a : activities) {
    if (!MightContain(t, a)) return false;
  }
  return true;
}

std::vector<Tas::Interval> Tas::Intervals(TrajectoryId t) const {
  GAT_DCHECK(t + 1 < offsets_.size());
  return {intervals_.begin() + offsets_[t],
          intervals_.begin() + offsets_[t + 1]};
}

}  // namespace gat
