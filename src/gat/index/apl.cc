#include "gat/index/apl.h"

#include <algorithm>
#include <map>

namespace gat {

Apl::Apl(const Dataset& dataset) {
  per_trajectory_.resize(dataset.size());
  for (TrajectoryId t = 0; t < dataset.size(); ++t) {
    const auto& tr = dataset.trajectory(t);
    // Ordered map keeps activities sorted; point indices arrive ascending.
    std::map<ActivityId, std::vector<PointIndex>> lists;
    for (PointIndex i = 0; i < tr.size(); ++i) {
      for (ActivityId a : tr[i].activities) lists[a].push_back(i);
    }
    auto& tp = per_trajectory_[t];
    tp.offsets.push_back(0);
    for (auto& [a, pts] : lists) {
      tp.activities.push_back(a);
      tp.points.insert(tp.points.end(), pts.begin(), pts.end());
      tp.offsets.push_back(static_cast<uint32_t>(tp.points.size()));
    }
    disk_bytes_ += tp.activities.size() * sizeof(ActivityId) +
                   tp.offsets.size() * sizeof(uint32_t) +
                   tp.points.size() * sizeof(PointIndex);
  }
}

std::span<const PointIndex> Apl::Postings(TrajectoryId t, ActivityId activity,
                                          DiskAccessCounter* disk) const {
  if (disk != nullptr) disk->RecordRead();
  if (t >= per_trajectory_.size()) return {};
  const auto& tp = per_trajectory_[t];
  const auto it =
      std::lower_bound(tp.activities.begin(), tp.activities.end(), activity);
  if (it == tp.activities.end() || *it != activity) return {};
  const size_t idx = static_cast<size_t>(it - tp.activities.begin());
  return {tp.points.data() + tp.offsets[idx],
          tp.points.data() + tp.offsets[idx + 1]};
}

bool Apl::HasAllActivities(TrajectoryId t,
                           const std::vector<ActivityId>& activities,
                           DiskAccessCounter* disk) const {
  if (disk != nullptr) disk->RecordRead();
  if (t >= per_trajectory_.size()) return activities.empty();
  const auto& tp = per_trajectory_[t];
  return std::includes(tp.activities.begin(), tp.activities.end(),
                       activities.begin(), activities.end());
}

std::span<const ActivityId> Apl::ActivitiesOf(TrajectoryId t,
                                              DiskAccessCounter* disk) const {
  if (disk != nullptr) disk->RecordRead();
  if (t >= per_trajectory_.size()) return {};
  const auto& tp = per_trajectory_[t];
  return {tp.activities.data(), tp.activities.data() + tp.activities.size()};
}

}  // namespace gat
