#include "gat/index/apl.h"

#include <algorithm>
#include <map>

namespace gat {

Apl::Apl(const Dataset& dataset) {
  owned_.resize(dataset.size());
  for (TrajectoryId t = 0; t < dataset.size(); ++t) {
    const auto& tr = dataset.trajectory(t);
    // Ordered map keeps activities sorted; point indices arrive ascending.
    std::map<ActivityId, std::vector<PointIndex>> lists;
    for (PointIndex i = 0; i < tr.size(); ++i) {
      for (ActivityId a : tr[i].activities) lists[a].push_back(i);
    }
    auto& tp = owned_[t];
    tp.offsets.push_back(0);
    for (auto& [a, pts] : lists) {
      tp.activities.push_back(a);
      tp.points.insert(tp.points.end(), pts.begin(), pts.end());
      tp.offsets.push_back(static_cast<uint32_t>(tp.points.size()));
    }
    disk_bytes_ += tp.activities.size() * sizeof(ActivityId) +
                   tp.offsets.size() * sizeof(uint32_t) +
                   tp.points.size() * sizeof(PointIndex);
  }
  RebuildViews();
}

void Apl::RebuildViews() {
  rows_.clear();
  rows_.reserve(owned_.size());
  for (const auto& tp : owned_) {
    RowView row;
    row.activities = {tp.activities.data(), tp.activities.size()};
    row.offsets = {tp.offsets.data(), tp.offsets.size()};
    row.points = {tp.points.data(), tp.points.size()};
    row.tier_bytes = tp.activities.size() * sizeof(ActivityId) +
                     tp.offsets.size() * sizeof(uint32_t) +
                     tp.points.size() * sizeof(PointIndex);
    rows_.push_back(row);
  }
}

std::span<const PointIndex> Apl::Postings(TrajectoryId t, ActivityId activity,
                                          DiskAccessCounter* disk) const {
  // Charge-then-check, like the seed: a probe of a nonexistent row is
  // still one (fruitless) fetch.
  if (t >= rows_.size()) {
    tier_->Fetch(0, 0, disk);
    return {};
  }
  const RowView& tp = rows_[t];
  tier_->Fetch(tp.tier_offset, tp.tier_bytes, disk);
  const auto it =
      std::lower_bound(tp.activities.begin(), tp.activities.end(), activity);
  if (it == tp.activities.end() || *it != activity) return {};
  const size_t idx = static_cast<size_t>(it - tp.activities.begin());
  return {tp.points.data() + tp.offsets[idx],
          tp.points.data() + tp.offsets[idx + 1]};
}

bool Apl::HasAllActivities(TrajectoryId t,
                           const std::vector<ActivityId>& activities,
                           DiskAccessCounter* disk) const {
  if (t >= rows_.size()) {
    tier_->Fetch(0, 0, disk);
    return activities.empty();
  }
  const RowView& tp = rows_[t];
  tier_->Fetch(tp.tier_offset, tp.tier_bytes, disk);
  return std::includes(tp.activities.begin(), tp.activities.end(),
                       activities.begin(), activities.end());
}

std::span<const ActivityId> Apl::ActivitiesOf(TrajectoryId t,
                                              DiskAccessCounter* disk) const {
  if (t >= rows_.size()) {
    tier_->Fetch(0, 0, disk);
    return {};
  }
  const RowView& tp = rows_[t];
  tier_->Fetch(tp.tier_offset, tp.tier_bytes, disk);
  return tp.activities;
}

void Apl::PrefetchRow(TrajectoryId t) const {
  if (t >= rows_.size()) return;
  const RowView& tp = rows_[t];
  tier_->Prefetch(tp.tier_offset, tp.tier_bytes);
}

}  // namespace gat
