#ifndef GAT_INDEX_APL_H_
#define GAT_INDEX_APL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "gat/common/storage_tier.h"
#include "gat/common/types.h"
#include "gat/model/dataset.h"

namespace gat {

struct SnapshotIo;

/// Activity Posting List (Section IV, component iv).
///
/// For every trajectory and every activity it contains, APL lists the point
/// indices carrying that activity. The paper stores this on disk ("due to
/// its high space requirement") and fetches it only during candidate
/// validation and distance evaluation — every lookup therefore bumps the
/// DiskAccessCounter so searches can report simulated I/O.
class Apl {
 public:
  explicit Apl(const Dataset& dataset);

  /// Point indices of `activity` within trajectory `t` (ascending); empty
  /// when the trajectory lacks the activity.
  std::span<const PointIndex> Postings(TrajectoryId t, ActivityId activity,
                                       DiskAccessCounter* disk = nullptr) const;

  /// Validation step of Section V-C: does trajectory `t` have a posting
  /// list for *every* activity in `activities`? Eliminates TAS false
  /// positives exactly.
  bool HasAllActivities(TrajectoryId t,
                        const std::vector<ActivityId>& activities,
                        DiskAccessCounter* disk = nullptr) const;

  /// Sorted activity IDs of trajectory `t`.
  std::span<const ActivityId> ActivitiesOf(
      TrajectoryId t, DiskAccessCounter* disk = nullptr) const;

  size_t DiskBytes() const { return disk_bytes_; }

 private:
  friend struct SnapshotIo;  // snapshot.cc reads/writes the private state
  Apl() = default;           // only for snapshot loading

  struct TrajectoryPostings {
    std::vector<ActivityId> activities;  // sorted
    std::vector<uint32_t> offsets;       // size + 1
    std::vector<PointIndex> points;      // concatenated runs
  };

  std::vector<TrajectoryPostings> per_trajectory_;
  size_t disk_bytes_ = 0;
};

}  // namespace gat

#endif  // GAT_INDEX_APL_H_
