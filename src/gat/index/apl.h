#ifndef GAT_INDEX_APL_H_
#define GAT_INDEX_APL_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "gat/common/storage_tier.h"
#include "gat/common/types.h"
#include "gat/model/dataset.h"
#include "gat/storage/disk_tier.h"

namespace gat {

struct SnapshotIo;
struct MappedSnapshotIo;

/// Activity Posting List (Section IV, component iv).
///
/// For every trajectory and every activity it contains, APL lists the point
/// indices carrying that activity. The paper stores this on disk ("due to
/// its high space requirement") and fetches it only during candidate
/// validation and distance evaluation — every lookup therefore goes through
/// the attached `DiskTier`, which records one logical disk read per fetched
/// row (and, for an mmap-backed tier, runs the row's covering cache blocks
/// through the block cache).
///
/// The read path is uniform over two storages: rows built from a dataset
/// (or deserialized by the stream snapshot loader) own their vectors; rows
/// served by a `MappedSnapshot` are zero-copy spans into the file mapping,
/// with their byte extents recorded for block-granular I/O accounting.
class Apl {
 public:
  explicit Apl(const Dataset& dataset);

  /// Point indices of `activity` within trajectory `t` (ascending); empty
  /// when the trajectory lacks the activity.
  std::span<const PointIndex> Postings(TrajectoryId t, ActivityId activity,
                                       DiskAccessCounter* disk = nullptr) const;

  /// Validation step of Section V-C: does trajectory `t` have a posting
  /// list for *every* activity in `activities`? Eliminates TAS false
  /// positives exactly.
  bool HasAllActivities(TrajectoryId t,
                        const std::vector<ActivityId>& activities,
                        DiskAccessCounter* disk = nullptr) const;

  /// Sorted activity IDs of trajectory `t`.
  std::span<const ActivityId> ActivitiesOf(
      TrajectoryId t, DiskAccessCounter* disk = nullptr) const;

  /// Warms the disk-tier blocks of trajectory `t`'s posting row without
  /// charging a logical read — the prefetch path (no-op under the
  /// simulated tier, where there is nothing to warm).
  void PrefetchRow(TrajectoryId t) const;

  /// (tier offset, tier bytes) of trajectory `t`'s posting row — the
  /// staging hook: a predictor hands these extents to
  /// `AsyncDiskTier::StageExtents` so a query's cold blocks are in
  /// flight before its search task runs. Only meaningful for
  /// mmap-served rows (real file offsets); owned rows report offset 0
  /// with their logical size, which only the accounting ever uses.
  std::pair<uint64_t, uint64_t> RowExtent(TrajectoryId t) const {
    const RowView& row = rows_[t];
    return {row.tier_offset, row.tier_bytes};
  }

  size_t DiskBytes() const { return disk_bytes_; }
  size_t num_trajectories() const { return rows_.size(); }

  /// The tier this APL reads through (process-wide simulated instance by
  /// default; a MappedSnapshot attaches its block-cached tier).
  const DiskTier& disk_tier() const { return *tier_; }

 private:
  friend struct SnapshotIo;        // stream snapshot save/load
  friend struct MappedSnapshotIo;  // zero-copy mmap load
  Apl() = default;                 // only for snapshot loading

  /// Owned storage of one built/deserialized row.
  struct TrajectoryPostings {
    std::vector<ActivityId> activities;  // sorted
    std::vector<uint32_t> offsets;       // size + 1
    std::vector<PointIndex> points;      // concatenated runs
  };

  /// The uniform read-path view of one row, plus its byte extent for
  /// the disk tier (file offsets for mapped rows; 0/logical-size for
  /// owned rows, where only the size feeds the accounting).
  struct RowView {
    std::span<const ActivityId> activities;
    std::span<const uint32_t> offsets;
    std::span<const PointIndex> points;
    uint64_t tier_offset = 0;
    uint64_t tier_bytes = 0;
  };

  /// Rebuilds `rows_` as views over `owned_` (after build/deserialize).
  void RebuildViews();

  std::vector<TrajectoryPostings> owned_;  // empty when mmap-served
  std::vector<RowView> rows_;
  const DiskTier* tier_ = SimulatedDiskTier::Instance();
  size_t disk_bytes_ = 0;
};

}  // namespace gat

#endif  // GAT_INDEX_APL_H_
