#ifndef GAT_INDEX_GAT_INDEX_H_
#define GAT_INDEX_GAT_INDEX_H_

#include <memory>
#include <string>

#include "gat/index/apl.h"
#include "gat/index/grid.h"
#include "gat/index/hicl.h"
#include "gat/index/itl.h"
#include "gat/index/tas.h"
#include "gat/model/dataset.h"

namespace gat {

struct SnapshotIo;
struct MappedSnapshotIo;

/// Construction parameters of the GAT index (defaults per Section VII-A).
struct GatConfig {
  /// Grid depth d: the space is split into 2^d x 2^d leaf cells
  /// (default 8 => 256 x 256, the paper's default).
  int depth = 8;

  /// HICL levels 1..memory_levels stay in main memory; deeper levels are
  /// disk-tier (the paper keeps levels 1-6 in RAM, 7-8 on disk).
  int memory_levels = 6;

  /// TAS interval count M.
  int tas_intervals = 2;

  bool operator==(const GatConfig&) const = default;
};

/// The Grid index for Activity Trajectories (Section IV): the hierarchical
/// quad grid plus its four components — HICL, ITL, TAS, APL — built in one
/// pass over a finalized dataset.
///
/// Thread-safety: immutable after the constructor returns. Every accessor
/// (including the component getters and `memory_breakdown()`) is const and
/// touches only construction-time state, so one index may back any number
/// of concurrent searcher threads without synchronization.
class GatIndex {
 public:
  GatIndex(const Dataset& dataset, const GatConfig& config = {});

  const GatConfig& config() const { return config_; }
  const GridGeometry& grid() const { return grid_; }
  const Hicl& hicl() const { return *hicl_; }
  const Itl& itl() const { return *itl_; }
  const Tas& tas() const { return *tas_; }
  const Apl& apl() const { return *apl_; }

  /// Main-memory vs disk-tier footprint, per component. Figure 8's "memory
  /// cost" series is `MainMemoryTotal()`.
  struct MemoryBreakdown {
    size_t hicl_memory = 0;
    size_t hicl_disk = 0;
    size_t itl_memory = 0;
    size_t tas_memory = 0;
    size_t apl_disk = 0;

    size_t MainMemoryTotal() const {
      return hicl_memory + itl_memory + tas_memory;
    }
    size_t DiskTotal() const { return hicl_disk + apl_disk; }
    std::string ToString() const;
  };
  MemoryBreakdown memory_breakdown() const;

  /// Wall-clock seconds spent building the index (or, for an index
  /// restored by `LoadSnapshot`, loading it).
  double build_seconds() const { return build_seconds_; }

 private:
  friend struct SnapshotIo;        // snapshot.cc restores indexes w/o a build
  friend struct MappedSnapshotIo;  // so does the mmap loader (gat/storage)

  /// Restore shell for snapshot loading: components are filled in by
  /// `SnapshotIo` afterwards.
  GatIndex(const GatConfig& config, const GridGeometry& grid)
      : config_(config), grid_(grid) {}

  GatConfig config_;
  GridGeometry grid_;
  std::unique_ptr<Hicl> hicl_;
  std::unique_ptr<Itl> itl_;
  std::unique_ptr<Tas> tas_;
  std::unique_ptr<Apl> apl_;
  double build_seconds_ = 0.0;
};

}  // namespace gat

#endif  // GAT_INDEX_GAT_INDEX_H_
