#ifndef GAT_INDEX_HICL_H_
#define GAT_INDEX_HICL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "gat/common/storage_tier.h"
#include "gat/common/types.h"
#include "gat/storage/disk_tier.h"

namespace gat {

struct SnapshotIo;
struct MappedSnapshotIo;

/// Hierarchical Inverted Cell List (Section IV, component i).
///
/// For every activity alpha and every grid level l, HICL stores the sorted
/// Morton codes of the level-l cells that contain alpha somewhere inside
/// them. The leaf level is built from the data; coarser levels aggregate
/// children (a parent cell contains alpha iff any child does).
///
/// Storage tiers follow the paper: levels 1..memory_levels are main-memory
/// resident; deeper levels are disk-resident (`h = log4(3B/4C + 1)` for
/// budget B and vocabulary size C — we expose `MemoryLevelsForBudget` for
/// that formula and let callers pick). Queries against disk levels fetch
/// the list through the attached `DiskTier` (one logical read charged to
/// the supplied DiskAccessCounter; block I/O under an mmap-backed tier).
/// Like `Apl`, the read path is uniform over owned vectors (built /
/// stream-deserialized) and zero-copy spans into a snapshot mapping.
class Hicl {
 public:
  /// `leaf_cells_per_activity[a]` = sorted unique leaf Morton codes where
  /// activity `a` occurs. `depth` = d; `memory_levels` = h in [0, depth].
  Hicl(int depth, int memory_levels,
       std::vector<std::vector<uint32_t>> leaf_cells_per_activity);

  int depth() const { return depth_; }
  int memory_levels() const { return memory_levels_; }
  uint32_t num_activities() const { return num_activities_; }

  /// Does cell (level, code) contain activity `a` anywhere inside it?
  bool Contains(ActivityId a, int level, uint32_t code,
                DiskAccessCounter* disk = nullptr) const;

  /// Sorted level-`level` cell codes containing activity `a`.
  std::span<const uint32_t> CellsAt(ActivityId a, int level,
                                    DiskAccessCounter* disk = nullptr) const;

  /// Sorted unique union of level-`level` cells containing any activity in
  /// `activities` — the seeding set of the candidate-retrieval search.
  std::vector<uint32_t> CellsWithAny(const std::vector<ActivityId>& activities,
                                     int level,
                                     DiskAccessCounter* disk = nullptr) const;

  /// Appends to `out` the child codes (level+1) of cell (level, code) that
  /// contain at least one activity in `activities`.
  void ChildrenWithAny(const std::vector<ActivityId>& activities, int level,
                       uint32_t code, std::vector<uint32_t>* out,
                       DiskAccessCounter* disk = nullptr) const;

  /// Bytes held on each tier (4 bytes per stored cell code).
  size_t MemoryBytes() const { return memory_bytes_; }
  size_t DiskBytes() const { return disk_bytes_; }

  /// The tier disk-level lists are read through.
  const DiskTier& disk_tier() const { return *tier_; }

  /// The paper's memory-budget formula: largest h with sum_{i=1..h} 4^i * C
  /// <= budget_bytes / 4 (each cell-id costs 4 bytes), i.e. the number of
  /// grid levels whose *worst-case* inverted cell lists fit in the budget.
  static int MemoryLevelsForBudget(size_t budget_bytes, uint32_t vocabulary,
                                   int depth);

 private:
  friend struct SnapshotIo;        // stream snapshot save/load
  friend struct MappedSnapshotIo;  // zero-copy mmap load
  Hicl() = default;                // only for snapshot loading

  struct ActivityLists {
    /// cells[l-1] = sorted codes at level l.
    std::vector<std::vector<uint32_t>> cells;
  };

  /// Read-path view of one (activity, level) list, with its byte extent
  /// for the disk tier (meaningful for disk levels only).
  struct LevelView {
    std::span<const uint32_t> cells;
    uint64_t tier_offset = 0;
    uint64_t tier_bytes = 0;
  };

  const LevelView& ViewAt(ActivityId a, int level) const {
    return views_[static_cast<size_t>(a) * static_cast<size_t>(depth_) +
                  static_cast<size_t>(level - 1)];
  }

  /// Rebuilds `views_` over `owned_` (after build/deserialize).
  void RebuildViews();

  int depth_ = 0;
  int memory_levels_ = 0;
  uint32_t num_activities_ = 0;
  /// Heap storage. Built/stream-loaded: every level. Mmap-served: the
  /// memory levels only (they deserialize per the paper's tier split);
  /// disk-level vectors stay empty, their views point into the mapping.
  std::vector<ActivityLists> owned_;
  std::vector<LevelView> views_;  // a * depth + (level - 1)
  const DiskTier* tier_ = SimulatedDiskTier::Instance();
  size_t memory_bytes_ = 0;
  size_t disk_bytes_ = 0;
};

}  // namespace gat

#endif  // GAT_INDEX_HICL_H_
