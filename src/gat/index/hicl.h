#ifndef GAT_INDEX_HICL_H_
#define GAT_INDEX_HICL_H_

#include <cstdint>
#include <vector>

#include "gat/common/storage_tier.h"
#include "gat/common/types.h"

namespace gat {

struct SnapshotIo;

/// Hierarchical Inverted Cell List (Section IV, component i).
///
/// For every activity alpha and every grid level l, HICL stores the sorted
/// Morton codes of the level-l cells that contain alpha somewhere inside
/// them. The leaf level is built from the data; coarser levels aggregate
/// children (a parent cell contains alpha iff any child does).
///
/// Storage tiers follow the paper: levels 1..memory_levels are main-memory
/// resident; deeper levels are disk-resident (`h = log4(3B/4C + 1)` for
/// budget B and vocabulary size C — we expose `MemoryLevelsForBudget` for
/// that formula and let callers pick). Queries against disk levels bump the
/// supplied DiskAccessCounter.
class Hicl {
 public:
  /// `leaf_cells_per_activity[a]` = sorted unique leaf Morton codes where
  /// activity `a` occurs. `depth` = d; `memory_levels` = h in [0, depth].
  Hicl(int depth, int memory_levels,
       std::vector<std::vector<uint32_t>> leaf_cells_per_activity);

  int depth() const { return depth_; }
  int memory_levels() const { return memory_levels_; }
  uint32_t num_activities() const {
    return static_cast<uint32_t>(per_activity_.size());
  }

  /// Does cell (level, code) contain activity `a` anywhere inside it?
  bool Contains(ActivityId a, int level, uint32_t code,
                DiskAccessCounter* disk = nullptr) const;

  /// Sorted level-`level` cell codes containing activity `a`.
  const std::vector<uint32_t>& CellsAt(ActivityId a, int level,
                                       DiskAccessCounter* disk = nullptr) const;

  /// Sorted unique union of level-`level` cells containing any activity in
  /// `activities` — the seeding set of the candidate-retrieval search.
  std::vector<uint32_t> CellsWithAny(const std::vector<ActivityId>& activities,
                                     int level,
                                     DiskAccessCounter* disk = nullptr) const;

  /// Appends to `out` the child codes (level+1) of cell (level, code) that
  /// contain at least one activity in `activities`.
  void ChildrenWithAny(const std::vector<ActivityId>& activities, int level,
                       uint32_t code, std::vector<uint32_t>* out,
                       DiskAccessCounter* disk = nullptr) const;

  /// Bytes held on each tier (4 bytes per stored cell code).
  size_t MemoryBytes() const { return memory_bytes_; }
  size_t DiskBytes() const { return disk_bytes_; }

  /// The paper's memory-budget formula: largest h with sum_{i=1..h} 4^i * C
  /// <= budget_bytes / 4 (each cell-id costs 4 bytes), i.e. the number of
  /// grid levels whose *worst-case* inverted cell lists fit in the budget.
  static int MemoryLevelsForBudget(size_t budget_bytes, uint32_t vocabulary,
                                   int depth);

 private:
  friend struct SnapshotIo;  // snapshot.cc reads/writes the private state
  Hicl() = default;          // only for snapshot loading

  struct ActivityLists {
    /// cells[l-1] = sorted codes at level l.
    std::vector<std::vector<uint32_t>> cells;
  };

  int depth_ = 0;
  int memory_levels_ = 0;
  std::vector<ActivityLists> per_activity_;
  size_t memory_bytes_ = 0;
  size_t disk_bytes_ = 0;
  std::vector<uint32_t> empty_;
};

}  // namespace gat

#endif  // GAT_INDEX_HICL_H_
