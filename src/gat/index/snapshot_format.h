#ifndef GAT_INDEX_SNAPSHOT_FORMAT_H_
#define GAT_INDEX_SNAPSHOT_FORMAT_H_

#include <array>
#include <cstddef>
#include <cstdint>

/// The on-disk `GATS` snapshot format, shared by the two loaders:
/// the stream deserializer (`gat/index/snapshot.cc`) and the zero-copy
/// mmap loader (`gat/storage/mapped_snapshot.cc`). Both parse the same
/// bytes; only what they do with the disk-tier sections differs
/// (deserialize vs serve views into the mapping).
///
/// Layout: magic + version + payload CRC32 (12-byte header), then the
/// payload — `GatConfig` fields, dataset fingerprint, and one tagged
/// section per component (GRID, HICL, ITL_, TAS_, APL_, DONE). Every
/// field and every vector payload is a multiple of 4 bytes, so *all*
/// element arrays are 4-byte aligned at file offsets — the invariant
/// the mmap loader relies on to hand out `std::span`s into the mapping
/// (element types are 4-byte IDs/codes; see common/types.h).
namespace gat::snapshot_format {

inline constexpr char kMagic[4] = {'G', 'A', 'T', 'S'};
inline constexpr uint32_t kVersion = 1;
/// magic + version + payload CRC32.
inline constexpr size_t kHeaderBytes = 12;

// Section tags (4 ASCII bytes each) so a reader that goes out of sync
// fails on the next tag instead of misinterpreting the stream.
inline constexpr char kTagGrid[4] = {'G', 'R', 'I', 'D'};
inline constexpr char kTagHicl[4] = {'H', 'I', 'C', 'L'};
inline constexpr char kTagItl[4] = {'I', 'T', 'L', '_'};
inline constexpr char kTagTas[4] = {'T', 'A', 'S', '_'};
inline constexpr char kTagApl[4] = {'A', 'P', 'L', '_'};
inline constexpr char kTagEnd[4] = {'D', 'O', 'N', 'E'};

/// CRC-32 (IEEE 802.3, table-driven). The header carries the payload
/// checksum so any bit corruption — not just truncation — fails the load
/// instead of producing a subtly different index. Table lookup keeps the
/// verify pass from dominating warm-start time on large snapshots.
inline const uint32_t* Crc32Table() {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t byte = 0; byte < 256; ++byte) {
      uint32_t crc = byte;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
      }
      t[byte] = crc;
    }
    return t;
  }();
  return table.data();
}

inline uint32_t Crc32Update(uint32_t crc, const char* data, size_t size) {
  const uint32_t* table = Crc32Table();
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ static_cast<unsigned char>(data[i])) & 0xFF];
  }
  return crc;
}

inline uint32_t Crc32(const char* data, size_t size) {
  return Crc32Update(0xFFFFFFFFu, data, size) ^ 0xFFFFFFFFu;
}

}  // namespace gat::snapshot_format

#endif  // GAT_INDEX_SNAPSHOT_FORMAT_H_
