#ifndef GAT_INDEX_SNAPSHOT_FORMAT_H_
#define GAT_INDEX_SNAPSHOT_FORMAT_H_

#include <array>
#include <cstddef>
#include <cstdint>

/// The on-disk `GATS` snapshot format, shared by the two loaders:
/// the stream deserializer (`gat/index/snapshot.cc`) and the zero-copy
/// mmap loader (`gat/storage/mapped_snapshot.cc`). Both parse the same
/// bytes; only what they do with the disk-tier sections differs
/// (deserialize vs serve views into the mapping).
///
/// Layout: magic + version + payload CRC32 (12-byte header), then the
/// payload — `GatConfig` fields, dataset fingerprint, and one tagged
/// section per component (GRID, HICL, ITL_, TAS_, APL_, DONE). Every
/// field and every vector payload is a multiple of 4 bytes, so *all*
/// element arrays are 4-byte aligned at file offsets — the invariant
/// the mmap loader relies on to hand out `std::span`s into the mapping
/// (element types are 4-byte IDs/codes; see common/types.h).
namespace gat::snapshot_format {

inline constexpr char kMagic[4] = {'G', 'A', 'T', 'S'};
inline constexpr uint32_t kVersion = 1;
/// magic + version + payload CRC32.
inline constexpr size_t kHeaderBytes = 12;

// Section tags (4 ASCII bytes each) so a reader that goes out of sync
// fails on the next tag instead of misinterpreting the stream.
inline constexpr char kTagGrid[4] = {'G', 'R', 'I', 'D'};
inline constexpr char kTagHicl[4] = {'H', 'I', 'C', 'L'};
inline constexpr char kTagItl[4] = {'I', 'T', 'L', '_'};
inline constexpr char kTagTas[4] = {'T', 'A', 'S', '_'};
inline constexpr char kTagApl[4] = {'A', 'P', 'L', '_'};
inline constexpr char kTagEnd[4] = {'D', 'O', 'N', 'E'};

/// CRC-32 (IEEE 802.3, table-driven). The header carries the payload
/// checksum so any bit corruption — not just truncation — fails the load
/// instead of producing a subtly different index. Table lookup keeps the
/// verify pass from dominating warm-start time on large snapshots.
inline const uint32_t* Crc32Table() {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t byte = 0; byte < 256; ++byte) {
      uint32_t crc = byte;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
      }
      t[byte] = crc;
    }
    return t;
  }();
  return table.data();
}

inline uint32_t Crc32Update(uint32_t crc, const char* data, size_t size) {
  const uint32_t* table = Crc32Table();
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ static_cast<unsigned char>(data[i])) & 0xFF];
  }
  return crc;
}

inline uint32_t Crc32(const char* data, size_t size) {
  return Crc32Update(0xFFFFFFFFu, data, size) ^ 0xFFFFFFFFu;
}

/// GF(2) matrix-times-vector over the CRC-32 state space: each matrix
/// column is the image of one state bit under some number of zero bits
/// appended to the message.
inline uint32_t Crc32Gf2Times(const std::array<uint32_t, 32>& mat,
                              uint32_t vec) {
  uint32_t sum = 0;
  for (int i = 0; vec != 0; vec >>= 1, ++i) {
    if (vec & 1u) sum ^= mat[i];
  }
  return sum;
}

/// Crc32(AB) from Crc32(A), Crc32(B) and |B| — the zlib crc32_combine
/// construction: advance crc1 through |B| zero bytes by repeated
/// squaring of the one-zero-bit operator matrix, then xor in crc2.
/// This is what lets a snapshot load compute its whole-payload CRC
/// from independently checksummed chunks, bit-identical to the
/// sequential sweep.
inline uint32_t Crc32Combine(uint32_t crc1, uint32_t crc2, uint64_t len2) {
  if (len2 == 0) return crc1;
  std::array<uint32_t, 32> even;  // operator for 2^k zero bits (even k)
  std::array<uint32_t, 32> odd;   // ... and odd k
  // One zero *bit*: shift the state down and fold the polynomial back
  // in where bit 0 fell out (reflected representation).
  odd[0] = 0xEDB88320u;
  for (int n = 1; n < 32; ++n) odd[n] = 1u << (n - 1);
  auto square = [](std::array<uint32_t, 32>& dst,
                   const std::array<uint32_t, 32>& src) {
    for (int n = 0; n < 32; ++n) dst[n] = Crc32Gf2Times(src, src[n]);
  };
  square(even, odd);  // 2 zero bits
  square(odd, even);  // 4 zero bits
  // Apply the operators for len2 * 8 zero bits = len2 zero bytes,
  // consuming len2's binary digits from 8-zero-bits upward.
  do {
    square(even, odd);
    if (len2 & 1u) crc1 = Crc32Gf2Times(even, crc1);
    len2 >>= 1;
    if (len2 == 0) break;
    square(odd, even);
    if (len2 & 1u) crc1 = Crc32Gf2Times(odd, crc1);
    len2 >>= 1;
  } while (len2 != 0);
  return crc1 ^ crc2;
}

}  // namespace gat::snapshot_format

#endif  // GAT_INDEX_SNAPSHOT_FORMAT_H_
