#ifndef GAT_INDEX_TAS_H_
#define GAT_INDEX_TAS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gat/common/types.h"

namespace gat {

struct SnapshotIo;
struct MappedSnapshotIo;

/// Trajectory Activity Sketch (Section IV, component iii).
///
/// A per-trajectory summary of the activities it contains: the trajectory's
/// (frequency-ranked) activity IDs are partitioned into at most M intervals
/// chosen to minimize total interval width — achieved by splitting at the
/// M-1 largest gaps between consecutive sorted IDs, which the paper proves
/// optimal. A query activity "might" be contained iff it falls inside one
/// of the intervals; false positives are possible, false dismissals are
/// not. Cost: two 32-bit IDs per interval = 8·M·N bytes for N trajectories,
/// matching the paper's memory accounting.
class Tas {
 public:
  struct Interval {
    ActivityId lo = 0;
    ActivityId hi = 0;
  };

  /// Builds sketches for trajectories whose sorted-unique activity ID sets
  /// are given in `activity_sets`; `num_intervals` = M >= 1.
  Tas(const std::vector<std::vector<ActivityId>>& activity_sets,
      int num_intervals);

  /// May trajectory `t` contain activity `a`? (No false negatives.)
  bool MightContain(TrajectoryId t, ActivityId a) const;

  /// May trajectory `t` contain every activity in `activities` (sorted)?
  bool MightContainAll(TrajectoryId t,
                       const std::vector<ActivityId>& activities) const;

  /// The sketch intervals of one trajectory (sorted, disjoint).
  std::vector<Interval> Intervals(TrajectoryId t) const;

  int num_intervals() const { return num_intervals_; }
  size_t num_trajectories() const { return offsets_.size() - 1; }

  /// Main-memory footprint: 8 bytes per stored interval (paper: 8MN).
  size_t MemoryBytes() const { return intervals_.size() * sizeof(Interval); }

  /// Chooses the optimal <= M-interval partition of one sorted-unique ID
  /// set (exposed for direct testing of the gap-splitting proof).
  static std::vector<Interval> PartitionIds(
      const std::vector<ActivityId>& sorted_ids, int num_intervals);

 private:
  friend struct SnapshotIo;        // snapshot.cc reads/writes the private state
  friend struct MappedSnapshotIo;  // mmap loader deserializes (RAM tier)
  Tas() = default;                 // only for snapshot loading

  int num_intervals_ = 1;
  std::vector<Interval> intervals_;  // concatenated per trajectory
  std::vector<uint32_t> offsets_;    // size N+1
};

}  // namespace gat

#endif  // GAT_INDEX_TAS_H_
