#ifndef GAT_INDEX_SNAPSHOT_VALIDATE_H_
#define GAT_INDEX_SNAPSHOT_VALIDATE_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>

#include "gat/engine/executor.h"

/// Structural-validation helpers shared by the two snapshot loaders
/// (gat/index/snapshot.cc and gat/storage/mapped_snapshot.cc). Both must
/// make the *same* accept/reject decision for any byte stream; keeping
/// the checks here keeps them from drifting apart.
namespace gat::snapshot_validate {

/// Structural check shared by the ITL / APL posting layouts and the TAS
/// offset table: `offsets` must be [0, ..., payload_size] and
/// non-decreasing, with one extra entry over `keys`. A snapshot failing
/// this would hand out-of-range spans to the searchers.
inline bool OffsetsValid(std::span<const uint32_t> offsets, size_t num_keys,
                         size_t payload_size) {
  if (offsets.size() != num_keys + 1) return false;
  if (offsets.front() != 0 ||
      offsets.back() != static_cast<uint32_t>(payload_size)) {
    return false;
  }
  return std::is_sorted(offsets.begin(), offsets.end());
}

/// Rows below this count validate inline: the task-submission overhead
/// would exceed the per-row sorted/bounds checks being fanned out.
inline constexpr size_t kParallelValidateMinRows = 256;

/// Runs `row_ok(i)` over every row, fanned out in contiguous chunks on
/// `executor` when one is given and the section is big enough to pay for
/// it. Row checks are independent reads of already-loaded (or mapped)
/// data, so the only shared state is the sticky failure flag. Returns
/// true iff every row passes — the same decision the inline loop makes.
inline bool ValidateRows(Executor* executor, size_t rows,
                         const std::function<bool(size_t)>& row_ok) {
  if (executor == nullptr || executor->threads() <= 1 ||
      rows < kParallelValidateMinRows) {
    for (size_t i = 0; i < rows; ++i) {
      if (!row_ok(i)) return false;
    }
    return true;
  }
  const size_t chunks = std::min<size_t>(executor->threads(), rows);
  const size_t per_chunk = (rows + chunks - 1) / chunks;
  std::atomic<bool> ok{true};
  TaskGroup group(*executor);
  for (size_t begin = 0; begin < rows; begin += per_chunk) {
    const size_t end = std::min(rows, begin + per_chunk);
    group.Submit([&ok, &row_ok, begin, end] {
      for (size_t i = begin; i < end; ++i) {
        if (!ok.load(std::memory_order_relaxed)) return;  // already doomed
        if (!row_ok(i)) {
          ok.store(false, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  group.Wait();
  return ok.load();
}

}  // namespace gat::snapshot_validate

#endif  // GAT_INDEX_SNAPSHOT_VALIDATE_H_
