#include "gat/index/gat_index.h"

#include <cstdio>

#include "gat/common/check.h"
#include "gat/util/stopwatch.h"

namespace gat {

namespace {

// An empty dataset has an empty bounding box, but the grid needs a
// non-degenerate space. Any fixed rect works — no point ever lands in
// it, every posting list stays empty, and searches return no results —
// so empty shards (ShardedIndex with more shards than trajectories, or
// an empty parent dataset) build and snapshot like any other index.
Rect GridSpace(const Dataset& dataset) {
  if (dataset.bounding_box().IsEmpty()) {
    return Rect{Point{0.0, 0.0}, Point{1.0, 1.0}};
  }
  return dataset.bounding_box();
}

}  // namespace

GatIndex::GatIndex(const Dataset& dataset, const GatConfig& config)
    : config_(config), grid_(GridSpace(dataset), config.depth) {
  GAT_CHECK(dataset.finalized());
  Stopwatch timer;

  // One pass over the data populates the leaf-cell occupancy (HICL leaves),
  // the per-(cell, activity) trajectory lists (ITL), and the per-trajectory
  // activity sets (TAS input). APL builds its own pass internally.
  const uint32_t num_activities = dataset.num_distinct_activities();
  std::vector<std::vector<uint32_t>> leaf_cells_per_activity(num_activities);
  Itl::Builder itl_builder;
  std::vector<std::vector<ActivityId>> activity_sets;
  activity_sets.reserve(dataset.size());

  for (TrajectoryId t = 0; t < dataset.size(); ++t) {
    const auto& tr = dataset.trajectory(t);
    for (PointIndex i = 0; i < tr.size(); ++i) {
      const uint32_t leaf = grid_.LeafCode(tr[i].location);
      for (ActivityId a : tr[i].activities) {
        GAT_DCHECK(a < num_activities);
        leaf_cells_per_activity[a].push_back(leaf);
        itl_builder[leaf][a].push_back(t);
      }
    }
    activity_sets.push_back(tr.ActivityUnion());
  }

  hicl_ = std::make_unique<Hicl>(config_.depth, config_.memory_levels,
                                 std::move(leaf_cells_per_activity));
  itl_ = std::make_unique<Itl>(std::move(itl_builder));
  tas_ = std::make_unique<Tas>(activity_sets, config_.tas_intervals);
  apl_ = std::make_unique<Apl>(dataset);

  build_seconds_ = timer.ElapsedMillis() / 1000.0;
}

GatIndex::MemoryBreakdown GatIndex::memory_breakdown() const {
  MemoryBreakdown b;
  b.hicl_memory = hicl_->MemoryBytes();
  b.hicl_disk = hicl_->DiskBytes();
  b.itl_memory = itl_->MemoryBytes();
  b.tas_memory = tas_->MemoryBytes();
  b.apl_disk = apl_->DiskBytes();
  return b;
}

std::string GatIndex::MemoryBreakdown::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "HICL(mem)=%zuB HICL(disk)=%zuB ITL=%zuB TAS=%zuB "
                "APL(disk)=%zuB | main-memory total=%zuB",
                hicl_memory, hicl_disk, itl_memory, tas_memory, apl_disk,
                MainMemoryTotal());
  return buf;
}

}  // namespace gat
