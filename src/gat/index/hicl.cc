#include "gat/index/hicl.h"

#include <algorithm>

#include "gat/common/check.h"
#include "gat/geo/zorder.h"

namespace gat {

Hicl::Hicl(int depth, int memory_levels,
           std::vector<std::vector<uint32_t>> leaf_cells_per_activity)
    : depth_(depth), memory_levels_(memory_levels) {
  GAT_CHECK(depth >= 1);
  GAT_CHECK(memory_levels >= 0 && memory_levels <= depth);
  owned_.resize(leaf_cells_per_activity.size());
  for (size_t a = 0; a < leaf_cells_per_activity.size(); ++a) {
    auto& lists = owned_[a];
    lists.cells.resize(depth_);
    auto& leaf = leaf_cells_per_activity[a];
    std::sort(leaf.begin(), leaf.end());
    leaf.erase(std::unique(leaf.begin(), leaf.end()), leaf.end());
    lists.cells[depth_ - 1] = std::move(leaf);
    // Aggregate upward: parent code = child >> 2 (Section IV: "aggregate
    // the cells that belong to the same parent cell").
    for (int level = depth_ - 1; level >= 1; --level) {
      const auto& child = lists.cells[level];
      auto& parent = lists.cells[level - 1];
      parent.reserve(child.size());
      for (uint32_t code : child) {
        const uint32_t p = zorder::Parent(code);
        if (parent.empty() || parent.back() != p) parent.push_back(p);
      }
    }
    for (int level = 1; level <= depth_; ++level) {
      const size_t bytes = lists.cells[level - 1].size() * sizeof(uint32_t);
      if (level <= memory_levels_) {
        memory_bytes_ += bytes;
      } else {
        disk_bytes_ += bytes;
      }
    }
  }
  RebuildViews();
}

void Hicl::RebuildViews() {
  num_activities_ = static_cast<uint32_t>(owned_.size());
  views_.clear();
  views_.resize(static_cast<size_t>(num_activities_) *
                static_cast<size_t>(depth_));
  for (size_t a = 0; a < owned_.size(); ++a) {
    for (int level = 1; level <= depth_; ++level) {
      const auto& cells = owned_[a].cells[level - 1];
      LevelView& view = views_[a * static_cast<size_t>(depth_) + (level - 1)];
      view.cells = {cells.data(), cells.size()};
      view.tier_bytes = cells.size() * sizeof(uint32_t);
    }
  }
}

bool Hicl::Contains(ActivityId a, int level, uint32_t code,
                    DiskAccessCounter* disk) const {
  const auto cells = CellsAt(a, level, disk);
  return std::binary_search(cells.begin(), cells.end(), code);
}

std::span<const uint32_t> Hicl::CellsAt(ActivityId a, int level,
                                        DiskAccessCounter* disk) const {
  GAT_DCHECK(level >= 1 && level <= depth_);
  if (a >= num_activities_) return {};
  const LevelView& view = ViewAt(a, level);
  if (level > memory_levels_ && disk != nullptr) {
    tier_->Fetch(view.tier_offset, view.tier_bytes, disk);
  }
  return view.cells;
}

std::vector<uint32_t> Hicl::CellsWithAny(
    const std::vector<ActivityId>& activities, int level,
    DiskAccessCounter* disk) const {
  std::vector<uint32_t> out;
  for (ActivityId a : activities) {
    const auto cells = CellsAt(a, level, disk);
    out.insert(out.end(), cells.begin(), cells.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void Hicl::ChildrenWithAny(const std::vector<ActivityId>& activities,
                           int level, uint32_t code,
                           std::vector<uint32_t>* out,
                           DiskAccessCounter* disk) const {
  GAT_DCHECK(level >= 1 && level < depth_);
  const uint32_t first = zorder::FirstChild(code);
  for (uint32_t child = first; child < first + 4; ++child) {
    for (ActivityId a : activities) {
      if (Contains(a, level + 1, child, disk)) {
        out->push_back(child);
        break;
      }
    }
  }
}

int Hicl::MemoryLevelsForBudget(size_t budget_bytes, uint32_t vocabulary,
                                int depth) {
  // h = largest integer with sum_{i=1..h} 4^i * C * 4bytes <= budget.
  size_t used = 0;
  int h = 0;
  for (int level = 1; level <= depth; ++level) {
    const size_t level_cost =
        (uint64_t{1} << (2 * level)) * static_cast<size_t>(vocabulary) * 4;
    if (used + level_cost > budget_bytes) break;
    used += level_cost;
    h = level;
  }
  return h;
}

}  // namespace gat
