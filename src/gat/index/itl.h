#ifndef GAT_INDEX_ITL_H_
#define GAT_INDEX_ITL_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "gat/common/types.h"

namespace gat {

struct SnapshotIo;
struct MappedSnapshotIo;

/// Inverted Trajectory List (Section IV, component ii).
///
/// For each *leaf* cell of the d-Grid and each activity occurring in that
/// cell, ITL lists the IDs of trajectories that have a point carrying that
/// activity inside the cell. This is trajectory-granular (no point detail),
/// so it is small enough to stay in main memory — exactly the paper's
/// design. Postings per cell are stored as parallel arrays (sorted activity
/// IDs + offsets + concatenated trajectory IDs).
class Itl {
 public:
  struct CellPostings {
    std::vector<ActivityId> activities;   // sorted ascending
    std::vector<uint32_t> offsets;        // activities.size() + 1 entries
    std::vector<TrajectoryId> trajectories;  // concatenated, each run sorted
  };

  /// `builder[leaf_code][activity]` -> sorted unique trajectory IDs. The
  /// nested map form is only used at build time.
  using Builder = std::unordered_map<
      uint32_t, std::unordered_map<ActivityId, std::vector<TrajectoryId>>>;

  explicit Itl(Builder builder);

  /// Postings of a leaf cell, or nullptr if the cell is empty.
  const CellPostings* Find(uint32_t leaf_code) const;

  /// Trajectories containing `activity` within leaf cell `leaf_code`
  /// (empty span when absent).
  std::span<const TrajectoryId> Trajectories(uint32_t leaf_code,
                                             ActivityId activity) const;

  /// Sorted activity IDs present in a cell (empty when cell absent). Used
  /// by the Algorithm-2 virtual points.
  std::span<const ActivityId> ActivitiesIn(uint32_t leaf_code) const;

  size_t num_cells() const { return cells_.size(); }
  size_t MemoryBytes() const { return memory_bytes_; }

 private:
  friend struct SnapshotIo;        // snapshot.cc reads/writes the private state
  friend struct MappedSnapshotIo;  // mmap loader deserializes (RAM tier)
  Itl() = default;                 // only for snapshot loading

  std::unordered_map<uint32_t, CellPostings> cells_;
  size_t memory_bytes_ = 0;
};

}  // namespace gat

#endif  // GAT_INDEX_ITL_H_
