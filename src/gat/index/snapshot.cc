#include "gat/index/snapshot.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <span>
#include <sstream>
#include <vector>

#include "gat/engine/executor.h"

#include "gat/index/apl.h"
#include "gat/index/grid.h"
#include "gat/index/hicl.h"
#include "gat/index/itl.h"
#include "gat/index/snapshot_format.h"
#include "gat/index/snapshot_validate.h"
#include "gat/index/tas.h"
#include "gat/model/binary_io.h"
#include "gat/util/stopwatch.h"

namespace gat {
namespace {

using snapshot_format::Crc32Update;
using snapshot_format::kHeaderBytes;
using snapshot_format::kMagic;
using snapshot_format::kTagApl;
using snapshot_format::kTagEnd;
using snapshot_format::kTagGrid;
using snapshot_format::kTagHicl;
using snapshot_format::kTagItl;
using snapshot_format::kTagTas;
using snapshot_format::kVersion;
using snapshot_validate::OffsetsValid;
using snapshot_validate::ValidateRows;

/// Streaming CRC of the next `size` bytes of `in` (chunked; no payload
/// copy). Returns false on a short read.
bool Crc32Stream(std::istream& in, uint64_t size, uint32_t* out) {
  char buf[1 << 16];
  uint32_t crc = 0xFFFFFFFFu;
  while (size > 0) {
    const size_t chunk = size < sizeof(buf) ? static_cast<size_t>(size)
                                            : sizeof(buf);
    in.read(buf, chunk);
    if (static_cast<size_t>(in.gcount()) != chunk) return false;
    crc = Crc32Update(crc, buf, chunk);
    size -= chunk;
  }
  *out = crc ^ 0xFFFFFFFFu;
  return true;
}

/// Forwards bytes to `dest` while folding them into a running CRC32, so
/// the save path checksums without buffering the payload.
class Crc32OStreambuf : public std::streambuf {
 public:
  explicit Crc32OStreambuf(std::streambuf* dest) : dest_(dest) {}
  uint32_t crc() const { return crc_ ^ 0xFFFFFFFFu; }

 protected:
  int overflow(int ch) override {
    if (ch == traits_type::eof()) return 0;
    const char c = static_cast<char>(ch);
    return xsputn(&c, 1) == 1 ? ch : traits_type::eof();
  }
  std::streamsize xsputn(const char* s, std::streamsize n) override {
    crc_ = Crc32Update(crc_, s, static_cast<size_t>(n));
    return dest_->sputn(s, n);
  }

 private:
  std::streambuf* dest_;
  uint32_t crc_ = 0xFFFFFFFFu;
};

void WriteTag(std::ostream& out, const char (&tag)[4]) {
  out.write(tag, sizeof(tag));
}

bool ExpectTag(std::istream& in, const char (&tag)[4]) {
  char got[4];
  in.read(got, sizeof(got));
  return in.good() && std::memcmp(got, tag, sizeof(tag)) == 0;
}

/// Trivially-copyable element vectors are stored as u64 count + raw bytes.
template <typename T>
void WriteVec(std::ostream& out, std::span<const T> v) {
  WritePod(out, static_cast<uint64_t>(v.size()));
  if (!v.empty()) {
    out.write(reinterpret_cast<const char*>(v.data()), v.size() * sizeof(T));
  }
}

template <typename T>
void WriteVec(std::ostream& out, const std::vector<T>& v) {
  WriteVec(out, std::span<const T>{v.data(), v.size()});
}

/// `max_bytes` (the payload size) caps the element count so a corrupt or
/// forged-checksum header can neither over-allocate nor loop: any honest
/// count satisfies count * sizeof(T) <= payload bytes, so the resize is
/// bounded by the file size and a lying count fails before allocating.
template <typename T>
bool ReadVec(std::istream& in, std::vector<T>* v, uint64_t max_bytes) {
  uint64_t count = 0;
  if (!ReadPod(in, &count) || count > max_bytes / sizeof(T)) return false;
  v->resize(count);
  if (count > 0) {
    in.read(reinterpret_cast<char*>(v->data()), count * sizeof(T));
  }
  return in.good();
}

}  // namespace

/// Private-state accessor for snapshot save/load; befriended by GatIndex
/// and the four index components.
struct SnapshotIo {
  static bool SavePayload(const GatIndex& index, std::ostream& out,
                          uint32_t dataset_fingerprint) {
    const GatConfig& config = index.config();
    WritePod(out, static_cast<int32_t>(config.depth));
    WritePod(out, static_cast<int32_t>(config.memory_levels));
    WritePod(out, static_cast<int32_t>(config.tas_intervals));
    WritePod(out, dataset_fingerprint);

    WriteTag(out, kTagGrid);
    const Rect& space = index.grid().space();  // already padded
    WritePod(out, space.min.x);
    WritePod(out, space.min.y);
    WritePod(out, space.max.x);
    WritePod(out, space.max.y);

    SaveHicl(index.hicl(), out);
    SaveItl(index.itl(), out);
    SaveTas(index.tas(), out);
    SaveApl(index.apl(), out);
    WriteTag(out, kTagEnd);
    return out.good();
  }

  static std::unique_ptr<GatIndex> LoadPayload(std::istream& in,
                                               uint64_t payload_size,
                                               const GatConfig* expected,
                                               uint32_t expected_fingerprint,
                                               Executor* executor) {
    GatConfig config;
    int32_t depth = 0, memory_levels = 0, tas_intervals = 0;
    uint32_t fingerprint = 0;
    if (!ReadPod(in, &depth) || !ReadPod(in, &memory_levels) ||
        !ReadPod(in, &tas_intervals) || !ReadPod(in, &fingerprint)) {
      return nullptr;
    }
    config.depth = depth;
    config.memory_levels = memory_levels;
    config.tas_intervals = tas_intervals;
    if (expected != nullptr && !(config == *expected)) return nullptr;
    // Pairing check: both sides must have opted in (non-zero) to bind.
    if (expected_fingerprint != 0 && fingerprint != 0 &&
        fingerprint != expected_fingerprint) {
      return nullptr;
    }
    if (config.depth < 1 || config.depth > 12 || config.memory_levels < 0 ||
        config.memory_levels > config.depth || config.tas_intervals < 1) {
      return nullptr;
    }

    if (!ExpectTag(in, kTagGrid)) return nullptr;
    Rect space;
    if (!ReadPod(in, &space.min.x) || !ReadPod(in, &space.min.y) ||
        !ReadPod(in, &space.max.x) || !ReadPod(in, &space.max.y)) {
      return nullptr;
    }
    if (!(space.Width() > 0.0) || !(space.Height() > 0.0)) return nullptr;

    // Private restore ctor; components are filled below.
    std::unique_ptr<GatIndex> index(
        new GatIndex(config, GridGeometry::Restore(space, config.depth)));
    index->hicl_ = LoadHicl(in, payload_size, config, executor);
    if (index->hicl_ == nullptr) return nullptr;
    uint64_t itl_rows_required = 0;  // 1 + max trajectory ID the ITL emits
    index->itl_ = LoadItl(in, payload_size, config, &itl_rows_required);
    if (index->itl_ == nullptr) return nullptr;
    index->tas_ = LoadTas(in, payload_size, config);
    if (index->tas_ == nullptr) return nullptr;
    index->apl_ = LoadApl(in, payload_size, executor);
    if (index->apl_ == nullptr) return nullptr;
    if (!ExpectTag(in, kTagEnd)) return nullptr;

    // Cross-section consistency: every trajectory ID the ITL can emit as
    // a candidate must have a TAS row and an APL row — otherwise a load
    // would succeed but the first query would index out of bounds.
    const uint64_t rows = index->tas_->num_trajectories();
    if (index->apl_->num_trajectories() != rows) return nullptr;
    if (itl_rows_required > rows) return nullptr;
    return index;
  }

  static void set_build_seconds(GatIndex& index, double seconds) {
    index.build_seconds_ = seconds;
  }

 private:
  // ------------------------------------------------------------------ HICL
  static void SaveHicl(const Hicl& hicl, std::ostream& out) {
    WriteTag(out, kTagHicl);
    WritePod(out, static_cast<uint64_t>(hicl.memory_bytes_));
    WritePod(out, static_cast<uint64_t>(hicl.disk_bytes_));
    WritePod(out, static_cast<uint64_t>(hicl.num_activities_));
    // Written through the views so a mapped index (owned_ empty, lists
    // served from the file mapping) snapshots byte-identically to a
    // built one.
    for (uint32_t a = 0; a < hicl.num_activities_; ++a) {
      for (int level = 1; level <= hicl.depth_; ++level) {
        WriteVec(out, hicl.ViewAt(a, level).cells);
      }
    }
  }

  static std::unique_ptr<Hicl> LoadHicl(std::istream& in,
                                        uint64_t payload_size,
                                        const GatConfig& config,
                                        Executor* executor) {
    if (!ExpectTag(in, kTagHicl)) return nullptr;
    std::unique_ptr<Hicl> hicl(new Hicl());
    hicl->depth_ = config.depth;
    hicl->memory_levels_ = config.memory_levels;
    uint64_t memory_bytes = 0, disk_bytes = 0, num_activities = 0;
    // Every activity stores `depth` vectors of >= 8 bytes (the count
    // word), so any honest count satisfies this bound — and a forged
    // one fails before the resize can over-allocate.
    if (!ReadPod(in, &memory_bytes) || !ReadPod(in, &disk_bytes) ||
        !ReadPod(in, &num_activities) ||
        num_activities >
            payload_size / (8u * static_cast<uint32_t>(config.depth))) {
      return nullptr;
    }
    hicl->memory_bytes_ = memory_bytes;
    hicl->disk_bytes_ = disk_bytes;
    hicl->owned_.resize(num_activities);
    // Deserialize sequentially (the stream is one cursor), then validate
    // the rows fanned out: the sorted/bounds sweeps dominate warm-start
    // CPU on large snapshots and are independent per activity.
    for (auto& lists : hicl->owned_) {
      lists.cells.resize(config.depth);
      for (int level = 1; level <= config.depth; ++level) {
        if (!ReadVec(in, &lists.cells[level - 1], payload_size)) {
          return nullptr;
        }
      }
    }
    const bool rows_ok = ValidateRows(
        executor, hicl->owned_.size(), [&hicl, &config](size_t row) {
          const auto& lists = hicl->owned_[row];
          for (int level = 1; level <= config.depth; ++level) {
            const auto& level_cells = lists.cells[level - 1];
            // Contains() binary-searches these lists; codes must be
            // sorted and addressable within the 4^level cells of the
            // level.
            const uint64_t cell_count = uint64_t{1} << (2 * level);
            if (!std::is_sorted(level_cells.begin(), level_cells.end()) ||
                (!level_cells.empty() && level_cells.back() >= cell_count)) {
              return false;
            }
          }
          return true;
        });
    if (!rows_ok) return nullptr;
    hicl->RebuildViews();
    return hicl;
  }

  // ------------------------------------------------------------------- ITL
  static void SaveItl(const Itl& itl, std::ostream& out) {
    WriteTag(out, kTagItl);
    WritePod(out, static_cast<uint64_t>(itl.memory_bytes_));
    WritePod(out, static_cast<uint64_t>(itl.cells_.size()));
    // The in-memory map is unordered; write cells sorted by code so the
    // snapshot bytes are deterministic for a given index.
    std::vector<uint32_t> codes;
    codes.reserve(itl.cells_.size());
    for (const auto& [code, _] : itl.cells_) codes.push_back(code);
    std::sort(codes.begin(), codes.end());
    for (uint32_t code : codes) {
      const Itl::CellPostings& cell = itl.cells_.at(code);
      WritePod(out, code);
      WriteVec(out, cell.activities);
      WriteVec(out, cell.offsets);
      WriteVec(out, cell.trajectories);
    }
  }

  static std::unique_ptr<Itl> LoadItl(std::istream& in, uint64_t payload_size,
                                      const GatConfig& config,
                                      uint64_t* rows_required) {
    if (!ExpectTag(in, kTagItl)) return nullptr;
    std::unique_ptr<Itl> itl(new Itl());
    uint64_t memory_bytes = 0, num_cells = 0;
    // Per cell: a 4-byte code plus three 8-byte count words, minimum.
    if (!ReadPod(in, &memory_bytes) || !ReadPod(in, &num_cells) ||
        num_cells > payload_size / 28u) {
      return nullptr;
    }
    const uint64_t leaf_cell_count = uint64_t{1} << (2 * config.depth);
    itl->memory_bytes_ = memory_bytes;
    itl->cells_.reserve(num_cells);
    *rows_required = 0;
    for (uint64_t c = 0; c < num_cells; ++c) {
      uint32_t code = 0;
      Itl::CellPostings cell;
      if (!ReadPod(in, &code) || code >= leaf_cell_count ||
          !ReadVec(in, &cell.activities, payload_size) ||
          !ReadVec(in, &cell.offsets, payload_size) ||
          !ReadVec(in, &cell.trajectories, payload_size)) {
        return nullptr;
      }
      if (!OffsetsValid(cell.offsets, cell.activities.size(),
                        cell.trajectories.size()) ||
          !std::is_sorted(cell.activities.begin(), cell.activities.end())) {
        return nullptr;
      }
      for (TrajectoryId t : cell.trajectories) {
        *rows_required = std::max<uint64_t>(*rows_required, uint64_t{t} + 1);
      }
      if (!itl->cells_.emplace(code, std::move(cell)).second) return nullptr;
    }
    return itl;
  }

  // ------------------------------------------------------------------- TAS
  static void SaveTas(const Tas& tas, std::ostream& out) {
    WriteTag(out, kTagTas);
    WriteVec(out, tas.intervals_);
    WriteVec(out, tas.offsets_);
  }

  static std::unique_ptr<Tas> LoadTas(std::istream& in, uint64_t payload_size,
                                      const GatConfig& config) {
    if (!ExpectTag(in, kTagTas)) return nullptr;
    std::unique_ptr<Tas> tas(new Tas());
    tas->num_intervals_ = config.tas_intervals;
    if (!ReadVec(in, &tas->intervals_, payload_size) ||
        !ReadVec(in, &tas->offsets_, payload_size)) {
      return nullptr;
    }
    if (tas->offsets_.empty() ||
        !OffsetsValid(tas->offsets_, tas->offsets_.size() - 1,
                      tas->intervals_.size())) {
      return nullptr;
    }
    return tas;
  }

  // ------------------------------------------------------------------- APL
  static void SaveApl(const Apl& apl, std::ostream& out) {
    WriteTag(out, kTagApl);
    WritePod(out, static_cast<uint64_t>(apl.disk_bytes_));
    WritePod(out, static_cast<uint64_t>(apl.rows_.size()));
    // Views, not owned storage, for the same mapped-index reason as
    // SaveHicl.
    for (const auto& row : apl.rows_) {
      WriteVec(out, row.activities);
      WriteVec(out, row.offsets);
      WriteVec(out, row.points);
    }
  }

  static std::unique_ptr<Apl> LoadApl(std::istream& in, uint64_t payload_size,
                                      Executor* executor) {
    if (!ExpectTag(in, kTagApl)) return nullptr;
    std::unique_ptr<Apl> apl(new Apl());
    uint64_t disk_bytes = 0, num_trajectories = 0;
    // Per row: three 8-byte count words, minimum.
    if (!ReadPod(in, &disk_bytes) || !ReadPod(in, &num_trajectories) ||
        num_trajectories > payload_size / 24u) {
      return nullptr;
    }
    apl->disk_bytes_ = disk_bytes;
    apl->owned_.resize(num_trajectories);
    // Same split as LoadHicl: sequential reads, fanned-out row checks.
    for (auto& tp : apl->owned_) {
      if (!ReadVec(in, &tp.activities, payload_size) ||
          !ReadVec(in, &tp.offsets, payload_size) ||
          !ReadVec(in, &tp.points, payload_size)) {
        return nullptr;
      }
    }
    const bool rows_ok = ValidateRows(
        executor, apl->owned_.size(), [&apl](size_t row) {
          const auto& tp = apl->owned_[row];
          return OffsetsValid(tp.offsets, tp.activities.size(),
                              tp.points.size()) &&
                 std::is_sorted(tp.activities.begin(), tp.activities.end());
        });
    if (!rows_ok) return nullptr;
    apl->RebuildViews();
    return apl;
  }
};

uint32_t DatasetFingerprint(const Dataset& dataset) {
  uint32_t crc = 0xFFFFFFFFu;
  auto add = [&crc](const void* p, size_t n) {
    crc = Crc32Update(crc, static_cast<const char*>(p), n);
  };
  const uint64_t n = dataset.size();
  add(&n, sizeof(n));
  for (const auto& tr : dataset.trajectories()) {
    const uint32_t points = static_cast<uint32_t>(tr.size());
    add(&points, sizeof(points));
    for (const auto& p : tr.points()) {
      add(&p.location.x, sizeof(p.location.x));
      add(&p.location.y, sizeof(p.location.y));
      const uint32_t acts = static_cast<uint32_t>(p.activities.size());
      add(&acts, sizeof(acts));
      if (acts > 0) add(p.activities.data(), acts * sizeof(ActivityId));
    }
  }
  crc ^= 0xFFFFFFFFu;
  return crc == 0 ? 1u : crc;  // reserve 0 for "not checked"
}

bool SaveSnapshot(const GatIndex& index, const std::string& path,
                  uint32_t dataset_fingerprint) {
  // Write-to-temp + rename: a crash mid-save or two processes priming the
  // same cache never leave a half-written file at `path` (the rename is
  // atomic on POSIX; losers of a race overwrite with an equivalent file).
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(kMagic, sizeof(kMagic));
    WritePod(out, kVersion);
    WritePod(out, uint32_t{0});  // CRC placeholder, patched below

    // Stream the payload straight to disk through the checksumming
    // buffer — no in-memory copy of the serialized index.
    Crc32OStreambuf crc_buf(out.rdbuf());
    std::ostream payload(&crc_buf);
    if (!SnapshotIo::SavePayload(index, payload, dataset_fingerprint) ||
        !payload.good() || !out.good()) {
      out.close();
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return false;
    }
    out.seekp(8, std::ios::beg);
    WritePod(out, crc_buf.crc());
    if (!out.good()) {
      out.close();
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

std::unique_ptr<GatIndex> LoadSnapshot(const std::string& path,
                                       const GatConfig* expected,
                                       uint32_t expected_fingerprint,
                                       Executor* executor) {
  Stopwatch timer;
  std::ifstream in(path, std::ios::binary);
  if (!in) return nullptr;
  in.seekg(0, std::ios::end);
  const auto end = in.tellg();
  if (end < 0 || static_cast<uint64_t>(end) < kHeaderBytes) return nullptr;
  const uint64_t payload_size = static_cast<uint64_t>(end) - kHeaderBytes;
  in.seekg(0, std::ios::beg);

  char magic[4];
  uint32_t version = 0, crc = 0;
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return nullptr;
  }
  if (!ReadPod(in, &version) || version != kVersion) return nullptr;
  if (!ReadPod(in, &crc)) return nullptr;

  // Two passes over the payload, zero copies of it: checksum first (a
  // forged stream never reaches the parser), then rewind and parse
  // straight from the file stream.
  uint32_t actual_crc = 0;
  if (!Crc32Stream(in, payload_size, &actual_crc) || actual_crc != crc) {
    return nullptr;
  }
  in.clear();
  in.seekg(kHeaderBytes, std::ios::beg);
  auto index = SnapshotIo::LoadPayload(in, payload_size, expected,
                                       expected_fingerprint, executor);
  if (index != nullptr) {
    SnapshotIo::set_build_seconds(*index, timer.ElapsedMillis() / 1000.0);
  }
  return index;
}

}  // namespace gat
