#include "gat/storage/disk_tier.h"

namespace gat {

void DiskTier::Prefetch(uint64_t /*offset*/, uint64_t /*bytes*/) const {}

void SimulatedDiskTier::Fetch(uint64_t /*offset*/, uint64_t /*bytes*/,
                              DiskAccessCounter* counter) const {
  if (counter != nullptr) counter->RecordRead();
}

const SimulatedDiskTier* SimulatedDiskTier::Instance() {
  static const SimulatedDiskTier tier;
  return &tier;
}

}  // namespace gat
