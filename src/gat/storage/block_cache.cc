#include "gat/storage/block_cache.h"

#include <algorithm>
#include <bit>

#include "gat/common/check.h"

namespace gat {
namespace {

/// (file, block) packed into the one word the LRU list/map store. 40
/// bits of block index cover 512 TiB at the smallest block size; 24
/// bits of file id cover any realistic shard count.
uint64_t PackKey(uint32_t file, uint64_t block) {
  GAT_DCHECK(block < (uint64_t{1} << 40));
  GAT_DCHECK(file < (uint32_t{1} << 24));  // ids above this would alias
  return (static_cast<uint64_t>(file) << 40) | block;
}

}  // namespace

BlockCache::BlockCache(const BlockCacheConfig& config) {
  block_bytes_ = static_cast<uint32_t>(std::bit_floor(
      std::clamp<uint64_t>(config.block_bytes, 512, 1ull << 20)));
  const uint32_t num_shards = static_cast<uint32_t>(
      std::bit_floor(std::clamp<uint64_t>(config.shards, 1, 64)));
  // At least one block per shard: a cache that cannot hold a block at
  // all would turn every lookup into a miss-and-evict of itself, which
  // is indistinguishable from (but slower than) no cache.
  capacity_blocks_ =
      std::max<uint64_t>(config.capacity_bytes / block_bytes_, num_shards);
  shards_ = std::vector<Shard>(num_shards);
  const uint64_t per_shard =
      std::max<uint64_t>(capacity_blocks_ / num_shards, 1);
  for (auto& shard : shards_) shard.capacity = per_shard;
}

uint32_t BlockCache::RegisterFile() {
  return next_file_id_.fetch_add(1, std::memory_order_relaxed);
}

BlockCache::Shard& BlockCache::ShardFor(uint64_t key) {
  // Multiplicative hash over the packed key: consecutive blocks of one
  // file spread across shards instead of hammering one mutex.
  return shards_[(key * 0x9E3779B97F4A7C15ull) >> 32 & (shards_.size() - 1)];
}

bool BlockCache::Touch(uint32_t file, uint64_t block) {
  return LookupInternal(file, block, /*prefetch=*/false);
}

bool BlockCache::Warm(uint32_t file, uint64_t block) {
  return LookupInternal(file, block, /*prefetch=*/true);
}

bool BlockCache::LookupInternal(uint32_t file, uint64_t block,
                                bool prefetch) {
  const uint64_t key = PackKey(file, block);
  Shard& shard = ShardFor(key);
  bool hit;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    hit = it != shard.index.end();
    if (hit) shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  }
  if (prefetch) {
    (hit ? prefetch_hits_ : prefetched_)
        .fetch_add(1, std::memory_order_relaxed);
  } else {
    (hit ? hits_ : misses_).fetch_add(1, std::memory_order_relaxed);
  }
  return hit;
}

void BlockCache::Publish(uint32_t file, uint64_t block) {
  const uint64_t key = PackKey(file, block);
  Shard& shard = ShardFor(key);
  bool evicted = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      // A concurrent reader of the same block published first; their
      // copy of the verification covered these bytes.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    if (shard.lru.size() >= shard.capacity) {
      shard.index.erase(shard.lru.back());
      shard.lru.pop_back();
      evicted = true;
    }
    shard.lru.push_front(key);
    shard.index.emplace(key, shard.lru.begin());
  }
  if (evicted) evictions_.fetch_add(1, std::memory_order_relaxed);
}

BlockCacheStats BlockCache::Snapshot() const {
  BlockCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.prefetch_hits = prefetch_hits_.load(std::memory_order_relaxed);
  s.prefetched = prefetched_.load(std::memory_order_relaxed);
  return s;
}

uint64_t BlockCache::ResidentBlocks() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.index.size();
  }
  return total;
}

}  // namespace gat
