#include "gat/storage/block_cache.h"

#include <algorithm>
#include <bit>
#include <iterator>

#include "gat/common/check.h"

namespace gat {
namespace {

/// (file, block) packed into the one word the LRU list/map store. 40
/// bits of block index cover 512 TiB at the smallest block size; 24
/// bits of file id cover any realistic shard count (slot ids recycle
/// below kMaxLiveFiles, far under the bound).
uint64_t PackKey(uint32_t file, uint64_t block) {
  GAT_DCHECK(block < (uint64_t{1} << 40));
  GAT_DCHECK(file < (uint32_t{1} << 24));  // ids above this would alias
  return (static_cast<uint64_t>(file) << 40) | block;
}

uint32_t FileOfKey(uint64_t key) { return static_cast<uint32_t>(key >> 40); }

/// 4-bit saturation point of the TinyLFU counters: high enough to
/// separate hot from scanned-once, small enough that halving decays a
/// retired hot set in a few aging rounds.
constexpr uint8_t kFreqMax = 15;

}  // namespace

BlockCache::BlockCache(const BlockCacheConfig& config) {
  admission_ = config.admission;
  block_bytes_ = static_cast<uint32_t>(std::bit_floor(
      std::clamp<uint64_t>(config.block_bytes, 512, 1ull << 20)));
  const uint32_t num_shards = static_cast<uint32_t>(
      std::bit_floor(std::clamp<uint64_t>(config.shards, 1, 64)));
  // At least one block per shard: a cache that cannot hold a block at
  // all would turn every lookup into a miss-and-evict of itself, which
  // is indistinguishable from (but slower than) no cache.
  capacity_blocks_ =
      std::max<uint64_t>(config.capacity_bytes / block_bytes_, num_shards);
  shards_ = std::vector<Shard>(num_shards);
  const uint64_t per_shard =
      std::max<uint64_t>(capacity_blocks_ / num_shards, 1);
  for (auto& shard : shards_) shard.capacity = per_shard;
  generations_ = std::make_unique<std::atomic<uint32_t>[]>(kMaxLiveFiles);
  for (uint32_t i = 0; i < kMaxLiveFiles; ++i) {
    generations_[i].store(0, std::memory_order_relaxed);
  }
}

BlockFileToken BlockCache::RegisterFile() {
  std::lock_guard<std::mutex> lock(files_mu_);
  uint32_t id;
  if (!free_ids_.empty()) {
    id = free_ids_.back();
    free_ids_.pop_back();
  } else {
    // More *live* mappings than slots means tokens are leaking (a
    // retired snapshot that never unregistered) — fail loudly instead
    // of aliasing block keys.
    GAT_CHECK(next_unused_id_ < kMaxLiveFiles);
    id = next_unused_id_++;
  }
  // Even -> odd: the slot is live again, under a generation no earlier
  // token of this id ever carried.
  const uint32_t generation =
      generations_[id].load(std::memory_order_relaxed) + 1;
  generations_[id].store(generation, std::memory_order_release);
  return {id, generation};
}

void BlockCache::Unregister(const BlockFileToken& token) {
  {
    std::lock_guard<std::mutex> lock(files_mu_);
    // Idempotent: only the registration that still owns the slot
    // retires it (a double-unregister or a stale token is a no-op).
    if (generations_[token.id].load(std::memory_order_relaxed) !=
        token.generation) {
      stale_drops_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    // Odd -> even, *before* the purge: from here on no operation
    // through this token can insert (Publish re-checks the generation
    // under the shard mutex), so the purge below leaves nothing behind.
    generations_[token.id].store(token.generation + 1,
                                 std::memory_order_release);
  }
  uint64_t purged = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto bucket = shard.by_file.find(token.id);
    if (bucket != shard.by_file.end()) {
      for (const uint64_t key : bucket->second) {
        const auto it = shard.index.find(key);
        shard.lru.erase(it->second);
        shard.index.erase(it);
        ++purged;
      }
      shard.by_file.erase(bucket);
    }
    if (admission_ == CacheAdmission::kScanResistant) {
      // The ghost list and frequency table key on (id, block) with no
      // generation, so they must forget the retired file here — a ghost
      // entry surviving into a recycled id would hand the successor's
      // unrelated blocks a free ghost-hit admission.
      for (auto it = shard.ghost.begin(); it != shard.ghost.end();) {
        if (FileOfKey(*it) == token.id) {
          shard.ghost_index.erase(*it);
          it = shard.ghost.erase(it);
        } else {
          ++it;
        }
      }
      for (auto it = shard.freq.begin(); it != shard.freq.end();) {
        if (FileOfKey(it->first) == token.id) {
          it = shard.freq.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
  // Only now is the id reusable: a successor registered after this
  // point can never see (or be aliased by) a block of this generation.
  {
    std::lock_guard<std::mutex> lock(files_mu_);
    free_ids_.push_back(token.id);
  }
  invalidated_.fetch_add(purged, std::memory_order_relaxed);
  files_retired_.fetch_add(1, std::memory_order_relaxed);
}

BlockCache::Shard& BlockCache::ShardFor(uint64_t key) {
  // Multiplicative hash over the packed key: consecutive blocks of one
  // file spread across shards instead of hammering one mutex.
  return shards_[(key * 0x9E3779B97F4A7C15ull) >> 32 & (shards_.size() - 1)];
}

bool BlockCache::Touch(const BlockFileToken& token, uint64_t block) {
  return LookupInternal(token, block, /*prefetch=*/false);
}

bool BlockCache::Warm(const BlockFileToken& token, uint64_t block) {
  return LookupInternal(token, block, /*prefetch=*/true);
}

bool BlockCache::LookupInternal(const BlockFileToken& token, uint64_t block,
                                bool prefetch) {
  const uint64_t key = PackKey(token.id, block);
  Shard& shard = ShardFor(key);
  bool hit;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (!Live(token)) {
      // A reader that raced past its Unregister: never a hit (the id
      // may already be serving a successor's blocks), never counted as
      // cache traffic.
      stale_drops_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    auto it = shard.index.find(key);
    hit = it != shard.index.end();
    if (hit) shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    if (!prefetch && admission_ == CacheAdmission::kScanResistant) {
      NoteDemandAccessLocked(shard, key);
    }
  }
  if (prefetch) {
    (hit ? prefetch_hits_ : prefetched_)
        .fetch_add(1, std::memory_order_relaxed);
  } else {
    (hit ? hits_ : misses_).fetch_add(1, std::memory_order_relaxed);
  }
  return hit;
}

void BlockCache::NoteDemandAccessLocked(Shard& shard, uint64_t key) {
  uint8_t& count = shard.freq[key];
  if (count < kFreqMax) ++count;
  // Age on a fixed demand-lookup schedule: halving (and dropping zeros)
  // makes popularity a sliding window, so last hour's bulk scan cannot
  // outvote this minute's working set forever — and bounds the table.
  if (++shard.freq_ops >= 8 * shard.capacity) {
    shard.freq_ops = 0;
    for (auto it = shard.freq.begin(); it != shard.freq.end();) {
      it->second = static_cast<uint8_t>(it->second >> 1);
      it = it->second == 0 ? shard.freq.erase(it) : std::next(it);
    }
  }
}

void BlockCache::Publish(const BlockFileToken& token, uint64_t block,
                         bool prefetch) {
  const uint64_t key = PackKey(token.id, block);
  Shard& shard = ShardFor(key);
  bool evicted = false;
  bool ghost_hit = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (!Live(token)) {
      // Racing with (or after) Unregister: dropping the insert is what
      // guarantees the purge leaves nothing behind — see Unregister.
      stale_drops_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      // A concurrent reader of the same block published first; their
      // copy of the verification covered these bytes.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    const bool full = shard.lru.size() >= shard.capacity;
    if (full && admission_ == CacheAdmission::kScanResistant) {
      const auto ghost_it = shard.ghost_index.find(key);
      if (ghost_it != shard.ghost_index.end()) {
        // Re-referenced while remembered: the 2Q admission signal. The
        // key graduates out of the ghost list into residency.
        shard.ghost.erase(ghost_it->second);
        shard.ghost_index.erase(ghost_it);
        ghost_hit = true;
      } else if (!prefetch) {
        // The TinyLFU duel: the candidate must be strictly more popular
        // than the block it would evict. A once-touched scan block
        // (freq 1) never beats a warm victim, which is the whole point.
        const auto f = [&shard](uint64_t k) {
          const auto fit = shard.freq.find(k);
          return fit == shard.freq.end() ? uint8_t{0} : fit->second;
        };
        if (f(key) <= f(shard.lru.back())) {
          // Rejected: served but not cached. Remember the key so a
          // second reference within the ghost window admits it.
          shard.ghost.push_front(key);
          shard.ghost_index.emplace(key, shard.ghost.begin());
          if (shard.ghost.size() > shard.capacity) {
            shard.ghost_index.erase(shard.ghost.back());
            shard.ghost.pop_back();
          }
          admission_rejects_.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
    }
    if (full) {
      const uint64_t victim = shard.lru.back();
      shard.index.erase(victim);
      const auto bucket = shard.by_file.find(FileOfKey(victim));
      bucket->second.erase(victim);
      if (bucket->second.empty()) shard.by_file.erase(bucket);
      shard.lru.pop_back();
      evicted = true;
      if (admission_ == CacheAdmission::kScanResistant &&
          shard.ghost_index.find(victim) == shard.ghost_index.end()) {
        // Evicted residents get the same second chance rejected
        // candidates get.
        shard.ghost.push_front(victim);
        shard.ghost_index.emplace(victim, shard.ghost.begin());
        if (shard.ghost.size() > shard.capacity) {
          shard.ghost_index.erase(shard.ghost.back());
          shard.ghost.pop_back();
        }
      }
    }
    shard.lru.push_front(key);
    shard.index.emplace(key, shard.lru.begin());
    shard.by_file[token.id].insert(key);
  }
  if (evicted) evictions_.fetch_add(1, std::memory_order_relaxed);
  if (ghost_hit) ghost_hits_.fetch_add(1, std::memory_order_relaxed);
}

BlockCacheStats BlockCache::Snapshot() const {
  BlockCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.prefetch_hits = prefetch_hits_.load(std::memory_order_relaxed);
  s.prefetched = prefetched_.load(std::memory_order_relaxed);
  s.invalidated = invalidated_.load(std::memory_order_relaxed);
  s.files_retired = files_retired_.load(std::memory_order_relaxed);
  s.stale_drops = stale_drops_.load(std::memory_order_relaxed);
  s.admission_rejects = admission_rejects_.load(std::memory_order_relaxed);
  s.ghost_hits = ghost_hits_.load(std::memory_order_relaxed);
  return s;
}

uint64_t BlockCache::ResidentBlocks() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.index.size();
  }
  return total;
}

}  // namespace gat
