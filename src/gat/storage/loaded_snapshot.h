#ifndef GAT_STORAGE_LOADED_SNAPSHOT_H_
#define GAT_STORAGE_LOADED_SNAPSHOT_H_

#include <memory>
#include <string>
#include <utility>

#include "gat/storage/mapped_snapshot.h"

namespace gat {

/// An owning handle to one loaded serving index, whichever way it was
/// materialized: a `MappedSnapshot` (mapping + block-cached disk tier +
/// index, all of whose views die together) or a heap-built/stream-loaded
/// `GatIndex`. The wrapper makes the lifetime rule mechanical — "the
/// index pointer is valid exactly as long as the LoadedSnapshot" — so
/// callers never hand-assemble a bare `GatIndex*` next to the
/// `MappedSnapshot` that owns it and carry the pairing obligation
/// themselves (the KNOWN_ISSUES caveat this type retires).
///
/// Movable, not copyable: exactly one owner. An empty handle (default
/// constructed, or a failed `LoadMapped`) is falsy and has no index.
class LoadedSnapshot {
 public:
  LoadedSnapshot() = default;

  LoadedSnapshot(LoadedSnapshot&&) = default;
  LoadedSnapshot& operator=(LoadedSnapshot&&) = default;
  LoadedSnapshot(const LoadedSnapshot&) = delete;
  LoadedSnapshot& operator=(const LoadedSnapshot&) = delete;

  /// Wraps a mapped snapshot (nullptr yields an empty handle, so the
  /// result of `MappedSnapshot::Load` can be passed through directly).
  static LoadedSnapshot FromMapped(std::unique_ptr<MappedSnapshot> snapshot) {
    LoadedSnapshot out;
    if (snapshot != nullptr) {
      out.index_ = &snapshot->index();
      out.mapped_ = std::move(snapshot);
    }
    return out;
  }

  /// Wraps a heap-owned index (built, or stream-loaded via
  /// `LoadSnapshot`). nullptr yields an empty handle.
  static LoadedSnapshot FromOwned(std::unique_ptr<GatIndex> index) {
    LoadedSnapshot out;
    out.index_ = index.get();
    out.owned_ = std::move(index);
    return out;
  }

  /// `MappedSnapshot::Load` + `FromMapped` in one step: the one-liner
  /// for serving an index out of a snapshot file with the lifetime
  /// already tied up. Empty handle on any load failure.
  static LoadedSnapshot LoadMapped(const std::string& path,
                                   const MappedSnapshotOptions& options = {}) {
    return FromMapped(MappedSnapshot::Load(path, options));
  }

  /// The serving index; nullptr only for an empty handle.
  const GatIndex* index() const { return index_; }
  const GatIndex& operator*() const { return *index_; }
  const GatIndex* operator->() const { return index_; }

  /// The mapped storage side, when this snapshot serves out of a
  /// mapping (the prefetcher and the stager need the tier); nullptr for
  /// heap-owned indexes.
  const MappedSnapshot* mapped() const { return mapped_.get(); }

  explicit operator bool() const { return index_ != nullptr; }

 private:
  std::unique_ptr<MappedSnapshot> mapped_;
  std::unique_ptr<GatIndex> owned_;
  const GatIndex* index_ = nullptr;
};

}  // namespace gat

#endif  // GAT_STORAGE_LOADED_SNAPSHOT_H_
