#include "gat/storage/async_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "gat/common/check.h"
#include "gat/index/snapshot_format.h"

#if defined(__linux__)
#include <sys/mman.h>
#include <sys/syscall.h>

#include <linux/io_uring.h>
#endif

// io_uring via raw syscalls needs: the syscall numbers (glibc headers),
// the uapi structs, and IORING_OP_READ (kernel headers >= 5.6, matching
// the first kernel where the plain-fd READ opcode exists). Anything
// less and the pread pool is the only backend compiled in.
#if defined(__linux__) && defined(__NR_io_uring_setup) && \
    defined(__NR_io_uring_enter) && defined(IORING_OP_READ)
#define GAT_HAVE_IO_URING 1
#else
#define GAT_HAVE_IO_URING 0
#endif

namespace gat {
namespace {

using snapshot_format::Crc32;

uint32_t ClampPow2(uint32_t v, uint32_t lo, uint32_t hi) {
  return std::bit_ceil(std::clamp(v, lo, hi));
}

}  // namespace

const char* IoBackendName(IoBackend backend) {
  switch (backend) {
    case IoBackend::kThreadPool:
      return "pread-pool";
    case IoBackend::kIoUring:
      return "io_uring";
  }
  return "unknown";
}

bool ProbeIoUring() {
#if GAT_HAVE_IO_URING
  // One setup attempt per process: ENOSYS (old kernel) and EPERM/EACCES
  // (seccomp'd container) are both permanent answers for our lifetime.
  static const bool available = [] {
    struct io_uring_params params;
    std::memset(&params, 0, sizeof(params));
    const long fd = syscall(__NR_io_uring_setup, 4, &params);
    if (fd < 0) return false;
    close(static_cast<int>(fd));
    return true;
  }();
  return available;
#else
  return false;
#endif
}

// --------------------------------------------------------------------------
// AsyncBlockIo — io_uring backend
// --------------------------------------------------------------------------

#if GAT_HAVE_IO_URING

/// The mmap'd ring state, liburing-free. Pointers into the shared rings
/// follow the kernel's published offsets; head/tail crossings use the
/// acquire/release protocol the uring ABI specifies (kernel releases CQ
/// tail, we release SQ tail).
struct AsyncBlockIo::UringState {
  int ring_fd = -1;
  struct io_uring_params params;

  uint8_t* sq_ring = nullptr;
  size_t sq_ring_bytes = 0;
  uint8_t* cq_ring = nullptr;  // aliases sq_ring under SINGLE_MMAP
  size_t cq_ring_bytes = 0;
  struct io_uring_sqe* sqes = nullptr;
  size_t sqes_bytes = 0;

  unsigned* sq_head = nullptr;
  unsigned* sq_tail = nullptr;
  unsigned* sq_mask = nullptr;
  unsigned* sq_array = nullptr;
  unsigned* cq_head = nullptr;
  unsigned* cq_tail = nullptr;
  unsigned* cq_mask = nullptr;
  struct io_uring_cqe* cqes = nullptr;

  UringState() { std::memset(&params, 0, sizeof(params)); }
};

bool AsyncBlockIo::SetupUring(uint32_t queue_depth) {
  auto state = std::make_unique<UringState>();
  const long fd =
      syscall(__NR_io_uring_setup, queue_depth, &state->params);
  if (fd < 0) return false;
  state->ring_fd = static_cast<int>(fd);

  const struct io_uring_params& p = state->params;
  size_t sq_bytes = p.sq_off.array + p.sq_entries * sizeof(unsigned);
  size_t cq_bytes = p.cq_off.cqes + p.cq_entries * sizeof(struct io_uring_cqe);
  const bool single_mmap = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (single_mmap) sq_bytes = cq_bytes = std::max(sq_bytes, cq_bytes);

  void* sq =
      mmap(nullptr, sq_bytes, PROT_READ | PROT_WRITE,
           MAP_SHARED | MAP_POPULATE, state->ring_fd, IORING_OFF_SQ_RING);
  if (sq == MAP_FAILED) {
    close(state->ring_fd);
    return false;
  }
  state->sq_ring = static_cast<uint8_t*>(sq);
  state->sq_ring_bytes = sq_bytes;

  if (single_mmap) {
    state->cq_ring = state->sq_ring;
    state->cq_ring_bytes = 0;  // no separate mapping to unmap
  } else {
    void* cq =
        mmap(nullptr, cq_bytes, PROT_READ | PROT_WRITE,
             MAP_SHARED | MAP_POPULATE, state->ring_fd, IORING_OFF_CQ_RING);
    if (cq == MAP_FAILED) {
      munmap(state->sq_ring, state->sq_ring_bytes);
      close(state->ring_fd);
      return false;
    }
    state->cq_ring = static_cast<uint8_t*>(cq);
    state->cq_ring_bytes = cq_bytes;
  }

  state->sqes_bytes = p.sq_entries * sizeof(struct io_uring_sqe);
  void* sqes =
      mmap(nullptr, state->sqes_bytes, PROT_READ | PROT_WRITE,
           MAP_SHARED | MAP_POPULATE, state->ring_fd, IORING_OFF_SQES);
  if (sqes == MAP_FAILED) {
    if (state->cq_ring_bytes != 0) munmap(state->cq_ring, state->cq_ring_bytes);
    munmap(state->sq_ring, state->sq_ring_bytes);
    close(state->ring_fd);
    return false;
  }
  state->sqes = static_cast<struct io_uring_sqe*>(sqes);

  auto at = [](uint8_t* base, uint32_t off) {
    return reinterpret_cast<unsigned*>(base + off);
  };
  state->sq_head = at(state->sq_ring, p.sq_off.head);
  state->sq_tail = at(state->sq_ring, p.sq_off.tail);
  state->sq_mask = at(state->sq_ring, p.sq_off.ring_mask);
  state->sq_array = at(state->sq_ring, p.sq_off.array);
  state->cq_head = at(state->cq_ring, p.cq_off.head);
  state->cq_tail = at(state->cq_ring, p.cq_off.tail);
  state->cq_mask = at(state->cq_ring, p.cq_off.ring_mask);
  state->cqes =
      reinterpret_cast<struct io_uring_cqe*>(state->cq_ring + p.cq_off.cqes);

  uring_ = std::move(state);
  return true;
}

void AsyncBlockIo::TeardownUring() {
  if (uring_ == nullptr) return;
  munmap(uring_->sqes, uring_->sqes_bytes);
  if (uring_->cq_ring_bytes != 0) {
    munmap(uring_->cq_ring, uring_->cq_ring_bytes);
  }
  munmap(uring_->sq_ring, uring_->sq_ring_bytes);
  close(uring_->ring_fd);
  uring_.reset();
}

void AsyncBlockIo::UringSubmitLocked(Request* request) {
  UringState& u = *uring_;
  unsigned tail = __atomic_load_n(u.sq_tail, __ATOMIC_RELAXED);
  // The in-flight bound keeps outstanding requests <= sq_entries and the
  // kernel consumes entries during io_uring_enter (no SQPOLL), so the
  // ring cannot be full here; the loop is pure defense.
  while (tail - __atomic_load_n(u.sq_head, __ATOMIC_ACQUIRE) >=
         u.params.sq_entries) {
    syscall(__NR_io_uring_enter, u.ring_fd, 0, 0, 0, nullptr, 0);
  }
  const unsigned idx = tail & *u.sq_mask;
  struct io_uring_sqe* sqe = &u.sqes[idx];
  std::memset(sqe, 0, sizeof(*sqe));
  if (request != nullptr) {
    sqe->opcode = IORING_OP_READ;
    sqe->fd = request->fd;
    sqe->off = request->offset + request->progress;
    sqe->addr = reinterpret_cast<uint64_t>(
        static_cast<char*>(request->buf) + request->progress);
    sqe->len = request->len - request->progress;
    sqe->user_data = reinterpret_cast<uint64_t>(request);
  } else {
    // Shutdown sentinel: a NOP whose user_data 0 tells the reaper to
    // exit. Only ever submitted after Drain(), so it is the final CQE.
    sqe->opcode = IORING_OP_NOP;
    sqe->user_data = 0;
  }
  u.sq_array[idx] = idx;
  __atomic_store_n(u.sq_tail, tail + 1, __ATOMIC_RELEASE);
  for (;;) {
    const long ret =
        syscall(__NR_io_uring_enter, u.ring_fd, 1, 0, 0, nullptr, 0);
    if (ret >= 0) break;
    GAT_CHECK(errno == EINTR || errno == EAGAIN || errno == EBUSY);
  }
}

void AsyncBlockIo::UringReaperLoop() {
  UringState& u = *uring_;
  for (;;) {
    const unsigned head = __atomic_load_n(u.cq_head, __ATOMIC_RELAXED);
    if (head == __atomic_load_n(u.cq_tail, __ATOMIC_ACQUIRE)) {
      const long ret = syscall(__NR_io_uring_enter, u.ring_fd, 0, 1,
                               IORING_ENTER_GETEVENTS, nullptr, 0);
      GAT_CHECK(ret >= 0 || errno == EINTR || errno == EAGAIN ||
                errno == EBUSY);
      continue;
    }
    const struct io_uring_cqe* cqe = &u.cqes[head & *u.cq_mask];
    const uint64_t user_data = cqe->user_data;
    const int32_t res = cqe->res;
    __atomic_store_n(u.cq_head, head + 1, __ATOMIC_RELEASE);
    if (user_data == 0) return;  // shutdown sentinel
    Request* request = reinterpret_cast<Request*>(user_data);
    const uint32_t wanted = request->len - request->progress;
    if (res > 0 && static_cast<uint32_t>(res) < wanted) {
      // Short read (buffered files may return early): continue where it
      // stopped. The in-flight slot stays held across the continuation.
      request->progress += static_cast<uint32_t>(res);
      std::lock_guard<std::mutex> lock(submit_mu_);
      UringSubmitLocked(request);
      continue;
    }
    const int64_t result =
        res < 0 ? res
                : static_cast<int64_t>(request->progress) + res;
    Complete(request, result);
  }
}

#else  // !GAT_HAVE_IO_URING

struct AsyncBlockIo::UringState {};

bool AsyncBlockIo::SetupUring(uint32_t) { return false; }
void AsyncBlockIo::TeardownUring() {}
void AsyncBlockIo::UringSubmitLocked(Request*) {}
void AsyncBlockIo::UringReaperLoop() {}

#endif  // GAT_HAVE_IO_URING

// --------------------------------------------------------------------------
// AsyncBlockIo — shared core + pread pool backend
// --------------------------------------------------------------------------

AsyncBlockIo::AsyncBlockIo(const AsyncIoOptions& options) {
  queue_depth_ = ClampPow2(options.queue_depth, 4, 512);

  bool want_uring = options.allow_io_uring;
  if (const char* env = std::getenv("GAT_IO_BACKEND")) {
    if (std::strcmp(env, "pool") == 0) {
      want_uring = false;
    } else if (std::strcmp(env, "uring") == 0) {
      want_uring = true;
    }
  }

  if (want_uring && ProbeIoUring() && SetupUring(queue_depth_)) {
    backend_ = IoBackend::kIoUring;
    reaper_ = std::thread([this] { UringReaperLoop(); });
    return;
  }

  backend_ = IoBackend::kThreadPool;
  const uint32_t workers = std::clamp<uint32_t>(options.workers, 1, 16);
  pool_workers_.reserve(workers);
  for (uint32_t i = 0; i < workers; ++i) {
    pool_workers_.emplace_back([this] { PoolWorkerLoop(); });
  }
}

AsyncBlockIo::~AsyncBlockIo() {
  Drain();
  if (backend_ == IoBackend::kIoUring) {
    {
      std::lock_guard<std::mutex> lock(submit_mu_);
      UringSubmitLocked(nullptr);  // NOP sentinel — the final CQE
    }
    reaper_.join();
    TeardownUring();
  } else {
    {
      std::lock_guard<std::mutex> lock(pool_mu_);
      pool_stop_ = true;
    }
    pool_cv_.notify_all();
    for (std::thread& worker : pool_workers_) worker.join();
  }
}

void AsyncBlockIo::SubmitRead(int fd, uint64_t offset, void* buf, uint32_t len,
                              std::function<void(int64_t)> done) {
  {
    std::unique_lock<std::mutex> lock(inflight_mu_);
    inflight_cv_.wait(lock, [this] { return inflight_ < queue_depth_; });
    ++inflight_;
  }
  reads_submitted_.fetch_add(1, std::memory_order_relaxed);
  Request* request = new Request{fd, offset, buf, len, std::move(done)};
  if (backend_ == IoBackend::kIoUring) {
    std::lock_guard<std::mutex> lock(submit_mu_);
    UringSubmitLocked(request);
  } else {
    {
      std::lock_guard<std::mutex> lock(pool_mu_);
      pool_queue_.push_back(request);
    }
    pool_cv_.notify_one();
  }
}

void AsyncBlockIo::Complete(Request* request, int64_t result) {
  // Run the callback before releasing the in-flight slot: once Drain()
  // observes zero, every completion callback has finished — the property
  // AsyncDiskTier's drain-then-Unregister destructor depends on.
  std::function<void(int64_t)> done = std::move(request->done);
  delete request;
  done(result);
  reads_completed_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    --inflight_;
  }
  inflight_cv_.notify_all();
}

void AsyncBlockIo::PoolWorkerLoop() {
  for (;;) {
    Request* request = nullptr;
    {
      std::unique_lock<std::mutex> lock(pool_mu_);
      pool_cv_.wait(lock,
                    [this] { return pool_stop_ || !pool_queue_.empty(); });
      if (pool_queue_.empty()) return;  // stop requested, queue drained
      request = pool_queue_.front();
      pool_queue_.pop_front();
    }
    int64_t result = 0;
    for (;;) {
      const ssize_t n = pread(
          request->fd, static_cast<char*>(request->buf) + request->progress,
          request->len - request->progress,
          static_cast<off_t>(request->offset + request->progress));
      if (n < 0) {
        if (errno == EINTR) continue;
        result = -static_cast<int64_t>(errno);
        break;
      }
      request->progress += static_cast<uint32_t>(n);
      if (n == 0 || request->progress == request->len) {
        result = request->progress;  // full, or EOF-truncated total
        break;
      }
    }
    Complete(request, result);
  }
}

void AsyncBlockIo::Drain() {
  std::unique_lock<std::mutex> lock(inflight_mu_);
  inflight_cv_.wait(lock, [this] { return inflight_ == 0; });
}

// --------------------------------------------------------------------------
// AsyncDiskTier
// --------------------------------------------------------------------------

/// One batch of cold-block reads in flight. `remaining` is pre-charged
/// with the full entry count before any submission, so the finalizer can
/// only be the genuinely last completion.
struct AsyncDiskTier::BlockGroup {
  struct Entry {
    uint64_t block = 0;
    void* buf = nullptr;
    uint32_t len = 0;
    int64_t result = 0;
  };
  std::vector<Entry> entries;
  std::atomic<size_t> remaining{0};
  std::function<void()> done;
  bool prefetch = false;
};

AsyncDiskTier::AsyncDiskTier(const MappedFile* file, const std::string& path,
                             BlockCache* cache,
                             std::vector<uint32_t> block_crcs,
                             const AsyncIoOptions& io_options)
    : file_(file),
      cache_(cache),
      token_(cache->RegisterFile()),
      block_crcs_(std::move(block_crcs)),
      io_(io_options) {
  fd_ = open(path.c_str(), O_RDONLY | O_CLOEXEC);
  GAT_CHECK(fd_ >= 0);
#ifdef O_DIRECT
  // O_DIRECT wants device-aligned offsets/lengths/buffers; only worth a
  // descriptor when whole cache blocks satisfy that. tmpfs and some
  // filesystems refuse the flag outright (EINVAL) — then direct_fd_
  // stays -1 and every read goes buffered, same results, no O_DIRECT.
  if (cache_->block_bytes() % 4096 == 0) {
    direct_fd_ = open(path.c_str(), O_RDONLY | O_CLOEXEC | O_DIRECT);
  }
#endif
}

AsyncDiskTier::~AsyncDiskTier() {
  // Drain before Unregister: a still-flying completion publishes through
  // a live token or not at all — never into a recycled file id.
  io_.Drain();
  cache_->Unregister(token_);
  if (direct_fd_ >= 0) close(direct_fd_);
  close(fd_);
}

void AsyncDiskTier::Fetch(uint64_t offset, uint64_t bytes,
                          DiskAccessCounter* counter) const {
  // Identical logical accounting to SimulatedDiskTier / MappedDiskTier:
  // nullptr = reuse, no charge; one RecordRead per charged fetch; then
  // per-block hit/read bookkeeping in block order.
  if (counter == nullptr) return;
  counter->RecordRead();
  if (bytes == 0) return;
  GAT_DCHECK(offset + bytes <= file_->size());
  const uint32_t bs = cache_->block_bytes();
  const uint64_t first = offset / bs;
  const uint64_t last = (offset + bytes - 1) / bs;
  std::vector<uint64_t> cold;
  for (uint64_t b = first; b <= last; ++b) {
    if (cache_->Touch(token_, b)) {
      counter->RecordBlockHit();
    } else {
      counter->RecordBlockRead();
      cold.push_back(b);
    }
  }
  if (cold.empty()) return;
  // A demand miss that was not staged ahead of time blocks this worker
  // until the reads land — the stall the staging path exists to avoid,
  // and the metric that proves it did.
  worker_stalls_.fetch_add(1, std::memory_order_relaxed);
  stalled_blocks_.fetch_add(cold.size(), std::memory_order_relaxed);
  ReadBlocksBlocking(std::move(cold), /*prefetch=*/false);
}

void AsyncDiskTier::Prefetch(uint64_t offset, uint64_t bytes) const {
  if (bytes == 0) return;
  GAT_DCHECK(offset + bytes <= file_->size());
  const uint32_t bs = cache_->block_bytes();
  const uint64_t first = offset / bs;
  const uint64_t last = (offset + bytes - 1) / bs;
  std::vector<uint64_t> cold;
  for (uint64_t b = first; b <= last; ++b) {
    if (!cache_->Warm(token_, b)) cold.push_back(b);
  }
  ReadBlocksBlocking(std::move(cold), /*prefetch=*/true);
}

size_t AsyncDiskTier::StageExtents(
    std::span<const std::pair<uint64_t, uint64_t>> extents,
    std::function<void()> ready) const {
  const uint32_t bs = cache_->block_bytes();
  std::vector<uint64_t> blocks;
  for (const auto& [offset, bytes] : extents) {
    if (bytes == 0) continue;
    GAT_DCHECK(offset + bytes <= file_->size());
    const uint64_t first = offset / bs;
    const uint64_t last = (offset + bytes - 1) / bs;
    for (uint64_t b = first; b <= last; ++b) blocks.push_back(b);
  }
  // Dedup before touching the cache: overlapping extents would otherwise
  // warm (and possibly read) the same block twice.
  std::sort(blocks.begin(), blocks.end());
  blocks.erase(std::unique(blocks.begin(), blocks.end()), blocks.end());
  std::vector<uint64_t> cold;
  for (uint64_t b : blocks) {
    if (!cache_->Warm(token_, b)) cold.push_back(b);
  }
  if (cold.empty()) {
    ready();
    return 0;
  }
  const size_t staged = cold.size();
  staged_blocks_.fetch_add(staged, std::memory_order_relaxed);
  SubmitBlockReads(std::move(cold), std::move(ready), /*prefetch=*/true);
  return staged;
}

void AsyncDiskTier::SubmitBlockReads(std::vector<uint64_t> blocks,
                                     std::function<void()> done,
                                     bool prefetch) const {
  if (blocks.empty()) {
    done();
    return;
  }
  auto* group = new BlockGroup;
  group->done = std::move(done);
  group->prefetch = prefetch;
  group->entries.reserve(blocks.size());
  const uint32_t bs = cache_->block_bytes();
  for (uint64_t b : blocks) {
    GAT_CHECK(b < block_crcs_.size());
    const uint64_t start = b * static_cast<uint64_t>(bs);
    const uint32_t len = static_cast<uint32_t>(
        std::min<uint64_t>(bs, static_cast<uint64_t>(file_->size()) - start));
    const bool direct = direct_fd_ >= 0 && len % 4096 == 0;
    void* buf = direct ? std::aligned_alloc(4096, len) : std::malloc(len);
    GAT_CHECK(buf != nullptr);
    group->entries.push_back({b, buf, len, 0});
  }
  // Pre-charge the countdown before any submission: early completions
  // can then never see remaining hit zero while later entries are still
  // being submitted. The count is hoisted because the moment the last
  // SubmitRead returns, the final completion may finalize and delete
  // the group on the I/O thread — `group` is unusable after that call.
  const size_t count = group->entries.size();
  group->remaining.store(count, std::memory_order_relaxed);
  for (size_t i = 0; i < count; ++i) {
    BlockGroup::Entry& e = group->entries[i];
    const uint64_t start = e.block * static_cast<uint64_t>(bs);
    const bool direct = direct_fd_ >= 0 && e.len % 4096 == 0;
    io_.SubmitRead(direct ? direct_fd_ : fd_, start, e.buf, e.len,
                   [this, group, i](int64_t result) {
                     group->entries[i].result = result;
                     if (group->remaining.fetch_sub(
                             1, std::memory_order_acq_rel) == 1) {
                       FinalizeGroup(group);
                     }
                   });
  }
}

void AsyncDiskTier::FinalizeGroup(BlockGroup* group) const {
  // Verify-then-publish, in block order regardless of completion order:
  // residency becomes visible only after the bytes passed the map-time
  // checksum, and the cache's recency order is a deterministic function
  // of the logical access sequence — the property the committed t1
  // bench counters gate across backends.
  for (const BlockGroup::Entry& e : group->entries) {
    GAT_CHECK(e.result == static_cast<int64_t>(e.len));
    GAT_CHECK(Crc32(static_cast<const char*>(e.buf), e.len) ==
              block_crcs_[e.block]);
    cache_->Publish(token_, e.block, group->prefetch);
    std::free(e.buf);
  }
  async_reads_.fetch_add(group->entries.size(), std::memory_order_relaxed);
  std::function<void()> done = std::move(group->done);
  delete group;
  done();
}

void AsyncDiskTier::ReadBlocksBlocking(std::vector<uint64_t> blocks,
                                       bool prefetch) const {
  if (blocks.empty()) return;
  std::mutex mu;
  std::condition_variable cv;
  bool finished = false;
  SubmitBlockReads(
      std::move(blocks),
      [&] {
        {
          std::lock_guard<std::mutex> lock(mu);
          finished = true;
        }
        cv.notify_one();
      },
      prefetch);
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return finished; });
}

AsyncTierStats AsyncDiskTier::stats() const {
  AsyncTierStats s;
  s.worker_stalls = worker_stalls_.load(std::memory_order_relaxed);
  s.stalled_blocks = stalled_blocks_.load(std::memory_order_relaxed);
  s.staged_blocks = staged_blocks_.load(std::memory_order_relaxed);
  s.async_reads = async_reads_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace gat
