#ifndef GAT_STORAGE_BLOCK_CACHE_H_
#define GAT_STORAGE_BLOCK_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "gat/common/storage_tier.h"

namespace gat {

/// What a `Publish` of a non-resident block into a *full* LRU shard must
/// prove before it may evict.
enum class CacheAdmission : uint8_t {
  /// Plain LRU: every published block is admitted, evicting the tail.
  /// The seed policy, byte-identical in behavior and stats — the
  /// committed bench baselines are recorded under it.
  kAdmitAll = 0,
  /// 2Q/TinyLFU-style scan resistance: a full shard admits a demand
  /// block only when (a) its key sits in the shard's *ghost list* of
  /// recently evicted/rejected keys — a re-reference, the 2Q signal — or
  /// (b) its saturating access frequency exceeds the LRU victim's — the
  /// TinyLFU duel. Anything else is rejected (the bytes were still read
  /// and served; only residency is denied) and remembered in the ghost
  /// list, so one sequential bulk scan can no longer flush the
  /// interactive working set: scan blocks lose the duel against hot
  /// victims, while a genuinely re-referenced block ghost-hits its way
  /// in on the second pass. Prefetch publishes bypass the frequency duel
  /// — the predictor staged them *because* a query is about to demand
  /// them, the one thing a frequency filter cannot yet see.
  kScanResistant = 1,
};

/// BlockCache knobs. Both sizes are rounded to powers of two; the
/// capacity is a *shared budget* — one cache typically fronts every
/// shard's mapped snapshot in a serving process.
struct BlockCacheConfig {
  /// Cache-block granularity in bytes (power of two; clamped to
  /// [512, 1 MiB]). 4 KiB = one page, the mmap fault granularity.
  uint32_t block_bytes = 4096;

  /// Total budget in bytes across all files and shards. Blocks =
  /// capacity_bytes / block_bytes, floored at one block per LRU shard.
  uint64_t capacity_bytes = 64ull << 20;

  /// LRU shard count (power of two; clamped to [1, 64]). Shards cut
  /// mutex contention when many search tasks fetch concurrently.
  uint32_t shards = 8;

  /// Eviction/admission policy of a full shard; kAdmitAll preserves the
  /// seed behavior bit for bit.
  CacheAdmission admission = CacheAdmission::kAdmitAll;
};

/// Point-in-time counters. `hits`/`misses` count demand lookups
/// (`Touch`); `prefetch_hits`/`prefetched` count warm-path lookups
/// (`Warm`) so prefetch effectiveness is visible separately and never
/// distorts the demand hit rate. The reload counters: `invalidated` is
/// resident blocks purged by `Unregister`, `files_retired` the
/// unregistered file namespaces, and `stale_drops` the operations
/// rejected because their token's generation was already retired (a
/// drained-too-late reader — never an error, never served).
struct BlockCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t prefetch_hits = 0;
  uint64_t prefetched = 0;
  uint64_t invalidated = 0;
  uint64_t files_retired = 0;
  uint64_t stale_drops = 0;
  /// Scan-resistant mode only (always 0 under kAdmitAll):
  /// `admission_rejects` counts publishes a full shard denied residency
  /// (served but not cached); `ghost_hits` counts admissions earned by a
  /// ghost-list re-reference — the blocks plain LRU would have lost.
  uint64_t admission_rejects = 0;
  uint64_t ghost_hits = 0;

  uint64_t DemandLookups() const { return hits + misses; }
  double HitRate() const { return CacheHitRate(hits, DemandLookups()); }
};

/// One registered file namespace of the cache: a recyclable slot id plus
/// the generation stamped at registration. Tokens are value types — a
/// reader may copy one freely — and every cache operation validates the
/// generation, so a token kept past its `Unregister` can neither hit a
/// successor's blocks nor publish its own into a recycled id.
struct BlockFileToken {
  uint32_t id = 0;
  uint32_t generation = 0;  // odd while registered, even once retired
};

/// A sharded LRU cache of (file, block) residency over mmap-backed
/// snapshots — the main-memory buffer pool in front of the disk tier.
///
/// The cache tracks *which* blocks are resident, not the bytes
/// themselves: the bytes live in the file mapping, and the caller does
/// the real read (pagefault + verify) on a miss. This is exactly the
/// split a buffer pool over mmap has — the cache is the replacement
/// policy and the accounting, the kernel owns the pages.
///
/// ## File generations and live reload
///
/// `RegisterFile` hands out a `BlockFileToken`: a slot id (recycled
/// through a free list, so a serving process that hot-swaps snapshots
/// forever never exhausts the 24-bit key namespace) plus a per-slot
/// generation. `Unregister` retires the token — it bumps the slot's
/// generation *first*, then purges every resident block of the id, and
/// only then recycles the id — so once it returns, no block of the
/// retired mapping is resident and none can become resident: a stale
/// `Publish` re-checks the generation under the same shard mutex the
/// purge held and is dropped, and a stale `Touch` can never hit a
/// successor's block. This is what makes snapshot hot-swap safe against
/// file-id reuse across generations.
///
/// Thread-safety: fully internally synchronized, including `Unregister`
/// racing with lookups/publishes on the retired token. Each key hashes
/// to one LRU shard guarded by its own mutex; stats are relaxed atomics.
/// Two tasks missing the same block concurrently both report a miss,
/// both read-and-verify, and both publish — benign duplicate work for
/// immutable read-only mappings, and no task can ever observe a block
/// as resident before some reader finished verifying it (misses only
/// become resident through `Publish`).
class BlockCache {
 public:
  /// Registered-but-not-yet-retired files per cache. Slots recycle on
  /// `Unregister`; `RegisterFile` aborts past this many *live* files.
  static constexpr uint32_t kMaxLiveFiles = 4096;

  explicit BlockCache(const BlockCacheConfig& config = {});

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  /// Hands out a unique file namespace for one mapped snapshot, so
  /// shards sharing the cache never alias each other's blocks. Slot ids
  /// recycle across `Unregister`; the generation makes each
  /// registration distinct.
  BlockFileToken RegisterFile();

  /// Retires `token`: purges every resident block of the file and
  /// recycles its id for future registrations. After this returns, no
  /// operation through `token` (or any earlier generation of the id)
  /// can hit, and none can insert. Idempotent: a second call with the
  /// same token is a counted no-op.
  void Unregister(const BlockFileToken& token);

  /// Demand lookup of block `block` of file `token`: marks it
  /// most-recently-used and returns true when it was resident. On a
  /// miss (false) the caller must do the real read and verification,
  /// then `Publish` the block — a missed block is deliberately NOT
  /// inserted here, so a concurrent lookup can never see a block as
  /// resident before its reader finished verifying it. A retired token
  /// always misses (counted under `stale_drops`, not the demand stats).
  bool Touch(const BlockFileToken& token, uint64_t block);

  /// Prefetch lookup: same residency semantics as `Touch`, but counted
  /// under `prefetched`/`prefetch_hits` instead of the demand hit/miss
  /// stats. Returns true when the block was already resident; a miss
  /// must be read, verified and `Publish`ed like a demand miss.
  bool Warm(const BlockFileToken& token, uint64_t block);

  /// Inserts a read-and-verified block as most-recently-used, evicting
  /// the shard's LRU tail if full — subject to the configured admission
  /// policy when the shard is full (see `CacheAdmission`; a rejected
  /// block was still served, it just stays non-resident). `prefetch`
  /// marks warm-path publishes, which scan-resistant admission exempts
  /// from the frequency duel. Idempotent under races: if another reader
  /// published the block first, this just bumps its recency. A publish
  /// through a retired token is dropped — a reader that raced past its
  /// file's `Unregister` cannot resurrect purged blocks into a recycled
  /// id.
  void Publish(const BlockFileToken& token, uint64_t block,
               bool prefetch = false);

  BlockCacheStats Snapshot() const;

  uint32_t block_bytes() const { return block_bytes_; }
  uint64_t capacity_blocks() const { return capacity_blocks_; }
  CacheAdmission admission() const { return admission_; }

  /// Resident blocks right now (sums the shard maps; for tests/benches).
  uint64_t ResidentBlocks() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    // Front = most recently used. The map holds iterators into the
    // list; both only ever hold keys (no data bytes).
    std::list<uint64_t> lru;
    std::unordered_map<uint64_t, std::list<uint64_t>::iterator> index;
    // Resident keys bucketed by file id, maintained on insert/evict, so
    // Unregister purges in time proportional to the retired file's
    // resident blocks instead of walking the whole LRU per reload.
    std::unordered_map<uint32_t, std::unordered_set<uint64_t>> by_file;
    uint64_t capacity = 1;

    // Scan-resistant state (untouched under kAdmitAll). The ghost list
    // (capacity = the shard's block capacity, keys only) remembers
    // recently evicted/rejected keys; `freq` is a TinyLFU-lite table of
    // 4-bit saturating demand-access counters, halved (zeros erased)
    // every 8 x capacity demand lookups so stale popularity decays and
    // the table stays proportional to the live key set.
    std::list<uint64_t> ghost;
    std::unordered_map<uint64_t, std::list<uint64_t>::iterator> ghost_index;
    std::unordered_map<uint64_t, uint8_t> freq;
    uint64_t freq_ops = 0;
  };

  Shard& ShardFor(uint64_t key);
  bool LookupInternal(const BlockFileToken& token, uint64_t block,
                      bool prefetch);
  /// Records one demand access to `key` in the TinyLFU table (aging it
  /// on schedule) and returns nothing; caller holds `shard.mu`.
  void NoteDemandAccessLocked(Shard& shard, uint64_t key);
  /// The current generation of `token`'s slot still matches the token.
  /// Reading it inside a shard's critical section is what closes the
  /// retire/lookup race: the purge runs under the same shard mutexes
  /// after the generation bump, so any operation that still sees the
  /// old generation is ordered before the purge of its shard.
  bool Live(const BlockFileToken& token) const {
    return generations_[token.id].load(std::memory_order_relaxed) ==
           token.generation;
  }

  uint32_t block_bytes_;
  uint64_t capacity_blocks_;
  CacheAdmission admission_ = CacheAdmission::kAdmitAll;
  std::vector<Shard> shards_;

  // File-slot registry: generations have stable addresses (fixed array)
  // so the hot path reads them lock-free; allocation/retirement of the
  // slots themselves serializes on files_mu_.
  std::unique_ptr<std::atomic<uint32_t>[]> generations_;
  std::mutex files_mu_;
  std::vector<uint32_t> free_ids_;
  uint32_t next_unused_id_ = 0;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> prefetch_hits_{0};
  std::atomic<uint64_t> prefetched_{0};
  std::atomic<uint64_t> invalidated_{0};
  std::atomic<uint64_t> files_retired_{0};
  std::atomic<uint64_t> stale_drops_{0};
  std::atomic<uint64_t> admission_rejects_{0};
  std::atomic<uint64_t> ghost_hits_{0};
};

}  // namespace gat

#endif  // GAT_STORAGE_BLOCK_CACHE_H_
