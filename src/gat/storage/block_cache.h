#ifndef GAT_STORAGE_BLOCK_CACHE_H_
#define GAT_STORAGE_BLOCK_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "gat/common/storage_tier.h"

namespace gat {

/// BlockCache knobs. Both sizes are rounded to powers of two; the
/// capacity is a *shared budget* — one cache typically fronts every
/// shard's mapped snapshot in a serving process.
struct BlockCacheConfig {
  /// Cache-block granularity in bytes (power of two; clamped to
  /// [512, 1 MiB]). 4 KiB = one page, the mmap fault granularity.
  uint32_t block_bytes = 4096;

  /// Total budget in bytes across all files and shards. Blocks =
  /// capacity_bytes / block_bytes, floored at one block per LRU shard.
  uint64_t capacity_bytes = 64ull << 20;

  /// LRU shard count (power of two; clamped to [1, 64]). Shards cut
  /// mutex contention when many search tasks fetch concurrently.
  uint32_t shards = 8;
};

/// Point-in-time counters. `hits`/`misses` count demand lookups
/// (`Touch`); `prefetch_hits`/`prefetched` count warm-path lookups
/// (`Warm`) so prefetch effectiveness is visible separately and never
/// distorts the demand hit rate.
struct BlockCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t prefetch_hits = 0;
  uint64_t prefetched = 0;

  uint64_t DemandLookups() const { return hits + misses; }
  double HitRate() const { return CacheHitRate(hits, DemandLookups()); }
};

/// A sharded LRU cache of (file, block) residency over mmap-backed
/// snapshots — the main-memory buffer pool in front of the disk tier.
///
/// The cache tracks *which* blocks are resident, not the bytes
/// themselves: the bytes live in the file mapping, and the caller does
/// the real read (pagefault + verify) on a miss. This is exactly the
/// split a buffer pool over mmap has — the cache is the replacement
/// policy and the accounting, the kernel owns the pages.
///
/// Thread-safety: fully internally synchronized. Each key hashes to one
/// LRU shard guarded by its own mutex; stats are relaxed atomics. Two
/// tasks missing the same block concurrently both report a miss, both
/// read-and-verify, and both publish — benign duplicate work for
/// immutable read-only mappings, and no task can ever observe a block
/// as resident before some reader finished verifying it (misses only
/// become resident through `Publish`).
class BlockCache {
 public:
  explicit BlockCache(const BlockCacheConfig& config = {});

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  /// Hands out a unique file namespace for one mapped snapshot, so
  /// shards sharing the cache never alias each other's blocks.
  uint32_t RegisterFile();

  /// Demand lookup of block `block` of file `file`: marks it
  /// most-recently-used and returns true when it was resident. On a
  /// miss (false) the caller must do the real read and verification,
  /// then `Publish` the block — a missed block is deliberately NOT
  /// inserted here, so a concurrent lookup can never see a block as
  /// resident before its reader finished verifying it.
  bool Touch(uint32_t file, uint64_t block);

  /// Prefetch lookup: same residency semantics as `Touch`, but counted
  /// under `prefetched`/`prefetch_hits` instead of the demand hit/miss
  /// stats. Returns true when the block was already resident; a miss
  /// must be read, verified and `Publish`ed like a demand miss.
  bool Warm(uint32_t file, uint64_t block);

  /// Inserts a read-and-verified block as most-recently-used, evicting
  /// the shard's LRU tail if full. Idempotent under races: if another
  /// reader published the block first, this just bumps its recency.
  void Publish(uint32_t file, uint64_t block);

  BlockCacheStats Snapshot() const;

  uint32_t block_bytes() const { return block_bytes_; }
  uint64_t capacity_blocks() const { return capacity_blocks_; }

  /// Resident blocks right now (sums the shard maps; for tests/benches).
  uint64_t ResidentBlocks() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    // Front = most recently used. The map holds iterators into the
    // list; both only ever hold keys (no data bytes).
    std::list<uint64_t> lru;
    std::unordered_map<uint64_t, std::list<uint64_t>::iterator> index;
    uint64_t capacity = 1;
  };

  Shard& ShardFor(uint64_t key);
  bool LookupInternal(uint32_t file, uint64_t block, bool prefetch);

  uint32_t block_bytes_;
  uint64_t capacity_blocks_;
  std::vector<Shard> shards_;
  std::atomic<uint32_t> next_file_id_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> prefetch_hits_{0};
  std::atomic<uint64_t> prefetched_{0};
};

}  // namespace gat

#endif  // GAT_STORAGE_BLOCK_CACHE_H_
